package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"safespec/internal/grid"
	"safespec/internal/sweep"
)

func TestRequiresCoordinator(t *testing.T) {
	err := run(context.Background(), "", "", 0, "", time.Millisecond, 0, true)
	if err == nil || !strings.Contains(err.Error(), "-coordinator") {
		t.Errorf("missing -coordinator must error, got %v", err)
	}
}

// TestWorkerServesSweep drives the command's run function against a live
// coordinator: it must execute the leased jobs (through the cache wiring)
// and exit cleanly on cancellation.
func TestWorkerServesSweep(t *testing.T) {
	coord := grid.NewCoordinator(grid.Options{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spec := sweep.Quick()
	spec.Benchmarks = []string{"exchange2"}
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- run(ctx, srv.URL, "test-worker", 2, t.TempDir(), 5*time.Millisecond, 0, true)
	}()

	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Workers: len(jobs), Executor: coord})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Errorf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on cancellation")
	}
}
