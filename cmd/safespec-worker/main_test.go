package main

import (
	"context"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"safespec/internal/grid"
	"safespec/internal/sweep"
)

func TestRequiresCoordinator(t *testing.T) {
	err := run(context.Background(), config{poll: time.Millisecond, quiet: true}, slog.New(slog.DiscardHandler))
	if err == nil || !strings.Contains(err.Error(), "-coordinator") {
		t.Errorf("missing -coordinator must error, got %v", err)
	}
}

// TestWorkerServesSweep drives the command's run function against a live
// token-guarded coordinator server: it must authenticate, execute the
// leased jobs (through the cache wiring) and exit cleanly on cancellation.
func TestWorkerServesSweep(t *testing.T) {
	const token = "cmd-test-token"
	server := grid.NewServer(grid.ServerOptions{Token: token})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	spec := sweep.Quick()
	spec.Benchmarks = []string{"exchange2"}
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- run(ctx, config{coordinator: srv.URL, token: token,
			id: "test-worker", parallel: 2, cacheDir: t.TempDir(),
			poll: 5 * time.Millisecond, quiet: true}, slog.New(slog.DiscardHandler))
	}()

	re := &grid.RemoteExecutor{URL: srv.URL, Token: token, PollWait: 100 * time.Millisecond}
	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Workers: len(jobs), Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Errorf("close sweep: %v", err)
	}
	cancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Errorf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on cancellation")
	}
}

// TestWorkerRejectedToken checks the fail-fast path: a worker with the
// wrong token must exit with the auth error instead of polling forever.
func TestWorkerRejectedToken(t *testing.T) {
	server := grid.NewServer(grid.ServerOptions{Token: "right"})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	err := run(context.Background(), config{coordinator: srv.URL, token: "wrong",
		id: "test-worker", parallel: 1, poll: time.Millisecond, quiet: true}, slog.New(slog.DiscardHandler))
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("want auth failure, got %v", err)
	}
}
