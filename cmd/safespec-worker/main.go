// Command safespec-worker executes sweep jobs leased from a grid
// coordinator — a persistent safespec-coordinator process, or the one
// embedded in `safespec-bench -serve ADDR`. Several workers may serve one
// coordinator; each runs -parallel concurrent lease loops and simulates
// jobs in-process, optionally behind a content-addressed result cache
// shared with other workers on the same filesystem.
//
// Usage:
//
//	safespec-worker -coordinator http://host:9090 -token SECRET
//	safespec-worker -coordinator https://host:9443 -token SECRET -tls-ca cert.pem
//	safespec-worker -coordinator http://host:9090 -parallel 4 -cache-dir .cache
//	safespec-worker -coordinator http://host:9090 -max-idle 1m   # exit when orphaned
//	safespec-worker -coordinator http://host:9090 -pprof 127.0.0.1:6061  # pprof + /metrics
//
// The worker polls until interrupted (or the coordinator stays unreachable
// past -max-idle): an idle worker is a healthy worker waiting for the next
// sweep. With -pprof set, the same listener serves Prometheus metrics at
// /metrics: lease/completion/failure counters, lease round-trip latency,
// per-job simulate-time histograms, result-cache hits/misses, and 429
// backoffs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safespec/internal/grid"
	"safespec/internal/obs"
	"safespec/internal/pprofserve"
	"safespec/internal/resultcache"
	"safespec/internal/sweep"

	// Registers the attack kernels as named benches so leased jobs for
	// security cells (e.g. smt-btb-v2) resolve on a bare worker.
	_ "safespec/internal/attacks"
)

// config carries the flag surface (kept as a struct so tests can drive run
// directly).
type config struct {
	coordinator string
	token       string
	tlsCA       string
	id          string
	parallel    int
	cacheDir    string
	poll        time.Duration
	maxIdle     time.Duration
	quiet       bool
	logLevel    string
	logFormat   string
	pprofAddr   string
	memLimitMB  int
	heartbeat   time.Duration
}

func main() {
	var c config
	flag.StringVar(&c.coordinator, "coordinator", "", "base URL of the grid coordinator (required; https:// needs a trusted or -tls-ca cert)")
	flag.StringVar(&c.token, "token", os.Getenv("SAFESPEC_TOKEN"), "coordinator bearer token (default $SAFESPEC_TOKEN)")
	flag.StringVar(&c.tlsCA, "tls-ca", "", "PEM bundle to trust for an https:// coordinator (e.g. its self-signed -tls-cert); empty uses the system roots")
	flag.StringVar(&c.id, "id", "", "worker name used in lease ids and logs (default host-pid)")
	flag.IntVar(&c.parallel, "parallel", 0, "concurrent lease loops (0 = GOMAXPROCS)")
	flag.StringVar(&c.cacheDir, "cache-dir", "", "content-addressed result cache directory")
	flag.DurationVar(&c.poll, "poll", 250*time.Millisecond, "idle sleep between lease attempts")
	flag.DurationVar(&c.maxIdle, "max-idle", 0, "exit after the coordinator has been unreachable this long (0 = keep polling)")
	flag.BoolVar(&c.quiet, "quiet", false, "suppress per-job progress lines (same as -log-level warn)")
	flag.StringVar(&c.logLevel, "log-level", "info", "log level: debug|info|warn|error")
	flag.StringVar(&c.logFormat, "log-format", "text", "log format: text|json")
	flag.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof, Prometheus /metrics and the /healthz and /readyz probes on this address (e.g. 127.0.0.1:6061)")
	flag.IntVar(&c.memLimitMB, "mem-limit-mb", 0, "soft heap limit in MiB: a job running while the process heap exceeds it is contained as a memory incident (0 = off)")
	flag.DurationVar(&c.heartbeat, "heartbeat", 15*time.Second, "interval for /v1/heartbeat liveness beacons to the coordinator (0 = lease polls only)")
	flag.Parse()

	if c.quiet && c.logLevel == "info" {
		c.logLevel = "warn"
	}
	log, err := obs.NewLogger(os.Stderr, c.logLevel, c.logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safespec-worker:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, c, log); err != nil {
		log.Error("worker exiting", "err", err.Error())
		os.Exit(1)
	}
}

func run(ctx context.Context, c config, log *slog.Logger) error {
	if c.coordinator == "" {
		return fmt.Errorf("-coordinator is required (e.g. -coordinator http://127.0.0.1:9090)")
	}
	client, err := grid.NewHTTPClient(c.tlsCA, 30*time.Second)
	if err != nil {
		return err
	}
	if c.id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	reg := obs.NewRegistry()
	metrics := grid.NewWorkerMetrics(reg)

	var exec sweep.Executor
	if c.cacheDir != "" {
		cache, err := resultcache.Open(c.cacheDir)
		if err != nil {
			return err
		}
		defer func() { log.Info("result cache summary", "cache", cache.String()) }()
		// Mirror the cache's counters into /metrics at scrape time: the
		// cache already counts under its own lock, the registry copy is
		// just the exposition view.
		reg.OnCollect(func() {
			st := cache.Stats()
			metrics.CacheHits.Set(st.Hits)
			metrics.CacheMisses.Set(st.Misses)
		})
		exec = resultcache.NewExecutor(cache, nil)
	}

	w := &grid.Worker{
		Coordinator: c.coordinator,
		Token:       c.token,
		ID:          c.id,
		Parallel:    c.parallel,
		Exec:        exec,
		Poll:        c.poll,
		MaxIdle:     c.maxIdle,
		MemLimit:    int64(c.memLimitMB) << 20,
		Heartbeat:   c.heartbeat,
		Client:      client,
		Log:         log,
		Metrics:     metrics,
	}

	if c.pprofAddr != "" {
		ops := http.NewServeMux()
		ops.Handle("GET /metrics", reg.Handler())
		// /healthz is liveness (the process is up); /readyz is readiness —
		// the last lease attempt reached the coordinator, so this worker is
		// actually able to take jobs.
		ops.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(rw, "ok")
		})
		ops.HandleFunc("GET /readyz", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !w.Ready() {
				rw.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(rw, "coordinator unreachable")
				return
			}
			fmt.Fprintln(rw, "ok")
		})
		addr, err := pprofserve.Serve(c.pprofAddr, ops)
		if err != nil {
			return err
		}
		log.Info("ops listener up", "addr", addr.String(),
			"pprof", fmt.Sprintf("http://%s/debug/pprof/", addr),
			"metrics", fmt.Sprintf("http://%s/metrics", addr))
	}
	return w.Run(ctx)
}
