// Command safespec-worker executes sweep jobs leased from a grid
// coordinator — a persistent safespec-coordinator process, or the one
// embedded in `safespec-bench -serve ADDR`. Several workers may serve one
// coordinator; each runs -parallel concurrent lease loops and simulates
// jobs in-process, optionally behind a content-addressed result cache
// shared with other workers on the same filesystem.
//
// Usage:
//
//	safespec-worker -coordinator http://host:9090 -token SECRET
//	safespec-worker -coordinator http://host:9090 -parallel 4 -cache-dir .cache
//	safespec-worker -coordinator http://host:9090 -max-idle 1m   # exit when orphaned
//
// The worker polls until interrupted (or the coordinator stays unreachable
// past -max-idle): an idle worker is a healthy worker waiting for the next
// sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safespec/internal/grid"
	"safespec/internal/pprofserve"
	"safespec/internal/resultcache"
	"safespec/internal/sweep"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "base URL of the grid coordinator (required)")
		token       = flag.String("token", os.Getenv("SAFESPEC_TOKEN"), "coordinator bearer token (default $SAFESPEC_TOKEN)")
		id          = flag.String("id", "", "worker name used in lease ids and logs (default host-pid)")
		parallel    = flag.Int("parallel", 0, "concurrent lease loops (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache-dir", "", "content-addressed result cache directory")
		poll        = flag.Duration("poll", 250*time.Millisecond, "idle sleep between lease attempts")
		maxIdle     = flag.Duration("max-idle", 0, "exit after the coordinator has been unreachable this long (0 = keep polling)")
		quiet       = flag.Bool("quiet", false, "suppress per-job progress lines")
		pprofAddr   = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. 127.0.0.1:6060) for live profiling")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		if err := pprofserve.Serve(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "safespec-worker:", err)
			os.Exit(1)
		}
	}
	if err := run(ctx, *coordinator, *token, *id, *parallel, *cacheDir, *poll, *maxIdle, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-worker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, coordinator, token, id string, parallel int,
	cacheDir string, poll, maxIdle time.Duration, quiet bool) error {
	if coordinator == "" {
		return fmt.Errorf("-coordinator is required (e.g. -coordinator http://127.0.0.1:9090)")
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var exec sweep.Executor
	if cacheDir != "" {
		cache, err := resultcache.Open(cacheDir)
		if err != nil {
			return err
		}
		defer func() { fmt.Fprintf(os.Stderr, "%s\n", cache) }()
		exec = resultcache.NewExecutor(cache, nil)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	w := &grid.Worker{
		Coordinator: coordinator,
		Token:       token,
		ID:          id,
		Parallel:    parallel,
		Exec:        exec,
		Poll:        poll,
		MaxIdle:     maxIdle,
		Logf:        logf,
	}
	return w.Run(ctx)
}
