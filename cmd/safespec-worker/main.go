// Command safespec-worker executes sweep jobs leased from a grid
// coordinator — a persistent safespec-coordinator process, or the one
// embedded in `safespec-bench -serve ADDR`. Several workers may serve one
// coordinator; each runs -parallel concurrent lease loops and simulates
// jobs in-process, optionally behind a content-addressed result cache
// shared with other workers on the same filesystem.
//
// Usage:
//
//	safespec-worker -coordinator http://host:9090 -token SECRET
//	safespec-worker -coordinator https://host:9443 -token SECRET -tls-ca cert.pem
//	safespec-worker -coordinator http://host:9090 -parallel 4 -cache-dir .cache
//	safespec-worker -coordinator http://host:9090 -max-idle 1m   # exit when orphaned
//
// The worker polls until interrupted (or the coordinator stays unreachable
// past -max-idle): an idle worker is a healthy worker waiting for the next
// sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safespec/internal/grid"
	"safespec/internal/pprofserve"
	"safespec/internal/resultcache"
	"safespec/internal/sweep"
)

// config carries the flag surface (kept as a struct so tests can drive run
// directly).
type config struct {
	coordinator string
	token       string
	tlsCA       string
	id          string
	parallel    int
	cacheDir    string
	poll        time.Duration
	maxIdle     time.Duration
	quiet       bool
}

func main() {
	var c config
	flag.StringVar(&c.coordinator, "coordinator", "", "base URL of the grid coordinator (required; https:// needs a trusted or -tls-ca cert)")
	flag.StringVar(&c.token, "token", os.Getenv("SAFESPEC_TOKEN"), "coordinator bearer token (default $SAFESPEC_TOKEN)")
	flag.StringVar(&c.tlsCA, "tls-ca", "", "PEM bundle to trust for an https:// coordinator (e.g. its self-signed -tls-cert); empty uses the system roots")
	flag.StringVar(&c.id, "id", "", "worker name used in lease ids and logs (default host-pid)")
	flag.IntVar(&c.parallel, "parallel", 0, "concurrent lease loops (0 = GOMAXPROCS)")
	flag.StringVar(&c.cacheDir, "cache-dir", "", "content-addressed result cache directory")
	flag.DurationVar(&c.poll, "poll", 250*time.Millisecond, "idle sleep between lease attempts")
	flag.DurationVar(&c.maxIdle, "max-idle", 0, "exit after the coordinator has been unreachable this long (0 = keep polling)")
	flag.BoolVar(&c.quiet, "quiet", false, "suppress per-job progress lines")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this address (e.g. 127.0.0.1:6060) for live profiling")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		if err := pprofserve.Serve(*pprofAddr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "safespec-worker:", err)
			os.Exit(1)
		}
	}
	if err := run(ctx, c); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-worker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, c config) error {
	if c.coordinator == "" {
		return fmt.Errorf("-coordinator is required (e.g. -coordinator http://127.0.0.1:9090)")
	}
	client, err := grid.NewHTTPClient(c.tlsCA, 30*time.Second)
	if err != nil {
		return err
	}
	if c.id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var exec sweep.Executor
	if c.cacheDir != "" {
		cache, err := resultcache.Open(c.cacheDir)
		if err != nil {
			return err
		}
		defer func() { fmt.Fprintf(os.Stderr, "%s\n", cache) }()
		exec = resultcache.NewExecutor(cache, nil)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if c.quiet {
		logf = nil
	}
	w := &grid.Worker{
		Coordinator: c.coordinator,
		Token:       c.token,
		ID:          c.id,
		Parallel:    c.parallel,
		Exec:        exec,
		Poll:        c.poll,
		MaxIdle:     c.maxIdle,
		Client:      client,
		Logf:        logf,
	}
	return w.Run(ctx)
}
