// Command safespec-sim runs one benchmark kernel under one protection mode
// and prints the full statistics — the workhorse for exploring the
// simulator interactively. The run is dispatched through the internal/sweep
// engine, so it gets the same wall-time accounting and panic isolation as
// the full evaluation sweep. With -introspect the simulator runs directly
// with the deep counter block attached and dumps it as versioned JSON.
//
// Usage:
//
//	safespec-sim -bench mcf -mode wfc -instrs 100000
//	safespec-sim -bench gcc -seed 12345
//	safespec-sim -bench mcf -mode wfc -introspect | jq .
//	safespec-sim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"safespec/internal/core"
	"safespec/internal/obs"
	"safespec/internal/shadow"
	"safespec/internal/stats"
	"safespec/internal/sweep"
	"safespec/internal/workloads"

	// Registers the attack kernels as named benches (e.g. smt-btb-v2) so
	// -bench accepts them alongside the SPEC-like workloads.
	_ "safespec/internal/attacks"
)

func main() {
	var (
		benchName  = flag.String("bench", "perlbench", "benchmark kernel to run")
		mode       = flag.String("mode", "wfc", "protection mode: baseline|wfb|wfc")
		instrs     = flag.Uint64("instrs", 100_000, "committed instructions to simulate")
		seed       = flag.Int64("seed", 0, "program-generator seed override (0 = benchmark default)")
		threads    = flag.Int("threads", 1, "hardware threads (SMT contexts); 1 = single-thread core")
		list       = flag.Bool("list", false, "list available benchmarks and exit")
		occupancy  = flag.Bool("occupancy", false, "report shadow occupancy percentiles")
		introspect = flag.Bool("introspect", false, "dump deep pipeline counters as JSON (schema safespec/introspect/v1) instead of the stats table")
		logLevel   = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "log format: text|json")
	)
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safespec-sim:", err)
		os.Exit(1)
	}

	if *list {
		for _, name := range workloads.Names() {
			fmt.Fprintln(os.Stdout, name)
		}
		return
	}
	if *introspect {
		err = runIntrospect(os.Stdout, *benchName, *mode, *instrs, *seed, *threads)
	} else {
		err = run(os.Stdout, *benchName, *mode, *instrs, *occupancy, *seed, *threads)
	}
	if err != nil {
		log.Error("run failed", "bench", *benchName, "mode", *mode, "err", err.Error())
		os.Exit(1)
	}
}

func run(w io.Writer, benchName, mode string, instrs uint64, occupancy bool, seed int64, threads int) error {
	cfg, err := modeConfig(mode)
	if err != nil {
		return err
	}
	cfg = cfg.WithLimits(instrs, 0)
	cfg.SampleOccupancy = occupancy
	if threads > 1 {
		cfg.Pipeline.Threads = threads
	}

	job := sweep.Job{Bench: benchName, Mode: mode, Seed: seed, Config: cfg}
	results, err := sweep.Run(context.Background(), []sweep.Job{job}, sweep.Options{Workers: 1})
	if err != nil {
		return err
	}
	if results[0].Err != nil {
		return results[0].Err
	}
	return printStats(w, benchName, occupancy, results[0])
}

// introspectDump is the -introspect JSON schema, versioned so downstream
// tooling can detect incompatible changes: bump the schema string whenever
// a field changes meaning or disappears (adding fields is compatible).
type introspectDump struct {
	Schema string `json:"schema"`
	Bench  string `json:"bench"`
	Mode   string `json:"mode"`
	Seed   int64  `json:"seed"`
	// Threads is the SMT context count; omitted under schema v1, which is
	// only emitted for single-thread runs.
	Threads   int    `json:"threads,omitempty"`
	Cycles    uint64 `json:"cycles"`
	Committed uint64 `json:"committed"`
	Squashes  struct {
		MispredictEvents  uint64 `json:"mispredict_events"`
		TrapEvents        uint64 `json:"trap_events"`
		EntriesMispredict uint64 `json:"entries_mispredict"`
		EntriesTrap       uint64 `json:"entries_trap"`
	} `json:"squashes"`
	// Occupancy keys: rob, issue_queue, completion_wheel. Under SMT these
	// are the summed occupancies across threads.
	Occupancy map[string]histSummary `json:"occupancy"`
	// PerThread (schema v2 only) breaks ROB and issue-queue occupancy down
	// by hardware thread, each over that thread's static partition.
	PerThread []threadOccupancy `json:"per_thread,omitempty"`
	// Shadow keys (SafeSpec modes only): dcache, icache, dtlb, itlb.
	Shadow map[string]shadowSummary `json:"shadow,omitempty"`
}

// threadOccupancy is one hardware thread's occupancy block in schema v2.
type threadOccupancy struct {
	Thread     int         `json:"thread"`
	ROB        histSummary `json:"rob"`
	IssueQueue histSummary `json:"issue_queue"`
}

// histSummary condenses an occupancy histogram into the percentiles the
// sizing studies read.
type histSummary struct {
	Samples uint64  `json:"samples"`
	Mean    float64 `json:"mean"`
	P50     int     `json:"p50"`
	P9999   int     `json:"p99_99"`
	Max     int     `json:"max"`
}

// shadowSummary is one shadow structure's alloc/invalidate/overflow
// accounting.
type shadowSummary struct {
	Allocs      uint64 `json:"allocs"`
	Committed   uint64 `json:"committed"`
	Squashed    uint64 `json:"squashed"`
	DroppedFull uint64 `json:"dropped_full"`
	Replaced    uint64 `json:"replaced"`
	Flushes     uint64 `json:"flushes"`
}

func summarize(h *stats.Histogram) histSummary {
	return histSummary{
		Samples: h.N(),
		Mean:    h.Mean(),
		P50:     h.Percentile(0.5),
		P9999:   h.Percentile(0.9999),
		Max:     h.Max(),
	}
}

// runIntrospect runs the simulator directly (not through the sweep engine:
// introspection attaches to the CPU, below the executor's surface) and
// dumps the deep counters. Introspection is deliberately not part of
// core.Config, so the run's result-cache identity is the same as an
// unobserved run's.
func runIntrospect(w io.Writer, benchName, mode string, instrs uint64, seed int64, threads int) error {
	cfg, err := modeConfig(mode)
	if err != nil {
		return err
	}
	cfg = cfg.WithLimits(instrs, 0)
	if threads > 1 {
		cfg.Pipeline.Threads = threads
	}
	n := cfg.Pipeline.NumThreads()
	prog, err := workloads.Program(benchName, seed, n)
	if err != nil {
		return err
	}
	sim := core.New(cfg, prog)
	in := sim.CPU().EnableIntrospection()
	res := sim.Run()

	// Schema v1 is pinned for single-thread runs (downstream tooling parses
	// it); SMT runs get v2, which adds threads and per_thread occupancy.
	schema := "safespec/introspect/v1"
	if n > 1 {
		schema = "safespec/introspect/v2"
	}
	dump := introspectDump{
		Schema:    schema,
		Bench:     benchName,
		Mode:      mode,
		Seed:      seed,
		Cycles:    res.Cycles,
		Committed: res.Committed,
		Occupancy: map[string]histSummary{
			"rob":              summarize(in.ROBOccupancy),
			"issue_queue":      summarize(in.IQOccupancy),
			"completion_wheel": summarize(in.WheelOccupancy),
		},
	}
	if n > 1 {
		dump.Threads = n
		for tid := range in.ThreadROB {
			dump.PerThread = append(dump.PerThread, threadOccupancy{
				Thread:     tid,
				ROB:        summarize(in.ThreadROB[tid]),
				IssueQueue: summarize(in.ThreadIQ[tid]),
			})
		}
	}
	dump.Squashes.MispredictEvents = in.MispredictSquashes
	dump.Squashes.TrapEvents = in.TrapSquashes
	dump.Squashes.EntriesMispredict = in.SquashedByMispredict
	dump.Squashes.EntriesTrap = in.SquashedByTrap
	if res.Mode.SafeSpec() {
		dump.Shadow = map[string]shadowSummary{
			"dcache": shadowFrom(res.ShD),
			"icache": shadowFrom(res.ShI),
			"dtlb":   shadowFrom(res.ShDTLB),
			"itlb":   shadowFrom(res.ShITLB),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

func shadowFrom(s shadow.Stats) shadowSummary {
	return shadowSummary{
		Allocs:      s.Allocs,
		Committed:   s.Committed,
		Squashed:    s.Squashed,
		DroppedFull: s.DroppedFull,
		Replaced:    s.Replaced,
		Flushes:     s.Flushes,
	}
}

// modeConfig resolves -mode against sweep.StandardModes so the CLI accepts
// exactly the mode set the evaluation matrix runs.
func modeConfig(mode string) (core.Config, error) {
	specs := sweep.StandardModes()
	names := make([]string, len(specs))
	for i, m := range specs {
		if m.Name == mode {
			return m.Config, nil
		}
		names[i] = m.Name
	}
	return core.Config{}, fmt.Errorf("unknown mode %q (want %s)", mode, strings.Join(names, "|"))
}

func printStats(w io.Writer, benchName string, occupancy bool, jr sweep.Result) error {
	res := jr.Res
	fmt.Fprintf(w, "benchmark      %s\n", benchName)
	fmt.Fprintf(w, "mode           %s\n", res.Mode)
	fmt.Fprintf(w, "wall time      %v\n", jr.Wall.Round(time.Microsecond))
	fmt.Fprintf(w, "cycles         %d\n", res.Cycles)
	fmt.Fprintf(w, "committed      %d (IPC %.3f)\n", res.Committed, res.IPC())
	fmt.Fprintf(w, "  loads/stores %d / %d\n", res.CommittedLoads, res.CommittedStores)
	fmt.Fprintf(w, "squashed       %d\n", res.Squashed)
	fmt.Fprintf(w, "mispredicts    %d (rate %.4f)\n", res.Mispredicts, res.Bpred.MispredictRate())
	fmt.Fprintf(w, "d-reads        %d (miss rate %.4f, shadow hit share %.3f)\n",
		res.DReads, res.DReadMissRate(), res.DShadowHitShare())
	fmt.Fprintf(w, "i-fetches      %d (miss rate %.4f, shadow hit share %.3f)\n",
		res.IFetches, res.IFetchMissRate(), res.IShadowHitShare())
	fmt.Fprintf(w, "L1D            %d hits / %d misses\n", res.L1D.Hits, res.L1D.Misses)
	fmt.Fprintf(w, "L1I            %d hits / %d misses\n", res.L1I.Hits, res.L1I.Misses)
	fmt.Fprintf(w, "L2 / L3 miss   %.4f / %.4f\n", res.L2.MissRate(), res.L3.MissRate())
	fmt.Fprintf(w, "dTLB / iTLB    %.4f / %.4f miss\n", res.DTLB.MissRate(), res.ITLB.MissRate())
	if res.Mode.SafeSpec() {
		fmt.Fprintf(w, "shadow d$      %d allocs, commit rate %.3f\n", res.ShD.Allocs, res.ShD.CommitRate())
		fmt.Fprintf(w, "shadow i$      %d allocs, commit rate %.3f\n", res.ShI.Allocs, res.ShI.CommitRate())
		fmt.Fprintf(w, "shadow dTLB    %d allocs, commit rate %.3f\n", res.ShDTLB.Allocs, res.ShDTLB.CommitRate())
		fmt.Fprintf(w, "shadow iTLB    %d allocs, commit rate %.3f\n", res.ShITLB.Allocs, res.ShITLB.CommitRate())
		if occupancy && res.OccD != nil {
			fmt.Fprintf(w, "occupancy p99.99  d$=%d i$=%d dTLB=%d iTLB=%d\n",
				res.OccD.Percentile(0.9999), res.OccI.Percentile(0.9999),
				res.OccDTLB.Percentile(0.9999), res.OccITLB.Percentile(0.9999))
		}
	}
	return nil
}
