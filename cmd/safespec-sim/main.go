// Command safespec-sim runs one benchmark kernel under one protection mode
// and prints the full statistics — the workhorse for exploring the
// simulator interactively.
//
// Usage:
//
//	safespec-sim -bench mcf -mode wfc -instrs 100000
//	safespec-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"safespec/internal/core"
	"safespec/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "perlbench", "benchmark kernel to run")
		mode      = flag.String("mode", "wfc", "protection mode: baseline|wfb|wfc")
		instrs    = flag.Uint64("instrs", 100_000, "committed instructions to simulate")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		occupancy = flag.Bool("occupancy", false, "report shadow occupancy percentiles")
	)
	flag.Parse()

	if *list {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*benchName, *mode, *instrs, *occupancy); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-sim:", err)
		os.Exit(1)
	}
}

func run(benchName, mode string, instrs uint64, occupancy bool) error {
	w, err := workloads.ByName(benchName)
	if err != nil {
		return err
	}
	var cfg core.Config
	switch mode {
	case "baseline":
		cfg = core.Baseline()
	case "wfb":
		cfg = core.WFB()
	case "wfc":
		cfg = core.WFC()
	default:
		return fmt.Errorf("unknown mode %q (want baseline|wfb|wfc)", mode)
	}
	cfg = cfg.WithLimits(instrs, 0)
	cfg.SampleOccupancy = occupancy

	res := core.Run(cfg, w.Build())

	fmt.Printf("benchmark      %s\n", benchName)
	fmt.Printf("mode           %s\n", res.Mode)
	fmt.Printf("cycles         %d\n", res.Cycles)
	fmt.Printf("committed      %d (IPC %.3f)\n", res.Committed, res.IPC())
	fmt.Printf("  loads/stores %d / %d\n", res.CommittedLoads, res.CommittedStores)
	fmt.Printf("squashed       %d\n", res.Squashed)
	fmt.Printf("mispredicts    %d (rate %.4f)\n", res.Mispredicts, res.Bpred.MispredictRate())
	fmt.Printf("d-reads        %d (miss rate %.4f, shadow hit share %.3f)\n",
		res.DReads, res.DReadMissRate(), res.DShadowHitShare())
	fmt.Printf("i-fetches      %d (miss rate %.4f, shadow hit share %.3f)\n",
		res.IFetches, res.IFetchMissRate(), res.IShadowHitShare())
	fmt.Printf("L1D            %d hits / %d misses\n", res.L1D.Hits, res.L1D.Misses)
	fmt.Printf("L1I            %d hits / %d misses\n", res.L1I.Hits, res.L1I.Misses)
	fmt.Printf("L2 / L3 miss   %.4f / %.4f\n", res.L2.MissRate(), res.L3.MissRate())
	fmt.Printf("dTLB / iTLB    %.4f / %.4f miss\n", res.DTLB.MissRate(), res.ITLB.MissRate())
	if res.Mode.SafeSpec() {
		fmt.Printf("shadow d$      %d allocs, commit rate %.3f\n", res.ShD.Allocs, res.ShD.CommitRate())
		fmt.Printf("shadow i$      %d allocs, commit rate %.3f\n", res.ShI.Allocs, res.ShI.CommitRate())
		fmt.Printf("shadow dTLB    %d allocs, commit rate %.3f\n", res.ShDTLB.Allocs, res.ShDTLB.CommitRate())
		fmt.Printf("shadow iTLB    %d allocs, commit rate %.3f\n", res.ShITLB.Allocs, res.ShITLB.CommitRate())
		if occupancy && res.OccD != nil {
			fmt.Printf("occupancy p99.99  d$=%d i$=%d dTLB=%d iTLB=%d\n",
				res.OccD.Percentile(0.9999), res.OccI.Percentile(0.9999),
				res.OccDTLB.Percentile(0.9999), res.OccITLB.Percentile(0.9999))
		}
	}
	return nil
}
