// Command safespec-sim runs one benchmark kernel under one protection mode
// and prints the full statistics — the workhorse for exploring the
// simulator interactively. The run is dispatched through the internal/sweep
// engine, so it gets the same wall-time accounting and panic isolation as
// the full evaluation sweep.
//
// Usage:
//
//	safespec-sim -bench mcf -mode wfc -instrs 100000
//	safespec-sim -bench gcc -seed 12345
//	safespec-sim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
	"safespec/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "perlbench", "benchmark kernel to run")
		mode      = flag.String("mode", "wfc", "protection mode: baseline|wfb|wfc")
		instrs    = flag.Uint64("instrs", 100_000, "committed instructions to simulate")
		seed      = flag.Int64("seed", 0, "program-generator seed override (0 = benchmark default)")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		occupancy = flag.Bool("occupancy", false, "report shadow occupancy percentiles")
	)
	flag.Parse()

	if *list {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*benchName, *mode, *instrs, *occupancy, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-sim:", err)
		os.Exit(1)
	}
}

func run(benchName, mode string, instrs uint64, occupancy bool, seed int64) error {
	cfg, err := modeConfig(mode)
	if err != nil {
		return err
	}
	cfg = cfg.WithLimits(instrs, 0)
	cfg.SampleOccupancy = occupancy

	job := sweep.Job{Bench: benchName, Mode: mode, Seed: seed, Config: cfg}
	results, err := sweep.Run(context.Background(), []sweep.Job{job}, sweep.Options{Workers: 1})
	if err != nil {
		return err
	}
	if results[0].Err != nil {
		return results[0].Err
	}
	return printStats(benchName, occupancy, results[0])
}

// modeConfig resolves -mode against sweep.StandardModes so the CLI accepts
// exactly the mode set the evaluation matrix runs.
func modeConfig(mode string) (core.Config, error) {
	specs := sweep.StandardModes()
	names := make([]string, len(specs))
	for i, m := range specs {
		if m.Name == mode {
			return m.Config, nil
		}
		names[i] = m.Name
	}
	return core.Config{}, fmt.Errorf("unknown mode %q (want %s)", mode, strings.Join(names, "|"))
}

func printStats(benchName string, occupancy bool, jr sweep.Result) error {
	res := jr.Res
	fmt.Printf("benchmark      %s\n", benchName)
	fmt.Printf("mode           %s\n", res.Mode)
	fmt.Printf("wall time      %v\n", jr.Wall.Round(time.Microsecond))
	fmt.Printf("cycles         %d\n", res.Cycles)
	fmt.Printf("committed      %d (IPC %.3f)\n", res.Committed, res.IPC())
	fmt.Printf("  loads/stores %d / %d\n", res.CommittedLoads, res.CommittedStores)
	fmt.Printf("squashed       %d\n", res.Squashed)
	fmt.Printf("mispredicts    %d (rate %.4f)\n", res.Mispredicts, res.Bpred.MispredictRate())
	fmt.Printf("d-reads        %d (miss rate %.4f, shadow hit share %.3f)\n",
		res.DReads, res.DReadMissRate(), res.DShadowHitShare())
	fmt.Printf("i-fetches      %d (miss rate %.4f, shadow hit share %.3f)\n",
		res.IFetches, res.IFetchMissRate(), res.IShadowHitShare())
	fmt.Printf("L1D            %d hits / %d misses\n", res.L1D.Hits, res.L1D.Misses)
	fmt.Printf("L1I            %d hits / %d misses\n", res.L1I.Hits, res.L1I.Misses)
	fmt.Printf("L2 / L3 miss   %.4f / %.4f\n", res.L2.MissRate(), res.L3.MissRate())
	fmt.Printf("dTLB / iTLB    %.4f / %.4f miss\n", res.DTLB.MissRate(), res.ITLB.MissRate())
	if res.Mode.SafeSpec() {
		fmt.Printf("shadow d$      %d allocs, commit rate %.3f\n", res.ShD.Allocs, res.ShD.CommitRate())
		fmt.Printf("shadow i$      %d allocs, commit rate %.3f\n", res.ShI.Allocs, res.ShI.CommitRate())
		fmt.Printf("shadow dTLB    %d allocs, commit rate %.3f\n", res.ShDTLB.Allocs, res.ShDTLB.CommitRate())
		fmt.Printf("shadow iTLB    %d allocs, commit rate %.3f\n", res.ShITLB.Allocs, res.ShITLB.CommitRate())
		if occupancy && res.OccD != nil {
			fmt.Printf("occupancy p99.99  d$=%d i$=%d dTLB=%d iTLB=%d\n",
				res.OccD.Percentile(0.9999), res.OccI.Percentile(0.9999),
				res.OccDTLB.Percentile(0.9999), res.OccITLB.Percentile(0.9999))
		}
	}
	return nil
}
