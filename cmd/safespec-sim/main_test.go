package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"baseline", "wfb", "wfc"} {
		if err := run(io.Discard, "exchange2", mode, 2000, true, 0, 1); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run(io.Discard, "nope", "wfc", 1000, false, 0, 1); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(io.Discard, "mcf", "turbo", 1000, false, 0, 1); err == nil {
		t.Error("unknown mode must error")
	}
}

// TestRunIntrospect checks the -introspect dump: valid JSON under the
// versioned schema, occupancy sampled once per cycle, and squash causes
// partitioning the total.
func TestRunIntrospect(t *testing.T) {
	var buf strings.Builder
	if err := runIntrospect(&buf, "exchange2", "wfc", 5_000, 0, 1); err != nil {
		t.Fatal(err)
	}
	var dump introspectDump
	if err := json.Unmarshal([]byte(buf.String()), &dump); err != nil {
		t.Fatalf("introspect output is not JSON: %v\n%s", err, buf.String())
	}
	if dump.Schema != "safespec/introspect/v1" {
		t.Errorf("schema = %q", dump.Schema)
	}
	if dump.Cycles == 0 || dump.Committed == 0 {
		t.Errorf("empty run: %+v", dump)
	}
	for _, key := range []string{"rob", "issue_queue", "completion_wheel"} {
		h, ok := dump.Occupancy[key]
		if !ok {
			t.Fatalf("occupancy lacks %q", key)
		}
		if h.Samples != dump.Cycles {
			t.Errorf("occupancy[%s]: %d samples over %d cycles", key, h.Samples, dump.Cycles)
		}
	}
	if len(dump.Shadow) != 4 {
		t.Errorf("wfc dump carries %d shadow summaries, want 4", len(dump.Shadow))
	}
}

func TestRunIntrospectBaselineOmitsShadow(t *testing.T) {
	var buf strings.Builder
	if err := runIntrospect(&buf, "exchange2", "baseline", 2_000, 0, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"shadow"`) {
		t.Error("baseline dump must omit the shadow block")
	}
}
