package main

import "testing"

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"baseline", "wfb", "wfc"} {
		if err := run("exchange2", mode, 2000, true, 0); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("nope", "wfc", 1000, false, 0); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run("mcf", "turbo", 1000, false, 0); err == nil {
		t.Error("unknown mode must error")
	}
}
