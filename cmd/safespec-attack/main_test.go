package main

import "testing"

func TestRunSingleAttack(t *testing.T) {
	if err := run("spectre-v1", "baseline", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunTSAOnly(t *testing.T) {
	if err := run("tsa", "", false); err != nil {
		t.Fatal(err)
	}
}
