package main

import "testing"

func TestRunSingleAttack(t *testing.T) {
	if err := run("spectre-v1", "baseline", true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunTSAOnly(t *testing.T) {
	if err := run("tsa", "", false, 0); err != nil {
		t.Fatal(err)
	}
}
