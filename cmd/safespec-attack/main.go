// Command safespec-attack runs the proof-of-concept speculation attacks
// against the simulated CPU under each protection mode and prints the leak
// matrix (the paper's Tables III and IV). The attack × mode cells execute
// concurrently on the internal/sweep worker pool; the printed matrix is
// always in attack-major, baseline/wfb/wfc order regardless of scheduling.
//
// Usage:
//
//	safespec-attack                 # all attacks, all modes
//	safespec-attack -attack meltdown -mode wfb -v
//	safespec-attack -workers 1      # serial execution
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"safespec/internal/attacks"
	"safespec/internal/core"
	"safespec/internal/sweep"
)

func main() {
	var (
		attackName = flag.String("attack", "", "single attack to run (default: all)")
		modeName   = flag.String("mode", "", "single mode to run (default: all)")
		verbose    = flag.Bool("v", false, "print per-slot probe timings")
		workers    = flag.Int("workers", 0, "attack worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*attackName, *modeName, *verbose, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-attack:", err)
		os.Exit(1)
	}
}

// cell is one attack × mode entry of the leak matrix.
type cell struct {
	attack attacks.Attack
	mode   string
	cfg    core.Config
	out    attacks.Outcome
	err    error
}

func run(attackName, modeName string, verbose bool, workers int) error {
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Baseline()},
		{"wfb", core.WFB()},
		{"wfc", core.WFC()},
	}

	var cells []cell
	for _, a := range attacks.All() {
		if attackName != "" && a.Name != attackName {
			continue
		}
		for _, m := range modes {
			if modeName != "" && m.name != modeName {
				continue
			}
			cells = append(cells, cell{attack: a, mode: m.name, cfg: m.cfg})
		}
	}

	// Each Execute builds its own simulator, so the cells are independent;
	// results land in the cell slice, keeping the printed order fixed.
	err := sweep.ForEach(context.Background(), len(cells), workers,
		func(_ context.Context, i int) error {
			cells[i].out, cells[i].err = attacks.Execute(cells[i].attack, cells[i].cfg)
			return cells[i].err
		})

	// A failed cell must not discard the rest of the matrix: print every
	// computed row (errored cells flagged in place), then propagate the error.
	fmt.Fprintf(os.Stdout, "%-16s %-9s %-8s %-10s %s\n", "attack", "mode", "leaked", "recovered", "planted")
	for _, c := range cells {
		if c.err != nil {
			fmt.Fprintf(os.Stdout, "%-16s %-9s error: %v\n", c.attack.Name, c.mode, c.err)
			continue
		}
		fmt.Fprintf(os.Stdout, "%-16s %-9s %-8v %-10d %d\n", c.attack.Name, c.mode, c.out.Leaked, c.out.Recovered, c.out.Secret)
		if verbose {
			fmt.Fprintf(os.Stdout, "    probe cycles: %v\n", c.out.Times)
		}
	}
	if err != nil {
		return err
	}

	if attackName == "" || attackName == "tsa" {
		tsa := attacks.TSA{Secret: attacks.DefaultSecret}
		tiny := core.WFC().WithShadowPolicy(attacks.TinyShadowPolicy())
		out, err := tsa.Run(tiny)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "%-16s %-9s %-8v %-10d %d\n", "tsa (tiny)", "wfc", out.Leaked, out.Recovered, out.Secret)
		if verbose {
			fmt.Fprintf(os.Stdout, "    per-bit cycles: %v\n", out.BitTimes)
		}
		out, err = tsa.Run(core.WFC())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "%-16s %-9s %-8v %-10d %d\n", "tsa (secure)", "wfc", out.Leaked, out.Recovered, out.Secret)
	}
	return nil
}
