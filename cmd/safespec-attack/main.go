// Command safespec-attack runs the proof-of-concept speculation attacks
// against the simulated CPU under each protection mode and prints the leak
// matrix (the paper's Tables III and IV).
//
// Usage:
//
//	safespec-attack                 # all attacks, all modes
//	safespec-attack -attack meltdown -mode wfb -v
package main

import (
	"flag"
	"fmt"
	"os"

	"safespec/internal/attacks"
	"safespec/internal/core"
)

func main() {
	var (
		attackName = flag.String("attack", "", "single attack to run (default: all)")
		modeName   = flag.String("mode", "", "single mode to run (default: all)")
		verbose    = flag.Bool("v", false, "print per-slot probe timings")
	)
	flag.Parse()
	if err := run(*attackName, *modeName, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-attack:", err)
		os.Exit(1)
	}
}

func run(attackName, modeName string, verbose bool) error {
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Baseline()},
		{"wfb", core.WFB()},
		{"wfc", core.WFC()},
	}

	fmt.Printf("%-16s %-9s %-8s %-10s %s\n", "attack", "mode", "leaked", "recovered", "planted")
	for _, a := range attacks.All() {
		if attackName != "" && a.Name != attackName {
			continue
		}
		for _, m := range modes {
			if modeName != "" && m.name != modeName {
				continue
			}
			out, err := attacks.Execute(a, m.cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-16s %-9s %-8v %-10d %d\n", a.Name, m.name, out.Leaked, out.Recovered, out.Secret)
			if verbose {
				fmt.Printf("    probe cycles: %v\n", out.Times)
			}
		}
	}

	if attackName == "" || attackName == "tsa" {
		tsa := attacks.TSA{Secret: attacks.DefaultSecret}
		tiny := core.WFC().WithShadowPolicy(attacks.TinyShadowPolicy())
		out, err := tsa.Run(tiny)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-9s %-8v %-10d %d\n", "tsa (tiny)", "wfc", out.Leaked, out.Recovered, out.Secret)
		if verbose {
			fmt.Printf("    per-bit cycles: %v\n", out.BitTimes)
		}
		out, err = tsa.Run(core.WFC())
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-9s %-8v %-10d %d\n", "tsa (secure)", "wfc", out.Leaked, out.Recovered, out.Secret)
	}
	return nil
}
