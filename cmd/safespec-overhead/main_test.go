package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(72, 224, "", false, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomWFC(t *testing.T) {
	if err := run(72, 224, "28,25,25,10", false, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadWFCSpec(t *testing.T) {
	if err := run(72, 224, "1,2", false, 0, 0); err == nil {
		t.Error("short -wfc spec must error")
	}
	if err := run(72, 224, "a,b,c,d", false, 0, 0); err == nil {
		t.Error("non-numeric -wfc spec must error")
	}
}
