// Command safespec-overhead regenerates Table V: the area and power cost
// of the SafeSpec shadow structures at 40nm, for both the Secure
// (worst-case) and the WFC (99.99th-percentile) sizing.
//
// Usage:
//
//	safespec-overhead                      # paper's published sizings
//	safespec-overhead -ldq 72 -rob 224     # change the worst-case bounds
//	safespec-overhead -wfc 28,25,25,10     # custom WFC sizing (d$,i$,dtlb,itlb)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"safespec/internal/figures"
	"safespec/internal/hwmodel"
)

func main() {
	var (
		ldq     = flag.Int("ldq", 72, "load-queue size bounding the data-side worst case")
		rob     = flag.Int("rob", 224, "ROB size bounding the instruction-side worst case")
		wfcSpec = flag.String("wfc", "", "WFC sizing as d$,i$,dtlb,itlb (default: paper's values)")
		measure = flag.Bool("measure", false, "derive the WFC sizing from a fresh workload sweep")
		workers = flag.Int("workers", 0, "sweep worker pool size for -measure (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "abort the -measure sweep after this long (0 = no bound)")
	)
	flag.Parse()
	if err := run(*ldq, *rob, *wfcSpec, *measure, *workers, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-overhead:", err)
		os.Exit(1)
	}
}

func run(ldq, rob int, wfcSpec string, measure bool, workers int, timeout time.Duration) error {
	tech := hwmodel.Tech40nm()
	secure := hwmodel.SecureSizes(ldq, rob)

	var rows [2]hwmodel.Report
	switch {
	case measure:
		sc := figures.DefaultSweep()
		sc.Workers = workers
		sc.Timeout = timeout
		sweepRes, err := figures.RunSweep(sc)
		if err != nil {
			return err
		}
		rows = figures.TableVFromSizing(figures.Sizing(sweepRes))
	case wfcSpec != "":
		parts := strings.Split(wfcSpec, ",")
		if len(parts) != 4 {
			return fmt.Errorf("-wfc wants 4 comma-separated sizes, got %q", wfcSpec)
		}
		var sizes [4]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("-wfc component %d: %v", i, err)
			}
			sizes[i] = v
		}
		wfc := hwmodel.ShadowSizes{DCache: sizes[0], ICache: sizes[1], DTLB: sizes[2], ITLB: sizes[3]}
		rows = hwmodel.TableV(tech, secure, wfc)
	default:
		rows = hwmodel.TableV(tech, secure, hwmodel.PaperWFCSizes())
	}

	fmt.Fprintln(os.Stdout, "Table V: SafeSpec hardware overhead at 40nm")
	fmt.Fprint(os.Stdout, figures.FormatTableV(rows))
	return nil
}
