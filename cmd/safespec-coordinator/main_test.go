package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"safespec/internal/grid"
	"safespec/internal/sweep"
)

// TestCoordinatorServesSweeps drives the binary's run function end to end:
// it must announce its address, enforce the bearer token, serve a sweep
// submitted by a RemoteExecutor through an authenticated worker, and shut
// down cleanly on context cancellation.
func TestCoordinatorServesSweeps(t *testing.T) {
	const token = "coordinator-test-token"
	infoR, infoW := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, config{listen: "127.0.0.1:0", token: token, info: infoW})
		infoW.Close()
		done <- err
	}()

	// Scrape the ephemeral address from the structured startup record
	// ("coordinator listening" with a url= attribute), then keep draining
	// the stream (io.Pipe writes block on an idle reader).
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(infoR)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "coordinator listening") {
				continue
			}
			if _, addr, ok := strings.Cut(line, "url="); ok {
				urlc <- strings.Fields(addr)[0]
			}
		}
	}()
	var url string
	select {
	case url = <-urlc:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	// Unauthenticated requests bounce off every endpoint.
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless stats got %d, want 401", resp.StatusCode)
	}

	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	w := &grid.Worker{Coordinator: url, Token: token, ID: "cw", Parallel: 2,
		Poll: 5 * time.Millisecond}
	go w.Run(workerCtx)

	spec := sweep.Quick()
	spec.Benchmarks = []string{"exchange2"}
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	re := &grid.RemoteExecutor{URL: url, Token: token, PollWait: 100 * time.Millisecond}
	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Workers: len(jobs), Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Errorf("close sweep: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("coordinator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not exit on cancellation")
	}
}

// TestCoordinatorBadListenAddr: an unusable listen address must error out
// instead of hanging.
func TestCoordinatorBadListenAddr(t *testing.T) {
	err := run(context.Background(), config{listen: "256.256.256.256:0", quiet: true, info: io.Discard})
	if err == nil {
		t.Fatal("bogus listen address must error")
	}
}
