package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"safespec/internal/grid"
	"safespec/internal/sweep"
)

// TestCoordinatorServesSweeps drives the binary's run function end to end:
// it must announce its address, enforce the bearer token, serve a sweep
// submitted by a RemoteExecutor through an authenticated worker, and shut
// down cleanly on context cancellation.
func TestCoordinatorServesSweeps(t *testing.T) {
	const token = "coordinator-test-token"
	infoR, infoW := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, config{listen: "127.0.0.1:0", token: token, info: infoW})
		infoW.Close()
		done <- err
	}()

	// Scrape the ephemeral address from the structured startup record
	// ("coordinator listening" with a url= attribute), then keep draining
	// the stream (io.Pipe writes block on an idle reader).
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(infoR)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "coordinator listening") {
				continue
			}
			if _, addr, ok := strings.Cut(line, "url="); ok {
				urlc <- strings.Fields(addr)[0]
			}
		}
	}()
	var url string
	select {
	case url = <-urlc:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	// Unauthenticated requests bounce off every endpoint.
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless stats got %d, want 401", resp.StatusCode)
	}

	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	w := &grid.Worker{Coordinator: url, Token: token, ID: "cw", Parallel: 2,
		Poll: 5 * time.Millisecond}
	go w.Run(workerCtx)

	spec := sweep.Quick()
	spec.Benchmarks = []string{"exchange2"}
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	re := &grid.RemoteExecutor{URL: url, Token: token, PollWait: 100 * time.Millisecond}
	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Workers: len(jobs), Executor: re})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Errorf("close sweep: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("coordinator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not exit on cancellation")
	}
}

// TestCoordinatorBadListenAddr: an unusable listen address must error out
// instead of hanging.
func TestCoordinatorBadListenAddr(t *testing.T) {
	err := run(context.Background(), config{listen: "256.256.256.256:0", quiet: true, info: io.Discard})
	if err == nil {
		t.Fatal("bogus listen address must error")
	}
}

// TestCoordinatorStateSurvivesRestart: with -state-dir, a sweep submitted
// to one coordinator process is served by the next one — the restart
// announces the recovery, the submission nonce resolves to the same sweep
// id, and the sweep's result cursor answers.
func TestCoordinatorStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	start := func() (url string, recovered chan string, cancel context.CancelFunc, done chan error) {
		infoR, infoW := io.Pipe()
		ctx, cancelRun := context.WithCancel(context.Background())
		done = make(chan error, 1)
		go func() {
			err := run(ctx, config{listen: "127.0.0.1:0", stateDir: dir,
				drainWait: 2 * time.Second, info: infoW})
			infoW.Close()
			done <- err
		}()
		urlc := make(chan string, 1)
		recovered = make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(infoR)
			for sc.Scan() {
				line := sc.Text()
				if strings.Contains(line, "coordinator listening") {
					if _, addr, ok := strings.Cut(line, "url="); ok {
						urlc <- strings.Fields(addr)[0]
					}
				}
				if strings.Contains(line, "state recovered") {
					select {
					case recovered <- line:
					default:
					}
				}
			}
		}()
		select {
		case url = <-urlc:
		case <-time.After(10 * time.Second):
			t.Fatal("coordinator never announced its address")
		}
		return url, recovered, cancelRun, done
	}

	submit := func(url, nonce string) string {
		t.Helper()
		spec := sweep.Quick()
		spec.Benchmarks = []string{"exchange2"}
		spec.Instructions = 2_000
		jobs, err := spec.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(grid.SubmitRequest{Jobs: jobs[:1], Nonce: nonce})
		resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var sr grid.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr.SweepID
	}

	url1, _, cancel1, done1 := start()
	id := submit(url1, "n-cmd-restart")
	cancel1()
	select {
	case err := <-done1:
		if err != nil {
			t.Fatalf("first coordinator exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first coordinator did not exit")
	}

	url2, rec2, cancel2, done2 := start()
	defer func() {
		cancel2()
		<-done2
	}()
	select {
	case line := <-rec2:
		if !strings.Contains(line, "sweeps=1") {
			t.Errorf("recovery line reports wrong sweep count: %s", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restarted coordinator never logged state recovery")
	}
	// The nonce resolves to the recovered sweep, not a fresh one.
	if got := submit(url2, "n-cmd-restart"); got != id {
		t.Fatalf("nonce resolved to %s after restart, want %s", got, id)
	}
	// And its result cursor answers.
	resp, err := http.Get(url2 + "/v1/sweeps/" + id + "/results?after=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered sweep cursor: status %d, want 200", resp.StatusCode)
	}
}
