// Command safespec-coordinator hosts a persistent SafeSpec grid
// coordinator: a long-lived service that safespec-worker processes poll
// for leased jobs and to which safespec-bench -remote submits sweeps. One
// coordinator serves any number of sequential (or concurrent) sweeps, so
// a multi-machine worker fleet stays up between bench runs.
//
// Usage:
//
//	safespec-coordinator -listen 0.0.0.0:9090 -token SECRET
//	safespec-worker -coordinator http://host:9090 -token SECRET   # on each machine
//	safespec-bench -figs perf -remote http://host:9090 -token SECRET
//
// Across trust boundaries, serve TLS natively and split clients into
// tenants:
//
//	safespec-coordinator -listen 0.0.0.0:9443 \
//	    -tls-cert cert.pem -tls-key key.pem \
//	    -token-file tenants.json -pprof 127.0.0.1:6060
//
// The token file maps per-client bearer tokens to named tenants, each with
// an optional concurrent-sweep quota (over-quota submissions get 403) and
// request rate limit (excess requests get 429); the single -token flag
// remains as a shorthand for one unlimited tenant named "default". An
// empty token configuration disables auth and should only be used on
// loopback. Jobs are leased with a TTL (-lease-ttl): a crashed worker's
// jobs are requeued to the surviving fleet. A sweep whose submitting bench
// process disappears is abandoned after -sweep-ttl, so coordinator memory
// holds steady over days.
//
// With -state-dir the coordinator journals every sweep mutation to disk
// and recovers in-flight sweeps on restart: delivered results serve
// existing cursors without re-simulation, undelivered jobs re-enter the
// queue, and clients (safespec-bench -remote) ride the restart out
// transparently. SIGTERM/SIGINT drains gracefully — leases stop, in-flight
// requests finish within -drain-timeout, state is snapshotted — while
// kill -9 is recovered from the journal. The -pprof listener additionally serves
// Prometheus-style metrics on /metrics and a live read-only HTML results
// page on /status — unauthenticated by design, so keep it on loopback or
// an operations network.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safespec/internal/grid"
	"safespec/internal/obs"
	"safespec/internal/pprofserve"
)

// config carries the flag surface (kept as a struct so tests can drive run
// directly).
type config struct {
	listen    string
	token     string
	tokenFile string
	tlsCert   string
	tlsKey    string
	leaseTTL  time.Duration
	retries   int
	sweepTTL  time.Duration
	quarAfter int
	hedge     time.Duration
	stateDir  string
	drainWait time.Duration
	quiet     bool
	logLevel  string
	logFormat string
	pprofAddr string

	info io.Writer // log destination (stderr in main)
}

func main() {
	var c config
	flag.StringVar(&c.listen, "listen", "127.0.0.1:9090", "listen address (host:port; :0 for an ephemeral port, announced in the startup log line)")
	flag.StringVar(&c.token, "token", os.Getenv("SAFESPEC_TOKEN"), "single-tenant shorthand: one unlimited tenant with this bearer token (default $SAFESPEC_TOKEN; empty with no -token-file disables auth)")
	flag.StringVar(&c.tokenFile, "token-file", "", "JSON file mapping per-client tokens to named tenants with sweep quotas and rate limits (overrides -token)")
	flag.StringVar(&c.tlsCert, "tls-cert", "", "serve native TLS with this PEM certificate (requires -tls-key)")
	flag.StringVar(&c.tlsKey, "tls-key", "", "PEM private key for -tls-cert")
	flag.DurationVar(&c.leaseTTL, "lease-ttl", 0, "job lease duration; size it above the slowest single job (default 2m)")
	flag.IntVar(&c.retries, "lease-retries", 0, "lease grants per job before it fails as lost (default 5)")
	flag.DurationVar(&c.sweepTTL, "sweep-ttl", 0, "abandon a sweep whose client stopped polling this long ago (default 10m)")
	flag.IntVar(&c.quarAfter, "quarantine-after", 0, "quarantine a job after incidents from this many distinct workers (default 2; 1 quarantines on the first incident)")
	flag.DurationVar(&c.hedge, "hedge-after", 0, "hedge a tail lease older than this to a second worker (0 = adaptive 2x p95 simulate time; negative disables)")
	flag.StringVar(&c.stateDir, "state-dir", "", "journal sweep state under this directory and recover it on restart (empty disables durability)")
	flag.DurationVar(&c.drainWait, "drain-timeout", 5*time.Second, "on SIGTERM/SIGINT, wait this long for in-flight requests to finish before closing")
	flag.BoolVar(&c.quiet, "quiet", false, "suppress per-sweep progress lines (same as -log-level warn)")
	flag.StringVar(&c.logLevel, "log-level", "info", "log level: debug|info|warn|error")
	flag.StringVar(&c.logFormat, "log-format", "text", "log format: text|json")
	flag.StringVar(&c.pprofAddr, "pprof", "", "serve net/http/pprof plus /metrics (Prometheus text) and /status (live HTML) on this unauthenticated address (e.g. 127.0.0.1:6060)")
	flag.Parse()
	c.info = os.Stderr

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, c); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-coordinator:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, c config) error {
	if (c.tlsCert == "") != (c.tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key go together (got cert=%q key=%q)", c.tlsCert, c.tlsKey)
	}
	if c.quiet && (c.logLevel == "" || c.logLevel == "info") {
		c.logLevel = "warn"
	}
	log, err := obs.NewLogger(c.info, c.logLevel, c.logFormat)
	if err != nil {
		return err
	}
	var tenants []grid.Tenant
	if c.tokenFile != "" {
		if tenants, err = grid.LoadTenants(c.tokenFile); err != nil {
			return err
		}
	}
	server := grid.NewServer(grid.ServerOptions{
		Token:   c.token,
		Tenants: tenants,
		Lease: grid.Options{LeaseTTL: c.leaseTTL, MaxAttempts: c.retries,
			QuarantineAfter: c.quarAfter, HedgeAfter: c.hedge},
		SweepTTL: c.sweepTTL,
		Log:      log,
	})
	if c.stateDir != "" {
		if err := server.OpenState(c.stateDir); err != nil {
			return err
		}
	}
	if c.pprofAddr != "" {
		addr, err := pprofserve.Serve(c.pprofAddr, server.OpsHandler())
		if err != nil {
			return err
		}
		log.Info("ops listener up", "addr", addr.String(),
			"pprof", fmt.Sprintf("http://%s/debug/pprof/", addr),
			"metrics", fmt.Sprintf("http://%s/metrics", addr),
			"status", fmt.Sprintf("http://%s/status", addr))
	}
	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	auth := "enabled"
	switch {
	case len(tenants) > 0:
		auth = fmt.Sprintf("enabled, %d tenants", len(tenants))
	case c.token == "":
		auth = "DISABLED; set -token, $SAFESPEC_TOKEN or -token-file for anything beyond loopback"
	}
	scheme := "http"
	if c.tlsCert != "" {
		scheme = "https"
	}
	log.Info("coordinator listening", "url", fmt.Sprintf("%s://%s", scheme, ln.Addr()), "auth", auth)

	srv := &http.Server{Handler: server.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() {
		if c.tlsCert != "" {
			errc <- srv.ServeTLS(ln, c.tlsCert, c.tlsKey)
		} else {
			errc <- srv.Serve(ln)
		}
	}()
	select {
	case <-ctx.Done():
		// Graceful drain: stop granting leases, wake parked long-polls so
		// in-flight requests finish, then give Shutdown a bounded window
		// before forcing the listener closed. Exit 0 either way — shutdown
		// is an operator action, not a failure.
		log.Info("draining", "timeout", c.drainWait.String())
		server.Drain()
		shutCtx, cancelShut := context.WithTimeout(context.Background(), c.drainWait)
		if serr := srv.Shutdown(shutCtx); serr != nil {
			srv.Close()
		}
		cancelShut()
		<-errc
		err = nil
	case err = <-errc:
		if err == http.ErrServerClosed {
			err = nil
		}
	}
	if c.stateDir != "" {
		// Fold the journal into a final snapshot; a kill -9 skips this and
		// replays the journal on the next start instead.
		if cerr := server.CloseState(); cerr != nil {
			log.Error("state close failed", "err", cerr.Error())
		}
	}
	s := server.Stats()
	log.Info("coordinator summary",
		"sweeps_served", s.SweepsSubmitted, "sweeps_abandoned", s.SweepsAbandoned,
		"leases_granted", s.Granted, "jobs_completed", s.Completed,
		"leases_requeued", s.Requeued, "jobs_failed", s.Failed)
	return err
}
