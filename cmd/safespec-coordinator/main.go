// Command safespec-coordinator hosts a persistent SafeSpec grid
// coordinator: a long-lived service that safespec-worker processes poll
// for leased jobs and to which safespec-bench -remote submits sweeps. One
// coordinator serves any number of sequential (or concurrent) sweeps, so
// a multi-machine worker fleet stays up between bench runs.
//
// Usage:
//
//	safespec-coordinator -listen 0.0.0.0:9090 -token SECRET
//	safespec-worker -coordinator http://host:9090 -token SECRET   # on each machine
//	safespec-bench -figs perf -remote http://host:9090 -token SECRET
//
// Every /v1/* endpoint requires `Authorization: Bearer SECRET` when a
// token is configured (-token or $SAFESPEC_TOKEN); an empty token disables
// auth and should only be used on loopback. Jobs are leased with a TTL
// (-lease-ttl): a crashed worker's jobs are requeued to the surviving
// fleet. A sweep whose submitting bench process disappears is abandoned
// after -sweep-ttl, so coordinator memory holds steady over days.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safespec/internal/grid"
	"safespec/internal/pprofserve"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9090", "listen address (host:port; :0 for an ephemeral port, printed to stderr)")
		token    = flag.String("token", os.Getenv("SAFESPEC_TOKEN"), "shared bearer token required on every /v1/* request (default $SAFESPEC_TOKEN; empty disables auth)")
		leaseTTL = flag.Duration("lease-ttl", 0, "job lease duration; size it above the slowest single job (default 2m)")
		retries  = flag.Int("lease-retries", 0, "lease grants per job before it fails as lost (default 5)")
		sweepTTL = flag.Duration("sweep-ttl", 0, "abandon a sweep whose client stopped polling this long ago (default 10m)")
		quiet    = flag.Bool("quiet", false, "suppress per-sweep progress lines")
		pprofA   = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. 127.0.0.1:6060) for live profiling")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofA != "" {
		if err := pprofserve.Serve(*pprofA); err != nil {
			fmt.Fprintln(os.Stderr, "safespec-coordinator:", err)
			os.Exit(1)
		}
	}
	if err := run(ctx, *listen, *token, *leaseTTL, *retries, *sweepTTL, *quiet, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-coordinator:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen, token string, leaseTTL time.Duration,
	retries int, sweepTTL time.Duration, quiet bool, info io.Writer) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(info, format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	server := grid.NewServer(grid.ServerOptions{
		Token:    token,
		Lease:    grid.Options{LeaseTTL: leaseTTL, MaxAttempts: retries},
		SweepTTL: sweepTTL,
		Logf:     logf,
	})
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	auth := "auth enabled"
	if token == "" {
		auth = "auth DISABLED; set -token or $SAFESPEC_TOKEN for anything beyond loopback"
	}
	fmt.Fprintf(info, "safespec-coordinator listening on http://%s (%s)\n", ln.Addr(), auth)

	srv := &http.Server{Handler: server.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		srv.Close()
		<-errc
		err = nil
	case err = <-errc:
		if err == http.ErrServerClosed {
			err = nil
		}
	}
	s := server.Stats()
	fmt.Fprintf(info, "safespec-coordinator: %d sweeps served (%d abandoned); leases granted=%d completed=%d requeued=%d failed=%d\n",
		s.SweepsSubmitted, s.SweepsAbandoned, s.Granted, s.Completed, s.Requeued, s.Failed)
	return err
}
