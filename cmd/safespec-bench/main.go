// Command safespec-bench regenerates the paper's evaluation: the shadow
// sizing study (Figures 6-9), the performance comparison (Figures 11-16),
// the security matrices (Tables III/IV) and the hardware overhead
// (Table V).
//
// Usage:
//
//	safespec-bench                      # everything
//	safespec-bench -figs sizing         # Figures 6-9 only
//	safespec-bench -figs perf           # Figures 11-16 only
//	safespec-bench -figs security       # Tables III/IV only
//	safespec-bench -figs overhead       # Table V only
//	safespec-bench -instrs 250000       # longer runs
//	safespec-bench -bench mcf,gcc       # subset of benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"safespec/internal/figures"
)

func main() {
	var (
		figsFlag   = flag.String("figs", "all", "which outputs: all|sizing|perf|security|overhead|config")
		instrs     = flag.Uint64("instrs", figures.DefaultSweep().Instructions, "committed instructions per benchmark run")
		benchNames = flag.String("bench", "", "comma-separated benchmark subset (default: all 21)")
		serial     = flag.Bool("serial", false, "run benchmarks one at a time")
	)
	flag.Parse()

	if err := run(*figsFlag, *instrs, *benchNames, *serial); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-bench:", err)
		os.Exit(1)
	}
}

func run(figsFlag string, instrs uint64, benchNames string, serial bool) error {
	want := func(k string) bool { return figsFlag == "all" || figsFlag == k }

	if want("config") {
		printConfig()
	}

	var sweep []figures.BenchResult
	if want("sizing") || want("perf") || want("overhead") {
		sc := figures.DefaultSweep()
		sc.Instructions = instrs
		sc.Parallel = !serial
		if benchNames != "" {
			sc.Benchmarks = strings.Split(benchNames, ",")
		}
		fmt.Printf("running sweep: %d instructions per benchmark per mode...\n\n", sc.Instructions)
		var err error
		sweep, err = figures.RunSweep(sc)
		if err != nil {
			return err
		}
	}

	if want("sizing") {
		fmt.Println("=== Figures 6-9: shadow structure size covering 99.99% of cycles ===")
		fmt.Println(figures.FormatSizing(figures.Sizing(sweep)))
	}
	if want("perf") {
		fmt.Println("=== Figures 11-16: performance of SafeSpec (WFC) vs baseline ===")
		fmt.Println(figures.FormatPerformance(figures.Performance(sweep)))
	}
	if want("security") {
		fmt.Println("=== Tables III/IV: security evaluation ===")
		rows, err := figures.Security()
		if err != nil {
			return err
		}
		tr, err := figures.Transient()
		if err != nil {
			return err
		}
		fmt.Println(figures.FormatSecurity(rows, tr))
	}
	if want("overhead") {
		fmt.Println("=== Table V: hardware overhead at 40nm ===")
		fmt.Println(figures.FormatTableV(figures.TableVFromSizing(figures.Sizing(sweep))))
	}
	return nil
}

func printConfig() {
	fmt.Println("=== Tables I/II: simulated CPU configuration (Skylake-like) ===")
	fmt.Print(`CPU           6-wide issue, 96-entry IQ, 224-entry ROB, 72-entry LDQ, 56-entry STQ
TLBs          64-entry iTLB, 64-entry dTLB (4-way)
L1I / L1D     32 KB, 8-way, 64 B lines, 4-cycle hit
L2            256 KB, 4-way, 64 B lines, 12-cycle hit
L3            2 MB, 16-way, 64 B lines, 44-cycle hit
Memory        191 cycles
`)
	fmt.Println()
}
