// Command safespec-bench regenerates the paper's evaluation: the shadow
// sizing study (Figures 6-9), the performance comparison (Figures 11-16),
// the security matrices (Tables III/IV) and the hardware overhead
// (Table V).
//
// Usage:
//
//	safespec-bench                      # everything
//	safespec-bench -figs sizing         # Figures 6-9 only
//	safespec-bench -figs perf           # Figures 11-16 only
//	safespec-bench -figs security       # Tables III/IV only
//	safespec-bench -figs overhead       # Table V only
//	safespec-bench -instrs 250000       # longer runs
//	safespec-bench -bench mcf,gcc       # subset of benchmarks
//	safespec-bench -workers 4           # bound the worker pool
//	safespec-bench -quick               # CI smoke matrix
//	safespec-bench -figs perf -json     # per-job JSON-lines rows on stdout
//	safespec-bench -seeds 1,2,3         # seed fan; figures show mean ± 95% CI
//	safespec-bench -cache-dir .cache    # content-addressed result cache
//	safespec-bench -serve :9090         # host an in-process coordinator for a worker fleet
//	safespec-bench -remote http://host:9090 -token SECRET
//	                                    # submit the sweep to a persistent safespec-coordinator
//	safespec-bench -remote https://host:9443 -token SECRET -tls-ca cert.pem
//	                                    # ... over TLS, trusting a self-signed coordinator cert
//	safespec-bench -perf                # throughput report on the pinned Quick matrix
//	safespec-bench -perf -preset full   # ... on the pinned all-benchmark matrix
//
// The per-job rows emitted by -json are deterministic and arrive in job
// order for any -workers value, so outputs are byte-identical across worker
// counts — and across local, cached and distributed execution. Progress and
// accounting go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"safespec/internal/figures"
	"safespec/internal/grid"
	"safespec/internal/obs"
	"safespec/internal/perf"
	"safespec/internal/resultcache"
	"safespec/internal/sweep"
)

// options carries the flag surface (kept as a struct so tests can drive run
// directly and capture its output).
type options struct {
	figs     string
	instrs   uint64 // 0 = preset default
	bench    string
	seeds    string
	serial   bool
	workers  int
	timeout  time.Duration
	json     bool
	quick    bool
	cacheDir string
	cacheGC  string
	remote   string
	serve    string
	token    string
	tlsCA    string
	leaseTTL time.Duration
	retries  int

	logLevel  string
	logFormat string

	perf            bool
	perfPreset      string
	perfLabel       string
	perfOut         string
	perfRepeats     int
	perfBaseline    string
	perfMaxRegress  float64
	perfMaxAllocReg float64

	out  io.Writer // table / JSON output (stdout in main)
	info io.Writer // progress + accounting (stderr in main)
}

func main() {
	var o options
	flag.StringVar(&o.figs, "figs", "all", "which outputs: all|sizing|perf|security|overhead|config (none = run nothing, for a standalone -cache-gc pass)")
	flag.Uint64Var(&o.instrs, "instrs", 0, "committed instructions per benchmark run (default: preset)")
	flag.StringVar(&o.bench, "bench", "", "comma-separated benchmark subset (default: all 21)")
	flag.BoolVar(&o.serial, "serial", false, "run benchmarks one at a time (same as -workers 1)")
	flag.IntVar(&o.workers, "workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the sweep after this long (0 = no bound)")
	flag.BoolVar(&o.json, "json", false, "emit per-job JSON-lines rows on stdout instead of tables (requires -figs sizing|perf|overhead)")
	flag.BoolVar(&o.quick, "quick", false, "use the reduced smoke matrix (sweep.Quick) for CI")
	flag.StringVar(&o.seeds, "seeds", "", "comma-separated generator seed fan per (bench, mode) cell; figures collapse it into mean ± 95% CI")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "content-addressed result cache directory (identical cells are never simulated twice)")
	flag.StringVar(&o.remote, "remote", "", "submit the sweep to a persistent safespec-coordinator at this base URL (e.g. http://host:9090)")
	flag.StringVar(&o.serve, "serve", "", "host an in-process grid coordinator on this listen address and run the sweep through it (the degenerate -remote; lets safespec-worker processes join)")
	flag.StringVar(&o.token, "token", os.Getenv("SAFESPEC_TOKEN"), "coordinator bearer token for -remote, and the token enforced by -serve (default $SAFESPEC_TOKEN)")
	flag.StringVar(&o.tlsCA, "tls-ca", "", "PEM bundle to trust for an https:// -remote coordinator (e.g. its self-signed -tls-cert); empty uses the system roots")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 0, "grid lease duration for -serve; size it above the slowest single job (default 2m)")
	flag.IntVar(&o.retries, "lease-retries", 0, "grid lease grants per job before it fails as lost, for -serve (default 5)")
	flag.StringVar(&o.cacheGC, "cache-gc", "", "prune the -cache-dir result cache to at most this many bytes, oldest entries first (accepts K/M/G suffixes; runs standalone when no sweep is requested)")
	flag.BoolVar(&o.perf, "perf", false, "measure simulator throughput on the pinned workload matrix and emit a BENCH_<label>.json report instead of figures")
	flag.StringVar(&o.perfPreset, "preset", "", "pinned matrix for -perf: quick (6-bench CI smoke) or full (all 21 benchmarks); default quick. Incompatible with -bench/-instrs/-seeds, which define a custom matrix")
	flag.StringVar(&o.perfLabel, "perf-label", "local", "label of the perf report (file becomes BENCH_<label>.json)")
	flag.StringVar(&o.perfOut, "perf-out", ".", "directory receiving the BENCH_<label>.json report")
	flag.IntVar(&o.perfRepeats, "perf-repeats", 3, "timed repeats of the matrix; the headline is the best repeat")
	flag.StringVar(&o.perfBaseline, "perf-baseline", "", "compare against this BENCH_*.json and fail on regression (the CI gate)")
	flag.Float64Var(&o.perfMaxRegress, "perf-max-regress", 0.15, "tolerated cells/sec regression vs -perf-baseline, as a fraction (aggregate, and per benchmark when both reports carry rows)")
	flag.Float64Var(&o.perfMaxAllocReg, "perf-max-alloc-regress", 0.01, "tolerated allocs-per-sim-cycle increase vs -perf-baseline, absolute (negative disables the allocation gate)")
	flag.StringVar(&o.logLevel, "log-level", "info", "log level for progress records on stderr: debug|info|warn|error")
	flag.StringVar(&o.logFormat, "log-format", "text", "log format for progress records: text|json")
	flag.Parse()
	o.out, o.info = os.Stdout, os.Stderr

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "safespec-bench:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.perf {
		return runPerf(o)
	}
	if o.perfPreset != "" {
		return fmt.Errorf("-preset selects a -perf matrix; figure sweeps are shaped by -quick/-bench/-instrs/-seeds")
	}
	want := func(k string) bool { return o.figs == "all" || o.figs == k }
	sweeps := want("sizing") || want("perf") || want("overhead")
	if o.cacheGC != "" {
		if o.cacheDir == "" {
			return fmt.Errorf("-cache-gc prunes the result cache; it needs -cache-dir")
		}
		if !sweeps {
			if o.figs != "none" {
				// Refuse to silently skip requested non-sweep outputs
				// (security/config run no sweep and never touch the cache).
				return fmt.Errorf("-cache-gc with -figs %s runs no sweep; use -figs none for a standalone GC pass", o.figs)
			}
			// Standalone GC pass: prune and exit without running anything.
			return runCacheGC(o)
		}
	}
	if o.json {
		switch o.figs {
		case "sizing", "perf", "overhead":
		default:
			// "all" is rejected too: its security/config outputs have no row
			// representation and would be silently dropped.
			return fmt.Errorf("-json emits per-job sweep rows; -figs %s has outputs without rows (want sizing|perf|overhead)", o.figs)
		}
	}

	if (o.remote != "" || o.serve != "" || o.cacheDir != "") && !sweeps {
		return fmt.Errorf("-remote/-serve/-cache-dir apply to sweeps; -figs %s runs none (use -cache-gc for a standalone cache prune)", o.figs)
	}
	if o.remote != "" && o.serve != "" {
		return fmt.Errorf("-remote submits to an external coordinator and -serve hosts one in-process; pick one")
	}
	if o.tlsCA != "" && o.remote == "" {
		return fmt.Errorf("-tls-ca pins the certificate of an https:// -remote coordinator; -serve is plain http on a trusted network")
	}
	if (o.leaseTTL != 0 || o.retries != 0) && o.serve == "" {
		return fmt.Errorf("-lease-ttl/-lease-retries configure the in-process coordinator (-serve); an external coordinator owns its lease policy (set them on safespec-coordinator)")
	}

	if want("config") && !o.json {
		printConfig(o.out)
	}

	var sweepRes []figures.BenchResult
	if sweeps {
		log, err := obs.NewLogger(o.info, o.logLevel, o.logFormat)
		if err != nil {
			return err
		}
		sc, err := sweepConfig(o)
		if err != nil {
			return err
		}
		exec, finish, err := buildExecutor(o, log)
		if err != nil {
			return err
		}
		defer finish()
		sc.Executor = exec
		agg := &sweep.Aggregate{}
		sc.Sinks = append(sc.Sinks, agg)
		// Periodic done/total, rate and ETA lines on stderr; the count comes
		// from the same matrix expansion RunSweep performs.
		if jobs, jerr := sc.Matrix(); jerr == nil {
			sc.Sinks = append(sc.Sinks, &sweep.Progress{Total: len(jobs), Log: log})
		}
		if o.json {
			sc.Sinks = append(sc.Sinks, sweep.NewJSONL(o.out))
		}
		fmt.Fprintf(o.info, "running sweep: %d instructions per benchmark per mode...\n", sc.Instructions)
		sweepRes, err = figures.RunSweep(sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.info, "sweep done: %s\n", agg)
		if s := agg.SpanSummary(); s != "" {
			fmt.Fprintf(o.info, "sweep %s\n", s)
		}
	}

	if !o.json {
		if want("sizing") {
			fmt.Fprintln(o.out, "=== Figures 6-9: shadow structure size covering 99.99% of cycles ===")
			fmt.Fprintln(o.out, figures.FormatSizing(figures.Sizing(sweepRes)))
		}
		if want("perf") {
			fmt.Fprintln(o.out, "=== Figures 11-16: performance of SafeSpec (WFC) vs baseline ===")
			fmt.Fprintln(o.out, figures.FormatPerformance(figures.Performance(sweepRes)))
		}
		if want("overhead") {
			fmt.Fprintln(o.out, "=== Table V: hardware overhead at 40nm ===")
			fmt.Fprintln(o.out, figures.FormatTableV(figures.TableVFromSizing(figures.Sizing(sweepRes))))
		}
	}
	if o.cacheGC != "" {
		// GC after the sweep so the entries it just wrote are the newest.
		if err := runCacheGC(o); err != nil {
			return err
		}
	}
	if want("security") && !o.json {
		fmt.Fprintln(o.out, "=== Tables III/IV: security evaluation ===")
		rows, err := figures.Security()
		if err != nil {
			return err
		}
		tr, err := figures.Transient()
		if err != nil {
			return err
		}
		fmt.Fprintln(o.out, figures.FormatSecurity(rows, tr))
	}
	return nil
}

// sweepConfig derives the figures sweep configuration from the flags:
// -quick selects the CI smoke matrix, -instrs/-bench/-seeds override the
// preset, and -serial forces a single worker.
func sweepConfig(o options) (figures.SweepConfig, error) {
	sc := figures.DefaultSweep()
	if o.quick {
		sc = figures.QuickSweep()
		sc.Benchmarks = sweep.Quick().Benchmarks
	}
	if o.instrs > 0 {
		sc.Instructions = o.instrs
		// Keep the safety cycle bound proportionate (the default budget's
		// cycles-per-instruction ratio) so a raised -instrs is never
		// silently truncated by a preset's smaller bound.
		d := figures.DefaultSweep()
		sc.MaxCycles = max(sc.MaxCycles, o.instrs*(d.MaxCycles/d.Instructions))
	}
	if o.bench != "" {
		sc.Benchmarks = strings.Split(o.bench, ",")
	}
	if o.seeds != "" {
		seeds, err := parseSeeds(o.seeds)
		if err != nil {
			return sc, err
		}
		sc.Seeds = seeds
	}
	sc.Workers = o.workers
	if (o.remote != "" || o.serve != "") && o.workers == 0 {
		// In remote mode a sweep "worker" is just a goroutine holding one
		// in-flight lease, so the default bound is the queue depth offered
		// to the fleet, not local parallelism.
		sc.Workers = 64
	}
	sc.Timeout = o.timeout
	if o.serial {
		sc.Workers = 1
	}
	return sc, nil
}

// buildExecutor assembles the sweep execution backend from the flags:
// in-process simulation by default, a grid.RemoteExecutor submitting to an
// external persistent coordinator under -remote (or to an in-process one
// under -serve — the degenerate case, for fleets without a standalone
// safespec-coordinator), and any of them behind the content-addressed
// result cache under -cache-dir (cache hits never reach the grid; only
// misses are submitted). finish releases the sweep's coordinator-side
// state and reports cache and grid accounting; it is safe to call exactly
// once after the sweep.
func buildExecutor(o options, log *slog.Logger) (exec sweep.Executor, finish func(), err error) {
	finish = func() {}
	reportGrid := func(s grid.ServerSnapshot) {
		fmt.Fprintf(o.info, "grid: leases granted=%d completed=%d requeued=%d failed=%d incidents=%d quarantined=%d hedged=%d\n",
			s.Granted, s.Completed, s.Requeued, s.Failed, s.Incidents, s.Quarantined, s.Hedged)
	}
	switch {
	case o.serve != "":
		server := grid.NewServer(grid.ServerOptions{
			Token: o.token,
			Lease: grid.Options{LeaseTTL: o.leaseTTL, MaxAttempts: o.retries},
			Log:   log,
		})
		ln, lerr := net.Listen("tcp", o.serve)
		if lerr != nil {
			return nil, nil, fmt.Errorf("grid coordinator: %w", lerr)
		}
		srv := &http.Server{Handler: server.Handler()}
		go srv.Serve(ln)
		fmt.Fprintf(o.info, "grid coordinator listening on http://%s (point safespec-worker -coordinator at it)\n", ln.Addr())
		re := &grid.RemoteExecutor{URL: "http://" + ln.Addr().String(), Token: o.token, Log: log}
		exec = re
		finish = func() {
			re.Close()
			reportGrid(server.Stats())
			srv.Close()
		}
	case o.remote != "":
		client, cerr := grid.NewHTTPClient(o.tlsCA, 0)
		if cerr != nil {
			return nil, nil, cerr
		}
		re := &grid.RemoteExecutor{URL: o.remote, Token: o.token, Client: client, Log: log}
		exec = re
		finish = func() {
			re.Close()
			// The coordinator outlives this sweep; its accounting line is
			// best-effort color, not part of the run's output contract.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if s, serr := re.Stats(ctx); serr == nil {
				reportGrid(s)
			}
		}
	}
	if o.cacheDir != "" {
		cache, cerr := resultcache.Open(o.cacheDir)
		if cerr != nil {
			finish()
			return nil, nil, cerr
		}
		exec = resultcache.NewExecutor(cache, exec)
		inner := finish
		finish = func() {
			fmt.Fprintf(o.info, "%s\n", cache)
			inner()
		}
	}
	return exec, finish, nil
}

// runPerf measures simulator throughput on the pinned matrix and emits a
// BENCH_<label>.json report, optionally gating against a baseline report.
func runPerf(o options) error {
	if o.remote != "" || o.serve != "" || o.cacheDir != "" {
		return fmt.Errorf("-perf measures the in-process simulator; -remote/-serve/-cache-dir would measure the distribution machinery instead")
	}
	if o.cacheGC != "" {
		return fmt.Errorf("-perf runs no sweep and touches no result cache; run -cache-gc separately (with -figs none)")
	}
	if o.json {
		return fmt.Errorf("-perf writes a BENCH_*.json report; it has no JSONL row form")
	}

	custom := o.instrs > 0 || o.bench != "" || o.seeds != ""
	spec := sweep.Quick()
	preset := "quick"
	switch o.perfPreset {
	case "":
	case "quick", "full":
		if custom {
			return fmt.Errorf("-preset %s names a pinned matrix; -bench/-instrs/-seeds define a custom one — pick one", o.perfPreset)
		}
		if o.perfPreset == "full" {
			spec = sweep.Full()
			preset = "full"
		}
	default:
		return fmt.Errorf("-preset %q: want quick or full", o.perfPreset)
	}
	if o.instrs > 0 {
		// Keep the safety cycle bound proportionate to the preset's
		// cycles-per-instruction ratio, as the sweep path does: a raised
		// -instrs must never be silently truncated by the preset's bound
		// (the report would claim a matrix it did not measure).
		q := sweep.Quick()
		spec.Instructions = o.instrs
		spec.MaxCycles = max(spec.MaxCycles, o.instrs*(q.MaxCycles/q.Instructions))
		preset = "custom"
	}
	if o.bench != "" {
		spec.Benchmarks = strings.Split(o.bench, ",")
		preset = "custom"
	}
	if o.seeds != "" {
		seeds, err := parseSeeds(o.seeds)
		if err != nil {
			return err
		}
		spec.Seeds = seeds
		preset = "custom"
	}
	workers := o.workers
	if o.serial {
		workers = 1
	}

	fmt.Fprintf(o.info, "perf: measuring %s matrix, %d repeats...\n", preset, o.perfRepeats)
	rep, err := perf.Run(context.Background(), perf.Options{
		Label:   o.perfLabel,
		Spec:    spec,
		Preset:  preset,
		Repeats: o.perfRepeats,
		Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(o.out, rep.Summary())
	path, err := rep.Write(o.perfOut)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.info, "perf: wrote %s\n", path)

	if o.perfBaseline != "" {
		base, err := perf.Load(o.perfBaseline)
		if err != nil {
			return err
		}
		if err := perf.Compare(base, rep, o.perfMaxRegress, o.perfMaxAllocReg); err != nil {
			return err
		}
		fmt.Fprintf(o.info, "perf: within %.0f%% of baseline %s (%.1f vs %.1f cells/sec, %.4f vs %.4f allocs/cycle)\n",
			100*o.perfMaxRegress, base.Label, rep.CellsPerSec, base.CellsPerSec,
			rep.AllocsPerCycle, base.AllocsPerCycle)
	}
	return nil
}

// runCacheGC prunes the result cache to the -cache-gc byte budget.
func runCacheGC(o options) error {
	maxBytes, err := parseBytes(o.cacheGC)
	if err != nil {
		return fmt.Errorf("-cache-gc: %w", err)
	}
	cache, err := resultcache.Open(o.cacheDir)
	if err != nil {
		return err
	}
	st, err := cache.Prune(maxBytes)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.info, "cache-gc %s: kept %d entries (%d bytes), evicted %d (%d bytes), budget %d\n",
		o.cacheDir, st.Kept, st.KeptBytes, st.Evicted, st.EvictedBytes, maxBytes)
	return nil
}

// parseSeeds parses the -seeds fan, rejecting duplicates (a duplicate seed
// would silently re-run identical cells, skewing fans and perf counts).
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	seen := map[int64]bool{}
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: %w", err)
		}
		if seen[v] {
			return nil, fmt.Errorf("-seeds: duplicate seed %d", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// parseBytes parses a byte budget with an optional K/M/G suffix (base 1024).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte count %d", n)
	}
	return n * mult, nil
}

func printConfig(w io.Writer) {
	fmt.Fprintln(w, "=== Tables I/II: simulated CPU configuration (Skylake-like) ===")
	fmt.Fprint(w, `CPU           6-wide issue, 96-entry IQ, 224-entry ROB, 72-entry LDQ, 56-entry STQ
TLBs          64-entry iTLB, 64-entry dTLB (4-way)
L1I / L1D     32 KB, 8-way, 64 B lines, 4-cycle hit
L2            256 KB, 4-way, 64 B lines, 12-cycle hit
L3            2 MB, 16-way, 64 B lines, 44-cycle hit
Memory        191 cycles
`)
	fmt.Fprintln(w)
}
