package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"safespec/internal/perf"
)

// perfOpts returns a -perf option set on a tiny custom matrix.
func perfOpts(out io.Writer, dir string) options {
	o := testOpts(out)
	o.perf = true
	o.perfLabel = "t"
	o.perfOut = dir
	o.perfRepeats = 1
	o.perfMaxRegress = 0.15
	o.perfMaxAllocReg = 0.01
	o.bench, o.instrs, o.serial = "exchange2", 1000, true
	return o
}

// deflateRows scales a baseline's per-benchmark throughput far below any
// plausible rerun, so doctored baselines keep the per-bench gate as
// machine-noise-proof as the deflated aggregate.
func deflateRows(rows []perf.BenchRow) []perf.BenchRow {
	out := make([]perf.BenchRow, len(rows))
	for i, r := range rows {
		r.CellsPerSec /= 1e6
		out[i] = r
	}
	return out
}

func TestPerfPresetValidation(t *testing.T) {
	// A pinned preset and a custom matrix are contradictory — for quick
	// just as for full.
	for _, preset := range []string{"quick", "full"} {
		o := perfOpts(io.Discard, t.TempDir())
		o.perfPreset = preset
		if err := run(o); err == nil || !strings.Contains(err.Error(), "-preset") {
			t.Errorf("-preset %s with -bench/-instrs accepted (err=%v)", preset, err)
		}
	}
	o := perfOpts(io.Discard, t.TempDir())
	o.perfPreset = "weekly"
	o.bench, o.instrs = "", 0
	if err := run(o); err == nil || !strings.Contains(err.Error(), "quick or full") {
		t.Errorf("unknown -preset accepted (err=%v)", err)
	}
	// -preset outside -perf has nothing to select.
	o = testOpts(io.Discard)
	o.figs = "config"
	o.perfPreset = "full"
	if err := run(o); err == nil || !strings.Contains(err.Error(), "-preset") {
		t.Errorf("-preset without -perf accepted (err=%v)", err)
	}
}

func TestPerfAllocGate(t *testing.T) {
	dir := t.TempDir()
	if err := run(perfOpts(io.Discard, dir)); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "BENCH_t.json")
	rep, err := perf.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	// An impossibly lean baseline fails any rerun through the allocation
	// gate — unless the gate is disabled with a negative budget.
	lean := *rep
	lean.CellsPerSec /= 1e6 // keep the throughput gates out of the way
	lean.BenchRows = deflateRows(rep.BenchRows)
	lean.AllocsPerCycle = -1e9
	if _, err := lean.Write(dir); err != nil {
		t.Fatal(err)
	}
	o := perfOpts(io.Discard, t.TempDir())
	o.perfBaseline = base
	if err := run(o); err == nil || !strings.Contains(err.Error(), "allocs/cycle") {
		t.Fatalf("allocation creep vs an impossibly lean baseline accepted (err=%v)", err)
	}
	o = perfOpts(io.Discard, t.TempDir())
	o.perfBaseline = base
	o.perfMaxAllocReg = -1
	if err := run(o); err != nil {
		t.Fatalf("negative budget must disable the allocation gate: %v", err)
	}
}

func TestPerfModeWritesReport(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(perfOpts(&out, dir)); err != nil {
		t.Fatal(err)
	}
	rep, err := perf.Load(filepath.Join(dir, "BENCH_t.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preset != "custom" || rep.Cells != 3 || rep.CellsPerSec <= 0 {
		t.Errorf("report not populated: %+v", rep)
	}
	if !strings.Contains(out.String(), "cells/s") {
		t.Errorf("summary line missing from output: %q", out.String())
	}
}

func TestPerfBaselineGate(t *testing.T) {
	dir := t.TempDir()
	// First run becomes the baseline.
	if err := run(perfOpts(io.Discard, dir)); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "BENCH_t.json")

	// Deflate the baseline — aggregate and per-benchmark rows — far below
	// any plausible rerun: the gate passes regardless of machine noise.
	rep, err := perf.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := *rep
	slow.CellsPerSec /= 1e6
	slow.BenchRows = deflateRows(rep.BenchRows)
	if _, err := slow.Write(dir); err != nil {
		t.Fatal(err)
	}
	o := perfOpts(io.Discard, t.TempDir())
	o.perfBaseline = base
	if err := run(o); err != nil {
		t.Fatalf("comparison against a slow baseline failed the gate: %v", err)
	}

	// Inflate the baseline beyond reach: the gate must fail.
	fast := *rep
	fast.CellsPerSec *= 1e6
	if _, err := fast.Write(dir); err != nil {
		t.Fatal(err)
	}
	o = perfOpts(io.Discard, t.TempDir())
	o.perfBaseline = base
	if err := run(o); err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unreachable baseline accepted (err=%v)", err)
	}
}

func TestPerfRejectsDistributionFlags(t *testing.T) {
	for _, set := range []func(*options){
		func(o *options) { o.remote = "http://x" },
		func(o *options) { o.serve = ":0" },
		func(o *options) { o.cacheDir = "d" },
		func(o *options) { o.json = true },
	} {
		o := perfOpts(io.Discard, t.TempDir())
		set(&o)
		if err := run(o); err == nil {
			t.Errorf("invalid -perf flag combination accepted: %+v", o)
		}
	}
}

func TestCacheGCFlagValidation(t *testing.T) {
	o := testOpts(io.Discard)
	o.cacheGC = "10M"
	if err := run(o); err == nil || !strings.Contains(err.Error(), "-cache-dir") {
		t.Errorf("-cache-gc without -cache-dir accepted (err=%v)", err)
	}

	o = testOpts(io.Discard)
	o.figs = "none"
	o.cacheDir = t.TempDir()
	o.cacheGC = "not-a-size"
	if err := run(o); err == nil {
		t.Error("malformed -cache-gc size accepted")
	}
}

func TestCacheGCStandalonePrunes(t *testing.T) {
	dir := t.TempDir()
	// Warm a tiny cache.
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench, o.serial = "perf", 1000, "exchange2", true
	o.cacheDir = dir
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// Standalone GC to zero evicts everything but keeps the cache usable.
	o = testOpts(io.Discard)
	o.figs = "none"
	o.cacheDir, o.cacheGC = dir, "0"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d cache entries survived a zero-budget GC", len(entries))
	}
	if _, err := os.Stat(filepath.Join(dir, "VERSION")); err != nil {
		t.Errorf("VERSION marker lost: %v", err)
	}
}

func TestParseBytes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false}, {"123", 123, false}, {"4K", 4096, false},
		{"2M", 2 << 20, false}, {"1G", 1 << 30, false}, {"1g", 1 << 30, false},
		{"", 0, true}, {"-5", 0, true}, {"x", 0, true}, {"5T", 0, true},
	} {
		got, err := parseBytes(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}
