package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// testOpts returns options writing tables to out and progress to io.Discard.
func testOpts(out io.Writer) options {
	return options{out: out, info: io.Discard}
}

func TestRunConfigOnly(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs = "config", 1000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunSizingSubset(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench = "sizing", 3000, "exchange2,lbm"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerfSubset(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench, o.serial = "perf", 3000, "exchange2", true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRejectsNonSweepFigs(t *testing.T) {
	for _, figs := range []string{"security", "config", "all"} {
		o := testOpts(io.Discard)
		o.figs, o.json = figs, true
		if err := run(o); err == nil {
			t.Errorf("-json with -figs %s must error instead of printing nothing", figs)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench = "perf", 1000, "missing-bench"
	if err := run(o); err == nil {
		t.Error("unknown benchmark must error")
	}
}

// TestJSONDeterministicAcrossWorkers is the acceptance check: the -json
// rows of the quick preset are byte-identical for -workers 1 and -workers 8.
func TestJSONDeterministicAcrossWorkers(t *testing.T) {
	jsonOut := func(workers int) string {
		var buf bytes.Buffer
		o := testOpts(&buf)
		o.figs, o.json, o.quick, o.workers = "perf", true, true, workers
		o.bench = "exchange2,perlbench,mcf" // trim the quick matrix for test time
		o.instrs = 4000
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, eight := jsonOut(1), jsonOut(8)
	if one != eight {
		t.Errorf("-json output differs between -workers 1 and -workers 8:\n%q\nvs\n%q", one, eight)
	}
	if n := strings.Count(one, "\n"); n != 9 {
		t.Errorf("want 9 JSON rows (3 benches x 3 modes), got %d", n)
	}
	if !strings.Contains(one, `"bench":"exchange2"`) || !strings.Contains(one, `"mode":"wfc"`) {
		t.Errorf("JSON rows malformed: %s", one)
	}
	if strings.Contains(one, "===") {
		t.Error("-json must suppress the human tables")
	}
}

func TestQuickPreset(t *testing.T) {
	var buf bytes.Buffer
	o := testOpts(&buf)
	o.figs, o.quick = "perf", true
	o.bench = "exchange2"
	o.instrs = 2000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("perf table missing geomean")
	}
}
