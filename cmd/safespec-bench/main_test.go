package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"safespec/internal/grid"
)

// testOpts returns options writing tables to out and progress to io.Discard.
func testOpts(out io.Writer) options {
	return options{out: out, info: io.Discard}
}

func TestRunConfigOnly(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs = "config", 1000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunSizingSubset(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench = "sizing", 3000, "exchange2,lbm"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerfSubset(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench, o.serial = "perf", 3000, "exchange2", true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRejectsNonSweepFigs(t *testing.T) {
	for _, figs := range []string{"security", "config", "all"} {
		o := testOpts(io.Discard)
		o.figs, o.json = figs, true
		if err := run(o); err == nil {
			t.Errorf("-json with -figs %s must error instead of printing nothing", figs)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	o := testOpts(io.Discard)
	o.figs, o.instrs, o.bench = "perf", 1000, "missing-bench"
	if err := run(o); err == nil {
		t.Error("unknown benchmark must error")
	}
}

// TestJSONDeterministicAcrossWorkers is the acceptance check: the -json
// rows of the quick preset are byte-identical for -workers 1 and -workers 8.
func TestJSONDeterministicAcrossWorkers(t *testing.T) {
	jsonOut := func(workers int) string {
		var buf bytes.Buffer
		o := testOpts(&buf)
		o.figs, o.json, o.quick, o.workers = "perf", true, true, workers
		o.bench = "exchange2,perlbench,mcf" // trim the quick matrix for test time
		o.instrs = 4000
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, eight := jsonOut(1), jsonOut(8)
	if one != eight {
		t.Errorf("-json output differs between -workers 1 and -workers 8:\n%q\nvs\n%q", one, eight)
	}
	if n := strings.Count(one, "\n"); n != 9 {
		t.Errorf("want 9 JSON rows (3 benches x 3 modes), got %d", n)
	}
	if !strings.Contains(one, `"bench":"exchange2"`) || !strings.Contains(one, `"mode":"wfc"`) {
		t.Errorf("JSON rows malformed: %s", one)
	}
	if strings.Contains(one, "===") {
		t.Error("-json must suppress the human tables")
	}
}

func TestQuickPreset(t *testing.T) {
	var buf bytes.Buffer
	o := testOpts(&buf)
	o.figs, o.quick = "perf", true
	o.bench = "exchange2"
	o.instrs = 2000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("perf table missing geomean")
	}
}

// TestFlagValidation covers the new distributed/cache flag surface.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"remote and serve together", func(o *options) {
			o.figs, o.remote, o.serve = "perf", "http://127.0.0.1:9", ":9090"
		}},
		{"remote without sweep", func(o *options) { o.figs, o.remote = "security", "http://127.0.0.1:9" }},
		{"serve without sweep", func(o *options) { o.figs, o.serve = "security", ":9090" }},
		{"lease flags with external coordinator", func(o *options) {
			o.figs, o.remote, o.leaseTTL = "perf", "http://127.0.0.1:9", time.Minute
		}},
		{"lease flags without a coordinator", func(o *options) {
			o.figs, o.retries = "perf", 3
		}},
		{"cache without sweep", func(o *options) { o.figs, o.cacheDir = "config", "/tmp/x" }},
		{"bad seeds", func(o *options) { o.figs, o.seeds = "perf", "1,two" }},
		{"duplicate seeds", func(o *options) { o.figs, o.seeds = "perf", "3,3" }},
	}
	for _, tc := range cases {
		o := testOpts(io.Discard)
		o.instrs, o.bench = 1000, "exchange2"
		tc.mut(&o)
		if err := run(o); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// TestCacheWarmRun drives the full binary path twice over one cache dir:
// the second run must produce byte-identical JSON rows and simulate
// nothing (misses=0 in the progress line).
func TestCacheWarmRun(t *testing.T) {
	dir := t.TempDir()
	runOnce := func() (string, string) {
		var out, info bytes.Buffer
		o := options{out: &out, info: &info}
		o.figs, o.json, o.cacheDir = "perf", true, dir
		o.bench, o.instrs = "exchange2,mcf", 2000
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		return out.String(), info.String()
	}
	cold, coldInfo := runOnce()
	warm, warmInfo := runOnce()
	if cold != warm {
		t.Errorf("warm-cache rows differ from cold:\n%s\nvs\n%s", cold, warm)
	}
	if !strings.Contains(coldInfo, "hits=0") {
		t.Errorf("cold run should miss everything: %s", coldInfo)
	}
	if !strings.Contains(warmInfo, "misses=0") {
		t.Errorf("warm run simulated something: %s", warmInfo)
	}
}

// TestSeedFanFlag checks -seeds end to end: per-seed JSON rows plus the
// mean ± CI annotation on the perf table.
func TestSeedFanFlag(t *testing.T) {
	var rows bytes.Buffer
	o := testOpts(&rows)
	o.figs, o.json, o.seeds = "perf", true, "1,2"
	o.bench, o.instrs = "exchange2", 2000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(rows.String(), "\n"); n != 6 { // 1 bench x 3 modes x 2 seeds
		t.Errorf("want 6 rows, got %d:\n%s", n, rows.String())
	}
	var table bytes.Buffer
	o = testOpts(&table)
	o.figs, o.seeds = "perf", "1,2"
	o.bench, o.instrs = "exchange2", 2000
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "n=2, ipc ±") {
		t.Errorf("perf table missing seed-fan CI annotation:\n%s", table.String())
	}
}

// TestServeEndToEnd drives run() in -serve mode (the in-process degenerate
// coordinator) with a bearer token and two in-process grid workers attached
// to the ephemeral coordinator, and checks the JSON rows are byte-identical
// to a local run — the distributed acceptance property at the binary level.
func TestServeEndToEnd(t *testing.T) {
	const token = "bench-test-token"
	localRows := func() string {
		var buf bytes.Buffer
		o := testOpts(&buf)
		o.figs, o.json = "perf", true
		o.bench, o.instrs = "exchange2,mcf", 2000
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	// The coordinator address is ephemeral; scrape it from the progress
	// stream and attach workers as soon as it is announced.
	infoR, infoW := io.Pipe()
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	go func() {
		sc := bufio.NewScanner(infoR)
		for sc.Scan() {
			line := sc.Text()
			_, addr, ok := strings.Cut(line, "listening on ")
			if !ok {
				continue
			}
			addr = strings.Fields(addr)[0]
			for i := 0; i < 2; i++ {
				w := &grid.Worker{Coordinator: addr, Token: token,
					ID: fmt.Sprintf("t%d", i), Parallel: 2, Poll: 5 * time.Millisecond}
				go w.Run(workerCtx)
			}
		}
	}()

	var buf bytes.Buffer
	o := options{out: &buf, info: infoW}
	o.figs, o.json = "perf", true
	o.serve, o.token = "127.0.0.1:0", token
	o.bench, o.instrs = "exchange2,mcf", 2000
	err := run(o)
	infoW.Close()
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != localRows {
		t.Errorf("-serve rows differ from local:\n%s\nvs\n%s", buf.String(), localRows)
	}
}
