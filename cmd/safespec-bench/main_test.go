package main

import "testing"

func TestRunConfigOnly(t *testing.T) {
	if err := run("config", 1000, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSizingSubset(t *testing.T) {
	if err := run("sizing", 3000, "exchange2,lbm", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerfSubset(t *testing.T) {
	if err := run("perf", 3000, "exchange2", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if err := run("perf", 1000, "missing-bench", false); err == nil {
		t.Error("unknown benchmark must error")
	}
}
