// Package safespec_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`). One Benchmark per table/figure; the
// figure's headline numbers are emitted as custom metrics so the series can
// be compared against EXPERIMENTS.md. For the full 21-benchmark sweep at
// paper-scale instruction counts, use cmd/safespec-bench instead.
package safespec_test

import (
	"context"
	"testing"

	"safespec/internal/attacks"
	"safespec/internal/core"
	"safespec/internal/figures"
	"safespec/internal/hwmodel"
	"safespec/internal/sweep"
	"safespec/internal/workloads"
)

// benchSweep runs the reduced per-figure sweep (the sweep.Quick matrix at a
// slightly larger budget) through the internal/sweep engine.
func benchSweep(b *testing.B) []figures.BenchResult {
	b.Helper()
	spec := sweep.Quick()
	spec.Instructions = 20_000
	jobs, err := spec.Jobs()
	if err != nil {
		b.Fatal(err)
	}
	results, err := sweep.Run(context.Background(), jobs, sweep.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rows, err := figures.Group(results)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkSweepEngine measures the engine itself on the CI smoke matrix:
// the quick preset (6 benchmarks x 3 modes) on the default worker pool,
// reporting aggregate simulation throughput.
func BenchmarkSweepEngine(b *testing.B) {
	jobs, err := sweep.Quick().Jobs()
	if err != nil {
		b.Fatal(err)
	}
	var agg sweep.Aggregate
	for i := 0; i < b.N; i++ {
		agg = sweep.Aggregate{}
		if _, err := sweep.Run(context.Background(), jobs, sweep.Options{Sinks: []sweep.Sink{&agg}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(agg.Jobs), "jobs")
	b.ReportMetric(float64(agg.Committed)*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkTable1_PipelineThroughput exercises the Table I core at full
// width: a predictable compute kernel measures simulated-instruction
// throughput of the simulator itself.
func BenchmarkTable1_PipelineThroughput(b *testing.B) {
	w, _ := workloads.ByName("exchange2")
	prog := w.Build()
	b.ResetTimer()
	var ipc float64
	for i := 0; i < b.N; i++ {
		res := core.Run(core.Baseline().WithLimits(20_000, 0), prog)
		ipc = res.IPC()
	}
	b.ReportMetric(ipc, "sim-IPC")
}

// BenchmarkTable2_MemoryHierarchy measures the Table II hierarchy on a
// pointer-chasing kernel (every level of the hierarchy is exercised).
func BenchmarkTable2_MemoryHierarchy(b *testing.B) {
	w, _ := workloads.ByName("mcf")
	prog := w.Build()
	b.ResetTimer()
	var miss float64
	for i := 0; i < b.N; i++ {
		res := core.Run(core.Baseline().WithLimits(10_000, 0), prog)
		miss = res.DReadMissRate()
	}
	b.ReportMetric(miss, "dmiss-rate")
}

// BenchmarkFig6to9_ShadowSizing regenerates the occupancy-percentile
// series: the 99.99% shadow-structure sizes under WFC and WFB.
func BenchmarkFig6to9_ShadowSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Sizing(benchSweep(b))
		maxD, maxI := 0, 0
		for _, r := range rows {
			if r.DCacheWFC > maxD {
				maxD = r.DCacheWFC
			}
			if r.ICacheWFC > maxI {
				maxI = r.ICacheWFC
			}
		}
		b.ReportMetric(float64(maxD), "fig7-dcache-p9999")
		b.ReportMetric(float64(maxI), "fig6-icache-p9999")
	}
}

// BenchmarkFig11_NormalizedIPC regenerates the Figure 11 headline: the
// geometric-mean IPC of SafeSpec-WFC normalized to the baseline.
func BenchmarkFig11_NormalizedIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Performance(benchSweep(b))
		b.ReportMetric(figures.GeoMeanNormIPC(rows), "geomean-norm-IPC")
	}
}

// BenchmarkFig12_13_DCacheBehaviour regenerates the d-side series: read
// miss rates (Figure 12) and the shadow share of hits (Figure 13).
func BenchmarkFig12_13_DCacheBehaviour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Performance(benchSweep(b))
		var missWFC, missBase, share float64
		for _, r := range rows {
			missWFC += r.DMissWFC
			missBase += r.DMissBase
			share += r.DShadowHitShare
		}
		n := float64(len(rows))
		b.ReportMetric(missWFC/n, "fig12-dmiss-wfc")
		b.ReportMetric(missBase/n, "fig12-dmiss-base")
		b.ReportMetric(share/n, "fig13-shadow-share")
	}
}

// BenchmarkFig14_15_ICacheBehaviour regenerates the i-side series: miss
// rates (Figure 14) and the shadow share of fetch hits (Figure 15).
func BenchmarkFig14_15_ICacheBehaviour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Performance(benchSweep(b))
		var missWFC, missBase, share float64
		for _, r := range rows {
			missWFC += r.IMissWFC
			missBase += r.IMissBase
			share += r.IShadowHitShare
		}
		n := float64(len(rows))
		b.ReportMetric(missWFC/n, "fig14-imiss-wfc")
		b.ReportMetric(missBase/n, "fig14-imiss-base")
		b.ReportMetric(share/n, "fig15-shadow-share")
	}
}

// BenchmarkFig16_CommitRates regenerates the shadow commit-rate series.
func BenchmarkFig16_CommitRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Performance(benchSweep(b))
		var ci, cd float64
		for _, r := range rows {
			ci += r.CommitRateI
			cd += r.CommitRateD
		}
		n := float64(len(rows))
		b.ReportMetric(ci/n, "fig16-icache-commit")
		b.ReportMetric(cd/n, "fig16-dcache-commit")
	}
}

// BenchmarkTable3_MeltdownSpectre regenerates the Table III security
// matrix: leaks count across {meltdown, v1, v2} × {baseline, wfb, wfc}.
// Expected: baseline leaks all 3, WFB leaks only Meltdown, WFC leaks none.
func BenchmarkTable3_MeltdownSpectre(b *testing.B) {
	set := []attacks.Attack{attacks.Meltdown(), attacks.SpectreV1(), attacks.SpectreV2()}
	for i := 0; i < b.N; i++ {
		counts := map[string]int{}
		for _, a := range set {
			for name, cfg := range map[string]core.Config{
				"baseline": core.Baseline(), "wfb": core.WFB(), "wfc": core.WFC(),
			} {
				out, err := attacks.Execute(a, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if out.Leaked {
					counts[name]++
				}
			}
		}
		b.ReportMetric(float64(counts["baseline"]), "t3-baseline-leaks")
		b.ReportMetric(float64(counts["wfb"]), "t3-wfb-leaks")
		b.ReportMetric(float64(counts["wfc"]), "t3-wfc-leaks")
	}
}

// BenchmarkTable4_OtherStructures regenerates the Table IV matrix:
// I-cache, I-TLB, D-TLB and transient variants under WFB/WFC.
// Expected: zero leaks under both policies; the TSA leaks only through the
// undersized Replace configuration.
func BenchmarkTable4_OtherStructures(b *testing.B) {
	set := []attacks.Attack{attacks.ICacheVariant(), attacks.ITLBVariant(), attacks.DTLBVariant()}
	for i := 0; i < b.N; i++ {
		leaks := 0
		for _, a := range set {
			for _, cfg := range []core.Config{core.WFB(), core.WFC()} {
				out, err := attacks.Execute(a, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if out.Leaked {
					leaks++
				}
			}
		}
		tsa := attacks.TSA{Secret: attacks.DefaultSecret}
		tiny, err := tsa.Run(core.WFC().WithShadowPolicy(attacks.TinyShadowPolicy()))
		if err != nil {
			b.Fatal(err)
		}
		secure, err := tsa.Run(core.WFC())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(leaks), "t4-protected-leaks")
		b.ReportMetric(boolMetric(tiny.Leaked), "t4-tsa-tiny-leak")
		b.ReportMetric(boolMetric(secure.Leaked), "t4-tsa-secure-leak")
	}
}

// BenchmarkTable5_HardwareOverhead regenerates the Table V analytic model.
func BenchmarkTable5_HardwareOverhead(b *testing.B) {
	tech := hwmodel.Tech40nm()
	var rows [2]hwmodel.Report
	for i := 0; i < b.N; i++ {
		rows = hwmodel.TableV(tech, hwmodel.SecureSizes(72, 224), hwmodel.PaperWFCSizes())
	}
	b.ReportMetric(rows[0].PowerMW, "t5-secure-mW")
	b.ReportMetric(rows[0].AreaMM2, "t5-secure-mm2")
	b.ReportMetric(rows[1].PowerMW, "t5-wfc-mW")
	b.ReportMetric(rows[1].AreaMM2, "t5-wfc-mm2")
}

// BenchmarkSimulatorSpeed reports raw simulation speed (cycles/s and
// instructions/s) — useful when sizing longer sweeps.
func BenchmarkSimulatorSpeed(b *testing.B) {
	w, _ := workloads.ByName("x264")
	prog := w.Build()
	var cycles, instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(core.WFC().WithLimits(20_000, 0), prog)
		cycles += res.Cycles
		instrs += res.Committed
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
