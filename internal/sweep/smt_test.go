package sweep_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"safespec/internal/sweep"

	// Registers the attack kernels (smt-btb-v2) as named benches.
	_ "safespec/internal/attacks"
)

// smtSpec is the SMT smoke matrix: a mixed bag of a SPEC-like kernel and
// the cross-thread attack kernel, every mode, two hardware threads.
func smtSpec() sweep.MatrixSpec {
	return sweep.MatrixSpec{
		Benchmarks:   []string{"exchange2", "smt-btb-v2"},
		Instructions: 5_000,
		MaxCycles:    2_000_000,
		Threads:      []int{2},
	}
}

// TestSMTDeterministicAcrossWorkers: Threads=2 cells must produce
// byte-identical JSONL for any worker count, exactly like single-thread
// cells — the property CI gates on.
func TestSMTDeterministicAcrossWorkers(t *testing.T) {
	jobs, err := smtSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(workers int) string {
		var buf bytes.Buffer
		if _, err := sweep.Run(context.Background(), jobs,
			sweep.Options{Workers: workers, Sinks: []sweep.Sink{sweep.NewJSONL(&buf)}}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := runWith(1)
	parallel := runWith(8)
	if serial != parallel {
		t.Fatalf("SMT sweep output differs across worker counts:\n%s\nvs\n%s", serial, parallel)
	}
	if !strings.Contains(serial, `"threads":2`) {
		t.Fatalf("SMT rows lack the threads field:\n%s", serial)
	}
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	if want := len(jobs); len(lines) != want {
		t.Fatalf("got %d rows, want %d", len(lines), want)
	}
	for _, line := range lines {
		if strings.Contains(line, `"err"`) {
			t.Errorf("errored SMT row: %s", line)
		}
	}
}

// TestSMTThreadsAxisInJobIdentity: the thread count must flow into both the
// human label and the content address, so Threads=2 cells can never alias a
// warm single-thread cache entry.
func TestSMTThreadsAxisInJobIdentity(t *testing.T) {
	spec := sweep.Quick()
	spec.Benchmarks = []string{"exchange2"}
	spec.Threads = []int{1, 2}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Three modes x two thread counts.
	if len(jobs) != 6 {
		t.Fatalf("got %d jobs, want 6", len(jobs))
	}
	hashes := make(map[string]string)
	for _, j := range jobs {
		h, err := j.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := hashes[h]; dup {
			t.Errorf("jobs %s and %s share hash %s", prev, j.String(), h)
		}
		hashes[h] = j.String()
		n := j.Config.Pipeline.NumThreads()
		if n > 1 && !strings.Contains(j.String(), "/t2") {
			t.Errorf("SMT job label lacks thread segment: %s", j.String())
		}
		if n == 1 && strings.Contains(j.String(), "/t") {
			t.Errorf("single-thread job label grew a thread segment: %s", j.String())
		}
	}
}
