package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/shadow"
)

// smallMatrix returns a fast 3-bench x 3-mode matrix.
func smallMatrix(t testing.TB) []Job {
	t.Helper()
	spec := Quick()
	spec.Benchmarks = []string{"exchange2", "perlbench", "mcf"}
	spec.Instructions = 3_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestMatrixExpansion(t *testing.T) {
	jobs := smallMatrix(t)
	if len(jobs) != 9 {
		t.Fatalf("want 9 jobs, got %d", len(jobs))
	}
	// Benchmark-major with all modes adjacent, baseline first.
	if jobs[0].String() != "exchange2/baseline" || jobs[1].String() != "exchange2/wfc" ||
		jobs[2].String() != "exchange2/wfb" || jobs[3].String() != "perlbench/baseline" {
		t.Errorf("unexpected job order: %v %v %v %v", jobs[0], jobs[1], jobs[2], jobs[3])
	}

	spec := MatrixSpec{Benchmarks: []string{"gcc"}, Seeds: []int64{1, 2, 3}, Instructions: 100}
	seeded, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(seeded) != 9 { // 1 bench x 3 modes x 3 seeds
		t.Errorf("want 9 seeded jobs, got %d", len(seeded))
	}
	if seeded[0].Seed != 1 || seeded[1].Seed != 2 {
		t.Errorf("seeds not expanded per mode: %v %v", seeded[0], seeded[1])
	}
}

func TestMatrixUnknownBenchmark(t *testing.T) {
	spec := MatrixSpec{Benchmarks: []string{"not-a-benchmark"}}
	if _, err := spec.Jobs(); err == nil {
		t.Error("unknown benchmark must error at matrix build time")
	}
}

// TestParallelSerialEquivalence is the core determinism property: the same
// matrix run serially and on a saturated pool yields identical result rows
// and byte-identical sink output.
func TestParallelSerialEquivalence(t *testing.T) {
	jobs := smallMatrix(t)
	runWith := func(workers int) ([]Result, string) {
		var buf bytes.Buffer
		results, err := Run(context.Background(), jobs,
			Options{Workers: workers, Sinks: []Sink{NewJSONL(&buf)}})
		if err != nil {
			t.Fatal(err)
		}
		return results, buf.String()
	}
	serial, serialOut := runWith(1)
	parallel, parallelOut := runWith(8)

	if serialOut != parallelOut {
		t.Errorf("sink output differs between 1 and 8 workers:\n%s\nvs\n%s", serialOut, parallelOut)
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		sr, pr := MakeRow(serial[i]), MakeRow(parallel[i])
		if sr != pr {
			t.Errorf("job %d rows differ:\n%+v\nvs\n%+v", i, sr, pr)
		}
	}
}

// orderSink records the observation order of job indices.
type orderSink struct {
	mu      sync.Mutex
	indices []int
	flushed int
}

func (o *orderSink) Observe(r Result) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.indices = append(o.indices, r.Index)
	return nil
}

func (o *orderSink) Flush() error { o.flushed++; return nil }

// TestDeterministicOrdering checks that sinks observe every result in
// ascending job order on a saturated pool (run under -race in CI).
func TestDeterministicOrdering(t *testing.T) {
	jobs := smallMatrix(t)
	var order orderSink
	results, err := Run(context.Background(), jobs, Options{Workers: 8, Sinks: []Sink{&order}})
	if err != nil {
		t.Fatal(err)
	}
	if len(order.indices) != len(jobs) {
		t.Fatalf("sink saw %d results, want %d", len(order.indices), len(jobs))
	}
	for i, idx := range order.indices {
		if idx != i {
			t.Fatalf("out-of-order delivery at %d: %v", i, order.indices)
		}
	}
	if order.flushed != 1 {
		t.Errorf("Flush called %d times, want 1", order.flushed)
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("results[%d].Index = %d", i, r.Index)
		}
		if r.Wall <= 0 {
			t.Errorf("job %d: no wall-time accounting", i)
		}
		if r.Committed() == 0 {
			t.Errorf("job %d: no committed-instruction accounting", i)
		}
	}
}

// cancelSink cancels the sweep after observing n results.
type cancelSink struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelSink) Observe(Result) error {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
	return nil
}

func (c *cancelSink) Flush() error { return nil }

// TestCancellationMidSweep cancels from a sink after two results, with every
// later job held at ctx.Done() via the executeJob seam so the cancellation
// point is deterministic (the workers cannot outrun the collector): the run
// must report the context error, mark every other job with it, and still
// deliver one row per job to the sinks in order.
func TestCancellationMidSweep(t *testing.T) {
	orig := executeJob
	defer func() { executeJob = orig }()
	executeJob = func(ctx context.Context, i int, j Job) (*core.Results, error) {
		if i >= 2 {
			<-ctx.Done() // hold until the sink cancels mid-sweep
			return nil, ctx.Err()
		}
		return orig(ctx, i, j)
	}
	spec := Quick()
	spec.Instructions = 2_000
	jobs, err := spec.Jobs() // 18 jobs
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var order orderSink
	results, err := Run(ctx, jobs,
		Options{Workers: 2, Sinks: []Sink{&cancelSink{n: 2, cancel: cancel}, &order}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(order.indices) != len(jobs) {
		t.Fatalf("sinks saw %d rows, want one per job (%d)", len(order.indices), len(jobs))
	}
	for i, idx := range order.indices {
		if idx != i {
			t.Fatalf("out-of-order delivery under cancellation at %d: %v", i, order.indices)
		}
	}
	skipped := 0
	for _, r := range results {
		switch {
		case r.Err != nil:
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("job %d: unexpected error %v", r.Index, r.Err)
			}
			skipped++
		case r.Res == nil:
			t.Errorf("job %d: neither result nor error", r.Index)
		}
	}
	if want := len(jobs) - 2; skipped != want {
		t.Errorf("cancellation after 2 of %d jobs: %d skipped, want %d", len(jobs), skipped, want)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := smallMatrix(t)
	results, err := Run(ctx, jobs, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: want context error, got %v (res=%v)", r.Index, r.Err, r.Res != nil)
		}
	}
}

func TestTimeout(t *testing.T) {
	spec := Quick()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), jobs, Options{Workers: 1, Timeout: time.Microsecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

// panicJob returns a job whose simulator panics during Run (non-positive
// shadow capacity), exercising the per-job isolation path with a real
// in-simulation panic.
func panicJob() Job {
	cfg := core.WFC().WithShadowPolicy(
		shadow.Policy{Name: "shadow-dcache", Entries: -1},
		shadow.Policy{Name: "shadow-icache", Entries: 4},
		shadow.Policy{Name: "shadow-dtlb", Entries: 4},
		shadow.Policy{Name: "shadow-itlb", Entries: 4},
	).WithLimits(1_000, 1_000_000)
	return Job{Bench: "mcf", Mode: "panic", Config: cfg}
}

// TestPanicIsolation injects a panicking job into the middle of a healthy
// matrix: the panic must surface as that job's error only, and every other
// job must complete normally.
func TestPanicIsolation(t *testing.T) {
	jobs := smallMatrix(t)
	jobs[4] = panicJob()
	results, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatalf("a panicking job must not fail the sweep: %v", err)
	}
	for i, r := range results {
		if i == 4 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "panicked") {
				t.Errorf("job 4: want recovered panic, got %v", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Res == nil {
			t.Errorf("job %d: collateral damage from the panicking job: %v", i, r.Err)
		}
	}
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "mcf/panic") {
		t.Errorf("FirstErr must surface the panicked job, got %v", err)
	}
}

func TestUnknownBenchJobError(t *testing.T) {
	jobs := []Job{{Bench: "nope", Mode: "baseline", Config: core.Baseline().WithLimits(100, 0)}}
	results, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("unknown benchmark must error the job")
	}
}

func TestForEachPanicAndErrors(t *testing.T) {
	var mu sync.Mutex
	ran := map[int]bool{}
	err := ForEach(context.Background(), 8, 4, func(_ context.Context, i int) error {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		switch i {
		case 2:
			panic("boom")
		case 5:
			return fmt.Errorf("job-5 failed")
		}
		return nil
	})
	if len(ran) != 8 {
		t.Errorf("only %d of 8 indices ran", len(ran))
	}
	if err == nil || !strings.Contains(err.Error(), "panic: boom") ||
		!strings.Contains(err.Error(), "job-5 failed") {
		t.Errorf("want joined panic + error, got: %v", err)
	}
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Errorf("empty range: %v", err)
	}
}

func TestJSONLRows(t *testing.T) {
	jobs := smallMatrix(t)[:3]
	var buf bytes.Buffer
	if _, err := Run(context.Background(), jobs, Options{Sinks: []Sink{NewJSONL(&buf)}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 JSON lines, got %d", len(lines))
	}
	for i, line := range lines {
		var row Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if row.Bench != "exchange2" || row.Committed == 0 || row.Err != "" {
			t.Errorf("line %d malformed: %+v", i, row)
		}
	}
}

func TestCSVRows(t *testing.T) {
	jobs := smallMatrix(t)[:3]
	var buf bytes.Buffer
	if _, err := Run(context.Background(), jobs, Options{Sinks: []Sink{NewCSV(&buf)}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("want header + 3 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bench,mode,seed,threads,cycles,committed,ipc") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "exchange2,baseline,0,1,") {
		t.Errorf("bad first row: %s", lines[1])
	}
}

func TestAggregate(t *testing.T) {
	jobs := smallMatrix(t)
	jobs = append(jobs, Job{Bench: "nope", Mode: "baseline"})
	var agg Aggregate
	if _, err := Run(context.Background(), jobs, Options{Sinks: []Sink{&agg}}); err != nil {
		t.Fatal(err)
	}
	if agg.Jobs != len(jobs) || agg.Errored != 1 {
		t.Errorf("agg = %+v, want %d jobs / 1 errored", agg, len(jobs))
	}
	if agg.Committed == 0 || agg.Busy <= 0 || agg.MaxWall <= 0 {
		t.Errorf("missing accounting: %+v", agg)
	}
	if s := agg.String(); !strings.Contains(s, "1 errored") {
		t.Errorf("summary malformed: %s", s)
	}
}

// TestSeedChangesProgram checks the seed override reaches the generator.
func TestSeedChangesProgram(t *testing.T) {
	base := Job{Bench: "gcc", Mode: "baseline", Config: core.Baseline().WithLimits(2_000, 0)}
	other := base
	other.Seed = 99
	results, err := Run(context.Background(), []Job{base, other}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if results[0].Res.Cycles == results[1].Res.Cycles &&
		results[0].Res.L1D.Misses == results[1].Res.L1D.Misses {
		t.Error("seed override produced an identical run")
	}
}

// recordingSubmitter is a LocalExecutor that also implements Submitter,
// recording the matrix announcement.
type recordingSubmitter struct {
	LocalExecutor
	mu        sync.Mutex
	submits   int
	announced []Job
	executed  int
	err       error
}

func (r *recordingSubmitter) Submit(ctx context.Context, jobs []Job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.submits++
	r.announced = jobs
	if r.executed > 0 {
		return errors.New("Submit arrived after an Execute call")
	}
	return r.err
}

func (r *recordingSubmitter) Execute(ctx context.Context, index int, j Job) (*core.Results, error) {
	r.mu.Lock()
	r.executed++
	r.mu.Unlock()
	return r.LocalExecutor.Execute(ctx, index, j)
}

// TestSubmitterAnnouncesMatrix checks the optional Submitter extension: Run
// announces the complete job matrix exactly once, before any Execute call.
func TestSubmitterAnnouncesMatrix(t *testing.T) {
	jobs := smallMatrix(t)
	rec := &recordingSubmitter{}
	results, err := Run(context.Background(), jobs, Options{Executor: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if rec.submits != 1 {
		t.Errorf("matrix announced %d times, want 1", rec.submits)
	}
	if len(rec.announced) != len(jobs) {
		t.Errorf("announced %d jobs, want %d", len(rec.announced), len(jobs))
	}
	for i := range rec.announced {
		if rec.announced[i].String() != jobs[i].String() {
			t.Errorf("announced job %d is %s, want %s", i, rec.announced[i], jobs[i])
		}
	}
}

// TestSubmitterErrorFailsSweep: a failed matrix announcement fails the run
// outright, before any job executes.
func TestSubmitterErrorFailsSweep(t *testing.T) {
	rec := &recordingSubmitter{err: errors.New("coordinator unreachable")}
	_, err := Run(context.Background(), smallMatrix(t), Options{Executor: rec})
	if err == nil || !strings.Contains(err.Error(), "submit matrix") {
		t.Fatalf("want submit error, got %v", err)
	}
	if rec.executed != 0 {
		t.Errorf("%d jobs executed despite failed submission", rec.executed)
	}
}
