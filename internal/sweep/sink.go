package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"safespec/internal/stats"
)

// Sink observes sweep results. Run delivers results in ascending job order
// from a single goroutine (no locking needed) and calls Flush exactly once
// before returning.
type Sink interface {
	Observe(Result) error
	Flush() error
}

// Row is the serialized form of one result shared by the JSONL and CSV
// sinks. It contains only fields that are deterministic for a given job —
// never wall-clock times — so sink output is byte-identical across runs and
// worker counts.
type Row struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`
	Seed  int64  `json:"seed"`
	// Threads is the SMT hardware-thread count; it is omitted for
	// single-thread cells so pre-SMT rows (and the golden JSONL pinning
	// them) are byte-identical.
	Threads         int     `json:"threads,omitempty"`
	Cycles          uint64  `json:"cycles"`
	Committed       uint64  `json:"committed"`
	IPC             float64 `json:"ipc"`
	Mispredicts     uint64  `json:"mispredicts"`
	DMissRate       float64 `json:"d_miss_rate"`
	IMissRate       float64 `json:"i_miss_rate"`
	DShadowHitShare float64 `json:"d_shadow_hit_share"`
	IShadowHitShare float64 `json:"i_shadow_hit_share"`
	CommitRateD     float64 `json:"commit_rate_d"`
	CommitRateI     float64 `json:"commit_rate_i"`
	Err             string  `json:"err,omitempty"`
}

// MakeRow projects a Result onto its serialized form.
func MakeRow(r Result) Row {
	row := Row{Bench: r.Job.Bench, Mode: r.Job.Mode, Seed: r.Job.Seed}
	if n := r.Job.Config.Pipeline.NumThreads(); n > 1 {
		row.Threads = n
	}
	if r.Err != nil {
		row.Err = r.Err.Error()
		return row
	}
	s := r.Res
	row.Cycles = s.Cycles
	row.Committed = s.Committed
	row.IPC = s.IPC()
	row.Mispredicts = s.Mispredicts
	row.DMissRate = s.DReadMissRate()
	row.IMissRate = s.IFetchMissRate()
	row.DShadowHitShare = s.DShadowHitShare()
	row.IShadowHitShare = s.IShadowHitShare()
	row.CommitRateD = s.ShD.CommitRate()
	row.CommitRateI = s.ShI.CommitRate()
	return row
}

// JSONL streams one JSON object per result to w (the `-json` output of
// cmd/safespec-bench).
type JSONL struct {
	enc *json.Encoder
}

// NewJSONL builds a JSON-lines sink over w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

// Observe writes the result's row as one JSON line.
func (j *JSONL) Observe(r Result) error { return j.enc.Encode(MakeRow(r)) }

// Flush is a no-op; every Observe writes through.
func (j *JSONL) Flush() error { return nil }

// CSV streams results as comma-separated rows with a header line.
type CSV struct {
	w      *csv.Writer
	header bool
}

// NewCSV builds a CSV sink over w.
func NewCSV(w io.Writer) *CSV { return &CSV{w: csv.NewWriter(w)} }

// Observe writes the result's row, emitting the header first.
func (c *CSV) Observe(r Result) error {
	if !c.header {
		c.header = true
		if err := c.w.Write([]string{"bench", "mode", "seed", "threads", "cycles", "committed",
			"ipc", "mispredicts", "d_miss_rate", "i_miss_rate",
			"d_shadow_hit_share", "i_shadow_hit_share",
			"commit_rate_d", "commit_rate_i", "err"}); err != nil {
			return err
		}
	}
	row := MakeRow(r)
	threads := row.Threads
	if threads == 0 {
		threads = 1
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return c.w.Write([]string{
		row.Bench, row.Mode,
		strconv.FormatInt(row.Seed, 10),
		strconv.Itoa(threads),
		strconv.FormatUint(row.Cycles, 10),
		strconv.FormatUint(row.Committed, 10),
		f(row.IPC),
		strconv.FormatUint(row.Mispredicts, 10),
		f(row.DMissRate), f(row.IMissRate),
		f(row.DShadowHitShare), f(row.IShadowHitShare),
		f(row.CommitRateD), f(row.CommitRateI),
		row.Err,
	})
}

// Flush drains the csv writer.
func (c *CSV) Flush() error {
	c.w.Flush()
	return c.w.Error()
}

// Aggregate accumulates sweep-level accounting: job counts, summed per-job
// wall time (worker-busy time) and committed instructions, plus per-(bench,
// mode) IPC samples so a multi-seed fan collapses into mean ± 95% CI cells.
// It is the in-memory sink behind the progress summary of
// cmd/safespec-bench.
type Aggregate struct {
	// Jobs and Errored count observed results and the failed subset.
	Jobs, Errored int
	// Committed and Cycles sum the simulated work across jobs.
	Committed, Cycles uint64
	// Busy sums per-job wall time across workers; MaxWall is the slowest
	// single job.
	Busy, MaxWall time.Duration
	// Spans sums the per-job Timing breakdowns across the Timed results
	// that carried one (results without Timing only contribute to Busy).
	Spans Timing
	Timed int

	// cells collects per-(bench, mode) IPC samples in observation order;
	// order holds the keys in first-seen (job) order.
	cells map[cellKey][]float64
	order []cellKey
}

type cellKey struct {
	bench, mode string
	threads     int
}

// CellStat summarizes one (bench, mode, threads) cell across its seed fan:
// the number of successful runs and the mean IPC with its 95% confidence
// half-width (0 when the cell holds a single seed).
type CellStat struct {
	Bench, Mode string
	Threads     int
	N           int
	MeanIPC     float64
	CI95        float64
}

// Observe folds one result into the totals. Errored jobs still contribute
// their wall time: a job that fails late has occupied its worker all along.
func (a *Aggregate) Observe(r Result) error {
	a.Jobs++
	a.Busy += r.Wall
	a.MaxWall = max(a.MaxWall, r.Wall)
	if r.Timing != nil {
		a.Spans.Add(*r.Timing)
		a.Timed++
	}
	if r.Err != nil {
		a.Errored++
		return nil
	}
	a.Committed += r.Res.Committed
	a.Cycles += r.Res.Cycles
	k := cellKey{r.Job.Bench, r.Job.Mode, r.Job.Config.Pipeline.NumThreads()}
	if a.cells == nil {
		a.cells = make(map[cellKey][]float64)
	}
	if _, seen := a.cells[k]; !seen {
		a.order = append(a.order, k)
	}
	a.cells[k] = append(a.cells[k], r.Res.IPC())
	return nil
}

// Cells returns the per-(bench, mode) seed-fan summaries in job order. With
// a single-seed matrix every cell has N=1 and CI95=0; a seed fan collapses
// into one row per cell instead of duplicate rows.
func (a *Aggregate) Cells() []CellStat {
	out := make([]CellStat, 0, len(a.order))
	for _, k := range a.order {
		xs := a.cells[k]
		mean, half := stats.MeanCI95(xs)
		out = append(out, CellStat{Bench: k.bench, Mode: k.mode, Threads: k.threads, N: len(xs), MeanIPC: mean, CI95: half})
	}
	return out
}

// Flush is a no-op.
func (a *Aggregate) Flush() error { return nil }

// String renders the accounting summary.
func (a *Aggregate) String() string {
	rate := 0.0
	if s := a.Busy.Seconds(); s > 0 {
		rate = float64(a.Committed) / s
	}
	return fmt.Sprintf("%d jobs (%d errored): %d instrs, %d cycles, busy %v (slowest job %v, %.0f instrs/s/worker)",
		a.Jobs, a.Errored, a.Committed, a.Cycles,
		a.Busy.Round(time.Millisecond), a.MaxWall.Round(time.Millisecond), rate)
}

// SpanSummary renders the summed per-job span breakdown, e.g.
// "spans over 18/18 jobs: queue 1.2s, simulate 40s". It returns "" when no
// observed result carried a Timing (a fleet of pre-timing peers).
func (a *Aggregate) SpanSummary() string {
	if a.Timed == 0 {
		return ""
	}
	return fmt.Sprintf("spans over %d/%d jobs: %s", a.Timed, a.Jobs, a.Spans)
}
