package sweep_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"safespec/internal/sweep"
)

// The golden files below were generated from the pre-SMT-refactor tree
// (set UPDATE_GOLDEN=1 to regenerate — only ever from a commit whose
// single-thread output is known-good). They pin two things across the
// per-thread pipeline refactor and any future change:
//
//   - the JSONL sink bytes of the pinned Quick matrix (the exact stream CI
//     compares across worker counts, the grid and the result cache), and
//   - every Quick job's content-address (sweep.Job.Hash), so warm result
//     caches written before the refactor stay valid for Threads=1 cells.

const (
	goldenJSONL  = "testdata/quick_threads1.jsonl"
	goldenHashes = "testdata/quick_threads1.hashes"
)

func quickJobs(t *testing.T) []sweep.Job {
	t.Helper()
	jobs, err := sweep.Quick().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func maybeUpdate(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, got, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenQuickJSONLByteIdentity runs the pinned Quick matrix locally and
// requires the JSONL sink output to be byte-identical to the saved
// pre-refactor stream.
func TestGoldenQuickJSONLByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Quick matrix")
	}
	var buf bytes.Buffer
	_, err := sweep.Run(context.Background(), quickJobs(t),
		sweep.Options{Workers: 4, Sinks: []sweep.Sink{sweep.NewJSONL(&buf)}})
	if err != nil {
		t.Fatal(err)
	}
	maybeUpdate(t, goldenJSONL, buf.Bytes())
	want, err := os.ReadFile(goldenJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Quick-matrix JSONL diverged from pre-refactor golden (%d vs %d bytes);\n"+
			"single-thread results must stay byte-identical", buf.Len(), len(want))
	}
}

// TestGoldenQuickJobHashes pins every Quick job's content address: a changed
// hash would silently invalidate (or worse, alias) warm result-cache entries
// for unchanged single-thread cells.
func TestGoldenQuickJobHashes(t *testing.T) {
	var buf bytes.Buffer
	for _, j := range quickJobs(t) {
		h, err := j.Hash()
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(j.String() + " " + h + "\n")
	}
	maybeUpdate(t, goldenHashes, buf.Bytes())
	want, err := os.ReadFile(goldenHashes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Quick-matrix job hashes diverged from pre-refactor golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
