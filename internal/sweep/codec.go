package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"time"

	"safespec/internal/core"
)

// jobHashDomain versions the canonical encoding that Job.Hash covers. Bump
// it whenever the meaning of an existing config field changes, so stale
// result-cache entries and mixed-version grid workers can never alias.
const jobHashDomain = "safespec/sweep.Job/v1\n"

// Canonical returns the canonical JSON encoding of the job: the pipeline
// configuration is normalized first, so two jobs that run identically —
// e.g. a zero config and one with the Table I defaults spelled out — encode
// to identical bytes. Every field of core.Config is a plain exported scalar
// or struct (no maps), so the encoding is deterministic.
func (j Job) Canonical() ([]byte, error) {
	j.Config.Pipeline = j.Config.Pipeline.Normalize()
	return json.Marshal(j)
}

// Hash returns the job's content address: a hex SHA-256 over the versioned
// canonical encoding. It is the key of internal/resultcache and the
// identity of a job on the grid wire protocol.
func (j Job) Hash() (string, error) {
	b, err := j.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(jobHashDomain))
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// resultJSON is the wire form of a Result. Err travels as a string — an
// error value does not survive a JSON round trip — so failure causes are
// preserved across processes (the grid protocol) and restarts (JSONL
// replay). All numeric fields are integers, so the round trip is exact and
// sink output computed from a decoded Result is byte-identical to the
// original.
type resultJSON struct {
	Index  int           `json:"index"`
	Job    Job           `json:"job"`
	Res    *core.Results `json:"res,omitempty"`
	Err    string        `json:"err,omitempty"`
	WallNS int64         `json:"wall_ns,omitempty"`
	// Timing is optional on the wire: peers that predate it omit the field,
	// and decoders that predate it ignore unknown JSON keys, so mixed-version
	// fleets interoperate.
	Timing *Timing `json:"timing,omitempty"`
}

// MarshalJSON encodes the result for the grid wire protocol.
func (r Result) MarshalJSON() ([]byte, error) {
	w := resultJSON{Index: r.Index, Job: r.Job, Res: r.Res, WallNS: int64(r.Wall), Timing: r.Timing}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a result. The error cause is reconstructed with the
// original message (the concrete error type does not cross the wire).
func (r *Result) UnmarshalJSON(b []byte) error {
	var w resultJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Result{Index: w.Index, Job: w.Job, Res: w.Res, Wall: time.Duration(w.WallNS), Timing: w.Timing}
	if w.Err != "" {
		r.Err = errors.New(w.Err)
	}
	return nil
}

// Executor runs one job and returns its simulator results. It is the seam
// that lets Run be backed by in-process simulation (LocalExecutor), a
// content-addressed result cache (resultcache.Executor), or a fleet of
// worker processes (grid.Coordinator) — sinks, ordering and the figures
// layer are identical for all of them. Execute is called concurrently from
// Run's worker pool and must be safe for concurrent use.
type Executor interface {
	Execute(ctx context.Context, index int, j Job) (*core.Results, error)
}

// Submitter is an optional Executor extension: when the executor of a Run
// implements it, Run announces the complete job matrix once, before any
// Execute call. A remote backend uses the announcement to enqueue the whole
// sweep in a single request and start the fleet draining it immediately;
// executors wrapping another executor (like the result cache) deliberately
// do not forward the announcement, so only the jobs that actually reach the
// inner executor are ever submitted.
type Submitter interface {
	Submit(ctx context.Context, jobs []Job) error
}

// LocalExecutor simulates jobs in-process. It is the default executor of
// Run and the terminal executor of a grid worker.
type LocalExecutor struct{}

// Execute builds and runs the job's program, recovering panics into errors.
func (LocalExecutor) Execute(ctx context.Context, index int, j Job) (*core.Results, error) {
	return executeJob(ctx, index, j)
}
