package sweep

import (
	"context"
	"fmt"
	"time"

	"safespec/internal/core"
)

// Timing is the optional per-job span breakdown carried alongside a
// Result: where the job's wall-clock time went, in nanoseconds. Spans a
// layer cannot observe stay zero — a purely local run has no report span,
// a cache hit has no simulate span — and a Result from a peer that
// predates timing has a nil Timing altogether. Timing is diagnostic only:
// it never feeds Row, so sweep output stays byte-identical whether or not
// any layer populates it.
//
// Span semantics:
//   - QueueNS: wait between the job becoming runnable and an executor
//     picking it up (local pool wait, or coordinator enqueue→lease grant).
//   - CacheNS: result-cache lookup plus store time.
//   - SimulateNS: time inside the simulator itself.
//   - ReportNS: result delivery overhead (worker report round trip as
//     observed by the coordinator, net of simulate and cache time).
type Timing struct {
	QueueNS    int64 `json:"queue_ns,omitempty"`
	CacheNS    int64 `json:"cache_ns,omitempty"`
	SimulateNS int64 `json:"simulate_ns,omitempty"`
	ReportNS   int64 `json:"report_ns,omitempty"`
}

// Add accumulates t into the receiver (used by per-sweep aggregation).
func (t *Timing) Add(o Timing) {
	t.QueueNS += o.QueueNS
	t.CacheNS += o.CacheNS
	t.SimulateNS += o.SimulateNS
	t.ReportNS += o.ReportNS
}

// String renders the non-zero spans compactly, e.g.
// "queue 1.2s, simulate 40s".
func (t Timing) String() string {
	out := ""
	app := func(name string, ns int64) {
		if ns == 0 {
			return
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s %v", name, time.Duration(ns).Round(time.Millisecond))
	}
	app("queue", t.QueueNS)
	app("cache", t.CacheNS)
	app("simulate", t.SimulateNS)
	app("report", t.ReportNS)
	if out == "" {
		return "no spans"
	}
	return out
}

// TimedExecutor is an optional Executor extension: executors that can
// attribute a job's wall time to spans implement it, and Run prefers it
// over Execute so Result.Timing is populated. Executors that wrap another
// executor (the result cache, the grid worker) merge their own spans with
// the inner executor's.
type TimedExecutor interface {
	ExecuteTimed(ctx context.Context, index int, j Job) (*core.Results, *Timing, error)
}

// ExecuteTimed runs the job in-process, attributing all execution time to
// the simulate span.
func (LocalExecutor) ExecuteTimed(ctx context.Context, index int, j Job) (*core.Results, *Timing, error) {
	start := time.Now()
	res, err := executeJob(ctx, index, j)
	return res, &Timing{SimulateNS: int64(time.Since(start))}, err
}
