package sweep

import (
	"fmt"

	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/workloads"
)

// Job is one cell of the experiment matrix: a benchmark kernel run under one
// simulator configuration with one generator seed. Jobs are plain values so a
// matrix can be built once and handed to Run, serialized, or sharded.
type Job struct {
	// Bench is the workload name (one of workloads.Names).
	Bench string
	// Mode labels the configuration in results and sink rows. For the
	// standard matrix it is "baseline", "wfb" or "wfc"; custom configs may
	// use any label.
	Mode string
	// Seed overrides the workload's program-generator seed (0 keeps the
	// workload's deterministic per-name default).
	Seed int64
	// Config is the fully-specified simulator configuration, including run
	// limits and occupancy sampling.
	Config core.Config
}

// Program returns the job's kernel via the workloads memoization cache:
// every job with the same (bench, seed) shares one immutable *isa.Program,
// so seed/config fans never re-assemble the same kernel and simulator reuse
// can detect an unchanged program by pointer identity.
func (j Job) Program() (*isa.Program, error) {
	return workloads.Program(j.Bench, j.Seed, j.Config.Pipeline.NumThreads())
}

// String labels the job in errors and logs.
func (j Job) String() string {
	s := j.Bench + "/" + j.Mode
	if n := j.Config.Pipeline.NumThreads(); n > 1 {
		s = fmt.Sprintf("%s/t%d", s, n)
	}
	if j.Seed != 0 {
		s = fmt.Sprintf("%s/seed=%d", s, j.Seed)
	}
	return s
}

// ModeSpec pairs a configuration label with its base config. Run limits and
// sampling from the MatrixSpec are applied on top.
type ModeSpec struct {
	Name   string
	Config core.Config
}

// StandardModes returns the paper's three protection modes in evaluation
// order: baseline first (the normalization denominator), then WFC, then WFB.
func StandardModes() []ModeSpec {
	return []ModeSpec{
		{Name: "baseline", Config: core.Baseline()},
		{Name: "wfc", Config: core.WFC()},
		{Name: "wfb", Config: core.WFB()},
	}
}

// MatrixSpec describes a benchmark × mode × seed experiment matrix.
type MatrixSpec struct {
	// Benchmarks restricts the workload set (nil = all 21, figure order).
	Benchmarks []string
	// Modes are the configurations to run (nil = StandardModes).
	Modes []ModeSpec
	// Seeds are the generator seeds per (bench, mode) pair (nil = one run
	// with the workload's default seed).
	Seeds []int64
	// Instructions is the committed-instruction budget per job.
	Instructions uint64
	// MaxCycles is the safety cycle bound per job (0 = unbounded).
	MaxCycles uint64
	// SampleOccupancy enables the shadow-occupancy histograms needed by the
	// Figures 6-9 sizing study.
	SampleOccupancy bool
	// Threads is the SMT axis: hardware-thread counts to run each
	// (benchmark, mode) pair under (nil = single-thread only). A value of 1
	// leaves the config untouched, so single-thread jobs hash — and hit the
	// result cache — exactly as they did before the axis existed.
	Threads []int
}

// Jobs expands the spec into the full job list, benchmark-major so that all
// modes of one benchmark are adjacent (the order figures.Group expects).
func (m MatrixSpec) Jobs() ([]Job, error) {
	benches := m.Benchmarks
	if benches == nil {
		benches = workloads.Names()
	}
	for _, name := range benches {
		if _, err := workloads.ByName(name); err != nil {
			if !workloads.Registered(name) {
				return nil, err
			}
		}
	}
	modes := m.Modes
	if modes == nil {
		modes = StandardModes()
	}
	seeds := m.Seeds
	if seeds == nil {
		seeds = []int64{0}
	}
	threads := m.Threads
	if threads == nil {
		threads = []int{1}
	}
	jobs := make([]Job, 0, len(benches)*len(modes)*len(seeds)*len(threads))
	for _, bench := range benches {
		for _, mode := range modes {
			for _, th := range threads {
				cfg := mode.Config.WithLimits(m.Instructions, m.MaxCycles)
				cfg.SampleOccupancy = m.SampleOccupancy
				if th > 1 {
					cfg.Pipeline.Threads = th
				}
				for _, seed := range seeds {
					jobs = append(jobs, Job{Bench: bench, Mode: mode.Name, Seed: seed, Config: cfg})
				}
			}
		}
	}
	return jobs, nil
}

// Quick returns the reduced smoke matrix used by CI and the bench smoke: a
// representative benchmark subset at a small instruction budget. Fully
// deterministic, so result rows are byte-identical across worker counts.
func Quick() MatrixSpec {
	return MatrixSpec{
		Benchmarks:      []string{"perlbench", "mcf", "lbm", "exchange2", "gcc", "pop2"},
		Instructions:    15_000,
		MaxCycles:       5_000_000,
		SampleOccupancy: true,
	}
}

// Full returns the pinned full evaluation matrix: all 21 benchmarks (nil
// selects the complete registry in figure order) under the three standard
// modes at a larger committed-instruction budget than Quick, so
// per-benchmark throughput rows are meaningful. Like Quick it is fully
// deterministic and must stay pinned: perf reports record the matrix
// identity and Compare refuses to gate reports whose matrices differ.
func Full() MatrixSpec {
	return MatrixSpec{
		Instructions:    50_000,
		MaxCycles:       17_000_000,
		SampleOccupancy: true,
	}
}
