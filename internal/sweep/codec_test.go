package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"safespec/internal/core"
)

func TestJobHashNormalizationInvariance(t *testing.T) {
	// A zero config and one with the Table I defaults spelled out run
	// identically, so they must share a content address.
	zero := Job{Bench: "mcf", Mode: "baseline", Config: core.Baseline()}
	spelled := zero
	spelled.Config.Pipeline = spelled.Config.Pipeline.Normalize()
	h1, err := zero.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := spelled.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("normalization changed the hash: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Errorf("hash %q is not hex sha-256", h1)
	}
}

func TestJobHashDiscriminates(t *testing.T) {
	base := Job{Bench: "mcf", Mode: "baseline", Config: core.Baseline().WithLimits(1000, 0)}
	seen := map[string]string{}
	for _, j := range []Job{
		base,
		{Bench: "gcc", Mode: "baseline", Config: base.Config},
		{Bench: "mcf", Mode: "wfc", Config: core.WFC().WithLimits(1000, 0)},
		{Bench: "mcf", Mode: "baseline", Seed: 7, Config: base.Config},
		{Bench: "mcf", Mode: "baseline", Config: core.Baseline().WithLimits(2000, 0)},
		func() Job {
			j := base
			j.Config.SampleOccupancy = true
			return j
		}(),
	} {
		h, err := j.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %s and %s", prev, j)
		}
		seen[h] = j.String()
	}
}

func TestJobHashStableAcrossCalls(t *testing.T) {
	j := Job{Bench: "lbm", Mode: "wfb", Seed: 3, Config: core.WFB().WithLimits(5000, 100000)}
	h1, _ := j.Hash()
	h2, _ := j.Hash()
	if h1 != h2 {
		t.Errorf("hash not stable: %s vs %s", h1, h2)
	}
}

// TestResultJSONRoundTrip runs a real job and checks that a Result survives
// the wire exactly: the sink row computed from the decoded result is
// identical to the original, including the occupancy histograms behind the
// sizing figures.
func TestResultJSONRoundTrip(t *testing.T) {
	spec := Quick()
	spec.Benchmarks = []string{"exchange2"}
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Result
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Index != r.Index || back.Job != r.Job || back.Wall != r.Wall {
			t.Errorf("metadata mutated: %+v vs %+v", back, r)
		}
		if MakeRow(back) != MakeRow(r) {
			t.Errorf("row differs after round trip:\n%+v\nvs\n%+v", MakeRow(back), MakeRow(r))
		}
		if r.Res.OccD != nil {
			if back.Res.OccD == nil {
				t.Fatal("occupancy histogram lost on the wire")
			}
			const p = 0.9999
			if back.Res.OccD.Percentile(p) != r.Res.OccD.Percentile(p) ||
				back.Res.OccD.N() != r.Res.OccD.N() {
				t.Errorf("histogram mutated: %v vs %v", back.Res.OccD, r.Res.OccD)
			}
		}
	}
}

// TestResultJSONErrorPreserved is the error-serialization contract: an
// error cause must survive as a string across processes.
func TestResultJSONErrorPreserved(t *testing.T) {
	r := Result{
		Index: 3,
		Job:   Job{Bench: "nope", Mode: "baseline"},
		Err:   errors.New(`workloads: unknown benchmark "nope"`),
		Wall:  17 * time.Millisecond,
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != r.Err.Error() {
		t.Errorf("error cause lost: %v", back.Err)
	}
	if back.Res != nil {
		t.Errorf("errored result grew a payload: %+v", back.Res)
	}
	if MakeRow(back).Err != MakeRow(r).Err {
		t.Errorf("sink row error differs: %q vs %q", MakeRow(back).Err, MakeRow(r).Err)
	}
}

// TestAggregateCells checks the seed-fan collapse in the Aggregate sink:
// one summary cell per (bench, mode) with a confidence interval, instead of
// duplicate rows.
func TestAggregateCells(t *testing.T) {
	spec := MatrixSpec{
		Benchmarks:   []string{"exchange2"},
		Seeds:        []int64{1, 2, 3},
		Instructions: 2_000,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var agg Aggregate
	if _, err := Run(context.Background(), jobs, Options{Sinks: []Sink{&agg}}); err != nil {
		t.Fatal(err)
	}
	cells := agg.Cells()
	if len(cells) != 3 { // one per mode, not one per (mode, seed)
		t.Fatalf("want 3 cells, got %d: %+v", len(cells), cells)
	}
	order := []string{"baseline", "wfc", "wfb"}
	for i, c := range cells {
		if c.Bench != "exchange2" || c.Mode != order[i] {
			t.Errorf("cell %d = %s/%s, want exchange2/%s (job order)", i, c.Bench, c.Mode, order[i])
		}
		if c.N != 3 {
			t.Errorf("cell %s: N = %d, want 3", c.Mode, c.N)
		}
		if c.MeanIPC <= 0 {
			t.Errorf("cell %s: mean IPC %f", c.Mode, c.MeanIPC)
		}
		if c.CI95 < 0 {
			t.Errorf("cell %s: negative CI", c.Mode)
		}
	}
}
