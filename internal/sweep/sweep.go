// Package sweep is the experiment runner behind the paper's evaluation: it
// expands a benchmark × mode × seed matrix into jobs, executes them on a
// bounded worker pool with cancellation and per-job panic isolation, and
// delivers results to pluggable sinks in deterministic job order regardless
// of scheduling. internal/figures, the repository benchmarks and the
// cmd/safespec-* binaries are all thin consumers of this package.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"safespec/internal/core"
)

// Result is one finished (or failed) job.
type Result struct {
	// Index is the job's position in the input slice; the results slice and
	// every sink observe results in ascending Index order.
	Index int
	// Job echoes the input cell.
	Job Job
	// Res holds the simulator statistics (nil when Err is set).
	Res *core.Results
	// Err records a build failure, a recovered panic, or the context error
	// for jobs that were never started.
	Err error
	// Wall is the job's wall-clock execution time on its worker.
	Wall time.Duration
	// Timing is the optional span breakdown of Wall (nil when the executor
	// cannot attribute time, or the result came from a peer that predates
	// timing). It is diagnostic only and never reaches sink rows.
	Timing *Timing
}

// Committed returns the job's retired-instruction count (0 on error).
func (r Result) Committed() uint64 {
	if r.Res == nil {
		return 0
	}
	return r.Res.Committed
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds the worker pool (<=0 selects GOMAXPROCS).
	Workers int
	// Timeout bounds the whole sweep (0 = no bound). Jobs not started when
	// it expires are reported with Err set to the context error.
	Timeout time.Duration
	// Sinks observe results in job order as they become deliverable; every
	// sink is flushed before Run returns.
	Sinks []Sink
	// Executor runs individual jobs (nil selects LocalExecutor). Wrapping it
	// swaps in the result cache or the distributed grid without touching any
	// consumer of Run.
	Executor Executor
}

// ForEach runs fn(ctx, i) for i in [0, n) on at most workers goroutines
// (<=0 selects GOMAXPROCS). A panicking fn is recovered and reported as an
// error for that index without disturbing the others. Once ctx is cancelled
// no new indices are started; already-running calls finish. The returned
// error joins the context error (if cancelled) with every fn error, each
// wrapped with its index.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)

	errs := make([]error, n)
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= n || ctx.Err() != nil {
					return
				}
				errs[i] = protect(ctx, i, fn)
			}
		}()
	}
	wg.Wait()

	all := make([]error, 0, n+1)
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	for i, err := range errs {
		if err != nil {
			all = append(all, fmt.Errorf("job %d: %w", i, err))
		}
	}
	return errors.Join(all...)
}

// protect invokes fn for one index, converting a panic into an error.
func protect(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(ctx, i)
}

// Run executes jobs on a bounded worker pool and returns one Result per job,
// in job order. Per-job failures (panics, unknown benchmarks) are isolated
// into their Result and do not abort the sweep; the returned error is
// non-nil only when the context was cancelled or the Timeout expired, or a
// sink failed. Results are identical for any worker count: jobs share no
// mutable state and sinks observe results in ascending job order.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Result, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	results := make([]Result, len(jobs))
	for i := range results {
		results[i] = Result{Index: i, Job: jobs[i]}
	}
	ran := make([]bool, len(jobs))

	exec := opts.Executor
	if exec == nil {
		exec = LocalExecutor{}
	}
	if sub, ok := exec.(Submitter); ok {
		// Announce the matrix before the pool starts so a remote backend can
		// enqueue the whole sweep in one request. A failed announcement fails
		// the sweep outright, like any configuration error.
		if err := sub.Submit(ctx, jobs); err != nil {
			return results, fmt.Errorf("sweep: submit matrix: %w", err)
		}
	}

	// The collector delivers finished results to the sinks in ascending job
	// order, buffering out-of-order completions, so sink output is
	// byte-identical for any worker count.
	done := make(chan int, len(jobs))
	var sinkErr error
	observe := func(r Result) {
		for _, s := range opts.Sinks {
			if err := s.Observe(r); err != nil && sinkErr == nil {
				sinkErr = err
			}
		}
	}
	delivered := 0
	var collector sync.WaitGroup
	if len(opts.Sinks) > 0 {
		collector.Add(1)
		go func() {
			defer collector.Done()
			pending := make(map[int]bool, len(jobs))
			for i := range done {
				pending[i] = true
				for pending[delivered] {
					delete(pending, delivered)
					observe(results[delivered])
					delivered++
				}
			}
		}()
	}

	timed, _ := exec.(TimedExecutor)
	poolStart := time.Now()
	ctxErr := ForEach(ctx, len(jobs), opts.Workers, func(ctx context.Context, i int) error {
		ran[i] = true
		start := time.Now()
		if timed != nil {
			results[i].Res, results[i].Timing, results[i].Err = timed.ExecuteTimed(ctx, i, jobs[i])
		} else {
			results[i].Res, results[i].Err = exec.Execute(ctx, i, jobs[i])
		}
		results[i].Wall = time.Since(start)
		if t := results[i].Timing; t != nil && t.QueueNS == 0 {
			// The whole matrix is runnable at pool start; a job's queue wait
			// is how long it sat before a pool worker picked it up. Executors
			// with their own queue (the grid) stamp QueueNS themselves.
			t.QueueNS = int64(start.Sub(poolStart))
		}
		done <- i
		return nil
	})
	// ForEach isolates every job error into results[i].Err (the executors
	// never return through fn's error), so ctxErr can only carry
	// cancellation.
	close(done)
	collector.Wait()

	if ctxErr != nil {
		for i := range results {
			if !ran[i] {
				results[i].Err = context.Cause(ctx)
			}
		}
	}
	if len(opts.Sinks) > 0 {
		// A job skipped by cancellation never arrives on done, stalling the
		// collector's in-order cursor; deliver the remainder here, still in
		// ascending job order.
		for ; delivered < len(results); delivered++ {
			observe(results[delivered])
		}
	}
	for _, s := range opts.Sinks {
		if err := s.Flush(); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	return results, errors.Join(ctxErr, sinkErr)
}

// executeJob dispatches one job on a worker. It is a package variable so
// tests can substitute a controllable implementation (e.g. one that blocks
// selected indices until cancellation, pinning the cancellation point);
// production always runs execute.
var executeJob = func(_ context.Context, _ int, j Job) (*core.Results, error) {
	return execute(j)
}

// simPool recycles simulators across jobs: a pooled simulator is Reset to
// the next job's configuration and program, which reuses its ROB, caches,
// TLBs, shadow structures, predictor tables and — when the memoized program
// repeats — the loaded memory image. Reset guarantees run-for-run identical
// results, so pooling is invisible in every sink (CI gates byte-equality).
var simPool sync.Pool

// execute builds and runs one job, recovering panics into an error.
func execute(j Job) (res *core.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("sweep: %s panicked: %v", j, r)
		}
	}()
	prog, err := j.Program()
	if err != nil {
		return nil, err
	}
	var sim *core.Simulator
	if v := simPool.Get(); v != nil {
		sim = v.(*core.Simulator)
		sim.Reset(j.Config, prog)
	} else {
		sim = core.New(j.Config, prog)
	}
	// Detach before pooling: the raw results alias the simulator's
	// accumulator, which the next job would overwrite. A simulator that
	// panicked mid-run is deliberately NOT pooled (its state is suspect).
	res = sim.Run().Detach()
	simPool.Put(sim)
	return res, nil
}

// FirstErr returns the first per-job error in job order, or nil.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("sweep: %s: %w", r.Job, r.Err)
		}
	}
	return nil
}
