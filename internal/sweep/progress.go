package sweep

import (
	"log/slog"
	"time"
)

// Progress is a sink that logs periodic sweep progress — cells done/total,
// completion rate, and the ETA extrapolated from it — through a structured
// logger. It rides the ordinary sink seam, so local and remote sweeps get
// identical progress lines, and it never touches the data sinks' output.
type Progress struct {
	// Total is the sweep's job count (used for the done/total and ETA
	// fields; zero disables ETA).
	Total int
	// Log receives the progress records at Info level; a nil Log disables
	// the sink entirely.
	Log *slog.Logger
	// Every is the minimum interval between progress lines (default 2s).
	// The final line always fires from Flush regardless of interval.
	Every time.Duration

	// now is a test seam (defaults to time.Now).
	now   func() time.Time
	done  int
	start time.Time
	last  time.Time
}

// Observe counts one finished cell and emits a progress line when the
// reporting interval has elapsed.
func (p *Progress) Observe(r Result) error {
	if p.Log == nil {
		return nil
	}
	if p.now == nil {
		p.now = time.Now
	}
	t := p.now()
	if p.done == 0 {
		p.start, p.last = t, t
	}
	p.done++
	every := p.Every
	if every <= 0 {
		every = 2 * time.Second
	}
	if t.Sub(p.last) >= every && p.done < p.Total {
		p.last = t
		p.emit(t, false)
	}
	return nil
}

// Flush emits the final progress line.
func (p *Progress) Flush() error {
	if p.Log == nil || p.done == 0 {
		return nil
	}
	if p.now == nil {
		p.now = time.Now
	}
	p.emit(p.now(), true)
	return nil
}

func (p *Progress) emit(t time.Time, final bool) {
	elapsed := t.Sub(p.start)
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(p.done) / s
	}
	attrs := []any{
		"done", p.done,
		"total", p.Total,
		"cells_per_sec", rate,
		"elapsed", elapsed.Round(time.Millisecond).String(),
	}
	if !final && rate > 0 && p.Total > p.done {
		eta := time.Duration(float64(p.Total-p.done) / rate * float64(time.Second))
		attrs = append(attrs, "eta", eta.Round(time.Second).String())
	}
	msg := "sweep progress"
	if final {
		msg = "sweep finished"
	}
	p.Log.Info(msg, attrs...)
}
