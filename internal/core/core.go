// Package core is the public façade of the SafeSpec simulator library. It
// wires the out-of-order pipeline, the memory system and the SafeSpec
// shadow structures into a single Simulator with a small configuration
// surface matching the paper's evaluation setup (Tables I and II), and
// exposes the Results needed to regenerate every figure.
//
// Typical use:
//
//	prog := buildProgram()              // via internal/asm
//	res := core.Run(core.WFC(), prog)   // or core.Baseline(), core.WFB()
//	fmt.Println(res.IPC())
package core

import (
	"fmt"

	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/pipeline"
	"safespec/internal/shadow"
)

// Mode re-exports the protection policy selector.
type Mode = pipeline.Mode

// Protection modes.
const (
	ModeBaseline = pipeline.ModeBaseline
	ModeWFB      = pipeline.ModeWFB
	ModeWFC      = pipeline.ModeWFC
)

// Config is the simulator configuration. Construct via Baseline, WFB, WFC,
// or DefaultConfig and adjust.
type Config struct {
	// Pipeline carries the full core configuration (Table I defaults are
	// applied to zero fields).
	Pipeline pipeline.Config
	// SampleOccupancy enables the per-cycle shadow occupancy histograms
	// used by the Figure 6-9 sizing study.
	SampleOccupancy bool
}

// DefaultConfig returns the paper's simulated Skylake in the given mode.
func DefaultConfig(mode Mode) Config {
	cfg := Config{}
	cfg.Pipeline.Mode = mode
	cfg.Pipeline.FaultsReturnData = true
	cfg.Pipeline = cfg.Pipeline.Normalize()
	return cfg
}

// Baseline returns the unprotected out-of-order configuration.
func Baseline() Config { return DefaultConfig(ModeBaseline) }

// WFB returns the SafeSpec wait-for-branch configuration with worst-case
// (Secure) shadow sizing.
func WFB() Config { return DefaultConfig(ModeWFB) }

// WFC returns the SafeSpec wait-for-commit configuration with worst-case
// (Secure) shadow sizing.
func WFC() Config { return DefaultConfig(ModeWFC) }

// WithShadowPolicy returns a copy of cfg with all four shadow policies
// replaced (used by the TSA experiments to shrink the structures and select
// Block/Drop behaviour).
func (c Config) WithShadowPolicy(d, i, dtlb, itlb shadow.Policy) Config {
	c.Pipeline.ShadowD = d
	c.Pipeline.ShadowI = i
	c.Pipeline.ShadowDTLB = dtlb
	c.Pipeline.ShadowITLB = itlb
	return c
}

// WithLimits returns a copy of cfg with run limits set.
func (c Config) WithLimits(maxInstrs, maxCycles uint64) Config {
	c.Pipeline.MaxInstrs = maxInstrs
	c.Pipeline.MaxCycles = maxCycles
	return c
}

// Results wraps the pipeline statistics of one run.
type Results struct {
	*pipeline.Stats
	// Mode records which configuration produced the results.
	Mode Mode
}

// Simulator is a configured core bound to a program. Use New + Run, or the
// package-level Run convenience. A Simulator can be Reset and run again —
// sweep executors keep one per goroutine and rebind it across cells, which
// skips reconstructing the ROB, caches, TLBs, shadow structures, predictor
// tables and (for an unchanged program) the loaded memory image.
type Simulator struct {
	cfg Config
	cpu *pipeline.CPU
	// prog/mem cache the loaded memory image: as long as the program stays
	// the same, Reset rolls the journaled memory back to its post-load
	// state instead of rebuilding page tables and data frames.
	prog *isa.Program
	mem  *mem.Memory
}

// New builds a Simulator for prog under cfg.
func New(cfg Config, prog *isa.Program) *Simulator {
	s := &Simulator{}
	s.Reset(cfg, prog)
	return s
}

// Reset rebinds the simulator to (cfg, prog) as if freshly built by New,
// reusing previously allocated structures wherever the configuration allows.
// Results of a run after Reset are identical to those of a fresh simulator.
func (s *Simulator) Reset(cfg Config, prog *isa.Program) {
	// Rollback replays one record per journaled write; a rebuild writes
	// (roughly) one word per allocated backing word. Past that break-even
	// point — store-heavy runs at large instruction budgets — rebuilding is
	// cheaper and also returns the journal's memory.
	if s.mem != nil && s.prog == prog && s.mem.JournalLen() <= 2*s.mem.Words() {
		s.mem.Rollback()
	} else {
		s.mem = pipeline.BuildMemory(prog)
		s.mem.StartJournal()
		s.prog = prog
	}
	if s.cpu == nil {
		s.cpu = pipeline.NewWith(cfg.Pipeline, prog, s.mem)
	} else {
		s.cpu.Reset(cfg.Pipeline, prog, s.mem)
	}
	if cfg.SampleOccupancy {
		s.cpu.EnableOccupancySampling()
	}
	s.cfg = cfg
}

// CPU exposes the underlying core (attack helpers need the predictor and
// memory system).
func (s *Simulator) CPU() *pipeline.CPU { return s.cpu }

// Run executes to completion and returns the results.
func (s *Simulator) Run() *Results {
	st := s.cpu.Run()
	return &Results{Stats: st, Mode: s.cfg.Pipeline.Mode}
}

// Run builds and runs a simulator in one call.
func Run(cfg Config, prog *isa.Program) *Results {
	return New(cfg, prog).Run()
}

// Detach returns a copy of r whose statistics no longer alias the
// simulator's internal accumulator, so the simulator can be Reset and
// reused while the results stay valid. The occupancy histograms are per-run
// objects and transfer ownership to the copy.
func (r *Results) Detach() *Results {
	st := *r.Stats
	return &Results{Stats: &st, Mode: r.Mode}
}

// Summary renders a one-line overview of the results.
func (r *Results) Summary() string {
	return fmt.Sprintf("%s: IPC=%.3f cycles=%d committed=%d mispred=%.4f dMiss=%.4f iMiss=%.4f",
		r.Mode, r.IPC(), r.Cycles, r.Committed,
		r.Bpred.MispredictRate(), r.DReadMissRate(), r.IFetchMissRate())
}
