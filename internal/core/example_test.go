package core_test

import (
	"fmt"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
)

// ExampleRun shows the shortest path from a program to results: assemble a
// loop, run it under SafeSpec wait-for-commit, read a register.
func ExampleRun() {
	b := asm.NewBuilder()
	b.Movi(isa.T0, 0)
	b.Movi(isa.T1, 10)
	b.Label("loop")
	b.Addi(isa.T0, isa.T0, 1)
	b.Blt(isa.T0, isa.T1, "loop")
	b.Halt()
	prog := b.MustBuild()

	sim := core.New(core.WFC(), prog)
	sim.Run()
	fmt.Println(sim.CPU().Reg(isa.T0))
	// Output: 10
}

// ExampleConfig_WithShadowPolicy shows how experiments shrink the shadow
// structures — the knob behind the transient-attack study.
func ExampleConfig_WithShadowPolicy() {
	cfg := core.WFC()
	fmt.Println(cfg.Pipeline.ShadowD.Entries) // Secure default: LDQ-bound
	// Output: 72
}

// ExampleRun_modes demonstrates that the protection mode never changes
// architectural results — only microarchitectural visibility.
func ExampleRun_modes() {
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.Movi(isa.S0, 0x1000)
	b.Movi(isa.T0, 41)
	b.Store(isa.T0, isa.S0, 0)
	b.Load(isa.T1, isa.S0, 0)
	b.Addi(isa.T1, isa.T1, 1)
	b.Halt()
	prog := b.MustBuild()

	for _, cfg := range []core.Config{core.Baseline(), core.WFB(), core.WFC()} {
		sim := core.New(cfg, prog)
		sim.Run()
		fmt.Println(sim.CPU().Reg(isa.T1))
	}
	// Output:
	// 42
	// 42
	// 42
}
