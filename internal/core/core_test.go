package core

import (
	"strings"
	"testing"

	"safespec/internal/asm"
	"safespec/internal/isa"
	"safespec/internal/shadow"
)

func tiny() *isa.Program {
	b := asm.NewBuilder()
	b.Movi(isa.T0, 2)
	b.Addi(isa.T0, isa.T0, 3)
	b.Halt()
	return b.MustBuild()
}

func TestModeConstructors(t *testing.T) {
	if Baseline().Pipeline.Mode != ModeBaseline {
		t.Error("Baseline mode wrong")
	}
	if WFB().Pipeline.Mode != ModeWFB {
		t.Error("WFB mode wrong")
	}
	if WFC().Pipeline.Mode != ModeWFC {
		t.Error("WFC mode wrong")
	}
	// All constructors must produce Meltdown-vulnerable (Intel-like)
	// forwarding by default, as the paper's threat model assumes.
	for _, cfg := range []Config{Baseline(), WFB(), WFC()} {
		if !cfg.Pipeline.FaultsReturnData {
			t.Error("FaultsReturnData must default to true")
		}
	}
}

func TestWithLimits(t *testing.T) {
	cfg := WFC().WithLimits(123, 456)
	if cfg.Pipeline.MaxInstrs != 123 || cfg.Pipeline.MaxCycles != 456 {
		t.Errorf("limits = %d/%d", cfg.Pipeline.MaxInstrs, cfg.Pipeline.MaxCycles)
	}
}

func TestWithShadowPolicy(t *testing.T) {
	d := shadow.Policy{Name: "d", Entries: 3, WhenFull: shadow.Drop}
	i := shadow.Policy{Name: "i", Entries: 5}
	dt := shadow.Policy{Name: "dt", Entries: 7}
	it := shadow.Policy{Name: "it", Entries: 9}
	cfg := WFC().WithShadowPolicy(d, i, dt, it)
	if cfg.Pipeline.ShadowD.Entries != 3 || cfg.Pipeline.ShadowITLB.Entries != 9 {
		t.Errorf("shadow policies not applied: %+v", cfg.Pipeline)
	}
	// The original must be unchanged (value semantics).
	if WFC().Pipeline.ShadowD.Entries == 3 {
		t.Error("WithShadowPolicy mutated a shared config")
	}
}

func TestRunConvenience(t *testing.T) {
	res := Run(Baseline(), tiny())
	if res.Committed != 3 {
		t.Errorf("committed = %d", res.Committed)
	}
	if res.Mode != ModeBaseline {
		t.Errorf("mode = %v", res.Mode)
	}
}

func TestSummaryString(t *testing.T) {
	res := Run(WFC(), tiny())
	s := res.Summary()
	for _, want := range []string{"safespec-wfc", "IPC", "committed=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestSimulatorAccessors(t *testing.T) {
	sim := New(WFC(), tiny())
	if sim.CPU() == nil {
		t.Fatal("nil CPU")
	}
	sim.Run()
	if got := sim.CPU().Reg(isa.T0); got != 5 {
		t.Errorf("T0 = %d", got)
	}
}

func TestOccupancySamplingToggle(t *testing.T) {
	cfg := WFC()
	cfg.SampleOccupancy = true
	res := New(cfg, tiny()).Run()
	if res.OccD == nil {
		t.Error("sampling enabled but no histograms")
	}
	res = New(WFC(), tiny()).Run()
	if res.OccD != nil {
		t.Error("sampling disabled but histograms present")
	}
}
