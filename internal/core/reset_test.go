package core_test

import (
	"reflect"
	"testing"

	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/workloads"
)

// buildKernel returns the named workload's kernel (fresh build; memoization
// is irrelevant here, the test controls program identity explicitly).
func buildKernel(t *testing.T, name string) *isa.Program {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Build()
}

// TestResetDeterminism is the reuse gate behind the sweep executor's
// simulator pool: one Simulator rebound across a sequence of (config,
// program) cells — mode flips, program switches, occupancy sampling on and
// off, stores dirtying memory — must reproduce, for every cell, results
// deeply equal to a fresh simulator's. Byte-identical sweep output across
// local, cached and distributed execution rests on exactly this property.
func TestResetDeterminism(t *testing.T) {
	// perlbench stores every 4th iteration (exercises the memory journal
	// rollback); exchange2 is store-free compute (exercises the program
	// switch). The sequence deliberately revisits cell 0 at the end so a
	// state leak from any intermediate cell would surface.
	perl := buildKernel(t, "perlbench")
	exch := buildKernel(t, "exchange2")
	withOcc := func(c core.Config) core.Config {
		c.SampleOccupancy = true
		return c
	}
	cells := []struct {
		name string
		cfg  core.Config
		prog *isa.Program
	}{
		{"baseline/perl", core.Baseline().WithLimits(8_000, 2_000_000), perl},
		{"wfc/perl", core.WFC().WithLimits(8_000, 2_000_000), perl},
		{"wfc+occ/perl", withOcc(core.WFC().WithLimits(8_000, 2_000_000)), perl},
		{"wfb/exch", core.WFB().WithLimits(8_000, 2_000_000), exch},
		{"baseline/perl again", core.Baseline().WithLimits(8_000, 2_000_000), perl},
	}

	reused := core.New(cells[0].cfg, cells[0].prog)
	for i, cell := range cells {
		var got *core.Results
		if i == 0 {
			got = reused.Run().Detach()
		} else {
			reused.Reset(cell.cfg, cell.prog)
			got = reused.Run().Detach()
		}
		want := core.Run(cell.cfg, cell.prog)
		if got.Mode != want.Mode {
			t.Fatalf("%s: mode %v, want %v", cell.name, got.Mode, want.Mode)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Errorf("%s: reused simulator diverged from fresh run\nreused: %s\nfresh:  %s",
				cell.name, got.Summary(), want.Summary())
		}
	}
}

// TestDetachIsolatesResults: results detached before a Reset must not change
// when the simulator runs the next cell.
func TestDetachIsolatesResults(t *testing.T) {
	exch := buildKernel(t, "exchange2")
	perl := buildKernel(t, "perlbench")
	cfg := core.WFC().WithLimits(5_000, 2_000_000)

	sim := core.New(cfg, exch)
	first := sim.Run().Detach()
	snapshot := *first.Stats

	sim.Reset(core.Baseline().WithLimits(5_000, 2_000_000), perl)
	sim.Run()

	if !reflect.DeepEqual(snapshot, *first.Stats) {
		t.Fatal("detached results changed when the simulator was reused")
	}
}
