package pipeline_test

import (
	"bytes"
	"testing"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/pipeline"
)

// tinyConfig returns a deliberately cramped core: every structural hazard
// (ROB full, IQ full, LDQ/STQ full, branch-tag exhaustion) is exercised on
// ordinary programs. Architectural results must be unaffected.
func tinyConfig(mode core.Mode) core.Config {
	cfg := core.DefaultConfig(mode)
	cfg.Pipeline.ROBSize = 8
	cfg.Pipeline.IQSize = 4
	cfg.Pipeline.LDQSize = 2
	cfg.Pipeline.STQSize = 2
	cfg.Pipeline.MaxBranchTags = 2
	cfg.Pipeline = cfg.Pipeline.Normalize()
	return cfg
}

// stressProgram mixes loads, stores, branches and calls densely enough to
// hit every tiny limit.
func stressProgram() *isa.Program {
	b := asm.NewBuilder()
	b.Region(0x1_0000, 1<<16, false)
	b.Movi(isa.S0, 0x1_0000)
	b.Movi(isa.S1, 0) // sum
	b.Movi(isa.T0, 0) // i
	b.Movi(isa.T1, 64)
	b.Label("loop")
	b.Shli(isa.T2, isa.T0, 3)
	b.Add(isa.T2, isa.S0, isa.T2)
	b.Store(isa.T0, isa.T2, 0)
	b.Load(isa.T3, isa.T2, 0)
	b.Add(isa.S1, isa.S1, isa.T3)
	b.Andi(isa.T4, isa.T0, 3)
	b.Bne(isa.T4, isa.Zero, "noCall")
	b.Call("bump")
	b.Label("noCall")
	b.Addi(isa.T0, isa.T0, 1)
	b.Blt(isa.T0, isa.T1, "loop")
	b.Halt()
	b.Label("bump")
	b.Addi(isa.S2, isa.S2, 1)
	b.Ret()
	return b.MustBuild()
}

func TestTinyStructuresCorrectness(t *testing.T) {
	prog := stressProgram()
	// Reference on the full-size machine.
	ref := core.New(core.Baseline(), prog)
	ref.Run()
	wantSum := ref.CPU().Reg(isa.S1)
	wantBump := ref.CPU().Reg(isa.S2)
	if wantSum != 2016 || wantBump != 16 {
		t.Fatalf("reference results unexpected: sum=%d bump=%d", wantSum, wantBump)
	}
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFB, core.ModeWFC} {
		sim := core.New(tinyConfig(mode), prog)
		res := sim.Run()
		if !sim.CPU().Halted() {
			t.Fatalf("%v: tiny core did not halt", mode)
		}
		if got := sim.CPU().Reg(isa.S1); got != wantSum {
			t.Errorf("%v: sum = %d, want %d", mode, got, wantSum)
		}
		if got := sim.CPU().Reg(isa.S2); got != wantBump {
			t.Errorf("%v: bump = %d, want %d", mode, got, wantBump)
		}
		// The tiny core must be slower than the big one, proving the
		// structural limits actually bound it.
		if res.Cycles <= ref.Run().Cycles/2 {
			t.Errorf("%v: tiny core suspiciously fast (%d cycles)", mode, res.Cycles)
		}
	}
}

func TestTinyShadowWithWorkload(t *testing.T) {
	// A cramped shadow d-cache under each full policy must still execute
	// correctly (performance differs; semantics must not).
	prog := stressProgram()
	ref := core.New(core.Baseline(), prog)
	ref.Run()
	want := ref.CPU().Reg(isa.S1)
	for _, of := range []struct {
		name string
		cfg  core.Config
	}{
		{"block", tinyShadowCfg(0)},
		{"drop", tinyShadowCfg(1)},
		{"replace", tinyShadowCfg(2)},
	} {
		sim := core.New(of.cfg, prog)
		sim.Run()
		if got := sim.CPU().Reg(isa.S1); got != want {
			t.Errorf("%s: sum = %d, want %d", of.name, got, want)
		}
	}
}

func tinyShadowCfg(policy int) core.Config {
	cfg := core.WFC()
	d := cfg.Pipeline.ShadowD
	d.Entries = 2
	switch policy {
	case 0:
		d.WhenFull = 0 // Block
	case 1:
		d.WhenFull = 1 // Drop
	default:
		d.WhenFull = 2 // Replace
	}
	cfg.Pipeline.ShadowD = d
	return cfg
}

func TestDeepCallChain(t *testing.T) {
	// Recursion deeper than the 16-entry RAS: predictions go wrong but
	// execution stays correct.
	b := asm.NewBuilder()
	b.Movi(isa.A0, 24) // depth > RAS size
	b.Region(0x1_0000, 4096, false)
	b.Movi(isa.SP, 0x1_0000)
	b.Call("rec")
	b.Halt()
	b.Label("rec")
	// if a0 == 0 return
	b.Beq(isa.A0, isa.Zero, "base")
	// push ra
	b.Store(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 8)
	b.Addi(isa.A0, isa.A0, -1)
	b.Call("rec")
	// pop ra
	b.Addi(isa.SP, isa.SP, -8)
	b.Load(isa.RA, isa.SP, 0)
	b.Addi(isa.S0, isa.S0, 1)
	b.Ret()
	b.Label("base")
	b.Ret()
	prog := b.MustBuild()
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFC} {
		sim := core.New(core.DefaultConfig(mode), prog)
		sim.Run()
		if !sim.CPU().Halted() {
			t.Fatalf("%v: did not halt", mode)
		}
		if got := sim.CPU().Reg(isa.S0); got != 24 {
			t.Errorf("%v: unwound %d frames, want 24", mode, got)
		}
	}
}

func TestTraceOutput(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.T0, 1)
	b.Halt()
	sim := core.New(core.Baseline(), b.MustBuild())
	var buf bytes.Buffer
	sim.CPU().SetTrace(&buf)
	sim.Run()
	out := buf.String()
	for _, want := range []string{"issue", "commit", "movi t0, 1", "halt"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestMaxCyclesLimit(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	prog := b.MustBuild()
	cfg := core.Baseline().WithLimits(0, 5000)
	sim := core.New(cfg, prog)
	res := sim.Run()
	if res.Cycles > 5000 {
		t.Errorf("ran %d cycles past the limit", res.Cycles)
	}
}

func TestMaxInstrsLimit(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("spin")
	b.Addi(isa.T0, isa.T0, 1)
	b.Jmp("spin")
	prog := b.MustBuild()
	res := core.Run(core.Baseline().WithLimits(1000, 0), prog)
	if res.Committed < 1000 || res.Committed > 1100 {
		t.Errorf("committed %d, want ≈1000", res.Committed)
	}
}

func TestSingleWideCore(t *testing.T) {
	// A 1-wide in-order-ish configuration must still be correct.
	cfg := core.DefaultConfig(core.ModeWFC)
	cfg.Pipeline.FetchWidth = 1
	cfg.Pipeline.DispatchWidth = 1
	cfg.Pipeline.IssueWidth = 1
	cfg.Pipeline.CommitWidth = 1
	prog := stressProgram()
	sim := core.New(cfg, prog)
	sim.Run()
	if got := sim.CPU().Reg(isa.S1); got != 2016 {
		t.Errorf("1-wide core: sum = %d, want 2016", got)
	}
}

func TestStatsSanity(t *testing.T) {
	prog := stressProgram()
	res := core.Run(core.WFC(), prog)
	if res.Committed == 0 || res.Cycles == 0 {
		t.Fatal("empty stats")
	}
	if res.Dispatched < res.Committed {
		t.Errorf("dispatched %d < committed %d", res.Dispatched, res.Committed)
	}
	if res.Dispatched != res.Committed+res.Squashed {
		t.Errorf("dispatched %d != committed %d + squashed %d",
			res.Dispatched, res.Committed, res.Squashed)
	}
	if res.CommittedLoads == 0 || res.CommittedStores == 0 {
		t.Error("no memory operations committed")
	}
	if res.IPC() <= 0 || res.IPC() > 6 {
		t.Errorf("IPC %f out of range", res.IPC())
	}
}

// TestConfigIsolation: two simulators must not share mutable state.
func TestConfigIsolation(t *testing.T) {
	prog := stressProgram()
	a := core.New(core.WFC(), prog)
	b2 := core.New(core.WFC(), prog)
	a.Run()
	resB := b2.Run()
	resA := core.New(core.WFC(), prog).Run()
	if resA.Cycles != resB.Cycles {
		t.Errorf("runs interfere: %d vs %d cycles", resA.Cycles, resB.Cycles)
	}
	_ = pipeline.ModeWFC // keep the import for the type alias check below
}
