package pipeline_test

import (
	"testing"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
)

// buildMispredictProbe returns a program whose mispredicted wrong path
// loads wrongVA; the committed path never touches it.
func buildMispredictProbe(wrongVA uint64) *isa.Program {
	const condAddr = uint64(0x2_0000)
	b := asm.NewBuilder()
	b.Region(condAddr, 4096, false)
	b.Region(wrongVA, 4096, false)
	b.Data(condAddr, 1)

	// Train the branch not-taken over 8 iterations with cond=1.
	b.Movi(isa.S0, 0)
	b.Movi(isa.S1, 8)
	b.Label("train")
	b.Movi(isa.T0, int64(condAddr))
	b.Load(isa.T1, isa.T0, 0)
	b.Beq(isa.T1, isa.Zero, "skip")
	b.Addi(isa.S2, isa.S2, 1)
	b.Label("skip")
	b.Addi(isa.S0, isa.S0, 1)
	b.Blt(isa.S0, isa.S1, "train")

	// Arm: cond=0 + flush -> the branch resolves late and mispredicts
	// into the wrong path, which loads wrongVA.
	b.Movi(isa.T0, int64(condAddr))
	b.Movi(isa.T2, 0)
	b.Store(isa.T2, isa.T0, 0)
	b.Clflush(isa.T0, 0)
	b.Fence()
	b.Load(isa.T1, isa.T0, 0)
	b.Beq(isa.T1, isa.Zero, "out") // actually taken, predicted not-taken
	b.Movi(isa.T3, int64(wrongVA))
	b.Load(isa.T4, isa.T3, 0) // wrong-path-only load
	b.Add(isa.T4, isa.T4, isa.T4)
	b.Label("out")
	b.Fence()
	b.Halt()
	return b.MustBuild()
}

// paOf translates a VA in a finished simulation.
func paOf(sim *core.Simulator, va uint64) uint64 {
	tr := sim.CPU().Mem().Walk(va)
	return tr.Frame + (va & 0xFFF)
}

// TestWrongPathFillVisibility is the heart of the defense: a squashed
// load's line must be present in the committed D-cache on the baseline and
// absent under both SafeSpec policies.
func TestWrongPathFillVisibility(t *testing.T) {
	const wrongVA = uint64(0x9_0000)
	for _, tc := range []struct {
		mode core.Mode
		want bool // line present in committed caches after the run?
	}{
		{core.ModeBaseline, true},
		{core.ModeWFB, false},
		{core.ModeWFC, false},
	} {
		prog := buildMispredictProbe(wrongVA)
		sim := core.New(core.DefaultConfig(tc.mode), prog)
		res := sim.Run()
		if res.Mispredicts == 0 {
			t.Fatalf("%v: the probe branch never mispredicted", tc.mode)
		}
		pa := paOf(sim, wrongVA)
		ms := sim.CPU().MemSys()
		got := ms.Hier.L1D.Contains(pa) || ms.Hier.L2.Contains(pa) || ms.Hier.L3.Contains(pa)
		if got != tc.want {
			t.Errorf("%v: wrong-path line present=%v, want %v", tc.mode, got, tc.want)
		}
		// Under SafeSpec the line must not linger in the shadow either:
		// the squash annuls it in place.
		if tc.mode.SafeSpec() && ms.ShD.Contains(pa&^63) {
			t.Errorf("%v: squashed line still in shadow d-cache", tc.mode)
		}
	}
}

// TestShadowDrainsAtHalt: after a full run every shadow structure must be
// empty — all allocations were committed or squashed (no handle leaks).
func TestShadowDrainsAtHalt(t *testing.T) {
	prog := buildMispredictProbe(0x9_0000)
	for _, mode := range []core.Mode{core.ModeWFB, core.ModeWFC} {
		sim := core.New(core.DefaultConfig(mode), prog)
		sim.Run()
		ms := sim.CPU().MemSys()
		for _, s := range []struct {
			name string
			n    int
		}{
			{"shadow-dcache", ms.ShD.Len()},
			{"shadow-icache", ms.ShI.Len()},
			{"shadow-dtlb", ms.ShDTLB.Len()},
			{"shadow-itlb", ms.ShITLB.Len()},
		} {
			if s.n != 0 {
				t.Errorf("%v: %s holds %d entries after halt (leaked handles)", mode, s.name, s.n)
			}
		}
	}
}

// TestShadowDispositionConservation: allocations must equal committed +
// squashed + replaced + flushed dispositions at the end of a run.
func TestShadowDispositionConservation(t *testing.T) {
	prog := buildMispredictProbe(0x9_0000)
	sim := core.New(core.WFC(), prog)
	res := sim.Run()
	check := func(name string, allocs, committed, squashed, replaced, flushes uint64) {
		if allocs != committed+squashed+replaced+flushes {
			t.Errorf("%s: allocs=%d but dispositions=%d+%d+%d+%d",
				name, allocs, committed, squashed, replaced, flushes)
		}
	}
	check("d-cache", res.ShD.Allocs, res.ShD.Committed, res.ShD.Squashed, res.ShD.Replaced, res.ShD.Flushes)
	check("i-cache", res.ShI.Allocs, res.ShI.Committed, res.ShI.Squashed, res.ShI.Replaced, res.ShI.Flushes)
	check("dtlb", res.ShDTLB.Allocs, res.ShDTLB.Committed, res.ShDTLB.Squashed, res.ShDTLB.Replaced, res.ShDTLB.Flushes)
	check("itlb", res.ShITLB.Allocs, res.ShITLB.Committed, res.ShITLB.Squashed, res.ShITLB.Replaced, res.ShITLB.Flushes)
}

// TestCommittedPathShadowMotion: a committed load's line must move from
// the shadow to the committed hierarchy.
func TestCommittedPathShadowMotion(t *testing.T) {
	const dataVA = uint64(0x3_0000)
	b := asm.NewBuilder()
	b.Region(dataVA, 4096, false)
	b.Movi(isa.T0, int64(dataVA))
	b.Load(isa.T1, isa.T0, 0) // cold miss -> shadow fill -> commit motion
	b.Fence()
	b.Halt()
	for _, mode := range []core.Mode{core.ModeWFB, core.ModeWFC} {
		sim := core.New(core.DefaultConfig(mode), b.MustBuild())
		res := sim.Run()
		pa := paOf(sim, dataVA)
		ms := sim.CPU().MemSys()
		if !ms.Hier.L1D.Contains(pa) {
			t.Errorf("%v: committed load's line not in L1D", mode)
		}
		if res.ShD.Committed == 0 {
			t.Errorf("%v: no shadow d-cache entry was committed", mode)
		}
	}
}

// TestMeltdownWFBvsWFC pins the one behavioural split between the two
// policies at the microarchitectural level (not just the attack outcome):
// the dependent line of a faulting load reaches the committed cache under
// WFB but not under WFC.
func TestMeltdownWFBvsWFC(t *testing.T) {
	const (
		kernVA  = uint64(0x5_0000)
		probeVA = uint64(0x6_0000)
	)
	build := func() *isa.Program {
		b := asm.NewBuilder()
		b.KernelData(kernVA, 3)
		b.Region(probeVA, 16*4096, false)
		b.SetTrapHandler("done")
		// Delay the kernel load's commit so the dependent access issues.
		b.Region(0x8_0000, 4096, false)
		b.Movi(isa.T5, 0x8_0000)
		b.Load(isa.T6, isa.T5, 0)
		for i := 0; i < 12; i++ {
			b.Addi(isa.T6, isa.T6, 1)
		}
		b.Movi(isa.T0, int64(kernVA))
		b.Load(isa.T1, isa.T0, 0) // faults at commit; forwards 3
		b.Shli(isa.T1, isa.T1, 12)
		b.Addi(isa.T1, isa.T1, int64(probeVA))
		b.Load(isa.T2, isa.T1, 0) // dependent transmit
		b.Label("done")
		b.Halt()
		return b.MustBuild()
	}
	for _, tc := range []struct {
		mode core.Mode
		want bool
	}{
		{core.ModeWFB, true},  // no branch to wait for -> moved at issue
		{core.ModeWFC, false}, // fault annuls before commit
	} {
		sim := core.New(core.DefaultConfig(tc.mode), build())
		res := sim.Run()
		if res.Faults != 1 {
			t.Fatalf("%v: faults = %d, want 1", tc.mode, res.Faults)
		}
		pa := paOf(sim, probeVA+3*4096)
		got := sim.CPU().MemSys().Hier.L1D.Contains(pa)
		if got != tc.want {
			t.Errorf("%v: transmit line present=%v, want %v", tc.mode, got, tc.want)
		}
	}
}

// TestClflushPurgesShadow: a committed clflush must remove the line from
// the shadow structures too.
func TestClflushPurgesShadow(t *testing.T) {
	const dataVA = uint64(0x3_0000)
	b := asm.NewBuilder()
	b.Region(dataVA, 4096, false)
	b.Movi(isa.T0, int64(dataVA))
	b.Load(isa.T1, isa.T0, 0)
	b.Fence()
	b.Clflush(isa.T0, 0)
	b.Fence()
	b.Halt()
	sim := core.New(core.WFC(), b.MustBuild())
	sim.Run()
	pa := paOf(sim, dataVA)
	ms := sim.CPU().MemSys()
	if ms.Hier.L1D.Contains(pa) || ms.ShD.Contains(pa&^63) {
		t.Error("flushed line still visible somewhere")
	}
}

// TestOccupancySamplingBounds: sampled occupancies never exceed the
// structure capacities.
func TestOccupancySamplingBounds(t *testing.T) {
	prog := buildMispredictProbe(0x9_0000)
	cfg := core.WFC()
	cfg.SampleOccupancy = true
	sim := core.New(cfg, prog)
	res := sim.Run()
	if res.OccD == nil {
		t.Fatal("occupancy histograms missing")
	}
	if res.OccD.Max() > 72 || res.OccI.Max() > 224 {
		t.Errorf("occupancy exceeded capacity: d=%d i=%d", res.OccD.Max(), res.OccI.Max())
	}
	if res.OccD.N() == 0 {
		t.Error("no occupancy samples recorded")
	}
	// Samples must cover (almost) every cycle, including fast-forwarded
	// ones.
	if res.OccD.N() < res.Cycles-1 {
		t.Errorf("samples %d < cycles %d", res.OccD.N(), res.Cycles)
	}
}

// TestBaselineHasNoShadow: baseline mode must not instantiate shadow
// structures at all.
func TestBaselineHasNoShadow(t *testing.T) {
	b := asm.NewBuilder()
	b.Halt()
	sim := core.New(core.Baseline(), b.MustBuild())
	sim.Run()
	ms := sim.CPU().MemSys()
	if ms.ShD != nil || ms.ShI != nil || ms.ShDTLB != nil || ms.ShITLB != nil {
		t.Error("baseline instantiated shadow structures")
	}
}
