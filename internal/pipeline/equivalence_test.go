package pipeline_test

import (
	"math/rand"
	"testing"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/shadow"
)

// TestModeEquivalenceProperty is the central correctness property of
// SafeSpec: the protection mode must never change architectural results.
// Random (but terminating) programs are generated and executed under
// baseline, WFB and WFC; final register files and memory must agree.
func TestModeEquivalenceProperty(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		seed := int64(trial)*7919 + 1
		prog := randomProgram(seed)
		var regs [3][isa.RegCount]int64
		var mems [3][]int64
		for mi, mode := range []core.Mode{core.ModeBaseline, core.ModeWFB, core.ModeWFC} {
			sim := core.New(core.DefaultConfig(mode), prog)
			sim.Run()
			if !sim.CPU().Halted() {
				t.Fatalf("seed %d %v: did not halt", seed, mode)
			}
			for r := 0; r < isa.RegCount; r++ {
				regs[mi][r] = sim.CPU().Reg(isa.Reg(r))
			}
			for a := uint64(0); a < 64; a++ {
				v, _ := sim.CPU().Mem().Read(randDataBase+a*8, true)
				mems[mi] = append(mems[mi], v)
			}
		}
		for mi := 1; mi < 3; mi++ {
			if regs[mi] != regs[0] {
				t.Errorf("seed %d: register state diverges between baseline and mode %d\n base=%v\n mode=%v",
					seed, mi, regs[0], regs[mi])
			}
			for a := range mems[0] {
				if mems[mi][a] != mems[0][a] {
					t.Errorf("seed %d: memory[%d] diverges: %d vs %d", seed, a, mems[0][a], mems[mi][a])
				}
			}
		}
	}
}

// TestModeEquivalenceUnderTinyConfig repeats the equivalence property on a
// cramped core (tiny ROB/IQ/LSQ, few branch tags, tiny Drop-policy shadow
// structures): every structural stall path must preserve architectural
// results across modes.
func TestModeEquivalenceUnderTinyConfig(t *testing.T) {
	mk := func(mode core.Mode) core.Config {
		cfg := core.DefaultConfig(mode)
		cfg.Pipeline.ROBSize = 12
		cfg.Pipeline.IQSize = 6
		cfg.Pipeline.LDQSize = 3
		cfg.Pipeline.STQSize = 3
		cfg.Pipeline.MaxBranchTags = 3
		cfg.Pipeline.ShadowD = shadow.Policy{Name: "shadow-dcache", Entries: 2, WhenFull: shadow.Drop}
		cfg.Pipeline.ShadowI = shadow.Policy{Name: "shadow-icache", Entries: 4, WhenFull: shadow.Drop}
		cfg.Pipeline.ShadowDTLB = shadow.Policy{Name: "shadow-dtlb", Entries: 2, WhenFull: shadow.Drop}
		cfg.Pipeline.ShadowITLB = shadow.Policy{Name: "shadow-itlb", Entries: 2, WhenFull: shadow.Drop}
		cfg.Pipeline = cfg.Pipeline.Normalize()
		return cfg
	}
	for trial := 0; trial < 15; trial++ {
		seed := int64(trial)*104729 + 17
		prog := randomProgram(seed)
		var regs [3][isa.RegCount]int64
		for mi, mode := range []core.Mode{core.ModeBaseline, core.ModeWFB, core.ModeWFC} {
			sim := core.New(mk(mode), prog)
			sim.Run()
			if !sim.CPU().Halted() {
				t.Fatalf("seed %d %v: did not halt under tiny config", seed, mode)
			}
			for r := 0; r < isa.RegCount; r++ {
				regs[mi][r] = sim.CPU().Reg(isa.Reg(r))
			}
		}
		for mi := 1; mi < 3; mi++ {
			if regs[mi] != regs[0] {
				t.Errorf("seed %d: tiny-config register state diverges for mode %d", seed, mi)
			}
		}
	}
}

const randDataBase = 0x1_0000

// randomProgram generates a terminating program mixing ALU work, loads and
// stores over a small region, data-dependent branches, bounded loops,
// calls, flushes and fences.
func randomProgram(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder()
	b.Region(randDataBase, 64*8+4096, false)
	for i := 0; i < 16; i++ {
		b.Data(randDataBase+uint64(i)*8, rng.Int63n(1000))
	}

	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.S0, isa.S1, isa.S2, isa.S3}
	pick := func() isa.Reg { return regs[rng.Intn(len(regs))] }

	// Seed registers.
	for _, r := range regs {
		b.Movi(r, rng.Int63n(512))
	}
	b.Movi(isa.S10, randDataBase) // base pointer, untouched
	b.Movi(isa.S11, 0)            // loop counter register

	loops := 1 + rng.Intn(3)
	for l := 0; l < loops; l++ {
		label := "loop" + string(rune('A'+l))
		iters := int64(4 + rng.Intn(30))
		b.Movi(isa.S11, 0)
		b.Label(label)
		// Loop body: random straight-line ops.
		nOps := 3 + rng.Intn(10)
		for i := 0; i < nOps; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2:
				ops := []func(rd, r1, r2 isa.Reg){b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor}
				ops[rng.Intn(len(ops))](pick(), pick(), pick())
			case 3:
				b.Addi(pick(), pick(), rng.Int63n(64))
			case 4:
				b.Div(pick(), pick(), pick())
			case 5:
				// Bounded random load: index masked into the region.
				r := pick()
				b.Andi(r, r, 0x1f8)
				b.Add(isa.T6, isa.S10, r)
				b.Load(pick(), isa.T6, 0)
			case 6:
				// Bounded random store.
				r := pick()
				b.Andi(r, r, 0x1f8)
				b.Add(isa.T6, isa.S10, r)
				b.Store(pick(), isa.T6, 0)
			case 7:
				// Data-dependent short diamond.
				r := pick()
				skip := label + "s" + string(rune('0'+i))
				b.Andi(isa.T5, r, 3)
				b.Beq(isa.T5, isa.Zero, skip)
				b.Addi(pick(), pick(), 1)
				b.Label(skip)
			case 8:
				b.Clflush(isa.S10, int64(rng.Intn(8))*64)
			case 9:
				if rng.Intn(3) == 0 {
					b.Fence()
				} else {
					b.FMul(pick(), pick(), pick())
				}
			}
		}
		b.Addi(isa.S11, isa.S11, 1)
		b.Slti(isa.T6, isa.S11, iters)
		b.Bne(isa.T6, isa.Zero, label)
	}

	// A call/ret pair.
	b.Call("leaf")
	b.Jmp("end")
	b.Label("leaf")
	b.Addi(isa.S4, isa.S4, 9)
	b.Ret()
	b.Label("end")
	b.Halt()
	return b.MustBuild()
}
