package pipeline

import (
	"safespec/internal/bpred"
	"safespec/internal/cache"
	"safespec/internal/shadow"
	"safespec/internal/stats"
	"safespec/internal/tlb"
)

// newOccHist builds an occupancy histogram covering [0, capacity].
func newOccHist(capacity int) *stats.Histogram { return stats.NewHistogram(capacity) }

// ThreadStats is one hardware thread's share of the retirement-side
// counters. For SMT runs Stats.PerThread carries one per thread; the
// aggregate Stats fields always hold the core-wide totals.
type ThreadStats struct {
	Committed       uint64
	CommittedLoads  uint64
	CommittedStores uint64
	Dispatched      uint64
	Squashed        uint64
	Mispredicts     uint64
	Faults          uint64
	Traps           uint64
}

// Stats collects everything the paper's figures need from one run.
type Stats struct {
	// Cycles is the total simulated cycles.
	Cycles uint64
	// Committed counts architecturally retired instructions.
	Committed uint64
	// CommittedLoads / CommittedStores break down retirement.
	CommittedLoads, CommittedStores uint64
	// Dispatched counts instructions entering the ROB (committed + squashed).
	Dispatched uint64
	// Squashed counts instructions annulled by mispredicts or traps.
	Squashed uint64
	// Mispredicts counts execute-time branch redirects.
	Mispredicts uint64
	// Faults counts faults raised at commit.
	Faults uint64
	// Traps counts vectored transfers to the trap handler.
	Traps uint64

	// Demand data-read classification, counted at access time and including
	// wrong-path accesses (the paper's Figure 12/13 methodology).
	DReads          uint64
	DReadL1Hits     uint64
	DReadShadowHits uint64
	DReadMisses     uint64

	// Instruction-line fetch classification (Figures 14/15).
	IFetches         uint64
	IFetchL1Hits     uint64
	IFetchShadowHits uint64
	IFetchMisses     uint64

	// StoreForwards counts loads satisfied by store-to-load forwarding.
	StoreForwards uint64

	// Snapshots of the subsystem statistics, filled at the end of Run.
	L1I, L1D, L2, L3 cache.Stats
	ITLB, DTLB       tlb.Stats
	Bpred            bpred.Stats
	ShD, ShI         shadow.Stats
	ShDTLB, ShITLB   shadow.Stats

	// Occupancy histograms (non-nil only when sampling was enabled). Under
	// SMT these aggregate every thread's private shadow structures.
	OccD, OccI, OccDTLB, OccITLB *stats.Histogram

	// PerThread breaks the retirement counters down by hardware thread.
	// It is nil for single-thread runs so their serialized form — and with
	// it the sweep result-cache keys and golden JSONL — is unchanged from
	// before SMT existed.
	PerThread []ThreadStats `json:",omitempty"`
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 { return stats.Rate(s.Committed, s.Cycles) }

// DReadMissRate returns the Figure 12 metric: demand-read misses over all
// demand reads, where shadow hits count as hits.
func (s *Stats) DReadMissRate() float64 { return stats.Rate(s.DReadMisses, s.DReads) }

// DShadowHitShare returns the Figure 13 metric: the fraction of d-side hits
// that were serviced by the shadow d-cache.
func (s *Stats) DShadowHitShare() float64 {
	return stats.Rate(s.DReadShadowHits, s.DReadShadowHits+s.DReadL1Hits)
}

// IFetchMissRate returns the Figure 14 metric.
func (s *Stats) IFetchMissRate() float64 { return stats.Rate(s.IFetchMisses, s.IFetches) }

// IShadowHitShare returns the Figure 15 metric.
func (s *Stats) IShadowHitShare() float64 {
	return stats.Rate(s.IFetchShadowHits, s.IFetchShadowHits+s.IFetchL1Hits)
}

// finalizeStats snapshots subsystem counters into St. Shared structures
// (caches, TLBs) snapshot directly; per-thread structures (predictor views,
// shadow structures, occupancy histograms) are summed across threads for
// SMT runs.
func (c *CPU) finalizeStats() {
	c.St.L1I = c.ms.Hier.L1I.Stats
	c.St.L1D = c.ms.Hier.L1D.Stats
	c.St.L2 = c.ms.Hier.L2.Stats
	c.St.L3 = c.ms.Hier.L3.Stats
	c.St.ITLB = c.ms.ITLB.Stats
	c.St.DTLB = c.ms.DTLB.Stats
	if len(c.ths) == 1 {
		c.St.Bpred = c.bp.Stats
		if c.cfg.Mode.SafeSpec() {
			c.St.ShD = c.ms.ShD.Stats
			c.St.ShI = c.ms.ShI.Stats
			c.St.ShDTLB = c.ms.ShDTLB.Stats
			c.St.ShITLB = c.ms.ShITLB.Stats
			c.St.OccD = c.ms.ShD.Occupancy
			c.St.OccI = c.ms.ShI.Occupancy
			c.St.OccDTLB = c.ms.ShDTLB.Occupancy
			c.St.OccITLB = c.ms.ShITLB.Occupancy
		}
		return
	}

	c.St.Bpred = bpred.Stats{}
	c.St.ShD, c.St.ShI = shadow.Stats{}, shadow.Stats{}
	c.St.ShDTLB, c.St.ShITLB = shadow.Stats{}, shadow.Stats{}
	for i := range c.ths {
		t := &c.ths[i]
		c.St.Bpred.Add(t.bp.Stats)
		if c.cfg.Mode.SafeSpec() {
			c.St.ShD.Add(t.ms.ShD.Stats)
			c.St.ShI.Add(t.ms.ShI.Stats)
			c.St.ShDTLB.Add(t.ms.ShDTLB.Stats)
			c.St.ShITLB.Add(t.ms.ShITLB.Stats)
		}
	}
	if c.cfg.Mode.SafeSpec() && c.sampleOcc {
		// Aggregated histograms allocate at finalize time only — never on
		// the per-cycle path.
		c.St.OccD = mergeOcc(c.ths, func(ms *MemSystem) *shadow.Structure { return ms.ShD })
		c.St.OccI = mergeOcc(c.ths, func(ms *MemSystem) *shadow.Structure { return ms.ShI })
		c.St.OccDTLB = mergeOcc(c.ths, func(ms *MemSystem) *shadow.Structure { return ms.ShDTLB })
		c.St.OccITLB = mergeOcc(c.ths, func(ms *MemSystem) *shadow.Structure { return ms.ShITLB })
	}
	c.St.PerThread = make([]ThreadStats, len(c.ths))
	for i := range c.ths {
		c.St.PerThread[i] = c.ths[i].st
	}
}

// mergeOcc sums the occupancy histograms of one shadow structure kind
// across all threads.
func mergeOcc(ths []thread, pick func(*MemSystem) *shadow.Structure) *stats.Histogram {
	var cap int
	for i := range ths {
		if s := pick(ths[i].ms); s != nil {
			cap = s.Policy().Entries
		}
	}
	h := newOccHist(cap)
	for i := range ths {
		if s := pick(ths[i].ms); s != nil {
			h.Merge(s.Occupancy)
		}
	}
	return h
}
