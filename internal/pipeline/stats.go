package pipeline

import (
	"safespec/internal/bpred"
	"safespec/internal/cache"
	"safespec/internal/shadow"
	"safespec/internal/stats"
	"safespec/internal/tlb"
)

// newOccHist builds an occupancy histogram covering [0, capacity].
func newOccHist(capacity int) *stats.Histogram { return stats.NewHistogram(capacity) }

// Stats collects everything the paper's figures need from one run.
type Stats struct {
	// Cycles is the total simulated cycles.
	Cycles uint64
	// Committed counts architecturally retired instructions.
	Committed uint64
	// CommittedLoads / CommittedStores break down retirement.
	CommittedLoads, CommittedStores uint64
	// Dispatched counts instructions entering the ROB (committed + squashed).
	Dispatched uint64
	// Squashed counts instructions annulled by mispredicts or traps.
	Squashed uint64
	// Mispredicts counts execute-time branch redirects.
	Mispredicts uint64
	// Faults counts faults raised at commit.
	Faults uint64
	// Traps counts vectored transfers to the trap handler.
	Traps uint64

	// Demand data-read classification, counted at access time and including
	// wrong-path accesses (the paper's Figure 12/13 methodology).
	DReads          uint64
	DReadL1Hits     uint64
	DReadShadowHits uint64
	DReadMisses     uint64

	// Instruction-line fetch classification (Figures 14/15).
	IFetches         uint64
	IFetchL1Hits     uint64
	IFetchShadowHits uint64
	IFetchMisses     uint64

	// StoreForwards counts loads satisfied by store-to-load forwarding.
	StoreForwards uint64

	// Snapshots of the subsystem statistics, filled at the end of Run.
	L1I, L1D, L2, L3 cache.Stats
	ITLB, DTLB       tlb.Stats
	Bpred            bpred.Stats
	ShD, ShI         shadow.Stats
	ShDTLB, ShITLB   shadow.Stats

	// Occupancy histograms (non-nil only when sampling was enabled).
	OccD, OccI, OccDTLB, OccITLB *stats.Histogram
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 { return stats.Rate(s.Committed, s.Cycles) }

// DReadMissRate returns the Figure 12 metric: demand-read misses over all
// demand reads, where shadow hits count as hits.
func (s *Stats) DReadMissRate() float64 { return stats.Rate(s.DReadMisses, s.DReads) }

// DShadowHitShare returns the Figure 13 metric: the fraction of d-side hits
// that were serviced by the shadow d-cache.
func (s *Stats) DShadowHitShare() float64 {
	return stats.Rate(s.DReadShadowHits, s.DReadShadowHits+s.DReadL1Hits)
}

// IFetchMissRate returns the Figure 14 metric.
func (s *Stats) IFetchMissRate() float64 { return stats.Rate(s.IFetchMisses, s.IFetches) }

// IShadowHitShare returns the Figure 15 metric.
func (s *Stats) IShadowHitShare() float64 {
	return stats.Rate(s.IFetchShadowHits, s.IFetchShadowHits+s.IFetchL1Hits)
}

// finalizeStats snapshots subsystem counters into St.
func (c *CPU) finalizeStats() {
	c.St.L1I = c.ms.Hier.L1I.Stats
	c.St.L1D = c.ms.Hier.L1D.Stats
	c.St.L2 = c.ms.Hier.L2.Stats
	c.St.L3 = c.ms.Hier.L3.Stats
	c.St.ITLB = c.ms.ITLB.Stats
	c.St.DTLB = c.ms.DTLB.Stats
	c.St.Bpred = c.bp.Stats
	if c.cfg.Mode.SafeSpec() {
		c.St.ShD = c.ms.ShD.Stats
		c.St.ShI = c.ms.ShI.Stats
		c.St.ShDTLB = c.ms.ShDTLB.Stats
		c.St.ShITLB = c.ms.ShITLB.Stats
		c.St.OccD = c.ms.ShD.Occupancy
		c.St.OccI = c.ms.ShI.Occupancy
		c.St.OccDTLB = c.ms.ShDTLB.Occupancy
		c.St.OccITLB = c.ms.ShITLB.Occupancy
	}
}
