package pipeline_test

import (
	"math/rand"
	"reflect"
	"testing"

	"safespec/internal/asm"
	"safespec/internal/attacks"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/pipeline"
	"safespec/internal/shadow"
)

// diffRun executes prog under cfg on the event-driven scheduler and on the
// reference scan scheduler and requires bit-identical statistics and
// architectural state. This is the equivalence contract of the event
// scheduler: same issues, same writebacks, same squashes, same skipped
// cycles — not just the same final registers.
func diffRun(t *testing.T, name string, cfg pipeline.Config, prog *isa.Program,
	sample bool, setup func(*pipeline.CPU, *isa.Program)) {
	t.Helper()
	run := func(ref bool) (*pipeline.Stats, [isa.RegCount]int64) {
		cpu := pipeline.New(cfg, prog)
		cpu.SetReferenceScheduler(ref)
		if sample {
			cpu.EnableOccupancySampling()
		}
		if setup != nil {
			setup(cpu, prog)
		}
		st := cpu.Run()
		var regs [isa.RegCount]int64
		for r := 0; r < isa.RegCount; r++ {
			regs[r] = cpu.Reg(isa.Reg(r))
		}
		return st, regs
	}
	evSt, evRegs := run(false)
	refSt, refRegs := run(true)
	if !reflect.DeepEqual(evSt, refSt) {
		t.Errorf("%s: event scheduler statistics diverge from reference scan\nevent: cycles=%d committed=%d squashed=%d mispred=%d\nref:   cycles=%d committed=%d squashed=%d mispred=%d",
			name, evSt.Cycles, evSt.Committed, evSt.Squashed, evSt.Mispredicts,
			refSt.Cycles, refSt.Committed, refSt.Squashed, refSt.Mispredicts)
	}
	if evRegs != refRegs {
		t.Errorf("%s: event scheduler register file diverges from reference scan", name)
	}
}

// modeConfigs returns the three protection modes' pipeline configurations.
func modeConfigs() map[string]pipeline.Config {
	return map[string]pipeline.Config{
		"baseline": core.Baseline().Pipeline,
		"wfb":      core.WFB().Pipeline,
		"wfc":      core.WFC().Pipeline,
	}
}

// TestSchedulerDifferentialRandom pins event-vs-scan equivalence on random
// (terminating) programs across all three modes, with occupancy sampling on
// half the trials so the fast-forward bulk-sampling path is covered too.
func TestSchedulerDifferentialRandom(t *testing.T) {
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		seed := int64(trial)*6007 + 13
		prog := randomProgram(seed)
		for name, cfg := range modeConfigs() {
			diffRun(t, name, cfg, prog, trial%2 == 0, nil)
		}
	}
}

// TestSchedulerDifferentialTinyConfig repeats the differential on a cramped
// core: tiny ROB/IQ/LSQ and branch-tag budget exercise every structural
// stall, and Block-policy shadow structures exercise the blocked-issue
// retry path (entries that must be re-attempted every cycle, not woken).
func TestSchedulerDifferentialTinyConfig(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		prog := randomProgram(int64(trial)*31_337 + 7)
		for _, policy := range []shadow.OnFull{shadow.Drop, shadow.Block} {
			cfg := core.WFC().Pipeline
			cfg.ROBSize = 12
			cfg.IQSize = 6
			cfg.LDQSize = 3
			cfg.STQSize = 3
			cfg.MaxBranchTags = 3
			cfg.ShadowD = shadow.Policy{Name: "shadow-dcache", Entries: 2, WhenFull: policy}
			cfg.ShadowI = shadow.Policy{Name: "shadow-icache", Entries: 4, WhenFull: policy}
			cfg.ShadowDTLB = shadow.Policy{Name: "shadow-dtlb", Entries: 2, WhenFull: policy}
			cfg.ShadowITLB = shadow.Policy{Name: "shadow-itlb", Entries: 2, WhenFull: policy}
			cfg = cfg.Normalize()
			diffRun(t, "tiny", cfg, prog, false, nil)
		}
	}
}

// squashHeavyProgram loops over pseudo-random data and branches on each
// loaded value's low bit: roughly half the iterations mispredict, so the
// run is dominated by selective squashes draining the scheduler queues.
func squashHeavyProgram(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder()
	const base = 0x2_0000
	b.Region(base, 4096, false)
	for i := 0; i < 64; i++ {
		b.Data(base+uint64(i)*8, rng.Int63())
	}
	b.Movi(isa.S10, base)
	b.Movi(isa.S11, 0) // index
	b.Movi(isa.S0, 0)  // taken-path accumulator
	b.Label("loop")
	b.Shli(isa.T0, isa.S11, 3)
	b.Add(isa.T0, isa.S10, isa.T0)
	b.Load(isa.T1, isa.T0, 0)
	b.Andi(isa.T2, isa.T1, 1)
	b.Beq(isa.T2, isa.Zero, "even")
	// Odd path: dependent work the squash must annul cleanly.
	b.Mul(isa.S0, isa.S0, isa.T1)
	b.Addi(isa.S0, isa.S0, 3)
	b.Load(isa.T3, isa.T0, 0)
	b.Add(isa.S0, isa.S0, isa.T3)
	b.Jmp("next")
	b.Label("even")
	b.Xor(isa.S0, isa.S0, isa.T1)
	b.Store(isa.S0, isa.T0, 0)
	b.Label("next")
	b.Addi(isa.S11, isa.S11, 1)
	b.Slti(isa.T6, isa.S11, 64)
	b.Bne(isa.T6, isa.Zero, "loop")
	b.Halt()
	return b.MustBuild()
}

// TestSchedulerDifferentialSquashHeavy stresses squash draining: a
// mispredict-dominated run must drain the ready queue, the wakeup rows and
// the completion wheel identically under both schedulers.
func TestSchedulerDifferentialSquashHeavy(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		prog := squashHeavyProgram(int64(trial)*997 + 1)
		for name, cfg := range modeConfigs() {
			diffRun(t, "squash/"+name, cfg, prog, false, nil)
		}
	}
	// Sanity: the workload actually squashes heavily.
	cpu := pipeline.New(core.WFC().Pipeline, squashHeavyProgram(1))
	st := cpu.Run()
	if st.Mispredicts < 20 || st.Squashed < 100 {
		t.Fatalf("squash-heavy kernel is not squash-heavy: %d mispredicts, %d squashed", st.Mispredicts, st.Squashed)
	}
}

// faultHeavyProgram raises repeated permission faults: each round performs
// speculative work, reads a kernel page (trapping at commit), and resumes
// in the trap handler, which loops back until enough traps accumulated.
func faultHeavyProgram(seed int64) *isa.Program {
	rng := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder()
	const user = 0x2_0000
	const kern = 0x3_0000
	b.Region(user, 4096, false)
	b.Region(kern, 4096, true)
	for i := 0; i < 16; i++ {
		b.Data(user+uint64(i)*8, rng.Int63n(1<<20))
		b.KernelData(kern+uint64(i)*8, rng.Int63n(1<<20))
	}
	b.SetTrapHandler("handler")
	b.Movi(isa.S10, user)
	b.Movi(isa.S9, kern)
	b.Movi(isa.S5, 0) // trap counter
	b.Movi(isa.S0, 1)
	b.Label("round")
	// Some work before the fault, so the trap squashes a busy window.
	b.Load(isa.T0, isa.S10, int64(rng.Intn(16))*8)
	b.Add(isa.S0, isa.S0, isa.T0)
	b.Andi(isa.T1, isa.T0, 0x78)
	b.Add(isa.T1, isa.S10, isa.T1)
	b.Load(isa.T2, isa.T1, 0)
	// The faulting kernel read plus transient dependent work (squashed with
	// the trap, leaving shadow state to annul under SafeSpec).
	b.Load(isa.T3, isa.S9, int64(rng.Intn(16))*8)
	b.Add(isa.T4, isa.T3, isa.T2)
	b.Load(isa.T5, isa.S10, 0)
	b.Store(isa.T4, isa.S10, 128)
	b.Halt() // unreachable: the kernel read always traps first
	b.Label("handler")
	b.Addi(isa.S5, isa.S5, 1)
	b.Slti(isa.T6, isa.S5, 12)
	b.Bne(isa.T6, isa.Zero, "round")
	b.Halt()
	return b.MustBuild()
}

// TestSchedulerDifferentialFaultHeavy stresses trap flushes (squashAll):
// every round ends in a precise fault that annuls the entire window.
func TestSchedulerDifferentialFaultHeavy(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		prog := faultHeavyProgram(int64(trial)*211 + 5)
		for name, cfg := range modeConfigs() {
			diffRun(t, "fault/"+name, cfg, prog, false, nil)
		}
	}
	cpu := pipeline.New(core.WFC().Pipeline, faultHeavyProgram(5))
	st := cpu.Run()
	if st.Traps < 10 {
		t.Fatalf("fault-heavy kernel is not fault-heavy: %d traps", st.Traps)
	}
}

// TestSchedulerResetAcrossGeometries: rebinding one CPU across configs
// with different window geometry (which resizes the scheduler bitmaps and
// wakeup rows, including ROB-size changes that keep the same bitmap word
// count) must reproduce a fresh simulator's statistics exactly.
func TestSchedulerResetAcrossGeometries(t *testing.T) {
	prog := randomProgram(42)
	sizes := []int{224, 200, 12, 64, 224}
	var reused *pipeline.CPU
	for _, rob := range sizes {
		cfg := core.WFC().Pipeline
		cfg.ROBSize = rob
		if rob < 64 {
			cfg.IQSize, cfg.LDQSize, cfg.STQSize, cfg.MaxBranchTags = rob/2, rob/4, rob/4, 3
		}
		cfg = cfg.Normalize()
		if reused == nil {
			reused = pipeline.New(cfg, prog)
		} else {
			reused.Reset(cfg, prog, pipeline.BuildMemory(prog))
		}
		got := reused.Run()
		want := pipeline.New(cfg, prog).Run()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ROB=%d: reused CPU diverged from fresh (cycles %d vs %d)", rob, got.Cycles, want.Cycles)
		}
	}
}

// TestSchedulerDifferentialAttackKernels pins equivalence on the paper's
// attack programs — the adversarial corner of the input space (poisoned
// predictors, fault-deferred reads, shadow-structure contention) — across
// all three modes.
func TestSchedulerDifferentialAttackKernels(t *testing.T) {
	for _, a := range attacks.All() {
		prog, err := a.Build(a.Secret)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for name, cfg := range modeConfigs() {
			var setup func(*pipeline.CPU, *isa.Program)
			if a.Setup != nil {
				setup = a.Setup
			}
			diffRun(t, a.Name+"/"+name, cfg, prog, false, setup)
		}
	}
}
