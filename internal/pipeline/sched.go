package pipeline

import "math/bits"

// This file is the event-driven core scheduler. The original implementation
// (kept as executeScan/fastForwardScan, selectable through a test hook)
// rediscovers work by walking every in-flight ROB entry each cycle; with a
// 224-entry window that walk dominates simulation time even though only a
// handful of entries change state per cycle. The event-driven scheduler
// keeps three kinds of derived state so each cycle touches only the entries
// that act:
//
//   - readyMask: a slot bitmap of stWait entries worth attempting to issue —
//     entries whose operands were ready at dispatch, plus entries woken when
//     a producer wrote back, plus entries that failed for a structural
//     reason (blocked memory, CSR serialization) and must retry. Iterating
//     set bits from the ROB head preserves the scan's oldest-first issue
//     priority exactly.
//   - waiters: per-producer slot bitmaps. A dispatched entry whose operand
//     names an unfinished producer registers in that producer's row; the
//     producer's writeback ORs the row into readyMask. Spurious wakeups
//     (stale bits surviving a squash of the waiter) are harmless: the
//     attempt fails operand resolution without side effects and the bit is
//     dropped again.
//   - a completion timing wheel keyed on completeAt: issuing schedules the
//     entry in bucket completeAt mod span, where span is a power of two
//     sized at Reset to exceed the largest latency the denormalized
//     cache/TLB/memory configuration can compose. Because every scheduled
//     entry completes within span cycles, each occupied bucket holds exactly
//     one completion time, so draining due buckets and peeking the next
//     event both cost O(occupied buckets) — in practice the handful of
//     distinct latencies in flight. fastForward becomes that peek instead of
//     an O(ROB) re-scan.
//
// The bitmaps are indexed by ROB slot, not ordinal, so squash and commit
// clear state in O(1) per entry and iteration order falls out of starting
// at the head. All structures are preallocated at Reset: the scheduler adds
// no steady-state allocations (TestZeroSteadyStateAllocsPerCycle covers
// it). Both schedulers share tryIssue/writeback/squash bookkeeping, so the
// reference scan can run against identical state for differential testing.

const (
	wheelNone     = -1 // entry is not scheduled in the wheel
	wheelOverflow = -2 // entry parked in the overflow list (completeAt beyond the horizon)
)

// schedReset (re)builds the scheduler state for the current config. Called
// from Reset after the ROB geometry is final.
func (c *CPU) schedReset() {
	words := (len(c.rob) + 63) >> 6
	if len(c.readyMask) != words || len(c.waiters) != len(c.rob)*words {
		c.schedWords = words
		c.readyMask = make([]uint64, words)
		c.compMask = make([]uint64, words)
		c.storeMask = make([]uint64, words)
		c.waiters = make([]uint64, len(c.rob)*words)
	} else {
		clearWords(c.readyMask)
		clearWords(c.compMask)
		clearWords(c.storeMask)
		clearWords(c.waiters)
	}

	span := wheelSpan(c.cfg)
	if len(c.bucketHead) != span {
		c.bucketHead = make([]int32, span)
		c.bucketOcc = make([]uint64, span>>6)
	} else {
		clearWords(c.bucketOcc)
	}
	for i := range c.bucketHead {
		c.bucketHead[i] = wheelNone
	}
	if len(c.wheelNext) != len(c.rob) {
		c.wheelNext = make([]int32, len(c.rob))
		c.wheelPrev = make([]int32, len(c.rob))
		c.wheelBucket = make([]int32, len(c.rob))
		c.overflow = make([]int32, 0, len(c.rob))
	}
	for i := range c.wheelBucket {
		c.wheelBucket[i] = wheelNone
	}
	c.overflow = c.overflow[:0]
	c.wheelCount = 0
}

// wheelSpan sizes the completion wheel: a power of two strictly above the
// largest latency one issue can compose (op latency, walker overhead, two
// PTE reads and the data access each missing to memory). Anything larger —
// only possible under exotic configurations — goes to the overflow list,
// which stays correct at linear cost.
func wheelSpan(cfg Config) int {
	h := cfg.Hier
	worstAccess := h.L1D.HitLatency + h.L2.HitLatency + h.L3.HitLatency + h.MemLatency
	worst := 64 + cfg.WalkerLatency + cfg.StoreForwardLatency + 3*worstAccess
	span := 64
	for span <= 2*worst {
		span <<= 1
	}
	return span
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

func setBit(mask []uint64, idx int)   { mask[idx>>6] |= 1 << uint(idx&63) }
func clearBit(mask []uint64, idx int) { mask[idx>>6] &^= 1 << uint(idx&63) }

// schedDispatch wires a freshly dispatched entry into the scheduler: stale
// bits from the slot's previous occupant are dropped, the entry registers
// with every unfinished producer, and an entry with no unfinished producer
// enters the ready queue immediately.
func (c *CPU) schedDispatch(idx int, e *entry) {
	// The slot's waiter row belongs to the previous occupant (whose waiters,
	// being younger, died with it); clear it before this entry can complete.
	row := idx * c.schedWords
	for w := 0; w < c.schedWords; w++ {
		c.waiters[row+w] = 0
	}
	clearBit(c.readyMask, idx)
	clearBit(c.compMask, idx)
	if e.isStore {
		setBit(c.storeMask, idx)
	}

	ready := true
	if e.src1.has && c.rob[e.src1.idx].state != stDone {
		setBit(c.waiters[e.src1.idx*c.schedWords:], idx)
		ready = false
	}
	if e.src2.has && c.rob[e.src2.idx].state != stDone {
		setBit(c.waiters[e.src2.idx*c.schedWords:], idx)
		ready = false
	}
	if ready {
		setBit(c.readyMask, idx)
	}
}

// wakeWaiters moves every entry registered on producer idx into the ready
// queue. Stale registrations (waiters squashed since they registered) wake
// slots that are dead or reused; both cases are filtered at attempt time.
func (c *CPU) wakeWaiters(idx int) {
	row := idx * c.schedWords
	for w := 0; w < c.schedWords; w++ {
		if bits := c.waiters[row+w]; bits != 0 {
			c.readyMask[w] |= bits
			c.waiters[row+w] = 0
		}
	}
}

// schedIssued records a stWait -> stExec transition: the entry leaves the
// ready queue and is scheduled for completion at e.completeAt.
func (c *CPU) schedIssued(idx int, e *entry) {
	clearBit(c.readyMask, idx)
	if e.completeAt <= c.cycle {
		// Degenerate zero-latency issue: the scan discovers it next cycle,
		// so park it as already due rather than in a lapped bucket.
		setBit(c.compMask, idx)
		return
	}
	c.wheelAdd(idx, e.completeAt)
}

// schedRetire drops an entry from all scheduler structures when it writes
// back (the wheel link is already gone if the wheel drain surfaced it).
func (c *CPU) schedRetire(idx int) {
	c.wheelRemove(idx)
	clearBit(c.readyMask, idx)
	clearBit(c.compMask, idx)
}

// schedSquash drops an annulled entry from all scheduler structures.
func (c *CPU) schedSquash(idx int) {
	c.wheelRemove(idx)
	clearBit(c.readyMask, idx)
	clearBit(c.compMask, idx)
	clearBit(c.storeMask, idx)
}

// wheelAdd schedules slot idx to complete at cycle `at` (> c.cycle).
func (c *CPU) wheelAdd(idx int, at uint64) {
	span := uint64(len(c.bucketHead))
	if at-c.cycle >= span {
		c.wheelBucket[idx] = wheelOverflow
		c.overflow = append(c.overflow, int32(idx)) // within preallocated cap
		return
	}
	b := int(at & (span - 1))
	head := c.bucketHead[b]
	c.wheelNext[idx] = head
	c.wheelPrev[idx] = wheelNone
	if head != wheelNone {
		c.wheelPrev[head] = int32(idx)
	}
	c.bucketHead[b] = int32(idx)
	c.wheelBucket[idx] = int32(b)
	setBit(c.bucketOcc, b)
	c.wheelCount++
}

// wheelRemove unschedules slot idx if it is scheduled (squash, or a
// writeback under the reference scheduler, which never drains buckets).
func (c *CPU) wheelRemove(idx int) {
	b := c.wheelBucket[idx]
	switch b {
	case wheelNone:
		return
	case wheelOverflow:
		for i, s := range c.overflow {
			if s == int32(idx) {
				c.overflow[i] = c.overflow[len(c.overflow)-1]
				c.overflow = c.overflow[:len(c.overflow)-1]
				break
			}
		}
		c.wheelBucket[idx] = wheelNone
		return
	}
	next, prev := c.wheelNext[idx], c.wheelPrev[idx]
	if next != wheelNone {
		c.wheelPrev[next] = prev
	}
	if prev != wheelNone {
		c.wheelNext[prev] = next
	} else {
		c.bucketHead[b] = next
		if next == wheelNone {
			clearBit(c.bucketOcc, int(b))
		}
	}
	c.wheelBucket[idx] = wheelNone
	c.wheelCount--
}

// drainWheel moves every scheduled entry whose completeAt has passed into
// compMask. Each occupied bucket holds exactly one completion time (every
// entry completes within one wheel revolution of its issue), so testing the
// bucket head decides the whole bucket.
func (c *CPU) drainWheel() {
	if c.wheelCount > 0 {
		for w := range c.bucketOcc {
			occ := c.bucketOcc[w]
			for occ != 0 {
				b := w<<6 + bits.TrailingZeros64(occ)
				occ &= occ - 1
				if c.rob[c.bucketHead[b]].completeAt <= c.cycle {
					c.drainBucket(b)
				}
			}
		}
	}
	for i := 0; i < len(c.overflow); {
		idx := int(c.overflow[i])
		if c.rob[idx].completeAt <= c.cycle {
			setBit(c.compMask, idx)
			c.wheelBucket[idx] = wheelNone
			c.overflow[i] = c.overflow[len(c.overflow)-1]
			c.overflow = c.overflow[:len(c.overflow)-1]
			continue
		}
		i++
	}
}

// drainBucket empties bucket b into compMask.
func (c *CPU) drainBucket(b int) {
	for idx := c.bucketHead[b]; idx != wheelNone; {
		next := c.wheelNext[idx]
		setBit(c.compMask, int(idx))
		c.wheelBucket[idx] = wheelNone
		c.wheelCount--
		idx = next
	}
	c.bucketHead[b] = wheelNone
	clearBit(c.bucketOcc, b)
}

// wheelPeek returns the earliest scheduled completion strictly after the
// current cycle (every due entry was drained and written back before an
// idle cycle can reach fastForward).
func (c *CPU) wheelPeek() (next uint64, ok bool) {
	if c.wheelCount > 0 {
		for w := range c.bucketOcc {
			occ := c.bucketOcc[w]
			for occ != 0 {
				b := w<<6 + bits.TrailingZeros64(occ)
				occ &= occ - 1
				if at := c.rob[c.bucketHead[b]].completeAt; !ok || at < next {
					next, ok = at, true
				}
			}
		}
	}
	for _, s := range c.overflow {
		if at := c.rob[s].completeAt; !ok || at < next {
			next, ok = at, true
		}
	}
	return next, ok
}

// executeEvent is the event-driven issue/writeback stage: one pass over the
// set bits of readyMask|compMask in oldest-first ROB order, exactly the
// entries the reference scan would have acted on. Bits set mid-pass by a
// writeback's wakeup belong to younger entries and are reached by the same
// pass, preserving same-cycle issue of woken dependents.
func (c *CPU) executeEvent() {
	c.drainWheel()
	issued, loads, stores := 0, 0, 0
	n := len(c.rob)
	if c.head+c.count <= n {
		c.executeRange(c.head, c.head+c.count, &issued, &loads, &stores)
		return
	}
	if c.executeRange(c.head, n, &issued, &loads, &stores) {
		return
	}
	c.executeRange(0, c.head+c.count-n, &issued, &loads, &stores)
}

// executeRange processes scheduler bits for slots in [lo, hi), oldest
// first. It reports whether a squash ended the cycle.
func (c *CPU) executeRange(lo, hi int, issued, loads, stores *int) bool {
	for cur := lo; cur < hi; {
		w := cur >> 6
		rem := (c.readyMask[w] | c.compMask[w]) >> uint(cur&63)
		if rem == 0 {
			cur = (w + 1) << 6
			continue
		}
		cur += bits.TrailingZeros64(rem)
		if cur >= hi {
			return false
		}
		idx := cur
		cur++

		// Stale bits (a squashed waiter's registration waking a dead or
		// reused slot) are filtered here, exactly like entries the scan
		// would skip or fail without side effects.
		ord := idx - c.head
		if ord < 0 {
			ord += len(c.rob)
		}
		if ord >= c.count {
			clearBit(c.readyMask, idx)
			clearBit(c.compMask, idx)
			continue
		}
		e := &c.rob[idx]
		switch e.state {
		case stExec:
			if e.completeAt > c.cycle {
				clearBit(c.readyMask, idx) // stale wakeup of an issued entry
				continue
			}
			c.active = true
			if squashed := c.writeback(idx, e); squashed {
				return true // younger entries are gone; resume next cycle
			}
		case stWait:
			if *issued >= c.cfg.IssueWidth {
				continue
			}
			if e.isLoad && *loads >= 2 {
				continue
			}
			if e.isStore && *stores >= 1 {
				continue
			}
			switch c.tryIssue(idx, e) {
			case issueOperands:
				// Not ready after all: drop the bit; the registration with
				// the unfinished producer re-wakes it.
				clearBit(c.readyMask, idx)
			case issueBlocked:
				// Structural retry (blocked memory, CSR serialization,
				// unresolved older store): keep the bit, as the scan keeps
				// re-attempting every cycle.
			case issueOK:
				c.active = true
				*issued++
				if e.isLoad {
					*loads++
				}
				if e.isStore {
					*stores++
				}
			}
		default:
			clearBit(c.readyMask, idx) // stale wakeup of a finished entry
		}
	}
	return false
}

// fastForwardEvent jumps the clock to just before the next scheduled event:
// the wheel peek replaces the reference scheduler's O(ROB) re-scan.
func (c *CPU) fastForwardEvent() {
	next := c.cfg.MaxCycles
	if at, ok := c.wheelPeek(); ok && at < next {
		next = at
	}
	if c.fetchValid && c.fetchStallUntil > c.cycle && c.fetchStallUntil < next {
		next = c.fetchStallUntil
	}
	c.skipTo(next)
}

// olderStoreScan walks the in-flight stores older than the load at idx,
// youngest first, via the store bitmap — the event-driven replacement for
// scanning every older ROB entry. found is the youngest older store whose
// resolved address matches the load's doubleword; blocked reports an older
// store with an unresolved address encountered first (no memory-dependence
// speculation).
func (c *CPU) olderStoreScan(idx int, va uint64) (found *entry, blocked bool) {
	n := len(c.rob)
	if idx >= c.head {
		if e, blk := c.storeScanRange(c.head, idx, va); e != nil || blk {
			return e, blk
		}
		return nil, false
	}
	if e, blk := c.storeScanRange(0, idx, va); e != nil || blk {
		return e, blk
	}
	return c.storeScanRange(c.head, n, va)
}

// storeScanRange scans store slots in [lo, hi) youngest-first.
func (c *CPU) storeScanRange(lo, hi int, va uint64) (found *entry, blocked bool) {
	for cur := hi; cur > lo; {
		w := (cur - 1) >> 6
		rem := c.storeMask[w] << uint(63-(cur-1)&63) // bits strictly below cur, MSB-aligned
		if rem == 0 {
			cur = w << 6
			continue
		}
		cur -= 1 + bits.LeadingZeros64(rem)
		if cur < lo {
			return nil, false
		}
		s := &c.rob[cur]
		if !s.addrReady {
			return nil, true
		}
		if s.va>>3 == va>>3 {
			return s, false
		}
	}
	return nil, false
}
