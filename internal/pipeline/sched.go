package pipeline

import "math/bits"

// This file is the event-driven core scheduler. The original implementation
// (kept as executeScan/the fastForward re-scan, selectable through a test
// hook) rediscovers work by walking every in-flight ROB entry each cycle;
// with a 224-entry window that walk dominates simulation time even though
// only a handful of entries change state per cycle. The event-driven
// scheduler keeps three kinds of derived state — per hardware thread, over
// that thread's ROB partition — so each cycle touches only the entries that
// act:
//
//   - readyMask: a slot bitmap of stWait entries worth attempting to issue —
//     entries whose operands were ready at dispatch, plus entries woken when
//     a producer wrote back, plus entries that failed for a structural
//     reason (blocked memory, CSR serialization) and must retry. Iterating
//     set bits from the ROB head preserves the scan's oldest-first issue
//     priority exactly.
//   - waiters: per-producer slot bitmaps. A dispatched entry whose operand
//     names an unfinished producer registers in that producer's row; the
//     producer's writeback ORs the row into readyMask. Spurious wakeups
//     (stale bits surviving a squash of the waiter) are harmless: the
//     attempt fails operand resolution without side effects and the bit is
//     dropped again.
//   - a completion timing wheel keyed on completeAt: issuing schedules the
//     entry in bucket completeAt mod span, where span is a power of two
//     sized at Reset to exceed the largest latency the denormalized
//     cache/TLB/memory configuration can compose. Because every scheduled
//     entry completes within span cycles, each occupied bucket holds exactly
//     one completion time, so draining due buckets and peeking the next
//     event both cost O(occupied buckets) — in practice the handful of
//     distinct latencies in flight. fastForward becomes that peek instead of
//     an O(ROB) re-scan.
//
// The bitmaps are indexed by ROB slot, not ordinal, so squash and commit
// clear state in O(1) per entry and iteration order falls out of starting
// at the head. All structures are preallocated at Reset: the scheduler adds
// no steady-state allocations (TestZeroSteadyStateAllocsPerCycle covers
// it). Both schedulers share tryIssue/writeback/squash bookkeeping, so the
// reference scan can run against identical state for differential testing.

const (
	wheelNone     = -1 // entry is not scheduled in the wheel
	wheelOverflow = -2 // entry parked in the overflow list (completeAt beyond the horizon)
)

// schedReset (re)builds thread t's scheduler state for the current config.
// Called from Reset after the thread's ROB geometry is final.
func (c *CPU) schedReset(t *thread) {
	words := (len(t.rob) + 63) >> 6
	if len(t.readyMask) != words || len(t.waiters) != len(t.rob)*words {
		t.schedWords = words
		t.readyMask = make([]uint64, words)
		t.compMask = make([]uint64, words)
		t.storeMask = make([]uint64, words)
		t.waiters = make([]uint64, len(t.rob)*words)
	} else {
		clearWords(t.readyMask)
		clearWords(t.compMask)
		clearWords(t.storeMask)
		clearWords(t.waiters)
	}

	span := wheelSpan(c.cfg)
	if len(t.bucketHead) != span {
		t.bucketHead = make([]int32, span)
		t.bucketOcc = make([]uint64, span>>6)
	} else {
		clearWords(t.bucketOcc)
	}
	for i := range t.bucketHead {
		t.bucketHead[i] = wheelNone
	}
	if len(t.wheelNext) != len(t.rob) {
		t.wheelNext = make([]int32, len(t.rob))
		t.wheelPrev = make([]int32, len(t.rob))
		t.wheelBucket = make([]int32, len(t.rob))
		t.overflow = make([]int32, 0, len(t.rob))
	}
	for i := range t.wheelBucket {
		t.wheelBucket[i] = wheelNone
	}
	t.overflow = t.overflow[:0]
	t.wheelCount = 0
}

// wheelSpan sizes the completion wheel: a power of two strictly above the
// largest latency one issue can compose (op latency, walker overhead, two
// PTE reads and the data access each missing to memory). Anything larger —
// only possible under exotic configurations — goes to the overflow list,
// which stays correct at linear cost.
func wheelSpan(cfg Config) int {
	h := cfg.Hier
	worstAccess := h.L1D.HitLatency + h.L2.HitLatency + h.L3.HitLatency + h.MemLatency
	worst := 64 + cfg.WalkerLatency + cfg.StoreForwardLatency + 3*worstAccess
	span := 64
	for span <= 2*worst {
		span <<= 1
	}
	return span
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

func setBit(mask []uint64, idx int)   { mask[idx>>6] |= 1 << uint(idx&63) }
func clearBit(mask []uint64, idx int) { mask[idx>>6] &^= 1 << uint(idx&63) }

// schedDispatch wires a freshly dispatched entry into thread t's scheduler:
// stale bits from the slot's previous occupant are dropped, the entry
// registers with every unfinished producer, and an entry with no unfinished
// producer enters the ready queue immediately.
func (c *CPU) schedDispatch(t *thread, idx int, e *entry) {
	// The slot's waiter row belongs to the previous occupant (whose waiters,
	// being younger, died with it); clear it before this entry can complete.
	row := idx * t.schedWords
	for w := 0; w < t.schedWords; w++ {
		t.waiters[row+w] = 0
	}
	clearBit(t.readyMask, idx)
	clearBit(t.compMask, idx)
	if e.isStore {
		setBit(t.storeMask, idx)
	}

	ready := true
	if e.src1.has && t.rob[e.src1.idx].state != stDone {
		setBit(t.waiters[e.src1.idx*t.schedWords:], idx)
		ready = false
	}
	if e.src2.has && t.rob[e.src2.idx].state != stDone {
		setBit(t.waiters[e.src2.idx*t.schedWords:], idx)
		ready = false
	}
	if ready {
		setBit(t.readyMask, idx)
	}
}

// wakeWaiters moves every entry registered on producer idx into thread t's
// ready queue. Stale registrations (waiters squashed since they registered)
// wake slots that are dead or reused; both cases are filtered at attempt
// time.
func (c *CPU) wakeWaiters(t *thread, idx int) {
	row := idx * t.schedWords
	for w := 0; w < t.schedWords; w++ {
		if bits := t.waiters[row+w]; bits != 0 {
			t.readyMask[w] |= bits
			t.waiters[row+w] = 0
		}
	}
}

// schedIssued records a stWait -> stExec transition: the entry leaves the
// ready queue and is scheduled for completion at e.completeAt.
func (c *CPU) schedIssued(t *thread, idx int, e *entry) {
	clearBit(t.readyMask, idx)
	if e.completeAt <= c.cycle {
		// Degenerate zero-latency issue: the scan discovers it next cycle,
		// so park it as already due rather than in a lapped bucket.
		setBit(t.compMask, idx)
		return
	}
	c.wheelAdd(t, idx, e.completeAt)
}

// schedRetire drops an entry from all scheduler structures when it writes
// back (the wheel link is already gone if the wheel drain surfaced it).
func (c *CPU) schedRetire(t *thread, idx int) {
	c.wheelRemove(t, idx)
	clearBit(t.readyMask, idx)
	clearBit(t.compMask, idx)
}

// schedSquash drops an annulled entry from all scheduler structures.
func (c *CPU) schedSquash(t *thread, idx int) {
	c.wheelRemove(t, idx)
	clearBit(t.readyMask, idx)
	clearBit(t.compMask, idx)
	clearBit(t.storeMask, idx)
}

// wheelAdd schedules thread t's slot idx to complete at cycle `at`
// (> c.cycle).
func (c *CPU) wheelAdd(t *thread, idx int, at uint64) {
	span := uint64(len(t.bucketHead))
	if at-c.cycle >= span {
		t.wheelBucket[idx] = wheelOverflow
		t.overflow = append(t.overflow, int32(idx)) // within preallocated cap
		return
	}
	b := int(at & (span - 1))
	head := t.bucketHead[b]
	t.wheelNext[idx] = head
	t.wheelPrev[idx] = wheelNone
	if head != wheelNone {
		t.wheelPrev[head] = int32(idx)
	}
	t.bucketHead[b] = int32(idx)
	t.wheelBucket[idx] = int32(b)
	setBit(t.bucketOcc, b)
	t.wheelCount++
}

// wheelRemove unschedules slot idx if it is scheduled (squash, or a
// writeback under the reference scheduler, which never drains buckets).
func (c *CPU) wheelRemove(t *thread, idx int) {
	b := t.wheelBucket[idx]
	switch b {
	case wheelNone:
		return
	case wheelOverflow:
		for i, s := range t.overflow {
			if s == int32(idx) {
				t.overflow[i] = t.overflow[len(t.overflow)-1]
				t.overflow = t.overflow[:len(t.overflow)-1]
				break
			}
		}
		t.wheelBucket[idx] = wheelNone
		return
	}
	next, prev := t.wheelNext[idx], t.wheelPrev[idx]
	if next != wheelNone {
		t.wheelPrev[next] = prev
	}
	if prev != wheelNone {
		t.wheelNext[prev] = next
	} else {
		t.bucketHead[b] = next
		if next == wheelNone {
			clearBit(t.bucketOcc, int(b))
		}
	}
	t.wheelBucket[idx] = wheelNone
	t.wheelCount--
}

// drainWheel moves every scheduled entry whose completeAt has passed into
// compMask. Each occupied bucket holds exactly one completion time (every
// entry completes within one wheel revolution of its issue), so testing the
// bucket head decides the whole bucket.
func (c *CPU) drainWheel(t *thread) {
	if t.wheelCount > 0 {
		for w := range t.bucketOcc {
			occ := t.bucketOcc[w]
			for occ != 0 {
				b := w<<6 + bits.TrailingZeros64(occ)
				occ &= occ - 1
				if t.rob[t.bucketHead[b]].completeAt <= c.cycle {
					c.drainBucket(t, b)
				}
			}
		}
	}
	for i := 0; i < len(t.overflow); {
		idx := int(t.overflow[i])
		if t.rob[idx].completeAt <= c.cycle {
			setBit(t.compMask, idx)
			t.wheelBucket[idx] = wheelNone
			t.overflow[i] = t.overflow[len(t.overflow)-1]
			t.overflow = t.overflow[:len(t.overflow)-1]
			continue
		}
		i++
	}
}

// drainBucket empties thread t's bucket b into compMask.
func (c *CPU) drainBucket(t *thread, b int) {
	for idx := t.bucketHead[b]; idx != wheelNone; {
		next := t.wheelNext[idx]
		setBit(t.compMask, int(idx))
		t.wheelBucket[idx] = wheelNone
		t.wheelCount--
		idx = next
	}
	t.bucketHead[b] = wheelNone
	clearBit(t.bucketOcc, b)
}

// wheelPeek returns thread t's earliest scheduled completion strictly after
// the current cycle (every due entry was drained and written back before an
// idle cycle can reach fastForward).
func (c *CPU) wheelPeek(t *thread) (next uint64, ok bool) {
	if t.wheelCount > 0 {
		for w := range t.bucketOcc {
			occ := t.bucketOcc[w]
			for occ != 0 {
				b := w<<6 + bits.TrailingZeros64(occ)
				occ &= occ - 1
				if at := t.rob[t.bucketHead[b]].completeAt; !ok || at < next {
					next, ok = at, true
				}
			}
		}
	}
	for _, s := range t.overflow {
		if at := t.rob[s].completeAt; !ok || at < next {
			next, ok = at, true
		}
	}
	return next, ok
}

// executeEvent is the event-driven issue/writeback stage for thread t: one
// pass over the set bits of readyMask|compMask in oldest-first ROB order,
// exactly the entries the reference scan would have acted on. Bits set
// mid-pass by a writeback's wakeup belong to younger entries and are
// reached by the same pass, preserving same-cycle issue of woken
// dependents.
func (c *CPU) executeEvent(t *thread, issued, loads, stores *int) {
	c.drainWheel(t)
	n := len(t.rob)
	if t.head+t.count <= n {
		c.executeRange(t, t.head, t.head+t.count, issued, loads, stores)
		return
	}
	if c.executeRange(t, t.head, n, issued, loads, stores) {
		return
	}
	c.executeRange(t, 0, t.head+t.count-n, issued, loads, stores)
}

// executeRange processes scheduler bits for thread t's slots in [lo, hi),
// oldest first. It reports whether a squash ended the cycle.
func (c *CPU) executeRange(t *thread, lo, hi int, issued, loads, stores *int) bool {
	for cur := lo; cur < hi; {
		w := cur >> 6
		rem := (t.readyMask[w] | t.compMask[w]) >> uint(cur&63)
		if rem == 0 {
			cur = (w + 1) << 6
			continue
		}
		cur += bits.TrailingZeros64(rem)
		if cur >= hi {
			return false
		}
		idx := cur
		cur++

		// Stale bits (a squashed waiter's registration waking a dead or
		// reused slot) are filtered here, exactly like entries the scan
		// would skip or fail without side effects.
		ord := idx - t.head
		if ord < 0 {
			ord += len(t.rob)
		}
		if ord >= t.count {
			clearBit(t.readyMask, idx)
			clearBit(t.compMask, idx)
			continue
		}
		e := &t.rob[idx]
		switch e.state {
		case stExec:
			if e.completeAt > c.cycle {
				clearBit(t.readyMask, idx) // stale wakeup of an issued entry
				continue
			}
			c.active = true
			if squashed := c.writeback(t, idx, e); squashed {
				return true // younger entries are gone; resume next cycle
			}
		case stWait:
			if *issued >= c.cfg.IssueWidth {
				continue
			}
			if e.isLoad && *loads >= 2 {
				continue
			}
			if e.isStore && *stores >= 1 {
				continue
			}
			switch c.tryIssue(t, idx, e) {
			case issueOperands:
				// Not ready after all: drop the bit; the registration with
				// the unfinished producer re-wakes it.
				clearBit(t.readyMask, idx)
			case issueBlocked:
				// Structural retry (blocked memory, CSR serialization,
				// unresolved older store): keep the bit, as the scan keeps
				// re-attempting every cycle.
			case issueOK:
				c.active = true
				*issued++
				if e.isLoad {
					*loads++
				}
				if e.isStore {
					*stores++
				}
			}
		default:
			clearBit(t.readyMask, idx) // stale wakeup of a finished entry
		}
	}
	return false
}

// olderStoreScan walks thread t's in-flight stores older than the load at
// idx, youngest first, via the store bitmap — the event-driven replacement
// for scanning every older ROB entry. found is the youngest older store
// whose resolved address matches the load's doubleword; blocked reports an
// older store with an unresolved address encountered first (no
// memory-dependence speculation).
func (c *CPU) olderStoreScan(t *thread, idx int, va uint64) (found *entry, blocked bool) {
	n := len(t.rob)
	if idx >= t.head {
		if e, blk := c.storeScanRange(t, t.head, idx, va); e != nil || blk {
			return e, blk
		}
		return nil, false
	}
	if e, blk := c.storeScanRange(t, 0, idx, va); e != nil || blk {
		return e, blk
	}
	return c.storeScanRange(t, t.head, n, va)
}

// storeScanRange scans thread t's store slots in [lo, hi) youngest-first.
func (c *CPU) storeScanRange(t *thread, lo, hi int, va uint64) (found *entry, blocked bool) {
	for cur := hi; cur > lo; {
		w := (cur - 1) >> 6
		rem := t.storeMask[w] << uint(63-(cur-1)&63) // bits strictly below cur, MSB-aligned
		if rem == 0 {
			cur = w << 6
			continue
		}
		cur -= 1 + bits.LeadingZeros64(rem)
		if cur < lo {
			return nil, false
		}
		s := &t.rob[cur]
		if !s.addrReady {
			return nil, true
		}
		if s.va>>3 == va>>3 {
			return s, false
		}
	}
	return nil, false
}
