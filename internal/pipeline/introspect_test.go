package pipeline_test

import (
	"testing"

	"safespec/internal/core"
	"safespec/internal/workloads"
)

// TestIntrospectionCounters: with introspection enabled, the squash causes
// partition Stats.Squashed exactly, the occupancy histograms carry one
// sample per cycle (fast-forwarded spans included), and enabling it does
// not perturb the simulation's results.
func TestIntrospectionCounters(t *testing.T) {
	prog, err := workloads.Program("exchange2", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.WFC().WithLimits(50_000, 0)

	plain := core.New(cfg, prog).Run()

	sim := core.New(cfg, prog)
	in := sim.CPU().EnableIntrospection()
	res := sim.Run()

	if res.Committed != plain.Committed || res.Cycles != plain.Cycles || res.Squashed != plain.Squashed {
		t.Fatalf("introspection changed the run: got committed=%d cycles=%d squashed=%d, want %d/%d/%d",
			res.Committed, res.Cycles, res.Squashed, plain.Committed, plain.Cycles, plain.Squashed)
	}
	if got := in.SquashedByMispredict + in.SquashedByTrap; got != res.Squashed {
		t.Errorf("squash causes sum to %d, Stats.Squashed = %d", got, res.Squashed)
	}
	if res.Mispredicts > 0 && in.MispredictSquashes != res.Mispredicts {
		t.Errorf("MispredictSquashes = %d, Stats.Mispredicts = %d", in.MispredictSquashes, res.Mispredicts)
	}
	for name, h := range map[string]interface{ N() uint64 }{
		"rob":   in.ROBOccupancy,
		"iq":    in.IQOccupancy,
		"wheel": in.WheelOccupancy,
	} {
		if h.N() != res.Cycles {
			t.Errorf("%s occupancy: %d samples over %d cycles", name, h.N(), res.Cycles)
		}
	}
	if in.ROBOccupancy.Max() == 0 {
		t.Error("ROB occupancy never above zero on a real workload")
	}
}

// TestIntrospectionDetachedOnReset: Reset must drop the attached block so a
// reused simulator does not accidentally keep sampling into a stale one.
func TestIntrospectionDetachedOnReset(t *testing.T) {
	prog, err := workloads.Program("exchange2", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Baseline().WithLimits(1_000, 0)
	sim := core.New(cfg, prog)
	sim.CPU().EnableIntrospection()
	sim.Reset(cfg, prog)
	if sim.CPU().Introspection() != nil {
		t.Fatal("introspection block survived Reset")
	}
}
