package pipeline

import "safespec/internal/stats"

// Introspection is the opt-in deep-counter block behind `safespec-sim
// -introspect`: squash accounting split by cause, and per-cycle occupancy
// histograms for the structures the regular Stats never expose (ROB,
// issue queue, completion wheel). It exists for debugging the simulator
// itself — sizing studies, scheduler regressions, wrong-path depth — not
// for the paper's figures, which Stats covers.
//
// Enablement follows the tracing pattern exactly: every hot-path touch is
// guarded by `c.intro != nil`, so a run without EnableIntrospection pays
// one nil check per cycle and allocates nothing
// (TestZeroSteadyStateAllocsPerCycle pins that).
type Introspection struct {
	// MispredictSquashes / TrapSquashes count squash events by cause;
	// SquashedByMispredict / SquashedByTrap count the ROB entries those
	// events annulled (their sum equals Stats.Squashed).
	MispredictSquashes   uint64
	TrapSquashes         uint64
	SquashedByMispredict uint64
	SquashedByTrap       uint64

	// Per-cycle occupancy histograms, sampled every stepped cycle and
	// bulk-charged across fast-forwarded spans (occupancy cannot change
	// while the core is idle). Under SMT the three core histograms hold
	// the summed occupancy across threads.
	ROBOccupancy   *stats.Histogram // live ROB entries, [0, ROBSize]
	IQOccupancy    *stats.Histogram // entries waiting to issue, [0, IQSize]
	WheelOccupancy *stats.Histogram // in-flight completions on the timing wheel (0 under the reference scan scheduler)

	// ThreadROB / ThreadIQ break occupancy down by hardware thread, each
	// histogram spanning that thread's static partition. They are nil for
	// single-thread cores, where the core-wide histograms already tell the
	// whole story.
	ThreadROB []*stats.Histogram
	ThreadIQ  []*stats.Histogram
}

// EnableIntrospection attaches (or returns the already-attached)
// introspection block. Call after New/Reset and before Run; Reset detaches
// it again, mirroring how tracing and occupancy sampling are re-armed per
// run. It is deliberately not part of Config: job identity (and thus the
// result cache key) must not depend on whether an operator was watching.
func (c *CPU) EnableIntrospection() *Introspection {
	if c.intro == nil {
		c.intro = &Introspection{
			ROBOccupancy:   stats.NewHistogram(c.cfg.ROBSize),
			IQOccupancy:    stats.NewHistogram(c.cfg.IQSize),
			WheelOccupancy: stats.NewHistogram(c.cfg.ROBSize),
		}
		if len(c.ths) > 1 {
			c.intro.ThreadROB = make([]*stats.Histogram, len(c.ths))
			c.intro.ThreadIQ = make([]*stats.Histogram, len(c.ths))
			for i := range c.ths {
				c.intro.ThreadROB[i] = stats.NewHistogram(len(c.ths[i].rob))
				c.intro.ThreadIQ[i] = stats.NewHistogram(c.ths[i].iqMax)
			}
		}
	}
	return c.intro
}

// Introspection returns the attached block (nil unless enabled).
func (c *CPU) Introspection() *Introspection { return c.intro }

// sampleIntrospection records this cycle's occupancies. Callers guard with
// `c.intro != nil`.
func (c *CPU) sampleIntrospection() {
	in := c.intro
	rob, iq, wheel := 0, 0, 0
	for i := range c.ths {
		t := &c.ths[i]
		rob += t.count
		iq += t.iqCount
		wheel += t.wheelCount
		if in.ThreadROB != nil {
			in.ThreadROB[i].Add(t.count)
			in.ThreadIQ[i].Add(t.iqCount)
		}
	}
	in.ROBOccupancy.Add(rob)
	in.IQOccupancy.Add(iq)
	in.WheelOccupancy.Add(wheel)
}
