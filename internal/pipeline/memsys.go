package pipeline

import (
	"safespec/internal/cache"
	"safespec/internal/mem"
	"safespec/internal/shadow"
	"safespec/internal/tlb"
)

// Mode selects the speculation-protection policy of the core.
type Mode uint8

const (
	// ModeBaseline is an unprotected out-of-order core: speculative fills
	// go straight into the committed caches and TLBs (leaky).
	ModeBaseline Mode = iota
	// ModeWFB is SafeSpec wait-for-branch: shadow state moves to the
	// committed structures once every older control-flow prediction has
	// resolved. Stops Spectre, not Meltdown.
	ModeWFB
	// ModeWFC is SafeSpec wait-for-commit: shadow state moves only when the
	// owning instruction commits. Also stops Meltdown.
	ModeWFC
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeWFB:
		return "safespec-wfb"
	case ModeWFC:
		return "safespec-wfc"
	default:
		return "mode(?)"
	}
}

// SafeSpec reports whether shadow structures are in use.
func (m Mode) SafeSpec() bool { return m != ModeBaseline }

// MemSystem bundles the memory-side state of the core: architectural
// memory, the cache hierarchy, TLBs, the page walker, and — under SafeSpec —
// the four shadow structures.
type MemSystem struct {
	Mode Mode
	Mem  *mem.Memory
	Hier *cache.Hierarchy
	ITLB *tlb.TLB
	DTLB *tlb.TLB
	Walk *tlb.Walker

	// Shadow structures; nil in baseline mode.
	ShD    *shadow.Structure
	ShI    *shadow.Structure
	ShDTLB *shadow.Structure
	ShITLB *shadow.Structure

	// FaultsReturnData models Meltdown-vulnerable hardware: a
	// permission-faulting load still forwards the loaded value to
	// speculative dependents.
	FaultsReturnData bool
	// WalkerLatency is the fixed page-walker overhead per walk.
	WalkerLatency int
}

// maxAccessDH bounds the shadow D-cache handles one access can acquire: one
// per page-walk level (PTE reads) plus the data line itself. The inline
// arrays below are sized by it so the per-access result carries no heap
// slices — the access path runs allocation-free.
const maxAccessDH = 3

// loadResult is the outcome of a data-side access.
type loadResult struct {
	latency int
	fault   mem.Fault
	value   int64
	pa      uint64
	blocked bool
	// l1Hit / shadowHit classify where the *data line* lookup hit
	// (for the Figure 12/13 statistics).
	l1Hit, shadowHit, anyMiss bool
	// dHandles[:nDH] are shadow D-cache handles acquired (data line + PTE
	// lines).
	dHandles [maxAccessDH]shadow.Handle
	nDH      int
	// dtlbHandle is the shadow dTLB handle acquired, if any.
	dtlbHandle shadow.Handle
}

// addDH records an acquired shadow D-cache handle.
func (r *loadResult) addDH(h shadow.Handle) {
	r.dHandles[r.nDH] = h
	r.nDH++
}

// dhs returns the acquired handles as a slice view.
func (r *loadResult) dhs() []shadow.Handle { return r.dHandles[:r.nDH] }

// translateData translates va on the data side, charging PTE reads to the
// D-cache path. owner tags shadow allocations with the requesting
// instruction's sequence number.
func (ms *MemSystem) translateData(va uint64, owner, part uint64, res *loadResult) (frame uint64, perm mem.Perm, ok bool) {
	vpage := va &^ uint64(mem.PageMask)
	if f, p, hit := ms.DTLB.Lookup(va); hit {
		return f, p, true
	}
	if ms.Mode.SafeSpec() {
		if h, hit := ms.ShDTLB.Lookup(vpage); hit {
			pl := ms.ShDTLB.PayloadOf(h)
			return pl.Frame, mem.Perm(pl.Perm), true
		}
	}
	// Page walk.
	res.latency += ms.WalkerLatency
	tr := ms.Walk.Walk(va)
	for _, step := range tr.Steps {
		if step.PA == 0 {
			continue
		}
		lat, blocked := ms.pteRead(step.PA, owner, part, res)
		if blocked {
			res.blocked = true
			return 0, 0, false
		}
		res.latency += lat
	}
	if tr.Fault != mem.FaultNone {
		res.fault = tr.Fault
		return 0, 0, false
	}
	// Install the translation: committed dTLB in baseline, shadow otherwise.
	if ms.Mode.SafeSpec() {
		h, ok, blocked := ms.ShDTLB.Alloc(vpage, owner, part, shadow.Payload{Frame: tr.Frame, Perm: uint8(tr.Perm)})
		if blocked {
			res.blocked = true
			return 0, 0, false
		}
		if ok {
			res.dtlbHandle = h
		}
	} else {
		ms.DTLB.Fill(va, tr.Frame, tr.Perm)
	}
	return tr.Frame, tr.Perm, true
}

// pteRead charges one page-table-entry read to the D-cache path, filling the
// shadow D-cache (SafeSpec) or the committed hierarchy (baseline) on a miss.
func (ms *MemSystem) pteRead(pa uint64, owner, part uint64, res *loadResult) (latency int, blocked bool) {
	line := cache.LineAddr(pa)
	if ms.Mode.SafeSpec() {
		if _, hit := ms.ShD.Lookup(line); hit {
			// Shadow access time is conservatively the L1 hit time.
			if hh, ok, _ := ms.ShD.Alloc(line, owner, part, shadow.Payload{}); ok {
				res.addDH(hh)
			}
			return ms.Hier.L1D.HitLatency(), false
		}
	}
	lat, level := ms.Hier.AccessData(pa)
	if level == cache.LevelL1 {
		return lat, false
	}
	if ms.Mode.SafeSpec() {
		h, ok, blk := ms.ShD.Alloc(line, owner, part, shadow.Payload{})
		if blk {
			return 0, true
		}
		if ok {
			res.addDH(h)
		}
	} else {
		ms.Hier.FillData(pa)
	}
	return lat, false
}

// LoadAccess performs the full data-side access for a load to va: dTLB
// (with page walk on miss), permission check, semantic read, and the data
// cache lookup/fill. It never mutates architectural memory.
func (ms *MemSystem) LoadAccess(va uint64, owner, part uint64) loadResult {
	var res loadResult
	frame, perm, ok := ms.translateData(va, owner, part, &res)
	if res.blocked {
		ms.releaseAll(&res)
		return res
	}
	if !ok {
		// Unmapped (or walk fault): charge the wasted lookup time.
		res.latency += ms.Hier.L1D.HitLatency()
		res.anyMiss = true
		return res
	}
	// Permission check: user-mode access.
	tr := mem.Translation{Frame: frame, Perm: perm}
	res.fault = mem.CheckAccess(tr, false)
	res.pa = frame + (va & uint64(mem.PageMask))
	if res.fault == mem.FaultNone || ms.FaultsReturnData {
		if v, err := ms.Mem.ReadPhys(res.pa); err == nil {
			res.value = v
		}
	}
	// Data-line timing.
	line := cache.LineAddr(res.pa)
	if ms.Mode.SafeSpec() {
		if _, hit := ms.ShD.Lookup(line); hit {
			res.latency += ms.Hier.L1D.HitLatency()
			res.shadowHit = true
			if h, ok, _ := ms.ShD.Alloc(line, owner, part, shadow.Payload{}); ok {
				res.addDH(h)
			}
			return res
		}
		lat, level := ms.Hier.AccessData(res.pa)
		res.latency += lat
		if level == cache.LevelL1 {
			res.l1Hit = true
			return res
		}
		res.anyMiss = true
		h, ok, blk := ms.ShD.Alloc(line, owner, part, shadow.Payload{})
		if blk {
			res.blocked = true
			ms.releaseAll(&res)
			return res
		}
		if ok {
			res.addDH(h)
		}
		return res
	}
	lat, level := ms.Hier.AccessData(res.pa)
	res.latency += lat
	if level == cache.LevelL1 {
		res.l1Hit = true
	} else {
		res.anyMiss = true
		ms.Hier.FillData(res.pa)
	}
	return res
}

// StoreAccess resolves a store's address: dTLB/walk and permission check.
// The data write and the cache fill happen later, at commit (TSO).
func (ms *MemSystem) StoreAccess(va uint64, owner, part uint64) loadResult {
	var res loadResult
	frame, perm, ok := ms.translateData(va, owner, part, &res)
	if res.blocked {
		ms.releaseAll(&res)
		return res
	}
	if !ok {
		return res
	}
	tr := mem.Translation{Frame: frame, Perm: perm}
	res.fault = mem.CheckAccess(tr, false)
	res.pa = frame + (va & uint64(mem.PageMask))
	return res
}

// releaseAll frees handles acquired by a blocked access so the retry starts
// clean.
func (ms *MemSystem) releaseAll(res *loadResult) {
	for _, h := range res.dhs() {
		if ms.ShD.StillValid(h) {
			ms.ShD.Release(h, false)
		}
	}
	res.nDH = 0
	if res.dtlbHandle.Valid() && ms.ShDTLB.StillValid(res.dtlbHandle) {
		ms.ShDTLB.Release(res.dtlbHandle, false)
		res.dtlbHandle = shadow.Handle{}
	}
}

// fetchResult is the outcome of an instruction-side line access.
type fetchResult struct {
	// stall is how many cycles fetch must wait (0 on L1/shadow hits).
	stall                  int
	blocked                bool
	l1Hit, shadowHit, miss bool
	iHandle                shadow.Handle
	itlbHandle             shadow.Handle
	// dHandles[:nDH] are shadow D-cache entries allocated by the iTLB
	// walk's PTE reads; they follow the same ownership path as the I-side
	// handles.
	dHandles [maxAccessDH]shadow.Handle
	nDH      int
	// paLine is the physical line address fetched (0 on fault), used by
	// the front end to classify same-line reuse fetches.
	paLine uint64
}

// FetchAccess performs the instruction-side access for the line at lineVA:
// iTLB (with walk on miss; PTE reads through the D-cache path) and the
// I-cache lookup/fill.
func (ms *MemSystem) FetchAccess(lineVA uint64, owner, part uint64) fetchResult {
	var fres fetchResult
	var dres loadResult

	frame, _, ok := ms.translateInstr(lineVA, owner, part, &dres, &fres)
	fres.stall += dres.latency
	fres.dHandles, fres.nDH = dres.dHandles, dres.nDH
	if fres.blocked || dres.blocked {
		fres.blocked = true
		ms.releaseAll(&dres)
		fres.nDH = 0
		return fres
	}
	if !ok {
		// Unmapped code page: treat as a long stall; the front end will be
		// redirected before this matters in practice.
		fres.stall += ms.Hier.Config().MemLatency
		fres.miss = true
		return fres
	}
	pa := frame + (lineVA & uint64(mem.PageMask))
	line := cache.LineAddr(pa)
	fres.paLine = line
	if ms.Mode.SafeSpec() {
		if _, hit := ms.ShI.Lookup(line); hit {
			fres.shadowHit = true
			return fres
		}
		lat, level := ms.Hier.AccessInstr(pa)
		if level == cache.LevelL1 {
			fres.l1Hit = true
			return fres
		}
		fres.miss = true
		fres.stall += lat
		h, okAlloc, blk := ms.ShI.Alloc(line, owner, part, shadow.Payload{})
		if blk {
			fres.blocked = true
			return fres
		}
		if okAlloc {
			fres.iHandle = h
		}
		return fres
	}
	lat, level := ms.Hier.AccessInstr(pa)
	if level == cache.LevelL1 {
		fres.l1Hit = true
		return fres
	}
	fres.miss = true
	fres.stall += lat
	ms.Hier.FillInstr(pa)
	return fres
}

// translateInstr translates an instruction address through the iTLB,
// walking on a miss. PTE reads are charged to the D-cache path (dres).
func (ms *MemSystem) translateInstr(va uint64, owner, part uint64, dres *loadResult, fres *fetchResult) (frame uint64, perm mem.Perm, ok bool) {
	vpage := va &^ uint64(mem.PageMask)
	if f, p, hit := ms.ITLB.Lookup(va); hit {
		return f, p, true
	}
	if ms.Mode.SafeSpec() {
		if h, hit := ms.ShITLB.Lookup(vpage); hit {
			pl := ms.ShITLB.PayloadOf(h)
			return pl.Frame, mem.Perm(pl.Perm), true
		}
	}
	dres.latency += ms.WalkerLatency
	tr := ms.Walk.Walk(va)
	for _, step := range tr.Steps {
		if step.PA == 0 {
			continue
		}
		lat, blocked := ms.pteRead(step.PA, owner, part, dres)
		if blocked {
			dres.blocked = true
			return 0, 0, false
		}
		dres.latency += lat
	}
	if tr.Fault != mem.FaultNone {
		return 0, 0, false
	}
	if ms.Mode.SafeSpec() {
		h, okAlloc, blocked := ms.ShITLB.Alloc(vpage, owner, part, shadow.Payload{Frame: tr.Frame, Perm: uint8(tr.Perm)})
		if blocked {
			fres.blocked = true
			return 0, 0, false
		}
		if okAlloc {
			fres.itlbHandle = h
		}
	} else {
		ms.ITLB.Fill(va, tr.Frame, tr.Perm)
	}
	return tr.Frame, tr.Perm, true
}

// ClassifyILine reports where the given physical instruction line currently
// resides (shadow I-cache or committed L1I), without perturbing statistics
// or replacement state. The front end uses it to attribute same-line reuse
// fetches — the spatial-locality effect behind the paper's Figure 15.
func (ms *MemSystem) ClassifyILine(paLine uint64) (inShadow, inL1 bool) {
	if ms.Mode.SafeSpec() && ms.ShI.Contains(paLine) {
		return true, false
	}
	return false, ms.Hier.L1I.Contains(paLine)
}

// FlushLine removes the line containing va from every committed cache level
// and from the shadow caches (clflush semantics, executed at commit).
func (ms *MemSystem) FlushLine(va uint64) {
	tr := ms.Mem.Walk(va)
	if tr.Fault != mem.FaultNone {
		return
	}
	pa := tr.Frame + (va & uint64(mem.PageMask))
	line := cache.LineAddr(pa)
	ms.Hier.Flush(pa)
	if ms.Mode.SafeSpec() {
		ms.ShD.InvalidateKey(line)
		ms.ShI.InvalidateKey(line)
	}
}

// SampleOccupancy records the current shadow occupancies into their
// attached histograms (no-op in baseline mode or without histograms).
func (ms *MemSystem) SampleOccupancy() {
	if !ms.Mode.SafeSpec() {
		return
	}
	ms.ShD.Sample()
	ms.ShI.Sample()
	ms.ShDTLB.Sample()
	ms.ShITLB.Sample()
}
