package pipeline_test

import (
	"testing"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/pipeline"
)

// runAll executes prog under baseline, WFB and WFC and returns the three
// simulators (post-run).
func runAll(t *testing.T, prog *isa.Program) [3]*core.Simulator {
	t.Helper()
	var sims [3]*core.Simulator
	for i, mode := range []core.Mode{core.ModeBaseline, core.ModeWFB, core.ModeWFC} {
		sims[i] = core.New(core.DefaultConfig(mode), prog)
		sims[i].Run()
		if !sims[i].CPU().Halted() {
			t.Fatalf("%v: program did not halt", mode)
		}
	}
	return sims
}

// checkReg asserts that a register holds the same expected value under all
// three modes.
func checkReg(t *testing.T, sims [3]*core.Simulator, r isa.Reg, want int64) {
	t.Helper()
	for i, mode := range []core.Mode{core.ModeBaseline, core.ModeWFB, core.ModeWFC} {
		if got := sims[i].CPU().Reg(r); got != want {
			t.Errorf("%v: %s = %d, want %d", mode, r, got, want)
		}
	}
}

func TestALUSemantics(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.S0, 100)
	b.Movi(isa.S1, 7)
	b.Add(isa.T0, isa.S0, isa.S1) // 107
	b.Sub(isa.T1, isa.S0, isa.S1) // 93
	b.Mul(isa.T2, isa.S0, isa.S1) // 700
	b.Div(isa.T3, isa.S0, isa.S1) // 14
	b.Rem(isa.T4, isa.S0, isa.S1) // 2
	b.And(isa.T5, isa.S0, isa.S1) // 4
	b.Or(isa.T6, isa.S0, isa.S1)  // 103
	b.Xor(isa.S2, isa.S0, isa.S1) // 99
	b.Shli(isa.S3, isa.S0, 2)     // 400
	b.Shri(isa.S4, isa.S0, 2)     // 25
	b.Slti(isa.S5, isa.S0, 101)   // 1
	b.Slt(isa.S6, isa.S1, isa.S0) // 1
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T0, 107)
	checkReg(t, sims, isa.T1, 93)
	checkReg(t, sims, isa.T2, 700)
	checkReg(t, sims, isa.T3, 14)
	checkReg(t, sims, isa.T4, 2)
	checkReg(t, sims, isa.T5, 4)
	checkReg(t, sims, isa.T6, 103)
	checkReg(t, sims, isa.S2, 99)
	checkReg(t, sims, isa.S3, 400)
	checkReg(t, sims, isa.S4, 25)
	checkReg(t, sims, isa.S5, 1)
	checkReg(t, sims, isa.S6, 1)
}

func TestDivRemByZero(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.S0, 42)
	b.Movi(isa.S1, 0)
	b.Div(isa.T0, isa.S0, isa.S1) // 0, no trap
	b.Rem(isa.T1, isa.S0, isa.S1) // 42
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T0, 0)
	checkReg(t, sims, isa.T1, 42)
}

func TestZeroRegisterHardwired(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.Zero, 99) // discarded
	b.Addi(isa.T0, isa.Zero, 5)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T0, 5)
	checkReg(t, sims, isa.Zero, 0)
}

func TestFibonacci(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.S0, 0)  // a
	b.Movi(isa.S1, 1)  // b
	b.Movi(isa.T0, 0)  // i
	b.Movi(isa.T1, 20) // n
	b.Label("loop")
	b.Add(isa.T2, isa.S0, isa.S1)
	b.Add(isa.S0, isa.S1, isa.Zero)
	b.Add(isa.S1, isa.T2, isa.Zero)
	b.Addi(isa.T0, isa.T0, 1)
	b.Blt(isa.T0, isa.T1, "loop")
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.S1, 10946) // fib(21)
}

func TestStoreLoadForwarding(t *testing.T) {
	// A load immediately after a store to the same address must see the
	// stored value even though the store has not committed to memory yet.
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.Movi(isa.S0, 0x1000)
	b.Movi(isa.T0, 1234)
	b.Store(isa.T0, isa.S0, 0)
	b.Load(isa.T1, isa.S0, 0)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T1, 1234)
	// Forwarding should have happened (the store cannot have committed
	// before the load issued in at least one of the modes).
	if fw := sims[0].Run().StoreForwards; fw == 0 {
		t.Log("note: no forwarding observed on baseline (load issued after commit)")
	}
}

func TestStoreLoadDifferentAddresses(t *testing.T) {
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.Movi(isa.S0, 0x1000)
	b.Movi(isa.T0, 11)
	b.Movi(isa.T1, 22)
	b.Store(isa.T0, isa.S0, 0)
	b.Store(isa.T1, isa.S0, 8)
	b.Load(isa.T2, isa.S0, 0)
	b.Load(isa.T3, isa.S0, 8)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T2, 11)
	checkReg(t, sims, isa.T3, 22)
}

func TestCallRetNesting(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.S0, 0)
	b.Call("f1")
	b.Halt()
	b.Label("f1")
	b.Addi(isa.S0, isa.S0, 1)
	b.Add(isa.S2, isa.RA, isa.Zero) // save ra
	b.Call("f2")
	b.Add(isa.RA, isa.S2, isa.Zero) // restore
	b.Addi(isa.S0, isa.S0, 100)
	b.Ret()
	b.Label("f2")
	b.Addi(isa.S0, isa.S0, 10)
	b.Ret()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.S0, 111)
}

func TestIndirectJumpTable(t *testing.T) {
	b := asm.NewBuilder()
	b.Region(0x2000, 4096, false)
	b.DataLabel(0x2000, "case0")
	b.DataLabel(0x2008, "case1")
	b.DataLabel(0x2010, "case2")
	b.Movi(isa.S0, 0x2000)
	b.Movi(isa.S1, 1) // select case1
	b.Shli(isa.T0, isa.S1, 3)
	b.Add(isa.T0, isa.S0, isa.T0)
	b.Load(isa.T1, isa.T0, 0)
	b.Jmpi(isa.T1, 0)
	b.Label("case0")
	b.Movi(isa.S2, 100)
	b.Jmp("done")
	b.Label("case1")
	b.Movi(isa.S2, 200)
	b.Jmp("done")
	b.Label("case2")
	b.Movi(isa.S2, 300)
	b.Label("done")
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.S2, 200)
}

func TestRdCycleMonotonic(t *testing.T) {
	b := asm.NewBuilder()
	b.RdCycle(isa.S0)
	b.Region(0x1000, 4096, false)
	b.Movi(isa.T0, 0x1000)
	b.Load(isa.T1, isa.T0, 0) // some work
	b.RdCycle(isa.S1)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	for i := range sims {
		t1, t2 := sims[i].CPU().Reg(isa.S0), sims[i].CPU().Reg(isa.S1)
		if t2 <= t1 {
			t.Errorf("rdcycle not monotonic: %d then %d", t1, t2)
		}
	}
}

func TestRdCycleMeasuresCacheMiss(t *testing.T) {
	// The timing primitive the attacks rely on: a cold load takes visibly
	// longer between two rdcycles than a warm one.
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.Movi(isa.S5, 0x1000)
	// Cold measurement.
	b.RdCycle(isa.T0)
	b.Load(isa.T1, isa.S5, 0)
	b.Add(isa.T1, isa.T1, isa.T1)
	b.RdCycle(isa.T2)
	b.Sub(isa.S0, isa.T2, isa.T0)
	// Warm measurement.
	b.RdCycle(isa.T0)
	b.Load(isa.T1, isa.S5, 0)
	b.Add(isa.T1, isa.T1, isa.T1)
	b.RdCycle(isa.T2)
	b.Sub(isa.S1, isa.T2, isa.T0)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	for i, mode := range []string{"baseline", "wfb", "wfc"} {
		cold := sims[i].CPU().Reg(isa.S0)
		warm := sims[i].CPU().Reg(isa.S1)
		if cold < warm+100 {
			t.Errorf("%s: cold=%d warm=%d — no miss signal", mode, cold, warm)
		}
	}
}

func TestFaultWithoutHandlerHalts(t *testing.T) {
	b := asm.NewBuilder()
	b.KernelData(0x5000, 1)
	b.Movi(isa.T0, 0x5000)
	b.Load(isa.T1, isa.T0, 0) // permission fault
	b.Movi(isa.S0, 777)       // must NOT commit
	b.Halt()
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFC} {
		sim := core.New(core.DefaultConfig(mode), b.MustBuild())
		res := sim.Run()
		if res.Faults != 1 {
			t.Errorf("%v: faults = %d", mode, res.Faults)
		}
		if got := sim.CPU().Reg(isa.S0); got == 777 {
			t.Errorf("%v: instruction after fault committed", mode)
		}
	}
}

func TestTrapVector(t *testing.T) {
	b := asm.NewBuilder()
	b.KernelData(0x5000, 1)
	b.SetTrapHandler("handler")
	b.Movi(isa.S0, 1)
	b.Movi(isa.T0, 0x5000)
	b.Load(isa.T1, isa.T0, 0) // faults at commit
	b.Movi(isa.S0, 2)         // squashed
	b.Halt()
	b.Label("handler")
	b.Movi(isa.S1, 42)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.S0, 1)
	checkReg(t, sims, isa.S1, 42)
}

func TestUnmappedLoadFaults(t *testing.T) {
	b := asm.NewBuilder()
	b.SetTrapHandler("handler")
	b.Movi(isa.T0, 0x7777_0000)
	b.Load(isa.T1, isa.T0, 0)
	b.Halt()
	b.Label("handler")
	b.Movi(isa.S0, 5)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.S0, 5)
}

func TestStorePermissionFault(t *testing.T) {
	b := asm.NewBuilder()
	b.KernelData(0x5000, 123)
	b.SetTrapHandler("handler")
	b.Movi(isa.T0, 0x5000)
	b.Movi(isa.T1, 99)
	b.Store(isa.T1, isa.T0, 0) // user store to kernel page
	b.Halt()
	b.Label("handler")
	b.Movi(isa.S0, 1)
	b.Halt()
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFC} {
		sim := core.New(core.DefaultConfig(mode), b.MustBuild())
		sim.Run()
		if sim.CPU().Reg(isa.S0) != 1 {
			t.Errorf("%v: store fault did not trap", mode)
		}
		if v, _ := sim.CPU().Mem().Read(0x5000, true); v != 123 {
			t.Errorf("%v: faulting store modified kernel memory: %d", mode, v)
		}
	}
}

func TestFenceOrdering(t *testing.T) {
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.Movi(isa.S0, 0x1000)
	b.Movi(isa.T0, 5)
	b.Store(isa.T0, isa.S0, 0)
	b.Fence()
	b.Load(isa.T1, isa.S0, 0)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T1, 5)
}

func TestClflushSemantics(t *testing.T) {
	// clflush must not change architectural values, only timing.
	b := asm.NewBuilder()
	b.Region(0x1000, 4096, false)
	b.Movi(isa.S0, 0x1000)
	b.Movi(isa.T0, 31)
	b.Store(isa.T0, isa.S0, 0)
	b.Fence()
	b.Clflush(isa.S0, 0)
	b.Fence()
	b.Load(isa.T1, isa.S0, 0)
	b.Halt()
	sims := runAll(t, b.MustBuild())
	checkReg(t, sims, isa.T1, 31)
}

func TestRunOffEndHalts(t *testing.T) {
	b := asm.NewBuilder()
	b.Movi(isa.T0, 1) // no halt: runs off the end
	prog := b.MustBuild()
	sim := core.New(core.Baseline(), prog)
	res := sim.Run()
	if !sim.CPU().Halted() {
		t.Error("program did not halt after running off the end")
	}
	if res.Committed != 1 {
		t.Errorf("committed = %d, want 1", res.Committed)
	}
}

func TestBranchHeavyLoopAllModes(t *testing.T) {
	// Data-dependent branches with an LCG: exercises mispredict recovery.
	b := asm.NewBuilder()
	b.Movi(isa.S0, 12345) // x
	b.Movi(isa.S1, 0)     // acc
	b.Movi(isa.T0, 0)
	b.Movi(isa.T1, 500)
	b.Label("loop")
	b.Movi(isa.T2, 1103515245)
	b.Mul(isa.S0, isa.S0, isa.T2)
	b.Addi(isa.S0, isa.S0, 12345)
	b.Shri(isa.T3, isa.S0, 16)
	b.Andi(isa.T3, isa.T3, 1)
	b.Beq(isa.T3, isa.Zero, "even")
	b.Addi(isa.S1, isa.S1, 3)
	b.Jmp("next")
	b.Label("even")
	b.Addi(isa.S1, isa.S1, 7)
	b.Label("next")
	b.Addi(isa.T0, isa.T0, 1)
	b.Blt(isa.T0, isa.T1, "loop")
	b.Halt()
	sims := runAll(t, b.MustBuild())
	want := sims[0].CPU().Reg(isa.S1)
	checkReg(t, sims, isa.S1, want)
	if want == 0 || want == 1500 || want == 3500 {
		t.Errorf("acc = %d suggests the data-dependent branch never varied", want)
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg := pipeline.Config{}.Normalize()
	if cfg.ROBSize != 224 || cfg.IQSize != 96 || cfg.LDQSize != 72 || cfg.STQSize != 56 {
		t.Errorf("Table I defaults wrong: %+v", cfg)
	}
	if cfg.FetchWidth != 6 || cfg.CommitWidth != 6 {
		t.Errorf("widths wrong: %+v", cfg)
	}
	if cfg.ShadowD.Entries != 72 || cfg.ShadowI.Entries != 224 {
		t.Errorf("secure shadow defaults wrong: %+v", cfg)
	}
	if cfg.Hier.MemLatency != 191 {
		t.Errorf("memory latency = %d", cfg.Hier.MemLatency)
	}
}

func TestModeString(t *testing.T) {
	if pipeline.ModeBaseline.String() != "baseline" ||
		pipeline.ModeWFB.String() != "safespec-wfb" ||
		pipeline.ModeWFC.String() != "safespec-wfc" {
		t.Error("mode names wrong")
	}
	if pipeline.ModeBaseline.SafeSpec() || !pipeline.ModeWFC.SafeSpec() {
		t.Error("SafeSpec() wrong")
	}
}
