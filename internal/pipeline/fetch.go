package pipeline

import (
	"safespec/internal/cache"
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
)

// fetch runs the front end for one cycle: up to FetchWidth instructions are
// pulled from the instruction stream along the predicted path, charging
// I-cache/iTLB time per line crossed. A taken (predicted or static) control
// transfer ends the fetch group.
func (c *CPU) fetch() {
	if !c.fetchValid || c.cycle < c.fetchStallUntil {
		return
	}
	// Bounded fetch buffer (two dispatch groups).
	if c.fbLen >= 2*c.cfg.DispatchWidth {
		return
	}
	for fetched := 0; fetched < c.cfg.FetchWidth; fetched++ {
		if c.fetchPC < 0 || c.fetchPC >= len(c.prog.Code) {
			// Ran off the code (wrong-path or program end): wait for a
			// redirect; if none ever comes the pipeline drains and halts.
			c.fetchValid = false
			return
		}
		lineVA := isa.PCByte(c.fetchPC) &^ uint64(cache.LineSize-1)
		if lineVA == c.lastFetchLine {
			// Same-line sequential fetch: no cache port needed, but for
			// the Figure 15 accounting attribute the reuse to wherever the
			// line currently resides — the shadow structure while the line
			// is still speculative, the committed L1I after it moves.
			c.St.IFetches++
			inShadow, inL1 := c.ms.ClassifyILine(c.lastFetchPALine)
			switch {
			case inShadow:
				c.St.IFetchShadowHits++
			case inL1:
				c.St.IFetchL1Hits++
			default:
				// Line was flushed or displaced mid-group; treat as a hit
				// on the committed side (no re-fetch is modeled).
				c.St.IFetchL1Hits++
			}
		}
		if lineVA != c.lastFetchLine {
			c.active = true
			if c.tracing() {
				c.tracef("ifetch  pc=%d line=%#x", c.fetchPC, lineVA)
			}
			res := c.ms.FetchAccess(lineVA, c.seqCtr, c.activeTags)
			if res.blocked {
				// Shadow structure full under the Block policy: retry.
				c.fetchStallUntil = c.cycle + 1
				return
			}
			c.St.IFetches++
			switch {
			case res.shadowHit:
				c.St.IFetchShadowHits++
			case res.l1Hit:
				c.St.IFetchL1Hits++
			default:
				c.St.IFetchMisses++
			}
			c.lastFetchLine = lineVA
			c.lastFetchPALine = res.paLine
			if res.iHandle.Valid() {
				c.releasePendingIH()
				c.pendingIH = res.iHandle
			}
			if res.itlbHandle.Valid() {
				c.releasePendingITLBH()
				c.pendingITLBH = res.itlbHandle
			}
			if res.nDH > 0 {
				c.releasePendingDH()
				c.pendingDH, c.nPendingDH = res.dHandles, res.nDH
			}
			if res.stall > 0 {
				c.fetchStallUntil = c.cycle + uint64(res.stall)
				return
			}
		}
		in := c.prog.Code[c.fetchPC]
		// Build the record directly in the (pre-zeroed) ring slot; fbCommit
		// publishes it. No abort path runs between here and the commit.
		rec := c.fbNext()
		rec.pc = c.fetchPC
		rec.in = in
		// The first instruction fetched after a line fill owns that line's
		// shadow entries.
		if c.pendingIH.Valid() {
			rec.iHandle, c.pendingIH = c.pendingIH, shadow.Handle{}
		}
		if c.pendingITLBH.Valid() {
			rec.itlbHandle, c.pendingITLBH = c.pendingITLBH, shadow.Handle{}
		}
		if c.nPendingDH > 0 {
			rec.dHandles, rec.nDH = c.pendingDH, c.nPendingDH
			c.nPendingDH = 0
		}

		redirected := false
		switch isa.ClassOf(in.Op) {
		case isa.ClassBranch:
			rec.predicted = true
			rec.histSnap = c.bp.HistorySnapshot()
			rec.rasSnap = c.getRASBuf()
			rec.rasTop = c.bp.SnapshotRASInto(rec.rasSnap)
			pred := c.bp.PredictCond(rec.pc, in.Target)
			rec.predTaken = pred.Taken
			rec.predTarget = pred.Target
			c.bp.SpeculateHistory(pred.Taken)
			if pred.Taken {
				c.fetchPC = pred.Target
				redirected = true
			} else {
				c.fetchPC++
			}
		case isa.ClassJump:
			// Direct jump/call: target statically known, never mispredicts.
			if in.Op == isa.OpCall {
				c.bp.PushReturn(rec.pc + 1)
			}
			rec.predTaken = true
			rec.predTarget = in.Target
			c.fetchPC = in.Target
			redirected = true
		case isa.ClassJumpInd:
			rec.predicted = true
			rec.histSnap = c.bp.HistorySnapshot()
			rec.rasSnap = c.getRASBuf()
			rec.rasTop = c.bp.SnapshotRASInto(rec.rasSnap)
			pred := c.bp.PredictIndirect(rec.pc)
			rec.predTaken = true
			if pred.HasTarget {
				rec.predTarget = pred.Target
			} else {
				// No BTB entry: fall through and rely on the execute-time
				// redirect (a guaranteed "mispredict").
				rec.predTarget = rec.pc + 1
			}
			if in.Op == isa.OpCalli {
				c.bp.PushReturn(rec.pc + 1)
			}
			c.fetchPC = rec.predTarget
			redirected = true
		case isa.ClassRet:
			rec.predicted = true
			rec.histSnap = c.bp.HistorySnapshot()
			rec.rasSnap = c.getRASBuf()
			rec.rasTop = c.bp.SnapshotRASInto(rec.rasSnap)
			pred := c.bp.PredictReturn()
			rec.predTaken = true
			if pred.HasTarget {
				rec.predTarget = pred.Target
			} else {
				rec.predTarget = rec.pc + 1
			}
			c.fetchPC = rec.predTarget
			redirected = true
		case isa.ClassHalt:
			c.fetchValid = false
			c.fbCommit()
			c.active = true
			return
		default:
			c.fetchPC++
		}

		c.fbCommit()
		c.active = true
		if redirected {
			// A taken transfer ends the fetch group and invalidates the
			// straight-line same-line optimization.
			c.lastFetchLine = ^uint64(0)
			return
		}
	}
}

// dispatch moves instructions from the fetch buffer into the ROB, renaming
// their operands and allocating IQ/LDQ/STQ capacity and branch tags.
func (c *CPU) dispatch() {
	for n := 0; n < c.cfg.DispatchWidth && c.fbLen > 0; n++ {
		if c.fenceActive > 0 {
			return
		}
		if c.count == len(c.rob) || c.iqCount == c.cfg.IQSize {
			return
		}
		rec := c.fbFront()
		class := isa.ClassOf(rec.in.Op)
		isLoad := class == isa.ClassLoad
		isStore := class == isa.ClassStore
		if isLoad && c.ldqCount == c.cfg.LDQSize {
			return
		}
		if isStore && c.stqCount == c.cfg.STQSize {
			return
		}
		var tagBit uint64
		if rec.predicted {
			tagBit = c.freeTag()
			if tagBit == 0 {
				return // out of branch checkpoints
			}
		}

		idx := c.tail()
		c.count++
		c.seqCtr++
		e := &c.rob[idx]
		// Field-by-field reset instead of `*e = entry{...}`: the composite
		// literal zero-fills the whole slot — dominated by the 96-byte
		// inline handle array — on every dispatch. Stale dHandles contents
		// are unreachable behind nDH = 0; every other field is (re)assigned
		// here or below.
		e.seq = c.seqCtr
		e.pc = rec.pc
		e.in = rec.in
		e.state = stWait
		e.completeAt = 0
		e.val = 0
		e.mask = c.activeTags
		e.tagBit = tagBit
		e.predTaken = rec.predTaken
		e.predTarget = rec.predTarget
		e.actualTaken = false
		e.actualTarget = 0
		e.histSnap = rec.histSnap
		e.rasTop = rec.rasTop
		e.rasSnap = rec.rasSnap
		e.isLoad = isLoad
		e.isStore = isStore
		e.addrReady = false
		e.va, e.pa = 0, 0
		e.sdata = 0
		e.fault = mem.FaultNone
		e.nDH = 0
		e.dtlbHandle = shadowZero
		e.iHandle = rec.iHandle
		e.itlbHandle = rec.itlbHandle
		e.addDHs(rec.dHandles[:rec.nDH])
		if tagBit != 0 {
			c.activeTags |= tagBit
		}

		// Operand renaming.
		e.reg1, e.reg2 = srcRegsOf(rec.in)
		e.src1 = c.renameLookup(e.reg1)
		e.src2 = c.renameLookup(e.reg2)
		if rec.in.HasDest() {
			c.renm[rec.in.Rd] = renameRef{has: true, idx: idx, seq: e.seq}
		}
		c.schedDispatch(idx, e)

		c.iqCount++
		if isLoad {
			c.ldqCount++
		}
		if isStore {
			c.stqCount++
		}
		if rec.in.Op == isa.OpFence {
			c.fenceActive++
		}
		c.St.Dispatched++
		c.active = true
		c.fbPop()
	}
}

// srcRegsOf returns the (up to two) source registers of in, Zero if unused.
func srcRegsOf(in isa.Instr) (r1, r2 isa.Reg) {
	switch isa.ClassOf(in.Op) {
	case isa.ClassALU:
		switch in.Op {
		case isa.OpMovi:
			return isa.Zero, isa.Zero
		case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSlti:
			return in.Rs1, isa.Zero
		default:
			return in.Rs1, in.Rs2
		}
	case isa.ClassMul, isa.ClassDiv, isa.ClassFP:
		return in.Rs1, in.Rs2
	case isa.ClassLoad:
		return in.Rs1, isa.Zero
	case isa.ClassStore:
		return in.Rs1, in.Rs2
	case isa.ClassBranch:
		return in.Rs1, in.Rs2
	case isa.ClassJumpInd:
		return in.Rs1, isa.Zero
	case isa.ClassRet:
		return isa.RA, isa.Zero
	case isa.ClassFlush:
		return in.Rs1, isa.Zero
	}
	return isa.Zero, isa.Zero
}

// freeTag allocates an unused branch-tag bit, or 0 if none remain.
func (c *CPU) freeTag() uint64 {
	limit := c.cfg.MaxBranchTags
	for b := 0; b < limit && b < 64; b++ {
		bit := uint64(1) << uint(b)
		if c.activeTags&bit == 0 {
			return bit
		}
	}
	return 0
}

// releasePendingIH frees an unattached fetch-line shadow handle.
func (c *CPU) releasePendingIH() {
	if c.pendingIH.Valid() && c.ms.ShI != nil && c.ms.ShI.StillValid(c.pendingIH) {
		c.ms.ShI.Release(c.pendingIH, false)
	}
	c.pendingIH = shadow.Handle{}
}

func (c *CPU) releasePendingITLBH() {
	if c.pendingITLBH.Valid() && c.ms.ShITLB != nil && c.ms.ShITLB.StillValid(c.pendingITLBH) {
		c.ms.ShITLB.Release(c.pendingITLBH, false)
	}
	c.pendingITLBH = shadow.Handle{}
}

func (c *CPU) releasePendingDH() {
	for _, h := range c.pendingDH[:c.nPendingDH] {
		if c.ms.ShD != nil && c.ms.ShD.StillValid(h) {
			c.ms.ShD.Release(h, false)
		}
	}
	c.nPendingDH = 0
}

// flushFetch clears the fetch buffer and any pending shadow handles, then
// redirects the front end to pc.
func (c *CPU) flushFetch(pc int) {
	for i := 0; i < c.fbLen; i++ {
		rec := &c.fetchBuf[(c.fbHead+i)%len(c.fetchBuf)]
		if rec.iHandle.Valid() && c.ms.ShI != nil && c.ms.ShI.StillValid(rec.iHandle) {
			c.ms.ShI.Release(rec.iHandle, false)
		}
		if rec.itlbHandle.Valid() && c.ms.ShITLB != nil && c.ms.ShITLB.StillValid(rec.itlbHandle) {
			c.ms.ShITLB.Release(rec.itlbHandle, false)
		}
		for _, h := range rec.dHandles[:rec.nDH] {
			if c.ms.ShD != nil && c.ms.ShD.StillValid(h) {
				c.ms.ShD.Release(h, false)
			}
		}
		c.putRASBuf(rec.rasSnap)
		*rec = fetchRec{}
	}
	c.fbHead, c.fbLen = 0, 0
	c.releasePendingIH()
	c.releasePendingITLBH()
	c.releasePendingDH()
	c.fetchPC = pc
	c.fetchValid = pc >= 0 && pc < len(c.prog.Code)
	c.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
	c.lastFetchLine = ^uint64(0)
	if c.tracing() {
		c.tracef("redirect fetch -> pc=%d valid=%v", pc, c.fetchValid)
	}
}
