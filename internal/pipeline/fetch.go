package pipeline

import (
	"safespec/internal/cache"
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
)

// fetch runs the front end of thread t for one cycle: up to FetchWidth
// instructions are pulled from the instruction stream along the predicted
// path, charging I-cache/iTLB time per line crossed. A taken (predicted or
// static) control transfer ends the fetch group. Under SMT one thread owns
// the entire fetch stage each cycle (round-robin in Step).
func (c *CPU) fetch(t *thread) {
	if !t.fetchValid || c.cycle < t.fetchStallUntil {
		return
	}
	// Bounded fetch buffer (two dispatch groups).
	if t.fbLen >= 2*c.cfg.DispatchWidth {
		return
	}
	for fetched := 0; fetched < c.cfg.FetchWidth; fetched++ {
		if t.fetchPC < 0 || t.fetchPC >= len(c.prog.Code) {
			// Ran off the code (wrong-path or program end): wait for a
			// redirect; if none ever comes the pipeline drains and halts.
			t.fetchValid = false
			return
		}
		lineVA := isa.PCByte(t.fetchPC) &^ uint64(cache.LineSize-1)
		if lineVA == t.lastFetchLine {
			// Same-line sequential fetch: no cache port needed, but for
			// the Figure 15 accounting attribute the reuse to wherever the
			// line currently resides — the shadow structure while the line
			// is still speculative, the committed L1I after it moves.
			c.St.IFetches++
			inShadow, inL1 := t.ms.ClassifyILine(t.lastFetchPALine)
			switch {
			case inShadow:
				c.St.IFetchShadowHits++
			case inL1:
				c.St.IFetchL1Hits++
			default:
				// Line was flushed or displaced mid-group; treat as a hit
				// on the committed side (no re-fetch is modeled).
				c.St.IFetchL1Hits++
			}
		}
		if lineVA != t.lastFetchLine {
			c.active = true
			if c.tracing() {
				c.tracef("ifetch  pc=%d line=%#x", t.fetchPC, lineVA)
			}
			res := t.ms.FetchAccess(lineVA, t.seqCtr, t.activeTags)
			if res.blocked {
				// Shadow structure full under the Block policy: retry.
				t.fetchStallUntil = c.cycle + 1
				return
			}
			c.St.IFetches++
			switch {
			case res.shadowHit:
				c.St.IFetchShadowHits++
			case res.l1Hit:
				c.St.IFetchL1Hits++
			default:
				c.St.IFetchMisses++
			}
			t.lastFetchLine = lineVA
			t.lastFetchPALine = res.paLine
			if res.iHandle.Valid() {
				t.releasePendingIH()
				t.pendingIH = res.iHandle
			}
			if res.itlbHandle.Valid() {
				t.releasePendingITLBH()
				t.pendingITLBH = res.itlbHandle
			}
			if res.nDH > 0 {
				t.releasePendingDH()
				t.pendingDH, t.nPendingDH = res.dHandles, res.nDH
			}
			if res.stall > 0 {
				t.fetchStallUntil = c.cycle + uint64(res.stall)
				return
			}
		}
		in := c.prog.Code[t.fetchPC]
		// Build the record directly in the (pre-zeroed) ring slot; fbCommit
		// publishes it. No abort path runs between here and the commit.
		rec := t.fbNext()
		rec.pc = t.fetchPC
		rec.in = in
		// The first instruction fetched after a line fill owns that line's
		// shadow entries.
		if t.pendingIH.Valid() {
			rec.iHandle, t.pendingIH = t.pendingIH, shadow.Handle{}
		}
		if t.pendingITLBH.Valid() {
			rec.itlbHandle, t.pendingITLBH = t.pendingITLBH, shadow.Handle{}
		}
		if t.nPendingDH > 0 {
			rec.dHandles, rec.nDH = t.pendingDH, t.nPendingDH
			t.nPendingDH = 0
		}

		redirected := false
		switch isa.ClassOf(in.Op) {
		case isa.ClassBranch:
			rec.predicted = true
			rec.histSnap = t.bp.HistorySnapshot()
			rec.rasSnap = c.getRASBuf(t)
			rec.rasTop = t.bp.SnapshotRASInto(rec.rasSnap)
			pred := t.bp.PredictCond(rec.pc, in.Target)
			rec.predTaken = pred.Taken
			rec.predTarget = pred.Target
			t.bp.SpeculateHistory(pred.Taken)
			if pred.Taken {
				t.fetchPC = pred.Target
				redirected = true
			} else {
				t.fetchPC++
			}
		case isa.ClassJump:
			// Direct jump/call: target statically known, never mispredicts.
			if in.Op == isa.OpCall {
				t.bp.PushReturn(rec.pc + 1)
			}
			rec.predTaken = true
			rec.predTarget = in.Target
			t.fetchPC = in.Target
			redirected = true
		case isa.ClassJumpInd:
			rec.predicted = true
			rec.histSnap = t.bp.HistorySnapshot()
			rec.rasSnap = c.getRASBuf(t)
			rec.rasTop = t.bp.SnapshotRASInto(rec.rasSnap)
			pred := t.bp.PredictIndirect(rec.pc)
			rec.predTaken = true
			if pred.HasTarget {
				rec.predTarget = pred.Target
			} else {
				// No BTB entry: fall through and rely on the execute-time
				// redirect (a guaranteed "mispredict").
				rec.predTarget = rec.pc + 1
			}
			if in.Op == isa.OpCalli {
				t.bp.PushReturn(rec.pc + 1)
			}
			t.fetchPC = rec.predTarget
			redirected = true
		case isa.ClassRet:
			rec.predicted = true
			rec.histSnap = t.bp.HistorySnapshot()
			rec.rasSnap = c.getRASBuf(t)
			rec.rasTop = t.bp.SnapshotRASInto(rec.rasSnap)
			pred := t.bp.PredictReturn()
			rec.predTaken = true
			if pred.HasTarget {
				rec.predTarget = pred.Target
			} else {
				rec.predTarget = rec.pc + 1
			}
			t.fetchPC = rec.predTarget
			redirected = true
		case isa.ClassHalt:
			t.fetchValid = false
			t.fbCommit()
			c.active = true
			return
		default:
			t.fetchPC++
		}

		t.fbCommit()
		c.active = true
		if redirected {
			// A taken transfer ends the fetch group and invalidates the
			// straight-line same-line optimization.
			t.lastFetchLine = ^uint64(0)
			return
		}
	}
}

// dispatch moves instructions from thread t's fetch buffer into its ROB
// partition, renaming their operands and allocating its IQ/LDQ/STQ shares
// and branch tags. budget is the remaining DispatchWidth shared across
// threads this cycle; one unit is consumed per dispatched instruction.
func (c *CPU) dispatch(t *thread, budget *int) {
	for *budget > 0 && t.fbLen > 0 {
		if t.fenceActive > 0 {
			return
		}
		if t.count == len(t.rob) || t.iqCount == t.iqMax {
			return
		}
		rec := t.fbFront()
		class := isa.ClassOf(rec.in.Op)
		isLoad := class == isa.ClassLoad
		isStore := class == isa.ClassStore
		if isLoad && t.ldqCount == t.ldqMax {
			return
		}
		if isStore && t.stqCount == t.stqMax {
			return
		}
		var tagBit uint64
		if rec.predicted {
			tagBit = c.freeTag(t)
			if tagBit == 0 {
				return // out of branch checkpoints
			}
		}

		idx := t.tail()
		t.count++
		t.seqCtr++
		e := &t.rob[idx]
		// Field-by-field reset instead of `*e = entry{...}`: the composite
		// literal zero-fills the whole slot — dominated by the 96-byte
		// inline handle array — on every dispatch. Stale dHandles contents
		// are unreachable behind nDH = 0; every other field is (re)assigned
		// here or below.
		e.seq = t.seqCtr
		e.pc = rec.pc
		e.in = rec.in
		e.state = stWait
		e.completeAt = 0
		e.val = 0
		e.mask = t.activeTags
		e.tagBit = tagBit
		e.predTaken = rec.predTaken
		e.predTarget = rec.predTarget
		e.actualTaken = false
		e.actualTarget = 0
		e.histSnap = rec.histSnap
		e.rasTop = rec.rasTop
		e.rasSnap = rec.rasSnap
		e.isLoad = isLoad
		e.isStore = isStore
		e.addrReady = false
		e.va, e.pa = 0, 0
		e.sdata = 0
		e.fault = mem.FaultNone
		e.nDH = 0
		e.dtlbHandle = shadowZero
		e.iHandle = rec.iHandle
		e.itlbHandle = rec.itlbHandle
		e.addDHs(rec.dHandles[:rec.nDH])
		if tagBit != 0 {
			t.activeTags |= tagBit
		}

		// Operand renaming.
		e.reg1, e.reg2 = srcRegsOf(rec.in)
		e.src1 = t.renameLookup(e.reg1)
		e.src2 = t.renameLookup(e.reg2)
		if rec.in.HasDest() {
			t.renm[rec.in.Rd] = renameRef{has: true, idx: idx, seq: e.seq}
		}
		c.schedDispatch(t, idx, e)

		t.iqCount++
		if isLoad {
			t.ldqCount++
		}
		if isStore {
			t.stqCount++
		}
		if rec.in.Op == isa.OpFence {
			t.fenceActive++
		}
		c.St.Dispatched++
		t.st.Dispatched++
		c.active = true
		t.fbPop()
		*budget--
	}
}

// srcRegsOf returns the (up to two) source registers of in, Zero if unused.
func srcRegsOf(in isa.Instr) (r1, r2 isa.Reg) {
	switch isa.ClassOf(in.Op) {
	case isa.ClassALU:
		switch in.Op {
		case isa.OpMovi:
			return isa.Zero, isa.Zero
		case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSlti:
			return in.Rs1, isa.Zero
		default:
			return in.Rs1, in.Rs2
		}
	case isa.ClassMul, isa.ClassDiv, isa.ClassFP:
		return in.Rs1, in.Rs2
	case isa.ClassLoad:
		return in.Rs1, isa.Zero
	case isa.ClassStore:
		return in.Rs1, in.Rs2
	case isa.ClassBranch:
		return in.Rs1, in.Rs2
	case isa.ClassJumpInd:
		return in.Rs1, isa.Zero
	case isa.ClassRet:
		return isa.RA, isa.Zero
	case isa.ClassFlush:
		return in.Rs1, isa.Zero
	}
	return isa.Zero, isa.Zero
}

// freeTag allocates an unused branch-tag bit from t's share, or 0 if none
// remain.
func (c *CPU) freeTag(t *thread) uint64 {
	limit := t.tagsMax
	for b := 0; b < limit && b < 64; b++ {
		bit := uint64(1) << uint(b)
		if t.activeTags&bit == 0 {
			return bit
		}
	}
	return 0
}

// releasePendingIH frees an unattached fetch-line shadow handle.
func (t *thread) releasePendingIH() {
	if t.pendingIH.Valid() && t.ms.ShI != nil && t.ms.ShI.StillValid(t.pendingIH) {
		t.ms.ShI.Release(t.pendingIH, false)
	}
	t.pendingIH = shadow.Handle{}
}

func (t *thread) releasePendingITLBH() {
	if t.pendingITLBH.Valid() && t.ms.ShITLB != nil && t.ms.ShITLB.StillValid(t.pendingITLBH) {
		t.ms.ShITLB.Release(t.pendingITLBH, false)
	}
	t.pendingITLBH = shadow.Handle{}
}

func (t *thread) releasePendingDH() {
	for _, h := range t.pendingDH[:t.nPendingDH] {
		if t.ms.ShD != nil && t.ms.ShD.StillValid(h) {
			t.ms.ShD.Release(h, false)
		}
	}
	t.nPendingDH = 0
}

// flushFetch clears thread t's fetch buffer and any pending shadow handles,
// then redirects its front end to pc.
func (c *CPU) flushFetch(t *thread, pc int) {
	for i := 0; i < t.fbLen; i++ {
		rec := &t.fetchBuf[(t.fbHead+i)%len(t.fetchBuf)]
		if rec.iHandle.Valid() && t.ms.ShI != nil && t.ms.ShI.StillValid(rec.iHandle) {
			t.ms.ShI.Release(rec.iHandle, false)
		}
		if rec.itlbHandle.Valid() && t.ms.ShITLB != nil && t.ms.ShITLB.StillValid(rec.itlbHandle) {
			t.ms.ShITLB.Release(rec.itlbHandle, false)
		}
		for _, h := range rec.dHandles[:rec.nDH] {
			if t.ms.ShD != nil && t.ms.ShD.StillValid(h) {
				t.ms.ShD.Release(h, false)
			}
		}
		t.putRASBuf(rec.rasSnap)
		*rec = fetchRec{}
	}
	t.fbHead, t.fbLen = 0, 0
	t.releasePendingIH()
	t.releasePendingITLBH()
	t.releasePendingDH()
	t.fetchPC = pc
	t.fetchValid = pc >= 0 && pc < len(c.prog.Code)
	t.fetchStallUntil = c.cycle + uint64(c.cfg.RedirectPenalty)
	t.lastFetchLine = ^uint64(0)
	if c.tracing() {
		c.tracef("redirect fetch -> pc=%d valid=%v", pc, t.fetchValid)
	}
}
