package pipeline

import (
	"safespec/internal/isa"
	"safespec/internal/mem"
)

// execute runs the issue and writeback logic for thread t this cycle:
// finished instructions write back (resolving branches, possibly
// squashing), and waiting instructions with ready operands issue subject to
// the issue width and port limits. issued/loads/stores are the port budgets
// shared across threads this cycle. The event-driven scheduler (sched.go)
// touches only the entries that act this cycle; the reference scan
// rediscovers them by walking the whole window and is kept for differential
// testing.
func (c *CPU) execute(t *thread, issued, loads, stores *int) {
	if c.refSched {
		c.executeScan(t, issued, loads, stores)
		return
	}
	c.executeEvent(t, issued, loads, stores)
}

// executeScan is the reference O(ROB-entries) issue/writeback stage.
func (c *CPU) executeScan(t *thread, issued, loads, stores *int) {
	for i := 0; i < t.count; i++ {
		idx := t.slot(i)
		e := &t.rob[idx]
		switch e.state {
		case stExec:
			if e.completeAt <= c.cycle {
				c.active = true
				if squashed := c.writeback(t, idx, e); squashed {
					return // younger entries are gone; resume next cycle
				}
			}
		case stWait:
			if *issued >= c.cfg.IssueWidth {
				continue
			}
			if e.isLoad && *loads >= 2 {
				continue
			}
			if e.isStore && *stores >= 1 {
				continue
			}
			if c.tryIssue(t, idx, e) != issueOK {
				continue
			}
			c.active = true
			*issued++
			if e.isLoad {
				*loads++
			}
			if e.isStore {
				*stores++
			}
		}
	}
}

// issueOutcome classifies a failed (or successful) issue attempt so the
// event scheduler knows whether to drop the entry from the ready queue
// (issueOperands: a producer wakeup will re-enqueue it) or keep retrying it
// every cycle (issueBlocked), exactly as the reference scan would.
type issueOutcome uint8

const (
	issueOK       issueOutcome = iota // entry began executing
	issueOperands                     // an operand's producer has not finished
	issueBlocked                      // structural retry: blocked memory, CSR serialization, unresolved older store
)

// tryIssue attempts to begin execution of e on thread t. It reports failure
// when operands are not ready, a structural condition blocks, or the memory
// system asked for a retry (shadow Block policy, unresolved older store
// address).
func (c *CPU) tryIssue(t *thread, idx int, e *entry) issueOutcome {
	v1, ok1 := t.resolveSrc(e.reg1, e.src1)
	v2, ok2 := t.resolveSrc(e.reg2, e.src2)
	if !ok1 || !ok2 {
		return issueOperands
	}
	op := e.in.Op
	lat := uint64(isa.Latency(op))

	switch isa.ClassOf(op) {
	case isa.ClassNop, isa.ClassFence, isa.ClassHalt:
		// Nothing to compute.
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassFP:
		e.val = evalALU(op, v1, v2, e.in.Imm)
	case isa.ClassCSR:
		// rdcycle is serializing: it issues only from the ROB head, after
		// everything older has committed, so it observes a stable time.
		if idx != t.head {
			return issueBlocked
		}
		e.val = int64(c.cycle)
	case isa.ClassLoad:
		return c.issueLoad(t, idx, e, v1)
	case isa.ClassStore:
		return c.issueStore(t, idx, e, v1, v2)
	case isa.ClassBranch:
		e.actualTaken = evalBranch(op, v1, v2)
		if e.actualTaken {
			e.actualTarget = e.in.Target
		} else {
			e.actualTarget = e.pc + 1
		}
	case isa.ClassJump:
		e.actualTaken = true
		e.actualTarget = e.in.Target
		if op == isa.OpCall {
			e.val = int64(e.pc + 1)
		}
	case isa.ClassJumpInd:
		e.actualTaken = true
		e.actualTarget = int(v1 + e.in.Imm)
		if op == isa.OpCalli {
			e.val = int64(e.pc + 1)
		}
	case isa.ClassRet:
		e.actualTaken = true
		e.actualTarget = int(v1)
	case isa.ClassFlush:
		// Effective address computed now; the flush itself is performed at
		// commit so that squashed flushes leave no trace.
		e.va = uint64(v1 + e.in.Imm)
	}

	e.state = stExec
	e.completeAt = c.cycle + lat
	t.iqCount--
	c.schedIssued(t, idx, e)
	if c.tracing() {
		c.tracef("issue   %s", traceEntry(e))
	}
	c.wfbMoveIfSafe(t, e)
	return issueOK
}

// issueLoad performs the memory access for a load: store-to-load forwarding
// against older stores, else a full dTLB + D-cache access.
func (c *CPU) issueLoad(t *thread, idx int, e *entry, v1 int64) issueOutcome {
	va := uint64(v1 + e.in.Imm)
	e.va = va

	// Walk older stores, youngest-first, over the store bitmap. An older
	// store with an unresolved address blocks the load (no
	// memory-dependence speculation).
	if s, blocked := c.olderStoreScan(t, idx, va); blocked {
		return issueBlocked
	} else if s != nil {
		if s.fault != mem.FaultNone {
			// Forwarding from a faulting store: the load will be
			// squashed by the store's trap anyway; treat as stall.
			return issueBlocked
		}
		e.val = s.sdata
		e.state = stExec
		e.completeAt = c.cycle + uint64(c.cfg.StoreForwardLatency)
		t.iqCount--
		c.schedIssued(t, idx, e)
		c.St.StoreForwards++
		return issueOK
	}

	res := t.ms.LoadAccess(va, e.seq, e.mask)
	if res.blocked {
		return issueBlocked
	}
	c.St.DReads++
	switch {
	case res.shadowHit:
		c.St.DReadShadowHits++
	case res.l1Hit:
		c.St.DReadL1Hits++
	default:
		c.St.DReadMisses++
	}
	e.val = res.value
	e.pa = res.pa
	e.fault = res.fault
	e.addDHs(res.dhs()) // keep fetch-attributed PTE handles
	e.dtlbHandle = res.dtlbHandle
	e.state = stExec
	e.completeAt = c.cycle + uint64(isa.Latency(e.in.Op)) + uint64(res.latency)
	t.iqCount--
	c.schedIssued(t, idx, e)
	if c.tracing() {
		c.tracef("issue   %s va=%#x lat=%d fault=%v", traceEntry(e), va, res.latency, res.fault)
	}
	c.wfbMoveIfSafe(t, e)
	return issueOK
}

// issueStore resolves a store's address and captures its data. The write
// itself happens at commit (TSO).
func (c *CPU) issueStore(t *thread, idx int, e *entry, v1, v2 int64) issueOutcome {
	va := uint64(v1 + e.in.Imm)
	res := t.ms.StoreAccess(va, e.seq, e.mask)
	if res.blocked {
		return issueBlocked
	}
	e.va = va
	e.pa = res.pa
	e.fault = res.fault
	e.sdata = v2
	e.addrReady = true
	e.addDHs(res.dhs())
	e.dtlbHandle = res.dtlbHandle
	e.state = stExec
	e.completeAt = c.cycle + uint64(isa.Latency(e.in.Op))
	t.iqCount--
	c.schedIssued(t, idx, e)
	c.wfbMoveIfSafe(t, e)
	return issueOK
}

// writeback finishes e: marks it done, wakes its register dependents, and
// resolves control flow. It reports whether a squash occurred.
func (c *CPU) writeback(t *thread, idx int, e *entry) bool {
	c.schedRetire(t, idx)
	e.state = stDone
	c.wakeWaiters(t, idx)
	if isa.IsBranchLike(e.in.Op) {
		if squashed := c.resolveBranch(t, idx, e); squashed {
			return true
		}
	}
	return false
}

// wfbMoveIfSafe applies the wait-for-branch rule: an instruction whose
// older control-flow predictions have all resolved is no longer considered
// speculative, so its shadow state moves to the committed structures
// immediately — even if the instruction itself may later fault. This is
// exactly why WFB does not stop Meltdown (paper Table III): the faulting
// load's side effects have no branch to wait for.
func (c *CPU) wfbMoveIfSafe(t *thread, e *entry) {
	if c.cfg.Mode == ModeWFB && e.mask == 0 {
		c.moveShadow(t, e)
	}
}

// resolveBranch checks the prediction for a resolved control transfer,
// trains the predictor, clears the branch tag, and squashes on mispredict.
// It reports whether a squash occurred.
func (c *CPU) resolveBranch(t *thread, idx int, e *entry) bool {
	op := e.in.Op
	correct := true
	if isa.IsPredicted(op) {
		correct = e.predTaken == e.actualTaken && (!e.actualTaken || e.predTarget == e.actualTarget)
		// For not-taken conditional branches the fall-through target always
		// matches; for taken paths compare targets.
		if isa.ClassOf(op) == isa.ClassBranch && e.predTaken == e.actualTaken && !e.actualTaken {
			correct = true
		}
		switch isa.ClassOf(op) {
		case isa.ClassBranch:
			t.bp.UpdateCond(e.pc, e.histSnap, e.actualTaken, correct)
		case isa.ClassJumpInd:
			t.bp.UpdateIndirect(e.pc, e.actualTarget, correct)
		case isa.ClassRet:
			t.bp.UpdateReturn(correct)
		}
	}

	if correct {
		t.releaseRASSnap(e)
		c.clearTag(t, e)
		return false
	}

	// Mispredict: squash everything younger, restore predictor state, and
	// redirect the front end to the actual target.
	if c.tracing() {
		c.tracef("MISPRED %s predicted=%d actual=%d", traceEntry(e), e.predTarget, e.actualTarget)
	}
	c.St.Mispredicts++
	t.st.Mispredicts++
	if in := c.intro; in != nil {
		in.MispredictSquashes++
		in.SquashedByMispredict += uint64(t.count - (t.ordinal(idx) + 1))
	}
	c.squashYounger(t, idx)
	t.bp.RestoreHistory(e.histSnap)
	t.bp.RestoreRAS(e.rasTop, e.rasSnap)
	t.releaseRASSnap(e)
	switch isa.ClassOf(op) {
	case isa.ClassBranch:
		t.bp.SpeculateHistory(e.actualTaken)
	case isa.ClassJumpInd:
		if op == isa.OpCalli {
			t.bp.PushReturn(e.pc + 1)
		}
	case isa.ClassRet:
		// Re-pop the (restored) RAS to consume the return.
		t.bp.PredictReturn()
	}
	c.clearTag(t, e)
	c.flushFetch(t, e.actualTarget)
	return true
}

// clearTag releases e's branch tag and clears the bit from all younger
// entries' masks, applying the WFB motion rule to entries that become safe.
func (c *CPU) clearTag(t *thread, e *entry) {
	bit := e.tagBit
	if bit == 0 {
		return
	}
	e.tagBit = 0
	t.activeTags &^= bit
	for i := 0; i < t.count; i++ {
		ent := &t.rob[t.slot(i)]
		if ent.mask&bit == 0 {
			continue
		}
		ent.mask &^= bit
		// WFB: entries freed of their last branch dependency become safe;
		// whatever shadow state they have accumulated moves now (entries
		// still waiting to issue will move their future fills at issue).
		c.wfbMoveIfSafe(t, ent)
	}
}

// squashYounger removes every ROB entry of thread t younger than the one at
// idx, releasing shadow state as squashed and returning queue capacity.
func (c *CPU) squashYounger(t *thread, idx int) {
	keep := t.ordinal(idx) + 1
	for i := t.count - 1; i >= keep; i-- {
		c.squashEntry(t, t.slot(i))
	}
	t.count = keep
	t.rebuildRename()
}

// squashAll removes every ROB entry of thread t (trap flush).
func (c *CPU) squashAll(t *thread) {
	for i := t.count - 1; i >= 0; i-- {
		c.squashEntry(t, t.slot(i))
	}
	t.count = 0
	t.rebuildRename()
}

// squashEntry annuls the entry in t's ROB slot idx: shadow state is
// released in place (the SafeSpec "annul update to the shadow state" arrow
// in Figure 3) and the scheduler drops any queued work for it.
func (c *CPU) squashEntry(t *thread, idx int) {
	e := &t.rob[idx]
	c.schedSquash(t, idx)
	c.St.Squashed++
	t.st.Squashed++
	if e.state == stWait {
		t.iqCount--
	}
	if e.isLoad {
		t.ldqCount--
	}
	if e.isStore {
		t.stqCount--
	}
	if e.tagBit != 0 {
		t.activeTags &^= e.tagBit
	}
	if e.in.Op == isa.OpFence {
		t.fenceActive--
	}
	t.releaseRASSnap(e)
	c.releaseShadow(t, e, false)
}

// releaseShadow drops all shadow handles of e with the given disposition.
func (c *CPU) releaseShadow(t *thread, e *entry, committed bool) {
	ms := t.ms
	if ms.ShD != nil {
		for _, h := range e.dhs() {
			if ms.ShD.StillValid(h) {
				ms.ShD.Release(h, committed)
			}
		}
	}
	e.nDH = 0
	if ms.ShDTLB != nil && e.dtlbHandle.Valid() && ms.ShDTLB.StillValid(e.dtlbHandle) {
		ms.ShDTLB.Release(e.dtlbHandle, committed)
	}
	e.dtlbHandle = shadowZero
	if ms.ShI != nil && e.iHandle.Valid() && ms.ShI.StillValid(e.iHandle) {
		ms.ShI.Release(e.iHandle, committed)
	}
	e.iHandle = shadowZero
	if ms.ShITLB != nil && e.itlbHandle.Valid() && ms.ShITLB.StillValid(e.itlbHandle) {
		ms.ShITLB.Release(e.itlbHandle, committed)
	}
	e.itlbHandle = shadowZero
}

// evalALU computes the result of an ALU-class operation.
func evalALU(op isa.Op, v1, v2, imm int64) int64 {
	switch op {
	case isa.OpAdd:
		return v1 + v2
	case isa.OpSub:
		return v1 - v2
	case isa.OpMul:
		return v1 * v2
	case isa.OpDiv:
		if v2 == 0 {
			return 0
		}
		return v1 / v2
	case isa.OpRem:
		if v2 == 0 {
			return v1
		}
		return v1 % v2
	case isa.OpAnd:
		return v1 & v2
	case isa.OpOr:
		return v1 | v2
	case isa.OpXor:
		return v1 ^ v2
	case isa.OpShl:
		return v1 << uint(v2&63)
	case isa.OpShr:
		return int64(uint64(v1) >> uint(v2&63))
	case isa.OpSra:
		return v1 >> uint(v2&63)
	case isa.OpSlt:
		if v1 < v2 {
			return 1
		}
		return 0
	case isa.OpAddi:
		return v1 + imm
	case isa.OpAndi:
		return v1 & imm
	case isa.OpOri:
		return v1 | imm
	case isa.OpXori:
		return v1 ^ imm
	case isa.OpShli:
		return v1 << uint(imm&63)
	case isa.OpShri:
		return int64(uint64(v1) >> uint(imm&63))
	case isa.OpSlti:
		if v1 < imm {
			return 1
		}
		return 0
	case isa.OpMovi:
		return imm
	case isa.OpFAdd:
		return v1 + v2
	case isa.OpFMul:
		return v1 * v2
	case isa.OpFDiv:
		if v2 == 0 {
			return 0
		}
		return v1 / v2
	default:
		return 0
	}
}

// evalBranch computes the direction of a conditional branch.
func evalBranch(op isa.Op, v1, v2 int64) bool {
	switch op {
	case isa.OpBeq:
		return v1 == v2
	case isa.OpBne:
		return v1 != v2
	case isa.OpBlt:
		return v1 < v2
	case isa.OpBge:
		return v1 >= v2
	case isa.OpBltu:
		return uint64(v1) < uint64(v2)
	case isa.OpBgeu:
		return uint64(v1) >= uint64(v2)
	default:
		return false
	}
}
