package pipeline

import (
	"fmt"
	"io"
)

// Trace, when non-nil, receives a line per pipeline event (fetch redirects,
// dispatch, issue, writeback, commit, squash, trap). Intended for debugging
// and for teaching: the examples can show exactly how a Spectre gadget's
// wrong path flows through the machine.
func (c *CPU) SetTrace(w io.Writer) { c.trace = w }

// tracef formats one trace line. Call sites must guard with `c.trace != nil`
// (or the tracing() helper): building the variadic argument slice — and the
// traceEntry string — costs real allocations per pipeline event, which
// profiling showed dominating untraced runs when evaluated eagerly.
func (c *CPU) tracef(format string, args ...any) {
	if c.trace == nil {
		return
	}
	fmt.Fprintf(c.trace, "%8d  ", c.cycle)
	fmt.Fprintf(c.trace, format, args...)
	fmt.Fprintln(c.trace)
}

// tracing reports whether trace output is enabled; hot paths check it before
// computing any trace arguments.
func (c *CPU) tracing() bool { return c.trace != nil }

// traceEntry renders an entry identity for trace lines.
func traceEntry(e *entry) string {
	return fmt.Sprintf("#%d pc=%d %s", e.seq, e.pc, e.in)
}
