package pipeline_test

import (
	"testing"

	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/workloads"
)

// steadyCPU builds a CPU for a realistic infinite kernel and warms it past
// the transient phase: cold-start misses, RAS-pool growth and fetch-ring
// fill all happen here, so the measured window below sees only steady-state
// behaviour.
func steadyCPU(t *testing.T, mode core.Mode) *pipeline.CPU {
	t.Helper()
	// gcc is the most demanding kernel shape: random loads over 1 MiB,
	// stores, two data-dependent branches and 160 code blocks behind an
	// indirect call — every allocation-prone pipeline path stays hot.
	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(mode).Pipeline
	cpu := pipeline.New(cfg, w.Build())
	for i := 0; i < 30_000; i++ {
		cpu.Step()
	}
	if cpu.Halted() {
		t.Fatal("kernel halted during warmup; it must run forever")
	}
	return cpu
}

// TestZeroSteadyStateAllocsPerCycle is the allocation regression gate for
// the hot loop: once warm, stepping the core must allocate nothing — the
// fetch ring, the RAS snapshot pool, the inline shadow-handle arrays, the
// shadow probe tables and the map-free physical memory together leave no
// per-cycle allocation. Any future append/make/map on the cycle path shows
// up here as a non-zero average.
func TestZeroSteadyStateAllocsPerCycle(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFC, core.ModeWFB} {
		t.Run(mode.String(), func(t *testing.T) {
			cpu := steadyCPU(t, mode)
			const cycles = 2_000
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < cycles; i++ {
					cpu.Step()
				}
			})
			if cpu.Halted() {
				t.Fatal("kernel halted mid-measurement")
			}
			if avg != 0 {
				t.Fatalf("steady state allocates: %.2f allocs per %d cycles (want 0)", avg, cycles)
			}
		})
	}
}
