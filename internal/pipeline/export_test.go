package pipeline

// SetReferenceScheduler switches c between the event-driven scheduler
// (default) and the original O(ROB)-scan reference scheduler. Test-only:
// the differential tests pin both schedulers to identical statistics.
func (c *CPU) SetReferenceScheduler(on bool) { c.refSched = on }
