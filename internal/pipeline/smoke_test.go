package pipeline_test

import (
	"testing"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
)

// TestSmokeLoop runs a simple counted loop with a store under all three
// modes and checks architectural results match.
func TestSmokeLoop(t *testing.T) {
	b := asm.NewBuilder()
	const resultAddr = 0x1000
	b.Region(resultAddr, 4096, false)
	b.Movi(isa.T0, 0)   // i
	b.Movi(isa.T1, 100) // n
	b.Movi(isa.T2, 0)   // sum
	b.Label("loop")
	b.Add(isa.T2, isa.T2, isa.T0)
	b.Addi(isa.T0, isa.T0, 1)
	b.Blt(isa.T0, isa.T1, "loop")
	b.Movi(isa.T3, resultAddr)
	b.Store(isa.T2, isa.T3, 0)
	b.Load(isa.T4, isa.T3, 0)
	b.Halt()
	prog := b.MustBuild()

	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFB, core.ModeWFC} {
		sim := core.New(core.DefaultConfig(mode), prog)
		res := sim.Run()
		if got := sim.CPU().Reg(isa.T2); got != 4950 {
			t.Errorf("%v: sum = %d, want 4950", mode, got)
		}
		if got := sim.CPU().Reg(isa.T4); got != 4950 {
			t.Errorf("%v: loaded = %d, want 4950", mode, got)
		}
		if !sim.CPU().Halted() {
			t.Errorf("%v: did not halt (cycles=%d)", mode, res.Cycles)
		}
		t.Logf("%s", res.Summary())
	}
}
