// Package pipeline implements the out-of-order core of the SafeSpec
// simulator: a 6-wide fetch/dispatch/issue/commit machine with a 224-entry
// reorder buffer, 96-entry issue window, 72/56-entry load/store queues,
// branch-mask based selective squash, precise faults at commit, and —
// under SafeSpec modes — shadow-state allocation, motion and annulment
// exactly as Section III/IV of the paper describes.
//
// The simulator is cycle-level: every cycle runs commit, writeback/issue,
// dispatch and fetch stages over the reorder buffer. Architectural values
// flow through ROB tags (implicit register renaming); timing flows through
// the cache/TLB/shadow models in MemSystem.
//
// The core supports SMT: Config.Threads hardware threads share the caches,
// TLBs, branch-predictor tables and the stage widths, while every thread
// owns its architectural registers, its static partition of the ROB/IQ/LSQ
// capacity, its front end (PC, fetch ring, RAS) and — crucially for
// SafeSpec — its own shadow structures. All per-thread state lives in the
// thread struct below; a single-thread core is the exact machine this
// package always modeled.
package pipeline

import (
	"fmt"
	"io"

	"safespec/internal/bpred"
	"safespec/internal/cache"
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
	"safespec/internal/tlb"
)

// Config parameterizes the core. Zero values are replaced by the paper's
// Skylake-like defaults (Table I) via Normalize.
type Config struct {
	// Widths (Table I: 6-way issue, up to 6 micro-ops commit per cycle).
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	// Structure sizes (Table I).
	ROBSize int // 224
	IQSize  int // 96
	LDQSize int // 72
	STQSize int // 56

	// MaxBranchTags bounds the number of unresolved predicted branches in
	// flight (checkpoint count).
	MaxBranchTags int

	// RedirectPenalty is the front-end refill delay after a squash.
	RedirectPenalty int
	// WalkerLatency is the fixed page-walk overhead.
	WalkerLatency int
	// StoreForwardLatency is the store-to-load forwarding time.
	StoreForwardLatency int

	// Threads is the number of hardware threads (SMT contexts) sharing the
	// core. The zero value means one; it is deliberately NOT normalized to
	// 1, so single-thread configurations marshal exactly as they did before
	// SMT existed and sweep job hashes — and therefore warm result caches —
	// stay stable. Use NumThreads for the effective count.
	Threads int `json:",omitempty"`

	// Mode selects baseline / SafeSpec-WFB / SafeSpec-WFC.
	Mode Mode
	// FaultsReturnData models Meltdown-vulnerable data forwarding on
	// permission faults (Intel-like; default true).
	FaultsReturnData bool

	// Bpred, Hier, ITLB, DTLB configure the predictor and memory system.
	Bpred bpred.Config
	Hier  cache.HierarchyConfig
	ITLB  tlb.Config
	DTLB  tlb.Config

	// Shadow policies (used when Mode.SafeSpec()). Under SMT each thread
	// gets its own structures at these sizes.
	ShadowD    shadow.Policy
	ShadowI    shadow.Policy
	ShadowDTLB shadow.Policy
	ShadowITLB shadow.Policy

	// Run limits.
	MaxCycles uint64
	MaxInstrs uint64

	// DetectAnomalies enables the Section VII attack detector: per-cycle
	// watchdogs on the data-side shadow structures that flag abnormal
	// occupancy growth (the signature of a transient speculation attack
	// trying to create contention).
	DetectAnomalies bool
}

// NumThreads returns the effective hardware-thread count: Threads with a
// floor of one and a cap that keeps every thread's static ROB partition
// usable.
func (c Config) NumThreads() int {
	n := c.Threads
	if n < 2 {
		return 1
	}
	if n > 8 {
		n = 8
	}
	if c.ROBSize > 0 && n > c.ROBSize/8 && c.ROBSize/8 >= 2 {
		n = c.ROBSize / 8
	}
	return n
}

// Normalize fills unset fields with the paper's defaults and returns the
// completed config. Threads is left alone: zero encodes "one thread" (see
// the field comment).
func (c Config) Normalize() Config {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&c.FetchWidth, 6)
	def(&c.DispatchWidth, 6)
	def(&c.IssueWidth, 6)
	def(&c.CommitWidth, 6)
	def(&c.ROBSize, 224)
	def(&c.IQSize, 96)
	def(&c.LDQSize, 72)
	def(&c.STQSize, 56)
	def(&c.MaxBranchTags, 64)
	def(&c.RedirectPenalty, 3)
	def(&c.WalkerLatency, 5)
	def(&c.StoreForwardLatency, 5)
	if c.Bpred == (bpred.Config{}) {
		c.Bpred = bpred.DefaultConfig()
	}
	if c.Hier.MemLatency == 0 {
		c.Hier = cache.SkylakeHierarchy()
	}
	if c.ITLB.Entries == 0 {
		c.ITLB = tlb.SkylakeITLB()
	}
	if c.DTLB.Entries == 0 {
		c.DTLB = tlb.SkylakeDTLB()
	}
	if c.ShadowD.Entries == 0 {
		c.ShadowD = shadow.Policy{Name: "shadow-dcache", Entries: c.LDQSize}
	}
	if c.ShadowI.Entries == 0 {
		c.ShadowI = shadow.Policy{Name: "shadow-icache", Entries: c.ROBSize}
	}
	if c.ShadowDTLB.Entries == 0 {
		c.ShadowDTLB = shadow.Policy{Name: "shadow-dtlb", Entries: c.LDQSize}
	}
	if c.ShadowITLB.Entries == 0 {
		c.ShadowITLB = shadow.Policy{Name: "shadow-itlb", Entries: c.ROBSize}
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 5_000_000
	}
	return c
}

type entryState uint8

const (
	stWait entryState = iota // dispatched, waiting for operands / retry
	stExec                   // executing, completes at completeAt
	stDone                   // result available, ready to commit
)

// renameRef points at an in-flight producer.
type renameRef struct {
	has bool
	idx int
	seq uint64
}

// entry is one reorder-buffer slot.
type entry struct {
	seq uint64
	pc  int
	in  isa.Instr

	state      entryState
	completeAt uint64
	val        int64

	// Operand renaming captured at dispatch.
	reg1, reg2 isa.Reg
	src1, src2 renameRef

	// Branch state.
	mask         uint64 // unresolved older branch tags
	tagBit       uint64 // this entry's own tag (predicted branches)
	predTaken    bool
	predTarget   int
	actualTaken  bool
	actualTarget int
	histSnap     uint64
	rasTop       int
	rasSnap      []int

	// Memory state.
	isLoad, isStore bool
	addrReady       bool
	va, pa          uint64
	sdata           int64

	// Fault raised at commit.
	fault mem.Fault

	// Shadow handles owned by this instruction: dHandles[:nDH] holds at
	// most one fetch-transferred set (iTLB-walk PTE lines) plus one data
	// access's worth, inline so dispatch/issue never allocate.
	dHandles   [2 * maxAccessDH]shadow.Handle
	nDH        int
	dtlbHandle shadow.Handle
	iHandle    shadow.Handle
	itlbHandle shadow.Handle
}

// dhs returns the owned shadow D-cache handles as a slice view.
func (e *entry) dhs() []shadow.Handle { return e.dHandles[:e.nDH] }

// addDHs appends acquired shadow D-cache handles to the entry's inline set.
func (e *entry) addDHs(hs []shadow.Handle) {
	e.nDH += copy(e.dHandles[e.nDH:], hs)
}

// fetchRec is one fetched-but-not-dispatched instruction.
type fetchRec struct {
	pc         int
	in         isa.Instr
	predicted  bool // consults the predictor (can mispredict)
	predTaken  bool
	predTarget int
	histSnap   uint64
	rasTop     int
	rasSnap    []int
	iHandle    shadow.Handle
	itlbHandle shadow.Handle
	// dHandles[:nDH] holds shadow D-cache entries from the line's iTLB-walk
	// PTE reads; they transfer to the first dispatched instruction.
	dHandles [maxAccessDH]shadow.Handle
	nDH      int
}

// thread holds all core state that is architecturally private to one
// hardware thread: registers and rename map, the thread's static ROB
// partition, its share of the IQ/LSQ/branch-tag capacity, the front end
// (PC, fetch ring, RAS snapshot pool), the event-scheduler bitmaps and
// completion wheel over its partition, and — under SafeSpec — its shadow
// structures and anomaly detectors. Everything else (caches, TLBs,
// predictor tables, stage widths) is shared across threads.
type thread struct {
	id int

	// ms is this thread's memory-system view: committed structures shared
	// with every sibling, shadow structures private. bp likewise shares the
	// predictor tables while keeping history/RAS/stats private.
	ms *MemSystem
	bp *bpred.Predictor

	regs [isa.RegCount]int64
	renm [isa.RegCount]renameRef

	rob   []entry
	head  int
	count int

	seqCtr      uint64
	iqCount     int
	ldqCount    int
	stqCount    int
	activeTags  uint64
	fenceActive int

	// Static partition shares of the shared structures (full capacity for a
	// single-thread core).
	iqMax, ldqMax, stqMax, tagsMax int

	fetchPC         int
	fetchValid      bool
	fetchStallUntil uint64
	// fetchBuf is a fixed-capacity ring (fbHead/fbLen) sized at build time:
	// the front end holds at most two dispatch groups plus one fetch group,
	// so the buffer never reallocates.
	fetchBuf        []fetchRec
	fbHead, fbLen   int
	lastFetchLine   uint64
	lastFetchPALine uint64
	pendingIH       shadow.Handle
	pendingITLBH    shadow.Handle
	pendingDH       [maxAccessDH]shadow.Handle
	nPendingDH      int

	// rasFree recycles RAS snapshot buffers (one live per in-flight
	// predicted branch), so prediction allocates nothing in steady state.
	rasFree [][]int

	// Event-driven scheduler state (sched.go) over this thread's ROB
	// partition: slot bitmaps for ready and completed work, per-producer
	// wakeup rows, the in-flight store bitmap, and the completion timing
	// wheel.
	schedWords  int
	readyMask   []uint64
	compMask    []uint64
	storeMask   []uint64
	waiters     []uint64
	bucketHead  []int32
	bucketOcc   []uint64
	wheelNext   []int32
	wheelPrev   []int32
	wheelBucket []int32
	wheelCount  int
	overflow    []int32

	// halted marks this thread finished (halt committed, or its pipeline
	// drained with nowhere to fetch from).
	halted bool

	// detD / detDTLB are the Section VII anomaly detectors over this
	// thread's data-side shadows (nil unless Config.DetectAnomalies is set
	// in a SafeSpec mode).
	detD, detDTLB *shadow.Detector

	// st accumulates this thread's share of the run statistics (exported
	// via Stats.PerThread for SMT runs).
	st ThreadStats
}

// CPU is the simulated core bound to one program.
type CPU struct {
	cfg  Config
	prog *isa.Program
	// ms / bp alias thread 0's views for the accessor surface (Mem, MemSys,
	// Predictor) and as the home of the shared committed structures.
	ms *MemSystem
	bp *bpred.Predictor

	// ths holds the hardware threads; len(ths) == cfg.NumThreads().
	ths []thread

	// refSched selects the reference O(ROB) scan scheduler instead of the
	// event-driven one (differential-testing hook).
	refSched bool

	cycle uint64
	// halted reports the whole core stopped (every thread halted).
	halted bool
	// active records whether any stage changed state this cycle; when
	// false the core can fast-forward to the next scheduled event.
	active bool
	// trace, when non-nil, receives per-event debug lines.
	trace io.Writer

	// St accumulates run statistics across all threads.
	St Stats

	// sampleOcc enables per-cycle shadow occupancy sampling.
	sampleOcc bool

	// intro, when non-nil, receives the deep counters and occupancy
	// samples behind -introspect (see introspect.go). Guarded like trace.
	intro *Introspection
}

// New builds a CPU for prog with the given configuration, loading the
// program image (code pages, data segments, declared regions) into a fresh
// memory.
func New(cfg Config, prog *isa.Program) *CPU {
	return NewWith(cfg, prog, BuildMemory(prog))
}

// BuildMemory loads prog's image (code pages, data segments, declared
// regions) into a fresh architectural memory. Callers that reuse one
// simulator across runs build the memory once, enable its write journal,
// and roll it back between runs instead of rebuilding page tables and data
// frames per run.
func BuildMemory(prog *isa.Program) *mem.Memory {
	m := mem.New()
	// Map the code region (user-readable: fetch is a user access).
	codeBytes := uint64(len(prog.Code)) * isa.BytesPerInstr
	for va := isa.CodeBase; va < isa.CodeBase+codeBytes+mem.PageSize; va += mem.PageSize {
		m.EnsureMapped(va, mem.PermUser|mem.PermKernel)
	}
	for _, r := range prog.Regions {
		perm := mem.Perm(mem.PermUser | mem.PermKernel)
		if r.Kernel {
			perm = mem.PermKernel
		}
		for va := r.Base; va < r.Base+r.Size+mem.PageSize-1; va += mem.PageSize {
			m.EnsureMapped(va, perm)
		}
	}
	m.LoadImage(prog.Data, prog.KernelData)
	return m
}

// NewWith builds a CPU for prog around a preloaded memory (see BuildMemory).
func NewWith(cfg Config, prog *isa.Program, m *mem.Memory) *CPU {
	c := &CPU{}
	c.Reset(cfg, prog, m)
	return c
}

// Reset rebinds the CPU to (cfg, prog, m) as if freshly constructed,
// reusing every allocated structure whose geometry is unchanged: the ROB
// partitions and fetch rings, the cache hierarchy, TLBs, branch predictor
// and shadow structures are cleared in place rather than reallocated. m
// must be a memory holding prog's loaded image (a fresh BuildMemory result,
// or a journaled one rolled back to its post-load state). A reset CPU
// produces results identical to a new one; sweep executors rely on that to
// reuse one simulator per goroutine across cells.
func (c *CPU) Reset(cfg Config, prog *isa.Program, m *mem.Memory) {
	cfg = cfg.Normalize()
	old := c.cfg // zero value on first use
	nT := cfg.NumThreads()

	// Shared committed structures live in thread 0's MemSystem view.
	if c.ms == nil {
		c.ms = &MemSystem{}
	}
	ms := c.ms
	ms.Mode = cfg.Mode
	ms.Mem = m
	if ms.Hier != nil && old.Hier == cfg.Hier {
		ms.Hier.Reset()
	} else {
		ms.Hier = cache.NewHierarchy(cfg.Hier)
	}
	if ms.ITLB != nil && old.ITLB == cfg.ITLB {
		ms.ITLB.Reset()
	} else {
		ms.ITLB = tlb.New(cfg.ITLB)
	}
	if ms.DTLB != nil && old.DTLB == cfg.DTLB {
		ms.DTLB.Reset()
	} else {
		ms.DTLB = tlb.New(cfg.DTLB)
	}
	if ms.Walk == nil {
		ms.Walk = &tlb.Walker{}
	}
	*ms.Walk = tlb.Walker{Mem: m, BaseLatency: cfg.WalkerLatency}
	ms.FaultsReturnData = cfg.FaultsReturnData
	ms.WalkerLatency = cfg.WalkerLatency
	if cfg.Mode.SafeSpec() {
		ms.ShD = resetShadow(ms.ShD, cfg.ShadowD)
		ms.ShI = resetShadow(ms.ShI, cfg.ShadowI)
		ms.ShDTLB = resetShadow(ms.ShDTLB, cfg.ShadowDTLB)
		ms.ShITLB = resetShadow(ms.ShITLB, cfg.ShadowITLB)
	} else {
		ms.ShD, ms.ShI, ms.ShDTLB, ms.ShITLB = nil, nil, nil, nil
	}

	if c.bp != nil && old.Bpred == cfg.Bpred {
		c.bp.Reset()
	} else {
		c.bp = bpred.New(cfg.Bpred)
	}

	if len(c.ths) != nT {
		c.ths = make([]thread, nT)
	}
	// Static partition: each thread owns ROBSize/n ROB slots and 1/n of the
	// IQ/LSQ/checkpoint capacity. For one thread these are the full sizes.
	robPer := cfg.ROBSize / nT
	iqPer := maxInt(cfg.IQSize/nT, 1)
	ldqPer := maxInt(cfg.LDQSize/nT, 1)
	stqPer := maxInt(cfg.STQSize/nT, 1)
	tagsPer := maxInt(cfg.MaxBranchTags/nT, 1)
	fbCap := 2*cfg.DispatchWidth + cfg.FetchWidth
	c.cfg = cfg

	for i := range c.ths {
		t := &c.ths[i]
		t.id = i
		if i == 0 {
			t.ms = ms
			t.bp = c.bp
		} else {
			t.ms = resetSiblingMS(t.ms, ms, cfg)
			if t.bp != nil && t.bp.SharesTablesWith(c.bp) {
				t.bp.ResetPrivate()
			} else {
				t.bp = c.bp.SiblingView()
			}
		}

		// Recycle RAS snapshots still held by in-flight state from a
		// previous run, then drop the pool if the buffer size changed.
		for j := range t.rob {
			t.putRASBuf(t.rob[j].rasSnap)
			t.rob[j] = entry{}
		}
		for j := range t.fetchBuf {
			t.putRASBuf(t.fetchBuf[j].rasSnap)
			t.fetchBuf[j] = fetchRec{}
		}
		if old.Bpred.RASEntries != cfg.Bpred.RASEntries {
			t.rasFree = nil
		}
		if len(t.rob) != robPer {
			t.rob = make([]entry, robPer)
		}
		if len(t.fetchBuf) != fbCap {
			t.fetchBuf = make([]fetchRec, fbCap)
		}
		t.iqMax, t.ldqMax, t.stqMax, t.tagsMax = iqPer, ldqPer, stqPer, tagsPer
		c.schedReset(t)

		t.regs = [isa.RegCount]int64{}
		t.renm = [isa.RegCount]renameRef{}
		t.head, t.count = 0, 0
		t.seqCtr, t.iqCount, t.ldqCount, t.stqCount = 0, 0, 0, 0
		t.activeTags, t.fenceActive = 0, 0
		t.fetchPC = prog.Entry
		if t.id < len(prog.ThreadEntries) {
			t.fetchPC = prog.ThreadEntries[t.id]
		}
		t.fetchValid = true
		t.fetchStallUntil = 0
		t.fbHead, t.fbLen = 0, 0
		t.lastFetchLine = ^uint64(0)
		t.lastFetchPALine = 0
		t.pendingIH, t.pendingITLBH = shadow.Handle{}, shadow.Handle{}
		t.nPendingDH = 0
		t.halted = false
		t.st = ThreadStats{}

		if cfg.DetectAnomalies && cfg.Mode.SafeSpec() {
			// Floors at 1/4 of capacity: benign 99.99th-percentile occupancy
			// sits well below that (Figures 6-9), a contention attack must
			// exceed it.
			t.detD = shadow.NewDetector(cfg.ShadowD.Entries/4, 4, 1024)
			t.detDTLB = shadow.NewDetector(cfg.ShadowDTLB.Entries/4, 4, 1024)
		} else {
			t.detD, t.detDTLB = nil, nil
		}
	}

	c.prog = prog
	c.cycle, c.halted, c.active = 0, false, false
	c.trace = nil
	c.St = Stats{}
	c.sampleOcc = false
	c.intro = nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// resetSiblingMS (re)builds a sibling hardware thread's memory-system view:
// the committed structures — memory, cache hierarchy, TLBs, page walker —
// are shared with the primary view, while the shadow structures are private
// to the thread (SafeSpec speculative state is per-context by design).
func resetSiblingMS(t *MemSystem, primary *MemSystem, cfg Config) *MemSystem {
	if t == nil {
		t = &MemSystem{}
	}
	t.Mode = primary.Mode
	t.Mem = primary.Mem
	t.Hier = primary.Hier
	t.ITLB = primary.ITLB
	t.DTLB = primary.DTLB
	t.Walk = primary.Walk
	t.FaultsReturnData = primary.FaultsReturnData
	t.WalkerLatency = primary.WalkerLatency
	if cfg.Mode.SafeSpec() {
		t.ShD = resetShadow(t.ShD, cfg.ShadowD)
		t.ShI = resetShadow(t.ShI, cfg.ShadowI)
		t.ShDTLB = resetShadow(t.ShDTLB, cfg.ShadowDTLB)
		t.ShITLB = resetShadow(t.ShITLB, cfg.ShadowITLB)
	} else {
		t.ShD, t.ShI, t.ShDTLB, t.ShITLB = nil, nil, nil, nil
	}
	return t
}

// resetShadow clears s in place when its policy matches, detaching any
// occupancy histogram so each run samples into a fresh one; otherwise it
// builds a new structure.
func resetShadow(s *shadow.Structure, policy shadow.Policy) *shadow.Structure {
	if s != nil && s.Policy() == policy {
		s.Reset()
		s.Occupancy = nil
		return s
	}
	return shadow.New(policy)
}

// Detectors returns thread 0's anomaly detectors (nil when disabled).
func (c *CPU) Detectors() (d, dtlb *shadow.Detector) {
	return c.ths[0].detD, c.ths[0].detDTLB
}

// Mem exposes the architectural memory (examples and attacks read results
// out of it after a run).
func (c *CPU) Mem() *mem.Memory { return c.ms.Mem }

// MemSys exposes thread 0's memory system (tests inspect cache/shadow
// state).
func (c *CPU) MemSys() *MemSystem { return c.ms }

// MemSysOf exposes the given thread's memory-system view.
func (c *CPU) MemSysOf(tid int) *MemSystem { return c.ths[tid].ms }

// Predictor exposes thread 0's branch predictor view (attack helpers poison
// the shared tables through it).
func (c *CPU) Predictor() *bpred.Predictor { return c.bp }

// PredictorOf exposes the given thread's predictor view. All views share
// the PHT and BTB tables.
func (c *CPU) PredictorOf(tid int) *bpred.Predictor { return c.ths[tid].bp }

// Threads returns the number of hardware threads of this core.
func (c *CPU) Threads() int { return len(c.ths) }

// Reg returns the committed architectural value of r on thread 0.
func (c *CPU) Reg(r isa.Reg) int64 { return c.ths[0].regs[r] }

// RegOf returns the committed architectural value of r on thread tid.
func (c *CPU) RegOf(tid int, r isa.Reg) int64 { return c.ths[tid].regs[r] }

// Cycle returns the current cycle count.
func (c *CPU) Cycle() uint64 { return c.cycle }

// Halted reports whether every thread has stopped.
func (c *CPU) Halted() bool { return c.halted }

// ThreadHalted reports whether thread tid has stopped.
func (c *CPU) ThreadHalted(tid int) bool { return c.ths[tid].halted }

// EnableOccupancySampling attaches occupancy histograms (sized to each
// structure's capacity) to every thread's shadow structures and samples
// them every cycle. Call before Run. No-op in baseline mode.
func (c *CPU) EnableOccupancySampling() {
	if !c.cfg.Mode.SafeSpec() {
		return
	}
	c.sampleOcc = true
	for i := range c.ths {
		ms := c.ths[i].ms
		attach(ms.ShD)
		attach(ms.ShI)
		attach(ms.ShDTLB)
		attach(ms.ShITLB)
	}
}

// Run executes until the program halts or a run limit is reached. It
// returns the accumulated statistics.
func (c *CPU) Run() *Stats {
	for !c.halted && c.cycle < c.cfg.MaxCycles && c.St.Committed < c.cfg.MaxInstrs {
		c.Step()
	}
	c.finalizeStats()
	return &c.St
}

// Step advances the core by one cycle, fast-forwarding over idle cycles
// (all in-flight operations waiting on memory, nothing to fetch or commit)
// to keep simulation time proportional to activity rather than latency.
//
// SMT interleave policy (deterministic): the commit, execute and dispatch
// stages share their widths across threads, visiting threads round-robin
// starting at cycle mod n; fetch is fully owned by thread cycle mod n each
// cycle. With one thread every rotation degenerates to the original
// single-thread stage order.
func (c *CPU) Step() {
	c.cycle++
	c.St.Cycles++
	c.active = false
	n := len(c.ths)
	start := 0
	if n > 1 {
		start = int(c.cycle % uint64(n))
	}

	commitBudget := c.cfg.CommitWidth
	for k := 0; k < n; k++ {
		t := &c.ths[(start+k)%n]
		if !t.halted {
			c.commit(t, &commitBudget)
		}
	}
	if c.refreshHalted() {
		return
	}

	issued, loads, stores := 0, 0, 0
	for k := 0; k < n; k++ {
		t := &c.ths[(start+k)%n]
		if !t.halted {
			c.execute(t, &issued, &loads, &stores)
		}
	}
	dispatchBudget := c.cfg.DispatchWidth
	for k := 0; k < n; k++ {
		t := &c.ths[(start+k)%n]
		if !t.halted {
			c.dispatch(t, &dispatchBudget)
		}
	}
	ft := &c.ths[start]
	if !ft.halted {
		c.fetch(ft)
	}

	if c.sampleOcc {
		for i := range c.ths {
			c.ths[i].ms.SampleOccupancy()
		}
	}
	if c.intro != nil {
		c.sampleIntrospection()
	}
	for i := range c.ths {
		t := &c.ths[i]
		if t.detD != nil {
			t.detD.Observe(t.ms.ShD.Len())
			t.detDTLB.Observe(t.ms.ShDTLB.Len())
		}
	}
	// Deadlock backstop: an empty per-thread pipeline with nowhere to fetch
	// from means that thread ran off the end of its code.
	for i := range c.ths {
		t := &c.ths[i]
		if !t.halted && t.count == 0 && t.fbLen == 0 && !t.fetchValid {
			t.halted = true
		}
	}
	if c.refreshHalted() {
		return
	}
	if !c.active {
		c.fastForward()
	}
}

// refreshHalted recomputes the core-wide halt state (all threads halted).
func (c *CPU) refreshHalted() bool {
	for i := range c.ths {
		if !c.ths[i].halted {
			return false
		}
	}
	c.halted = true
	return true
}

// fastForward jumps the clock to just before the next scheduled event when
// the current cycle saw no state change: the very same stage outcomes would
// repeat every cycle until an execution completes, a front-end stall
// expires, or (under SMT) a runnable thread's next fetch slot comes up. The
// event scheduler peeks each thread's completion wheel; the reference
// scheduler re-scans the windows.
func (c *CPU) fastForward() {
	n := len(c.ths)
	next := c.cfg.MaxCycles
	for i := range c.ths {
		t := &c.ths[i]
		if t.halted {
			continue
		}
		if c.refSched {
			for j := 0; j < t.count; j++ {
				e := &t.rob[t.slot(j)]
				if e.state == stExec && e.completeAt > c.cycle && e.completeAt < next {
					next = e.completeAt
				}
			}
		} else if at, ok := c.wheelPeek(t); ok && at < next {
			next = at
		}
		if !t.fetchValid {
			continue
		}
		if t.fetchStallUntil > c.cycle {
			if cand := alignFetchSlot(t.fetchStallUntil, t.id, n); cand < next {
				next = cand
			}
		} else if n > 1 && t.fbLen < 2*c.cfg.DispatchWidth {
			// A sibling thread that could fetch was simply not the fetch
			// owner this cycle; its next slot is a real event. (With one
			// thread this case cannot coexist with an idle cycle.)
			if cand := alignFetchSlot(c.cycle+1, t.id, n); cand < next {
				next = cand
			}
		}
	}
	c.skipTo(next)
}

// alignFetchSlot rounds base up to the next cycle owned by thread id under
// the round-robin fetch rotation (identity for a single-thread core).
func alignFetchSlot(base uint64, id, n int) uint64 {
	if n <= 1 {
		return base
	}
	r := (uint64(id) + uint64(n) - base%uint64(n)) % uint64(n)
	return base + r
}

// skipTo advances the clock to just before cycle `next`, charging the
// skipped cycles to the occupancy samplers and anomaly detectors in bulk.
func (c *CPU) skipTo(next uint64) {
	if next <= c.cycle+1 {
		return
	}
	skipped := next - c.cycle - 1
	c.cycle += skipped
	c.St.Cycles += skipped
	if c.sampleOcc && c.cfg.Mode.SafeSpec() {
		for i := range c.ths {
			ms := c.ths[i].ms
			ms.ShD.SampleN(skipped)
			ms.ShI.SampleN(skipped)
			ms.ShDTLB.SampleN(skipped)
			ms.ShITLB.SampleN(skipped)
		}
	}
	if in := c.intro; in != nil {
		// Occupancies are constant across a fast-forwarded span; charge the
		// whole span in one bulk observation per histogram.
		rob, iq, wheel := 0, 0, 0
		for i := range c.ths {
			t := &c.ths[i]
			rob += t.count
			iq += t.iqCount
			wheel += t.wheelCount
			if in.ThreadROB != nil {
				in.ThreadROB[i].AddN(t.count, skipped)
				in.ThreadIQ[i].AddN(t.iqCount, skipped)
			}
		}
		in.ROBOccupancy.AddN(rob, skipped)
		in.IQOccupancy.AddN(iq, skipped)
		in.WheelOccupancy.AddN(wheel, skipped)
	}
	for i := range c.ths {
		t := &c.ths[i]
		if t.detD != nil {
			// Occupancy cannot change across skipped cycles, so the detectors
			// take the span in one bulk observation instead of a call per cycle.
			t.detD.ObserveN(t.ms.ShD.Len(), skipped)
			t.detDTLB.ObserveN(t.ms.ShDTLB.Len(), skipped)
		}
	}
}

func attach(s *shadow.Structure) {
	if s.Occupancy == nil {
		s.Occupancy = newOccHist(s.Policy().Entries)
	}
}

// fbNext returns the next free fetch-buffer ring slot (zeroed by the pop
// that vacated it) for in-place construction; fbCommit publishes it. The
// ring is sized so the front end can never overflow it.
func (t *thread) fbNext() *fetchRec {
	s := t.fbHead + t.fbLen
	if n := len(t.fetchBuf); s >= n {
		s -= n
	}
	return &t.fetchBuf[s]
}

// fbCommit appends the record built in the fbNext slot to the ring.
func (t *thread) fbCommit() { t.fbLen++ }

// fbFront returns the oldest buffered fetch record.
func (t *thread) fbFront() *fetchRec { return &t.fetchBuf[t.fbHead] }

// fbPop discards the oldest buffered fetch record.
func (t *thread) fbPop() {
	t.fetchBuf[t.fbHead] = fetchRec{}
	t.fbHead = (t.fbHead + 1) % len(t.fetchBuf)
	t.fbLen--
}

// getRASBuf returns a snapshot buffer of RAS depth, recycling released ones.
func (c *CPU) getRASBuf(t *thread) []int {
	if n := len(t.rasFree); n > 0 {
		buf := t.rasFree[n-1]
		t.rasFree = t.rasFree[:n-1]
		return buf
	}
	return make([]int, c.cfg.Bpred.RASEntries)
}

// putRASBuf recycles a snapshot buffer; nil is ignored.
func (t *thread) putRASBuf(buf []int) {
	if buf != nil {
		t.rasFree = append(t.rasFree, buf)
	}
}

// releaseRASSnap recycles an entry's RAS snapshot after its branch resolved.
func (t *thread) releaseRASSnap(e *entry) {
	if e.rasSnap != nil {
		t.putRASBuf(e.rasSnap)
		e.rasSnap = nil
	}
}

// ordinal returns the position of ROB slot idx relative to head, or -1 if
// the slot is not live.
func (t *thread) ordinal(idx int) int {
	o := idx - t.head
	if o < 0 {
		o += len(t.rob)
	}
	if o >= t.count {
		return -1
	}
	return o
}

// live reports whether slot idx currently holds the entry with sequence seq.
func (t *thread) live(idx int, seq uint64) bool {
	return t.ordinal(idx) >= 0 && t.rob[idx].seq == seq
}

// slot returns the ROB index of the i-th oldest live entry.
func (t *thread) slot(i int) int {
	s := t.head + i
	if n := len(t.rob); s >= n {
		s -= n
	}
	return s
}

// tail returns the ROB index one past the youngest live entry.
func (t *thread) tail() int {
	tl := t.head + t.count
	if n := len(t.rob); tl >= n {
		tl -= n
	}
	return tl
}

// resolveSrc reads an operand: from the committed register file, or from an
// in-flight producer if the rename reference is still live.
func (t *thread) resolveSrc(r isa.Reg, ref renameRef) (int64, bool) {
	if r == isa.Zero {
		return 0, true
	}
	if !ref.has || !t.live(ref.idx, ref.seq) {
		return t.regs[r], true
	}
	p := &t.rob[ref.idx]
	if p.state != stDone {
		return 0, false
	}
	return p.val, true
}

// renameLookup returns the current rename mapping for r.
func (t *thread) renameLookup(r isa.Reg) renameRef {
	if r == isa.Zero {
		return renameRef{}
	}
	ref := t.renm[r]
	if ref.has && t.live(ref.idx, ref.seq) {
		return ref
	}
	return renameRef{}
}

// rebuildRename reconstructs the rename map from the surviving ROB entries
// after a squash.
func (t *thread) rebuildRename() {
	for i := range t.renm {
		t.renm[i] = renameRef{}
	}
	for i := 0; i < t.count; i++ {
		idx := t.slot(i)
		e := &t.rob[idx]
		if e.in.HasDest() {
			t.renm[e.in.Rd] = renameRef{has: true, idx: idx, seq: e.seq}
		}
	}
}

// String summarizes the core state (debug helper).
func (c *CPU) String() string {
	rob, robCap := 0, 0
	for i := range c.ths {
		rob += c.ths[i].count
		robCap += len(c.ths[i].rob)
	}
	return fmt.Sprintf("cpu{cycle=%d threads=%d rob=%d/%d fetchPC=%d committed=%d}",
		c.cycle, len(c.ths), rob, robCap, c.ths[0].fetchPC, c.St.Committed)
}
