// Package pipeline implements the out-of-order core of the SafeSpec
// simulator: a 6-wide fetch/dispatch/issue/commit machine with a 224-entry
// reorder buffer, 96-entry issue window, 72/56-entry load/store queues,
// branch-mask based selective squash, precise faults at commit, and —
// under SafeSpec modes — shadow-state allocation, motion and annulment
// exactly as Section III/IV of the paper describes.
//
// The simulator is cycle-level: every cycle runs commit, writeback/issue,
// dispatch and fetch stages over the reorder buffer. Architectural values
// flow through ROB tags (implicit register renaming); timing flows through
// the cache/TLB/shadow models in MemSystem.
package pipeline

import (
	"fmt"
	"io"

	"safespec/internal/bpred"
	"safespec/internal/cache"
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
	"safespec/internal/tlb"
)

// Config parameterizes the core. Zero values are replaced by the paper's
// Skylake-like defaults (Table I) via Normalize.
type Config struct {
	// Widths (Table I: 6-way issue, up to 6 micro-ops commit per cycle).
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	// Structure sizes (Table I).
	ROBSize int // 224
	IQSize  int // 96
	LDQSize int // 72
	STQSize int // 56

	// MaxBranchTags bounds the number of unresolved predicted branches in
	// flight (checkpoint count).
	MaxBranchTags int

	// RedirectPenalty is the front-end refill delay after a squash.
	RedirectPenalty int
	// WalkerLatency is the fixed page-walk overhead.
	WalkerLatency int
	// StoreForwardLatency is the store-to-load forwarding time.
	StoreForwardLatency int

	// Mode selects baseline / SafeSpec-WFB / SafeSpec-WFC.
	Mode Mode
	// FaultsReturnData models Meltdown-vulnerable data forwarding on
	// permission faults (Intel-like; default true).
	FaultsReturnData bool

	// Bpred, Hier, ITLB, DTLB configure the predictor and memory system.
	Bpred bpred.Config
	Hier  cache.HierarchyConfig
	ITLB  tlb.Config
	DTLB  tlb.Config

	// Shadow policies (used when Mode.SafeSpec()).
	ShadowD    shadow.Policy
	ShadowI    shadow.Policy
	ShadowDTLB shadow.Policy
	ShadowITLB shadow.Policy

	// Run limits.
	MaxCycles uint64
	MaxInstrs uint64

	// DetectAnomalies enables the Section VII attack detector: per-cycle
	// watchdogs on the data-side shadow structures that flag abnormal
	// occupancy growth (the signature of a transient speculation attack
	// trying to create contention).
	DetectAnomalies bool
}

// Normalize fills unset fields with the paper's defaults and returns the
// completed config.
func (c Config) Normalize() Config {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&c.FetchWidth, 6)
	def(&c.DispatchWidth, 6)
	def(&c.IssueWidth, 6)
	def(&c.CommitWidth, 6)
	def(&c.ROBSize, 224)
	def(&c.IQSize, 96)
	def(&c.LDQSize, 72)
	def(&c.STQSize, 56)
	def(&c.MaxBranchTags, 64)
	def(&c.RedirectPenalty, 3)
	def(&c.WalkerLatency, 5)
	def(&c.StoreForwardLatency, 5)
	if c.Bpred == (bpred.Config{}) {
		c.Bpred = bpred.DefaultConfig()
	}
	if c.Hier.MemLatency == 0 {
		c.Hier = cache.SkylakeHierarchy()
	}
	if c.ITLB.Entries == 0 {
		c.ITLB = tlb.SkylakeITLB()
	}
	if c.DTLB.Entries == 0 {
		c.DTLB = tlb.SkylakeDTLB()
	}
	if c.ShadowD.Entries == 0 {
		c.ShadowD = shadow.Policy{Name: "shadow-dcache", Entries: c.LDQSize}
	}
	if c.ShadowI.Entries == 0 {
		c.ShadowI = shadow.Policy{Name: "shadow-icache", Entries: c.ROBSize}
	}
	if c.ShadowDTLB.Entries == 0 {
		c.ShadowDTLB = shadow.Policy{Name: "shadow-dtlb", Entries: c.LDQSize}
	}
	if c.ShadowITLB.Entries == 0 {
		c.ShadowITLB = shadow.Policy{Name: "shadow-itlb", Entries: c.ROBSize}
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 50_000_000
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 5_000_000
	}
	return c
}

type entryState uint8

const (
	stWait entryState = iota // dispatched, waiting for operands / retry
	stExec                   // executing, completes at completeAt
	stDone                   // result available, ready to commit
)

// renameRef points at an in-flight producer.
type renameRef struct {
	has bool
	idx int
	seq uint64
}

// entry is one reorder-buffer slot.
type entry struct {
	seq uint64
	pc  int
	in  isa.Instr

	state      entryState
	completeAt uint64
	val        int64

	// Operand renaming captured at dispatch.
	reg1, reg2 isa.Reg
	src1, src2 renameRef

	// Branch state.
	mask         uint64 // unresolved older branch tags
	tagBit       uint64 // this entry's own tag (predicted branches)
	predTaken    bool
	predTarget   int
	actualTaken  bool
	actualTarget int
	histSnap     uint64
	rasTop       int
	rasSnap      []int

	// Memory state.
	isLoad, isStore bool
	addrReady       bool
	va, pa          uint64
	sdata           int64

	// Fault raised at commit.
	fault mem.Fault

	// Shadow handles owned by this instruction: dHandles[:nDH] holds at
	// most one fetch-transferred set (iTLB-walk PTE lines) plus one data
	// access's worth, inline so dispatch/issue never allocate.
	dHandles   [2 * maxAccessDH]shadow.Handle
	nDH        int
	dtlbHandle shadow.Handle
	iHandle    shadow.Handle
	itlbHandle shadow.Handle
}

// dhs returns the owned shadow D-cache handles as a slice view.
func (e *entry) dhs() []shadow.Handle { return e.dHandles[:e.nDH] }

// addDHs appends acquired shadow D-cache handles to the entry's inline set.
func (e *entry) addDHs(hs []shadow.Handle) {
	e.nDH += copy(e.dHandles[e.nDH:], hs)
}

// fetchRec is one fetched-but-not-dispatched instruction.
type fetchRec struct {
	pc         int
	in         isa.Instr
	predicted  bool // consults the predictor (can mispredict)
	predTaken  bool
	predTarget int
	histSnap   uint64
	rasTop     int
	rasSnap    []int
	iHandle    shadow.Handle
	itlbHandle shadow.Handle
	// dHandles[:nDH] holds shadow D-cache entries from the line's iTLB-walk
	// PTE reads; they transfer to the first dispatched instruction.
	dHandles [maxAccessDH]shadow.Handle
	nDH      int
}

// CPU is the simulated core bound to one program.
type CPU struct {
	cfg  Config
	prog *isa.Program
	ms   *MemSystem
	bp   *bpred.Predictor

	regs [isa.RegCount]int64
	renm [isa.RegCount]renameRef

	rob   []entry
	head  int
	count int

	seqCtr      uint64
	iqCount     int
	ldqCount    int
	stqCount    int
	activeTags  uint64
	fenceActive int

	fetchPC         int
	fetchValid      bool
	fetchStallUntil uint64
	// fetchBuf is a fixed-capacity ring (fbHead/fbLen) sized at build time:
	// the front end holds at most two dispatch groups plus one fetch group,
	// so the buffer never reallocates.
	fetchBuf        []fetchRec
	fbHead, fbLen   int
	lastFetchLine   uint64
	lastFetchPALine uint64
	pendingIH       shadow.Handle
	pendingITLBH    shadow.Handle
	pendingDH       [maxAccessDH]shadow.Handle
	nPendingDH      int

	// rasFree recycles RAS snapshot buffers (one live per in-flight
	// predicted branch), so prediction allocates nothing in steady state.
	rasFree [][]int

	// Event-driven scheduler state (sched.go): slot bitmaps for ready and
	// completed work, per-producer wakeup rows, the in-flight store bitmap,
	// and the completion timing wheel. refSched selects the reference
	// O(ROB) scan scheduler instead (differential-testing hook).
	schedWords  int
	readyMask   []uint64
	compMask    []uint64
	storeMask   []uint64
	waiters     []uint64
	bucketHead  []int32
	bucketOcc   []uint64
	wheelNext   []int32
	wheelPrev   []int32
	wheelBucket []int32
	wheelCount  int
	overflow    []int32
	refSched    bool

	cycle  uint64
	halted bool
	// active records whether any stage changed state this cycle; when
	// false the core can fast-forward to the next scheduled event.
	active bool
	// trace, when non-nil, receives per-event debug lines.
	trace io.Writer

	// detD / detDTLB are the Section VII anomaly detectors (nil unless
	// Config.DetectAnomalies is set in a SafeSpec mode).
	detD, detDTLB *shadow.Detector

	// St accumulates run statistics.
	St Stats

	// sampleOcc enables per-cycle shadow occupancy sampling.
	sampleOcc bool

	// intro, when non-nil, receives the deep counters and occupancy
	// samples behind -introspect (see introspect.go). Guarded like trace.
	intro *Introspection
}

// New builds a CPU for prog with the given configuration, loading the
// program image (code pages, data segments, declared regions) into a fresh
// memory.
func New(cfg Config, prog *isa.Program) *CPU {
	return NewWith(cfg, prog, BuildMemory(prog))
}

// BuildMemory loads prog's image (code pages, data segments, declared
// regions) into a fresh architectural memory. Callers that reuse one
// simulator across runs build the memory once, enable its write journal,
// and roll it back between runs instead of rebuilding page tables and data
// frames per run.
func BuildMemory(prog *isa.Program) *mem.Memory {
	m := mem.New()
	// Map the code region (user-readable: fetch is a user access).
	codeBytes := uint64(len(prog.Code)) * isa.BytesPerInstr
	for va := isa.CodeBase; va < isa.CodeBase+codeBytes+mem.PageSize; va += mem.PageSize {
		m.EnsureMapped(va, mem.PermUser|mem.PermKernel)
	}
	for _, r := range prog.Regions {
		perm := mem.Perm(mem.PermUser | mem.PermKernel)
		if r.Kernel {
			perm = mem.PermKernel
		}
		for va := r.Base; va < r.Base+r.Size+mem.PageSize-1; va += mem.PageSize {
			m.EnsureMapped(va, perm)
		}
	}
	m.LoadImage(prog.Data, prog.KernelData)
	return m
}

// NewWith builds a CPU for prog around a preloaded memory (see BuildMemory).
func NewWith(cfg Config, prog *isa.Program, m *mem.Memory) *CPU {
	c := &CPU{}
	c.Reset(cfg, prog, m)
	return c
}

// Reset rebinds the CPU to (cfg, prog, m) as if freshly constructed,
// reusing every allocated structure whose geometry is unchanged: the ROB
// and fetch ring, the cache hierarchy, TLBs, branch predictor and shadow
// structures are cleared in place rather than reallocated. m must be a
// memory holding prog's loaded image (a fresh BuildMemory result, or a
// journaled one rolled back to its post-load state). A reset CPU produces
// results identical to a new one; sweep executors rely on that to reuse one
// simulator per goroutine across cells.
func (c *CPU) Reset(cfg Config, prog *isa.Program, m *mem.Memory) {
	cfg = cfg.Normalize()
	old := c.cfg // zero value on first use

	if c.ms == nil {
		c.ms = &MemSystem{}
	}
	ms := c.ms
	ms.Mode = cfg.Mode
	ms.Mem = m
	if ms.Hier != nil && old.Hier == cfg.Hier {
		ms.Hier.Reset()
	} else {
		ms.Hier = cache.NewHierarchy(cfg.Hier)
	}
	if ms.ITLB != nil && old.ITLB == cfg.ITLB {
		ms.ITLB.Reset()
	} else {
		ms.ITLB = tlb.New(cfg.ITLB)
	}
	if ms.DTLB != nil && old.DTLB == cfg.DTLB {
		ms.DTLB.Reset()
	} else {
		ms.DTLB = tlb.New(cfg.DTLB)
	}
	if ms.Walk == nil {
		ms.Walk = &tlb.Walker{}
	}
	*ms.Walk = tlb.Walker{Mem: m, BaseLatency: cfg.WalkerLatency}
	ms.FaultsReturnData = cfg.FaultsReturnData
	ms.WalkerLatency = cfg.WalkerLatency
	if cfg.Mode.SafeSpec() {
		ms.ShD = resetShadow(ms.ShD, cfg.ShadowD)
		ms.ShI = resetShadow(ms.ShI, cfg.ShadowI)
		ms.ShDTLB = resetShadow(ms.ShDTLB, cfg.ShadowDTLB)
		ms.ShITLB = resetShadow(ms.ShITLB, cfg.ShadowITLB)
	} else {
		ms.ShD, ms.ShI, ms.ShDTLB, ms.ShITLB = nil, nil, nil, nil
	}

	if c.bp != nil && old.Bpred == cfg.Bpred {
		c.bp.Reset()
	} else {
		c.bp = bpred.New(cfg.Bpred)
	}

	// Recycle RAS snapshots still held by in-flight state from a previous
	// run, then drop the pool if the buffer size changed.
	for i := range c.rob {
		c.putRASBuf(c.rob[i].rasSnap)
		c.rob[i] = entry{}
	}
	for i := range c.fetchBuf {
		c.putRASBuf(c.fetchBuf[i].rasSnap)
		c.fetchBuf[i] = fetchRec{}
	}
	if old.Bpred.RASEntries != cfg.Bpred.RASEntries {
		c.rasFree = nil
	}
	if len(c.rob) != cfg.ROBSize {
		c.rob = make([]entry, cfg.ROBSize)
	}
	if fbCap := 2*cfg.DispatchWidth + cfg.FetchWidth; len(c.fetchBuf) != fbCap {
		c.fetchBuf = make([]fetchRec, fbCap)
	}

	c.cfg = cfg
	c.schedReset()
	c.prog = prog
	c.regs = [isa.RegCount]int64{}
	c.renm = [isa.RegCount]renameRef{}
	c.head, c.count = 0, 0
	c.seqCtr, c.iqCount, c.ldqCount, c.stqCount = 0, 0, 0, 0
	c.activeTags, c.fenceActive = 0, 0
	c.fetchPC = prog.Entry
	c.fetchValid = true
	c.fetchStallUntil = 0
	c.fbHead, c.fbLen = 0, 0
	c.lastFetchLine = ^uint64(0)
	c.lastFetchPALine = 0
	c.pendingIH, c.pendingITLBH = shadow.Handle{}, shadow.Handle{}
	c.nPendingDH = 0
	c.cycle, c.halted, c.active = 0, false, false
	c.trace = nil
	c.St = Stats{}
	c.sampleOcc = false
	c.intro = nil

	if cfg.DetectAnomalies && cfg.Mode.SafeSpec() {
		// Floors at 1/4 of capacity: benign 99.99th-percentile occupancy
		// sits well below that (Figures 6-9), a contention attack must
		// exceed it.
		c.detD = shadow.NewDetector(cfg.ShadowD.Entries/4, 4, 1024)
		c.detDTLB = shadow.NewDetector(cfg.ShadowDTLB.Entries/4, 4, 1024)
	} else {
		c.detD, c.detDTLB = nil, nil
	}
}

// resetShadow clears s in place when its policy matches, detaching any
// occupancy histogram so each run samples into a fresh one; otherwise it
// builds a new structure.
func resetShadow(s *shadow.Structure, policy shadow.Policy) *shadow.Structure {
	if s != nil && s.Policy() == policy {
		s.Reset()
		s.Occupancy = nil
		return s
	}
	return shadow.New(policy)
}

// Detectors returns the anomaly detectors (nil when disabled).
func (c *CPU) Detectors() (d, dtlb *shadow.Detector) { return c.detD, c.detDTLB }

// Mem exposes the architectural memory (examples and attacks read results
// out of it after a run).
func (c *CPU) Mem() *mem.Memory { return c.ms.Mem }

// MemSys exposes the memory system (tests inspect cache/shadow state).
func (c *CPU) MemSys() *MemSystem { return c.ms }

// Predictor exposes the branch predictor (attack helpers poison it).
func (c *CPU) Predictor() *bpred.Predictor { return c.bp }

// Reg returns the committed architectural value of r.
func (c *CPU) Reg(r isa.Reg) int64 { return c.regs[r] }

// Cycle returns the current cycle count.
func (c *CPU) Cycle() uint64 { return c.cycle }

// Halted reports whether the program has stopped.
func (c *CPU) Halted() bool { return c.halted }

// EnableOccupancySampling attaches occupancy histograms (sized to each
// structure's capacity) to the shadow structures and samples them every
// cycle. Call before Run. No-op in baseline mode.
func (c *CPU) EnableOccupancySampling() {
	if !c.cfg.Mode.SafeSpec() {
		return
	}
	c.sampleOcc = true
	attach(c.ms.ShD)
	attach(c.ms.ShI)
	attach(c.ms.ShDTLB)
	attach(c.ms.ShITLB)
}

// Run executes until the program halts or a run limit is reached. It
// returns the accumulated statistics.
func (c *CPU) Run() *Stats {
	for !c.halted && c.cycle < c.cfg.MaxCycles && c.St.Committed < c.cfg.MaxInstrs {
		c.Step()
	}
	c.finalizeStats()
	return &c.St
}

// Step advances the core by one cycle, fast-forwarding over idle cycles
// (all in-flight operations waiting on memory, nothing to fetch or commit)
// to keep simulation time proportional to activity rather than latency.
func (c *CPU) Step() {
	c.cycle++
	c.St.Cycles++
	c.active = false
	c.commit()
	if c.halted {
		return
	}
	c.execute()
	c.dispatch()
	c.fetch()
	if c.sampleOcc {
		c.ms.SampleOccupancy()
	}
	if c.intro != nil {
		c.sampleIntrospection()
	}
	if c.detD != nil {
		c.detD.Observe(c.ms.ShD.Len())
		c.detDTLB.Observe(c.ms.ShDTLB.Len())
	}
	// Deadlock backstop: an empty pipeline with nowhere to fetch from means
	// the program ran off the end of its code.
	if c.count == 0 && c.fbLen == 0 && !c.fetchValid {
		c.halted = true
		return
	}
	if !c.active {
		c.fastForward()
	}
}

// fastForward jumps the clock to just before the next scheduled event when
// the current cycle saw no state change: the very same stage outcomes would
// repeat every cycle until an execution completes or the front-end stall
// expires. The event scheduler peeks the completion wheel; the reference
// scheduler re-scans the window.
func (c *CPU) fastForward() {
	if c.refSched {
		c.fastForwardScan()
		return
	}
	c.fastForwardEvent()
}

// fastForwardScan derives the next event by scanning every in-flight entry.
func (c *CPU) fastForwardScan() {
	next := c.cfg.MaxCycles
	for i := 0; i < c.count; i++ {
		e := &c.rob[c.slot(i)]
		if e.state == stExec && e.completeAt > c.cycle && e.completeAt < next {
			next = e.completeAt
		}
	}
	if c.fetchValid && c.fetchStallUntil > c.cycle && c.fetchStallUntil < next {
		next = c.fetchStallUntil
	}
	c.skipTo(next)
}

// skipTo advances the clock to just before cycle `next`, charging the
// skipped cycles to the occupancy samplers and anomaly detectors in bulk.
func (c *CPU) skipTo(next uint64) {
	if next <= c.cycle+1 {
		return
	}
	skipped := next - c.cycle - 1
	c.cycle += skipped
	c.St.Cycles += skipped
	if c.sampleOcc && c.cfg.Mode.SafeSpec() {
		c.ms.ShD.SampleN(skipped)
		c.ms.ShI.SampleN(skipped)
		c.ms.ShDTLB.SampleN(skipped)
		c.ms.ShITLB.SampleN(skipped)
	}
	if in := c.intro; in != nil {
		// Occupancies are constant across a fast-forwarded span; charge the
		// whole span in one bulk observation per histogram.
		in.ROBOccupancy.AddN(c.count, skipped)
		in.IQOccupancy.AddN(c.iqCount, skipped)
		in.WheelOccupancy.AddN(c.wheelCount, skipped)
	}
	if c.detD != nil {
		// Occupancy cannot change across skipped cycles, so the detectors
		// take the span in one bulk observation instead of a call per cycle.
		c.detD.ObserveN(c.ms.ShD.Len(), skipped)
		c.detDTLB.ObserveN(c.ms.ShDTLB.Len(), skipped)
	}
}

func attach(s *shadow.Structure) {
	if s.Occupancy == nil {
		s.Occupancy = newOccHist(s.Policy().Entries)
	}
}

// fbNext returns the next free fetch-buffer ring slot (zeroed by the pop
// that vacated it) for in-place construction; fbCommit publishes it. The
// ring is sized so the front end can never overflow it.
func (c *CPU) fbNext() *fetchRec {
	s := c.fbHead + c.fbLen
	if n := len(c.fetchBuf); s >= n {
		s -= n
	}
	return &c.fetchBuf[s]
}

// fbCommit appends the record built in the fbNext slot to the ring.
func (c *CPU) fbCommit() { c.fbLen++ }

// fbFront returns the oldest buffered fetch record.
func (c *CPU) fbFront() *fetchRec { return &c.fetchBuf[c.fbHead] }

// fbPop discards the oldest buffered fetch record.
func (c *CPU) fbPop() {
	c.fetchBuf[c.fbHead] = fetchRec{}
	c.fbHead = (c.fbHead + 1) % len(c.fetchBuf)
	c.fbLen--
}

// getRASBuf returns a snapshot buffer of RAS depth, recycling released ones.
func (c *CPU) getRASBuf() []int {
	if n := len(c.rasFree); n > 0 {
		buf := c.rasFree[n-1]
		c.rasFree = c.rasFree[:n-1]
		return buf
	}
	return make([]int, c.cfg.Bpred.RASEntries)
}

// putRASBuf recycles a snapshot buffer; nil is ignored.
func (c *CPU) putRASBuf(buf []int) {
	if buf != nil {
		c.rasFree = append(c.rasFree, buf)
	}
}

// releaseRASSnap recycles an entry's RAS snapshot after its branch resolved.
func (c *CPU) releaseRASSnap(e *entry) {
	if e.rasSnap != nil {
		c.putRASBuf(e.rasSnap)
		e.rasSnap = nil
	}
}

// ordinal returns the position of ROB slot idx relative to head, or -1 if
// the slot is not live.
func (c *CPU) ordinal(idx int) int {
	o := idx - c.head
	if o < 0 {
		o += len(c.rob)
	}
	if o >= c.count {
		return -1
	}
	return o
}

// live reports whether slot idx currently holds the entry with sequence seq.
func (c *CPU) live(idx int, seq uint64) bool {
	return c.ordinal(idx) >= 0 && c.rob[idx].seq == seq
}

// slot returns the ROB index of the i-th oldest live entry.
func (c *CPU) slot(i int) int {
	s := c.head + i
	if n := len(c.rob); s >= n {
		s -= n
	}
	return s
}

// tail returns the ROB index one past the youngest live entry.
func (c *CPU) tail() int {
	t := c.head + c.count
	if n := len(c.rob); t >= n {
		t -= n
	}
	return t
}

// resolveSrc reads an operand: from the committed register file, or from an
// in-flight producer if the rename reference is still live.
func (c *CPU) resolveSrc(r isa.Reg, ref renameRef) (int64, bool) {
	if r == isa.Zero {
		return 0, true
	}
	if !ref.has || !c.live(ref.idx, ref.seq) {
		return c.regs[r], true
	}
	p := &c.rob[ref.idx]
	if p.state != stDone {
		return 0, false
	}
	return p.val, true
}

// renameLookup returns the current rename mapping for r.
func (c *CPU) renameLookup(r isa.Reg) renameRef {
	if r == isa.Zero {
		return renameRef{}
	}
	ref := c.renm[r]
	if ref.has && c.live(ref.idx, ref.seq) {
		return ref
	}
	return renameRef{}
}

// rebuildRename reconstructs the rename map from the surviving ROB entries
// after a squash.
func (c *CPU) rebuildRename() {
	for i := range c.renm {
		c.renm[i] = renameRef{}
	}
	for i := 0; i < c.count; i++ {
		idx := c.slot(i)
		e := &c.rob[idx]
		if e.in.HasDest() {
			c.renm[e.in.Rd] = renameRef{has: true, idx: idx, seq: e.seq}
		}
	}
}

// String summarizes the core state (debug helper).
func (c *CPU) String() string {
	return fmt.Sprintf("cpu{cycle=%d rob=%d/%d fetchPC=%d committed=%d}",
		c.cycle, c.count, len(c.rob), c.fetchPC, c.St.Committed)
}
