package pipeline

import (
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
)

// shadowZero is the invalid shadow handle.
var shadowZero shadow.Handle

// commit retires finished instructions from thread t's ROB head, in order.
// budget is the remaining CommitWidth shared across threads this cycle; one
// unit is consumed per committed instruction. Faults are raised here
// (precise exceptions): the faulting instruction's effects — including its
// shadow state, under WFC — are annulled, everything younger on the same
// thread is squashed, and that thread's front end vectors to the trap
// handler.
func (c *CPU) commit(t *thread, budget *int) {
	for *budget > 0 && t.count > 0 {
		idx := t.head
		e := &t.rob[idx]
		if e.state != stDone {
			return
		}
		c.active = true

		if e.fault != mem.FaultNone {
			if c.tracing() {
				c.tracef("TRAP    %s fault=%v", traceEntry(e), e.fault)
			}
			c.trap(t, e)
			return
		}
		if c.tracing() {
			c.tracef("commit  %s val=%d", traceEntry(e), e.val)
		}

		// Apply architectural effects.
		if e.in.HasDest() {
			t.regs[e.in.Rd] = e.val
			if ref := t.renm[e.in.Rd]; ref.has && ref.idx == idx && ref.seq == e.seq {
				t.renm[e.in.Rd] = renameRef{}
			}
		}
		switch isa.ClassOf(e.in.Op) {
		case isa.ClassStore:
			// TSO: the memory write and the cache update happen here, at
			// commit, so stores never expose speculative state (paper
			// Section IV-B).
			if err := t.ms.Mem.WritePhys(e.pa, e.sdata); err != nil {
				// Unmapped stores fault instead (checked at execute), so a
				// physical write failure is a simulator bug.
				panic("pipeline: committed store to unmapped frame")
			}
			t.ms.Hier.FillData(e.pa)
			c.St.CommittedStores++
			t.st.CommittedStores++
		case isa.ClassLoad:
			c.St.CommittedLoads++
			t.st.CommittedLoads++
		case isa.ClassFlush:
			// clflush takes effect at commit so that squashed flushes leave
			// no trace. It also purges the shadow caches: a flushed line
			// must not be observable anywhere.
			t.ms.FlushLine(e.va)
		case isa.ClassFence:
			t.fenceActive--
		case isa.ClassHalt:
			t.halted = true
		}

		// SafeSpec state motion: WFC moves at commit; under WFB anything
		// already moved at issue/resolution leaves nothing behind and this
		// call is a no-op (moveShadow is idempotent).
		if c.cfg.Mode.SafeSpec() {
			c.moveShadow(t, e)
		}

		if e.isLoad {
			t.ldqCount--
		}
		if e.isStore {
			t.stqCount--
			clearBit(t.storeMask, idx)
		}
		if e.tagBit != 0 {
			// A correctly-resolved branch already released its tag in
			// clearTag; reaching commit with a live tag means the branch
			// resolved this cycle — clear defensively.
			t.activeTags &^= e.tagBit
			e.tagBit = 0
		}
		// Branch resolution already recycled the RAS snapshot; keep the
		// free list exact if one ever survives to commit.
		t.releaseRASSnap(e)

		t.head = (t.head + 1) % len(t.rob)
		t.count--
		c.St.Committed++
		t.st.Committed++
		*budget--

		if t.halted {
			return
		}
	}
}

// trap raises the fault carried by e on thread t: e and everything younger
// on t are squashed (annulling their shadow state — this is what stops
// Meltdown under WFC), and t's front end vectors to the program's trap
// handler. Sibling threads are unaffected: faults are a per-context event.
func (c *CPU) trap(t *thread, e *entry) {
	c.St.Faults++
	t.st.Faults++
	handler := c.prog.TrapHandler

	// Squash the whole window including the faulting instruction itself.
	if in := c.intro; in != nil {
		in.TrapSquashes++
		in.SquashedByTrap += uint64(t.count) - 1 // minus the faulting instruction, matching Stats.Squashed
	}
	c.squashAll(t)
	c.St.Squashed-- // the faulting instruction counts as a fault, not a squash
	t.st.Squashed--

	if handler < 0 {
		t.halted = true
		return
	}
	c.St.Traps++
	t.st.Traps++
	t.fenceActive = 0
	c.flushFetch(t, handler)
}

// moveShadow transfers e's shadow state to the committed structures: cache
// lines to the cache hierarchy, translations to the TLBs (the "update
// committed state" arrow of Figure 3). Shared entries are force-freed: once
// the state is committed, remaining speculative references would hit the
// committed structures anyway.
func (c *CPU) moveShadow(t *thread, e *entry) {
	ms := t.ms
	if !c.cfg.Mode.SafeSpec() {
		return
	}
	for _, h := range e.dhs() {
		if ms.ShD.StillValid(h) {
			line := ms.ShD.ForceFree(h, true)
			ms.Hier.FillData(line)
		}
	}
	e.nDH = 0
	if e.dtlbHandle.Valid() && ms.ShDTLB.StillValid(e.dtlbHandle) {
		pl := ms.ShDTLB.PayloadOf(e.dtlbHandle)
		vpage := ms.ShDTLB.ForceFree(e.dtlbHandle, true)
		ms.DTLB.Fill(vpage, pl.Frame, mem.Perm(pl.Perm))
	}
	e.dtlbHandle = shadowZero
	if e.iHandle.Valid() && ms.ShI.StillValid(e.iHandle) {
		line := ms.ShI.ForceFree(e.iHandle, true)
		ms.Hier.FillInstr(line)
	}
	e.iHandle = shadowZero
	if e.itlbHandle.Valid() && ms.ShITLB.StillValid(e.itlbHandle) {
		pl := ms.ShITLB.PayloadOf(e.itlbHandle)
		vpage := ms.ShITLB.ForceFree(e.itlbHandle, true)
		ms.ITLB.Fill(vpage, pl.Frame, mem.Perm(pl.Perm))
	}
	e.itlbHandle = shadowZero
}
