package pipeline

import (
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
)

// shadowZero is the invalid shadow handle.
var shadowZero shadow.Handle

// commit retires up to CommitWidth finished instructions from the ROB head,
// in order. Faults are raised here (precise exceptions): the faulting
// instruction's effects — including its shadow state, under WFC — are
// annulled, everything younger is squashed, and the front end vectors to
// the trap handler.
func (c *CPU) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		idx := c.head
		e := &c.rob[idx]
		if e.state != stDone {
			return
		}
		c.active = true

		if e.fault != mem.FaultNone {
			if c.tracing() {
				c.tracef("TRAP    %s fault=%v", traceEntry(e), e.fault)
			}
			c.trap(e)
			return
		}
		if c.tracing() {
			c.tracef("commit  %s val=%d", traceEntry(e), e.val)
		}

		// Apply architectural effects.
		if e.in.HasDest() {
			c.regs[e.in.Rd] = e.val
			if ref := c.renm[e.in.Rd]; ref.has && ref.idx == idx && ref.seq == e.seq {
				c.renm[e.in.Rd] = renameRef{}
			}
		}
		switch isa.ClassOf(e.in.Op) {
		case isa.ClassStore:
			// TSO: the memory write and the cache update happen here, at
			// commit, so stores never expose speculative state (paper
			// Section IV-B).
			if err := c.ms.Mem.WritePhys(e.pa, e.sdata); err != nil {
				// Unmapped stores fault instead (checked at execute), so a
				// physical write failure is a simulator bug.
				panic("pipeline: committed store to unmapped frame")
			}
			c.ms.Hier.FillData(e.pa)
			c.St.CommittedStores++
		case isa.ClassLoad:
			c.St.CommittedLoads++
		case isa.ClassFlush:
			// clflush takes effect at commit so that squashed flushes leave
			// no trace. It also purges the shadow caches: a flushed line
			// must not be observable anywhere.
			c.ms.FlushLine(e.va)
		case isa.ClassFence:
			c.fenceActive--
		case isa.ClassHalt:
			c.halted = true
		}

		// SafeSpec state motion: WFC moves at commit; under WFB anything
		// already moved at issue/resolution leaves nothing behind and this
		// call is a no-op (moveShadow is idempotent).
		if c.cfg.Mode.SafeSpec() {
			c.moveShadow(e)
		}

		if e.isLoad {
			c.ldqCount--
		}
		if e.isStore {
			c.stqCount--
			clearBit(c.storeMask, idx)
		}
		if e.tagBit != 0 {
			// A correctly-resolved branch already released its tag in
			// clearTag; reaching commit with a live tag means the branch
			// resolved this cycle — clear defensively.
			c.activeTags &^= e.tagBit
			e.tagBit = 0
		}
		// Branch resolution already recycled the RAS snapshot; keep the
		// free list exact if one ever survives to commit.
		c.releaseRASSnap(e)

		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.St.Committed++

		if c.halted {
			return
		}
	}
}

// trap raises the fault carried by e: e and everything younger are
// squashed (annulling their shadow state — this is what stops Meltdown
// under WFC), and the front end vectors to the program's trap handler.
func (c *CPU) trap(e *entry) {
	c.St.Faults++
	handler := c.prog.TrapHandler

	// Squash the whole window including the faulting instruction itself.
	if in := c.intro; in != nil {
		in.TrapSquashes++
		in.SquashedByTrap += uint64(c.count) - 1 // minus the faulting instruction, matching Stats.Squashed
	}
	c.squashAll()
	c.St.Squashed-- // the faulting instruction counts as a fault, not a squash

	if handler < 0 {
		c.halted = true
		return
	}
	c.St.Traps++
	c.fenceActive = 0
	c.flushFetch(handler)
}

// moveShadow transfers e's shadow state to the committed structures: cache
// lines to the cache hierarchy, translations to the TLBs (the "update
// committed state" arrow of Figure 3). Shared entries are force-freed: once
// the state is committed, remaining speculative references would hit the
// committed structures anyway.
func (c *CPU) moveShadow(e *entry) {
	ms := c.ms
	if !c.cfg.Mode.SafeSpec() {
		return
	}
	for _, h := range e.dhs() {
		if ms.ShD.StillValid(h) {
			line := ms.ShD.ForceFree(h, true)
			ms.Hier.FillData(line)
		}
	}
	e.nDH = 0
	if e.dtlbHandle.Valid() && ms.ShDTLB.StillValid(e.dtlbHandle) {
		pl := ms.ShDTLB.PayloadOf(e.dtlbHandle)
		vpage := ms.ShDTLB.ForceFree(e.dtlbHandle, true)
		ms.DTLB.Fill(vpage, pl.Frame, mem.Perm(pl.Perm))
	}
	e.dtlbHandle = shadowZero
	if e.iHandle.Valid() && ms.ShI.StillValid(e.iHandle) {
		line := ms.ShI.ForceFree(e.iHandle, true)
		ms.Hier.FillInstr(line)
	}
	e.iHandle = shadowZero
	if e.itlbHandle.Valid() && ms.ShITLB.StillValid(e.itlbHandle) {
		pl := ms.ShITLB.PayloadOf(e.itlbHandle)
		vpage := ms.ShITLB.ForceFree(e.itlbHandle, true)
		ms.ITLB.Fill(vpage, pl.Frame, mem.Perm(pl.Perm))
	}
	e.itlbHandle = shadowZero
}
