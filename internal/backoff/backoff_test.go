package backoff

import (
	"testing"
	"time"
)

func TestPauseGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 200 * time.Millisecond, Cap: 2 * time.Second}
	want := []time.Duration{
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second,
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Pause(attempt); got != w {
			t.Errorf("attempt %d: pause %v, want %v", attempt, got, w)
		}
	}
}

func TestPauseCustomFactor(t *testing.T) {
	p := Policy{Base: time.Second, Cap: time.Minute, Factor: 3}
	if got := p.Pause(2); got != 9*time.Second {
		t.Errorf("factor 3 attempt 2: %v, want 9s", got)
	}
}

func TestPauseUncapped(t *testing.T) {
	p := Policy{Base: time.Second}
	if got := p.Pause(4); got != 16*time.Second {
		t.Errorf("uncapped attempt 4: %v, want 16s", got)
	}
}

func TestHintOverrides(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second}
	if got := p.PauseHint(3, 7*time.Second); got != 7*time.Second {
		t.Errorf("hint ignored: %v", got)
	}
	if got := p.PauseHint(0, 0); got != p.Pause(0) {
		t.Errorf("absent hint must fall back to the schedule: %v", got)
	}
}

// TestJitterDeterministicAndBounded: a seeded source replays the same
// jittered schedule, and every pause stays within [pause*(1-Jitter), pause].
func TestJitterDeterministicAndBounded(t *testing.T) {
	mk := func() Policy {
		return Policy{Base: time.Second, Cap: 10 * time.Second, Jitter: 0.5, Rand: NewSource(42)}
	}
	a, b := mk(), mk()
	for attempt := 0; attempt < 6; attempt++ {
		pa, pb := a.Pause(attempt), b.Pause(attempt)
		if pa != pb {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, pa, pb)
		}
		bare := Policy{Base: time.Second, Cap: 10 * time.Second}.Pause(attempt)
		if pa > bare || pa < time.Duration(float64(bare)*0.5) {
			t.Errorf("attempt %d: jittered pause %v outside [%v, %v]", attempt, pa,
				time.Duration(float64(bare)*0.5), bare)
		}
	}
}

// TestJitterWithoutRandDisabled: Jitter set but no source must leave the
// schedule exact, not panic or silently randomize.
func TestJitterWithoutRandDisabled(t *testing.T) {
	p := Policy{Base: time.Second, Cap: 4 * time.Second, Jitter: 0.5}
	if got := p.Pause(1); got != 2*time.Second {
		t.Errorf("jitter without source changed the pause: %v", got)
	}
}
