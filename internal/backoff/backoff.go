// Package backoff centralizes the retry pauses used across the grid:
// capped exponential growth with optional deterministic jitter and a
// uniform place to honor a server's Retry-After hint. Before this package
// each retry loop (worker lease, worker report, remote executor) grew its
// own ad-hoc schedule; now they all describe the same thing with a Policy
// and differ only in constants.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Policy describes a capped exponential backoff schedule. The zero value
// is unusable (zero pauses); construct one with explicit Base and Cap.
type Policy struct {
	// Base is the pause before the first retry (attempt 0).
	Base time.Duration
	// Cap bounds the grown pause (<= 0 means uncapped).
	Cap time.Duration
	// Factor is the per-attempt growth multiplier (<= 1 selects 2).
	Factor float64
	// Jitter spreads each pause uniformly over [pause*(1-Jitter), pause]
	// to de-synchronize a fleet retrying the same coordinator. 0 disables
	// jitter; values are clamped to [0, 1). Jitter requires Rand.
	Jitter float64
	// Rand supplies jitter randomness. A seeded Source makes the whole
	// schedule deterministic — the property chaos tests rely on. nil
	// disables jitter regardless of Jitter.
	Rand *Source
}

// Pause returns the pause before retry `attempt` (0-based): Base grown by
// Factor^attempt, capped, jittered.
func (p Policy) Pause(attempt int) time.Duration {
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	pause := float64(p.Base)
	for i := 0; i < attempt; i++ {
		pause *= factor
		if p.Cap > 0 && pause >= float64(p.Cap) {
			pause = float64(p.Cap)
			break
		}
	}
	if p.Cap > 0 && pause > float64(p.Cap) {
		pause = float64(p.Cap)
	}
	if p.Jitter > 0 && p.Rand != nil {
		j := min(p.Jitter, 0.999)
		pause *= 1 - j*p.Rand.Float64()
	}
	return time.Duration(pause)
}

// PauseHint is Pause unless the server supplied an authoritative
// Retry-After delay (hint > 0), which wins outright: the server knows when
// its rate bucket refills or its restart completes better than any
// client-side schedule.
func (p Policy) PauseHint(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	return p.Pause(attempt)
}

// Source is a mutex-guarded seeded random source, safe for use by the
// concurrent retry loops that share one Policy.
type Source struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSource returns a deterministic jitter source for seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns the next value in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}
