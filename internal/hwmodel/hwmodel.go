// Package hwmodel is an analytic area/power/access-time model for the
// fully associative shadow structures SafeSpec adds, standing in for the
// CACTI 5.3 runs behind Table V of the paper.
//
// The model follows CACTI's decomposition for small fully associative
// arrays: per-entry CAM tag cells plus SRAM payload cells, with a
// superlinear full-associativity penalty capturing matchline/driver growth.
// Constants are calibrated at 40nm so the paper's two configurations land
// near the published numbers:
//
//	Secure (worst-case sizing):  ~290 mW, ~9.8 mm²
//	WFC (99.99% sizing):         ~35 mW,  ~1.2 mm²
//
// Absolute silicon numbers from an analytic model are indicative only; the
// quantity of interest is the relative overhead of the two sizing
// strategies, which the model preserves.
package hwmodel

import (
	"fmt"
	"math"
)

// StructureSpec describes one shadow structure to be synthesized.
type StructureSpec struct {
	// Name identifies the structure in the report.
	Name string
	// Entries is the number of fully associative entries.
	Entries int
	// TagBits is the CAM-searched key width.
	TagBits int
	// PayloadBits is the SRAM payload per entry (cache line or translation).
	PayloadBits int
}

// Bits returns the total storage bits of the structure.
func (s StructureSpec) Bits() int { return s.Entries * (s.TagBits + s.PayloadBits) }

// Tech holds the technology calibration constants.
type Tech struct {
	// Node is the feature size in nm (reporting only).
	Node int
	// SRAMCellUM2 is the area of one SRAM payload bit in µm².
	SRAMCellUM2 float64
	// CAMCellUM2 is the area of one CAM tag bit in µm².
	CAMCellUM2 float64
	// FAPenaltyDiv controls the superlinear full-associativity penalty:
	// area and power scale by (1 + entries/FAPenaltyDiv).
	FAPenaltyDiv float64
	// MWPerMM2 converts active area to power at the nominal frequency
	// (search + leakage, CACTI-style aggregate).
	MWPerMM2 float64
	// RefPowerMW and RefAreaMM2 are the reference-core denominators used
	// for the percentage columns of Table V.
	RefPowerMW float64
	RefAreaMM2 float64
	// AccessT0NS and AccessPerLog are the access-time model constants.
	AccessT0NS   float64
	AccessPerLog float64
}

// Tech40nm returns the calibrated 40nm technology point used by Table V.
func Tech40nm() Tech {
	return Tech{
		Node:         40,
		SRAMCellUM2:  30.0,
		CAMCellUM2:   60.0,
		FAPenaltyDiv: 320,
		MWPerMM2:     29.6,
		RefPowerMW:   1100,
		RefAreaMM2:   57.6,
		AccessT0NS:   0.25,
		AccessPerLog: 0.055,
	}
}

func (t Tech) faPenalty(entries int) float64 {
	return 1 + float64(entries)/t.FAPenaltyDiv
}

// AreaMM2 returns the structure's estimated area.
func (t Tech) AreaMM2(s StructureSpec) float64 {
	cam := float64(s.Entries*s.TagBits) * t.CAMCellUM2
	sram := float64(s.Entries*s.PayloadBits) * t.SRAMCellUM2
	return (cam + sram) * t.faPenalty(s.Entries) / 1e6
}

// PowerMW returns the structure's estimated power (search + leakage),
// which CACTI reports roughly proportional to active area for these small
// always-searched arrays.
func (t Tech) PowerMW(s StructureSpec) float64 {
	return t.AreaMM2(s) * t.MWPerMM2
}

// AccessNS returns the structure's estimated access time.
func (t Tech) AccessNS(s StructureSpec) float64 {
	if s.Entries <= 0 {
		return 0
	}
	return t.AccessT0NS + t.AccessPerLog*math.Log2(float64(s.Entries))
}

// ShadowSizes holds the entry counts of the four shadow structures.
type ShadowSizes struct {
	DCache, ICache, DTLB, ITLB int
}

// SecureSizes returns the worst-case provisioning of Section V: data-side
// structures bounded by the load queue, instruction-side by the ROB.
func SecureSizes(ldq, rob int) ShadowSizes {
	return ShadowSizes{DCache: ldq, ICache: rob, DTLB: ldq, ITLB: rob}
}

// Specs expands the sizes into synthesizable structure specs: 64-byte line
// payloads with 40-bit line tags for the caches; translation payloads with
// virtual-page tags for the TLBs.
func (z ShadowSizes) Specs() []StructureSpec {
	return []StructureSpec{
		{Name: "shadow-dcache", Entries: z.DCache, TagBits: 40, PayloadBits: 64 * 8},
		{Name: "shadow-icache", Entries: z.ICache, TagBits: 40, PayloadBits: 64 * 8},
		{Name: "shadow-dtlb", Entries: z.DTLB, TagBits: 36, PayloadBits: 32},
		{Name: "shadow-itlb", Entries: z.ITLB, TagBits: 36, PayloadBits: 32},
	}
}

// Report is one Table V row.
type Report struct {
	// Label names the configuration ("Secure", "WFC").
	Label string
	// PowerMW / AreaMM2 are the absolute estimates.
	PowerMW, AreaMM2 float64
	// PowerPct / AreaPct are relative to the reference core.
	PowerPct, AreaPct float64
	// AccessNS is the worst structure access time.
	AccessNS float64
	// PerStructure breaks the totals down.
	PerStructure []StructureReport
}

// StructureReport is the per-structure breakdown.
type StructureReport struct {
	Name             string
	Entries          int
	PowerMW, AreaMM2 float64
	AccessNS         float64
}

// Evaluate produces a Table V row for the given sizing.
func Evaluate(t Tech, label string, sizes ShadowSizes) Report {
	r := Report{Label: label}
	for _, s := range sizes.Specs() {
		a := t.AreaMM2(s)
		p := t.PowerMW(s)
		ns := t.AccessNS(s)
		r.PerStructure = append(r.PerStructure, StructureReport{
			Name: s.Name, Entries: s.Entries, PowerMW: p, AreaMM2: a, AccessNS: ns,
		})
		r.PowerMW += p
		r.AreaMM2 += a
		if ns > r.AccessNS {
			r.AccessNS = ns
		}
	}
	r.PowerPct = 100 * r.PowerMW / t.RefPowerMW
	r.AreaPct = 100 * r.AreaMM2 / t.RefAreaMM2
	return r
}

// TableV computes both rows of Table V: Secure (worst-case) and WFC
// (99.99th-percentile sizing, either measured or the paper's defaults).
func TableV(t Tech, secure, wfc ShadowSizes) [2]Report {
	return [2]Report{
		Evaluate(t, "Secure", secure),
		Evaluate(t, "SafeSpec WFC", wfc),
	}
}

// PaperWFCSizes returns the 99.99% sizing the paper derives from its
// SPEC2017 characterization (Figures 6-9 maxima rounded up).
func PaperWFCSizes() ShadowSizes {
	return ShadowSizes{DCache: 28, ICache: 25, DTLB: 25, ITLB: 10}
}

// String renders the report as a Table V style line.
func (r Report) String() string {
	return fmt.Sprintf("%-14s power=%7.2f mW (%5.1f%%)  area=%6.2f mm² (%5.1f%%)  access=%.2f ns",
		r.Label, r.PowerMW, r.PowerPct, r.AreaMM2, r.AreaPct, r.AccessNS)
}
