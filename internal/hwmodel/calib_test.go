package hwmodel

import "testing"

func TestCalib(t *testing.T) {
	tech := Tech40nm()
	rows := TableV(tech, SecureSizes(72, 224), PaperWFCSizes())
	for _, r := range rows {
		t.Logf("%s", r)
	}
}
