package hwmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTableVCalibration pins the model to the paper's published Table V
// within tolerance: Secure 290.27 mW / 26.4% / 9.79 mm² / 17%;
// WFC 35.14 mW / 3% / 1.17 mm² / 2%.
func TestTableVCalibration(t *testing.T) {
	rows := TableV(Tech40nm(), SecureSizes(72, 224), PaperWFCSizes())
	secure, wfc := rows[0], rows[1]

	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	if !within(secure.PowerMW, 290.27, 0.05) {
		t.Errorf("Secure power = %.2f, want ≈290.27", secure.PowerMW)
	}
	if !within(secure.AreaMM2, 9.79, 0.05) {
		t.Errorf("Secure area = %.2f, want ≈9.79", secure.AreaMM2)
	}
	if !within(secure.PowerPct, 26.4, 0.07) {
		t.Errorf("Secure power%% = %.1f, want ≈26.4", secure.PowerPct)
	}
	if !within(secure.AreaPct, 17, 0.07) {
		t.Errorf("Secure area%% = %.1f, want ≈17", secure.AreaPct)
	}
	if !within(wfc.PowerMW, 35.14, 0.10) {
		t.Errorf("WFC power = %.2f, want ≈35.14", wfc.PowerMW)
	}
	if !within(wfc.AreaMM2, 1.17, 0.10) {
		t.Errorf("WFC area = %.2f, want ≈1.17", wfc.AreaMM2)
	}
}

func TestSecureMuchCostlierThanWFC(t *testing.T) {
	rows := TableV(Tech40nm(), SecureSizes(72, 224), PaperWFCSizes())
	if rows[0].AreaMM2 < 5*rows[1].AreaMM2 {
		t.Errorf("Secure/WFC area ratio too small: %.2f / %.2f", rows[0].AreaMM2, rows[1].AreaMM2)
	}
	if rows[0].PowerMW < 5*rows[1].PowerMW {
		t.Errorf("Secure/WFC power ratio too small: %.2f / %.2f", rows[0].PowerMW, rows[1].PowerMW)
	}
}

func TestSecureSizes(t *testing.T) {
	z := SecureSizes(72, 224)
	if z.DCache != 72 || z.DTLB != 72 || z.ICache != 224 || z.ITLB != 224 {
		t.Errorf("SecureSizes = %+v", z)
	}
}

func TestSpecsCoverAllStructures(t *testing.T) {
	specs := ShadowSizes{DCache: 1, ICache: 2, DTLB: 3, ITLB: 4}.Specs()
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	names := map[string]int{}
	for _, s := range specs {
		names[s.Name] = s.Entries
		if s.Bits() != s.Entries*(s.TagBits+s.PayloadBits) {
			t.Errorf("%s: Bits() inconsistent", s.Name)
		}
	}
	if names["shadow-dcache"] != 1 || names["shadow-itlb"] != 4 {
		t.Errorf("spec mapping wrong: %v", names)
	}
}

func TestEvaluateBreakdownSums(t *testing.T) {
	r := Evaluate(Tech40nm(), "x", SecureSizes(72, 224))
	var power, area float64
	for _, s := range r.PerStructure {
		power += s.PowerMW
		area += s.AreaMM2
	}
	if math.Abs(power-r.PowerMW) > 1e-9 || math.Abs(area-r.AreaMM2) > 1e-9 {
		t.Error("per-structure breakdown does not sum to totals")
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
}

// Property: area, power and access time are monotonically non-decreasing
// in entry count.
func TestMonotoneInEntriesProperty(t *testing.T) {
	tech := Tech40nm()
	f := func(a, b uint8) bool {
		ea, eb := int(a)+1, int(b)+1
		if ea > eb {
			ea, eb = eb, ea
		}
		sa := StructureSpec{Name: "x", Entries: ea, TagBits: 40, PayloadBits: 512}
		sb := StructureSpec{Name: "x", Entries: eb, TagBits: 40, PayloadBits: 512}
		return tech.AreaMM2(sa) <= tech.AreaMM2(sb) &&
			tech.PowerMW(sa) <= tech.PowerMW(sb) &&
			tech.AccessNS(sa) <= tech.AccessNS(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccessTimeZeroEntries(t *testing.T) {
	if Tech40nm().AccessNS(StructureSpec{Entries: 0}) != 0 {
		t.Error("zero-entry access time should be 0")
	}
}
