// Package stats provides the counters, histograms and summary statistics
// used by the SafeSpec evaluation: occupancy histograms with high-percentile
// extraction (the paper sizes shadow structures at the 99.99th percentile),
// rates, and geometric means (used for the Figure 11 IPC summary).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Histogram counts integer-valued samples in [0, max]. It is used to record
// per-cycle occupancy of the shadow structures.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    uint64
	max    int
}

// NewHistogram returns a histogram accepting samples in [0, max]. Samples
// above max are clamped to max.
func NewHistogram(max int) *Histogram {
	if max < 0 {
		max = 0
	}
	return &Histogram{counts: make([]uint64, max+1)}
}

// AddN records n identical samples (used when the simulator fast-forwards
// over idle cycles: the occupancy was constant for all of them).
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v] += n
	h.n += n
	h.sum += uint64(v) * n
	if v > h.max {
		h.max = v
	}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.n++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Merge folds o's samples into h (used to aggregate per-thread occupancy
// histograms into a core-wide view). Values beyond h's range clamp to its
// top bucket, like Add.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for v, n := range o.counts {
		if n != 0 {
			h.AddN(v, n)
		}
	}
}

// N returns the number of samples recorded.
func (h *Histogram) N() uint64 { return h.n }

// Max returns the largest sample recorded.
func (h *Histogram) Max() int { return h.max }

// Mean returns the arithmetic mean of the samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Percentile returns the smallest value v such that at least p (0 < p <= 1)
// of the samples are <= v. This is the quantity plotted in Figures 6-9 of
// the paper with p = 0.9999.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	need := uint64(math.Ceil(p * float64(h.n)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= need {
			return v
		}
	}
	return h.max
}

// Count returns the number of samples equal to v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.2f p99.99=%d max=%d}",
		h.n, h.Mean(), h.Percentile(0.9999), h.max)
}

// Rate returns num/den, or 0 when den == 0.
func Rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 if no positive entries exist.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 if empty). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// histogramJSON is the wire form of a Histogram: the full counts slice
// (length = capacity+1), from which every derived field is recomputed on
// decode. Keeping only counts makes the encoding canonical — two equal
// histograms always serialize to identical bytes.
type histogramJSON struct {
	Counts []uint64 `json:"counts"`
}

// MarshalJSON encodes the histogram for the sweep result cache and the grid
// wire protocol.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Counts: h.counts})
}

// UnmarshalJSON decodes a histogram, recomputing the sample count, sum and
// maximum from the counts. The round trip is exact: all fields are integers.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Counts) == 0 {
		w.Counts = make([]uint64, 1)
	}
	h.counts = w.Counts
	h.n, h.sum, h.max = 0, 0, 0
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		h.n += c
		h.sum += uint64(v) * c
		h.max = v
	}
	return nil
}

// tTable95 holds two-sided 95% Student's t critical values for 1..30 degrees
// of freedom; larger samples use the normal approximation 1.96.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval (Student's t on the sample standard deviation). The
// half-width is 0 for fewer than two samples, where no spread is estimable;
// it is the quantity behind the seed-fan error bars on the figures.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	t := 1.96
	if df := n - 1; df <= len(tTable95) {
		t = tTable95[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}
