package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 5; i++ {
		h.Add(i)
	}
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if h.Max() != 4 {
		t.Errorf("Max = %d, want 4", h.Max())
	}
	if got := h.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if h.Count(3) != 1 || h.Count(9) != 0 {
		t.Error("Count wrong")
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-3)
	h.Add(100)
	if h.Count(0) != 1 || h.Count(4) != 1 {
		t.Errorf("clamping failed: %v %v", h.Count(0), h.Count(4))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(4)
	if h.Percentile(0.9999) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramAddN(t *testing.T) {
	a := NewHistogram(16)
	b := NewHistogram(16)
	for i := 0; i < 7; i++ {
		a.Add(3)
	}
	b.AddN(3, 7)
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Percentile(0.5) != b.Percentile(0.5) {
		t.Errorf("AddN(3,7) != 7×Add(3): %v vs %v", a, b)
	}
	b.AddN(5, 0) // no-op
	if b.N() != 7 {
		t.Error("AddN with n=0 must not record")
	}
}

func TestPercentileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(1000)
		h := NewHistogram(256)
		samples := make([]int, n)
		for i := range samples {
			samples[i] = rng.Intn(250)
			h.Add(samples[i])
		}
		sort.Ints(samples)
		for _, p := range []float64{0.5, 0.9, 0.99, 0.9999, 1.0} {
			idx := int(math.Ceil(p*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			want := samples[idx]
			if got := h.Percentile(p); got != want {
				t.Fatalf("trial %d p=%v: Percentile = %d, want %d", trial, p, got, want)
			}
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	h := NewHistogram(10)
	h.Add(5)
	if h.Percentile(-1) != 5 {
		t.Error("negative p should still return the first sample value")
	}
	if h.Percentile(2) != h.Max() {
		t.Error("p>=1 should return the max")
	}
}

func TestRate(t *testing.T) {
	if Rate(1, 0) != 0 {
		t.Error("Rate with zero denominator must be 0")
	}
	if Rate(1, 4) != 0.25 {
		t.Error("Rate(1,4) != 0.25")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	// Non-positive entries are ignored.
	got = GeoMean([]float64{2, 8, 0, -3})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with non-positives = %v, want 4", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd Median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even Median wrong")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 {
		t.Error("Median mutated its input")
	}
}

// Property: the percentile is monotone in p, and every percentile is within
// [0, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(255)
		for _, v := range raw {
			h.Add(int(v))
		}
		prev := -1
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999, 1} {
			v := h.Percentile(p)
			if v < prev || v < 0 || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean is bounded by [min, max] of the recorded samples.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(255)
		lo, hi := 255, 0
		for _, v := range raw {
			h.Add(int(v))
			if int(v) < lo {
				lo = int(v)
			}
			if int(v) > hi {
				hi = int(v)
			}
		}
		m := h.Mean()
		return m >= float64(lo)-1e-9 && m <= float64(hi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(10)
	h.Add(3)
	h.AddN(7, 5)
	h.Add(0)
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != h.N() || back.Max() != h.Max() || back.Mean() != h.Mean() {
		t.Errorf("round trip mutated: n=%d/%d max=%d/%d mean=%f/%f",
			back.N(), h.N(), back.Max(), h.Max(), back.Mean(), h.Mean())
	}
	for _, p := range []float64{0.5, 0.9999, 1} {
		if back.Percentile(p) != h.Percentile(p) {
			t.Errorf("p%.4f differs: %d vs %d", p, back.Percentile(p), h.Percentile(p))
		}
	}
	// Capacity survives: a sample above max still clamps identically.
	back.Add(99)
	if back.Max() != 10 {
		t.Errorf("capacity lost: max %d after clamped add", back.Max())
	}
	// Canonical: equal histograms encode to equal bytes.
	b2, _ := json.Marshal(h)
	if string(b) != string(b2) {
		t.Error("encoding not canonical")
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	var back Histogram
	if err := json.Unmarshal([]byte(`{"counts":[]}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 || back.Percentile(0.9999) != 0 {
		t.Errorf("empty decode broken: %v", &back)
	}
	back.Add(5) // must not panic; clamps to capacity 0
	if back.Max() != 0 {
		t.Errorf("zero-capacity clamp broken: %d", back.Max())
	}
}

func TestMeanCI95(t *testing.T) {
	if m, ci := MeanCI95(nil); m != 0 || ci != 0 {
		t.Errorf("empty: %f ± %f", m, ci)
	}
	if m, ci := MeanCI95([]float64{2.5}); m != 2.5 || ci != 0 {
		t.Errorf("single sample: %f ± %f", m, ci)
	}
	// n=5, sd=1: t(4)=2.776 -> half = 2.776/sqrt(5).
	xs := []float64{1, 2, 3, 4, 5} // mean 3, sd sqrt(2.5)
	m, ci := MeanCI95(xs)
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if m != 3 || math.Abs(ci-want) > 1e-9 {
		t.Errorf("got %f ± %f, want 3 ± %f", m, ci, want)
	}
	// Identical samples: zero-width interval.
	if _, ci := MeanCI95([]float64{7, 7, 7, 7}); ci != 0 {
		t.Errorf("constant samples: ci %f", ci)
	}
	// Large n falls back to the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	_, ci = MeanCI95(big)
	sd := math.Sqrt(25.0 / 99.0) // Bernoulli-ish sample sd
	if math.Abs(ci-1.96*sd/10) > 1e-9 {
		t.Errorf("large-n ci %f, want %f", ci, 1.96*sd/10)
	}
}
