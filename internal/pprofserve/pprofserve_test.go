package pprofserve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return res.StatusCode, string(body)
}

// TestHandlerMountsPprof: the pprof index must be reachable under
// /debug/pprof/ with or without an ops handler mounted.
func TestHandlerMountsPprof(t *testing.T) {
	for _, tc := range []struct {
		name string
		ops  http.Handler
	}{
		{"no ops", nil},
		{"with ops", http.NotFoundHandler()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(Handler(tc.ops))
			defer srv.Close()
			status, body := get(t, srv.URL+"/debug/pprof/")
			if status != http.StatusOK {
				t.Fatalf("pprof index: status %d, want 200", status)
			}
			if !strings.Contains(body, "goroutine") {
				t.Errorf("pprof index does not list profiles:\n%s", body)
			}
		})
	}
}

// TestHandlerRoutesOps: paths outside /debug/pprof/ reach the mounted ops
// handler — the same wiring the coordinator uses for /metrics and /status
// and the worker uses for /metrics.
func TestHandlerRoutesOps(t *testing.T) {
	ops := http.NewServeMux()
	ops.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, "# TYPE safespec_test_total counter\nsafespec_test_total 1\n")
	})
	srv := httptest.NewServer(Handler(ops))
	defer srv.Close()

	status, body := get(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d, want 200", status)
	}
	if !strings.Contains(body, "safespec_test_total 1") {
		t.Errorf("/metrics body missing sample:\n%s", body)
	}
	// The pprof tree still wins over the catch-all.
	if status, _ := get(t, srv.URL+"/debug/pprof/"); status != http.StatusOK {
		t.Errorf("pprof index with ops mounted: status %d, want 200", status)
	}
}

// TestHandlerNeverExposesAPI: the ops listener must not answer the
// authenticated fleet API paths unless the ops handler itself mounts them
// (it never does) — a scraper hitting the wrong port gets 404, not a lease.
func TestHandlerNeverExposesAPI(t *testing.T) {
	ops := http.NewServeMux()
	ops.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {})
	srv := httptest.NewServer(Handler(ops))
	defer srv.Close()
	for _, path := range []string{"/v1/lease", "/v1/sweeps", "/v1/stats"} {
		res, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Errorf("POST %s on ops listener: status %d, want 404", path, res.StatusCode)
		}
	}
}

// TestServeBadAddr: an unbindable address must fail startup synchronously.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:0", nil); err == nil {
		t.Fatal("Serve on a bogus address succeeded")
	}
}

// TestServeReturnsBoundAddr: Serve reports the resolved address (so mains
// can log it) and the listener actually answers.
func TestServeReturnsBoundAddr(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	status, _ := get(t, "http://"+addr.String()+"/debug/pprof/")
	if status != http.StatusOK {
		t.Errorf("bound listener: status %d, want 200", status)
	}
}
