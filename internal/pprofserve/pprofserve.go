// Package pprofserve backs the -pprof flag of the fleet binaries
// (safespec-worker, safespec-coordinator): it exposes net/http/pprof on a
// dedicated listener so a live fleet member can be profiled
// (`go tool pprof http://host:port/debug/pprof/profile`) without ever
// mounting the debug handlers on the authenticated /v1/* API mux.
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"time"
)

// Serve binds addr and serves the pprof handlers in the background. It
// returns once the listener is bound (so a bad address fails startup), and
// prints the resolved endpoint to stderr.
func Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		srv := &http.Server{ReadHeaderTimeout: 10 * time.Second}
		_ = srv.Serve(ln) // DefaultServeMux carries the pprof handlers
	}()
	return nil
}
