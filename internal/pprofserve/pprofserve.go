// Package pprofserve backs the -pprof flag of the fleet binaries
// (safespec-worker, safespec-coordinator): it exposes net/http/pprof — and
// any extra operations handlers the binary mounts, such as the
// coordinator's /metrics and /status — on a dedicated listener, so a live
// fleet member can be profiled and scraped without ever mounting debug
// handlers on the authenticated /v1/* API mux. Keep the listener on
// loopback or a firewalled operations network: everything on it is
// deliberately unauthenticated.
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"time"
)

// Serve binds addr and serves the pprof handlers — plus ops (for every
// path outside /debug/pprof/) when non-nil — in the background. It returns
// once the listener is bound (so a bad address fails startup), and prints
// the resolved endpoints to stderr.
func Serve(addr string, ops http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.DefaultServeMux) // carries the pprof handlers
	extra := ""
	if ops != nil {
		mux.Handle("/", ops)
		extra = fmt.Sprintf(" (metrics on http://%s/metrics, status on http://%s/status)", ln.Addr(), ln.Addr())
	}
	fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/%s\n", ln.Addr(), extra)
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		_ = srv.Serve(ln)
	}()
	return nil
}
