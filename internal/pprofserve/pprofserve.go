// Package pprofserve backs the -pprof flag of the fleet binaries
// (safespec-worker, safespec-coordinator): it exposes net/http/pprof — and
// any extra operations handlers the binary mounts, such as the
// coordinator's /metrics and /status or the worker's /metrics — on a
// dedicated listener, so a live fleet member can be profiled and scraped
// without ever mounting debug handlers on the authenticated /v1/* API mux.
// Keep the listener on loopback or a firewalled operations network:
// everything on it is deliberately unauthenticated.
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"time"
)

// Handler builds the operations mux: /debug/pprof/* always, and every
// other path routed to ops when non-nil (404 otherwise). Split out from
// Serve so tests can drive the surface through httptest without binding a
// real port.
func Handler(ops http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.DefaultServeMux) // carries the pprof handlers
	if ops != nil {
		mux.Handle("/", ops)
	}
	return mux
}

// Serve binds addr and serves Handler(ops) in the background. It returns
// the resolved listen address once the listener is bound (so a bad address
// fails startup); the caller owns announcing it through its own logger.
func Serve(addr string, ops http.Handler) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-pprof %s: %w", addr, err)
	}
	go func() {
		srv := &http.Server{Handler: Handler(ops), ReadHeaderTimeout: 10 * time.Second}
		_ = srv.Serve(ln)
	}()
	return ln.Addr(), nil
}
