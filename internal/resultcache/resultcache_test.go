package resultcache

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/sweep"
)

// countingExecutor counts how many jobs actually reach simulation.
type countingExecutor struct {
	executed atomic.Int64
	inner    sweep.Executor
}

func (c *countingExecutor) Execute(ctx context.Context, i int, j sweep.Job) (*core.Results, error) {
	c.executed.Add(1)
	return c.inner.Execute(ctx, i, j)
}

func smallJobs(t *testing.T) []sweep.Job {
	t.Helper()
	spec := sweep.Quick()
	spec.Benchmarks = []string{"exchange2", "mcf"}
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestColdWarmDeterminism is the cache acceptance property: a warm run
// simulates nothing and produces byte-identical sink output.
func TestColdWarmDeterminism(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := smallJobs(t)
	runOnce := func() (string, int64) {
		counting := &countingExecutor{inner: sweep.LocalExecutor{}}
		var jsonl, csv bytes.Buffer
		_, err := sweep.Run(context.Background(), jobs, sweep.Options{
			Executor: NewExecutor(cache, counting),
			Sinks:    []sweep.Sink{sweep.NewJSONL(&jsonl), sweep.NewCSV(&csv)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return jsonl.String() + "\n---\n" + csv.String(), counting.executed.Load()
	}

	cold, coldExecs := runOnce()
	if coldExecs != int64(len(jobs)) {
		t.Fatalf("cold run executed %d of %d jobs", coldExecs, len(jobs))
	}
	warm, warmExecs := runOnce()
	if warmExecs != 0 {
		t.Fatalf("warm run executed %d jobs, want 0", warmExecs)
	}
	if cold != warm {
		t.Errorf("warm output differs from cold:\n%s\nvs\n%s", cold, warm)
	}
	s := cache.Stats()
	if s.Puts != uint64(len(jobs)) || s.Hits != uint64(len(jobs)) || s.Errors != 0 {
		t.Errorf("unexpected counters: %+v", s)
	}
}

// TestErrorsNotCached checks that failures are never stored: a failing cell
// re-executes on every run.
func TestErrorsNotCached(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []sweep.Job{{Bench: "no-such-bench", Mode: "baseline"}}
	for i := 0; i < 2; i++ {
		counting := &countingExecutor{inner: sweep.LocalExecutor{}}
		results, err := sweep.Run(context.Background(), jobs,
			sweep.Options{Executor: NewExecutor(cache, counting)})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err == nil {
			t.Fatal("job should fail")
		}
		if counting.executed.Load() != 1 {
			t.Fatalf("run %d: executed %d, want 1 (errors must not be cached)", i, counting.executed.Load())
		}
	}
	if s := cache.Stats(); s.Puts != 0 {
		t.Errorf("a failure was stored: %+v", s)
	}
}

// TestCorruptEntryDegradesToMiss checks that a torn or garbage entry is
// re-simulated and surfaced in the Errors counter, never trusted.
func TestCorruptEntryDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := smallJobs(t)[:1]
	if _, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Executor: NewExecutor(cache, nil)}); err != nil {
		t.Fatal(err)
	}
	key, err := jobs[0].Hash()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path(key), []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingExecutor{inner: sweep.LocalExecutor{}}
	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Executor: NewExecutor(reopened, counting)})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("corrupt cache must not fail the job: %v", results[0].Err)
	}
	if counting.executed.Load() != 1 {
		t.Errorf("corrupt entry not re-simulated")
	}
	if s := reopened.Stats(); s.Errors == 0 {
		t.Errorf("corruption not surfaced in counters: %+v", s)
	}
}

// TestKeyMismatchRejected guards the content-address invariant: an entry
// stored under the wrong name must not be served.
func TestKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := smallJobs(t)
	if _, err := sweep.Run(context.Background(), jobs[:1],
		sweep.Options{Executor: NewExecutor(cache, nil)}); err != nil {
		t.Fatal(err)
	}
	key0, _ := jobs[0].Hash()
	key1, _ := jobs[1].Hash()
	if err := os.MkdirAll(filepath.Dir(cache.path(key1)), 0o755); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(cache.path(key0))
	if err := os.WriteFile(cache.path(key1), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cache.Get(key1); ok || err == nil {
		t.Errorf("mis-addressed entry served: ok=%v err=%v", ok, err)
	}
}

// TestVersionGate checks that a directory written by a different format
// version is refused instead of misread.
func TestVersionGate(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("format version mismatch must refuse to open")
	}
}

// TestSharedAcrossSeeds checks the content addressing across differently
// shaped matrices: the same (bench, mode, seed, config) cell hits no matter
// which sweep produced it.
func TestSharedAcrossSeeds(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	single := sweep.MatrixSpec{Benchmarks: []string{"exchange2"}, Instructions: 2_000, Seeds: []int64{5}}
	fan := sweep.MatrixSpec{Benchmarks: []string{"exchange2"}, Instructions: 2_000, Seeds: []int64{4, 5, 6}}
	jobs1, err := single.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Run(context.Background(), jobs1,
		sweep.Options{Executor: NewExecutor(cache, nil)}); err != nil {
		t.Fatal(err)
	}
	jobs3, err := fan.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingExecutor{inner: sweep.LocalExecutor{}}
	if _, err := sweep.Run(context.Background(), jobs3,
		sweep.Options{Executor: NewExecutor(cache, counting)}); err != nil {
		t.Fatal(err)
	}
	// 3 modes x 3 seeds, of which 3 cells (seed 5, each mode) are cached.
	if got, want := counting.executed.Load(), int64(len(jobs3)-len(jobs1)); got != want {
		t.Errorf("fan run executed %d, want %d (seed-5 cells should hit)", got, want)
	}
}

// TestChecksumCatchesInBandDamage: a flipped byte inside a numeric result
// field still parses as valid JSON — only the entry checksum can catch it.
// Such an entry must error (degrading to a miss), never serve a wrong
// number into a sweep.
func TestChecksumCatchesInBandDamage(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "abcd1234"
	res := &core.Results{Stats: &pipeline.Stats{Committed: 1111, Cycles: 2222}}
	if err := cache.Put(key, res); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(cache.path(key))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit of Committed: 1111 -> 1911. The envelope still parses.
	damaged := bytes.Replace(b, []byte("1111"), []byte("1911"), 1)
	if bytes.Equal(damaged, b) {
		t.Fatal("test setup: payload digits not found in entry")
	}
	if err := os.WriteFile(cache.path(key), damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := cache.Get(key); ok || err == nil {
		t.Fatalf("damaged entry served: ok=%v err=%v res=%+v", ok, err, got)
	}
	if s := cache.Stats(); s.Errors == 0 {
		t.Errorf("in-band damage not surfaced in counters: %+v", s)
	}
}

// TestSumlessEntryAccepted: entries written before the checksum field
// (FormatVersion unchanged) are served unverified rather than invalidated.
func TestSumlessEntryAccepted(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "ef567890"
	res := &core.Results{Stats: &pipeline.Stats{Committed: 42}}
	old, err := json.Marshal(envelope{Version: FormatVersion, Key: key, Res: res})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(cache.path(key)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path(key), old, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cache.Get(key)
	if err != nil || !ok || got.Committed != 42 {
		t.Fatalf("pre-checksum entry rejected: ok=%v err=%v res=%+v", ok, err, got)
	}
}

// TestReadFaultSeam: the chaos hook corrupts bytes between disk and parse,
// and the checksum turns that into a counted miss; clearing the hook
// restores the hit.
func TestReadFaultSeam(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "0badf00d"
	if err := cache.Put(key, &core.Results{Stats: &pipeline.Stats{Committed: 9}}); err != nil {
		t.Fatal(err)
	}
	cache.SetReadFault(func(b []byte) []byte {
		c := append([]byte(nil), b...)
		// Damage the res section, not the envelope frame, so the JSON still
		// parses and only the checksum can object.
		if i := bytes.LastIndexByte(c, '9'); i >= 0 {
			c[i] = '7'
		}
		return c
	})
	if _, ok, err := cache.Get(key); ok || err == nil {
		t.Fatalf("corrupted read served: ok=%v err=%v", ok, err)
	}
	cache.SetReadFault(nil)
	got, ok, err := cache.Get(key)
	if err != nil || !ok || got.Committed != 9 {
		t.Fatalf("clean read after clearing the fault: ok=%v err=%v res=%+v", ok, err, got)
	}
}
