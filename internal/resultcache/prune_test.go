package resultcache

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/pipeline"
)

// putAged stores a result under key and backdates its file by age.
func putAged(t *testing.T, c *Cache, key string, age time.Duration) int64 {
	t.Helper()
	res := &core.Results{Stats: &pipeline.Stats{Cycles: 42, Committed: 7}, Mode: core.ModeWFC}
	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(c.path(key), when, when); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestPruneEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Four entries, oldest to newest; every entry encodes identically so
	// sizes are equal and the byte budget maps to an entry count.
	keys := []string{"aa11", "bb22", "cc33", "dd44"}
	var size int64
	for i, k := range keys {
		size = putAged(t, c, k, time.Duration(len(keys)-i)*time.Hour)
	}

	st, err := c.Prune(2*size + size/2) // room for two entries
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 2 || st.Kept != 2 {
		t.Fatalf("prune evicted %d / kept %d, want 2 / 2", st.Evicted, st.Kept)
	}
	for _, k := range keys[:2] {
		if _, ok, _ := c.Get(k); ok {
			t.Errorf("oldest entry %s survived the prune", k)
		}
	}
	for _, k := range keys[2:] {
		if _, ok, err := c.Get(k); !ok || err != nil {
			t.Errorf("newest entry %s was evicted (ok=%v err=%v)", k, ok, err)
		}
	}
	// The VERSION marker must survive any budget.
	if _, err := os.Stat(filepath.Join(dir, "VERSION")); err != nil {
		t.Fatalf("VERSION marker gone after prune: %v", err)
	}
}

func TestPruneZeroBudgetClearsCache(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putAged(t, c, "aa11", time.Hour)
	putAged(t, c, "bb22", 2*time.Hour)
	st, err := c.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 0 || st.Evicted != 2 {
		t.Fatalf("prune kept %d / evicted %d, want 0 / 2", st.Kept, st.Evicted)
	}
	// The cache directory still opens and accepts new entries.
	if _, err := Open(c.Dir()); err != nil {
		t.Fatalf("cache unusable after full prune: %v", err)
	}
}

func TestPruneNoopUnderBudget(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putAged(t, c, "aa11", time.Hour)
	st, err := c.Prune(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 0 || st.Kept != 1 {
		t.Fatalf("prune under budget evicted %d, want 0", st.Evicted)
	}
}
