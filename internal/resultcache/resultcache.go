// Package resultcache is a disk-backed content-addressed store for sweep
// results. Entries are keyed on sweep.Job.Hash — a stable SHA-256 over the
// job's canonical encoding (bench, mode, seed and the fully-normalized
// simulator configuration) — so an identical cell is never simulated twice
// across figure regenerations, seed-fan extensions or grid workers. All
// numeric result fields are integers, so a cached result reproduces sink
// output byte-identically to a fresh simulation.
//
// On-disk layout (versioned; Open refuses a directory written by a
// different format version):
//
//	<dir>/VERSION        # format version, one decimal line
//	<dir>/<kk>/<key>.json  # envelope{version, key, res}; kk = key[:2]
//
// Writes are atomic: entries are staged in a temp file in <dir> and
// renamed into place, so a crashed or concurrent writer can never publish
// a torn entry (concurrent Put of the same key is idempotent — both write
// identical bytes).
package resultcache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

// FormatVersion is the on-disk format version. Bump it when the envelope or
// the result encoding changes incompatibly.
const FormatVersion = 1

// Cache is a content-addressed result store rooted at one directory. It is
// safe for concurrent use by multiple goroutines and multiple processes
// sharing the directory.
type Cache struct {
	dir string

	// readFault, when non-nil, transforms raw entry bytes right after they
	// are read from disk — a test seam for fault injection (see
	// internal/chaos), so corruption-tolerance tests exercise the same
	// verification path a flipped disk bit would.
	readFault func([]byte) []byte

	// hits/misses/puts/errs count Get/Put outcomes (errs counts corrupt or
	// unreadable entries and failed writes, which degrade to misses rather
	// than failing the sweep).
	hits, misses, puts, errs atomic.Uint64
}

// SetReadFault installs f as a read-time corruption hook (test seam; nil
// clears it). Set before concurrent use.
func (c *Cache) SetReadFault(f func([]byte) []byte) { c.readFault = f }

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Puts, Errors uint64
}

// envelope is the on-disk entry format. Sum is a CRC32-IEEE checksum
// (lowercase hex) over the result's canonical JSON encoding: a flipped bit
// inside a numeric field still parses as valid JSON, and without the
// checksum it would silently poison every sweep that hits the entry.
// Entries written before the field (empty Sum) are accepted unverified, so
// FormatVersion stays 1.
type envelope struct {
	Version int           `json:"version"`
	Key     string        `json:"key"`
	Sum     string        `json:"sum,omitempty"`
	Res     *core.Results `json:"res"`
}

// resSum is the checksum stored in envelope.Sum: CRC32-IEEE over the
// result's own JSON encoding (deterministic — all fields are ordered
// struct members). Verification re-encodes the parsed result, so any
// in-band damage that survived the JSON parse changes the digest.
func resSum(res *core.Results) (string, error) {
	b, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	return strconv.FormatUint(uint64(crc32.ChecksumIEEE(b)), 16), nil
}

// Open creates (or reuses) a cache directory, enforcing the format version.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	vpath := filepath.Join(dir, "VERSION")
	b, err := os.ReadFile(vpath)
	switch {
	case err == nil:
		v, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil || v != FormatVersion {
			return nil, fmt.Errorf("resultcache: %s holds format %q, this binary writes format %d",
				dir, strings.TrimSpace(string(b)), FormatVersion)
		}
	case os.IsNotExist(err):
		if werr := writeAtomic(dir, vpath, []byte(strconv.Itoa(FormatVersion)+"\n")); werr != nil {
			return nil, fmt.Errorf("resultcache: %w", werr)
		}
	default:
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its entry file, sharded on the first two hex digits so
// a full standard sweep never piles thousands of files into one directory.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached result for key, reporting whether it was present.
// A corrupt or mismatched entry is surfaced as an error; callers typically
// treat that as a miss and re-simulate.
func (c *Cache) Get(key string) (*core.Results, bool, error) {
	if len(key) < 2 {
		return nil, false, fmt.Errorf("resultcache: malformed key %q", key)
	}
	b, err := os.ReadFile(c.path(key))
	if os.IsNotExist(err) {
		c.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		c.errs.Add(1)
		return nil, false, fmt.Errorf("resultcache: %w", err)
	}
	if c.readFault != nil {
		b = c.readFault(b)
	}
	var e envelope
	if err := json.Unmarshal(b, &e); err != nil {
		c.errs.Add(1)
		return nil, false, fmt.Errorf("resultcache: corrupt entry %s: %w", key, err)
	}
	if e.Version != FormatVersion || e.Key != key || e.Res == nil {
		c.errs.Add(1)
		return nil, false, fmt.Errorf("resultcache: entry %s does not match its address (version %d, key %q)",
			key, e.Version, e.Key)
	}
	if e.Sum != "" {
		sum, serr := resSum(e.Res)
		if serr != nil || sum != e.Sum {
			c.errs.Add(1)
			return nil, false, fmt.Errorf("resultcache: entry %s failed its checksum (bit rot or damaged write)", key)
		}
	}
	c.hits.Add(1)
	return e.Res, true, nil
}

// Put stores res under key atomically. Only successful results are worth
// storing; callers must not cache errors (a failure is not content).
func (c *Cache) Put(key string, res *core.Results) error {
	if len(key) < 2 {
		return fmt.Errorf("resultcache: malformed key %q", key)
	}
	if res == nil {
		return fmt.Errorf("resultcache: refusing to store nil result under %s", key)
	}
	sum, err := resSum(res)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(envelope{Version: FormatVersion, Key: key, Sum: sum, Res: res}); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := writeAtomic(c.dir, dst, buf.Bytes()); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// writeAtomic publishes data at dst via a temp file in dir and a rename
// (atomic within one filesystem).
func writeAtomic(dir, dst string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// PruneStats reports one Prune pass.
type PruneStats struct {
	// Kept / KeptBytes count the entries surviving the pass.
	Kept      int
	KeptBytes int64
	// Evicted / EvictedBytes count the entries removed.
	Evicted      int
	EvictedBytes int64
}

// pruneEntry is one cache file considered for eviction.
type pruneEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// Prune evicts entries oldest-first (by modification time; a cache hit does
// not refresh it, so age means "time since simulated") until the entries'
// total size fits maxBytes. The VERSION marker is never removed. Concurrent
// readers are safe: eviction is a plain unlink, and a reader that loses the
// race simply misses and re-simulates. It is the size-based GC behind
// `safespec-bench -cache-gc`.
func (c *Cache) Prune(maxBytes int64) (PruneStats, error) {
	var st PruneStats
	var entries []pruneEntry
	shards, err := os.ReadDir(c.dir)
	if err != nil {
		return st, fmt.Errorf("resultcache: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(c.dir, sh.Name()))
		if err != nil {
			continue // shard vanished under us: nothing to evict there
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries = append(entries, pruneEntry{
				path:  filepath.Join(c.dir, sh.Name(), f.Name()),
				size:  info.Size(),
				mtime: info.ModTime(),
			})
		}
	}
	// Oldest first; ties break on path so a pass is deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	var total int64
	for _, e := range entries {
		total += e.size
	}
	for _, e := range entries {
		if total <= maxBytes {
			st.Kept++
			st.KeptBytes += e.size
			continue
		}
		if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
			return st, fmt.Errorf("resultcache: prune %s: %w", e.path, err)
		}
		total -= e.size
		st.Evicted++
		st.EvictedBytes += e.size
	}
	return st, nil
}

// CacheStats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Errors: c.errs.Load(),
	}
}

// String renders the counters for the safespec-bench progress line; a warm
// run shows misses=0 (no cell was simulated).
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("cache %s: hits=%d misses=%d stored=%d errors=%d",
		c.dir, s.Hits, s.Misses, s.Puts, s.Errors)
}

// Executor serves jobs from the cache and delegates misses to an inner
// executor (local simulation or the grid coordinator), storing fresh
// successful results on the way back. It implements sweep.Executor, so a
// cached sweep plugs into sweep.Run without any consumer changes.
type Executor struct {
	cache *Cache
	inner sweep.Executor
}

// NewExecutor wraps inner (nil selects sweep.LocalExecutor) with the cache.
func NewExecutor(c *Cache, inner sweep.Executor) *Executor {
	if inner == nil {
		inner = sweep.LocalExecutor{}
	}
	return &Executor{cache: c, inner: inner}
}

// Execute resolves one job: cache hit, or inner execution plus a store.
// Cache failures (unhashable job, corrupt entry, failed write) degrade to
// plain execution — a broken cache must never fail a sweep whose
// simulations succeed — and are visible in the Errors counter.
func (e *Executor) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	key, err := j.Hash()
	if err != nil {
		e.cache.errs.Add(1)
		return e.inner.Execute(ctx, index, j)
	}
	if res, ok, _ := e.cache.Get(key); ok {
		return res, nil
	}
	res, err := e.inner.Execute(ctx, index, j)
	if err == nil && res != nil {
		if perr := e.cache.Put(key, res); perr != nil {
			e.cache.errs.Add(1)
		}
	}
	return res, err
}

// ExecuteTimed is Execute with a span breakdown: lookup and store time are
// attributed to the cache span, and a miss merges the inner executor's own
// spans (a hit has no simulate span at all).
func (e *Executor) ExecuteTimed(ctx context.Context, index int, j sweep.Job) (*core.Results, *sweep.Timing, error) {
	t := &sweep.Timing{}
	key, err := j.Hash()
	if err != nil {
		e.cache.errs.Add(1)
		res, err := e.innerTimed(ctx, index, j, t)
		return res, t, err
	}
	start := time.Now()
	res, ok, _ := e.cache.Get(key)
	t.CacheNS += int64(time.Since(start))
	if ok {
		return res, t, nil
	}
	res, err = e.innerTimed(ctx, index, j, t)
	if err == nil && res != nil {
		start = time.Now()
		perr := e.cache.Put(key, res)
		t.CacheNS += int64(time.Since(start))
		if perr != nil {
			e.cache.errs.Add(1)
		}
	}
	return res, t, err
}

// innerTimed delegates to the inner executor, merging its spans into t when
// it can attribute them (otherwise all inner time becomes the simulate
// span, which is what a bare LocalExecutor would report anyway).
func (e *Executor) innerTimed(ctx context.Context, index int, j sweep.Job, t *sweep.Timing) (*core.Results, error) {
	if timed, ok := e.inner.(sweep.TimedExecutor); ok {
		res, inner, err := timed.ExecuteTimed(ctx, index, j)
		if inner != nil {
			t.Add(*inner)
		}
		return res, err
	}
	start := time.Now()
	res, err := e.inner.Execute(ctx, index, j)
	t.SimulateNS += int64(time.Since(start))
	return res, err
}
