// Package isa defines the instruction set architecture executed by the
// SafeSpec simulator.
//
// The ISA is a compact 64-bit RISC-like machine language. It is deliberately
// small: the SafeSpec defense and the speculation attacks it closes live in
// the microarchitecture (branch prediction, out-of-order execution, cache and
// TLB fills), not in ISA richness. The ISA carries just enough surface to
// express the paper's workloads and proof-of-concept attacks: ALU arithmetic,
// loads and stores, conditional and indirect control flow, cache-line flush
// (clflush), cycle-counter reads (rdtscp-style timing) and fences.
package isa

import "fmt"

// RegCount is the number of architectural general-purpose registers.
const RegCount = 32

// Reg identifies an architectural register. Register 0 is hardwired to zero,
// like RISC-V's x0: writes to it are discarded and reads return 0.
type Reg uint8

// Conventional register role aliases used by the assembler and workloads.
const (
	Zero Reg = 0 // hardwired zero
	RA   Reg = 1 // return address (written by CALL)
	SP   Reg = 2 // stack pointer (by convention only)
	T0   Reg = 5 // temporaries t0..t6
	T1   Reg = 6
	T2   Reg = 7
	T3   Reg = 8
	T4   Reg = 9
	T5   Reg = 10
	T6   Reg = 11
	A0   Reg = 12 // argument/result registers a0..a7
	A1   Reg = 13
	A2   Reg = 14
	A3   Reg = 15
	A4   Reg = 16
	A5   Reg = 17
	A6   Reg = 18
	A7   Reg = 19
	S0   Reg = 20 // saved s0..s11
	S1   Reg = 21
	S2   Reg = 22
	S3   Reg = 23
	S4   Reg = 24
	S5   Reg = 25
	S6   Reg = 26
	S7   Reg = 27
	S8   Reg = 28
	S9   Reg = 29
	S10  Reg = 30
	S11  Reg = 31
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r == Zero:
		return "zero"
	case r == RA:
		return "ra"
	case r == SP:
		return "sp"
	case r >= T0 && r <= T6:
		return fmt.Sprintf("t%d", r-T0)
	case r >= A0 && r <= A7:
		return fmt.Sprintf("a%d", r-A0)
	case r >= S0 && r <= S11:
		return fmt.Sprintf("s%d", r-S0)
	default:
		return fmt.Sprintf("x%d", uint8(r))
	}
}

// Op enumerates the operations of the ISA.
type Op uint8

const (
	// OpNop does nothing.
	OpNop Op = iota

	// Integer ALU, register-register: rd = rs1 <op> rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv // rd = rs1 / rs2; division by zero yields 0 (no trap)
	OpRem // rd = rs1 % rs2; modulo by zero yields rs1
	OpAnd
	OpOr
	OpXor
	OpShl // rd = rs1 << (rs2 & 63)
	OpShr // rd = uint64(rs1) >> (rs2 & 63), logical
	OpSra // rd = rs1 >> (rs2 & 63), arithmetic
	OpSlt // rd = 1 if rs1 < rs2 (signed) else 0

	// Integer ALU, register-immediate: rd = rs1 <op> imm.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSlti

	// OpMovi loads a 64-bit immediate: rd = imm.
	OpMovi

	// Floating-point-class ops. Values are still int64 bit patterns; these
	// exist to model long-latency FP pipelines of SPEC FP codes.
	OpFAdd // 4-cycle latency
	OpFMul // 5-cycle latency
	OpFDiv // 18-cycle latency

	// Memory. Effective address = rs1 + imm. All accesses are 8 bytes,
	// naturally aligned by the assembler's convention (the simulator does
	// not fault on misalignment; the cache maps any byte address to a line).
	OpLoad  // rd = mem[rs1+imm]
	OpStore // mem[rs1+imm] = rs2

	// Control flow. Direct targets are instruction indices (resolved from
	// labels by the assembler).
	OpBeq   // if rs1 == rs2 goto target
	OpBne   // if rs1 != rs2 goto target
	OpBlt   // if rs1 <  rs2 (signed) goto target
	OpBge   // if rs1 >= rs2 (signed) goto target
	OpBltu  // if rs1 <  rs2 (unsigned) goto target
	OpBgeu  // if rs1 >= rs2 (unsigned) goto target
	OpJmp   // goto target
	OpJmpi  // goto rs1+imm (indirect; predicted via BTB)
	OpCall  // ra = return PC; goto target (pushes RAS)
	OpCalli // ra = return PC; goto rs1+imm (indirect call; BTB + RAS push)
	OpRet   // goto ra (predicted via RAS)

	// Microarchitectural controls.
	OpClflush // evict the line containing rs1+imm from all caches (and shadow)
	OpRdCycle // rd = current cycle count (serializing read, like rdtscp)
	OpFence   // drain: do not dispatch younger instructions until commit
	OpHalt    // stop the program

	opMax // sentinel; keep last
)

// NumOps is the number of defined operations.
const NumOps = int(opMax)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpSra: "sra", OpSlt: "slt", OpAddi: "addi", OpAndi: "andi",
	OpOri: "ori", OpXori: "xori", OpShli: "shli", OpShri: "shri", OpSlti: "slti",
	OpMovi: "movi", OpFAdd: "fadd", OpFMul: "fmul", OpFDiv: "fdiv",
	OpLoad: "load", OpStore: "store", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu", OpJmp: "jmp", OpJmpi: "jmpi",
	OpCall: "call", OpCalli: "calli", OpRet: "ret", OpClflush: "clflush",
	OpRdCycle: "rdcycle", OpFence: "fence", OpHalt: "halt",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups operations by the pipeline resources they use.
type Class uint8

const (
	ClassNop Class = iota
	ClassALU       // single-cycle integer
	ClassMul       // integer multiply
	ClassDiv       // integer divide / remainder
	ClassFP        // floating-point pipeline
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // direct jumps and calls
	ClassJumpInd
	ClassRet
	ClassFlush
	ClassCSR // rdcycle
	ClassFence
	ClassHalt
)

var opClasses = [...]Class{
	OpNop: ClassNop,
	OpAdd: ClassALU, OpSub: ClassALU, OpAnd: ClassALU, OpOr: ClassALU,
	OpXor: ClassALU, OpShl: ClassALU, OpShr: ClassALU, OpSra: ClassALU,
	OpSlt: ClassALU, OpAddi: ClassALU, OpAndi: ClassALU, OpOri: ClassALU,
	OpXori: ClassALU, OpShli: ClassALU, OpShri: ClassALU, OpSlti: ClassALU,
	OpMovi: ClassALU,
	OpMul:  ClassMul, OpDiv: ClassDiv, OpRem: ClassDiv,
	OpFAdd: ClassFP, OpFMul: ClassFP, OpFDiv: ClassFP,
	OpLoad: ClassLoad, OpStore: ClassStore,
	OpBeq: ClassBranch, OpBne: ClassBranch, OpBlt: ClassBranch,
	OpBge: ClassBranch, OpBltu: ClassBranch, OpBgeu: ClassBranch,
	OpJmp: ClassJump, OpCall: ClassJump,
	OpJmpi: ClassJumpInd, OpCalli: ClassJumpInd,
	OpRet:     ClassRet,
	OpClflush: ClassFlush, OpRdCycle: ClassCSR, OpFence: ClassFence,
	OpHalt: ClassHalt,
}

// ClassOf returns the resource class of the operation.
func ClassOf(o Op) Class {
	if int(o) < len(opClasses) {
		return opClasses[o]
	}
	return ClassNop
}

// Latency returns the execution latency in cycles of the operation,
// excluding memory-system time for loads (which is computed dynamically).
func Latency(o Op) int {
	switch ClassOf(o) {
	case ClassMul:
		return 3
	case ClassDiv:
		return 12
	case ClassFP:
		switch o {
		case OpFAdd:
			return 4
		case OpFMul:
			return 5
		default: // OpFDiv
			return 18
		}
	case ClassLoad, ClassStore:
		return 1 // address generation; memory time added separately
	default:
		return 1
	}
}

// IsBranchLike reports whether the operation redirects control flow and
// therefore participates in branch-mask speculation tracking.
func IsBranchLike(o Op) bool {
	switch ClassOf(o) {
	case ClassBranch, ClassJump, ClassJumpInd, ClassRet:
		return true
	}
	return false
}

// IsPredicted reports whether the operation's outcome is predicted (and can
// therefore mispredict). Direct jumps and calls have statically known targets
// and never mispredict; everything else branch-like can.
func IsPredicted(o Op) bool {
	switch ClassOf(o) {
	case ClassBranch, ClassJumpInd, ClassRet:
		return true
	}
	return false
}

// Instr is one machine instruction. Programs are slices of Instr; the
// program counter is an index into the slice. Each instruction occupies
// BytesPerInstr bytes of the instruction address space so that instruction
// fetch interacts with the I-cache at cache-line granularity.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target int // direct branch/jump/call target (instruction index)
}

// BytesPerInstr is the size of one instruction in the instruction address
// space. Four bytes gives 16 instructions per 64-byte cache line, a typical
// x86 density.
const BytesPerInstr = 4

// String renders the instruction in assembler-like syntax.
func (in Instr) String() string {
	switch ClassOf(in.Op) {
	case ClassALU:
		switch in.Op {
		case OpMovi:
			return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
		case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
		}
	case ClassMul, ClassDiv, ClassFP:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case ClassLoad:
		return fmt.Sprintf("load %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("store %s, %d(%s)", in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case ClassJump:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case ClassJumpInd:
		return fmt.Sprintf("%s %d(%s)", in.Op, in.Imm, in.Rs1)
	case ClassRet:
		return "ret"
	case ClassFlush:
		return fmt.Sprintf("clflush %d(%s)", in.Imm, in.Rs1)
	case ClassCSR:
		return fmt.Sprintf("rdcycle %s", in.Rd)
	default:
		return in.Op.String()
	}
}

// HasDest reports whether the instruction writes a destination register.
func (in Instr) HasDest() bool {
	switch ClassOf(in.Op) {
	case ClassALU, ClassMul, ClassDiv, ClassFP, ClassLoad, ClassCSR:
		return in.Rd != Zero
	case ClassJump, ClassJumpInd:
		// Calls write the return address register.
		return (in.Op == OpCall || in.Op == OpCalli) && in.Rd != Zero
	}
	return false
}

// SrcRegs appends the source registers read by the instruction to dst and
// returns the extended slice. Register zero is never reported (it is
// always ready).
func (in Instr) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != Zero {
			dst = append(dst, r)
		}
	}
	switch ClassOf(in.Op) {
	case ClassALU:
		switch in.Op {
		case OpMovi:
		case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
			add(in.Rs1)
		default:
			add(in.Rs1)
			add(in.Rs2)
		}
	case ClassMul, ClassDiv, ClassFP:
		add(in.Rs1)
		add(in.Rs2)
	case ClassLoad:
		add(in.Rs1)
	case ClassStore:
		add(in.Rs1)
		add(in.Rs2)
	case ClassBranch:
		add(in.Rs1)
		add(in.Rs2)
	case ClassJumpInd:
		add(in.Rs1)
	case ClassRet:
		add(RA)
	case ClassFlush:
		add(in.Rs1)
	}
	return dst
}

// Program is a sequence of instructions plus initial data segments.
type Program struct {
	// Code is the instruction stream. The entry point is index 0.
	Code []Instr
	// Entry is the instruction index where execution begins.
	Entry int
	// TrapHandler, if >= 0, is the instruction index the core vectors to
	// when a committed instruction raises a fault (e.g. a permission
	// violation). If < 0, a fault halts the program.
	TrapHandler int
	// Data maps virtual byte addresses to initial 64-bit values, installed
	// into memory before the program runs.
	Data map[uint64]int64
	// KernelData is like Data but the containing pages are mapped with
	// kernel-only permission (user loads fault at commit; under Meltdown
	// semantics they still forward data speculatively).
	KernelData map[uint64]int64
	// Regions lists address ranges to map before execution, in addition to
	// the pages implied by Data and KernelData.
	Regions []MemRegion
	// Symbols maps label names to instruction indices (for debugging and
	// for indirect-jump target computation in attack code).
	Symbols map[string]int
	// ThreadEntries optionally gives per-hardware-thread entry points for
	// SMT runs: thread t starts at ThreadEntries[t] when the slice covers
	// it, and at Entry otherwise (so a single-threaded program runs as
	// duplicate contexts on every extra thread).
	ThreadEntries []int
}

// CodeBase is the virtual address where the instruction stream is mapped.
// It sits far above the data addresses workloads conventionally use, so
// code and data never collide in the caches by accident.
const CodeBase uint64 = 1 << 30

// PCByte converts an instruction index to its virtual byte address.
func PCByte(pc int) uint64 { return CodeBase + uint64(pc)*BytesPerInstr }

// ByteToPC converts an instruction byte address back to an index.
func ByteToPC(addr uint64) int { return int((addr - CodeBase) / BytesPerInstr) }

// MemRegion declares a virtual address range the loader must map before the
// program runs. Workloads use regions for their arrays; attacks use kernel
// regions for the victim secret.
type MemRegion struct {
	// Base is the first byte of the region.
	Base uint64
	// Size is the region length in bytes.
	Size uint64
	// Kernel maps the region kernel-only (user access faults).
	Kernel bool
}
