package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		Zero: "zero", RA: "ra", SP: "sp", T0: "t0", T6: "t6",
		A0: "a0", A7: "a7", S0: "s0", S11: "s11", Reg(3): "x3",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpClflush.String() != "clflush" {
		t.Errorf("unexpected op names: %s %s", OpAdd, OpClflush)
	}
	if got := Op(250).String(); got != "op(250)" {
		t.Errorf("out-of-range op name = %q", got)
	}
}

func TestEveryOpHasNameAndClass(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
		// Classification must be stable and within the declared set.
		c := ClassOf(op)
		if c > ClassHalt {
			t.Errorf("op %s has out-of-range class %d", op, c)
		}
		if Latency(op) < 1 {
			t.Errorf("op %s has non-positive latency", op)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	branchLike := []Op{OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpJmpi, OpCall, OpCalli, OpRet}
	for _, op := range branchLike {
		if !IsBranchLike(op) {
			t.Errorf("%s should be branch-like", op)
		}
	}
	predicted := []Op{OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmpi, OpCalli, OpRet}
	for _, op := range predicted {
		if !IsPredicted(op) {
			t.Errorf("%s should be predicted", op)
		}
	}
	// Direct jumps and calls have static targets: never predicted.
	for _, op := range []Op{OpJmp, OpCall} {
		if IsPredicted(op) {
			t.Errorf("%s must not be predicted", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLoad, OpStore, OpNop, OpHalt} {
		if IsBranchLike(op) || IsPredicted(op) {
			t.Errorf("%s must not be branch-like", op)
		}
	}
}

func TestHasDest(t *testing.T) {
	cases := []struct {
		in   Instr
		want bool
	}{
		{Instr{Op: OpAdd, Rd: T0}, true},
		{Instr{Op: OpAdd, Rd: Zero}, false}, // writes to x0 are discarded
		{Instr{Op: OpLoad, Rd: T1}, true},
		{Instr{Op: OpStore, Rs2: T1}, false},
		{Instr{Op: OpBeq}, false},
		{Instr{Op: OpCall, Rd: RA}, true},
		{Instr{Op: OpCalli, Rd: RA}, true},
		{Instr{Op: OpJmp}, false},
		{Instr{Op: OpRdCycle, Rd: T2}, true},
		{Instr{Op: OpClflush}, false},
		{Instr{Op: OpMovi, Rd: S0}, true},
	}
	for _, c := range cases {
		if got := c.in.HasDest(); got != c.want {
			t.Errorf("HasDest(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: OpAdd, Rs1: T0, Rs2: T1}, []Reg{T0, T1}},
		{Instr{Op: OpAddi, Rs1: T0}, []Reg{T0}},
		{Instr{Op: OpMovi}, nil},
		{Instr{Op: OpLoad, Rs1: S0}, []Reg{S0}},
		{Instr{Op: OpStore, Rs1: S0, Rs2: S1}, []Reg{S0, S1}},
		{Instr{Op: OpBeq, Rs1: T0, Rs2: T1}, []Reg{T0, T1}},
		{Instr{Op: OpRet}, []Reg{RA}},
		{Instr{Op: OpJmpi, Rs1: T3}, []Reg{T3}},
		{Instr{Op: OpClflush, Rs1: T4}, []Reg{T4}},
		{Instr{Op: OpAdd, Rs1: Zero, Rs2: Zero}, nil}, // zero never reported
	}
	for _, c := range cases {
		got := c.in.SrcRegs(nil)
		if len(got) != len(c.want) {
			t.Errorf("SrcRegs(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SrcRegs(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestPCByteRoundTrip(t *testing.T) {
	f := func(pc uint16) bool {
		return ByteToPC(PCByte(int(pc))) == int(pc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPCByteAboveCodeBase(t *testing.T) {
	if PCByte(0) != CodeBase {
		t.Errorf("PCByte(0) = %#x, want CodeBase %#x", PCByte(0), CodeBase)
	}
	if PCByte(100) != CodeBase+400 {
		t.Errorf("PCByte(100) = %#x", PCByte(100))
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: T0, Rs1: T1, Rs2: T2}, "add t0, t1, t2"},
		{Instr{Op: OpMovi, Rd: S0, Imm: 42}, "movi s0, 42"},
		{Instr{Op: OpAddi, Rd: T0, Rs1: T0, Imm: -1}, "addi t0, t0, -1"},
		{Instr{Op: OpLoad, Rd: T1, Rs1: S0, Imm: 8}, "load t1, 8(s0)"},
		{Instr{Op: OpStore, Rs1: S0, Rs2: T1, Imm: 16}, "store t1, 16(s0)"},
		{Instr{Op: OpBeq, Rs1: T0, Rs2: T1, Target: 7}, "beq t0, t1, @7"},
		{Instr{Op: OpJmp, Target: 3}, "jmp @3"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpRdCycle, Rd: T4}, "rdcycle t4"},
		{Instr{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLatencies(t *testing.T) {
	if Latency(OpAdd) != 1 {
		t.Errorf("add latency = %d", Latency(OpAdd))
	}
	if Latency(OpMul) <= Latency(OpAdd) {
		t.Error("mul should be slower than add")
	}
	if Latency(OpDiv) <= Latency(OpMul) {
		t.Error("div should be slower than mul")
	}
	if Latency(OpFDiv) <= Latency(OpFMul) {
		t.Error("fdiv should be slower than fmul")
	}
}
