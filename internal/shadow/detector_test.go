package shadow

import "testing"

func TestDetectorQuietOnSteadyOccupancy(t *testing.T) {
	d := NewDetector(8, 4, 256)
	for i := 0; i < 10000; i++ {
		d.Observe(3) // benign steady state below the floor
	}
	if d.Alarms() != 0 {
		t.Errorf("steady occupancy raised %d alarms", d.Alarms())
	}
	if d.Cycles() != 10000 {
		t.Errorf("cycles = %d", d.Cycles())
	}
}

func TestDetectorFiresOnBurst(t *testing.T) {
	d := NewDetector(8, 4, 256)
	for i := 0; i < 5000; i++ {
		d.Observe(2)
	}
	// A contention burst: occupancy jumps toward capacity.
	fired := false
	for i := 0; i < 50; i++ {
		if d.Observe(60) {
			fired = true
		}
	}
	if !fired {
		t.Error("burst to 60 entries over a 2-entry average did not alarm")
	}
}

func TestDetectorFloorSuppressesSmallBursts(t *testing.T) {
	d := NewDetector(16, 4, 256)
	for i := 0; i < 5000; i++ {
		d.Observe(1)
	}
	for i := 0; i < 50; i++ {
		if d.Observe(10) { // big relative jump, but under the floor
			t.Fatal("sub-floor burst alarmed")
		}
	}
}

func TestDetectorAdaptsToNewBaseline(t *testing.T) {
	d := NewDetector(4, 4, 64)
	for i := 0; i < 5000; i++ {
		d.Observe(40) // legitimately busy program
	}
	if d.Observe(50) { // 25% above average: not anomalous
		t.Error("alarmed on occupancy near the learned average")
	}
	if d.Average() < 35 || d.Average() > 45 {
		t.Errorf("average = %.1f, want ≈40", d.Average())
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(2, 0, 0)
	if d.Ratio != 4 || d.HalfLife != 1024 {
		t.Errorf("defaults not applied: %+v", d)
	}
	if d.AlarmRate() != 0 {
		t.Error("empty detector alarm rate != 0")
	}
}
