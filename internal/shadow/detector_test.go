package shadow

import "testing"

func TestDetectorQuietOnSteadyOccupancy(t *testing.T) {
	d := NewDetector(8, 4, 256)
	for i := 0; i < 10000; i++ {
		d.Observe(3) // benign steady state below the floor
	}
	if d.Alarms() != 0 {
		t.Errorf("steady occupancy raised %d alarms", d.Alarms())
	}
	if d.Cycles() != 10000 {
		t.Errorf("cycles = %d", d.Cycles())
	}
}

func TestDetectorFiresOnBurst(t *testing.T) {
	d := NewDetector(8, 4, 256)
	for i := 0; i < 5000; i++ {
		d.Observe(2)
	}
	// A contention burst: occupancy jumps toward capacity.
	fired := false
	for i := 0; i < 50; i++ {
		if d.Observe(60) {
			fired = true
		}
	}
	if !fired {
		t.Error("burst to 60 entries over a 2-entry average did not alarm")
	}
}

func TestDetectorFloorSuppressesSmallBursts(t *testing.T) {
	d := NewDetector(16, 4, 256)
	for i := 0; i < 5000; i++ {
		d.Observe(1)
	}
	for i := 0; i < 50; i++ {
		if d.Observe(10) { // big relative jump, but under the floor
			t.Fatal("sub-floor burst alarmed")
		}
	}
}

func TestDetectorAdaptsToNewBaseline(t *testing.T) {
	d := NewDetector(4, 4, 64)
	for i := 0; i < 5000; i++ {
		d.Observe(40) // legitimately busy program
	}
	if d.Observe(50) { // 25% above average: not anomalous
		t.Error("alarmed on occupancy near the learned average")
	}
	if d.Average() < 35 || d.Average() > 45 {
		t.Errorf("average = %.1f, want ≈40", d.Average())
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(2, 0, 0)
	if d.Ratio != 4 || d.HalfLife != 1024 {
		t.Errorf("defaults not applied: %+v", d)
	}
	if d.AlarmRate() != 0 {
		t.Error("empty detector alarm rate != 0")
	}
}

// TestObserveNMatchesLoop: the bulk path must agree with n individual
// Observe calls — exactly on cycle and (within one crossing cycle) on alarm
// counts, and within floating-point rounding on the moving average — across
// spans that decay toward, away from, across and under the alarm threshold.
func TestObserveNMatchesLoop(t *testing.T) {
	cases := []struct {
		name    string
		warm    int // cycles of warm occupancy before the span
		warmOcc int
		occ     int // constant occupancy during the span
		n       uint64
	}{
		{"idle-under-floor", 200, 30, 2, 500},
		{"quiet-high-average", 500, 40, 45, 1000},
		{"alarm-throughout", 50, 1, 60, 300},
		{"alarm-then-adapt", 10, 2, 40, 5000}, // average catches up mid-span: alarmed prefix
		{"decay-to-zero", 300, 50, 0, 2000},
		{"single-cycle", 100, 8, 9, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Detector {
				d := NewDetector(4, 4, 256)
				for i := 0; i < tc.warm; i++ {
					d.Observe(tc.warmOcc)
				}
				return d
			}
			loop, bulk := mk(), mk()
			for i := uint64(0); i < tc.n; i++ {
				loop.Observe(tc.occ)
			}
			bulk.ObserveN(tc.occ, tc.n)
			if loop.Cycles() != bulk.Cycles() {
				t.Fatalf("cycles: loop %d, bulk %d", loop.Cycles(), bulk.Cycles())
			}
			da := loop.Alarms() - bulk.Alarms()
			if bulk.Alarms() > loop.Alarms() {
				da = bulk.Alarms() - loop.Alarms()
			}
			if da > 1 {
				t.Errorf("alarms: loop %d, bulk %d (tolerance 1 at the crossing)", loop.Alarms(), bulk.Alarms())
			}
			if diff := loop.Average() - bulk.Average(); diff > 1e-6 || diff < -1e-6 {
				t.Errorf("average: loop %g, bulk %g", loop.Average(), bulk.Average())
			}
		})
	}
}

// TestObserveNZero: a zero-length span is a no-op.
func TestObserveNZero(t *testing.T) {
	d := NewDetector(4, 4, 256)
	d.Observe(10)
	avg, cycles, alarms := d.Average(), d.Cycles(), d.Alarms()
	d.ObserveN(50, 0)
	if d.Average() != avg || d.Cycles() != cycles || d.Alarms() != alarms {
		t.Fatal("ObserveN(_, 0) mutated the detector")
	}
}
