package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"safespec/internal/stats"
)

func mk(entries int, onFull OnFull) *Structure {
	return New(Policy{Name: "test", Entries: entries, WhenFull: onFull})
}

func TestAllocLookupRelease(t *testing.T) {
	s := mk(4, Block)
	h, ok, blocked := s.Alloc(0x100, 1, 0, Payload{})
	if !ok || blocked {
		t.Fatalf("alloc failed: ok=%v blocked=%v", ok, blocked)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Key(h); got != 0x100 {
		t.Errorf("Key = %#x", got)
	}
	h2, hit := s.Lookup(0x100)
	if !hit || h2 != h {
		t.Errorf("lookup = %+v %v", h2, hit)
	}
	if _, hit := s.Lookup(0x200); hit {
		t.Error("phantom hit")
	}
	if _, freed := s.Release(h, true); !freed {
		t.Error("single-ref release must free")
	}
	if s.Len() != 0 || s.Stats.Committed != 1 {
		t.Errorf("after release: len=%d stats=%+v", s.Len(), s.Stats)
	}
}

func TestRefCounting(t *testing.T) {
	s := mk(4, Block)
	h1, _, _ := s.Alloc(0x100, 1, 0, Payload{})
	h2, _, _ := s.Alloc(0x100, 2, 0, Payload{}) // same key: shared
	if h1 != h2 {
		t.Fatal("same-key alloc must return the same handle")
	}
	if s.Len() != 1 {
		t.Errorf("shared alloc grew the structure: %d", s.Len())
	}
	if _, freed := s.Release(h1, false); freed {
		t.Error("first of two releases must not free")
	}
	if !s.StillValid(h1) {
		t.Error("entry freed early")
	}
	if _, freed := s.Release(h1, false); !freed {
		t.Error("last release must free")
	}
	if s.Stats.Squashed != 1 {
		t.Errorf("squash count = %d", s.Stats.Squashed)
	}
}

func TestBlockPolicy(t *testing.T) {
	s := mk(2, Block)
	s.Alloc(1, 1, 0, Payload{})
	s.Alloc(2, 2, 0, Payload{})
	_, ok, blocked := s.Alloc(3, 3, 0, Payload{})
	if ok || !blocked {
		t.Errorf("full Block structure: ok=%v blocked=%v", ok, blocked)
	}
	if s.Stats.BlockedCycles != 1 {
		t.Errorf("blocked cycles = %d", s.Stats.BlockedCycles)
	}
	// Same-key alloc still succeeds when full (shares the entry).
	if _, ok, _ := s.Alloc(1, 4, 0, Payload{}); !ok {
		t.Error("same-key alloc must succeed on a full structure")
	}
}

func TestDropPolicy(t *testing.T) {
	s := mk(2, Drop)
	s.Alloc(1, 1, 0, Payload{})
	s.Alloc(2, 2, 0, Payload{})
	_, ok, blocked := s.Alloc(3, 3, 0, Payload{})
	if ok || blocked {
		t.Errorf("full Drop structure: ok=%v blocked=%v", ok, blocked)
	}
	if s.Stats.DroppedFull != 1 {
		t.Errorf("dropped = %d", s.Stats.DroppedFull)
	}
	if s.Contains(3) {
		t.Error("dropped key present")
	}
}

func TestReplacePolicyEvictsOldest(t *testing.T) {
	s := mk(2, Replace)
	hA, _, _ := s.Alloc(0xA, 10, 0, Payload{})
	hB, _, _ := s.Alloc(0xB, 11, 0, Payload{})
	hC, ok, blocked := s.Alloc(0xC, 12, 0, Payload{})
	if !ok || blocked {
		t.Fatalf("replace alloc failed: %v %v", ok, blocked)
	}
	if s.StillValid(hA) {
		t.Error("oldest entry (A) must have been replaced")
	}
	if !s.StillValid(hB) || !s.StillValid(hC) {
		t.Error("B and C must survive")
	}
	if s.Stats.Replaced != 1 {
		t.Errorf("replaced = %d", s.Stats.Replaced)
	}
	// The TSA relies on exactly this: the evicted owner's update is lost.
	if s.Contains(0xA) {
		t.Error("replaced key still present")
	}
}

func TestForceFree(t *testing.T) {
	s := mk(4, Block)
	h, _, _ := s.Alloc(0x100, 1, 0, Payload{})
	s.Alloc(0x100, 2, 0, Payload{}) // refs = 2
	key := s.ForceFree(h, true)
	if key != 0x100 {
		t.Errorf("ForceFree key = %#x", key)
	}
	if s.StillValid(h) || s.Len() != 0 {
		t.Error("ForceFree must free regardless of refs")
	}
	if s.Stats.Committed != 1 {
		t.Errorf("committed = %d", s.Stats.Committed)
	}
}

func TestInvalidateKey(t *testing.T) {
	s := mk(4, Block)
	h, _, _ := s.Alloc(0x100, 1, 0, Payload{})
	if !s.InvalidateKey(0x100) {
		t.Error("invalidate missed")
	}
	if s.InvalidateKey(0x100) {
		t.Error("double invalidate")
	}
	if s.StillValid(h) {
		t.Error("handle valid after invalidate")
	}
	if s.Stats.Flushes != 1 {
		t.Errorf("flushes = %d", s.Stats.Flushes)
	}
}

func TestPayload(t *testing.T) {
	s := mk(2, Block)
	h, _, _ := s.Alloc(0x1000, 1, 0, Payload{Frame: 0xAB000, Perm: 2})
	pl := s.PayloadOf(h)
	if pl.Frame != 0xAB000 || pl.Perm != 2 {
		t.Errorf("payload = %+v", pl)
	}
}

func TestStaleHandlePanics(t *testing.T) {
	s := mk(2, Block)
	h, _, _ := s.Alloc(1, 1, 0, Payload{})
	s.ForceFree(h, false)
	defer func() {
		if recover() == nil {
			t.Error("Key on a stale handle must panic")
		}
	}()
	s.Key(h)
}

func TestZeroHandleInvalid(t *testing.T) {
	var h Handle
	if h.Valid() {
		t.Error("zero handle must be invalid")
	}
	s := mk(2, Block)
	if s.StillValid(h) {
		t.Error("zero handle must not be StillValid")
	}
}

func TestReset(t *testing.T) {
	s := mk(4, Block)
	h, _, _ := s.Alloc(1, 1, 0, Payload{})
	s.Reset()
	if s.Len() != 0 || s.StillValid(h) || s.Stats.Allocs != 0 {
		t.Error("reset incomplete")
	}
	// Full capacity must be available again.
	for i := 0; i < 4; i++ {
		if _, ok, _ := s.Alloc(uint64(i+10), 1, 0, Payload{}); !ok {
			t.Fatalf("alloc %d failed after reset", i)
		}
	}
}

func TestOccupancySampling(t *testing.T) {
	s := mk(8, Block)
	s.Occupancy = stats.NewHistogram(8)
	s.Alloc(1, 1, 0, Payload{})
	s.Sample()
	s.Alloc(2, 2, 0, Payload{})
	s.Sample()
	s.SampleN(3)
	if s.Occupancy.N() != 5 {
		t.Errorf("samples = %d", s.Occupancy.N())
	}
	if s.Occupancy.Max() != 2 {
		t.Errorf("max occupancy = %d", s.Occupancy.Max())
	}
}

func TestValidatePolicy(t *testing.T) {
	if err := (Policy{Name: "x", Entries: 0}).Validate(); err == nil {
		t.Error("zero capacity must be invalid")
	}
	if Block.String() != "block" || Drop.String() != "drop" || Replace.String() != "replace" {
		t.Error("policy names wrong")
	}
}

func TestStatsRates(t *testing.T) {
	s := Stats{Hits: 1, Lookups: 4, Committed: 3, Squashed: 1}
	if s.HitRate() != 0.25 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
	if s.CommitRate() != 0.75 {
		t.Errorf("commit rate = %v", s.CommitRate())
	}
}

// Property: under any operation sequence, Len never exceeds capacity and
// equals the number of distinct live keys.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mk(4, OnFull(rng.Intn(3)))
		var handles []Handle
		for i := 0; i < int(nOps); i++ {
			switch rng.Intn(3) {
			case 0:
				h, ok, _ := s.Alloc(uint64(rng.Intn(10)), uint64(i), 0, Payload{})
				if ok {
					handles = append(handles, h)
				}
			case 1:
				if len(handles) > 0 {
					h := handles[rng.Intn(len(handles))]
					if s.StillValid(h) {
						s.Release(h, rng.Intn(2) == 0)
					}
				}
			case 2:
				s.InvalidateKey(uint64(rng.Intn(10)))
			}
			if s.Len() > 4 || s.Len() != len(s.Keys()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: accounting conservation — every allocation is eventually
// disposed exactly once: live + committed + squashed + replaced + flushed
// equals allocs.
func TestDispositionConservationProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mk(3, Replace)
		var handles []Handle
		for i := 0; i < int(nOps); i++ {
			if rng.Intn(2) == 0 {
				// Unique keys so refcount sharing never merges allocs.
				h, ok, _ := s.Alloc(uint64(i)+1000, uint64(i), 0, Payload{})
				if ok {
					handles = append(handles, h)
				}
			} else if len(handles) > 0 {
				h := handles[rng.Intn(len(handles))]
				if s.StillValid(h) {
					s.Release(h, rng.Intn(2) == 0)
				}
			}
		}
		st := s.Stats
		disposed := st.Committed + st.Squashed + st.Replaced + st.Flushes
		return st.Allocs == disposed+uint64(s.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
