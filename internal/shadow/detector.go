package shadow

import "math"

// Detector implements the attack-detection idea the paper sketches in
// Section VII: "it is possible to use abnormal growth of the structures as
// an indicator of a possible attack and introduce mitigations".
//
// The detector watches a shadow structure's per-cycle occupancy with an
// exponential moving average and flags cycles where occupancy exceeds both
// an absolute floor and a multiple of the recent average. Benign programs
// keep shadow occupancy near its (small) steady state — Figures 6-9 show
// the 99.99th percentile far below the worst case — while a transient
// attack must drive the structure toward capacity within one speculation
// window to create contention.
//
// A Detector lets an implementation provision the shadow structures well
// below the worst case (saving most of Table V's Secure overhead) and fall
// back to a safe response — e.g. draining speculation or temporarily
// serializing — only when growth is anomalous.
type Detector struct {
	// Floor is the occupancy below which no alarm is possible, no matter
	// the growth rate (absorbs tiny-structure noise).
	Floor int
	// Ratio is how many times above the moving average the occupancy must
	// be to alarm.
	Ratio float64
	// HalfLife controls the moving average's decay, in cycles.
	HalfLife float64

	avg    float64
	alarms uint64
	cycles uint64
}

// NewDetector returns a detector with the given thresholds. A zero Ratio
// defaults to 4 and a zero HalfLife to 1024 cycles.
func NewDetector(floor int, ratio float64, halfLife float64) *Detector {
	if ratio == 0 {
		ratio = 4
	}
	if halfLife == 0 {
		halfLife = 1024
	}
	return &Detector{Floor: floor, Ratio: ratio, HalfLife: halfLife}
}

// Observe feeds one cycle's occupancy and reports whether this cycle is
// anomalous.
func (d *Detector) Observe(occupancy int) bool {
	d.cycles++
	// EMA with per-cycle decay alpha = ln2/halfLife (approximated).
	alpha := 0.6931 / d.HalfLife
	d.avg += alpha * (float64(occupancy) - d.avg)
	if occupancy <= d.Floor {
		return false
	}
	if float64(occupancy) >= d.Ratio*d.avg {
		d.alarms++
		return true
	}
	return false
}

// ObserveN feeds n cycles of a constant occupancy in one call — the bulk
// path idle-cycle fast-forward uses, so detection-enabled runs skip dead
// time as cheaply as occupancy sampling (Structure.SampleN) does. It is the
// closed-form equivalent of n successive Observe calls: with occupancy
// fixed at x, the moving average after i steps is x + (avg0-x)*(1-alpha)^i,
// which approaches x monotonically, so the alarm predicate flips at most
// once across the span and a binary search (O(log n), not O(n)) counts the
// alarmed cycles. The average lands within floating-point rounding of the
// iterated value; an alarm count can differ from the per-cycle loop by one
// cycle at the exact crossing.
func (d *Detector) ObserveN(occupancy int, n uint64) {
	if n == 0 {
		return
	}
	d.cycles += n
	x := float64(occupancy)
	alpha := 0.6931 / d.HalfLife
	r := 1 - alpha
	avgAt := func(i uint64) float64 { return x + (d.avg-x)*math.Pow(r, float64(i)) }
	if occupancy > d.Floor {
		alarmed := func(i uint64) bool { return x >= d.Ratio*avgAt(i) }
		first, last := alarmed(1), alarmed(n)
		switch {
		case first == last:
			if first {
				d.alarms += n
			}
		case first:
			// Alarmed early, quiet late: count the prefix (largest alarmed i).
			lo, hi := uint64(1), n
			for hi-lo > 1 {
				if mid := lo + (hi-lo)/2; alarmed(mid) {
					lo = mid
				} else {
					hi = mid
				}
			}
			d.alarms += lo
		default:
			// Quiet early, alarmed late: count the suffix (smallest alarmed i).
			lo, hi := uint64(1), n
			for hi-lo > 1 {
				if mid := lo + (hi-lo)/2; alarmed(mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			d.alarms += n - hi + 1
		}
	}
	d.avg = avgAt(n)
}

// Alarms returns the number of anomalous cycles seen.
func (d *Detector) Alarms() uint64 { return d.alarms }

// Cycles returns the number of observations.
func (d *Detector) Cycles() uint64 { return d.cycles }

// AlarmRate returns alarms per observed cycle.
func (d *Detector) AlarmRate() float64 {
	if d.cycles == 0 {
		return 0
	}
	return float64(d.alarms) / float64(d.cycles)
}

// Average returns the current moving-average occupancy.
func (d *Detector) Average() float64 { return d.avg }
