package shadow

// Detector implements the attack-detection idea the paper sketches in
// Section VII: "it is possible to use abnormal growth of the structures as
// an indicator of a possible attack and introduce mitigations".
//
// The detector watches a shadow structure's per-cycle occupancy with an
// exponential moving average and flags cycles where occupancy exceeds both
// an absolute floor and a multiple of the recent average. Benign programs
// keep shadow occupancy near its (small) steady state — Figures 6-9 show
// the 99.99th percentile far below the worst case — while a transient
// attack must drive the structure toward capacity within one speculation
// window to create contention.
//
// A Detector lets an implementation provision the shadow structures well
// below the worst case (saving most of Table V's Secure overhead) and fall
// back to a safe response — e.g. draining speculation or temporarily
// serializing — only when growth is anomalous.
type Detector struct {
	// Floor is the occupancy below which no alarm is possible, no matter
	// the growth rate (absorbs tiny-structure noise).
	Floor int
	// Ratio is how many times above the moving average the occupancy must
	// be to alarm.
	Ratio float64
	// HalfLife controls the moving average's decay, in cycles.
	HalfLife float64

	avg    float64
	alarms uint64
	cycles uint64
}

// NewDetector returns a detector with the given thresholds. A zero Ratio
// defaults to 4 and a zero HalfLife to 1024 cycles.
func NewDetector(floor int, ratio float64, halfLife float64) *Detector {
	if ratio == 0 {
		ratio = 4
	}
	if halfLife == 0 {
		halfLife = 1024
	}
	return &Detector{Floor: floor, Ratio: ratio, HalfLife: halfLife}
}

// Observe feeds one cycle's occupancy and reports whether this cycle is
// anomalous.
func (d *Detector) Observe(occupancy int) bool {
	d.cycles++
	// EMA with per-cycle decay alpha = ln2/halfLife (approximated).
	alpha := 0.6931 / d.HalfLife
	d.avg += alpha * (float64(occupancy) - d.avg)
	if occupancy <= d.Floor {
		return false
	}
	if float64(occupancy) >= d.Ratio*d.avg {
		d.alarms++
		return true
	}
	return false
}

// Alarms returns the number of anomalous cycles seen.
func (d *Detector) Alarms() uint64 { return d.alarms }

// Cycles returns the number of observations.
func (d *Detector) Cycles() uint64 { return d.cycles }

// AlarmRate returns alarms per observed cycle.
func (d *Detector) AlarmRate() float64 {
	if d.cycles == 0 {
		return 0
	}
	return float64(d.alarms) / float64(d.cycles)
}

// Average returns the current moving-average occupancy.
func (d *Detector) Average() float64 { return d.avg }
