package shadow

import (
	"math/rand"
	"testing"
)

// TestIndexConsistencyUnderChurn cross-checks the O(1) probe-table index
// against a ground-truth scan of the entry array through a long random
// Alloc/Release/ForceFree/InvalidateKey/Reset churn, covering the
// backward-shift deletion path that keeps probe clusters intact.
func TestIndexConsistencyUnderChurn(t *testing.T) {
	for _, full := range []OnFull{Drop, Replace} {
		t.Run(full.String(), func(t *testing.T) {
			s := New(Policy{Name: "churn", Entries: 13, WhenFull: full})
			rng := rand.New(rand.NewSource(7))
			live := map[uint64]Handle{}
			// Few distinct keys relative to capacity so hashes collide and
			// clusters form and shrink constantly.
			key := func() uint64 { return uint64(rng.Intn(40)) * 64 }

			verify := func(step int) {
				t.Helper()
				truth := map[uint64]bool{}
				for _, k := range s.Keys() {
					truth[k] = true
				}
				for k := uint64(0); k < 40*64; k += 64 {
					if got := s.Contains(k); got != truth[k] {
						t.Fatalf("step %d: Contains(%#x) = %v, scan says %v", step, k, got, truth[k])
					}
					h, hit := s.Lookup(k)
					if hit != truth[k] {
						t.Fatalf("step %d: Lookup(%#x) hit=%v, scan says %v", step, k, hit, truth[k])
					}
					if hit && s.Key(h) != k {
						t.Fatalf("step %d: Lookup(%#x) handle resolves to %#x", step, k, s.Key(h))
					}
				}
			}

			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // alloc
					k := key()
					if h, ok, _ := s.Alloc(k, uint64(step), 0, Payload{}); ok {
						if old, exists := live[k]; !exists || !s.StillValid(old) {
							live[k] = h
						}
					}
				case op < 7: // release one live handle
					for k, h := range live {
						if s.StillValid(h) {
							s.Release(h, step%2 == 0)
						}
						delete(live, k)
						break
					}
				case op < 8: // force-free one live handle
					for k, h := range live {
						if s.StillValid(h) {
							s.ForceFree(h, true)
						}
						delete(live, k)
						break
					}
				case op < 9: // invalidate by key
					s.InvalidateKey(key())
				default:
					if rng.Intn(50) == 0 {
						s.Reset()
						live = map[uint64]Handle{}
					}
				}
				if step%37 == 0 {
					verify(step)
				}
			}
			verify(4000)
		})
	}
}
