package shadow

import "testing"

func mkPart(entries int) *Structure {
	return New(Policy{Name: "part", Entries: entries, WhenFull: Replace, Partitioned: true})
}

func TestPartitionedReplaceStaysWithinPath(t *testing.T) {
	s := mkPart(2)
	// Two entries belonging to speculative path 1 (the spy).
	hA, _, _ := s.Alloc(0xA, 10, 1, Payload{})
	hB, _, _ := s.Alloc(0xB, 11, 1, Payload{})
	// An allocation from path 2 (the trojan) may not displace them.
	_, ok, blocked := s.Alloc(0xC, 12, 2, Payload{})
	if ok || blocked {
		t.Errorf("cross-partition alloc: ok=%v blocked=%v, want drop", ok, blocked)
	}
	if !s.StillValid(hA) || !s.StillValid(hB) {
		t.Error("cross-partition allocation displaced another path's entries")
	}
	if s.Stats.DroppedFull != 1 || s.Stats.Replaced != 0 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestPartitionedReplaceWithinOwnPath(t *testing.T) {
	s := mkPart(2)
	hA, _, _ := s.Alloc(0xA, 10, 7, Payload{})
	s.Alloc(0xB, 11, 7, Payload{})
	// Same-path allocation evicts its own oldest entry.
	hC, ok, blocked := s.Alloc(0xC, 12, 7, Payload{})
	if !ok || blocked {
		t.Fatalf("same-partition replace failed: ok=%v blocked=%v", ok, blocked)
	}
	if s.StillValid(hA) {
		t.Error("same-path oldest entry should have been replaced")
	}
	if !s.StillValid(hC) {
		t.Error("new entry missing")
	}
	if s.Stats.Replaced != 1 {
		t.Errorf("replaced = %d", s.Stats.Replaced)
	}
}

func TestUnpartitionedIgnoresPartitionKey(t *testing.T) {
	s := New(Policy{Name: "flat", Entries: 2, WhenFull: Replace})
	s.Alloc(0xA, 10, 1, Payload{})
	s.Alloc(0xB, 11, 1, Payload{})
	_, ok, _ := s.Alloc(0xC, 12, 2, Payload{})
	if !ok {
		t.Error("unpartitioned Replace must evict across paths")
	}
	if s.Stats.Replaced != 1 {
		t.Errorf("replaced = %d", s.Stats.Replaced)
	}
}
