// Package shadow implements the SafeSpec shadow structures: fully
// associative buffers that hold the microarchitectural side effects of
// speculative instructions until those instructions become safe (under
// wait-for-branch or wait-for-commit policies), at which point the state is
// moved into the committed structures; or until they are squashed, at which
// point the entries are annulled in place, leaving no trace.
//
// This is the paper's primary contribution (Section III/IV). Two kinds of
// buffers exist:
//
//   - Cache shadows (shadow D-cache, shadow I-cache) holding speculatively
//     fetched cache lines, keyed by line address.
//   - TLB shadows (shadow dTLB, shadow iTLB) holding speculatively walked
//     translations, keyed by virtual page.
//
// Both are the same structure with different key semantics, so one type
// serves all four, parameterized by Policy.
//
// The Policy also captures the behaviour when the structure is full — Block
// (the requesting instruction stalls) or Drop (the update is discarded).
// Either behaviour opens the transient speculation attack (TSA) covert
// channel of Section V when the structure is small enough to contend on;
// the Secure sizing (LSQ-bound for data-side structures, ROB-bound for
// instruction-side structures) removes the contention and closes the
// channel. The attacks package demonstrates both sides.
package shadow

import (
	"fmt"

	"safespec/internal/stats"
)

// OnFull selects the behaviour when an allocation finds no free entry.
type OnFull uint8

const (
	// Block makes the allocating instruction stall until an entry frees up.
	Block OnFull = iota
	// Drop discards the update; the line/translation simply is not
	// recorded, costing a re-fetch if the instruction commits.
	Drop
	// Replace evicts the oldest entry to make room. The evicted entry's
	// owners lose their shadow state (their handles go stale), so the
	// update they were carrying never reaches the committed structures.
	// This is the contention behaviour the paper's transient speculation
	// attack (Section V) exploits.
	Replace
)

// String names the policy.
func (o OnFull) String() string {
	switch o {
	case Block:
		return "block"
	case Drop:
		return "drop"
	default:
		return "replace"
	}
}

// Policy sizes a shadow structure and selects its full behaviour.
type Policy struct {
	// Name identifies the structure in statistics ("shadow-dcache", ...).
	Name string
	// Entries is the capacity. The paper's Secure configuration bounds this
	// by the LSQ size (data side) or ROB size (instruction side).
	Entries int
	// WhenFull selects Block, Drop or Replace.
	WhenFull OnFull
	// Partitioned enables the paper's alternative TSA mitigation
	// (Section V): "partition the structures such that there is no
	// contention among different speculative branches". Entries carry the
	// partition key of their allocating instruction (the pipeline uses the
	// youngest unresolved branch tag), and the Replace policy may only
	// evict entries of the SAME partition. A mis-speculated trojan can
	// then never displace state belonging to a path that will commit; a
	// full structure with no same-partition victim degrades to Drop.
	Partitioned bool
}

// Validate reports configuration errors.
func (p Policy) Validate() error {
	if p.Entries <= 0 {
		return fmt.Errorf("shadow %s: non-positive capacity", p.Name)
	}
	return nil
}

// Stats counts shadow-structure activity. These feed Figures 6-9, 13, 15
// and 16 of the paper.
type Stats struct {
	// Allocs counts entries allocated.
	Allocs uint64
	// Hits counts lookups that found a speculative entry (shadow hits,
	// Figures 13/15).
	Hits uint64
	// Lookups counts all lookups.
	Lookups uint64
	// Committed counts entries moved to the committed structures
	// (numerator of the Figure 16 commit rate).
	Committed uint64
	// Squashed counts entries annulled in place.
	Squashed uint64
	// DroppedFull counts allocations discarded because the structure was
	// full under the Drop policy.
	DroppedFull uint64
	// BlockedCycles counts cycles an instruction stalled under Block.
	BlockedCycles uint64
	// Replaced counts entries evicted by the Replace policy.
	Replaced uint64
	// Flushes counts entries removed by clflush.
	Flushes uint64
}

// Add accumulates o into s (summing per-thread shadow structures into
// core-wide totals for SMT runs).
func (s *Stats) Add(o Stats) {
	s.Allocs += o.Allocs
	s.Hits += o.Hits
	s.Lookups += o.Lookups
	s.Committed += o.Committed
	s.Squashed += o.Squashed
	s.DroppedFull += o.DroppedFull
	s.BlockedCycles += o.BlockedCycles
	s.Replaced += o.Replaced
	s.Flushes += o.Flushes
}

// HitRate returns Hits/Lookups.
func (s Stats) HitRate() float64 { return stats.Rate(s.Hits, s.Lookups) }

// CommitRate returns Committed/(Committed+Squashed) — the Figure 16 metric.
func (s Stats) CommitRate() float64 {
	return stats.Rate(s.Committed, s.Committed+s.Squashed)
}

type entry struct {
	valid bool
	key   uint64
	// owner is the ROB sequence number of the instruction that allocated
	// the entry; commit/squash address entries through the handle, so the
	// owner is kept for debugging and invariant checks.
	owner uint64
	// partition is the speculative-path key under Partitioned policies.
	partition uint64
	// refs counts in-flight instructions sharing the entry (several
	// speculative loads can hit the same shadow line).
	refs int
	// payload carries structure-specific data (the TLB shadows store the
	// translated frame and permission bits here).
	payload Payload
}

// Payload is the structure-specific content of a shadow entry. For cache
// shadows it is unused (tag-only, like the committed caches); for TLB
// shadows it carries the translation.
type Payload struct {
	// Frame is the translated physical frame (TLB shadows).
	Frame uint64
	// Perm holds permission bits as a small integer (TLB shadows).
	Perm uint8
}

// Handle identifies an allocated shadow entry. The zero Handle is invalid.
// Load/store-queue and ROB entries store Handles, mirroring the paper's
// "pointer to the shadow structure" augmentation.
type Handle struct {
	idx int
	gen uint64
}

// Valid reports whether the handle refers to an allocation.
func (h Handle) Valid() bool { return h.gen != 0 }

// Structure is one fully associative shadow buffer.
type Structure struct {
	policy  Policy
	entries []entry
	gens    []uint64
	free    []int
	nValid  int
	genCtr  uint64
	// index is an open-addressed (linear probing) key -> entry-slot table
	// accelerating the fully associative match: valid entries have unique
	// keys, so every Lookup/Contains/Alloc/InvalidateKey resolves in O(1)
	// instead of scanning all Entries slots. Slots hold the entry index, or
	// idxEmpty. The table never allocates after New.
	index   []int32
	idxMask uint64
	// Stats accumulates activity counters.
	Stats Stats
	// Occupancy is sampled per cycle by the pipeline into this histogram
	// (Figures 6-9). Nil disables sampling.
	Occupancy *stats.Histogram
}

// idxEmpty marks a free probe-table slot.
const idxEmpty = int32(-1)

// New builds a shadow structure; it panics on an invalid policy.
func New(policy Policy) *Structure {
	if err := policy.Validate(); err != nil {
		panic(err)
	}
	// Probe table sized to keep load factor <= 1/4.
	tbl := 8
	for tbl < 4*policy.Entries {
		tbl *= 2
	}
	s := &Structure{
		policy:  policy,
		entries: make([]entry, policy.Entries),
		gens:    make([]uint64, policy.Entries),
		free:    make([]int, policy.Entries),
		index:   make([]int32, tbl),
		idxMask: uint64(tbl - 1),
	}
	for i := range s.free {
		s.free[i] = policy.Entries - 1 - i
	}
	for i := range s.index {
		s.index[i] = idxEmpty
	}
	return s
}

// idxHome returns the preferred probe-table slot for key.
func (s *Structure) idxHome(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> 32 & s.idxMask
}

// idxFind returns the entry slot holding key, or -1.
func (s *Structure) idxFind(key uint64) int {
	for i := s.idxHome(key); ; i = (i + 1) & s.idxMask {
		slot := s.index[i]
		if slot == idxEmpty {
			return -1
		}
		if s.entries[slot].key == key {
			return int(slot)
		}
	}
}

// idxInsert records that entry slot holds key.
func (s *Structure) idxInsert(key uint64, slot int) {
	i := s.idxHome(key)
	for s.index[i] != idxEmpty {
		i = (i + 1) & s.idxMask
	}
	s.index[i] = int32(slot)
}

// idxDelete removes key from the probe table, backward-shifting the
// displaced tail of its probe cluster so future probes stay correct.
func (s *Structure) idxDelete(key uint64) {
	i := s.idxHome(key)
	for {
		slot := s.index[i]
		if slot == idxEmpty {
			return // not present (already removed)
		}
		if s.entries[slot].key == key {
			break
		}
		i = (i + 1) & s.idxMask
	}
	s.index[i] = idxEmpty
	// Re-slot everything in the cluster after the hole.
	for j := (i + 1) & s.idxMask; s.index[j] != idxEmpty; j = (j + 1) & s.idxMask {
		slot := s.index[j]
		home := s.idxHome(s.entries[slot].key)
		// Move slot back into the hole unless its home lies strictly after
		// the hole (cyclically between hole and current position).
		if (j-home)&s.idxMask >= (j-i)&s.idxMask {
			s.index[i] = slot
			s.index[j] = idxEmpty
			i = j
		}
	}
}

// Policy returns the structure's policy.
func (s *Structure) Policy() Policy { return s.policy }

// Len returns the number of valid entries (current occupancy).
func (s *Structure) Len() int { return s.nValid }

// Full reports whether no free entry remains.
func (s *Structure) Full() bool { return s.nValid == len(s.entries) }

// Sample records the current occupancy into the attached histogram, if any.
func (s *Structure) Sample() {
	if s.Occupancy != nil {
		s.Occupancy.Add(s.nValid)
	}
}

// SampleN records the current occupancy n times (idle-cycle fast-forward).
func (s *Structure) SampleN(n uint64) {
	if s.Occupancy != nil {
		s.Occupancy.AddN(s.nValid, n)
	}
}

// Lookup searches for a valid entry with the given key. It counts toward
// hit-rate statistics.
func (s *Structure) Lookup(key uint64) (Handle, bool) {
	s.Stats.Lookups++
	if i := s.idxFind(key); i >= 0 {
		s.Stats.Hits++
		return Handle{idx: i, gen: s.gens[i]}, true
	}
	return Handle{}, false
}

// Contains reports presence without touching statistics.
func (s *Structure) Contains(key uint64) bool {
	return s.idxFind(key) >= 0
}

// Alloc reserves an entry for key on behalf of instruction owner. If an
// entry with the same key already exists, its reference count is bumped and
// its handle returned (several speculative instructions may share a line).
//
// When the structure is full the result depends on the policy: Drop returns
// ok=false (the caller proceeds without shadow state, losing the update);
// Block returns blocked=true (the caller must retry next cycle); Replace
// evicts the oldest entry — restricted to the allocator's own partition
// when the policy is Partitioned.
//
// partition is the speculative-path key (ignored unless Partitioned).
func (s *Structure) Alloc(key uint64, owner uint64, partition uint64, payload Payload) (h Handle, ok, blocked bool) {
	if i := s.idxFind(key); i >= 0 {
		s.entries[i].refs++
		return Handle{idx: i, gen: s.gens[i]}, true, false
	}
	if s.nValid == len(s.entries) {
		switch s.policy.WhenFull {
		case Block:
			s.Stats.BlockedCycles++
			return Handle{}, false, true
		case Drop:
			s.Stats.DroppedFull++
			return Handle{}, false, false
		default: // Replace: evict the oldest eligible entry
			victim, oldest := -1, ^uint64(0)
			for i := range s.entries {
				e := &s.entries[i]
				if !e.valid || e.owner >= oldest {
					continue
				}
				if s.policy.Partitioned && e.partition != partition {
					continue
				}
				oldest = e.owner
				victim = i
			}
			if victim < 0 {
				// Partitioned and no same-path victim: the allocator may
				// not displace other speculative paths' state (that is the
				// whole point); degrade to Drop.
				s.Stats.DroppedFull++
				return Handle{}, false, false
			}
			s.idxDelete(s.entries[victim].key)
			s.entries[victim].valid = false
			s.gens[victim]++
			s.free = append(s.free, victim)
			s.nValid--
			s.Stats.Replaced++
		}
	}
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.genCtr++
	s.gens[idx] = s.genCtr
	s.entries[idx] = entry{valid: true, key: key, owner: owner, partition: partition, refs: 1, payload: payload}
	s.idxInsert(key, idx)
	s.nValid++
	s.Stats.Allocs++
	return Handle{idx: idx, gen: s.genCtr}, true, false
}

// Key returns the key of the entry behind h. It panics if h is stale — a
// pipeline bookkeeping bug.
func (s *Structure) Key(h Handle) uint64 {
	s.check(h)
	return s.entries[h.idx].key
}

// PayloadOf returns the payload of the entry behind h.
func (s *Structure) PayloadOf(h Handle) Payload {
	s.check(h)
	return s.entries[h.idx].payload
}

func (s *Structure) check(h Handle) {
	if !h.Valid() || h.idx < 0 || h.idx >= len(s.entries) || s.gens[h.idx] != h.gen || !s.entries[h.idx].valid {
		panic(fmt.Sprintf("shadow %s: stale handle %+v", s.policy.Name, h))
	}
}

// Release drops one reference from the entry behind h, recording the final
// disposition when the last reference goes away: committed=true means the
// state moved to the committed structures, false means it was squashed and
// annulled in place. It returns the entry's key and whether the entry was
// actually freed (last reference).
func (s *Structure) Release(h Handle, committed bool) (key uint64, freed bool) {
	s.check(h)
	e := &s.entries[h.idx]
	key = e.key
	e.refs--
	if e.refs > 0 {
		// The disposition of a shared entry is decided by its last
		// referencing instruction; intermediate releases only drop refs.
		return key, false
	}
	s.idxDelete(key)
	e.valid = false
	s.gens[h.idx]++
	s.free = append(s.free, h.idx)
	s.nValid--
	if committed {
		s.Stats.Committed++
	} else {
		s.Stats.Squashed++
	}
	return key, true
}

// ForceFree disposes of the entry behind h immediately, regardless of its
// reference count. It is used at commit time: once one referencing
// instruction commits, the line moves to the committed structures, so any
// remaining speculative references simply lose their shadow pointer (they
// would hit the committed structure from then on anyway). It returns the
// entry's key.
func (s *Structure) ForceFree(h Handle, committed bool) uint64 {
	s.check(h)
	e := &s.entries[h.idx]
	key := e.key
	s.idxDelete(key)
	e.valid = false
	s.gens[h.idx]++
	s.free = append(s.free, h.idx)
	s.nValid--
	if committed {
		s.Stats.Committed++
	} else {
		s.Stats.Squashed++
	}
	return key
}

// InvalidateKey removes the entry with the given key regardless of
// references (clflush semantics: the attacker may flush a line out of the
// shadow state too). Instructions holding handles discover the eviction via
// stale-handle checks by calling StillValid.
func (s *Structure) InvalidateKey(key uint64) bool {
	i := s.idxFind(key)
	if i < 0 {
		return false
	}
	s.idxDelete(key)
	s.entries[i].valid = false
	s.gens[i]++
	s.free = append(s.free, i)
	s.nValid--
	s.Stats.Flushes++
	return true
}

// StillValid reports whether h still refers to a live entry (false after
// InvalidateKey or Release freed it).
func (s *Structure) StillValid(h Handle) bool {
	return h.Valid() && h.idx >= 0 && h.idx < len(s.entries) &&
		s.gens[h.idx] == h.gen && s.entries[h.idx].valid
}

// Reset clears all entries and statistics (the occupancy histogram, if
// attached, is preserved so callers can aggregate across runs).
func (s *Structure) Reset() {
	for i := range s.entries {
		s.entries[i] = entry{}
		s.gens[i]++
	}
	s.free = s.free[:0]
	for i := len(s.entries) - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	for i := range s.index {
		s.index[i] = idxEmpty
	}
	s.nValid = 0
	s.Stats = Stats{}
}

// Keys returns the keys of all valid entries (test helper).
func (s *Structure) Keys() []uint64 {
	var out []uint64
	for i := range s.entries {
		if s.entries[i].valid {
			out = append(out, s.entries[i].key)
		}
	}
	return out
}
