package perf

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"safespec/internal/sweep"
)

// tinySpec is a one-benchmark matrix small enough for unit tests.
func tinySpec() sweep.MatrixSpec {
	return sweep.MatrixSpec{
		Benchmarks:   []string{"exchange2"},
		Instructions: 1_000,
		MaxCycles:    1_000_000,
	}
}

func TestRunMeasuresAndReports(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Label:   "test",
		Spec:    tinySpec(),
		Preset:  "tiny",
		Repeats: 2,
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Cells != 3 { // one benchmark, three standard modes
		t.Errorf("cells = %d, want 3", rep.Cells)
	}
	if len(rep.Repeats) != 2 {
		t.Fatalf("recorded %d repeats, want 2", len(rep.Repeats))
	}
	if rep.CellsPerSec <= 0 || rep.CyclesPerSec <= 0 || rep.NsPerCycle <= 0 {
		t.Errorf("headline metrics not populated: %+v", rep)
	}
	for i, r := range rep.Repeats {
		if r.SimCycles == 0 || r.SimInstrs == 0 || r.WallNS <= 0 {
			t.Errorf("repeat %d incomplete: %+v", i, r)
		}
	}
	// Headline must be the best repeat.
	best := 0.0
	for _, r := range rep.Repeats {
		if v := r.CellsPerSec(rep.Cells); v > best {
			best = v
		}
	}
	if rep.CellsPerSec != best {
		t.Errorf("headline %.2f cells/s is not the best repeat (%.2f)", rep.CellsPerSec, best)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), Options{Label: "rt", Spec: tinySpec(), Preset: "tiny", Repeats: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := rep.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_rt.json" {
		t.Errorf("report file %s, want BENCH_rt.json", filepath.Base(path))
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != rep.Label || back.Cells != rep.Cells || back.CellsPerSec != rep.CellsPerSec {
		t.Errorf("round trip changed the report: %+v vs %+v", back, rep)
	}
}

func TestLoadRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{Schema: "other/v9", Label: "x"}
	path, err := rep.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema accepted (err=%v)", err)
	}
}

func TestCompareGate(t *testing.T) {
	base := &Report{
		Schema: Schema, Label: "base", Preset: "quick", Cells: 18,
		Instructions: 15_000, Benchmarks: []string{"a", "b"}, CellsPerSec: 100,
	}
	same := func() *Report {
		r := *base
		r.Label = "cur"
		return &r
	}

	cur := same()
	cur.CellsPerSec = 90 // -10%: inside a 15% budget
	if err := Compare(base, cur, 0.15, 0.01); err != nil {
		t.Errorf("10%% regression rejected under a 15%% budget: %v", err)
	}
	cur.CellsPerSec = 80 // -20%: outside
	if err := Compare(base, cur, 0.15, 0.01); err == nil {
		t.Error("20% regression accepted under a 15% budget")
	}
	cur.CellsPerSec = 400 // faster is never an error
	if err := Compare(base, cur, 0.15, 0.01); err != nil {
		t.Errorf("speedup rejected: %v", err)
	}

	foreign := same()
	foreign.Preset = "custom"
	if err := Compare(base, foreign, 0.15, 0.01); err == nil {
		t.Error("mismatched presets compared without error")
	}
	// Same preset and cell count but different work must also be refused:
	// equal cell counts alone do not make equal matrices.
	heavier := same()
	heavier.Instructions = 150_000
	if err := Compare(base, heavier, 0.15, 0.01); err == nil {
		t.Error("mismatched instruction budgets compared without error")
	}
	otherBench := same()
	otherBench.Benchmarks = []string{"a", "c"}
	if err := Compare(base, otherBench, 0.15, 0.01); err == nil {
		t.Error("mismatched benchmark sets compared without error")
	}
	seeded := same()
	seeded.Seeds = []int64{1}
	if err := Compare(base, seeded, 0.15, 0.01); err == nil {
		t.Error("mismatched seed fans compared without error")
	}
	empty := same()
	empty.Label, empty.CellsPerSec = "empty", 0
	if err := Compare(empty, same(), 0.15, 0.01); err == nil {
		t.Error("zero-throughput baseline accepted")
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := &Report{
		Schema: Schema, Label: "base", Preset: "quick", Cells: 18,
		Instructions: 15_000, Benchmarks: []string{"a"}, CellsPerSec: 100,
		AllocsPerCycle: 0,
	}
	crept := *base
	crept.Label, crept.AllocsPerCycle = "cur", 0.5
	if err := Compare(base, &crept, 0.15, 0.01); err == nil {
		t.Error("allocation creep passed the gate: 0 -> 0.5 allocs/cycle under a 0.01 budget")
	} else if !strings.Contains(err.Error(), "allocs/cycle") {
		t.Errorf("allocation-creep error does not name the metric: %v", err)
	}
	slight := *base
	slight.Label, slight.AllocsPerCycle = "cur", 0.005
	if err := Compare(base, &slight, 0.15, 0.01); err != nil {
		t.Errorf("in-budget allocation noise rejected: %v", err)
	}
	if err := Compare(base, &crept, 0.15, -1); err != nil {
		t.Errorf("negative budget must disable the allocation gate: %v", err)
	}
	leaner := *base
	leaner.Label = "cur"
	base.AllocsPerCycle = 1
	if err := Compare(base, &leaner, 0.15, 0.01); err != nil {
		t.Errorf("fewer allocations rejected: %v", err)
	}
}

func TestComparePerBenchRows(t *testing.T) {
	mk := func(label string, perBench map[string]float64) *Report {
		r := &Report{
			Schema: Schema, Label: label, Preset: "quick", Cells: 6,
			Instructions: 15_000, Benchmarks: []string{"a", "b"}, CellsPerSec: 100,
		}
		for _, b := range r.Benchmarks {
			r.BenchRows = append(r.BenchRows, BenchRow{Bench: b, Cells: 3, CellsPerSec: perBench[b]})
		}
		return r
	}
	base := mk("base", map[string]float64{"a": 50, "b": 50})

	ok := mk("cur", map[string]float64{"a": 48, "b": 52})
	if err := Compare(base, ok, 0.15, 0.01); err != nil {
		t.Errorf("in-budget per-bench variation rejected: %v", err)
	}
	// Aggregate holds but one benchmark collapsed: the v2 gate must catch it.
	skewed := mk("cur", map[string]float64{"a": 20, "b": 80})
	if err := Compare(base, skewed, 0.15, 0.01); err == nil {
		t.Error("per-benchmark collapse passed the gate behind a healthy aggregate")
	} else if !strings.Contains(err.Error(), "a:") {
		t.Errorf("per-bench error does not name the benchmark: %v", err)
	}
	// v1 baselines carry no rows: only the aggregate gates.
	v1 := mk("base", nil)
	v1.BenchRows = nil
	if err := Compare(v1, skewed, 0.15, 0.01); err != nil {
		t.Errorf("v1 baseline must gate the aggregate only: %v", err)
	}
}

func TestRunEmitsBenchRows(t *testing.T) {
	spec := tinySpec()
	spec.Benchmarks = []string{"exchange2", "mcf"}
	rep, err := Run(context.Background(), Options{Label: "rows", Spec: spec, Preset: "tiny", Repeats: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BenchRows) != 2 {
		t.Fatalf("bench rows: %d, want one per benchmark (2)", len(rep.BenchRows))
	}
	var cells int
	for _, row := range rep.BenchRows {
		if row.Bench != "exchange2" && row.Bench != "mcf" {
			t.Errorf("unexpected row bench %q", row.Bench)
		}
		if row.CellsPerSec <= 0 || row.NsPerCycle <= 0 || row.SimCycles == 0 {
			t.Errorf("row %s incomplete: %+v", row.Bench, row)
		}
		cells += row.Cells
	}
	if cells != rep.Cells {
		t.Errorf("rows cover %d cells, matrix has %d", cells, rep.Cells)
	}
}

func TestLoadAcceptsV1Baseline(t *testing.T) {
	dir := t.TempDir()
	v1 := &Report{
		Schema: SchemaV1, Label: "old", Preset: "quick", Cells: 18,
		Instructions: 15_000, CellsPerSec: 44,
		// A v1 document cannot carry rows; Load must drop them if present.
		BenchRows: []BenchRow{{Bench: "bogus"}},
	}
	path, err := v1.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if back.CellsPerSec != 44 || len(back.BenchRows) != 0 {
		t.Errorf("v1 load: cells/sec %.1f rows %d, want 44 and no rows", back.CellsPerSec, len(back.BenchRows))
	}
}
