// Package perf is the reproducible performance harness of the simulator:
// it runs a pinned workload matrix through the sweep engine, measures
// simulation throughput (cells/sec, simulated cycles/sec, host-ns per
// simulated cycle) and allocation pressure (allocations and bytes per
// simulated cycle), and renders the measurement as a versioned
// BENCH_<label>.json report. Committing those reports gives the repository
// a performance trajectory, and Compare turns any two of them into a CI
// regression gate.
//
// Methodology: every repeat runs the full matrix through sweep.Run with the
// in-process LocalExecutor (the cache and grid layers are deliberately
// excluded — this measures the simulator, not the distribution machinery).
// The headline numbers come from the best repeat by cells/sec: the maximum
// over repeats is the standard estimator for "how fast can this code go",
// damping scheduler and GC noise that only ever slows a run down. All
// repeats are recorded in the report for anyone who wants a spread.
package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"safespec/internal/sweep"
	"safespec/internal/workloads"
)

// Schema identifies the report format. Bump it when fields change meaning
// so trajectory tooling never silently misreads an old report. v2 adds
// per-benchmark rows (bench_rows) measured in a dedicated serial-by-bench
// pass; Load still accepts v1 reports so committed baselines keep gating
// the aggregate metrics, but per-benchmark gating needs two v2 reports.
const (
	Schema   = "safespec/perf/v2"
	SchemaV1 = "safespec/perf/v1"
)

// Options configures a measurement.
type Options struct {
	// Label names the report (BENCH_<label>.json); "local" if empty.
	Label string
	// Spec is the workload matrix to run. The zero value selects the
	// pinned Quick preset, the matrix CI measures.
	Spec sweep.MatrixSpec
	// Preset names the matrix in the report ("quick", "custom", ...).
	Preset string
	// Repeats is how many times the matrix runs (headline = best repeat);
	// 3 if zero. The first repeat warms the program/simulator caches, so
	// single-repeat reports understate steady-state throughput.
	Repeats int
	// Workers bounds the sweep pool (<=0 selects GOMAXPROCS).
	Workers int
}

// Repeat is one timed run of the matrix.
type Repeat struct {
	// WallNS is the wall-clock time of the whole matrix.
	WallNS int64 `json:"wall_ns"`
	// SimInstrs / SimCycles total the committed instructions and simulated
	// cycles over all cells.
	SimInstrs uint64 `json:"sim_instrs"`
	SimCycles uint64 `json:"sim_cycles"`
	// Allocs / AllocBytes are the heap allocations (count and bytes)
	// performed by the whole process during the repeat.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// CellsPerSec returns the cell throughput of the repeat.
func (r Repeat) CellsPerSec(cells int) float64 {
	if r.WallNS <= 0 {
		return 0
	}
	return float64(cells) / (float64(r.WallNS) / 1e9)
}

// BenchRow is one benchmark's share of the matrix, measured in its own
// timed pass: the matrix's cells for that benchmark (all modes × seeds) run
// together, serially with respect to the other benchmarks, so wall time and
// the process-wide allocation delta are attributable to the benchmark.
// Within-row parallelism is bounded by the row's cell count, so row
// throughput is not comparable to the full-matrix headline — rows compare
// against the same row in another report.
type BenchRow struct {
	Bench     string `json:"bench"`
	Cells     int    `json:"cells"`
	WallNS    int64  `json:"wall_ns"`
	SimCycles uint64 `json:"sim_cycles"`

	CellsPerSec    float64 `json:"cells_per_sec"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// Report is one BENCH_<label>.json document.
type Report struct {
	Schema     string `json:"schema"`
	Label      string `json:"label"`
	CreatedAt  string `json:"created_at"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Preset, Cells, Instructions, Benchmarks and Seeds pin the measured
	// matrix; Compare refuses to gate reports whose matrices differ (equal
	// cell counts alone do not make equal work).
	Preset       string   `json:"preset"`
	Cells        int      `json:"cells"`
	Instructions uint64   `json:"instructions"`
	Benchmarks   []string `json:"benchmarks"`
	Seeds        []int64  `json:"seeds,omitempty"`
	Workers      int      `json:"workers"`

	// Headline metrics, from the best repeat by cells/sec.
	CellsPerSec    float64 `json:"cells_per_sec"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	InstrsPerSec   float64 `json:"instrs_per_sec"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`

	// Repeats records every timed run, first to last.
	Repeats []Repeat `json:"repeats"`

	// BenchRows breaks the matrix down per benchmark (absent in v1
	// reports).
	BenchRows []BenchRow `json:"bench_rows,omitempty"`
}

// Run measures the matrix and assembles the report.
func Run(ctx context.Context, opts Options) (*Report, error) {
	spec := opts.Spec
	preset := opts.Preset
	if spec.Instructions == 0 && spec.Benchmarks == nil {
		spec = sweep.Quick()
		if preset == "" {
			preset = "quick"
		}
	}
	if preset == "" {
		preset = "custom"
	}
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	label := opts.Label
	if label == "" {
		label = "local"
	}

	jobs, err := spec.Jobs()
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("perf: empty matrix")
	}

	benches := spec.Benchmarks
	if benches == nil {
		benches = workloads.Names()
	}
	rep := &Report{
		Schema:       Schema,
		Label:        label,
		CreatedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Preset:       preset,
		Cells:        len(jobs),
		Instructions: spec.Instructions,
		Benchmarks:   benches,
		Seeds:        spec.Seeds,
		Workers:      opts.Workers,
	}

	for i := 0; i < repeats; i++ {
		r, err := runOnce(ctx, jobs, opts.Workers)
		if err != nil {
			return nil, err
		}
		rep.Repeats = append(rep.Repeats, r)
	}

	rows, err := benchRows(ctx, jobs, opts.Workers)
	if err != nil {
		return nil, err
	}
	rep.BenchRows = rows

	best := rep.Repeats[0]
	for _, r := range rep.Repeats[1:] {
		if r.CellsPerSec(rep.Cells) > best.CellsPerSec(rep.Cells) {
			best = r
		}
	}
	secs := float64(best.WallNS) / 1e9
	rep.CellsPerSec = best.CellsPerSec(rep.Cells)
	rep.CyclesPerSec = float64(best.SimCycles) / secs
	rep.InstrsPerSec = float64(best.SimInstrs) / secs
	if best.SimCycles > 0 {
		rep.NsPerCycle = float64(best.WallNS) / float64(best.SimCycles)
		rep.AllocsPerCycle = float64(best.Allocs) / float64(best.SimCycles)
		rep.BytesPerCycle = float64(best.AllocBytes) / float64(best.SimCycles)
	}
	return rep, nil
}

// runOnce times one full pass over the matrix.
func runOnce(ctx context.Context, jobs []sweep.Job, workers int) (Repeat, error) {
	// Settle the heap so the allocation delta belongs to this repeat.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	results, err := sweep.Run(ctx, jobs, sweep.Options{Workers: workers})
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return Repeat{}, fmt.Errorf("perf: sweep: %w", err)
	}
	if jerr := sweep.FirstErr(results); jerr != nil {
		return Repeat{}, fmt.Errorf("perf: %w", jerr)
	}
	r := Repeat{
		WallNS:     wall.Nanoseconds(),
		Allocs:     m1.Mallocs - m0.Mallocs,
		AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
	}
	for _, res := range results {
		r.SimInstrs += res.Res.Committed
		r.SimCycles += res.Res.Cycles
	}
	return r, nil
}

// benchRows measures the per-benchmark breakdown: each benchmark's cells
// (contiguous in the bench-major matrix) run as one timed, allocation-
// metered group, serially with respect to the other benchmarks. The
// repeats above already warmed the program and simulator pools, so rows
// see steady-state throughput.
func benchRows(ctx context.Context, jobs []sweep.Job, workers int) ([]BenchRow, error) {
	var rows []BenchRow
	for lo := 0; lo < len(jobs); {
		hi := lo + 1
		for hi < len(jobs) && jobs[hi].Bench == jobs[lo].Bench {
			hi++
		}
		r, err := runOnce(ctx, jobs[lo:hi], workers)
		if err != nil {
			return nil, err
		}
		row := BenchRow{
			Bench:       jobs[lo].Bench,
			Cells:       hi - lo,
			WallNS:      r.WallNS,
			SimCycles:   r.SimCycles,
			CellsPerSec: r.CellsPerSec(hi - lo),
		}
		if r.SimCycles > 0 {
			row.NsPerCycle = float64(r.WallNS) / float64(r.SimCycles)
			row.AllocsPerCycle = float64(r.Allocs) / float64(r.SimCycles)
		}
		rows = append(rows, row)
		lo = hi
	}
	return rows, nil
}

// FileName returns the report's on-disk name, BENCH_<label>.json.
func (r *Report) FileName() string { return "BENCH_" + r.Label + ".json" }

// Write stores the report under dir (created if missing) and returns the
// full path.
func (r *Report) Write(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	path := filepath.Join(dir, r.FileName())
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("perf: %w", err)
	}
	return path, nil
}

// Load reads a report back, verifying its schema. Both the current v2
// schema and v1 (no bench_rows) are accepted: committed v1 baselines keep
// gating the aggregate metrics.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != Schema && r.Schema != SchemaV1 {
		return nil, fmt.Errorf("perf: %s holds schema %q, this binary reads %q (or %q baselines)", path, r.Schema, Schema, SchemaV1)
	}
	if r.Schema == SchemaV1 {
		// bench_rows is a v2 concept; a v1 document carrying one is corrupt.
		r.BenchRows = nil
	}
	return &r, nil
}

// Compare gates cur against base and returns an error when:
//
//   - the two reports measured different matrices (equal cell counts are
//     not equal work);
//   - cur's cell throughput fell more than maxRegress (a fraction, e.g.
//     0.15) below the baseline — in aggregate, or for any benchmark when
//     both reports carry per-benchmark rows (a v1 baseline gates only the
//     aggregate);
//   - maxAllocRegress is non-negative and cur's allocations per simulated
//     cycle exceed the baseline's by more than it. The bound is absolute
//     (allocs/cycle), not relative: the repository's steady state is zero
//     allocations per cycle, where a relative gate is vacuous.
//
// Faster or leaner is never an error.
func Compare(base, cur *Report, maxRegress, maxAllocRegress float64) error {
	if base.Preset != cur.Preset || base.Cells != cur.Cells ||
		base.Instructions != cur.Instructions ||
		!slices.Equal(base.Benchmarks, cur.Benchmarks) ||
		!slices.Equal(base.Seeds, cur.Seeds) {
		return fmt.Errorf("perf: baseline measured %s/%d cells at %d instrs over %v, current %s/%d at %d over %v — not comparable",
			base.Preset, base.Cells, base.Instructions, base.Benchmarks,
			cur.Preset, cur.Cells, cur.Instructions, cur.Benchmarks)
	}
	if base.CellsPerSec <= 0 {
		return fmt.Errorf("perf: baseline %s has no throughput", base.Label)
	}
	floor := base.CellsPerSec * (1 - maxRegress)
	if cur.CellsPerSec < floor {
		return fmt.Errorf("perf: %.1f cells/sec is a %.1f%% regression vs baseline %s (%.1f cells/sec; floor %.1f at -%.0f%%)",
			cur.CellsPerSec, 100*(1-cur.CellsPerSec/base.CellsPerSec),
			base.Label, base.CellsPerSec, floor, 100*maxRegress)
	}
	if maxAllocRegress >= 0 && cur.AllocsPerCycle > base.AllocsPerCycle+maxAllocRegress {
		return fmt.Errorf("perf: %.4f allocs/cycle exceeds baseline %s (%.4f) by more than %.4f — allocation creep on the cycle path",
			cur.AllocsPerCycle, base.Label, base.AllocsPerCycle, maxAllocRegress)
	}
	if len(base.BenchRows) > 0 && len(cur.BenchRows) > 0 {
		curRows := make(map[string]BenchRow, len(cur.BenchRows))
		for _, row := range cur.BenchRows {
			curRows[row.Bench] = row
		}
		for _, b := range base.BenchRows {
			c, ok := curRows[b.Bench]
			if !ok || b.CellsPerSec <= 0 {
				continue // matrix identity matched above; tolerate partial rows
			}
			if c.CellsPerSec < b.CellsPerSec*(1-maxRegress) {
				return fmt.Errorf("perf: %s: %.1f cells/sec is a %.1f%% regression vs baseline %s (%.1f cells/sec at -%.0f%%)",
					b.Bench, c.CellsPerSec, 100*(1-c.CellsPerSec/b.CellsPerSec),
					base.Label, b.CellsPerSec, 100*maxRegress)
			}
		}
	}
	return nil
}

// Summary renders a one-line overview for progress output.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %d cells (%s), %.1f cells/s, %.2fM sim-cycles/s, %.0f ns/cycle, %.3f allocs/cycle",
		r.Label, r.Cells, r.Preset, r.CellsPerSec, r.CyclesPerSec/1e6, r.NsPerCycle, r.AllocsPerCycle)
}
