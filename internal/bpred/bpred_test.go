package bpred

import (
	"testing"

	"safespec/internal/isa"
)

func TestCondTraining(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 100
	// Cold counters predict not-taken.
	if pred := p.PredictCond(pc, 5); pred.Taken {
		t.Error("cold prediction should be not-taken")
	}
	// Two taken updates at the same history saturate toward taken.
	hist := p.HistorySnapshot()
	p.UpdateCond(pc, hist, true, false)
	p.UpdateCond(pc, hist, true, false)
	if pred := p.PredictCond(pc, 5); !pred.Taken || pred.Target != 5 {
		t.Errorf("trained prediction = %+v, want taken to 5", pred)
	}
	// Not-taken retraining flips it back.
	p.UpdateCond(pc, hist, false, true)
	p.UpdateCond(pc, hist, false, true)
	p.UpdateCond(pc, hist, false, true)
	if pred := p.PredictCond(pc, 5); pred.Taken {
		t.Error("retrained prediction should be not-taken")
	}
}

func TestTrainingUsesFetchHistory(t *testing.T) {
	// Training must hit the same PHT entry the prediction consulted even
	// if the global history has advanced since (the loop-branch case).
	p := New(DefaultConfig())
	const pc = 7
	for i := 0; i < 20; i++ {
		hist := p.HistorySnapshot()
		pred := p.PredictCond(pc, 2)
		p.SpeculateHistory(true)
		p.UpdateCond(pc, hist, true, pred.Taken)
	}
	if pred := p.PredictCond(pc, 2); !pred.Taken {
		t.Error("loop branch not learned despite 20 taken iterations")
	}
}

func TestBTBPredictAndUpdate(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 42
	if pred := p.PredictIndirect(pc); pred.HasTarget {
		t.Error("cold BTB predicted a target")
	}
	p.UpdateIndirect(pc, 777, false)
	pred := p.PredictIndirect(pc)
	if !pred.HasTarget || pred.Target != 777 {
		t.Errorf("BTB prediction = %+v", pred)
	}
}

// TestBTBAliasing demonstrates the Spectre v2 pollution mechanism: two
// branches whose PCs collide in the direct-mapped BTB (same index, same
// truncated tag) train each other's predictions.
func TestBTBAliasing(t *testing.T) {
	cfg := DefaultConfig() // 512 entries, 8 tag bits
	p := New(cfg)
	victimPC := 100
	// Alias: same index (mod 512) and same 8-bit tag of pc/512.
	attackerPC := victimPC + 512*(1<<cfg.BTBTagBits)
	p.UpdateIndirect(attackerPC, 999, false) // the attacker trains its own branch
	pred := p.PredictIndirect(victimPC)      // ...and the victim inherits it
	if !pred.HasTarget || pred.Target != 999 {
		t.Errorf("aliasing victim prediction = %+v, want target 999", pred)
	}
}

func TestPoisonBTB(t *testing.T) {
	p := New(DefaultConfig())
	p.PoisonBTB(10, 333)
	if pred := p.PredictIndirect(10); !pred.HasTarget || pred.Target != 333 {
		t.Errorf("poisoned prediction = %+v", pred)
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	p.PushReturn(11)
	p.PushReturn(22)
	if pred := p.PredictReturn(); pred.Target != 22 {
		t.Errorf("first return = %d, want 22", pred.Target)
	}
	if pred := p.PredictReturn(); pred.Target != 11 {
		t.Errorf("second return = %d, want 11", pred.Target)
	}
	if pred := p.PredictReturn(); pred.HasTarget {
		t.Error("empty RAS predicted a target")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	for i := 0; i <= cfg.RASEntries; i++ { // one more than capacity
		p.PushReturn(i)
	}
	// The newest entries must survive; the oldest (0) was dropped.
	for want := cfg.RASEntries; want >= 1; want-- {
		pred := p.PredictReturn()
		if !pred.HasTarget || pred.Target != want {
			t.Fatalf("pop = %+v, want %d", pred, want)
		}
	}
	if pred := p.PredictReturn(); pred.HasTarget {
		t.Error("entry 0 should have been dropped on overflow")
	}
}

func TestHistorySnapshotRestore(t *testing.T) {
	p := New(DefaultConfig())
	p.SpeculateHistory(true)
	snap := p.HistorySnapshot()
	p.SpeculateHistory(false)
	p.SpeculateHistory(true)
	p.RestoreHistory(snap)
	if p.HistorySnapshot() != snap {
		t.Error("history restore failed")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	p := New(DefaultConfig())
	p.PushReturn(1)
	p.PushReturn(2)
	top, entries := p.RASSnapshot()
	p.PredictReturn()
	p.PushReturn(99)
	p.RestoreRAS(top, entries)
	if pred := p.PredictReturn(); pred.Target != 2 {
		t.Errorf("after restore, pop = %d, want 2", pred.Target)
	}
}

func TestStatsAndReset(t *testing.T) {
	p := New(DefaultConfig())
	p.UpdateCond(1, 0, true, false)
	p.UpdateIndirect(2, 3, false)
	p.UpdateReturn(true)
	s := p.Stats
	if s.CondMispredicted != 1 || s.IndMispredicted != 1 || s.RetMispredicted != 0 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.MispredictRate(); got != 2.0/3.0 {
		t.Errorf("mispredict rate = %v", got)
	}
	p.Reset()
	if p.Stats != (Stats{}) {
		t.Error("reset did not clear stats")
	}
	if pred := p.PredictIndirect(2); pred.HasTarget {
		t.Error("reset did not clear BTB")
	}
}

func TestTrainCondTaken(t *testing.T) {
	p := New(DefaultConfig())
	p.TrainCondTaken(50, true)
	if pred := p.PredictCond(50, 9); !pred.Taken {
		t.Error("forced taken training ignored")
	}
	p.TrainCondTaken(50, false)
	if pred := p.PredictCond(50, 9); pred.Taken {
		t.Error("forced not-taken training ignored")
	}
}

func TestHistBitsDefaulting(t *testing.T) {
	p := New(Config{GshareBits: 10, HistBits: 0, BTBEntries: 16, RASEntries: 4})
	// HistBits <= 0 defaults to GshareBits; speculating 10 bits must not
	// panic and must stay within the mask.
	for i := 0; i < 30; i++ {
		p.SpeculateHistory(i%2 == 0)
	}
	if p.HistorySnapshot() >= 1<<10 {
		t.Error("history exceeded its mask")
	}
}

func TestClassifyPredicted(t *testing.T) {
	if !ClassifyPredicted(isa.OpBeq) || !ClassifyPredicted(isa.OpRet) {
		t.Error("predicted ops misclassified")
	}
	if ClassifyPredicted(isa.OpJmp) || ClassifyPredicted(isa.OpAdd) {
		t.Error("non-predicted ops misclassified")
	}
}

func TestNotTakenPrediction(t *testing.T) {
	p := New(DefaultConfig())
	pred := p.PredictCond(5, 100)
	if pred.Taken {
		t.Fatal("cold should be not-taken")
	}
	if !pred.HasTarget || pred.Target != 6 {
		t.Errorf("fall-through target = %+v, want 6", pred)
	}
}
