// Package bpred implements the branch prediction unit of the simulated CPU:
// a gshare direction predictor, a tagged (but aliasable) branch target
// buffer, and a return address stack.
//
// The threat model of the paper assumes the attacker fully controls the
// predictor state (Section II-C): Spectre v1 mistrains the direction
// predictor with in-bounds executions, and Spectre v2 pollutes the BTB via
// index aliasing. Both behaviours emerge naturally from this implementation:
// gshare counters are trained by every committed branch, and the BTB is
// indexed by low PC bits so distinct branches can collide.
package bpred

import (
	"safespec/internal/isa"
	"safespec/internal/stats"
)

// Config sizes the predictor structures.
type Config struct {
	// GshareBits is log2 of the pattern history table size.
	GshareBits int
	// HistBits is the global-history length in bits (<= GshareBits). A
	// shorter history warms up faster on short simulation windows.
	HistBits int
	// BTBEntries is the number of BTB slots (direct-mapped).
	BTBEntries int
	// BTBTagBits is how many PC bits (above the index) the BTB compares.
	// Small tags make aliasing (and hence Spectre v2 pollution) possible,
	// mirroring real hardware.
	BTBTagBits int
	// RASEntries is the return-address-stack depth.
	RASEntries int
}

// DefaultConfig returns a predictor comparable to the paper's simulated
// Skylake front end.
func DefaultConfig() Config {
	return Config{GshareBits: 14, HistBits: 8, BTBEntries: 512, BTBTagBits: 8, RASEntries: 16}
}

// Stats counts prediction outcomes.
type Stats struct {
	// CondPredicted / CondMispredicted count conditional branches.
	CondPredicted, CondMispredicted uint64
	// IndPredicted / IndMispredicted count indirect jumps and calls.
	IndPredicted, IndMispredicted uint64
	// RetPredicted / RetMispredicted count returns.
	RetPredicted, RetMispredicted uint64
}

// Add accumulates o into s (summing sibling SMT views into core totals).
func (s *Stats) Add(o Stats) {
	s.CondPredicted += o.CondPredicted
	s.CondMispredicted += o.CondMispredicted
	s.IndPredicted += o.IndPredicted
	s.IndMispredicted += o.IndMispredicted
	s.RetPredicted += o.RetPredicted
	s.RetMispredicted += o.RetMispredicted
}

// MispredictRate returns total mispredictions over total predictions.
func (s Stats) MispredictRate() float64 {
	mis := s.CondMispredicted + s.IndMispredicted + s.RetMispredicted
	tot := s.CondPredicted + s.IndPredicted + s.RetPredicted
	return stats.Rate(mis, tot)
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target int
}

// Predictor is the full branch prediction unit.
type Predictor struct {
	cfg      Config
	pht      []uint8 // 2-bit saturating counters
	history  uint64
	histMask uint64 // history length mask
	phtMask  uint64 // table index mask
	btb      []btbEntry
	ras      []int
	rasTop   int
	// Stats accumulates outcome counters.
	Stats Stats
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	if cfg.HistBits <= 0 || cfg.HistBits > cfg.GshareBits {
		cfg.HistBits = cfg.GshareBits
	}
	return &Predictor{
		cfg:      cfg,
		pht:      make([]uint8, 1<<cfg.GshareBits),
		histMask: uint64(1<<cfg.HistBits) - 1,
		phtMask:  uint64(1<<cfg.GshareBits) - 1,
		btb:      make([]btbEntry, cfg.BTBEntries),
		ras:      make([]int, cfg.RASEntries),
	}
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// SiblingView returns a predictor sharing p's trained tables — the pattern
// history table and the BTB backing arrays — with private global history,
// return-address stack and statistics. This models SMT front-end sharing:
// sibling hardware threads predict through the same tables, which is exactly
// the channel cross-thread branch-target-injection attacks exploit (one
// thread trains a BTB entry whose index/tag another thread's branch hits).
func (p *Predictor) SiblingView() *Predictor {
	return &Predictor{
		cfg:      p.cfg,
		pht:      p.pht,
		histMask: p.histMask,
		phtMask:  p.phtMask,
		btb:      p.btb,
		ras:      make([]int, len(p.ras)),
	}
}

// SharesTablesWith reports whether p and q are views over the same backing
// tables (one is a SiblingView of the other, or both of a common base).
func (p *Predictor) SharesTablesWith(q *Predictor) bool {
	return len(p.pht) > 0 && len(q.pht) > 0 && &p.pht[0] == &q.pht[0]
}

// ResetPrivate clears only the view-private state — history, RAS, stats —
// leaving the shared tables untouched. Sibling views use it when the base
// predictor was reset in place (its Reset already cleared the tables).
func (p *Predictor) ResetPrivate() {
	p.history = 0
	p.rasTop = 0
	p.Stats = Stats{}
}

func (p *Predictor) phtIndex(pc int) uint64 {
	return (uint64(pc) ^ p.history) & p.phtMask
}

func (p *Predictor) btbIndex(pc int) (idx int, tag uint64) {
	n := uint64(len(p.btb))
	idx = int(uint64(pc) % n)
	tag = (uint64(pc) / n) & ((1 << p.cfg.BTBTagBits) - 1)
	return idx, tag
}

// Prediction is the front end's guess for one branch-like instruction.
type Prediction struct {
	// Taken is the predicted direction (always true for jumps/calls/rets).
	Taken bool
	// Target is the predicted next instruction index.
	Target int
	// HasTarget reports whether a target prediction was available (BTB/RAS
	// hit). Without a target the front end falls through and relies on
	// execute-time redirect.
	HasTarget bool
}

// PredictCond predicts a conditional branch at pc with the given
// fall-through and taken targets.
func (p *Predictor) PredictCond(pc, takenTarget int) Prediction {
	ctr := p.pht[p.phtIndex(pc)]
	taken := ctr >= 2
	pred := Prediction{Taken: taken}
	if taken {
		pred.Target = takenTarget
		pred.HasTarget = true
	} else {
		pred.Target = pc + 1
		pred.HasTarget = true
	}
	return pred
}

// PredictIndirect predicts an indirect jump/call at pc from the BTB.
func (p *Predictor) PredictIndirect(pc int) Prediction {
	idx, tag := p.btbIndex(pc)
	e := p.btb[idx]
	if e.valid && e.tag == tag {
		return Prediction{Taken: true, Target: e.target, HasTarget: true}
	}
	return Prediction{Taken: true}
}

// PredictReturn pops the RAS.
func (p *Predictor) PredictReturn() Prediction {
	if p.rasTop == 0 {
		return Prediction{Taken: true}
	}
	p.rasTop--
	return Prediction{Taken: true, Target: p.ras[p.rasTop], HasTarget: true}
}

// PushReturn records a call's return address on the RAS.
func (p *Predictor) PushReturn(retPC int) {
	if p.rasTop == len(p.ras) {
		// Overflow: shift down (oldest entry lost), as in real RAS designs.
		copy(p.ras, p.ras[1:])
		p.rasTop--
	}
	p.ras[p.rasTop] = retPC
	p.rasTop++
}

// SpeculateHistory shifts the predicted direction into the global history.
// The pipeline calls this at prediction time and restores on squash via
// HistorySnapshot/RestoreHistory.
func (p *Predictor) SpeculateHistory(taken bool) {
	p.history <<= 1
	if taken {
		p.history |= 1
	}
	p.history &= p.histMask
}

// HistorySnapshot returns the current global history register.
func (p *Predictor) HistorySnapshot() uint64 { return p.history }

// RestoreHistory rewinds the global history (used on misprediction).
func (p *Predictor) RestoreHistory(h uint64) { p.history = h }

// RASSnapshot returns a copy of the return-address stack state.
func (p *Predictor) RASSnapshot() (top int, entries []int) {
	cp := make([]int, len(p.ras))
	copy(cp, p.ras)
	return p.rasTop, cp
}

// SnapshotRASInto copies the return-address stack into buf (len >= RAS
// depth) and returns the current top. Unlike RASSnapshot it allocates
// nothing; the pipeline recycles its snapshot buffers through a free list.
func (p *Predictor) SnapshotRASInto(buf []int) (top int) {
	copy(buf, p.ras)
	return p.rasTop
}

// RestoreRAS rewinds the return-address stack (used on misprediction).
func (p *Predictor) RestoreRAS(top int, entries []int) {
	p.rasTop = top
	copy(p.ras, entries)
}

// UpdateCond trains the direction predictor with the resolved outcome of a
// conditional branch and records whether the prediction was correct.
// histAtFetch is the global-history snapshot taken when the branch was
// predicted, so training hits the same PHT entry the prediction read
// (real designs checkpoint this alongside the branch).
func (p *Predictor) UpdateCond(pc int, histAtFetch uint64, taken, correct bool) {
	idx := (uint64(pc) ^ histAtFetch) & p.phtMask
	ctr := p.pht[idx]
	if taken {
		if ctr < 3 {
			ctr++
		}
	} else if ctr > 0 {
		ctr--
	}
	p.pht[idx] = ctr
	p.Stats.CondPredicted++
	if !correct {
		p.Stats.CondMispredicted++
	}
}

// UpdateIndirect trains the BTB with the resolved target of an indirect
// branch. This is the pollution vector of Spectre v2: any branch whose PC
// aliases into the same BTB slot trains the prediction for its victims.
func (p *Predictor) UpdateIndirect(pc, target int, correct bool) {
	idx, tag := p.btbIndex(pc)
	p.btb[idx] = btbEntry{valid: true, tag: tag, target: target}
	p.Stats.IndPredicted++
	if !correct {
		p.Stats.IndMispredicted++
	}
}

// UpdateReturn records a return outcome.
func (p *Predictor) UpdateReturn(correct bool) {
	p.Stats.RetPredicted++
	if !correct {
		p.Stats.RetMispredicted++
	}
}

// PoisonBTB force-installs a BTB mapping for pc (test/attack helper that
// models the attacker's assumed full control over predictor state).
func (p *Predictor) PoisonBTB(pc, target int) {
	idx, tag := p.btbIndex(pc)
	p.btb[idx] = btbEntry{valid: true, tag: tag, target: target}
}

// TrainCondTaken force-saturates the direction counter for pc toward taken
// (attack helper mirroring mistraining loops).
func (p *Predictor) TrainCondTaken(pc int, taken bool) {
	idx := p.phtIndex(pc)
	if taken {
		p.pht[idx] = 3
	} else {
		p.pht[idx] = 0
	}
}

// Reset clears all predictor state and statistics.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 0
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	p.history = 0
	p.rasTop = 0
	p.Stats = Stats{}
}

// ClassifyPredicted reports whether op consults this predictor.
func ClassifyPredicted(op isa.Op) bool { return isa.IsPredicted(op) }
