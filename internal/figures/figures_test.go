package figures

import (
	"context"
	"strings"
	"testing"

	"safespec/internal/sweep"
)

// sweepOnce caches one reduced sweep across the tests in this package.
var sweepCache []BenchResult

func testSweep(t *testing.T) []BenchResult {
	t.Helper()
	if sweepCache != nil {
		return sweepCache
	}
	sc := QuickSweep()
	sc.Benchmarks = []string{"perlbench", "mcf", "lbm", "exchange2", "gcc", "pop2"}
	res, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	sweepCache = res
	return res
}

func TestRunSweepUnknownBenchmark(t *testing.T) {
	sc := QuickSweep()
	sc.Benchmarks = []string{"not-a-benchmark"}
	if _, err := RunSweep(sc); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestSweepProducesAllModes(t *testing.T) {
	for _, r := range testSweep(t) {
		if r.Baseline == nil || r.WFC == nil || r.WFB == nil {
			t.Fatalf("%s: missing mode results", r.Name)
		}
		if r.Baseline.Committed == 0 {
			t.Errorf("%s: baseline committed nothing", r.Name)
		}
	}
}

// TestGroupRejectsTrueDuplicate guards against the same (bench, mode,
// seed) cell appearing twice — that is double-counting, not a seed fan.
func TestGroupRejectsTrueDuplicate(t *testing.T) {
	sc := QuickSweep()
	sc.Benchmarks = []string{"exchange2"}
	sc.Instructions = 2_000
	jobs, err := sc.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	results, err := sweep.Run(context.Background(), append(jobs, jobs[0]), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Group(results); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate (bench, mode, seed) must error, got %v", err)
	}
}

// TestGroupRejectsRaggedFan guards the pairwise-normalization contract:
// modes with different seed counts cannot be averaged against each other.
func TestGroupRejectsRaggedFan(t *testing.T) {
	sc := QuickSweep()
	sc.Benchmarks = []string{"exchange2"}
	sc.Instructions = 2_000
	jobs, err := sc.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	extra := jobs[0] // one more baseline seed than wfc/wfb
	extra.Seed = 7
	results, err := sweep.Run(context.Background(), append(jobs, extra), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Group(results); err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Errorf("ragged seed fan must error, got %v", err)
	}
}

// TestSeedFanCollapse runs a 3-seed fan through the full path: Group must
// collapse it into one BenchResult with aligned Runs slices, Performance
// must average across seeds with a confidence interval, and
// FormatPerformance must carry the error bar.
func TestSeedFanCollapse(t *testing.T) {
	sc := QuickSweep()
	sc.Benchmarks = []string{"exchange2", "mcf"}
	sc.Seeds = []int64{1, 2, 3}
	sc.Instructions = 2_000
	rows, err := RunSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.BaselineRuns) != 3 || len(r.WFCRuns) != 3 || len(r.WFBRuns) != 3 {
			t.Fatalf("%s: fan not collapsed: %d/%d/%d runs",
				r.Name, len(r.BaselineRuns), len(r.WFCRuns), len(r.WFBRuns))
		}
		if r.Baseline != r.BaselineRuns[0] || r.WFC != r.WFCRuns[0] {
			t.Errorf("%s: representative is not the first seed", r.Name)
		}
	}
	perf := Performance(rows)
	for _, p := range perf {
		if p.Seeds != 3 {
			t.Errorf("%s: Seeds = %d, want 3", p.Bench, p.Seeds)
		}
		if p.NormIPC < 0.5 || p.NormIPC > 1.5 {
			t.Errorf("%s: mean normalized IPC %.3f implausible", p.Bench, p.NormIPC)
		}
		if p.NormIPCCI < 0 {
			t.Errorf("%s: negative CI %.4f", p.Bench, p.NormIPCCI)
		}
	}
	if out := FormatPerformance(perf); !strings.Contains(out, "n=3, ipc ±") {
		t.Errorf("multi-seed format missing error bar:\n%s", out)
	}
	// Sizing across the fan stays within the architectural bounds.
	for _, s := range Sizing(rows) {
		if s.DCacheWFC > 72 || s.ICacheWFC > 224 {
			t.Errorf("%s: fan-max sizing exceeds bounds: %+v", s.Bench, s)
		}
		if s.DCacheWFC == 0 && s.ICacheWFC == 0 {
			t.Errorf("%s: fan sizing empty", s.Bench)
		}
	}
}

// TestSizingShapes checks the qualitative Figures 6-9 properties: WFC
// occupancy >= WFB occupancy (state lives longer until commit than until
// branch resolution), and all sizes within the worst-case bounds.
func TestSizingShapes(t *testing.T) {
	rows := Sizing(testSweep(t))
	if len(rows) == 0 {
		t.Fatal("no sizing rows")
	}
	for _, r := range rows {
		if r.DCacheWFC < r.DCacheWFB {
			t.Errorf("%s: d-cache WFC %d < WFB %d", r.Bench, r.DCacheWFC, r.DCacheWFB)
		}
		if r.ICacheWFC < r.ICacheWFB {
			t.Errorf("%s: i-cache WFC %d < WFB %d", r.Bench, r.ICacheWFC, r.ICacheWFB)
		}
		if r.DCacheWFC > 72 || r.DTLBWFC > 72 {
			t.Errorf("%s: d-side occupancy exceeds the LSQ bound", r.Bench)
		}
		if r.ICacheWFC > 224 || r.ITLBWFC > 224 {
			t.Errorf("%s: i-side occupancy exceeds the ROB bound", r.Bench)
		}
	}
}

// TestPerformanceShapes checks the qualitative Figures 11-16 properties.
func TestPerformanceShapes(t *testing.T) {
	rows := Performance(testSweep(t))
	gm := GeoMeanNormIPC(rows)
	// Figure 11: SafeSpec IPC within a few percent of baseline.
	if gm < 0.85 || gm > 1.15 {
		t.Errorf("geomean normalized IPC = %.3f, expected near parity", gm)
	}
	for _, r := range rows {
		// Figure 12: miss rates are rates.
		for _, v := range []float64{r.DMissWFC, r.DMissBase, r.IMissWFC, r.IMissBase,
			r.DShadowHitShare, r.IShadowHitShare, r.CommitRateI, r.CommitRateD} {
			if v < 0 || v > 1 {
				t.Errorf("%s: rate out of [0,1]: %+v", r.Bench, r)
				break
			}
		}
		if r.NormIPC <= 0 {
			t.Errorf("%s: non-positive normalized IPC", r.Bench)
		}
	}
}

func TestTableVFromSizing(t *testing.T) {
	rows := TableVFromSizing(Sizing(testSweep(t)))
	if rows[0].AreaMM2 <= rows[1].AreaMM2 {
		t.Error("Secure sizing must cost more area than measured WFC sizing")
	}
	if rows[0].PowerMW <= rows[1].PowerMW {
		t.Error("Secure sizing must cost more power")
	}
}

func TestFormatters(t *testing.T) {
	res := testSweep(t)
	siz := FormatSizing(Sizing(res))
	if !strings.Contains(siz, "mcf") || !strings.Contains(siz, "fig6") {
		t.Error("sizing table malformed")
	}
	perf := FormatPerformance(Performance(res))
	if !strings.Contains(perf, "geomean") {
		t.Error("performance table missing geomean")
	}
	tv := FormatTableV(TableVFromSizing(Sizing(res)))
	if !strings.Contains(tv, "Secure") || !strings.Contains(tv, "shadow-dcache") {
		t.Error("Table V output malformed")
	}
}

// TestSecurityMatrix runs the full attack matrix through the figures API
// and checks it against the paper's Tables III and IV.
func TestSecurityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("attack matrix in -short mode")
	}
	rows, err := Security()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Baseline {
			t.Errorf("%s: did not leak on the baseline", r.Attack)
		}
		if r.WFC {
			t.Errorf("%s: leaked under WFC", r.Attack)
		}
		wantWFB := r.Attack == "meltdown" // only Meltdown defeats WFB
		if r.WFB != wantWFB {
			t.Errorf("%s: WFB leaked=%v, want %v", r.Attack, r.WFB, wantWFB)
		}
	}
	tr, err := Transient()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TinyLeaked {
		t.Error("TSA must leak through an undersized Replace shadow")
	}
	if tr.SecureWFCLeaked || tr.SecureWFBLeaked {
		t.Error("TSA must be closed by Secure sizing")
	}
	out := FormatSecurity(rows, tr)
	if !strings.Contains(out, "meltdown") || !strings.Contains(out, "transient") {
		t.Error("security table malformed")
	}
}

// TestGroupRejectsMisalignedFan guards seed alignment, not just counts:
// equal-length fans whose index i holds different seeds across modes would
// silently normalize unrelated runs against each other.
func TestGroupRejectsMisalignedFan(t *testing.T) {
	sc := QuickSweep()
	sc.Benchmarks = []string{"exchange2"}
	sc.Seeds = []int64{1, 2}
	sc.Instructions = 2_000
	jobs, err := sc.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// Same fan size everywhere, but baseline runs seeds {1,9} while
	// wfc/wfb run {1,2}.
	for i := range jobs {
		if jobs[i].Mode == "baseline" && jobs[i].Seed == 2 {
			jobs[i].Seed = 9
		}
	}
	results, err := sweep.Run(context.Background(), jobs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Group(results); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned seed fan must error, got %v", err)
	}
}
