// Package figures regenerates every table and figure of the paper's
// evaluation (Section VI): the shadow-structure sizing study (Figures 6-9),
// the performance comparison (Figures 11-16), the security matrices
// (Tables III and IV) and the hardware overhead (Table V). It is shared by
// cmd/safespec-bench and the repository's benchmark suite.
package figures

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"safespec/internal/attacks"
	"safespec/internal/core"
	"safespec/internal/hwmodel"
	"safespec/internal/stats"
	"safespec/internal/sweep"
)

// SweepConfig bounds the per-benchmark runs.
type SweepConfig struct {
	// Instructions is the committed-instruction budget per run.
	Instructions uint64
	// MaxCycles is the safety cycle bound per run.
	MaxCycles uint64
	// Workers bounds the worker pool (<=0 selects GOMAXPROCS; 1 = serial).
	Workers int
	// Timeout bounds the whole sweep (0 = none).
	Timeout time.Duration
	// Benchmarks restricts the sweep (nil = all 21).
	Benchmarks []string
	// Sinks additionally observe every per-job result in job order (e.g.
	// the JSON-lines output of cmd/safespec-bench).
	Sinks []sweep.Sink
}

// DefaultSweep returns the configuration used by cmd/safespec-bench.
func DefaultSweep() SweepConfig {
	return SweepConfig{Instructions: 120_000, MaxCycles: 30_000_000}
}

// QuickSweep returns a reduced configuration for tests and CI, with run
// limits taken from the sweep.Quick smoke matrix (the single source of the
// quick budget). The benchmark set is left unrestricted; callers that want
// Quick's subset use it explicitly.
func QuickSweep() SweepConfig {
	q := sweep.Quick()
	return SweepConfig{Instructions: q.Instructions, MaxCycles: q.MaxCycles}
}

// Matrix expands the config into the sweep job list (benchmark-major,
// baseline/WFC/WFB per benchmark, occupancy sampling on).
func (sc SweepConfig) Matrix() ([]sweep.Job, error) {
	spec := sweep.MatrixSpec{
		Benchmarks:      sc.Benchmarks,
		Instructions:    sc.Instructions,
		MaxCycles:       sc.MaxCycles,
		SampleOccupancy: true,
	}
	return spec.Jobs()
}

// BenchResult holds one benchmark's results under the three modes.
type BenchResult struct {
	Name     string
	Baseline *core.Results
	WFC      *core.Results
	WFB      *core.Results
}

// RunSweep executes every selected workload under baseline, WFC and WFB
// with occupancy sampling enabled, returning results in figure order. It is
// a thin consumer of internal/sweep: the matrix expansion, worker pool and
// sinks all live there.
func RunSweep(sc SweepConfig) ([]BenchResult, error) {
	jobs, err := sc.Matrix()
	if err != nil {
		return nil, err
	}
	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Workers: sc.Workers, Timeout: sc.Timeout, Sinks: sc.Sinks})
	if err != nil {
		return nil, err
	}
	return Group(results)
}

// Group folds per-job sweep results into per-benchmark rows, preserving job
// order. The jobs must come from a single-seed standard-modes matrix (as
// built by SweepConfig.Matrix); the first per-job error aborts with that
// error, and a duplicate (bench, mode) cell — e.g. from a multi-seed fan —
// is rejected rather than silently keeping only the last seed.
func Group(results []sweep.Result) ([]BenchResult, error) {
	if err := sweep.FirstErr(results); err != nil {
		return nil, err
	}
	var rows []BenchResult
	index := map[string]int{}
	for _, r := range results {
		i, ok := index[r.Job.Bench]
		if !ok {
			i = len(rows)
			index[r.Job.Bench] = i
			rows = append(rows, BenchResult{Name: r.Job.Bench})
		}
		var slot **core.Results
		switch r.Job.Mode {
		case "baseline":
			slot = &rows[i].Baseline
		case "wfc":
			slot = &rows[i].WFC
		case "wfb":
			slot = &rows[i].WFB
		default:
			return nil, fmt.Errorf("figures: job %s: unknown mode %q", r.Job, r.Job.Mode)
		}
		if *slot != nil {
			return nil, fmt.Errorf("figures: job %s: duplicate (bench, mode) result; Group needs a single-seed matrix", r.Job)
		}
		*slot = r.Res
	}
	return rows, nil
}

// SizingRow is one benchmark's Figures 6-9 data point: the shadow-structure
// occupancy covering 99.99% of sampled cycles, under WFC and WFB.
type SizingRow struct {
	Bench                string
	ICacheWFC, ICacheWFB int
	DCacheWFC, DCacheWFB int
	ITLBWFC, ITLBWFB     int
	DTLBWFC, DTLBWFB     int
}

// Sizing extracts the Figures 6-9 series from a sweep.
func Sizing(results []BenchResult) []SizingRow {
	const p = 0.9999
	rows := make([]SizingRow, 0, len(results))
	for _, r := range results {
		row := SizingRow{Bench: r.Name}
		if r.WFC.OccI != nil {
			row.ICacheWFC = r.WFC.OccI.Percentile(p)
			row.DCacheWFC = r.WFC.OccD.Percentile(p)
			row.ITLBWFC = r.WFC.OccITLB.Percentile(p)
			row.DTLBWFC = r.WFC.OccDTLB.Percentile(p)
		}
		if r.WFB.OccI != nil {
			row.ICacheWFB = r.WFB.OccI.Percentile(p)
			row.DCacheWFB = r.WFB.OccD.Percentile(p)
			row.ITLBWFB = r.WFB.OccITLB.Percentile(p)
			row.DTLBWFB = r.WFB.OccDTLB.Percentile(p)
		}
		rows = append(rows, row)
	}
	return rows
}

// PerfRow is one benchmark's Figures 11-16 data point.
type PerfRow struct {
	Bench string
	// NormIPC is WFC IPC over baseline IPC (Figure 11).
	NormIPC float64
	// DMissWFC / DMissBase are the D-cache read miss rates (Figure 12).
	DMissWFC, DMissBase float64
	// DShadowHitShare is the shadow share of d-side hits (Figure 13).
	DShadowHitShare float64
	// IMissWFC / IMissBase are the I-cache miss rates (Figure 14).
	IMissWFC, IMissBase float64
	// IShadowHitShare is the shadow share of i-side hits (Figure 15).
	IShadowHitShare float64
	// CommitRateI / CommitRateD are the shadow commit rates (Figure 16).
	CommitRateI, CommitRateD float64
}

// Performance extracts the Figures 11-16 series from a sweep.
func Performance(results []BenchResult) []PerfRow {
	rows := make([]PerfRow, 0, len(results))
	for _, r := range results {
		row := PerfRow{Bench: r.Name}
		if r.Baseline.IPC() > 0 {
			row.NormIPC = r.WFC.IPC() / r.Baseline.IPC()
		}
		row.DMissWFC = r.WFC.DReadMissRate()
		row.DMissBase = r.Baseline.DReadMissRate()
		row.DShadowHitShare = r.WFC.DShadowHitShare()
		row.IMissWFC = r.WFC.IFetchMissRate()
		row.IMissBase = r.Baseline.IFetchMissRate()
		row.IShadowHitShare = r.WFC.IShadowHitShare()
		row.CommitRateI = r.WFC.ShI.CommitRate()
		row.CommitRateD = r.WFC.ShD.CommitRate()
		rows = append(rows, row)
	}
	return rows
}

// GeoMeanNormIPC returns the Figure 11 headline number.
func GeoMeanNormIPC(rows []PerfRow) float64 {
	xs := make([]float64, 0, len(rows))
	for _, r := range rows {
		xs = append(xs, r.NormIPC)
	}
	return stats.GeoMean(xs)
}

// SecurityRow is one Table III/IV cell set.
type SecurityRow struct {
	Attack             string
	Baseline, WFB, WFC bool // leaked?
}

// Security runs the attack matrix (Tables III and IV rows except the TSA).
func Security() ([]SecurityRow, error) {
	var rows []SecurityRow
	for _, a := range attacks.All() {
		row := SecurityRow{Attack: a.Name}
		for _, m := range []struct {
			cfg  core.Config
			dest *bool
		}{
			{core.Baseline(), &row.Baseline},
			{core.WFB(), &row.WFB},
			{core.WFC(), &row.WFC},
		} {
			out, err := attacks.Execute(a, m.cfg)
			if err != nil {
				return nil, err
			}
			*m.dest = out.Leaked
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TransientRow reports the TSA experiment (the Table IV "Transient" row
// plus the Section V leak demonstration).
type TransientRow struct {
	// TinyLeaked is the undersized Replace-on-full shadow (leaks).
	TinyLeaked bool
	// SecureWFCLeaked / SecureWFBLeaked use worst-case sizing (closed).
	SecureWFCLeaked, SecureWFBLeaked bool
}

// Transient runs the TSA under the vulnerable and Secure configurations.
func Transient() (TransientRow, error) {
	tsa := attacks.TSA{Secret: attacks.DefaultSecret}
	var row TransientRow

	tiny := core.WFC().WithShadowPolicy(attacks.TinyShadowPolicy())
	out, err := tsa.Run(tiny)
	if err != nil {
		return row, err
	}
	row.TinyLeaked = out.Leaked

	out, err = tsa.Run(core.WFC())
	if err != nil {
		return row, err
	}
	row.SecureWFCLeaked = out.Leaked

	out, err = tsa.Run(core.WFB())
	if err != nil {
		return row, err
	}
	row.SecureWFBLeaked = out.Leaked
	return row, nil
}

// TableVFromSizing derives the WFC row of Table V from measured 99.99%
// sizing (the maxima across benchmarks), alongside the Secure row.
func TableVFromSizing(rows []SizingRow) [2]hwmodel.Report {
	wfc := hwmodel.ShadowSizes{DCache: 1, ICache: 1, DTLB: 1, ITLB: 1}
	for _, r := range rows {
		wfc.DCache = max(wfc.DCache, r.DCacheWFC)
		wfc.ICache = max(wfc.ICache, r.ICacheWFC)
		wfc.DTLB = max(wfc.DTLB, r.DTLBWFC)
		wfc.ITLB = max(wfc.ITLB, r.ITLBWFC)
	}
	return hwmodel.TableV(hwmodel.Tech40nm(), hwmodel.SecureSizes(72, 224), wfc)
}

// --- formatting ---

// FormatSizing renders the Figures 6-9 series as an aligned table.
func FormatSizing(rows []SizingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %21s %21s %21s %21s\n", "bench",
		"fig6 i$ (WFC/WFB)", "fig7 d$ (WFC/WFB)", "fig8 iTLB (WFC/WFB)", "fig9 dTLB (WFC/WFB)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10d/%-10d %10d/%-10d %10d/%-10d %10d/%-10d\n",
			r.Bench, r.ICacheWFC, r.ICacheWFB, r.DCacheWFC, r.DCacheWFB,
			r.ITLBWFC, r.ITLBWFB, r.DTLBWFC, r.DTLBWFB)
	}
	return sb.String()
}

// FormatPerformance renders the Figures 11-16 series.
func FormatPerformance(rows []PerfRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %9s %9s %8s %9s %9s %8s %8s %8s\n", "bench",
		"f11 ipc", "f12 dmiss", "(base)", "f13 dsh", "f14 imiss", "(base)", "f15 ish", "f16 ci", "f16 cd")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %8.3f %9.4f %9.4f %8.3f %9.4f %9.4f %8.3f %8.3f %8.3f\n",
			r.Bench, r.NormIPC, r.DMissWFC, r.DMissBase, r.DShadowHitShare,
			r.IMissWFC, r.IMissBase, r.IShadowHitShare, r.CommitRateI, r.CommitRateD)
	}
	fmt.Fprintf(&sb, "%-12s %8.3f   (geometric mean of normalized IPC)\n", "geomean", GeoMeanNormIPC(rows))
	return sb.String()
}

// FormatSecurity renders Tables III and IV. A check mark means the defense
// STOPS the attack (matching the paper's notation).
func FormatSecurity(rows []SecurityRow, tr TransientRow) string {
	mark := func(leaked bool) string {
		if leaked {
			return "LEAKED"
		}
		return "stopped"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-9s %-9s %-9s\n", "attack", "baseline", "WFB", "WFC")
	sorted := append([]SecurityRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Attack < sorted[j].Attack })
	for _, r := range sorted {
		fmt.Fprintf(&sb, "%-16s %-9s %-9s %-9s\n", r.Attack, mark(r.Baseline), mark(r.WFB), mark(r.WFC))
	}
	fmt.Fprintf(&sb, "%-16s %-9s %-9s %-9s   (tiny Replace shadow: %s)\n",
		"transient (TSA)", "n/a", mark(tr.SecureWFBLeaked), mark(tr.SecureWFCLeaked), mark(tr.TinyLeaked))
	return sb.String()
}

// FormatTableV renders Table V.
func FormatTableV(rows [2]hwmodel.Report) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s\n", r)
		for _, s := range r.PerStructure {
			fmt.Fprintf(&sb, "    %-14s entries=%-4d power=%7.2f mW  area=%6.3f mm²  access=%.2f ns\n",
				s.Name, s.Entries, s.PowerMW, s.AreaMM2, s.AccessNS)
		}
	}
	return sb.String()
}
