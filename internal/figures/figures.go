// Package figures regenerates every table and figure of the paper's
// evaluation (Section VI): the shadow-structure sizing study (Figures 6-9),
// the performance comparison (Figures 11-16), the security matrices
// (Tables III and IV) and the hardware overhead (Table V). It is shared by
// cmd/safespec-bench and the repository's benchmark suite.
package figures

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"safespec/internal/attacks"
	"safespec/internal/core"
	"safespec/internal/hwmodel"
	"safespec/internal/stats"
	"safespec/internal/sweep"
)

// SweepConfig bounds the per-benchmark runs.
type SweepConfig struct {
	// Instructions is the committed-instruction budget per run.
	Instructions uint64
	// MaxCycles is the safety cycle bound per run.
	MaxCycles uint64
	// Workers bounds the worker pool (<=0 selects GOMAXPROCS; 1 = serial).
	Workers int
	// Timeout bounds the whole sweep (0 = none).
	Timeout time.Duration
	// Benchmarks restricts the sweep (nil = all 21).
	Benchmarks []string
	// Seeds expands each (bench, mode) cell into a seed fan (nil = one run
	// with the workload's default seed); the figures collapse fans into
	// mean ± 95% CI.
	Seeds []int64
	// Sinks additionally observe every per-job result in job order (e.g.
	// the JSON-lines output of cmd/safespec-bench).
	Sinks []sweep.Sink
	// Executor backs the sweep's job execution (nil = in-process
	// simulation; see sweep.Options.Executor for the cache and grid
	// backends).
	Executor sweep.Executor
}

// DefaultSweep returns the configuration used by cmd/safespec-bench.
func DefaultSweep() SweepConfig {
	return SweepConfig{Instructions: 120_000, MaxCycles: 30_000_000}
}

// QuickSweep returns a reduced configuration for tests and CI, with run
// limits taken from the sweep.Quick smoke matrix (the single source of the
// quick budget). The benchmark set is left unrestricted; callers that want
// Quick's subset use it explicitly.
func QuickSweep() SweepConfig {
	q := sweep.Quick()
	return SweepConfig{Instructions: q.Instructions, MaxCycles: q.MaxCycles}
}

// Matrix expands the config into the sweep job list (benchmark-major,
// baseline/WFC/WFB per benchmark, occupancy sampling on).
func (sc SweepConfig) Matrix() ([]sweep.Job, error) {
	spec := sweep.MatrixSpec{
		Benchmarks:      sc.Benchmarks,
		Seeds:           sc.Seeds,
		Instructions:    sc.Instructions,
		MaxCycles:       sc.MaxCycles,
		SampleOccupancy: true,
	}
	return spec.Jobs()
}

// BenchResult holds one benchmark's results under the three modes.
// Baseline/WFC/WFB are the first-seed representatives; the *Runs slices
// hold the full seed fan in job (seed) order, aligned across modes so
// index i of each slice is the same seed. With a single-seed matrix each
// slice has length 1 and equals its representative.
type BenchResult struct {
	Name     string
	Baseline *core.Results
	WFC      *core.Results
	WFB      *core.Results

	BaselineRuns []*core.Results
	WFCRuns      []*core.Results
	WFBRuns      []*core.Results
}

// RunSweep executes every selected workload under baseline, WFC and WFB
// with occupancy sampling enabled, returning results in figure order. It is
// a thin consumer of internal/sweep: the matrix expansion, worker pool and
// sinks all live there.
func RunSweep(sc SweepConfig) ([]BenchResult, error) {
	jobs, err := sc.Matrix()
	if err != nil {
		return nil, err
	}
	results, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Workers: sc.Workers, Timeout: sc.Timeout, Sinks: sc.Sinks, Executor: sc.Executor})
	if err != nil {
		return nil, err
	}
	return Group(results)
}

// Group folds per-job sweep results into per-benchmark rows, preserving job
// order. The jobs must come from a standard-modes matrix (as built by
// SweepConfig.Matrix); a multi-seed fan collapses into the per-mode Runs
// slices (the figures layer turns them into mean ± 95% CI). The first
// per-job error aborts with that error; a true duplicate — the same
// (bench, mode, seed) cell twice — and ragged fans (modes with different
// seed counts) are rejected rather than silently mixed.
func Group(results []sweep.Result) ([]BenchResult, error) {
	if err := sweep.FirstErr(results); err != nil {
		return nil, err
	}
	var rows []BenchResult
	index := map[string]int{}
	seen := map[string]bool{}
	seedsOf := map[string][]int64{} // bench/mode -> seeds in arrival order
	for _, r := range results {
		i, ok := index[r.Job.Bench]
		if !ok {
			i = len(rows)
			index[r.Job.Bench] = i
			rows = append(rows, BenchResult{Name: r.Job.Bench})
		}
		var runs *[]*core.Results
		switch r.Job.Mode {
		case "baseline":
			runs = &rows[i].BaselineRuns
		case "wfc":
			runs = &rows[i].WFCRuns
		case "wfb":
			runs = &rows[i].WFBRuns
		default:
			return nil, fmt.Errorf("figures: job %s: unknown mode %q", r.Job, r.Job.Mode)
		}
		cell := fmt.Sprintf("%s/%s/%d", r.Job.Bench, r.Job.Mode, r.Job.Seed)
		if seen[cell] {
			return nil, fmt.Errorf("figures: job %s: duplicate (bench, mode, seed) result", r.Job)
		}
		seen[cell] = true
		seedsOf[r.Job.Bench+"/"+r.Job.Mode] = append(seedsOf[r.Job.Bench+"/"+r.Job.Mode], r.Job.Seed)
		*runs = append(*runs, r.Res)
	}
	for i := range rows {
		r := &rows[i]
		if len(r.BaselineRuns) != len(r.WFCRuns) || len(r.WFCRuns) != len(r.WFBRuns) {
			return nil, fmt.Errorf("figures: %s: ragged seed fan (baseline=%d wfc=%d wfb=%d runs)",
				r.Name, len(r.BaselineRuns), len(r.WFCRuns), len(r.WFBRuns))
		}
		// Pairwise normalization requires index i of every mode to be the
		// same seed, not merely the same count.
		base := seedsOf[r.Name+"/baseline"]
		if !slices.Equal(base, seedsOf[r.Name+"/wfc"]) || !slices.Equal(base, seedsOf[r.Name+"/wfb"]) {
			return nil, fmt.Errorf("figures: %s: misaligned seed fan (baseline %v, wfc %v, wfb %v)",
				r.Name, base, seedsOf[r.Name+"/wfc"], seedsOf[r.Name+"/wfb"])
		}
		if len(r.BaselineRuns) > 0 {
			r.Baseline = r.BaselineRuns[0]
			r.WFC = r.WFCRuns[0]
			r.WFB = r.WFBRuns[0]
		}
	}
	return rows, nil
}

// SizingRow is one benchmark's Figures 6-9 data point: the shadow-structure
// occupancy covering 99.99% of sampled cycles, under WFC and WFB.
type SizingRow struct {
	Bench                string
	ICacheWFC, ICacheWFB int
	DCacheWFC, DCacheWFB int
	ITLBWFC, ITLBWFB     int
	DTLBWFC, DTLBWFB     int
}

// Sizing extracts the Figures 6-9 series from a sweep. A seed fan takes
// the maximum occupancy percentile across seeds: sizing is a worst-case
// quantity, so the structure must cover every seed's demand.
func Sizing(results []BenchResult) []SizingRow {
	const p = 0.9999
	rows := make([]SizingRow, 0, len(results))
	for _, r := range results {
		row := SizingRow{Bench: r.Name}
		for _, run := range fanOf(r.WFCRuns, r.WFC) {
			if run == nil || run.OccI == nil {
				continue
			}
			row.ICacheWFC = max(row.ICacheWFC, run.OccI.Percentile(p))
			row.DCacheWFC = max(row.DCacheWFC, run.OccD.Percentile(p))
			row.ITLBWFC = max(row.ITLBWFC, run.OccITLB.Percentile(p))
			row.DTLBWFC = max(row.DTLBWFC, run.OccDTLB.Percentile(p))
		}
		for _, run := range fanOf(r.WFBRuns, r.WFB) {
			if run == nil || run.OccI == nil {
				continue
			}
			row.ICacheWFB = max(row.ICacheWFB, run.OccI.Percentile(p))
			row.DCacheWFB = max(row.DCacheWFB, run.OccD.Percentile(p))
			row.ITLBWFB = max(row.ITLBWFB, run.OccITLB.Percentile(p))
			row.DTLBWFB = max(row.DTLBWFB, run.OccDTLB.Percentile(p))
		}
		rows = append(rows, row)
	}
	return rows
}

// fanOf returns the seed-fan slice, falling back to the single
// representative for BenchResults assembled by hand without Runs slices.
func fanOf(runs []*core.Results, single *core.Results) []*core.Results {
	if len(runs) > 0 {
		return runs
	}
	return []*core.Results{single}
}

// PerfRow is one benchmark's Figures 11-16 data point. With a seed fan
// every metric is the mean across seeds; NormIPC additionally carries its
// 95% confidence half-width.
type PerfRow struct {
	Bench string
	// Seeds is the fan size behind this row (1 for a single-seed matrix).
	Seeds int
	// NormIPC is WFC IPC over baseline IPC (Figure 11), normalized per seed
	// and averaged; NormIPCCI is the 95% CI half-width across the fan (0
	// when Seeds == 1).
	NormIPC, NormIPCCI float64
	// DMissWFC / DMissBase are the D-cache read miss rates (Figure 12).
	DMissWFC, DMissBase float64
	// DShadowHitShare is the shadow share of d-side hits (Figure 13).
	DShadowHitShare float64
	// IMissWFC / IMissBase are the I-cache miss rates (Figure 14).
	IMissWFC, IMissBase float64
	// IShadowHitShare is the shadow share of i-side hits (Figure 15).
	IShadowHitShare float64
	// CommitRateI / CommitRateD are the shadow commit rates (Figure 16).
	CommitRateI, CommitRateD float64
}

// Performance extracts the Figures 11-16 series from a sweep, collapsing a
// seed fan into per-metric means. IPC is normalized pairwise — seed i's
// WFC over seed i's baseline — before averaging, so generator variance
// cancels within each seed.
func Performance(results []BenchResult) []PerfRow {
	rows := make([]PerfRow, 0, len(results))
	for _, r := range results {
		base := fanOf(r.BaselineRuns, r.Baseline)
		wfc := fanOf(r.WFCRuns, r.WFC)
		n := min(len(base), len(wfc))
		row := PerfRow{Bench: r.Name, Seeds: n}
		norm := make([]float64, 0, n)
		mean := func(metric func(*core.Results) float64, runs []*core.Results) float64 {
			xs := make([]float64, 0, len(runs))
			for _, run := range runs {
				xs = append(xs, metric(run))
			}
			return stats.Mean(xs)
		}
		for i := 0; i < n; i++ {
			if base[i].IPC() > 0 {
				norm = append(norm, wfc[i].IPC()/base[i].IPC())
			}
		}
		row.NormIPC, row.NormIPCCI = stats.MeanCI95(norm)
		row.DMissWFC = mean((*core.Results).DReadMissRate, wfc)
		row.DMissBase = mean((*core.Results).DReadMissRate, base)
		row.DShadowHitShare = mean((*core.Results).DShadowHitShare, wfc)
		row.IMissWFC = mean((*core.Results).IFetchMissRate, wfc)
		row.IMissBase = mean((*core.Results).IFetchMissRate, base)
		row.IShadowHitShare = mean((*core.Results).IShadowHitShare, wfc)
		row.CommitRateI = mean(func(res *core.Results) float64 { return res.ShI.CommitRate() }, wfc)
		row.CommitRateD = mean(func(res *core.Results) float64 { return res.ShD.CommitRate() }, wfc)
		rows = append(rows, row)
	}
	return rows
}

// GeoMeanNormIPC returns the Figure 11 headline number.
func GeoMeanNormIPC(rows []PerfRow) float64 {
	xs := make([]float64, 0, len(rows))
	for _, r := range rows {
		xs = append(xs, r.NormIPC)
	}
	return stats.GeoMean(xs)
}

// SecurityRow is one Table III/IV cell set.
type SecurityRow struct {
	Attack             string
	Baseline, WFB, WFC bool // leaked?
}

// Security runs the attack matrix (Tables III and IV rows except the TSA).
func Security() ([]SecurityRow, error) {
	var rows []SecurityRow
	for _, a := range attacks.All() {
		row := SecurityRow{Attack: a.Name}
		for _, m := range []struct {
			cfg  core.Config
			dest *bool
		}{
			{core.Baseline(), &row.Baseline},
			{core.WFB(), &row.WFB},
			{core.WFC(), &row.WFC},
		} {
			out, err := attacks.Execute(a, m.cfg)
			if err != nil {
				return nil, err
			}
			*m.dest = out.Leaked
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TransientRow reports the TSA experiment (the Table IV "Transient" row
// plus the Section V leak demonstration).
type TransientRow struct {
	// TinyLeaked is the undersized Replace-on-full shadow (leaks).
	TinyLeaked bool
	// SecureWFCLeaked / SecureWFBLeaked use worst-case sizing (closed).
	SecureWFCLeaked, SecureWFBLeaked bool
}

// Transient runs the TSA under the vulnerable and Secure configurations.
func Transient() (TransientRow, error) {
	tsa := attacks.TSA{Secret: attacks.DefaultSecret}
	var row TransientRow

	tiny := core.WFC().WithShadowPolicy(attacks.TinyShadowPolicy())
	out, err := tsa.Run(tiny)
	if err != nil {
		return row, err
	}
	row.TinyLeaked = out.Leaked

	out, err = tsa.Run(core.WFC())
	if err != nil {
		return row, err
	}
	row.SecureWFCLeaked = out.Leaked

	out, err = tsa.Run(core.WFB())
	if err != nil {
		return row, err
	}
	row.SecureWFBLeaked = out.Leaked
	return row, nil
}

// TableVFromSizing derives the WFC row of Table V from measured 99.99%
// sizing (the maxima across benchmarks), alongside the Secure row.
func TableVFromSizing(rows []SizingRow) [2]hwmodel.Report {
	wfc := hwmodel.ShadowSizes{DCache: 1, ICache: 1, DTLB: 1, ITLB: 1}
	for _, r := range rows {
		wfc.DCache = max(wfc.DCache, r.DCacheWFC)
		wfc.ICache = max(wfc.ICache, r.ICacheWFC)
		wfc.DTLB = max(wfc.DTLB, r.DTLBWFC)
		wfc.ITLB = max(wfc.ITLB, r.ITLBWFC)
	}
	return hwmodel.TableV(hwmodel.Tech40nm(), hwmodel.SecureSizes(72, 224), wfc)
}

// --- formatting ---

// FormatSizing renders the Figures 6-9 series as an aligned table.
func FormatSizing(rows []SizingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %21s %21s %21s %21s\n", "bench",
		"fig6 i$ (WFC/WFB)", "fig7 d$ (WFC/WFB)", "fig8 iTLB (WFC/WFB)", "fig9 dTLB (WFC/WFB)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10d/%-10d %10d/%-10d %10d/%-10d %10d/%-10d\n",
			r.Bench, r.ICacheWFC, r.ICacheWFB, r.DCacheWFC, r.DCacheWFB,
			r.ITLBWFC, r.ITLBWFB, r.DTLBWFC, r.DTLBWFB)
	}
	return sb.String()
}

// FormatPerformance renders the Figures 11-16 series.
func FormatPerformance(rows []PerfRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %9s %9s %8s %9s %9s %8s %8s %8s\n", "bench",
		"f11 ipc", "f12 dmiss", "(base)", "f13 dsh", "f14 imiss", "(base)", "f15 ish", "f16 ci", "f16 cd")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %8.3f %9.4f %9.4f %8.3f %9.4f %9.4f %8.3f %8.3f %8.3f",
			r.Bench, r.NormIPC, r.DMissWFC, r.DMissBase, r.DShadowHitShare,
			r.IMissWFC, r.IMissBase, r.IShadowHitShare, r.CommitRateI, r.CommitRateD)
		if r.Seeds > 1 {
			// Seed-fan rows carry the Figure 11 error bar; single-seed
			// output is unchanged.
			fmt.Fprintf(&sb, "  (n=%d, ipc ±%.3f)", r.Seeds, r.NormIPCCI)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-12s %8.3f   (geometric mean of normalized IPC)\n", "geomean", GeoMeanNormIPC(rows))
	return sb.String()
}

// FormatSecurity renders Tables III and IV. A check mark means the defense
// STOPS the attack (matching the paper's notation).
func FormatSecurity(rows []SecurityRow, tr TransientRow) string {
	mark := func(leaked bool) string {
		if leaked {
			return "LEAKED"
		}
		return "stopped"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-9s %-9s %-9s\n", "attack", "baseline", "WFB", "WFC")
	sorted := append([]SecurityRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Attack < sorted[j].Attack })
	for _, r := range sorted {
		fmt.Fprintf(&sb, "%-16s %-9s %-9s %-9s\n", r.Attack, mark(r.Baseline), mark(r.WFB), mark(r.WFC))
	}
	fmt.Fprintf(&sb, "%-16s %-9s %-9s %-9s   (tiny Replace shadow: %s)\n",
		"transient (TSA)", "n/a", mark(tr.SecureWFBLeaked), mark(tr.SecureWFCLeaked), mark(tr.TinyLeaked))
	return sb.String()
}

// FormatTableV renders Table V.
func FormatTableV(rows [2]hwmodel.Report) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s\n", r)
		for _, s := range r.PerStructure {
			fmt.Fprintf(&sb, "    %-14s entries=%-4d power=%7.2f mW  area=%6.3f mm²  access=%.2f ns\n",
				s.Name, s.Entries, s.PowerMW, s.AreaMM2, s.AccessNS)
		}
	}
	return sb.String()
}
