package workloads

import (
	"reflect"
	"testing"

	"safespec/internal/isa"
)

// TestProgramMemoization: every caller of the same (bench, seed, threads)
// must observe one canonical *isa.Program — the stable pointer is what lets
// the sweep executor detect "same program" and roll its memory back instead
// of rebuilding — and the memoized build must equal a fresh one exactly.
func TestProgramMemoization(t *testing.T) {
	a, err := Program("gcc", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Program("gcc", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (bench, seed, threads) returned distinct programs")
	}

	w, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if fresh := w.Build(); !reflect.DeepEqual(a, fresh) {
		t.Error("memoized program differs from a fresh build")
	}

	// A seed override is a different program; the default seed requested
	// explicitly is the same entry as seed 0.
	seeded, err := Program("gcc", 12345, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seeded == a {
		t.Error("seed override returned the default-seed program")
	}
	explicit, err := Program("gcc", w.Spec.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if explicit != a {
		t.Error("explicitly-passed default seed missed the seed-0 cache entry")
	}

	// The thread count is part of the cache key: SMT and single-thread
	// requests must never alias, and thread counts below 2 normalize to 1.
	smt, err := Program("gcc", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if smt == a {
		t.Error("threads=2 aliased the threads=1 cache entry")
	}
	zero, err := Program("gcc", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != a {
		t.Error("threads=0 did not normalize onto the threads=1 entry")
	}

	if _, err := Program("no-such-bench", 0, 1); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

// TestRegisterExtraBench: a registered kernel resolves through Registered
// and Program, is memoized per thread count, and does not leak into the
// SPEC-like registry.
func TestRegisterExtraBench(t *testing.T) {
	name := "memo-test-extra"
	Register(name, func(threads int) (*isa.Program, error) {
		b := ByNameMust(t, "exchange2")
		return b.Build(), nil
	})
	if !Registered(name) {
		t.Fatal("registered bench not visible through Registered")
	}
	if Registered("definitely-not-registered") {
		t.Fatal("unknown name reported as registered")
	}
	p1, err := Program(name, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1again, err := Program(name, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p1again {
		t.Error("registered bench not memoized")
	}
	p2, err := Program(name, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Error("registered bench aliased across thread counts")
	}
	if _, err := ByName(name); err == nil {
		t.Error("registered bench leaked into the SPEC-like registry")
	}
}

// ByNameMust is a test helper fetching a workload or failing.
func ByNameMust(t *testing.T, name string) Workload {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
