package workloads

import (
	"reflect"
	"testing"
)

// TestProgramMemoization: every caller of the same (bench, seed) must
// observe one canonical *isa.Program — the stable pointer is what lets the
// sweep executor detect "same program" and roll its memory back instead of
// rebuilding — and the memoized build must equal a fresh one exactly.
func TestProgramMemoization(t *testing.T) {
	a, err := Program("gcc", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Program("gcc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (bench, seed) returned distinct programs")
	}

	w, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if fresh := w.Build(); !reflect.DeepEqual(a, fresh) {
		t.Error("memoized program differs from a fresh build")
	}

	// A seed override is a different program; the default seed requested
	// explicitly is the same entry as seed 0.
	seeded, err := Program("gcc", 12345)
	if err != nil {
		t.Fatal(err)
	}
	if seeded == a {
		t.Error("seed override returned the default-seed program")
	}
	explicit, err := Program("gcc", w.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if explicit != a {
		t.Error("explicitly-passed default seed missed the seed-0 cache entry")
	}

	if _, err := Program("no-such-bench", 0); err == nil {
		t.Error("unknown benchmark did not error")
	}
}
