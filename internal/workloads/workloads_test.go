package workloads

import (
	"testing"

	"safespec/internal/core"
	"safespec/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	// The 21 SPEC2017 benchmarks of the paper's figures, in figure order.
	want := []string{
		"perlbench", "mcf", "omnetpp", "xalancbmk", "x264", "deepsjeng",
		"exchange2", "xz", "bwaves", "cactuBSSN", "namd", "povray", "lbm",
		"wrf", "blender", "cam4", "pop2", "imagick", "nab", "fotonik3d",
		"roms", "gcc",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name != "mcf" {
		t.Errorf("ByName(mcf) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("ByName of unknown benchmark should fail")
	}
}

func TestAllBuild(t *testing.T) {
	for _, w := range All() {
		prog := w.Build()
		if len(prog.Code) == 0 {
			t.Errorf("%s: empty program", w.Name)
		}
		// Every kernel must declare its working set.
		if len(prog.Regions) == 0 {
			t.Errorf("%s: no memory regions", w.Name)
		}
	}
}

func TestAllRunBriefly(t *testing.T) {
	// Every kernel must run correctly under every mode: committed
	// instruction budget reached, no faults, nonzero IPC.
	for _, w := range All() {
		prog := w.Build()
		for _, mode := range []core.Mode{core.ModeBaseline, core.ModeWFC} {
			cfg := core.DefaultConfig(mode).WithLimits(3000, 2_000_000)
			res := core.Run(cfg, prog)
			if res.Committed < 3000 {
				t.Errorf("%s/%v: committed %d < 3000 (stuck or faulted)", w.Name, mode, res.Committed)
			}
			if res.Faults != 0 {
				t.Errorf("%s/%v: %d unexpected faults", w.Name, mode, res.Faults)
			}
			if res.IPC() <= 0 {
				t.Errorf("%s/%v: IPC %f", w.Name, mode, res.IPC())
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	w, _ := ByName("deepsjeng")
	run := func() (uint64, int64) {
		sim := core.New(core.WFC().WithLimits(5000, 2_000_000), w.Build())
		res := sim.Run()
		return res.Cycles, sim.CPU().Reg(isa.S3)
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Errorf("non-deterministic: cycles %d vs %d, acc %d vs %d", c1, c2, r1, r2)
	}
}

func TestPatternCharacteristics(t *testing.T) {
	// mcf (pointer chase over 4 MiB) must have a much higher d-miss rate
	// than exchange2 (compute over 64 KiB): the working-set knob works.
	run := func(name string) float64 {
		w, _ := ByName(name)
		res := core.Run(core.Baseline().WithLimits(8000, 5_000_000), w.Build())
		return res.DReadMissRate()
	}
	mcf := run("mcf")
	exch := run("exchange2")
	if mcf < 2*exch {
		t.Errorf("mcf miss rate %.4f not clearly above exchange2 %.4f", mcf, exch)
	}
}

func TestChasePermutationIsSingleCycle(t *testing.T) {
	// The pointer-chase initialization must form one cycle covering every
	// word — otherwise the workload would spin on a short loop and the
	// working-set size would lie.
	s := Spec{Name: "t", DataBytes: 4096, Pattern: PatternChase, LoadsPerIter: 1, Seed: 5}
	prog := s.Build()
	words := 4096 / 8
	next := make(map[uint64]uint64, words)
	for addr, v := range prog.Data {
		next[addr] = uint64(v)
	}
	if len(next) != words {
		t.Fatalf("chase table has %d entries, want %d", len(next), words)
	}
	seen := make(map[uint64]bool, words)
	cur := dataBase
	for i := 0; i < words; i++ {
		if seen[cur] {
			t.Fatalf("chase cycle shorter than %d words (revisited %#x at step %d)", words, cur, i)
		}
		seen[cur] = true
		var ok bool
		cur, ok = next[cur]
		if !ok {
			t.Fatalf("chase chain broken at %#x", cur)
		}
	}
	if cur != dataBase {
		t.Error("chase chain does not close into a cycle")
	}
}

func TestBranchEntropyRaisesMispredicts(t *testing.T) {
	run := func(entropy int) float64 {
		s := Spec{Name: "t", DataBytes: 64 << 10, Pattern: PatternSeq,
			LoadsPerIter: 1, BranchEntropy: entropy, Seed: 9}
		res := core.Run(core.Baseline().WithLimits(10000, 2_000_000), s.Build())
		return res.Bpred.MispredictRate()
	}
	none := run(0)
	high := run(2)
	if high <= none {
		t.Errorf("entropy 2 mispredict rate %.4f not above entropy 0 %.4f", high, none)
	}
}

func TestCodeBlocksRaiseICachePressure(t *testing.T) {
	run := func(blocks int) float64 {
		s := Spec{Name: "t", DataBytes: 64 << 10, Pattern: PatternSeq,
			LoadsPerIter: 1, CodeBlocks: blocks, BlockPadLines: 4, Seed: 9}
		res := core.Run(core.Baseline().WithLimits(20000, 2_000_000), s.Build())
		return res.IFetchMissRate()
	}
	small := run(0)
	big := run(192) // 192×4 lines = 48 KiB > 32 KiB L1I
	if big <= small {
		t.Errorf("big code footprint i-miss %.5f not above small %.5f", big, small)
	}
}

func TestPageSpanRaisesDTLBMisses(t *testing.T) {
	run := func(pages int) float64 {
		s := Spec{Name: "t", DataBytes: 32 << 10, Pattern: PatternSeq,
			LoadsPerIter: 1, PageSpan: pages, Seed: 9}
		res := core.Run(core.Baseline().WithLimits(20000, 2_000_000), s.Build())
		return res.DTLB.MissRate()
	}
	none := run(0)
	many := run(256) // 256 pages >> 64-entry dTLB
	if many <= none {
		t.Errorf("page-span dTLB miss %.5f not above baseline %.5f", many, none)
	}
}
