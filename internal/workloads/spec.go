// Package workloads provides the 21 synthetic benchmark kernels the
// evaluation runs, one per SPEC CPU2017 benchmark named in the paper's
// figures. Each kernel is generated from a Spec describing its memory
// access pattern, working-set size, branch behaviour, compute mix and code
// footprint — the microarchitectural knobs that drive the per-benchmark
// differences the figures report.
//
// The kernels are infinite loops; the harness bounds each run by committed
// instruction count.
package workloads

import (
	"math/rand"

	"safespec/internal/asm"
	"safespec/internal/isa"
)

// Pattern selects the data-access pattern of a kernel.
type Pattern uint8

const (
	// PatternSeq streams sequentially through the working set.
	PatternSeq Pattern = iota
	// PatternStride strides through the working set (Stride bytes).
	PatternStride
	// PatternRand does LCG-randomized accesses over the working set.
	PatternRand
	// PatternChase follows a pre-permuted linked list (pointer chasing,
	// serializing the memory accesses like mcf/omnetpp).
	PatternChase
)

// Spec describes one synthetic kernel.
type Spec struct {
	// Name is the SPEC2017 benchmark this kernel stands in for.
	Name string
	// DataBytes is the working-set size (rounded up to 8 bytes).
	DataBytes int
	// Pattern selects the access pattern.
	Pattern Pattern
	// Stride is the PatternStride step in bytes.
	Stride int
	// LoadsPerIter is how many data loads each iteration performs.
	LoadsPerIter int
	// StoreEvery issues one store every N iterations (0 = never).
	StoreEvery int
	// BranchEntropy adds data-dependent branches: 0 = none, 1 = one
	// moderately biased branch per iteration, 2 = two unbiased branches
	// (mispredict-heavy like deepsjeng/gcc).
	BranchEntropy int
	// IntOps / MulOps / FPOps add per-iteration compute instructions.
	IntOps, MulOps, FPOps int
	// CodeBlocks dispatches through a jump table over N distinct padded
	// code blocks per iteration (I-cache and BTB pressure).
	CodeBlocks int
	// BlockPadLines pads each code block to this many I-cache lines.
	BlockPadLines int
	// PageSpan, if > 0, adds one load per iteration striding page-by-page
	// over this many pages (dTLB pressure).
	PageSpan int
	// Seed fixes the generator's PRNG.
	Seed int64
}

// Memory layout of generated kernels (virtual addresses).
const (
	dataBase  uint64 = 0x0010_0000 // main working set
	tableBase uint64 = 0x0800_0000 // jump table for code blocks
	pageBase  uint64 = 0x1000_0000 // page-span region (dTLB pressure)
	miscBase  uint64 = 0x0008_0000 // scratch (stores)
)

// Build generates the kernel program for the spec.
func (s Spec) Build() *isa.Program {
	rng := rand.New(rand.NewSource(s.Seed))
	b := asm.NewBuilder()

	words := s.DataBytes / 8
	if words < 16 {
		words = 16
	}
	b.Region(dataBase, uint64(words*8), false)
	b.Region(miscBase, 4096, false)

	// Initialize the chase permutation in the data image: a single cycle
	// visiting every word in pseudo-random order.
	if s.Pattern == PatternChase {
		perm := rng.Perm(words)
		for i := 0; i < words; i++ {
			from := perm[i]
			to := perm[(i+1)%words]
			b.Data(dataBase+uint64(from*8), int64(dataBase)+int64(to*8))
		}
	}
	if s.PageSpan > 0 {
		b.Region(pageBase, uint64(s.PageSpan)*4096, false)
	}
	if s.CodeBlocks > 0 {
		b.Region(tableBase, uint64(s.CodeBlocks*8), false)
		for i := 0; i < s.CodeBlocks; i++ {
			b.DataLabel(tableBase+uint64(i*8), blockLabel(i))
		}
	}

	// Register roles.
	const (
		rBase   = isa.S0 // data base
		rPtr    = isa.S1 // chase pointer / stream cursor
		rX      = isa.S2 // LCG state
		rAcc    = isa.S3 // load accumulator
		rIter   = isa.S4 // iteration counter
		rMask   = isa.S5 // working-set index mask (bytes, 8-aligned)
		rTmp    = isa.T0
		rTmp2   = isa.T1
		rAddr   = isa.T2
		rFP1    = isa.S6
		rFP2    = isa.S7
		rPgBase = isa.S8
		rPgIdx  = isa.S9
		rTbl    = isa.S10
	)

	b.Movi(rBase, int64(dataBase))
	b.Movi(rPtr, int64(dataBase))
	b.Movi(rX, s.Seed|1)
	b.Movi(rAcc, 0)
	b.Movi(rIter, 0)
	// Mask for word-aligned indices within the working set. words is not
	// necessarily a power of two; use modulo via Rem for generality on the
	// random pattern, mask only when power of two.
	b.Movi(rMask, int64(words*8-8)&^7)
	b.Movi(rFP1, 3)
	b.Movi(rFP2, 5)
	if s.PageSpan > 0 {
		b.Movi(rPgBase, int64(pageBase))
		b.Movi(rPgIdx, 0)
	}
	if s.CodeBlocks > 0 {
		b.Movi(rTbl, int64(tableBase))
	}

	b.Label("outer")

	// LCG step: x = x*25214903917 + 11 (mul latency + unpredictable bits).
	b.Movi(rTmp, 25214903917)
	b.Mul(rX, rX, rTmp)
	b.Addi(rX, rX, 11)

	// Data loads.
	for l := 0; l < max(1, s.LoadsPerIter); l++ {
		switch s.Pattern {
		case PatternSeq:
			b.Addi(rPtr, rPtr, 8)
			b.Sub(rTmp, rPtr, rBase)
			b.And(rTmp, rTmp, rMask)
			b.Add(rAddr, rBase, rTmp)
			b.Load(rTmp2, rAddr, 0)
			b.Add(rAcc, rAcc, rTmp2)
		case PatternStride:
			b.Addi(rPtr, rPtr, int64(max(8, s.Stride)))
			b.Sub(rTmp, rPtr, rBase)
			b.And(rTmp, rTmp, rMask)
			b.Add(rAddr, rBase, rTmp)
			b.Load(rTmp2, rAddr, 0)
			b.Add(rAcc, rAcc, rTmp2)
		case PatternRand:
			b.Shri(rTmp, rX, 11+int64(l))
			b.And(rTmp, rTmp, rMask)
			b.Andi(rTmp, rTmp, ^int64(7))
			b.Add(rAddr, rBase, rTmp)
			b.Load(rTmp2, rAddr, 0)
			b.Add(rAcc, rAcc, rTmp2)
		case PatternChase:
			// ptr = mem[ptr]: fully serialized dependent loads.
			b.Load(rPtr, rPtr, 0)
			b.Add(rAcc, rAcc, rPtr)
		}
	}

	// dTLB pressure: one load per iteration walking across PageSpan pages.
	if s.PageSpan > 0 {
		b.Addi(rPgIdx, rPgIdx, 4096)
		b.Movi(rTmp, int64(s.PageSpan)*4096)
		b.Rem(rPgIdx, rPgIdx, rTmp)
		b.Add(rAddr, rPgBase, rPgIdx)
		b.Load(rTmp2, rAddr, 0)
		b.Add(rAcc, rAcc, rTmp2)
	}

	// Data-dependent branches. Biases mimic real integer codes: mostly
	// predictable with a data-dependent minority direction (SPEC-class
	// mispredict rates are a few percent, not coin flips).
	if s.BranchEntropy >= 1 {
		b.Shri(rTmp, rX, 17)
		b.Andi(rTmp, rTmp, 15)
		b.Bne(rTmp, isa.Zero, "skip1") // ~94% taken
		b.Addi(rAcc, rAcc, 7)
		b.Label("skip1")
	}
	if s.BranchEntropy >= 2 {
		b.Shri(rTmp, rX, 23)
		b.Andi(rTmp, rTmp, 7)
		b.Bne(rTmp, isa.Zero, "skip2") // ~87.5% taken
		b.Xori(rAcc, rAcc, 0x5a)
		b.Label("skip2")
		b.Shri(rTmp, rX, 31)
		b.Andi(rTmp, rTmp, 3)
		b.Beq(rTmp, isa.Zero, "skip3") // ~25% taken
		b.Addi(rAcc, rAcc, 3)
		b.Label("skip3")
	}

	// Compute mix.
	for i := 0; i < s.IntOps; i++ {
		b.Xor(rTmp, rAcc, rX)
		b.Add(rAcc, rAcc, rTmp)
	}
	for i := 0; i < s.MulOps; i++ {
		b.Mul(rTmp, rAcc, rFP1)
		b.Add(rAcc, rAcc, rTmp)
	}
	for i := 0; i < s.FPOps; i++ {
		switch i % 3 {
		case 0:
			b.FMul(rFP1, rFP1, rFP2)
		case 1:
			b.FAdd(rFP2, rFP2, rFP1)
		default:
			b.FAdd(rAcc, rAcc, rFP1)
		}
	}

	// Stores.
	if s.StoreEvery > 0 {
		b.Movi(rTmp, int64(s.StoreEvery))
		b.Rem(rTmp, rIter, rTmp)
		b.Bne(rTmp, isa.Zero, "nostore")
		b.Movi(rAddr, int64(miscBase))
		b.Shri(rTmp2, rX, 13)
		b.Andi(rTmp2, rTmp2, 0x1f8)
		b.Add(rAddr, rAddr, rTmp2)
		b.Store(rAcc, rAddr, 0)
		b.Label("nostore")
	}

	// Indirect dispatch through the jump table (I-cache/BTB pressure).
	// The target changes every 16 iterations: real dispatch sites are
	// phase-repetitive, so the BTB predicts most dynamic instances while
	// the footprint still sweeps every block.
	if s.CodeBlocks > 0 {
		b.Shri(rTmp, rIter, 4)
		b.Movi(rTmp2, int64(s.CodeBlocks))
		b.Rem(rTmp, rTmp, rTmp2)
		b.Shli(rTmp, rTmp, 3)
		b.Add(rAddr, rTbl, rTmp)
		b.Load(rTmp2, rAddr, 0)
		// Indirect call to the selected block.
		b.Calli(rTmp2, 0)
	}

	b.Addi(rIter, rIter, 1)
	b.Jmp("outer")

	// Code blocks: small padded functions.
	if s.CodeBlocks > 0 {
		pad := max(1, s.BlockPadLines)*16 - 4
		for i := 0; i < s.CodeBlocks; i++ {
			b.Label(blockLabel(i))
			b.Addi(isa.T3, isa.T3, int64(i))
			b.Nops(pad)
			b.Ret()
		}
	}

	return b.MustBuild()
}

func blockLabel(i int) string { return "blk" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
