package workloads

import (
	"fmt"
	"sync"

	"safespec/internal/isa"
)

// Workload pairs a benchmark name with its program generator.
type Workload struct {
	// Name is the SPEC2017 benchmark name used in the paper's figures.
	Name string
	// Spec is the kernel parameterization.
	Spec Spec
}

// Build generates the program.
func (w Workload) Build() *isa.Program { return w.Spec.Build() }

// All returns the 21 kernels in the paper's figure order. Working-set sizes
// are powers of two so the generator's index masking covers them uniformly.
// Each kernel's knobs are chosen to mimic the qualitative character of its
// namesake:
//
//   - integer, branchy codes (perlbench, gcc, deepsjeng, xalancbmk) get
//     data-dependent branches and large code footprints;
//   - pointer-chasing codes (mcf, omnetpp) get serialized linked-list
//     traversals over multi-MiB working sets;
//   - FP streaming codes (lbm, bwaves, roms, fotonik3d) get sequential or
//     strided sweeps over large arrays with FP chains;
//   - compute-dense codes (exchange2, namd, imagick, nab) get long ALU/FP
//     sequences over small working sets;
//   - wide-footprint codes (wrf, cam4, pop2, blender, cactuBSSN) get many
//     code blocks and page-spanning accesses.
func All() []Workload {
	mk := func(name string, s Spec) Workload {
		s.Name = name
		s.Seed = int64(len(name))*7919 + 13 // deterministic, per-name
		return Workload{Name: name, Spec: s}
	}
	return []Workload{
		mk("perlbench", Spec{DataBytes: 256 << 10, Pattern: PatternRand, LoadsPerIter: 2,
			StoreEvery: 4, BranchEntropy: 1, IntOps: 3, CodeBlocks: 96, BlockPadLines: 3}),
		mk("mcf", Spec{DataBytes: 4 << 20, Pattern: PatternChase, LoadsPerIter: 2,
			BranchEntropy: 1, IntOps: 1}),
		mk("omnetpp", Spec{DataBytes: 2 << 20, Pattern: PatternChase, LoadsPerIter: 1,
			StoreEvery: 8, BranchEntropy: 2, IntOps: 2, CodeBlocks: 24, BlockPadLines: 2}),
		mk("xalancbmk", Spec{DataBytes: 1 << 20, Pattern: PatternRand, LoadsPerIter: 2,
			BranchEntropy: 2, IntOps: 2, CodeBlocks: 112, BlockPadLines: 3}),
		mk("x264", Spec{DataBytes: 512 << 10, Pattern: PatternSeq, LoadsPerIter: 3,
			StoreEvery: 2, BranchEntropy: 1, IntOps: 2, MulOps: 2, CodeBlocks: 144, BlockPadLines: 4}),
		mk("deepsjeng", Spec{DataBytes: 512 << 10, Pattern: PatternRand, LoadsPerIter: 2,
			BranchEntropy: 2, IntOps: 3, MulOps: 1, CodeBlocks: 32, BlockPadLines: 1}),
		mk("exchange2", Spec{DataBytes: 64 << 10, Pattern: PatternSeq, LoadsPerIter: 1,
			BranchEntropy: 0, IntOps: 8, MulOps: 2}),
		mk("xz", Spec{DataBytes: 1 << 20, Pattern: PatternRand, LoadsPerIter: 2,
			StoreEvery: 3, BranchEntropy: 2, IntOps: 4}),
		mk("bwaves", Spec{DataBytes: 4 << 20, Pattern: PatternSeq, LoadsPerIter: 3,
			StoreEvery: 4, FPOps: 4}),
		mk("cactuBSSN", Spec{DataBytes: 2 << 20, Pattern: PatternStride, Stride: 256,
			LoadsPerIter: 2, StoreEvery: 4, FPOps: 6, CodeBlocks: 96, BlockPadLines: 4}),
		mk("namd", Spec{DataBytes: 128 << 10, Pattern: PatternSeq, LoadsPerIter: 1,
			FPOps: 8, MulOps: 1}),
		mk("povray", Spec{DataBytes: 128 << 10, Pattern: PatternRand, LoadsPerIter: 1,
			BranchEntropy: 1, FPOps: 5, CodeBlocks: 48, BlockPadLines: 2}),
		mk("lbm", Spec{DataBytes: 8 << 20, Pattern: PatternSeq, LoadsPerIter: 4,
			StoreEvery: 1, FPOps: 3}),
		mk("wrf", Spec{DataBytes: 2 << 20, Pattern: PatternStride, Stride: 512,
			LoadsPerIter: 2, StoreEvery: 4, FPOps: 4, CodeBlocks: 96, BlockPadLines: 2, PageSpan: 48}),
		mk("blender", Spec{DataBytes: 1 << 20, Pattern: PatternRand, LoadsPerIter: 2,
			BranchEntropy: 1, FPOps: 3, IntOps: 1, CodeBlocks: 40, BlockPadLines: 2}),
		mk("cam4", Spec{DataBytes: 2 << 20, Pattern: PatternStride, Stride: 1024,
			LoadsPerIter: 2, BranchEntropy: 1, FPOps: 4, CodeBlocks: 80, BlockPadLines: 3, PageSpan: 64}),
		mk("pop2", Spec{DataBytes: 2 << 20, Pattern: PatternSeq, LoadsPerIter: 2,
			StoreEvery: 2, FPOps: 4, CodeBlocks: 160, BlockPadLines: 4, PageSpan: 32}),
		mk("imagick", Spec{DataBytes: 256 << 10, Pattern: PatternSeq, LoadsPerIter: 2,
			StoreEvery: 2, FPOps: 6, MulOps: 2, CodeBlocks: 144, BlockPadLines: 4}),
		mk("nab", Spec{DataBytes: 256 << 10, Pattern: PatternRand, LoadsPerIter: 2,
			FPOps: 5, IntOps: 1}),
		mk("fotonik3d", Spec{DataBytes: 4 << 20, Pattern: PatternStride, Stride: 128,
			LoadsPerIter: 3, StoreEvery: 4, FPOps: 4}),
		mk("roms", Spec{DataBytes: 4 << 20, Pattern: PatternSeq, LoadsPerIter: 3,
			StoreEvery: 3, FPOps: 5}),
		mk("gcc", Spec{DataBytes: 1 << 20, Pattern: PatternRand, LoadsPerIter: 2,
			StoreEvery: 5, BranchEntropy: 2, IntOps: 3, CodeBlocks: 160, BlockPadLines: 3}),
	}
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// extraBenches holds named kernels registered from outside this package —
// attack programs from internal/attacks, which run as ordinary sweep
// benchmarks so security cells flow through the same matrix, result-cache
// and grid machinery as performance cells. A plain registration call (from
// the registering package's init) avoids a workloads -> attacks import,
// which would cycle through the attacks tests.
var extraBenches sync.Map

// Register adds an extra named kernel builder. The builder receives the
// effective hardware-thread count so multi-threaded kernels can lay out
// per-thread entry points; registration replaces any previous builder for
// the name.
func Register(name string, build func(threads int) (*isa.Program, error)) {
	extraBenches.Store(name, build)
}

// Registered reports whether name resolves to a runnable kernel: one of the
// SPEC-like workloads or a registered extra bench.
func Registered(name string) bool {
	if _, ok := extraBenches.Load(name); ok {
		return true
	}
	_, err := ByName(name)
	return err == nil
}

// progKey identifies one memoized program build. The thread count is part
// of the key so SMT and single-thread cells can never alias on a shared
// program pointer even when a kernel lays out per-thread entries.
type progKey struct {
	name    string
	seed    int64
	threads int
}

// progCache memoizes assembled programs per (benchmark, seed): generation
// and assembly of the larger kernels costs more than a short simulation, and
// sweep matrices run the same kernel under several modes and instruction
// budgets. Programs are immutable after Build (the simulator loads their
// image into its own memory and never writes back), so sharing one
// *isa.Program across concurrent jobs is safe — and the stable pointer is
// what lets simulator reuse detect "same program" and roll back its memory
// instead of rebuilding it. The cache holds one entry per (benchmark, seed)
// ever requested; seed fans are small in practice.
var progCache sync.Map

// Program returns the memoized kernel for the named benchmark under the
// given generator seed (0 selects the workload's per-name default) and
// hardware-thread count (values below 2 normalize to 1). All callers of the
// same (name, seed, threads) observe the same *isa.Program.
func Program(name string, seed int64, threads int) (*isa.Program, error) {
	if threads < 2 {
		threads = 1
	}
	if b, ok := extraBenches.Load(name); ok {
		key := progKey{name: name, seed: seed, threads: threads}
		if p, ok := progCache.Load(key); ok {
			return p.(*isa.Program), nil
		}
		p, err := b.(func(int) (*isa.Program, error))(threads)
		if err != nil {
			return nil, fmt.Errorf("workloads: building %s: %w", name, err)
		}
		got, _ := progCache.LoadOrStore(key, p)
		return got.(*isa.Program), nil
	}
	w, err := ByName(name)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		w.Spec.Seed = seed
	}
	key := progKey{name: name, seed: w.Spec.Seed, threads: threads}
	if p, ok := progCache.Load(key); ok {
		return p.(*isa.Program), nil
	}
	// Concurrent builders may race; LoadOrStore keeps the first, so every
	// caller still agrees on one canonical program per key.
	p, _ := progCache.LoadOrStore(key, w.Build())
	return p.(*isa.Program), nil
}

// Names returns the benchmark names in figure order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
