package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "test", SizeBytes: 2048, Ways: 2, HitLatency: 4} // 16 sets
}

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "odd", SizeBytes: 1000, Ways: 2},       // not divisible
		{Name: "nonpow2", SizeBytes: 64 * 3, Ways: 1}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s should be invalid", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New must panic on invalid geometry")
		}
	}()
	New(Config{Name: "bad"})
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(small())
	if c.Lookup(0x100) {
		t.Error("cold lookup hit")
	}
	c.Fill(0x100)
	if !c.Lookup(0x100) {
		t.Error("filled line missed")
	}
	if !c.Lookup(0x13F) { // same 64B line
		t.Error("same-line offset missed")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 16 sets × 2 ways
	sets := uint64(c.Config().Sets())
	// Three lines mapping to set 0: line addresses k * sets * 64.
	a := uint64(0)
	b := sets * 64
	d := 2 * sets * 64
	c.Fill(a)
	c.Fill(b)
	c.Lookup(a) // make a the MRU
	ev, was := c.Fill(d)
	if !was || ev != b {
		t.Errorf("evicted %#x (was=%v), want %#x", ev, was, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Error("LRU state wrong after eviction")
	}
}

func TestFillExistingTouchesLRU(t *testing.T) {
	c := New(small())
	sets := uint64(c.Config().Sets())
	a, b, d := uint64(0), sets*64, 2*sets*64
	c.Fill(a)
	c.Fill(b)
	c.Fill(a) // re-fill = touch, no eviction
	if c.Stats.Fills != 2 {
		t.Errorf("re-fill counted as fill: %+v", c.Stats)
	}
	ev, _ := c.Fill(d) // should evict b (a was touched)
	if ev != b {
		t.Errorf("evicted %#x, want %#x", ev, b)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(small())
	c.Fill(0x40)
	if !c.Invalidate(0x40) {
		t.Error("invalidate of present line returned false")
	}
	if c.Invalidate(0x40) {
		t.Error("double invalidate returned true")
	}
	if c.Contains(0x40) {
		t.Error("line present after invalidate")
	}
	if c.Stats.Flushes != 1 {
		t.Errorf("flush count = %d", c.Stats.Flushes)
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Fill(0x40)
	c.Lookup(0x40)
	c.Reset()
	if c.Occupancy() != 0 || c.Stats.Hits != 0 {
		t.Error("reset incomplete")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := New(small())
	sets := uint64(c.Config().Sets())
	a, b, d := uint64(0), sets*64, 2*sets*64
	c.Fill(a)
	c.Fill(b)
	c.Contains(a) // must NOT touch LRU
	ev, _ := c.Fill(d)
	if ev != a {
		t.Errorf("Contains perturbed LRU: evicted %#x, want %#x", ev, a)
	}
	if c.Stats.Hits != 0 {
		t.Error("Contains counted statistics")
	}
}

func TestSkylakeHierarchyConfig(t *testing.T) {
	h := SkylakeHierarchy()
	if h.L1D.SizeBytes != 32<<10 || h.L1D.Ways != 8 || h.L1D.HitLatency != 4 {
		t.Errorf("L1D config wrong: %+v", h.L1D)
	}
	if h.L2.SizeBytes != 256<<10 || h.L2.HitLatency != 12 {
		t.Errorf("L2 config wrong: %+v", h.L2)
	}
	if h.L3.SizeBytes != 2<<20 || h.L3.Ways != 16 || h.L3.HitLatency != 44 {
		t.Errorf("L3 config wrong: %+v", h.L3)
	}
	if h.MemLatency != 191 {
		t.Errorf("memory latency = %d", h.MemLatency)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	lat, level := h.AccessData(0x1000)
	if level != LevelMem || lat != 44+191 {
		t.Errorf("cold access: %d at %v", lat, level)
	}
	h.FillData(0x1000)
	lat, level = h.AccessData(0x1000)
	if level != LevelL1 || lat != 4 {
		t.Errorf("L1 hit: %d at %v", lat, level)
	}
	// Evict from L1 only: simulate by invalidating L1D.
	h.L1D.Invalidate(0x1000)
	lat, level = h.AccessData(0x1000)
	if level != LevelL2 || lat != 12 {
		t.Errorf("L2 hit: %d at %v", lat, level)
	}
	h.L2.Invalidate(0x1000)
	h.L1D.Invalidate(0x1000)
	lat, level = h.AccessData(0x1000)
	if level != LevelL3 || lat != 44 {
		t.Errorf("L3 hit: %d at %v", lat, level)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	h.FillData(0x2000)
	h.FillInstr(0x3000)
	h.Flush(0x2000)
	h.Flush(0x3000)
	if _, level := h.AccessData(0x2000); level != LevelMem {
		t.Error("data line survived flush")
	}
	if _, level := h.AccessInstr(0x3000); level != LevelMem {
		t.Error("instr line survived flush")
	}
}

func TestInstrDataShareL2(t *testing.T) {
	h := NewHierarchy(SkylakeHierarchy())
	h.FillInstr(0x4000)
	// The same line must hit in L2 from the data side (unified L2).
	h.L1D.Invalidate(0x4000) // not present anyway
	_, level := h.AccessData(0x4000)
	if level != LevelL2 {
		t.Errorf("unified L2 lookup from data side: %v", level)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(0x1200) != 0x1200 {
		t.Error("aligned address changed")
	}
}

func TestMissRate(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate != 0")
	}
}

// Property: occupancy never exceeds capacity, and a line just filled is
// always present.
func TestOccupancyBoundProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(small())
		capacity := c.Config().Sets() * c.Config().Ways
		for _, a := range addrs {
			c.Fill(uint64(a))
			if !c.Contains(uint64(a)) {
				return false
			}
			if c.Occupancy() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the hierarchy remains inclusive — any line in L1D is also in
// L2 and L3 — across random fills, flushes and accesses.
func TestInclusionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHierarchy(HierarchyConfig{
		L1I:        Config{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L1D:        Config{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, HitLatency: 4},
		L2:         Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4, HitLatency: 12},
		L3:         Config{Name: "L3", SizeBytes: 8 << 10, Ways: 4, HitLatency: 44},
		MemLatency: 191,
	})
	lines := make([]uint64, 0, 4000)
	for i := 0; i < 4000; i++ {
		addr := uint64(rng.Intn(1<<16)) &^ (LineSize - 1)
		lines = append(lines, addr)
		switch rng.Intn(4) {
		case 0:
			h.FillData(addr)
		case 1:
			h.FillInstr(addr)
		case 2:
			h.Flush(addr)
		default:
			h.AccessData(addr)
		}
		// Spot-check inclusion on a random earlier line.
		probe := lines[rng.Intn(len(lines))]
		if h.L1D.Contains(probe) || h.L1I.Contains(probe) {
			if !h.L3.Contains(probe) {
				t.Fatalf("inclusion violated: %#x in L1 but not L3 (op %d)", probe, i)
			}
		}
	}
}
