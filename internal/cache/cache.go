// Package cache implements the set-associative caches and the inclusive
// three-level hierarchy of the simulated CPU (Table II of the paper:
// 32 KiB 8-way L1I and L1D with 4-cycle hits, 256 KiB 4-way L2 with 12-cycle
// hits, 2 MiB 16-way L3 with 44-cycle hits, and 191-cycle memory).
//
// Caches here carry no data — only tags and LRU state. Architectural values
// live in package mem; see the package comment there for why the split is
// the right model for studying SafeSpec.
package cache

import (
	"fmt"

	"safespec/internal/stats"
)

// LineBits is log2 of the cache-line size (64-byte lines).
const LineBits = 6

// LineSize is the cache-line size in bytes.
const LineSize = 1 << LineBits

// LineAddr truncates an address to its line base.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// Config describes one cache level.
type Config struct {
	// Name identifies the level in statistics output ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access time in cycles on a hit at this level.
	HitLatency int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (LineSize * c.Ways) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats counts accesses at one level.
type Stats struct {
	// Hits and Misses count lookups at this level.
	Hits, Misses uint64
	// Fills counts lines installed.
	Fills uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
	// Flushes counts lines removed by clflush.
	Flushes uint64
}

// MissRate returns Misses / (Hits+Misses).
func (s Stats) MissRate() float64 { return stats.Rate(s.Misses, s.Hits+s.Misses) }

type way struct {
	valid bool
	tag   uint64
	lru   uint64 // higher = more recently used
}

// Cache is one set-associative, LRU, tag-only cache level.
type Cache struct {
	cfg      Config
	sets     [][]way
	setMask  uint64
	hitLat   int // cfg.HitLatency, denormalized off the Config struct
	lruClock uint64
	// Stats accumulates hit/miss counts. Exported for the harness to read.
	Stats Stats
}

// New builds a cache from cfg; it panics on invalid geometry (a programming
// error in the caller's configuration).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]way, cfg.Sets())
	backing := make([]way, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(cfg.Sets() - 1), hitLat: cfg.HitLatency}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// HitLatency returns the access time on a hit at this level. Precomputed so
// hot paths avoid copying the whole Config struct per access.
func (c *Cache) HitLatency() int { return c.hitLat }

func (c *Cache) index(lineAddr uint64) (set uint64, tag uint64) {
	idx := lineAddr >> LineBits
	return idx & c.setMask, idx // full line number as tag (simplicity)
}

// Lookup probes for the line containing addr. On a hit it updates LRU and
// returns true. It records hit/miss statistics.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(LineAddr(addr))
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			c.lruClock++
			w.lru = c.lruClock
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Contains probes without updating LRU or statistics (used by tests and by
// timing-only checks).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(LineAddr(addr))
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr, evicting the LRU way if the set is
// full. It returns the evicted line address and whether an eviction happened.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasEvicted bool) {
	set, tag := c.index(LineAddr(addr))
	c.lruClock++
	// Already present? Just touch.
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.lru = c.lruClock
			return 0, false
		}
	}
	c.Stats.Fills++
	victim := 0
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if !w.valid {
			victim = i
			goto install
		}
		if w.lru < c.sets[set][victim].lru {
			victim = i
		}
	}
	{
		w := &c.sets[set][victim]
		evicted = w.tag << LineBits
		wasEvicted = true
		c.Stats.Evictions++
	}
install:
	c.sets[set][victim] = way{valid: true, tag: tag, lru: c.lruClock}
	return evicted, wasEvicted
}

// Invalidate removes the line containing addr if present, returning whether
// it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(LineAddr(addr))
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.valid = false
			c.Stats.Flushes++
			return true
		}
	}
	return false
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = way{}
		}
	}
	c.Stats = Stats{}
	c.lruClock = 0
}

// Occupancy returns the number of valid lines (used by tests).
func (c *Cache) Occupancy() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}

// HierarchyConfig describes the full memory system.
type HierarchyConfig struct {
	L1I, L1D, L2, L3 Config
	// MemLatency is the flat main-memory access time in cycles.
	MemLatency int
}

// SkylakeHierarchy returns the paper's Table II configuration.
func SkylakeHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4},
		L1D:        Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, HitLatency: 4},
		L2:         Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4, HitLatency: 12},
		L3:         Config{Name: "L3", SizeBytes: 2 << 20, Ways: 16, HitLatency: 44},
		MemLatency: 191,
	}
}

// Level identifies where an access hit.
type Level uint8

// Hit levels, from fastest to slowest.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	default:
		return "Mem"
	}
}

// Hierarchy is the inclusive three-level cache system with a flat-latency
// memory behind it. The two L1s (instruction and data) share the unified
// L2 and L3.
type Hierarchy struct {
	cfg HierarchyConfig
	// L1I and L1D are the private first-level caches.
	L1I, L1D *Cache
	// L2 and L3 are the shared levels.
	L2, L3 *Cache
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  New(cfg.L2),
		L3:  New(cfg.L3),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// AccessData performs a timing lookup for a data access to addr, WITHOUT
// filling on miss. It returns the total latency and the level that serviced
// the request. Separating lookup from fill lets SafeSpec route fills to the
// shadow structure instead.
func (h *Hierarchy) AccessData(addr uint64) (latency int, level Level) {
	return h.access(h.L1D, addr)
}

// AccessInstr is AccessData for the instruction side.
func (h *Hierarchy) AccessInstr(addr uint64) (latency int, level Level) {
	return h.access(h.L1I, addr)
}

func (h *Hierarchy) access(l1 *Cache, addr uint64) (int, Level) {
	if l1.Lookup(addr) {
		return l1.hitLat, LevelL1
	}
	if h.L2.Lookup(addr) {
		return h.L2.hitLat, LevelL2
	}
	if h.L3.Lookup(addr) {
		return h.L3.hitLat, LevelL3
	}
	return h.L3.hitLat + h.cfg.MemLatency, LevelMem
}

// FillData installs the line containing addr into L1D, L2 and L3 (the caches
// are inclusive, as in the paper's simulated configuration).
func (h *Hierarchy) FillData(addr uint64) {
	h.L1D.Fill(addr)
	h.fillShared(addr, h.L1D, h.L1I)
}

// FillInstr installs the line into L1I, L2 and L3.
func (h *Hierarchy) FillInstr(addr uint64) {
	h.L1I.Fill(addr)
	h.fillShared(addr, h.L1I, h.L1D)
}

func (h *Hierarchy) fillShared(addr uint64, owner, other *Cache) {
	h.L2.Fill(addr)
	if ev, ok := h.L3.Fill(addr); ok {
		// Inclusive L3: back-invalidate evicted lines everywhere above.
		h.L2.Invalidate(ev)
		owner.Invalidate(ev)
		other.Invalidate(ev)
	}
}

// Flush removes the line containing addr from every level (clflush).
func (h *Hierarchy) Flush(addr uint64) {
	h.L1I.Invalidate(addr)
	h.L1D.Invalidate(addr)
	h.L2.Invalidate(addr)
	h.L3.Invalidate(addr)
}

// Reset clears all levels and their statistics.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.L3.Reset()
}
