package grid

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"safespec/internal/sweep"
)

// statusSweep is one sweep's render model for the /status page: the
// live (bench, mode) completion table in the spirit of the paper's
// results tables, filling in as the fleet drains the matrix.
type statusSweep struct {
	ID        string
	Tenant    string
	Age       string
	Submitted int
	Completed int
	Done      bool
	// Spans renders the mean per-job span breakdown across the results
	// that carried a Timing ("" until one arrives).
	Spans   string
	Modes   []string       // column order: first appearance by job index
	Benches []string       // row order: first appearance by job index
	Cells   [][]statusCell // [bench][mode]; zero value for absent cells
}

// statusWorker is one health-registry row for the /status page.
type statusWorker struct {
	ID        string
	State     string // "healthy" | "unhealthy"
	Unhealthy bool
	Penalty   float64
	Busy      int
	Leased    uint64
	Completed uint64
	Expiries  uint64
	Incidents uint64
	Checksums uint64
	LastSeen  string
}

// statusPage is the full render model.
type statusPage struct {
	Now     string
	Snap    ServerSnapshot
	Workers []statusWorker
	Sweeps  []statusSweep
}

var statusTmpl = template.Must(template.New("status").Parse(`<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>safespec-coordinator status</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2em; color: #222; }
table { border-collapse: collapse; margin: 0.6em 0 1.4em; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.7em; text-align: right; }
th { background: #f0f0f0; }
td.b { text-align: left; }
td.full { background: #e4f3e4; }
td.sick { background: #f6dede; }
.muted { color: #777; }
</style></head><body>
<h1>safespec-coordinator</h1>
<p class="muted">{{.Now}} &middot; auto-refreshes every 5s &middot; read-only</p>
<p>queue: {{.Snap.Pending}} pending &middot; {{.Snap.Leased}} leased &middot;
leases granted={{.Snap.Granted}} completed={{.Snap.Completed}}
requeued={{.Snap.Requeued}} failed={{.Snap.Failed}} &middot;
self-healing: incidents={{.Snap.Incidents}} quarantined={{.Snap.Quarantined}}
hedged={{.Snap.Hedged}} &middot;
sweeps: {{.Snap.Sweeps}} open / {{.Snap.SweepsSubmitted}} lifetime
({{.Snap.SweepsAbandoned}} abandoned)</p>
{{if .Workers}}<table>
<tr><th>worker</th><th>state</th><th>penalty</th><th>busy</th><th>leased</th>
<th>completed</th><th>expiries</th><th>incidents</th><th>checksum fails</th><th>last seen</th></tr>
{{range .Workers}}<tr><td class="b">{{.ID}}</td>
<td{{if .Unhealthy}} class="sick"{{end}}>{{.State}}</td><td>{{printf "%.2f" .Penalty}}</td>
<td>{{.Busy}}</td><td>{{.Leased}}</td><td>{{.Completed}}</td><td>{{.Expiries}}</td>
<td>{{.Incidents}}</td><td>{{.Checksums}}</td><td>{{.LastSeen}}</td></tr>
{{end}}</table>{{end}}
{{if .Snap.Tenants}}<table>
<tr><th>tenant</th><th>open sweeps</th><th>requests</th><th>429s</th><th>quota rejections</th></tr>
{{range .Snap.Tenants}}<tr><td class="b">{{.Name}}</td><td>{{.ActiveSweeps}}</td>
<td>{{.Requests}}</td><td>{{.RateLimited}}</td><td>{{.QuotaRejected}}</td></tr>
{{end}}</table>{{end}}
{{range .Sweeps}}
<h2>{{.ID}} <span class="muted">tenant {{.Tenant}} &middot; {{.Age}} old &middot;
{{.Completed}}/{{.Submitted}} jobs{{if .Done}} &middot; done{{end}}{{if .Spans}} &middot; mean spans: {{.Spans}}{{end}}</span></h2>
<table>
<tr><th>bench</th>{{range .Modes}}<th>{{.}}</th>{{end}}</tr>
{{$s := .}}{{range $bi, $b := .Benches}}<tr><td class="b">{{$b}}</td>
{{range $mi, $m := $s.Modes}}{{$c := index $s.Cells $bi $mi}}<td{{if $c.Full}} class="full"{{end}}>{{$c.Text}}</td>{{end}}</tr>
{{end}}</table>
{{else}}<p class="muted">no open sweeps</p>
{{end}}</body></html>
`))

// statusCell is one (bench, mode) cell: completed/total over the seed fan.
type statusCell struct {
	Text string
	Full bool
}

// WriteStatus renders the read-only live status page: coordinator queue
// accounting, per-tenant counters, and one (bench × mode) completion table
// per open sweep, each cell counting completed/total jobs (a seed fan puts
// several jobs in one cell). Served by OpsHandler on the operations port.
func (s *Server) WriteStatus(w io.Writer) {
	now := s.opts.now()
	page := statusPage{Now: now.UTC().Format(time.RFC3339), Snap: s.Stats()}
	for _, ws := range page.Snap.Workers {
		sw := statusWorker{
			ID: ws.ID, State: "healthy", Penalty: ws.Penalty, Busy: ws.Busy,
			Leased: ws.Leased, Completed: ws.Completed, Expiries: ws.Expiries,
			Incidents: ws.Incidents, Checksums: ws.ChecksumFails,
			LastSeen: (time.Duration(ws.LastSeenMS) * time.Millisecond).Round(time.Second).String() + " ago",
		}
		if !ws.Healthy {
			sw.State, sw.Unhealthy = "unhealthy", true
		}
		page.Workers = append(page.Workers, sw)
	}

	s.mu.Lock()
	states := make([]*sweepState, 0, len(s.sweeps))
	for _, st := range s.sweeps {
		states = append(states, st)
	}
	s.mu.Unlock()
	sort.Slice(states, func(i, j int) bool {
		if !states[i].created.Equal(states[j].created) {
			return states[i].created.Before(states[j].created)
		}
		return states[i].id < states[j].id
	})

	for _, st := range states {
		st.mu.Lock()
		sw := statusSweep{
			ID:        st.id,
			Age:       now.Sub(st.created).Round(time.Second).String(),
			Submitted: len(st.slots),
			Completed: st.completed,
			Done:      len(st.slots) > 0 && st.completed == len(st.slots),
		}
		if st.tenant != nil {
			sw.Tenant = st.tenant.Name
		}
		if st.timed > 0 {
			n := int64(st.timed)
			mean := sweep.Timing{
				QueueNS:    st.spans.QueueNS / n,
				CacheNS:    st.spans.CacheNS / n,
				SimulateNS: st.spans.SimulateNS / n,
				ReportNS:   st.spans.ReportNS / n,
			}
			sw.Spans = mean.String()
		}
		indices := make([]int, 0, len(st.slots))
		for i := range st.slots {
			indices = append(indices, i)
		}
		sort.Ints(indices)
		type counts struct{ done, total int }
		cells := make(map[string]map[string]*counts)
		for _, i := range indices {
			sl := st.slots[i]
			if cells[sl.job.Bench] == nil {
				sw.Benches = append(sw.Benches, sl.job.Bench)
				cells[sl.job.Bench] = make(map[string]*counts)
			}
			if cells[sl.job.Bench][sl.job.Mode] == nil {
				cells[sl.job.Bench][sl.job.Mode] = &counts{}
			}
			c := cells[sl.job.Bench][sl.job.Mode]
			c.total++
			if sl.res != nil {
				c.done++
			}
		}
		// Column order: first appearance across the whole matrix.
		seenMode := make(map[string]bool)
		for _, i := range indices {
			if m := st.slots[i].job.Mode; !seenMode[m] {
				seenMode[m] = true
				sw.Modes = append(sw.Modes, m)
			}
		}
		st.mu.Unlock()
		sw.Cells = make([][]statusCell, len(sw.Benches))
		for bi, b := range sw.Benches {
			sw.Cells[bi] = make([]statusCell, len(sw.Modes))
			for mi, m := range sw.Modes {
				if c := cells[b][m]; c != nil {
					sw.Cells[bi][mi] = statusCell{
						Text: fmt.Sprintf("%d/%d", c.done, c.total),
						Full: c.done == c.total,
					}
				}
			}
		}
		page.Sweeps = append(page.Sweeps, sw)
	}
	_ = statusTmpl.Execute(w, page)
}
