package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safespec/internal/obs"
	"safespec/internal/sweep"
)

// TestTimingRoundTripsWire pins the span-timing wire contract: a worker's
// Timing submitted through POST /v1/result must come back through the
// batch stream with the worker-observed spans intact and the two
// coordinator-stamped spans (queue wait, report overhead) filled in from
// the lease clock.
func TestTimingRoundTripsWire(t *testing.T) {
	clk := &fakeClock{now: time.Unix(80_000, 0)}
	server := NewServer(ServerOptions{
		Lease: Options{LeaseTTL: time.Minute, now: clk.Now},
		now:   clk.Now,
	})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1]}, &resp); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second) // queue wait: submit -> lease grant
	lease := leaseOne(t, srv.URL)
	clk.Advance(2 * time.Second) // grant -> report round trip

	res, timing, err := sweep.LocalExecutor{}.ExecuteTimed(ctx, lease.Index, lease.Job)
	if err != nil {
		t.Fatal(err)
	}
	timing.SimulateNS = int64(7 * time.Millisecond) // pin for exact assertions
	timing.CacheNS = int64(3 * time.Millisecond)
	if status, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/result", "",
		ResultRequest{LeaseID: lease.LeaseID, Result: sweep.Result{
			Index: lease.Index, Job: lease.Job, Res: res, Timing: timing,
		}}, nil); err != nil || status != http.StatusOK {
		t.Fatalf("report: status %d, err %v", status, err)
	}

	// Read the batch raw: the field must exist on the wire under its
	// versioned name, not just survive a same-binary marshal/unmarshal.
	raw, err := http.Get(srv.URL + "/v1/sweeps/" + resp.SweepID + "/results?after=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(raw.Body)
	raw.Body.Close()
	if !strings.Contains(string(body), `"timing"`) {
		t.Fatalf("batch carries no timing field:\n%s", body)
	}
	var batch ResultBatch
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 1 {
		t.Fatalf("batch holds %d results, want 1", len(batch.Results))
	}
	got := batch.Results[0].Timing
	if got == nil {
		t.Fatal("Timing lost on the wire")
	}
	if got.SimulateNS != int64(7*time.Millisecond) || got.CacheNS != int64(3*time.Millisecond) {
		t.Errorf("worker spans mangled: %+v", got)
	}
	if want := int64(5 * time.Second); got.QueueNS != want {
		t.Errorf("QueueNS = %v, want %v", time.Duration(got.QueueNS), time.Duration(want))
	}
	// Report overhead is the grant->report window net of what the worker
	// accounted for itself: 2s - 7ms - 3ms.
	if want := int64(2*time.Second - 10*time.Millisecond); got.ReportNS != want {
		t.Errorf("ReportNS = %v, want %v", time.Duration(got.ReportNS), time.Duration(want))
	}
}

// TestNoTimingPeerWireCompat is the backward-compatibility half of the
// contract: a worker that predates span timing reports a bare Result, and
// the coordinator must neither reject it, invent a Timing for it, nor leak
// an empty timing object into the batch encoding (the field is omitempty
// for exactly this reason).
func TestNoTimingPeerWireCompat(t *testing.T) {
	server := NewServer(ServerOptions{})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1]}, &resp); err != nil {
		t.Fatal(err)
	}
	lease := leaseOne(t, srv.URL)
	res, err := sweep.LocalExecutor{}.Execute(ctx, lease.Index, lease.Job)
	if err != nil {
		t.Fatal(err)
	}
	if status, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/result", "",
		ResultRequest{LeaseID: lease.LeaseID, Result: sweep.Result{
			Index: lease.Index, Job: lease.Job, Res: res,
		}}, nil); err != nil || status != http.StatusOK {
		t.Fatalf("old-peer report: status %d, err %v", status, err)
	}

	raw, err := http.Get(srv.URL + "/v1/sweeps/" + resp.SweepID + "/results?after=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(raw.Body)
	raw.Body.Close()
	if strings.Contains(string(body), `"timing"`) {
		t.Errorf("coordinator invented a timing for an untimed peer:\n%s", body)
	}
	var batch ResultBatch
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 1 || batch.Results[0].Timing != nil {
		t.Errorf("untimed result must stay bare: %+v", batch.Results)
	}
}

// oldPeerWorker drains a coordinator the way a pre-timing worker build did:
// raw lease/report HTTP with no Timing in the payload.
func oldPeerWorker(t *testing.T, ctx context.Context, url string) {
	t.Helper()
	for ctx.Err() == nil {
		body, _ := json.Marshal(LeaseRequest{Worker: "old-peer"})
		resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var lease LeaseResponse
		err = json.NewDecoder(resp.Body).Decode(&lease)
		resp.Body.Close()
		if err != nil {
			t.Errorf("old peer lease decode: %v", err)
			return
		}
		out := sweep.Result{Index: lease.Index, Job: lease.Job}
		out.Res, out.Err = sweep.LocalExecutor{}.Execute(ctx, lease.Index, lease.Job)
		rb, _ := json.Marshal(ResultRequest{LeaseID: lease.LeaseID, Result: out})
		rr, err := http.Post(url+"/v1/result", "application/json", bytes.NewReader(rb))
		if err == nil {
			rr.Body.Close()
		}
	}
}

// TestNoTimingPeerByteIdenticalSweep runs a whole sweep through a fleet of
// pre-timing workers and checks the JSONL/CSV sinks byte-for-byte against a
// local run: span timing is diagnostic, so its absence on the wire must be
// invisible in sweep output.
func TestNoTimingPeerByteIdenticalSweep(t *testing.T) {
	jobs := smallJobs(t, "exchange2")

	runWith := func(exec sweep.Executor) string {
		var jsonl, csv bytes.Buffer
		_, err := sweep.Run(context.Background(), jobs, sweep.Options{
			Workers:  len(jobs),
			Executor: exec,
			Sinks:    []sweep.Sink{sweep.NewJSONL(&jsonl), sweep.NewCSV(&csv)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return jsonl.String() + "\n---\n" + csv.String()
	}

	local := runWith(nil)

	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go oldPeerWorker(t, ctx, srv.URL)

	if remote := runWith(coord); remote != local {
		t.Errorf("untimed peer changed sweep output:\n%s\nvs\n%s", remote, local)
	}
}

// TestWorkerHonorsRetryAfter pins the 429 pacing contract with a fake
// sleep: a coordinator Retry-After is authoritative for the backoff
// duration on both the lease and the report path, and the fixed backoff
// only covers responses that omit the header.
func TestWorkerHonorsRetryAfter(t *testing.T) {
	t.Run("report", func(t *testing.T) {
		var calls atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			switch calls.Add(1) {
			case 1: // no header: the worker falls back to its own backoff
				http.Error(w, "slow down", http.StatusTooManyRequests)
			case 2:
				w.Header().Set("Retry-After", "5")
				http.Error(w, "slow down", http.StatusTooManyRequests)
			default:
				w.WriteHeader(http.StatusOK)
			}
		}))
		defer srv.Close()

		var pauses []time.Duration
		reg := obs.NewRegistry()
		w := &Worker{Coordinator: srv.URL, Metrics: NewWorkerMetrics(reg),
			sleepFn: func(ctx context.Context, d time.Duration) bool {
				pauses = append(pauses, d)
				return true
			}}
		if err := w.report(context.Background(), srv.Client(), "lease-1", sweep.Result{}); err != nil {
			t.Fatalf("report did not ride out 429s: %v", err)
		}
		want := []time.Duration{time.Second, 5 * time.Second}
		if len(pauses) != len(want) || pauses[0] != want[0] || pauses[1] != want[1] {
			t.Errorf("report pauses %v, want %v", pauses, want)
		}
		if got := w.Metrics.Backoff429.Value(); got != 2 {
			t.Errorf("backoff_429_total = %d, want 2", got)
		}
	})

	t.Run("lease", func(t *testing.T) {
		var leases atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Path != "/v1/lease" {
				http.NotFound(w, req)
				return
			}
			if leases.Add(1) == 1 {
				w.Header().Set("Retry-After", "7")
				http.Error(w, "slow down", http.StatusTooManyRequests)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}))
		defer srv.Close()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		pause := make(chan time.Duration, 1)
		w := &Worker{Coordinator: srv.URL, ID: "ra", Parallel: 1,
			Poll: 10 * time.Millisecond, Client: srv.Client(),
			sleepFn: func(ctx context.Context, d time.Duration) bool {
				select {
				case pause <- d:
				default:
				}
				cancel() // one observed backoff is the whole test
				return false
			}}
		if err := w.Run(ctx); err != nil {
			t.Fatalf("worker run: %v", err)
		}
		select {
		case d := <-pause:
			if d != 7*time.Second {
				t.Errorf("lease 429 pause = %v, want 7s (Retry-After)", d)
			}
		default:
			t.Fatal("worker never backed off")
		}
	})
}
