package grid

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"safespec/internal/sweep"
)

// Worker polls a coordinator for leased jobs, executes them and reports
// results. Parallel lease loops run concurrently; each one simulates
// through Exec, so a worker can itself sit behind a result cache.
type Worker struct {
	// Coordinator is the base URL of the coordinator ("http://host:port").
	Coordinator string
	// ID names this worker in lease ids and logs.
	ID string
	// Token is the coordinator's shared bearer secret ("" sends no
	// Authorization header; required when the coordinator enforces auth).
	Token string
	// Parallel is the number of concurrent lease loops (<=0 selects
	// GOMAXPROCS).
	Parallel int
	// Exec executes leased jobs (nil selects sweep.LocalExecutor).
	Exec sweep.Executor
	// Poll is the idle sleep between lease attempts when the coordinator
	// has no work (default 250ms). Transport errors back off up to 16x.
	Poll time.Duration
	// MaxIdle exits Run after the coordinator has been unreachable for this
	// long (0 = keep polling until ctx is cancelled). Idle 204 responses do
	// not count: an empty queue is a healthy state between sweeps.
	MaxIdle time.Duration
	// Client is the HTTP client (nil selects one with a 30s timeout).
	Client *http.Client
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// Run polls until ctx is cancelled (or the coordinator stays unreachable
// past MaxIdle). It returns nil on cancellation: being told to stop is the
// normal end of a worker's life. Shutdown is graceful, not immediate: the
// local simulator does not observe ctx mid-job, so in-flight jobs run to
// completion and their results are still reported (on a short detached
// deadline); a ctx-honoring Exec that dies with the cancellation instead
// has its job silently requeued via lease expiry.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return fmt.Errorf("grid: worker needs a coordinator URL")
	}
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	exec := w.Exec
	if exec == nil {
		exec = sweep.LocalExecutor{}
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	loops := w.Parallel
	if loops <= 0 {
		loops = runtime.GOMAXPROCS(0)
	}
	logf("worker %s: polling %s with %d lease loops", w.ID, w.Coordinator, loops)
	err := sweep.ForEach(ctx, loops, loops, func(ctx context.Context, loop int) error {
		return w.loop(ctx, loop, client, exec, poll, logf)
	})
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// loop is one lease loop: lease, execute, report, repeat.
func (w *Worker) loop(ctx context.Context, loop int, client *http.Client,
	exec sweep.Executor, poll time.Duration, logf func(string, ...any)) error {
	backoff := poll
	var unreachableSince time.Time
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, ok, err := w.lease(ctx, client, loop)
		switch {
		case errors.Is(err, errUnauthorized):
			// A wrong token never becomes right; polling on would only spam
			// the coordinator's auth log.
			return err
		case errors.Is(err, errRateLimited):
			// The coordinator is pacing this tenant, not failing: back off
			// without starting the MaxIdle unreachability clock (a
			// rate-limited coordinator is a reachable coordinator).
			logf("worker %s/%d: coordinator rate limit (429); backing off %v", w.ID, loop, backoff)
			if !sleep(ctx, backoff) {
				return nil
			}
			backoff = min(2*backoff, 16*poll)
			continue
		case err != nil:
			if unreachableSince.IsZero() {
				unreachableSince = time.Now()
			}
			if w.MaxIdle > 0 && time.Since(unreachableSince) > w.MaxIdle {
				return fmt.Errorf("grid: coordinator %s unreachable for %v: %w",
					w.Coordinator, w.MaxIdle, err)
			}
			logf("worker %s/%d: lease failed (%v); backing off %v", w.ID, loop, err, backoff)
			if !sleep(ctx, backoff) {
				return nil
			}
			backoff = min(2*backoff, 16*poll)
			continue
		case !ok: // empty queue
			unreachableSince, backoff = time.Time{}, poll
			if !sleep(ctx, poll) {
				return nil
			}
			continue
		}
		unreachableSince, backoff = time.Time{}, poll

		start := time.Now()
		res, jobErr := exec.Execute(ctx, lease.Index, lease.Job)
		if ctx.Err() != nil && (errors.Is(jobErr, context.Canceled) || errors.Is(jobErr, context.DeadlineExceeded)) {
			// The job died with this worker's own shutdown, not on its own
			// merits. Reporting ctx.Err() would turn a recoverable worker
			// crash into a permanent error row in the sweep; stay silent and
			// let the lease TTL hand the job to a live worker instead.
			logf("worker %s/%d: %s abandoned on shutdown; lease TTL will requeue it", w.ID, loop, lease.Job)
			return nil
		}
		r := sweep.Result{Index: lease.Index, Job: lease.Job, Res: res, Err: jobErr, Wall: time.Since(start)}
		reportCtx, cancelReport := ctx, context.CancelFunc(func() {})
		if ctx.Err() != nil {
			// The worker is shutting down but the job finished anyway (the
			// local simulator runs to completion): deliver the result on a
			// short detached deadline instead of throwing the work away and
			// making another worker wait out the lease TTL to redo it.
			reportCtx, cancelReport = context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
		}
		err = w.report(reportCtx, client, lease.LeaseID, r)
		cancelReport()
		if err != nil {
			// The lease expired or the coordinator re-queued the job; the
			// authoritative copy is theirs now.
			logf("worker %s/%d: result for %s discarded: %v", w.ID, loop, lease.Job, err)
			continue
		}
		logf("worker %s/%d: %s done in %v", w.ID, loop, lease.Job, r.Wall.Round(time.Millisecond))
	}
}

// errUnauthorized marks a coordinator 401 — a configuration error, not a
// transient fault — so the worker exits (and the remote executor stops
// retrying) instead of hammering the coordinator's auth log.
var errUnauthorized = errors.New("coordinator rejected the bearer token (status 401); check -token/SAFESPEC_TOKEN")

// errRateLimited marks a coordinator 429: this tenant is over its request
// rate. Unlike other 4xx it is transient by definition — the rate limiter
// is asking for exactly a backoff — so lease and report loops retry it
// instead of treating it as terminal.
var errRateLimited = errors.New("coordinator rate limit (status 429)")

// lease requests one job; ok is false on an empty queue (204).
func (w *Worker) lease(ctx context.Context, client *http.Client, loop int) (LeaseResponse, bool, error) {
	var resp LeaseResponse
	status, err := w.post(ctx, client, "/v1/lease",
		LeaseRequest{Worker: fmt.Sprintf("%s/%d", w.ID, loop)}, &resp)
	if err != nil {
		return resp, false, err
	}
	switch status {
	case http.StatusOK:
		return resp, true, nil
	case http.StatusNoContent:
		return resp, false, nil
	case http.StatusUnauthorized:
		return resp, false, errUnauthorized
	case http.StatusTooManyRequests:
		return resp, false, errRateLimited
	default:
		return resp, false, fmt.Errorf("lease: unexpected status %d", status)
	}
}

// report posts a finished lease, retrying transient transport errors a few
// times before giving the job back to the coordinator via lease expiry.
// Any 4xx other than 409 (stale lease, reported by the caller) and 429
// (tenant rate limit — the limiter is asking for a backoff, and the
// detached final report on shutdown must survive it too, or completed work
// would be thrown away and redone) is terminal: the coordinator rejected
// the payload itself, and retrying the same bytes can only fail the same
// way.
func (w *Worker) report(ctx context.Context, client *http.Client, leaseID string, r sweep.Result) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			// Rate-limit rejections wait for the bucket to refill; transport
			// retries only need to skip a blip.
			pause := time.Duration(attempt) * 200 * time.Millisecond
			if errors.Is(err, errRateLimited) {
				pause = time.Duration(attempt) * time.Second
			}
			if !sleep(ctx, pause) {
				return ctx.Err()
			}
		}
		var status int
		status, err = w.post(ctx, client, "/v1/result", ResultRequest{LeaseID: leaseID, Result: r}, nil)
		if err != nil {
			continue
		}
		switch {
		case status == http.StatusOK:
			return nil
		case status == http.StatusConflict:
			return fmt.Errorf("result: lease %s no longer valid", leaseID)
		case status == http.StatusTooManyRequests:
			err = errRateLimited
		case status >= 400 && status < 500:
			return fmt.Errorf("result: permanently rejected with status %d", status)
		default:
			err = fmt.Errorf("result: unexpected status %d", status)
		}
	}
	return err
}

// post sends one JSON request and decodes a JSON body into out (when non-nil
// and the status is 200).
func (w *Worker) post(ctx context.Context, client *http.Client, path string, in, out any) (int, error) {
	return doJSON(ctx, client, http.MethodPost, w.Coordinator+path, w.Token, in, out)
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
