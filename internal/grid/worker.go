package grid

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"safespec/internal/backoff"
	"safespec/internal/core"
	"safespec/internal/obs"
	"safespec/internal/sweep"
)

// WorkerMetrics is the instrument set a worker exposes on its -pprof/ops
// listener. Register it once on a registry and share it across the
// worker's lease loops; a nil *WorkerMetrics disables instrumentation (all
// methods on the zero Worker still work).
type WorkerMetrics struct {
	// Leased/Completed/Failed/Requeued count job outcomes: leases obtained,
	// results accepted by the coordinator, jobs whose execution returned an
	// error (still reported — an error is a final result), and results the
	// coordinator discarded (expired lease) or jobs abandoned on shutdown.
	Leased, Completed, Failed, Requeued *obs.Counter
	// Backoff429 counts coordinator rate-limit responses (lease and report).
	Backoff429 *obs.Counter
	// CacheHits/CacheMisses mirror the worker's result cache at scrape time
	// (the binary wires the mirror; they stay 0 without a cache).
	CacheHits, CacheMisses *obs.Counter
	// LeaseLatency observes the lease POST round trip; SimulateTime
	// observes each job's simulate span.
	LeaseLatency, SimulateTime *obs.Histogram
	// Incidents counts contained job failures by kind (panic, timeout,
	// memory) — each one a job this worker survived instead of dying on.
	Incidents *obs.CounterVec
}

// NewWorkerMetrics registers the worker instrument set on reg.
func NewWorkerMetrics(reg *obs.Registry) *WorkerMetrics {
	return &WorkerMetrics{
		Leased:       reg.Counter("safespec_worker_jobs_leased_total", "Job leases obtained from the coordinator."),
		Completed:    reg.Counter("safespec_worker_jobs_completed_total", "Results accepted by the coordinator."),
		Failed:       reg.Counter("safespec_worker_jobs_failed_total", "Jobs whose execution returned an error."),
		Requeued:     reg.Counter("safespec_worker_jobs_requeued_total", "Results discarded (stale lease) or jobs abandoned on shutdown."),
		Backoff429:   reg.Counter("safespec_worker_backoff_429_total", "Coordinator rate-limit (429) backoffs across lease and report."),
		CacheHits:    reg.Counter("safespec_worker_cache_hits_total", "Result-cache hits (0 without -cache-dir)."),
		CacheMisses:  reg.Counter("safespec_worker_cache_misses_total", "Result-cache misses (0 without -cache-dir)."),
		LeaseLatency: reg.Histogram("safespec_worker_lease_latency_seconds", "Lease request round-trip latency.", nil),
		SimulateTime: reg.Histogram("safespec_worker_job_simulate_seconds", "Per-job simulation time.", nil),
		Incidents:    reg.CounterVec("safespec_worker_incidents_total", "Contained job failures reported to the coordinator, by kind.", "kind"),
	}
}

// Worker polls a coordinator for leased jobs, executes them and reports
// results. Parallel lease loops run concurrently; each one simulates
// through Exec, so a worker can itself sit behind a result cache.
type Worker struct {
	// Coordinator is the base URL of the coordinator ("http://host:port").
	Coordinator string
	// ID names this worker in lease ids and logs.
	ID string
	// Token is the coordinator's shared bearer secret ("" sends no
	// Authorization header; required when the coordinator enforces auth).
	Token string
	// Parallel is the number of concurrent lease loops (<=0 selects
	// GOMAXPROCS).
	Parallel int
	// Exec executes leased jobs (nil selects sweep.LocalExecutor).
	Exec sweep.Executor
	// Poll is the idle sleep between lease attempts when the coordinator
	// has no work (default 250ms). Transport errors back off up to 16x; a
	// coordinator 429 carrying a Retry-After header is honored instead.
	Poll time.Duration
	// MaxIdle exits Run after the coordinator has been unreachable for this
	// long (0 = keep polling until ctx is cancelled). Idle 204 responses do
	// not count: an empty queue is a healthy state between sweeps.
	MaxIdle time.Duration
	// Client is the HTTP client (nil selects one with a 30s timeout).
	Client *http.Client
	// Log receives structured progress records (nil discards them). Job
	// records carry sweep id, job hash, bench, mode and seed.
	Log *slog.Logger
	// Metrics, when non-nil, counts job outcomes and observes latencies.
	Metrics *WorkerMetrics
	// MemLimit, when positive, arms a soft memory guard: while a job runs,
	// the process heap is polled and a job observed past the limit is
	// abandoned with a "memory" incident. The guard is process-wide (Go
	// cannot account one goroutine's allocations), so size it for the
	// whole worker, not one job.
	MemLimit int64
	// Heartbeat, when positive, posts /v1/heartbeat liveness beacons at
	// this interval, complementing the implicit heartbeat of lease polls
	// (a worker saturated with long jobs stops polling but keeps beating).
	// Zero disables the explicit beacon.
	Heartbeat time.Duration

	// busy counts lease slots currently executing a job (heartbeat and
	// readiness reporting).
	busy atomic.Int32
	// ready tracks coordinator reachability for the ops /readyz probe:
	// true after any answered request, false across an unreachable streak
	// and after Run returns.
	ready atomic.Bool

	// sleepFn is a test seam for backoff pauses (defaults to sleep).
	sleepFn func(ctx context.Context, d time.Duration) bool
}

// Ready reports whether the worker has a live coordinator connection — the
// ops listener's /readyz answer. It is false until the first answered
// request, across unreachable streaks, and after Run returns.
func (w *Worker) Ready() bool { return w.ready.Load() }

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.New(slog.DiscardHandler)
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	if w.sleepFn != nil {
		return w.sleepFn(ctx, d)
	}
	return sleep(ctx, d)
}

// Run polls until ctx is cancelled (or the coordinator stays unreachable
// past MaxIdle). It returns nil on cancellation: being told to stop is the
// normal end of a worker's life. Shutdown is graceful, not immediate: the
// local simulator does not observe ctx mid-job, so in-flight jobs run to
// completion and their results are still reported (on a short detached
// deadline); a ctx-honoring Exec that dies with the cancellation instead
// has its job silently requeued via lease expiry.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return fmt.Errorf("grid: worker needs a coordinator URL")
	}
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	exec := w.Exec
	if exec == nil {
		exec = sweep.LocalExecutor{}
	}
	loops := w.Parallel
	if loops <= 0 {
		loops = runtime.GOMAXPROCS(0)
	}
	w.log().Info("worker polling", "worker", w.ID, "coordinator", w.Coordinator, "loops", loops)
	defer w.ready.Store(false)
	if w.Heartbeat > 0 {
		hbCtx, stopHB := context.WithCancel(ctx)
		defer stopHB()
		go w.heartbeatLoop(hbCtx, client, w.Heartbeat)
	}
	err := sweep.ForEach(ctx, loops, loops, func(ctx context.Context, loop int) error {
		return w.loop(ctx, loop, client, exec, poll)
	})
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// heartbeatLoop posts periodic liveness beacons carrying the busy-slot
// count and live heap size. Failures are silent: the lease loop's own
// backoff already reports an unreachable coordinator.
func (w *Worker) heartbeatLoop(ctx context.Context, client *http.Client, every time.Duration) {
	for {
		if !w.sleep(ctx, every) {
			return
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		hb := HeartbeatRequest{Worker: w.ID, Busy: int(w.busy.Load()), HeapBytes: ms.HeapAlloc}
		if _, _, err := w.post(ctx, client, "/v1/heartbeat", hb, nil); err != nil {
			w.log().Debug("heartbeat failed", "worker", w.ID, "err", err.Error())
		}
	}
}

// loop is one lease loop: lease, execute, report, repeat.
func (w *Worker) loop(ctx context.Context, loop int, client *http.Client,
	exec sweep.Executor, poll time.Duration) error {
	log := w.log().With("worker", w.ID, "loop", loop)
	// The lease backoff schedule: first retry after one poll interval,
	// doubling to 16x. failures counts consecutive lease faults (transport
	// or 429) and resets on any answer from a healthy queue.
	leaseRetry := backoff.Policy{Base: poll, Cap: 16 * poll}
	failures := 0
	var unreachableSince time.Time
	for {
		if ctx.Err() != nil {
			return nil
		}
		leaseStart := time.Now()
		lease, ok, hint, err := w.lease(ctx, client, loop)
		if err == nil && w.Metrics != nil {
			w.Metrics.LeaseLatency.Observe(time.Since(leaseStart).Seconds())
		}
		// Readiness tracks reachability, not queue depth: any useful answer
		// — including 204 (idle) and 429 (paced) — proves the coordinator is
		// there; transport failures and auth rejections flip it off.
		w.ready.Store(err == nil || errors.Is(err, errRateLimited))
		switch {
		case errors.Is(err, errUnauthorized):
			// A wrong token never becomes right; polling on would only spam
			// the coordinator's auth log.
			return err
		case errors.Is(err, errRateLimited):
			// The coordinator is pacing this tenant, not failing: back off
			// without starting the MaxIdle unreachability clock (a
			// rate-limited coordinator is a reachable coordinator). The
			// coordinator's Retry-After is authoritative when present; the
			// doubling backoff covers coordinators that omit it.
			pause := leaseRetry.PauseHint(failures, hint)
			failures++
			if w.Metrics != nil {
				w.Metrics.Backoff429.Inc()
			}
			log.Info("coordinator rate limit, backing off", "pause", pause.String(), "retry_after", hint > 0)
			if !w.sleep(ctx, pause) {
				return nil
			}
			continue
		case err != nil:
			if unreachableSince.IsZero() {
				unreachableSince = time.Now()
			}
			if w.MaxIdle > 0 && time.Since(unreachableSince) > w.MaxIdle {
				return fmt.Errorf("grid: coordinator %s unreachable for %v: %w",
					w.Coordinator, w.MaxIdle, err)
			}
			pause := leaseRetry.Pause(failures)
			failures++
			log.Warn("lease failed, backing off", "err", err.Error(), "pause", pause.String())
			if !w.sleep(ctx, pause) {
				return nil
			}
			continue
		case !ok: // empty queue
			unreachableSince, failures = time.Time{}, 0
			if !w.sleep(ctx, poll) {
				return nil
			}
			continue
		}
		unreachableSince, failures = time.Time{}, 0
		if w.Metrics != nil {
			w.Metrics.Leased.Inc()
		}
		jlog := log.With("sweep", lease.SweepID, "bench", lease.Job.Bench,
			"mode", lease.Job.Mode, "seed", lease.Job.Seed)
		if hash, err := lease.Job.Hash(); err == nil {
			jlog = jlog.With("job_hash", hash[:12])
		}

		start := time.Now()
		out := sweep.Result{Index: lease.Index, Job: lease.Job}
		got, inc := w.execContained(ctx, lease, exec)
		if inc != nil {
			// The job was contained (panic, watchdog, memory guard): the
			// slot survives and the incident — not a dead process — tells
			// the coordinator, which requeues or quarantines the job.
			inc.LeaseID, inc.Worker = lease.LeaseID, w.ID
			if w.Metrics != nil && w.Metrics.Incidents != nil {
				w.Metrics.Incidents.With(inc.Kind).Inc()
			}
			jlog.Warn("job contained", "kind", inc.Kind, "msg", inc.Message)
			w.reportIncident(ctx, client, *inc)
			continue
		}
		timing := got.timing
		out.Res, out.Err = got.res, got.err
		jobErr := out.Err
		if ctx.Err() != nil && (errors.Is(jobErr, context.Canceled) || errors.Is(jobErr, context.DeadlineExceeded)) {
			// The job died with this worker's own shutdown, not on its own
			// merits. Reporting ctx.Err() would turn a recoverable worker
			// crash into a permanent error row in the sweep; stay silent and
			// let the lease TTL hand the job to a live worker instead.
			if w.Metrics != nil {
				w.Metrics.Requeued.Inc()
			}
			jlog.Warn("job abandoned on shutdown; lease TTL will requeue it")
			return nil
		}
		out.Wall = time.Since(start)
		out.Timing = timing
		if w.Metrics != nil {
			if jobErr != nil {
				w.Metrics.Failed.Inc()
			}
			if timing != nil && timing.SimulateNS > 0 {
				w.Metrics.SimulateTime.Observe(time.Duration(timing.SimulateNS).Seconds())
			}
		}
		reportCtx, cancelReport := ctx, context.CancelFunc(func() {})
		if ctx.Err() != nil {
			// The worker is shutting down but the job finished anyway (the
			// local simulator runs to completion): deliver the result on a
			// short detached deadline instead of throwing the work away and
			// making another worker wait out the lease TTL to redo it.
			reportCtx, cancelReport = context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
		}
		err = w.report(reportCtx, client, lease.LeaseID, out)
		cancelReport()
		if err != nil {
			// The lease expired or the coordinator re-queued the job; the
			// authoritative copy is theirs now.
			if w.Metrics != nil {
				w.Metrics.Requeued.Inc()
			}
			jlog.Warn("result discarded", "err", err.Error())
			continue
		}
		if w.Metrics != nil {
			w.Metrics.Completed.Inc()
		}
		jlog.Info("job done", "wall", out.Wall.Round(time.Millisecond).String())
	}
}

// contained is one contained job execution's outcome.
type contained struct {
	res      *core.Results
	timing   *sweep.Timing
	err      error
	panicked string // non-empty when the execution goroutine panicked
}

// memPollEvery is the soft memory guard's heap sampling interval while a
// job runs (runtime.ReadMemStats briefly stops the world, so the guard
// polls coarsely rather than continuously).
const memPollEvery = 100 * time.Millisecond

// watchdogFor derives the slot watchdog from the lease TTL: 90% of it, so
// the coordinator hears a structured timeout incident before its own TTL
// silently requeues the job (0 disables — a lease without a TTL cannot be
// outlived).
func watchdogFor(lease LeaseResponse) time.Duration {
	if lease.TTLMS <= 0 {
		return 0
	}
	ttl := time.Duration(lease.TTLMS) * time.Millisecond
	return ttl - ttl/10
}

// execContained runs one leased job inside the slot's containment
// envelope: a recover() converting panics (in the executor wrapper chain —
// result cache, fault injectors — as well as the simulator) into "panic"
// incidents, a wall-clock watchdog derived from the lease TTL ("timeout"),
// and an optional soft memory guard ("memory"). Exactly one of the
// returned values is meaningful: inc is nil for a normal completion.
//
// On timeout and memory incidents the execution goroutine is abandoned,
// not killed (Go cannot kill a goroutine): its eventual send lands in the
// buffered channel and is collected, never reported — the coordinator has
// already requeued the job under a fresh lease, and the original lease id
// still honors whichever report arrives first. Incident messages carry no
// clocks, addresses or worker names, so a quarantined job's error row is
// byte-stable whenever the underlying fault is deterministic.
func (w *Worker) execContained(ctx context.Context, lease LeaseResponse, exec sweep.Executor) (contained, *IncidentRequest) {
	w.busy.Add(1)
	defer w.busy.Add(-1)
	ch := make(chan contained, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- contained{panicked: fmt.Sprintf("%v", r)}
			}
		}()
		var c contained
		if timed, isTimed := exec.(sweep.TimedExecutor); isTimed {
			c.res, c.timing, c.err = timed.ExecuteTimed(ctx, lease.Index, lease.Job)
		} else {
			c.res, c.err = exec.Execute(ctx, lease.Index, lease.Job)
		}
		ch <- c
	}()
	var watchC <-chan time.Time
	wd := watchdogFor(lease)
	if wd > 0 {
		timer := time.NewTimer(wd)
		defer timer.Stop()
		watchC = timer.C
	}
	var memC <-chan time.Time
	if w.MemLimit > 0 {
		tick := time.NewTicker(memPollEvery)
		defer tick.Stop()
		memC = tick.C
	}
	for {
		select {
		case c := <-ch:
			if c.panicked != "" {
				return contained{}, &IncidentRequest{Kind: IncidentPanic, Message: c.panicked}
			}
			return c, nil
		case <-watchC:
			return contained{}, &IncidentRequest{Kind: IncidentTimeout,
				Message: fmt.Sprintf("job exceeded the slot watchdog (%s, 90%% of the lease TTL)", wd)}
		case <-memC:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > uint64(w.MemLimit) {
				w.log().Warn("soft memory limit crossed", "worker", w.ID,
					"heap", ms.HeapAlloc, "limit", w.MemLimit)
				return contained{}, &IncidentRequest{Kind: IncidentMemory,
					Message: fmt.Sprintf("process heap crossed the soft memory limit (%d bytes)", w.MemLimit)}
			}
		}
	}
}

// reportIncident posts one contained failure, best-effort: a few transport
// retries, then give up — the coordinator's lease TTL covers a lost
// incident the same way it covers a lost worker. A shutting-down worker
// reports on a short detached deadline, like final results.
func (w *Worker) reportIncident(ctx context.Context, client *http.Client, inc IncidentRequest) {
	rctx, cancel := ctx, context.CancelFunc(func() {})
	if ctx.Err() != nil {
		rctx, cancel = context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	}
	defer cancel()
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 && !w.sleep(rctx, reportTransport.Pause(attempt-1)) {
			return
		}
		status, _, err := w.post(rctx, client, "/v1/incident", inc, nil)
		if err != nil || status >= 500 {
			continue // transport fault or server error: retry
		}
		return // accepted (200) or terminally judged (4xx): done either way
	}
	w.log().Warn("incident report lost", "worker", w.ID, "kind", inc.Kind)
}

// errUnauthorized marks a coordinator 401 — a configuration error, not a
// transient fault — so the worker exits (and the remote executor stops
// retrying) instead of hammering the coordinator's auth log.
var errUnauthorized = errors.New("coordinator rejected the bearer token (status 401); check -token/SAFESPEC_TOKEN")

// errRateLimited marks a coordinator 429: this tenant is over its request
// rate. Unlike other 4xx it is transient by definition — the rate limiter
// is asking for exactly a backoff — so lease and report loops retry it
// instead of treating it as terminal.
var errRateLimited = errors.New("coordinator rate limit (status 429)")

// retryAfter parses a Retry-After header's delay-seconds form (the form
// the coordinator sends). The HTTP-date form and garbage both come back 0:
// the caller falls back to its own backoff.
func retryAfter(h http.Header) time.Duration {
	v := strings.TrimSpace(h.Get("Retry-After"))
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// lease requests one job; ok is false on an empty queue (204). On a 429,
// hint carries the coordinator's Retry-After delay (0 when absent).
func (w *Worker) lease(ctx context.Context, client *http.Client, loop int) (LeaseResponse, bool, time.Duration, error) {
	var resp LeaseResponse
	status, hdr, err := w.post(ctx, client, "/v1/lease",
		LeaseRequest{Worker: fmt.Sprintf("%s/%d", w.ID, loop)}, &resp)
	if err != nil {
		return resp, false, 0, err
	}
	switch status {
	case http.StatusOK:
		return resp, true, 0, nil
	case http.StatusNoContent:
		return resp, false, 0, nil
	case http.StatusUnauthorized:
		return resp, false, 0, errUnauthorized
	case http.StatusTooManyRequests:
		return resp, false, retryAfter(hdr), errRateLimited
	default:
		return resp, false, 0, fmt.Errorf("lease: unexpected status %d", status)
	}
}

// reportTransport and reportRate are the report retry schedules: transport
// faults and 5xx ride a fast doubling schedule whose eight attempts fit
// the 10-second detached-report budget a shutting-down worker gets (a
// coordinator mid-restart refuses connections for a few seconds — a
// finished result must survive that, not be thrown away and re-simulated);
// rate-limit rejections wait on the coarser bucket-refill scale.
var (
	reportTransport = backoff.Policy{Base: 200 * time.Millisecond, Cap: 2 * time.Second}
	reportRate      = backoff.Policy{Base: time.Second, Cap: 8 * time.Second}
)

// report posts a finished lease, retrying transport errors and 5xx until
// its backoff budget runs out, then giving the job back to the coordinator
// via lease expiry. Any 4xx other than 409 (stale lease, reported by the
// caller) and 429 (tenant rate limit — the limiter is asking for a
// backoff, and the detached final report on shutdown must survive it too)
// is terminal: the coordinator rejected the payload itself, and retrying
// the same bytes can only fail the same way. A 429 carrying Retry-After
// waits exactly that long.
func (w *Worker) report(ctx context.Context, client *http.Client, leaseID string, r sweep.Result) error {
	var err error
	var hint time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			pause := reportTransport.Pause(attempt - 1)
			if errors.Is(err, errRateLimited) {
				pause = reportRate.PauseHint(attempt-1, hint)
			}
			if !w.sleep(ctx, pause) {
				return ctx.Err()
			}
		}
		var status int
		var hdr http.Header
		status, hdr, err = w.post(ctx, client, "/v1/result", ResultRequest{LeaseID: leaseID, Result: r}, nil)
		if err != nil {
			continue
		}
		switch {
		case status == http.StatusOK:
			return nil
		case status == http.StatusConflict:
			return fmt.Errorf("result: lease %s no longer valid", leaseID)
		case status == http.StatusTooManyRequests:
			err, hint = errRateLimited, retryAfter(hdr)
			if w.Metrics != nil {
				w.Metrics.Backoff429.Inc()
			}
		case status >= 400 && status < 500:
			return fmt.Errorf("result: permanently rejected with status %d", status)
		default:
			err = fmt.Errorf("result: unexpected status %d", status)
		}
	}
	return err
}

// post sends one JSON request and decodes a JSON body into out (when non-nil
// and the status is 200). Every request carries the worker identity header
// so the coordinator's health registry can attribute it even when the body
// arrives damaged.
func (w *Worker) post(ctx context.Context, client *http.Client, path string, in, out any) (int, http.Header, error) {
	return doJSONAs(ctx, client, http.MethodPost, w.Coordinator+path, w.Token, w.ID, in, out)
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
