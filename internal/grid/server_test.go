package grid

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/sweep"
)

// startTokenWorkers runs n in-process workers authenticating with token and
// returns a stop function that cancels and joins them.
func startTokenWorkers(t testing.TB, url, token string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator: url,
			Token:       token,
			ID:          fmt.Sprintf("tw%d", i),
			Parallel:    2,
			Poll:        5 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestServerSequentialSweeps is the tentpole acceptance property: one
// persistent Server and one worker fleet serve several sequential sweeps —
// including one submitted lazily, as a cache-wrapped executor would — each
// byte-identical to a local run, and the server returns to steady-state
// memory (no sweeps, no expired leases) after the clients close.
func TestServerSequentialSweeps(t *testing.T) {
	const token = "fleet-secret"
	jobs := smallJobs(t)

	var local bytes.Buffer
	if _, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Sinks: []sweep.Sink{sweep.NewJSONL(&local)}}); err != nil {
		t.Fatal(err)
	}

	server := NewServer(ServerOptions{Token: token})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	stop := startTokenWorkers(t, srv.URL, token, 2)
	defer stop()

	for round := 0; round < 3; round++ {
		re := &RemoteExecutor{URL: srv.URL, Token: token, PollWait: 200 * time.Millisecond}
		var exec sweep.Executor = re
		if round == 2 {
			// Hide the Submitter extension, as a wrapping result cache does:
			// every job must flow through the lazy per-job submission path.
			exec = struct{ sweep.Executor }{re}
		}
		var remote bytes.Buffer
		if _, err := sweep.Run(context.Background(), jobs, sweep.Options{
			Workers:  len(jobs),
			Executor: exec,
			Sinks:    []sweep.Sink{sweep.NewJSONL(&remote)},
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if remote.String() != local.String() {
			t.Errorf("round %d rows differ from local:\n%s\nvs\n%s", round, remote.String(), local.String())
		}
		if err := re.Close(); err != nil {
			t.Errorf("round %d close: %v", round, err)
		}
	}

	s := server.Stats()
	if s.Sweeps != 0 || s.Pending != 0 || s.Leased != 0 || s.Expired != 0 {
		t.Errorf("server holds state after closed sweeps: %+v", s)
	}
	if want := uint64(3 * len(jobs)); s.Completed != want {
		t.Errorf("completed %d jobs, want %d", s.Completed, want)
	}
	if s.SweepsSubmitted != 3 {
		t.Errorf("sweeps submitted %d, want 3", s.SweepsSubmitted)
	}
}

// TestServerAuth locks every /v1/* endpoint behind the bearer token: a
// missing or wrong token gets 401 on lease, result, submit, poll, close and
// stats alike, and the right token gets through.
func TestServerAuth(t *testing.T) {
	const token = "sekrit"
	server := NewServer(ServerOptions{Token: token})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	endpoints := []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/v1/lease", LeaseRequest{Worker: "w"}},
		{http.MethodPost, "/v1/result", ResultRequest{LeaseID: "x", Result: sweep.Result{Err: errors.New("e")}}},
		{http.MethodGet, "/v1/stats", nil},
		{http.MethodPost, "/v1/sweeps", SubmitRequest{}},
		{http.MethodPost, "/v1/sweeps/s-1/jobs", JobRequest{}},
		{http.MethodGet, "/v1/sweeps/s-1", nil},
		{http.MethodDelete, "/v1/sweeps/s-1", nil},
	}
	for _, ep := range endpoints {
		for name, tok := range map[string]string{"missing": "", "wrong": "not-" + token} {
			status, err := doJSON(ctx, srv.Client(), ep.method, srv.URL+ep.path, tok, ep.body, nil)
			if err != nil {
				t.Fatalf("%s %s: %v", ep.method, ep.path, err)
			}
			if status != http.StatusUnauthorized {
				t.Errorf("%s %s with %s token: got %d, want 401", ep.method, ep.path, name, status)
			}
		}
		status, err := doJSON(ctx, srv.Client(), ep.method, srv.URL+ep.path, token, ep.body, nil)
		if err != nil {
			t.Fatalf("%s %s: %v", ep.method, ep.path, err)
		}
		if status == http.StatusUnauthorized {
			t.Errorf("%s %s rejected the correct token", ep.method, ep.path)
		}
	}
}

// TestSweepAbandonedAfterTTL checks the server-side GC: a sweep whose
// client vanished (no polls) is dropped after SweepTTL, its queued jobs are
// withdrawn, and its id stops resolving.
func TestSweepAbandonedAfterTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	server := NewServer(ServerOptions{SweepTTL: time.Minute, now: clock})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1]}, &resp); err != nil {
		t.Fatal(err)
	}
	if s := server.Stats(); s.Sweeps != 1 || s.Pending != 1 {
		t.Fatalf("sweep not queued: %+v", s)
	}

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	var snap ServerSnapshot
	if _, err := doJSON(ctx, srv.Client(), http.MethodGet, srv.URL+"/v1/stats", "", nil, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Sweeps != 0 || snap.Pending != 0 || snap.SweepsAbandoned != 1 {
		t.Errorf("orphan sweep not collected: %+v", snap)
	}
	status, err := doJSON(ctx, srv.Client(), http.MethodGet, srv.URL+"/v1/sweeps/"+resp.SweepID, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNotFound {
		t.Errorf("abandoned sweep still resolves: status %d", status)
	}
}

// blockUntilCancel is a worker-side executor that parks every job until the
// worker's own context dies, then fails with the context error — the shape
// of a worker being shut down mid-job.
type blockUntilCancel struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockUntilCancel) Execute(ctx context.Context, _ int, _ sweep.Job) (*core.Results, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestCancelledWorkerJobRequeued is the regression for the cancellation
// bug: a worker killed mid-job must NOT report ctx.Err() as the job's final
// result. The lease expires instead and a surviving worker completes the
// job, so the sweep sees zero error rows.
func TestCancelledWorkerJobRequeued(t *testing.T) {
	jobs := smallJobs(t, "exchange2")[:1]
	coord := NewCoordinator(Options{LeaseTTL: 100 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan []sweep.Result, 1)
	go func() {
		results, err := sweep.Run(context.Background(), jobs, sweep.Options{Executor: coord})
		if err != nil {
			t.Error(err)
		}
		done <- results
	}()

	// The doomed worker takes the job and is cancelled mid-execution.
	blocker := &blockUntilCancel{started: make(chan struct{})}
	doomedCtx, killDoomed := context.WithCancel(context.Background())
	doomedDone := make(chan error, 1)
	doomed := &Worker{Coordinator: srv.URL, ID: "doomed", Parallel: 1,
		Poll: 5 * time.Millisecond, Exec: blocker}
	go func() { doomedDone <- doomed.Run(doomedCtx) }()
	select {
	case <-blocker.started:
	case <-time.After(10 * time.Second):
		t.Fatal("doomed worker never leased the job")
	}
	killDoomed()
	if err := <-doomedDone; err != nil {
		t.Fatalf("cancelled worker must exit clean, got %v", err)
	}

	// A healthy worker joins; it must receive the job after the lease TTL
	// and complete it successfully.
	stop := startWorkers(t, srv.URL, 1)
	defer stop()
	select {
	case results := <-done:
		if results[0].Err != nil {
			t.Fatalf("cancelled worker poisoned the sweep with an error row: %v", results[0].Err)
		}
		if results[0].Res == nil || results[0].Res.Committed == 0 {
			t.Fatal("no simulation result after requeue")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("requeued job never completed")
	}
	if s := coord.Stats(); s.Requeued == 0 {
		t.Errorf("lease loss not accounted: %+v", s)
	}
}

// fakeClock drives the coordinator's lease clock by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time { f.mu.Lock(); defer f.mu.Unlock(); return f.now }
func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestExpiredLeasesPurgedOnCompletion: the expired-lease index must shrink
// back to zero when a job with timed-out leases finally completes.
func TestExpiredLeasesPurgedOnCompletion(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000, 0)}
	coord := NewCoordinator(Options{LeaseTTL: time.Minute, now: clk.Now})
	ch := make(chan outcome, 1)
	coord.enqueue(0, sweep.Job{Bench: "exchange2", Mode: "baseline"}, "", func(o outcome) { ch <- o })

	crash, ok := coord.lease("crasher", "crasher")
	if !ok {
		t.Fatal("no lease granted")
	}
	clk.Advance(2 * time.Minute)
	release, ok := coord.lease("healthy", "healthy") // triggers expiry + immediate re-grant
	if !ok {
		t.Fatal("expired job not re-leased")
	}
	if s := coord.Stats(); s.Expired != 1 || s.Requeued != 1 {
		t.Fatalf("expiry not indexed: %+v", s)
	}
	if !coord.complete(release.LeaseID, sweep.Result{Res: &core.Results{Stats: &pipeline.Stats{Committed: 1}}}, "") {
		t.Fatal("healthy completion rejected")
	}
	if s := coord.Stats(); s.Expired != 0 {
		t.Errorf("expired entries leaked past completion: %+v", s)
	}
	select {
	case out := <-ch:
		if out.err != nil || out.res == nil {
			t.Errorf("wrong outcome: %+v", out)
		}
	default:
		t.Error("outcome never delivered")
	}
	// The crasher's stale lease is gone from the index too: its late report
	// is rejected rather than double-completing the job.
	if coord.complete(crash.LeaseID, sweep.Result{Res: &core.Results{Stats: &pipeline.Stats{Committed: 1}}}, "") {
		t.Error("purged expired lease still accepted a result")
	}
}

// TestExpiredLeasesPurgedOnFailure: lease exhaustion must clear the failed
// job's expired entries along with delivering the error.
func TestExpiredLeasesPurgedOnFailure(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000, 0)}
	coord := NewCoordinator(Options{LeaseTTL: time.Minute, MaxAttempts: 2, now: clk.Now})
	ch := make(chan outcome, 1)
	coord.enqueue(0, sweep.Job{Bench: "exchange2", Mode: "baseline"}, "", func(o outcome) { ch <- o })

	if _, ok := coord.lease("c1", "c1"); !ok {
		t.Fatal("no first lease")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := coord.lease("c2", "c2"); !ok { // requeue + second (final) attempt
		t.Fatal("no second lease")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := coord.lease("c3", "c3"); ok { // expiry exhausts the job; queue is empty
		t.Fatal("exhausted job leased again")
	}
	select {
	case out := <-ch:
		if out.err == nil || !strings.Contains(out.err.Error(), "lease lost") {
			t.Errorf("want lease-exhaustion error, got %v", out.err)
		}
	default:
		t.Fatal("exhaustion outcome never delivered")
	}
	if s := coord.Stats(); s.Expired != 0 || s.Failed != 1 {
		t.Errorf("expired entries leaked past failure: %+v", s)
	}
}

// TestExpiredLeasesPurgedOnAbandon: cancelling an Execute whose job has a
// timed-out lease must clear that lease from the expired index.
func TestExpiredLeasesPurgedOnAbandon(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000, 0)}
	coord := NewCoordinator(Options{LeaseTTL: time.Minute, now: clk.Now})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, 0, sweep.Job{Bench: "exchange2", Mode: "baseline", Config: core.Baseline()})
		errc <- err
	}()
	for coord.Stats().Pending == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, ok := coord.lease("crasher", "crasher"); !ok {
		t.Fatal("no lease granted")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := coord.lease("w2", "w2"); !ok { // expiry + re-grant
		t.Fatal("expired job not re-leased")
	}
	if s := coord.Stats(); s.Expired != 1 {
		t.Fatalf("expiry not indexed: %+v", s)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s := coord.Stats(); s.Expired != 0 || s.Leased != 0 || s.Pending != 0 {
		t.Errorf("abandoned job left coordinator state behind: %+v", s)
	}
}

// TestReportTerminal4xx is the regression for the retry bug: a payload the
// coordinator permanently rejects (400) must not be retried like a
// transport fault, while 5xx keeps its transient retries.
func TestReportTerminal4xx(t *testing.T) {
	for _, tc := range []struct {
		status    int
		wantCalls int32
		wantErr   string
	}{
		{http.StatusBadRequest, 1, "permanently rejected"},
		{http.StatusConflict, 1, "no longer valid"},
		{http.StatusInternalServerError, 8, "unexpected status 500"},
	} {
		var calls atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			calls.Add(1)
			http.Error(w, "nope", tc.status)
		}))
		w := &Worker{Coordinator: srv.URL,
			sleepFn: func(ctx context.Context, d time.Duration) bool { return true }}
		err := w.report(context.Background(), srv.Client(), "lease-1",
			sweep.Result{Err: errors.New("job error")})
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("status %d: got error %v, want %q", tc.status, err, tc.wantErr)
		}
		if got := calls.Load(); got != tc.wantCalls {
			t.Errorf("status %d: %d report attempts, want %d", tc.status, got, tc.wantCalls)
		}
		srv.Close()
	}
}

// TestSubmitRetriesServerErrors: a coordinator answering 5xx (mid-restart,
// fronting proxy) is retried, and a non-200 that persists is surfaced as an
// error instead of silently yielding an empty sweep id.
func TestSubmitRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	real := NewServer(ServerOptions{})
	inner := real.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, req)
	}))
	defer srv.Close()

	re := &RemoteExecutor{URL: srv.URL}
	if err := re.Submit(context.Background(), smallJobs(t, "exchange2")[:1]); err != nil {
		t.Fatalf("submit did not ride out 503s: %v", err)
	}
	re.mu.Lock()
	id := re.sweepID
	re.mu.Unlock()
	if id == "" {
		t.Fatal("submit succeeded without a sweep id")
	}

	// A terminal non-200 (here 404 from a bogus base path) must error.
	re2 := &RemoteExecutor{URL: srv.URL + "/nope"}
	if err := re2.Submit(context.Background(), smallJobs(t, "exchange2")[:1]); err == nil {
		t.Fatal("submit to a bogus path reported success")
	}
}

// TestAddJobClosedSweep: a job racing a sweep's abandonment must be
// refused, not silently dropped while the handler reports acceptance.
func TestAddJobClosedSweep(t *testing.T) {
	s := NewServer(ServerOptions{})
	st := &sweepState{id: "s-x", slots: map[int]*slot{}}
	st.closed = true
	if s.addJob(st, 0, sweep.Job{Bench: "exchange2", Mode: "baseline"}) {
		t.Fatal("closed sweep accepted a job")
	}
	if n := s.coord.Stats().Pending; n != 0 {
		t.Fatalf("dropped job still queued: %d pending", n)
	}
}

// TestSubmitNonceIdempotent: re-posting a submission whose response was
// lost must return the existing sweep instead of double-running the matrix.
func TestSubmitNonceIdempotent(t *testing.T) {
	server := NewServer(ServerOptions{})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	req := SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1], Nonce: "retry-nonce-1"}
	var first, second SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "", req, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "", req, &second); err != nil {
		t.Fatal(err)
	}
	if first.SweepID != second.SweepID {
		t.Errorf("retried submission opened a second sweep: %s vs %s", first.SweepID, second.SweepID)
	}
	if s := server.Stats(); s.SweepsSubmitted != 1 || s.Pending != 1 {
		t.Errorf("duplicate sweep state: %+v", s)
	}
	// Closing the sweep releases the nonce; the same nonce then opens a
	// fresh sweep rather than resolving to a dead id.
	if _, err := doJSON(ctx, srv.Client(), http.MethodDelete, srv.URL+"/v1/sweeps/"+first.SweepID, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	var third SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "", req, &third); err != nil {
		t.Fatal(err)
	}
	if third.SweepID == first.SweepID {
		t.Error("nonce resolved to a closed sweep")
	}
}
