package grid

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"safespec/internal/chaos"
	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/sweep"
)

// poisonSeed searches for an injector seed that assigns the panic fault to
// exactly one job in the matrix, and returns that seed and the poisoned
// job's index. The search is deterministic: the same matrix always picks
// the same seed.
func poisonSeed(t *testing.T, jobs []sweep.Job, cfg chaos.JobFaults) (int64, int) {
	t.Helper()
	for seed := int64(1); seed < 10_000; seed++ {
		cfg.Seed = seed
		ji := chaos.NewJobInjector(cfg)
		hit, count := -1, 0
		for i, j := range jobs {
			if ji.Classify(j) != chaos.JobFaultNone {
				hit = i
				count++
			}
		}
		if count == 1 {
			return seed, hit
		}
	}
	t.Fatal("no seed poisons exactly one job")
	return 0, 0
}

// localJSONL runs the jobs in-process and returns the JSONL lines — the
// byte-identity reference for the fleet runs below.
func localJSONL(t *testing.T, jobs []sweep.Job) []string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := sweep.Run(context.Background(), jobs, sweep.Options{
		Sinks: []sweep.Sink{sweep.NewJSONL(&buf)},
	}); err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

// runFleetSweep drives a sweep through a Server with the given workers and
// returns the results plus the remote JSONL lines.
func runFleetSweep(t *testing.T, srvURL string, jobs []sweep.Job) ([]sweep.Result, []string) {
	t.Helper()
	re := &RemoteExecutor{URL: srvURL, PollWait: 100 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var buf bytes.Buffer
	results, err := sweep.Run(ctx, jobs, sweep.Options{
		Workers:  len(jobs),
		Executor: re,
		Sinks:    []sweep.Sink{sweep.NewJSONL(&buf)},
	})
	if err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	_ = re.Close()
	return results, strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

// faultyWorker starts one worker whose executor is wrapped by the given
// job-fault injector; stop cancels it and reports whether Run exited clean.
func faultyWorker(t *testing.T, url, id string, parallel int, exec sweep.Executor, tune func(*Worker)) (stop func()) {
	t.Helper()
	w := &Worker{
		Coordinator: url,
		ID:          id,
		Parallel:    parallel,
		Poll:        5 * time.Millisecond,
		Exec:        exec,
	}
	if tune != nil {
		tune(w)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("worker %s exited with error: %v", id, err)
		}
	}
}

// TestPoisonJobQuarantine is the self-healing acceptance property: a job
// that deterministically panics on every worker that leases it must not
// kill either worker in a two-worker fleet. The sweep completes, the
// poison job becomes exactly one quarantined error row, and every other
// row is byte-identical to a local run.
func TestPoisonJobQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("poison e2e runs a full fleet sweep")
	}
	jobs := smallJobs(t)
	local := localJSONL(t, jobs)
	seed, poisonIdx := poisonSeed(t, jobs, chaos.JobFaults{Panic: 0.1})

	server := NewServer(ServerOptions{Lease: Options{
		LeaseTTL: 5 * time.Second, MaxAttempts: 10, QuarantineAfter: 2,
	}})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	// Both workers share the fault assignment (same seed): the poison job
	// panics wherever it lands — the shape of a real poison job.
	var stops []func()
	for _, id := range []string{"pa", "pb"} {
		ji := chaos.NewJobInjector(chaos.JobFaults{Seed: seed, Panic: 0.1})
		stops = append(stops, faultyWorker(t, srv.URL, id, 2, ji.WrapExecutor(sweep.LocalExecutor{}), nil))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	results, remote := runFleetSweep(t, srv.URL, jobs)
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	seen := make(map[int]bool)
	for _, res := range results {
		if seen[res.Index] {
			t.Errorf("cell %d delivered twice", res.Index)
		}
		seen[res.Index] = true
		switch {
		case res.Index == poisonIdx:
			if res.Err == nil {
				t.Errorf("poison job %d completed without error", res.Index)
			} else if !strings.Contains(res.Err.Error(), "quarantined as poison") {
				t.Errorf("poison job error %q lacks quarantine marker", res.Err)
			}
		case res.Err != nil:
			t.Errorf("healthy cell %d errored: %v", res.Index, res.Err)
		}
	}

	if len(remote) != len(local) {
		t.Fatalf("%d remote lines vs %d local", len(remote), len(local))
	}
	for i := range local {
		if i == poisonIdx {
			if !strings.Contains(remote[i], "quarantined as poison") {
				t.Errorf("poison row %d = %q, want a quarantine error row", i, remote[i])
			}
			continue
		}
		if remote[i] != local[i] {
			t.Errorf("row %d diverged from local:\n%s\nvs\n%s", i, remote[i], local[i])
		}
	}

	snap := server.Stats()
	if snap.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", snap.Quarantined)
	}
	if snap.Incidents < 2 {
		t.Errorf("incidents = %d, want >= 2 (distinct workers)", snap.Incidents)
	}
	if len(snap.Workers) != 2 {
		t.Errorf("worker registry has %d entries, want 2: %+v", len(snap.Workers), snap.Workers)
	}
}

// TestWorkerSlotContainment is the -parallel N survival bugfix: when one
// slot's job panics, the sibling slots (and the worker process) keep
// working. A single two-slot worker drains the whole matrix around the
// poison job, which quarantines on the first incident (QuarantineAfter 1
// — there is no second worker to corroborate).
func TestWorkerSlotContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("containment e2e runs a full sweep")
	}
	jobs := smallJobs(t, "exchange2")
	local := localJSONL(t, jobs)
	seed, poisonIdx := poisonSeed(t, jobs, chaos.JobFaults{Panic: 0.2})

	server := NewServer(ServerOptions{Lease: Options{
		LeaseTTL: 5 * time.Second, MaxAttempts: 10, QuarantineAfter: 1,
	}})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	ji := chaos.NewJobInjector(chaos.JobFaults{Seed: seed, Panic: 0.2})
	stop := faultyWorker(t, srv.URL, "solo", 2, ji.WrapExecutor(sweep.LocalExecutor{}), nil)
	defer stop()

	results, remote := runFleetSweep(t, srv.URL, jobs)
	for _, res := range results {
		if res.Index != poisonIdx && res.Err != nil {
			t.Errorf("surviving cell %d errored: %v", res.Index, res.Err)
		}
	}
	for i := range local {
		if i != poisonIdx && remote[i] != local[i] {
			t.Errorf("row %d diverged from local", i)
		}
	}
	if st := ji.JobStats(); st.Panics == 0 {
		t.Error("injector never panicked — containment untested")
	}
	snap := server.Stats()
	if snap.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", snap.Quarantined)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].Incidents == 0 {
		t.Errorf("worker registry %+v, want one entry with incidents", snap.Workers)
	}
}

// TestHedgedTailLease: a worker that stalls on every job it leases holds
// the sweep's tail hostage until the coordinator hedges its lease to the
// healthy worker. The output must stay byte-identical to a local run —
// the loser's late report is suppressed by the stale-lease 409 path.
func TestHedgedTailLease(t *testing.T) {
	if testing.Short() {
		t.Skip("hedge e2e waits out injected stalls")
	}
	jobs := smallJobs(t, "exchange2")
	local := localJSONL(t, jobs)

	server := NewServer(ServerOptions{Lease: Options{
		LeaseTTL: 30 * time.Second, MaxAttempts: 10,
		HedgeAfter: 150 * time.Millisecond,
	}})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	// Worker "slow" stalls 5s before every job; worker "fast" is clean
	// and drains the queue, then hedges slow's stuck lease. The submission
	// and the slow worker start first, and fast joins only once slow holds
	// a lease — otherwise fast can drain the whole matrix before slow ever
	// polls and there is no tail to hedge.
	slowJI := chaos.NewJobInjector(chaos.JobFaults{Seed: 1, Stall: 1, StallFor: 5 * time.Second})
	stopSlow := faultyWorker(t, srv.URL, "slow", 1, slowJI.WrapExecutor(sweep.LocalExecutor{}), nil)
	defer stopSlow()

	type fleetOut struct {
		results []sweep.Result
		remote  []string
	}
	ch := make(chan fleetOut, 1)
	go func() {
		results, remote := runFleetSweep(t, srv.URL, jobs)
		ch <- fleetOut{results, remote}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for server.Stats().Leased == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow worker never leased a job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopFast := faultyWorker(t, srv.URL, "fast", 2, sweep.LocalExecutor{}, nil)
	defer stopFast()

	out := <-ch
	results, remote := out.results, out.remote
	seen := make(map[int]bool)
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("cell %d errored under hedging: %v", res.Index, res.Err)
		}
		if seen[res.Index] {
			t.Errorf("cell %d delivered twice", res.Index)
		}
		seen[res.Index] = true
	}
	if strings.Join(remote, "\n") != strings.Join(local, "\n") {
		t.Errorf("hedged run diverged from local:\n%s\nvs\n%s",
			strings.Join(remote, "\n"), strings.Join(local, "\n"))
	}
	snap := server.Stats()
	if snap.Hedged == 0 {
		t.Error("no lease was hedged — the tail drained through the stalled worker")
	}
	if st := slowJI.JobStats(); st.Stalls == 0 {
		t.Error("slow worker never stalled — hedge untested")
	}
}

// TestIncidentTimeoutWatchdog: a job stalling past the slot watchdog (90%
// of the lease TTL) is contained as a timeout incident and, with
// QuarantineAfter 1, quarantined into a deterministic error row naming
// the watchdog.
func TestIncidentTimeoutWatchdog(t *testing.T) {
	if testing.Short() {
		t.Skip("watchdog e2e waits out a stall")
	}
	jobs := smallJobs(t, "exchange2")[:1]
	server := NewServer(ServerOptions{Lease: Options{
		LeaseTTL: 500 * time.Millisecond, MaxAttempts: 5,
		QuarantineAfter: 1, HedgeAfter: -1,
	}})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	ji := chaos.NewJobInjector(chaos.JobFaults{Seed: 1, Stall: 1, StallFor: 2 * time.Second})
	stop := faultyWorker(t, srv.URL, "stuck", 1, ji.WrapExecutor(sweep.LocalExecutor{}), nil)
	defer stop()

	results, _ := runFleetSweep(t, srv.URL, jobs)
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("want one error row, got %+v", results)
	}
	msg := results[0].Err.Error()
	if !strings.Contains(msg, "quarantined as poison after timeout") || !strings.Contains(msg, "slot watchdog") {
		t.Errorf("error %q does not describe the watchdog timeout", msg)
	}
}

// TestIncidentMemoryGuard: a job ballooning the heap past the worker's
// soft memory limit is contained as a memory incident; the quarantined
// row's message names the configured limit (never the observed heap, so
// the row is byte-stable).
func TestIncidentMemoryGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-guard e2e allocates a large buffer")
	}
	jobs := smallJobs(t, "exchange2")[:1]
	server := NewServer(ServerOptions{Lease: Options{
		LeaseTTL: 10 * time.Second, MaxAttempts: 5,
		QuarantineAfter: 1, HedgeAfter: -1,
	}})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	const limit = 64 << 20
	ji := chaos.NewJobInjector(chaos.JobFaults{
		Seed: 1, Alloc: 1, AllocBytes: 192 << 20, AllocHold: 2 * time.Second,
	})
	stop := faultyWorker(t, srv.URL, "balloon", 1, ji.WrapExecutor(sweep.LocalExecutor{}),
		func(w *Worker) { w.MemLimit = limit })
	defer stop()

	results, _ := runFleetSweep(t, srv.URL, jobs)
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("want one error row, got %+v", results)
	}
	msg := results[0].Err.Error()
	if !strings.Contains(msg, "quarantined as poison after memory") ||
		!strings.Contains(msg, fmt.Sprintf("soft memory limit (%d bytes)", limit)) {
		t.Errorf("error %q does not describe the memory guard", msg)
	}
}

// TestWorkerHealthGating drives the health registry with a fake clock: a
// worker accumulating checksum failures is refused leases while a healthy
// worker is live, regains eligibility as its penalty decays, and a
// degraded fleet (no healthy worker in contact) falls back to
// grant-to-anyone rather than stalling the queue.
func TestWorkerHealthGating(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	c := NewCoordinator(Options{
		LeaseTTL: time.Hour, MaxAttempts: 5,
		now: func() time.Time { return now },
	})
	enqueue := func() {
		c.enqueue(0, sweep.Job{Bench: "exchange2", Mode: "baseline"}, "", func(outcome) {})
	}

	// Register a healthy worker b, then push a over the penalty threshold
	// (4 checksum failures at 1.0 each, UnhealthyAfter default 4).
	if _, ok := c.lease("b", "b"); ok {
		t.Fatal("empty queue granted a lease")
	}
	for i := 0; i < 4; i++ {
		c.noteChecksumFailure("a")
	}

	enqueue()
	if _, ok := c.lease("a", "a"); ok {
		t.Fatal("unhealthy worker granted a lease while b is live")
	}
	if _, ok := c.lease("b", "b"); !ok {
		t.Fatal("healthy worker refused the job")
	}

	// Two minutes later a's penalty has decayed below the threshold
	// (half-life 5m: 4 * 2^(-2/5) ≈ 3.0); it leases again.
	now = now.Add(2 * time.Minute)
	c.heartbeat(HeartbeatRequest{Worker: "b"})
	enqueue()
	if _, ok := c.lease("a", "a"); !ok {
		t.Fatal("decayed worker still refused")
	}

	// Degraded fleet: a is pushed unhealthy again, and b has not been
	// heard from within the liveness window — refusing a would stall the
	// queue, so the gate falls back to granting.
	now = now.Add(5 * time.Minute)
	for i := 0; i < 6; i++ {
		c.noteChecksumFailure("a")
	}
	enqueue()
	if _, ok := c.lease("a", "a"); !ok {
		t.Fatal("degraded fleet refused its only worker")
	}

	snap := c.Stats()
	if len(snap.Workers) != 2 {
		t.Fatalf("registry %+v, want a and b", snap.Workers)
	}
	for _, ws := range snap.Workers {
		if ws.ID == "a" && ws.ChecksumFails != 10 {
			t.Errorf("a recorded %d checksum failures, want 10", ws.ChecksumFails)
		}
	}
}

// TestIncidentAndHeartbeatEndpoints covers the new wire surface directly:
// heartbeats register in the health registry, malformed incident reports
// are rejected, and an incident for an unknown lease answers 409.
func TestIncidentAndHeartbeatEndpoints(t *testing.T) {
	server := NewServer(ServerOptions{})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	post := func(path string, in any) int {
		status, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+path, "", in, nil)
		if err != nil && status == 0 {
			t.Fatalf("POST %s: %v", path, err)
		}
		return status
	}

	if got := post("/v1/heartbeat", HeartbeatRequest{Worker: "hb1", Busy: 3, HeapBytes: 123}); got != http.StatusOK {
		t.Fatalf("heartbeat status %d", got)
	}
	if got := post("/v1/heartbeat", HeartbeatRequest{}); got != http.StatusBadRequest {
		t.Fatalf("anonymous heartbeat status %d, want 400", got)
	}
	snap := server.Stats()
	if len(snap.Workers) != 1 || snap.Workers[0].ID != "hb1" || snap.Workers[0].Busy != 3 {
		t.Fatalf("registry after heartbeat: %+v", snap.Workers)
	}

	if got := post("/v1/incident", IncidentRequest{LeaseID: "nope", Worker: "hb1", Kind: "weird", Message: "m"}); got != http.StatusBadRequest {
		t.Fatalf("bad incident kind status %d, want 400", got)
	}
	if got := post("/v1/incident", IncidentRequest{LeaseID: "nope", Kind: IncidentPanic, Message: "m"}); got != http.StatusBadRequest {
		t.Fatalf("anonymous incident status %d, want 400", got)
	}
	if got := post("/v1/incident", IncidentRequest{LeaseID: "nope", Worker: "hb1", Kind: IncidentPanic, Message: "m"}); got != http.StatusConflict {
		t.Fatalf("unknown lease incident status %d, want 409", got)
	}
}

// TestReadyzProbes: the coordinator ops surface answers its liveness and
// readiness probes, and readiness flips to 503 once draining.
func TestReadyzProbes(t *testing.T) {
	server := NewServer(ServerOptions{})
	ops := httptest.NewServer(server.OpsHandler())
	defer ops.Close()

	get := func(path string) int {
		resp, err := http.Get(ops.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz %d", got)
	}
	server.Drain()
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining %d, want 503", got)
	}
}

// TestQuarantineHistorySurvivesRestart: an incident recorded against a job
// before a graceful restart still counts toward quarantine after it — the
// history rides the journal and the shutdown snapshot, so a poison job
// cannot reset its record by outliving a coordinator.
func TestQuarantineHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	jobs := smallJobs(t, "exchange2")
	opts := ServerOptions{Lease: Options{
		LeaseTTL: time.Minute, MaxAttempts: 10, QuarantineAfter: 2, HedgeAfter: -1,
	}}

	first := NewServer(opts)
	if err := first.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(first.Handler())
	var resp SubmitResponse
	if _, err := doJSON(ctx, srv1.Client(), http.MethodPost, srv1.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: jobs, Nonce: "n-poison"}, &resp); err != nil {
		t.Fatal(err)
	}
	lease := leaseOne(t, srv1.URL)
	if _, err := doJSON(ctx, srv1.Client(), http.MethodPost, srv1.URL+"/v1/incident", "",
		IncidentRequest{LeaseID: lease.LeaseID, Worker: "a", Kind: IncidentPanic, Message: "boom"}, nil); err != nil {
		t.Fatal(err)
	}
	poisonIdx := lease.Index
	srv1.Close()
	if err := first.CloseState(); err != nil {
		t.Fatal(err)
	}

	second := NewServer(opts)
	if err := second.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	defer second.CloseState()
	srv2 := httptest.NewServer(second.Handler())
	defer srv2.Close()

	// Drain leases until the poisoned job comes around, then report a
	// second incident from a different worker: with the recovered history
	// it must cross QuarantineAfter=2 immediately.
	found := false
	for i := 0; i < len(jobs)+2 && !found; i++ {
		lr := leaseOne(t, srv2.URL)
		if lr.Index == poisonIdx {
			if _, err := doJSON(ctx, srv2.Client(), http.MethodPost, srv2.URL+"/v1/incident", "",
				IncidentRequest{LeaseID: lr.LeaseID, Worker: "b", Kind: IncidentPanic, Message: "boom"}, nil); err != nil {
				t.Fatal(err)
			}
			found = true
			continue
		}
		if _, err := doJSON(ctx, srv2.Client(), http.MethodPost, srv2.URL+"/v1/result", "",
			ResultRequest{LeaseID: lr.LeaseID, Result: sweep.Result{
				Index: lr.Index, Job: lr.Job,
				Res: &core.Results{Stats: &pipeline.Stats{Committed: uint64(lr.Index + 1)}},
			}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !found {
		t.Fatal("poisoned job never re-leased after restart")
	}
	snap := second.Stats()
	if snap.Quarantined != 1 {
		t.Errorf("quarantined = %d after one post-restart incident, want 1 (history lost?)", snap.Quarantined)
	}
}
