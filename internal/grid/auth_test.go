package grid

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safespec/internal/sweep"
)

// writeTokenFile drops a token file into a temp dir and returns its path.
func writeTokenFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadTenants covers the token-file validation: the coordinator must
// refuse a file whose ambiguity (duplicate tokens/names) or gaps (missing
// fields) would otherwise surface as silent misrouting at request time.
func TestLoadTenants(t *testing.T) {
	good := `{"tenants": [
		{"name": "ci", "token": "tok-ci", "max_sweeps": 2, "rate_per_sec": 50},
		{"name": "dev", "token": "tok-dev"}
	]}`
	tenants, err := LoadTenants(writeTokenFile(t, good))
	if err != nil {
		t.Fatalf("valid token file rejected: %v", err)
	}
	if len(tenants) != 2 || tenants[0].Name != "ci" || tenants[0].MaxSweeps != 2 ||
		tenants[0].RatePerSec != 50 || tenants[1].Token != "tok-dev" {
		t.Fatalf("token file misparsed: %+v", tenants)
	}

	for name, tc := range map[string]struct{ content, wantErr string }{
		"empty":          {`{"tenants": []}`, "no tenants"},
		"no-name":        {`{"tenants": [{"token": "x"}]}`, "no name"},
		"no-token":       {`{"tenants": [{"name": "a"}]}`, "no token"},
		"dup-name":       {`{"tenants": [{"name":"a","token":"x"},{"name":"a","token":"y"}]}`, "duplicate tenant name"},
		"dup-token":      {`{"tenants": [{"name":"a","token":"x"},{"name":"b","token":"x"}]}`, "reuses another tenant's token"},
		"negative-limit": {`{"tenants": [{"name":"a","token":"x","max_sweeps":-1}]}`, "negative limit"},
		"not-json":       {`tenants: [a]`, "token file"},
	} {
		_, err := LoadTenants(writeTokenFile(t, tc.content))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", name, err, tc.wantErr)
		}
	}
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing token file must error")
	}
}

// TestSingleTokenShorthand: ServerOptions.Token must behave exactly like a
// one-tenant token file — same auth, and the tenant shows up in stats under
// the name "default".
func TestSingleTokenShorthand(t *testing.T) {
	server := NewServer(ServerOptions{Token: "legacy"})
	snap := server.Stats()
	if len(snap.Tenants) != 1 || snap.Tenants[0].Name != "default" {
		t.Fatalf("shorthand tenant missing from stats: %+v", snap.Tenants)
	}
	if ts := server.auth.resolve("Bearer legacy"); ts == nil || ts.Name != "default" {
		t.Errorf("shorthand token does not resolve: %v", ts)
	}
	if ts := server.auth.resolve("Bearer wrong"); ts != nil {
		t.Errorf("wrong token resolved to tenant %q", ts.Name)
	}
}

// TestTenantRateLimit drives the token bucket through the HTTP middleware:
// burst requests pass, the next gets 429 with a Retry-After hint (never
// 401 — the token is valid), and refill restores service. The 429 must
// also be visible in the tenant's counters.
func TestTenantRateLimit(t *testing.T) {
	clk := &fakeClock{now: time.Unix(10_000, 0)}
	server := NewServer(ServerOptions{
		Tenants: []Tenant{{Name: "throttled", Token: "tt", RatePerSec: 1, Burst: 2}},
		now:     clk.Now,
	})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	get := func(token string) (int, http.Header) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/stats", nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	if status, _ := get("wrong"); status != http.StatusUnauthorized {
		t.Fatalf("unknown token: got %d, want 401", status)
	}
	for i := 0; i < 2; i++ { // burst
		if status, _ := get("tt"); status != http.StatusOK {
			t.Fatalf("burst request %d: got %d, want 200", i, status)
		}
	}
	status, hdr := get("tt")
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: got %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}
	clk.Advance(3 * time.Second) // refill
	if status, _ := get("tt"); status != http.StatusOK {
		t.Errorf("post-refill request: got %d, want 200", status)
	}
	snap := server.Stats()
	if len(snap.Tenants) != 1 || snap.Tenants[0].RateLimited != 1 {
		t.Errorf("429 not accounted: %+v", snap.Tenants)
	}
	if snap.AuthFailures != 1 {
		t.Errorf("401 not accounted: %d auth failures", snap.AuthFailures)
	}
}

// TestTenantSweepQuota: the MaxSweeps quota must reject the over-quota
// submission with 403 (not 429 — backoff cannot help), release the slot on
// DELETE, and not double-count a nonce-retried submission.
func TestTenantSweepQuota(t *testing.T) {
	server := NewServer(ServerOptions{
		Tenants: []Tenant{{Name: "quota", Token: "qt", MaxSweeps: 1}},
	})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var first SubmitResponse
	status, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "qt",
		SubmitRequest{Nonce: "n1"}, &first)
	if err != nil || status != http.StatusOK {
		t.Fatalf("first sweep: status %d err %v", status, err)
	}
	// A retried POST of the same nonce resolves to the same sweep and must
	// not trip the quota (it is the sweep already counted).
	var retried SubmitResponse
	status, err = doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "qt",
		SubmitRequest{Nonce: "n1"}, &retried)
	if err != nil || status != http.StatusOK || retried.SweepID != first.SweepID {
		t.Fatalf("nonce retry: status %d err %v id %s (want %s)", status, err, retried.SweepID, first.SweepID)
	}
	// A second distinct sweep is over quota.
	status, err = doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "qt",
		SubmitRequest{Nonce: "n2"}, nil)
	if err != nil || status != http.StatusForbidden {
		t.Fatalf("over-quota sweep: status %d err %v, want 403", status, err)
	}
	// Closing the first sweep frees the slot.
	if status, err = doJSON(ctx, srv.Client(), http.MethodDelete, srv.URL+"/v1/sweeps/"+first.SweepID, "qt", nil, nil); err != nil || status != http.StatusOK {
		t.Fatalf("close: status %d err %v", status, err)
	}
	if status, err = doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "qt",
		SubmitRequest{Nonce: "n3"}, nil); err != nil || status != http.StatusOK {
		t.Fatalf("post-release sweep: status %d err %v, want 200", status, err)
	}
	snap := server.Stats()
	if len(snap.Tenants) != 1 || snap.Tenants[0].QuotaRejected != 1 || snap.Tenants[0].ActiveSweeps != 1 {
		t.Errorf("quota accounting wrong: %+v", snap.Tenants)
	}
}

// TestSweepOwnership: one tenant's sweep id must be invisible to another —
// every per-sweep endpoint answers 404, exactly as for an id that never
// existed, so ids can never be used across tenants.
func TestSweepOwnership(t *testing.T) {
	server := NewServer(ServerOptions{
		Tenants: []Tenant{{Name: "alice", Token: "ta"}, {Name: "bob", Token: "tb"}},
	})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "ta",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1]}, &resp); err != nil {
		t.Fatal(err)
	}
	foreign := []struct{ method, path string }{
		{http.MethodGet, "/v1/sweeps/" + resp.SweepID},
		{http.MethodGet, "/v1/sweeps/" + resp.SweepID + "/results"},
		{http.MethodPost, "/v1/sweeps/" + resp.SweepID + "/jobs"},
		{http.MethodDelete, "/v1/sweeps/" + resp.SweepID},
	}
	for _, ep := range foreign {
		var body any
		if ep.method == http.MethodPost {
			body = JobRequest{Index: 9, Job: smallJobs(t, "exchange2")[0]}
		}
		status, err := doJSON(ctx, srv.Client(), ep.method, srv.URL+ep.path, "tb", body, nil)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusNotFound {
			t.Errorf("%s %s as foreign tenant: got %d, want 404", ep.method, ep.path, status)
		}
	}
	// The owner still resolves it.
	status, err := doJSON(ctx, srv.Client(), http.MethodGet, srv.URL+"/v1/sweeps/"+resp.SweepID, "ta", nil, nil)
	if err != nil || status != http.StatusOK {
		t.Errorf("owner poll: status %d err %v, want 200", status, err)
	}
}

// metricLine matches one well-formed sample in the Prometheus text
// exposition format, as the CI scrape gate does.
var metricLine = regexp.MustCompile(`^safespec_[a-z0-9_]+(\{[a-z]+="(\\.|[^"\\])*"\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// TestMetricsWellFormed scrapes /metrics off the ops handler and checks
// every line is either a HELP/TYPE comment or a well-formed safespec_
// sample, that each family announces its TYPE before its samples, and that
// the load-bearing families are present with the values the test produced.
func TestMetricsWellFormed(t *testing.T) {
	server := NewServer(ServerOptions{
		Tenants: []Tenant{{Name: "m\"etrics", Token: "secret-token-tm", MaxSweeps: 1}},
	})
	api := httptest.NewServer(server.Handler())
	defer api.Close()
	ops := httptest.NewServer(server.OpsHandler())
	defer ops.Close()
	ctx := context.Background()

	// Produce some accounting: one open sweep, one 401, one quota 403.
	var resp SubmitResponse
	if _, err := doJSON(ctx, api.Client(), http.MethodPost, api.URL+"/v1/sweeps", "secret-token-tm",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1]}, &resp); err != nil {
		t.Fatal(err)
	}
	if status, _ := doJSON(ctx, api.Client(), http.MethodGet, api.URL+"/v1/stats", "bad", nil, nil); status != http.StatusUnauthorized {
		t.Fatalf("setup 401 got %d", status)
	}
	if status, _ := doJSON(ctx, api.Client(), http.MethodPost, api.URL+"/v1/sweeps", "secret-token-tm", SubmitRequest{}, nil); status != http.StatusForbidden {
		t.Fatalf("setup 403 got %d", status)
	}

	res, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	typed := map[string]bool{}
	samples := map[string]string{}
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, value, _ := strings.Cut(line, " ")
		family, _, _ := strings.Cut(name, "{")
		// Histogram samples carry the family name plus a series suffix.
		base := family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(family, suf) {
				base = strings.TrimSuffix(family, suf)
				break
			}
		}
		if !typed[family] && !typed[base] {
			t.Errorf("sample %q appears before its # TYPE", line)
		}
		samples[name] = value
	}
	for name, want := range map[string]string{
		"safespec_sweeps_active":                                   "1",
		"safespec_auth_failures_total":                             "1",
		"safespec_jobs_pending":                                    "1",
		`safespec_tenant_quota_rejected_total{tenant="m\"etrics"}`: "1",
		`safespec_tenant_sweeps_active{tenant="m\"etrics"}`:        "1",
	} {
		if got := samples[name]; got != want {
			t.Errorf("%s = %q, want %q (samples: %v)", name, got, want, samples)
		}
	}

	// The status page renders the same state read-only, with the sweep's id
	// and owner visible and the tenant's token nowhere.
	page, err := http.Get(ops.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer page.Body.Close()
	var html strings.Builder
	sc = bufio.NewScanner(page.Body)
	for sc.Scan() {
		html.WriteString(sc.Text() + "\n")
	}
	for _, want := range []string{resp.SweepID, "exchange2", "0/1"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("status page lacks %q:\n%s", want, html.String())
		}
	}
	if strings.Contains(html.String(), "secret-token-tm") {
		t.Error("status page leaks a tenant token")
	}
}

// TestReport429Retried extends the terminal-4xx contract for the worker's
// report path: 429 is the one 4xx that must be retried (it asks for exactly
// a backoff), including by the detached final report on shutdown — a
// completed job must not be thrown away because the tenant was briefly
// over its request rate.
func TestReport429Retried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	w := &Worker{Coordinator: srv.URL}
	if err := w.report(context.Background(), srv.Client(), "lease-1", sweep.Result{}); err != nil {
		t.Fatalf("report did not ride out 429s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d report attempts, want 3", got)
	}
}
