package grid

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"safespec/internal/backoff"
	"safespec/internal/core"
	"safespec/internal/sweep"
)

// RemoteExecutor runs a sweep on a persistent external coordinator
// (cmd/safespec-coordinator, or the in-process `safespec-bench -serve`
// degenerate case). It implements sweep.Executor — sinks, in-order
// delivery and byte-identical output are untouched — plus the
// sweep.Submitter extension: when sweep.Run announces the job matrix, the
// whole sweep is enqueued in one POST /v1/sweeps. When the matrix is not
// announced (e.g. a result cache wraps this executor and only misses reach
// the grid), Execute submits jobs one at a time to a lazily-opened sweep.
//
// Results arrive as a stream of batches: one background goroutine per
// sweep long-polls GET /v1/sweeps/{id}/results?after=N&wait=D, and each
// response carries every result completed since cursor N. Execute calls
// wait on that shared stream instead of polling their own index, so a
// sweep costs O(result batches) HTTP round trips — not O(cells) — however
// wide the matrix. Close releases the sweep's server-side state (and stops
// the stream); an unclosed sweep (crashed client) is abandoned by the
// server after its SweepTTL.
type RemoteExecutor struct {
	// URL is the coordinator base URL ("http://host:port" or, for a TLS
	// coordinator, "https://host:port" — pair it with a Client from
	// NewHTTPClient when the certificate is not signed by a system root).
	URL string
	// Token authenticates every request ("" sends no Authorization header).
	Token string
	// Client is the HTTP client; nil selects one whose timeout comfortably
	// exceeds the long-poll window.
	Client *http.Client
	// PollWait is the long-poll duration requested per result-batch poll
	// (default 25s; the server caps it at one minute).
	PollWait time.Duration
	// Log receives structured progress records (nil discards them).
	Log *slog.Logger

	mu        sync.Mutex
	sweepID   string
	nonce     string            // stable submission nonce: the recovery key across coordinator restarts
	jobs      map[int]sweep.Job // everything submitted, for re-submission after a restart
	received  map[int]bool      // indexes already dispatched (dedupes re-streamed results)
	submitted map[int]bool
	waiters   map[int]chan sweep.Result // Execute calls parked on an index
	arrived   map[int]sweep.Result      // streamed results nobody asked for yet
	streamCtx context.CancelFunc        // non-nil while the streamer runs
	streamEnd chan struct{}             // closed when the streamer exits
	streamErr error                     // terminal stream failure, set before streamEnd closes

	// recMu serializes restart recovery: one goroutine re-resolves the
	// sweep by nonce while the rest observe the already-updated sweep id.
	recMu sync.Mutex
}

// defaultPollWait balances held-open connections against poll chatter; it
// must stay well under the client timeout below.
const defaultPollWait = 25 * time.Second

func (r *RemoteExecutor) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultRemoteClient
}

var defaultRemoteClient = &http.Client{Timeout: 90 * time.Second}

// NewHTTPClient builds an HTTP client for coordinator URLs. A non-empty
// caFile names a PEM certificate bundle trusted in place of the system
// roots — the self-signed or private-CA fleet deployment (the coordinator's
// own -tls-cert file works directly as the bundle). timeout <= 0 selects
// the long-poll-safe default used by RemoteExecutor.
func NewHTTPClient(caFile string, timeout time.Duration) (*http.Client, error) {
	if timeout <= 0 {
		timeout = defaultRemoteClient.Timeout
	}
	client := &http.Client{Timeout: timeout}
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("tls ca: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("tls ca: no PEM certificates in %s", caFile)
		}
		client.Transport = &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: pool},
			// Mirror the relevant DefaultTransport tuning; long-poll
			// connections are reused heavily.
			MaxIdleConns:        100,
			IdleConnTimeout:     90 * time.Second,
			TLSHandshakeTimeout: 10 * time.Second,
		}
	}
	return client, nil
}

func (r *RemoteExecutor) log() *slog.Logger {
	if r.Log != nil {
		return r.Log
	}
	return slog.New(slog.DiscardHandler)
}

// Submit implements sweep.Submitter: it opens a sweep on the coordinator
// carrying the whole job matrix, so the fleet starts draining it before the
// first Execute call even polls. Transport errors are retried briefly — a
// coordinator mid-restart should not fail the sweep.
func (r *RemoteExecutor) Submit(ctx context.Context, jobs []sweep.Job) error {
	r.mu.Lock()
	nonce := r.nonceLocked()
	r.mu.Unlock()
	resp, err := r.openSweep(ctx, jobs, nonce)
	if err != nil {
		return fmt.Errorf("grid: submit sweep to %s: %w", r.URL, err)
	}
	r.mu.Lock()
	r.sweepID = resp.SweepID
	r.submitted = make(map[int]bool, len(jobs))
	r.jobs = make(map[int]sweep.Job, len(jobs))
	for i, j := range jobs {
		r.submitted[i] = true
		r.jobs[i] = j
	}
	r.mu.Unlock()
	r.log().Info("sweep submitted", "sweep", resp.SweepID, "coordinator", r.URL, "jobs", len(jobs))
	return nil
}

// nonceLocked returns the executor's stable submission nonce, minting it
// on first use. One nonce spans the whole sweep's lifetime (Close resets
// it): it makes the creation POST idempotent against lost responses AND
// serves as the recovery key a restarted coordinator resolves the sweep
// by. Caller holds r.mu.
func (r *RemoteExecutor) nonceLocked() string {
	if r.nonce == "" {
		r.nonce = newNonce()
	}
	return r.nonce
}

// openSweep POSTs a sweep-creation request carrying jobs (nil opens an
// empty sweep for incremental submission). The nonce makes the retried
// POST idempotent: if an attempt landed but its response was lost, the
// coordinator hands back the existing sweep instead of double-running it.
func (r *RemoteExecutor) openSweep(ctx context.Context, jobs []sweep.Job, nonce string) (SubmitResponse, error) {
	req := SubmitRequest{Jobs: jobs, Nonce: nonce}
	var resp SubmitResponse
	status, err := r.retry(ctx, func() (int, http.Header, error) {
		return doJSONHdr(ctx, r.client(), http.MethodPost, r.URL+"/v1/sweeps", r.Token,
			req, &resp)
	})
	if err == nil && status != http.StatusOK {
		err = statusErr(status)
	}
	return resp, err
}

// Execute submits the job if the matrix announcement did not already cover
// it, then waits for the shared result stream to deliver its index.
func (r *RemoteExecutor) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	res, _, err := r.ExecuteTimed(ctx, index, j)
	return res, err
}

// ExecuteTimed is Execute returning the streamed result's span breakdown
// (stamped by the coordinator and the reporting worker; nil when either
// predates timing), so sweep.Run records Timing for remote sweeps.
func (r *RemoteExecutor) ExecuteTimed(ctx context.Context, index int, j sweep.Job) (*core.Results, *sweep.Timing, error) {
	id, err := r.ensure(ctx, index, j)
	if err != nil {
		return nil, nil, err
	}

	r.mu.Lock()
	if res, ok := r.arrived[index]; ok {
		delete(r.arrived, index)
		r.mu.Unlock()
		return res.Res, res.Timing, res.Err
	}
	ch := make(chan sweep.Result, 1)
	if r.waiters == nil {
		r.waiters = make(map[int]chan sweep.Result)
	}
	r.waiters[index] = ch
	r.startStreamLocked(id)
	end := r.streamEnd
	r.mu.Unlock()

	select {
	case res := <-ch:
		return res.Res, res.Timing, res.Err
	case <-end:
		r.mu.Lock()
		err := r.streamErr
		delete(r.waiters, index)
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("grid: sweep %s job %d: %w", id, index, err)
	case <-ctx.Done():
		r.mu.Lock()
		delete(r.waiters, index)
		r.mu.Unlock()
		// A delivery may have raced the cancellation; prefer it.
		select {
		case res := <-ch:
			return res.Res, res.Timing, res.Err
		default:
			return nil, nil, ctx.Err()
		}
	}
}

// startStreamLocked launches the batch-streaming goroutine for the sweep if
// it is not already running. Caller holds r.mu. The stream's lifetime is
// the executor's, not any one Execute call's: it is stopped by Close (or by
// a terminal coordinator answer such as 404 after a restart).
func (r *RemoteExecutor) startStreamLocked(id string) {
	if r.streamCtx != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.streamCtx = cancel
	r.streamEnd = make(chan struct{})
	r.streamErr = nil
	go r.stream(ctx, id, r.streamEnd)
}

// maxStreamRecoveries bounds consecutive restart recoveries before the
// stream gives up: a coordinator that loses the sweep again and again
// without ever delivering a batch is misconfigured, not mid-restart.
const maxStreamRecoveries = 5

// stream long-polls the sweep's result batches and dispatches each result
// to the Execute call waiting on its index (or parks it for an Execute yet
// to ask). It exits on Close's cancellation or a terminal coordinator
// answer; transport faults, 5xx and 429 are ridden out by retry, and a
// coordinator restart (404 for the sweep id, or a connection that stays
// refused past the retry budget) is ridden out by re-resolving the sweep
// through its submission nonce and resuming the batch cursor.
func (r *RemoteExecutor) stream(ctx context.Context, id string, end chan struct{}) {
	defer close(end)
	wait := r.PollWait
	if wait <= 0 {
		wait = defaultPollWait
	}
	after := 0
	recoveries := 0
	recoverSweep := func(cause string) bool {
		if recoveries++; recoveries > maxStreamRecoveries {
			return false
		}
		newID, err := r.reresolve(ctx, id)
		if err != nil {
			r.log().Warn("sweep recovery failed", "sweep", id, "cause", cause, "err", err.Error())
			return false
		}
		if newID != id {
			// A coordinator without durable state opened a fresh sweep: its
			// log starts empty, so the cursor restarts and the received-set
			// dedupe swallows any cells streamed twice.
			id, after = newID, 0
		}
		return true
	}
	for {
		url := fmt.Sprintf("%s/v1/sweeps/%s/results?after=%d&wait=%s", r.URL, id, after, wait)
		var batch ResultBatch
		status, err := r.retry(ctx, func() (int, http.Header, error) {
			return doJSONHdr(ctx, r.client(), http.MethodGet, url, r.Token, nil, &batch)
		})
		switch {
		case ctx.Err() != nil:
			r.setStreamErr(fmt.Errorf("stream stopped: %w", ctx.Err()))
			return
		case err != nil:
			// The retry budget is exhausted — the shape of a coordinator
			// down for longer than a blip. Re-resolving retries the
			// connection again and re-establishes the sweep if the process
			// that answers is a fresh one.
			if !recoverSweep("unreachable: " + err.Error()) {
				r.setStreamErr(fmt.Errorf("grid: stream %s: %w", id, err))
				return
			}
		case status == http.StatusOK:
			recoveries = 0
			for _, res := range batch.Results {
				r.dispatch(res)
			}
			after = batch.Next
		case status == http.StatusNotFound:
			// The coordinator restarted (or abandoned the sweep past its
			// TTL). The sweep id is random so it can never collide with
			// another client's; the nonce re-resolves our own sweep — on a
			// durable coordinator the very same one, cursor intact.
			if !recoverSweep("sweep id lost (coordinator restart)") {
				r.setStreamErr(fmt.Errorf("grid: sweep %s expired on coordinator %s (restart without -state-dir, or client idle past the sweep TTL?)", id, r.URL))
				return
			}
		case status == http.StatusBadRequest:
			// A stale cursor (recovered log shorter than our position, which
			// a lost unsynced journal tail can produce): restart the stream
			// from zero and let the received-set drop the duplicates.
			if after == 0 || !recoverSweep("stale cursor") {
				r.setStreamErr(fmt.Errorf("grid: stream %s: %w", id, statusErr(status)))
				return
			}
			after = 0
		default:
			r.setStreamErr(fmt.Errorf("grid: stream %s: %w", id, statusErr(status)))
			return
		}
	}
}

// reresolve recovers from a coordinator that no longer serves lostID: it
// re-submits the sweep under the executor's stable nonce — a coordinator
// with durable state answers with the surviving sweep, a stateless one
// opens a fresh sweep — then idempotently re-posts every known job, so
// cells the restart never saw are enqueued and cells it recovered are
// no-ops. Returns the current sweep id. Concurrent callers serialize on
// recMu; late ones observe the already-updated id and return immediately.
func (r *RemoteExecutor) reresolve(ctx context.Context, lostID string) (string, error) {
	r.recMu.Lock()
	defer r.recMu.Unlock()
	r.mu.Lock()
	if r.sweepID != lostID && r.sweepID != "" {
		id := r.sweepID
		r.mu.Unlock()
		return id, nil
	}
	nonce := r.nonce
	jobs := make(map[int]sweep.Job, len(r.jobs))
	for i, j := range r.jobs {
		jobs[i] = j
	}
	r.mu.Unlock()
	if nonce == "" {
		return "", fmt.Errorf("sweep %s has no submission nonce to recover by", lostID)
	}
	var resp SubmitResponse
	status, err := r.retry(ctx, func() (int, http.Header, error) {
		return doJSONHdr(ctx, r.client(), http.MethodPost, r.URL+"/v1/sweeps", r.Token,
			SubmitRequest{Nonce: nonce}, &resp)
	})
	if err == nil && status != http.StatusOK {
		err = statusErr(status)
	}
	if err != nil {
		return "", fmt.Errorf("re-resolve by nonce: %w", err)
	}
	indexes := make([]int, 0, len(jobs))
	for i := range jobs {
		indexes = append(indexes, i)
	}
	sort.Ints(indexes)
	for _, i := range indexes {
		status, err := r.retry(ctx, func() (int, http.Header, error) {
			return doJSONHdr(ctx, r.client(), http.MethodPost,
				fmt.Sprintf("%s/v1/sweeps/%s/jobs", r.URL, resp.SweepID), r.Token,
				JobRequest{Index: i, Job: jobs[i]}, nil)
		})
		if err == nil && status != http.StatusOK {
			err = statusErr(status)
		}
		if err != nil {
			return "", fmt.Errorf("re-submit job %d: %w", i, err)
		}
	}
	r.mu.Lock()
	r.sweepID = resp.SweepID
	r.mu.Unlock()
	r.log().Info("sweep recovered after coordinator restart",
		"lost", lostID, "sweep", resp.SweepID, "jobs_resubmitted", len(jobs), "resumed", resp.SweepID == lostID)
	return resp.SweepID, nil
}

func (r *RemoteExecutor) setStreamErr(err error) {
	r.mu.Lock()
	r.streamErr = err
	r.mu.Unlock()
}

// dispatch hands one streamed result to the Execute call parked on its
// index, or stores it until that call arrives (batches deliver results in
// completion order, which need not match the order Execute calls ask). An
// index already dispatched is dropped: restart recovery can replay the
// stream from an earlier cursor, and each cell must reach sweep.Run
// exactly once.
func (r *RemoteExecutor) dispatch(res sweep.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.received[res.Index] {
		return
	}
	if r.received == nil {
		r.received = make(map[int]bool)
	}
	r.received[res.Index] = true
	if ch, ok := r.waiters[res.Index]; ok {
		delete(r.waiters, res.Index)
		ch <- res
		return
	}
	if r.arrived == nil {
		r.arrived = make(map[int]sweep.Result)
	}
	r.arrived[res.Index] = res
}

// ensure opens the sweep on first use and submits this job if the matrix
// announcement did not already carry it. Only sweep creation runs under the
// mutex (one request per sweep); per-job submissions claim their index
// first and post outside the lock, so concurrent cache misses submit in
// parallel instead of serializing behind one another's round trips.
func (r *RemoteExecutor) ensure(ctx context.Context, index int, j sweep.Job) (string, error) {
	r.mu.Lock()
	if r.sweepID == "" {
		resp, err := r.openSweep(ctx, nil, r.nonceLocked())
		if err != nil {
			r.mu.Unlock()
			return "", fmt.Errorf("grid: open sweep on %s: %w", r.URL, err)
		}
		r.sweepID = resp.SweepID
		r.submitted = make(map[int]bool)
		r.jobs = make(map[int]sweep.Job)
		r.log().Info("sweep opened for incremental submission", "sweep", resp.SweepID, "coordinator", r.URL)
	}
	id := r.sweepID
	claimed := r.submitted[index]
	if !claimed {
		// Claim before posting: a concurrent Execute for the same index (not
		// that Run produces one) would double-post, which the server treats
		// as a no-op anyway.
		r.submitted[index] = true
		r.jobs[index] = j
	}
	r.mu.Unlock()
	if !claimed {
		// A 404 mid-loop means the coordinator restarted between opening
		// the sweep and this submission: re-resolve by nonce and re-post to
		// the current id. Bounded — each pass either succeeds, recovers, or
		// returns the terminal error.
		for pass := 0; ; pass++ {
			status, err := r.retry(ctx, func() (int, http.Header, error) {
				return doJSONHdr(ctx, r.client(), http.MethodPost,
					fmt.Sprintf("%s/v1/sweeps/%s/jobs", r.URL, id), r.Token,
					JobRequest{Index: index, Job: j}, nil)
			})
			if err == nil && status == http.StatusNotFound && pass < maxStreamRecoveries {
				newID, rerr := r.reresolve(ctx, id)
				if rerr == nil {
					id = newID
					continue
				}
				err = fmt.Errorf("%w (recovery failed: %v)", statusErr(status), rerr)
			}
			if err == nil && status != http.StatusOK {
				err = statusErr(status)
			}
			if err != nil {
				return "", fmt.Errorf("grid: submit job %d to sweep %s: %w", index, id, err)
			}
			break
		}
	}
	return id, nil
}

// Close stops the result stream and releases the sweep's state on the
// coordinator (idempotent; a sweep the server already dropped counts as
// released). The executor can be reused afterwards: the next Submit or
// Execute opens a fresh sweep with a fresh stream.
func (r *RemoteExecutor) Close() error {
	r.mu.Lock()
	id := r.sweepID
	cancel, end := r.streamCtx, r.streamEnd
	r.sweepID, r.submitted = "", nil
	r.nonce, r.jobs, r.received = "", nil, nil
	r.waiters, r.arrived = nil, nil
	r.streamCtx, r.streamEnd = nil, nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-end
	}
	if id == "" {
		return nil
	}
	ctx, cancelReq := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelReq()
	status, err := doJSON(ctx, r.client(), http.MethodDelete, r.URL+"/v1/sweeps/"+id, r.Token, nil, nil)
	if err != nil {
		return fmt.Errorf("grid: close sweep %s: %w", id, err)
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("grid: close sweep %s: unexpected status %d", id, status)
	}
	return nil
}

// Stats fetches the coordinator's accounting snapshot.
func (r *RemoteExecutor) Stats(ctx context.Context) (ServerSnapshot, error) {
	var snap ServerSnapshot
	status, err := doJSON(ctx, r.client(), http.MethodGet, r.URL+"/v1/stats", r.Token, nil, &snap)
	if err != nil {
		return snap, err
	}
	if status != http.StatusOK {
		return snap, fmt.Errorf("grid: stats: unexpected status %d", status)
	}
	return snap, nil
}

// remoteRetry is the executor's backoff schedule for transport faults,
// 5xx and 429 alike.
var remoteRetry = backoff.Policy{Base: 250 * time.Millisecond, Cap: 5 * time.Second}

// retry runs fn until it returns a status that is neither 5xx nor 429
// without a transport error, backing off between attempts, and hands the
// final status to the caller to interpret. Transport faults and 5xx are
// retried alike (both are the shape of a coordinator or fronting proxy
// mid-restart); 429 is the coordinator's rate limiter asking exactly for
// this backoff — its Retry-After, when present, overrides the schedule —
// so treating it as terminal would fail a sweep the tenant was merely
// pacing.
func (r *RemoteExecutor) retry(ctx context.Context, fn func() (int, http.Header, error)) (int, error) {
	var status int
	var err error
	var hint time.Duration
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			pause := remoteRetry.PauseHint(attempt-1, hint)
			if !sleep(ctx, pause) {
				return 0, ctx.Err()
			}
		}
		var hdr http.Header
		status, hdr, err = fn()
		if err == nil && status < 500 && status != http.StatusTooManyRequests {
			return status, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		hint = 0
		pause := remoteRetry.Pause(attempt)
		switch {
		case err != nil:
			r.log().Warn("coordinator unreachable, backing off", "coordinator", r.URL, "err", err.Error(), "pause", pause.String())
		case status == http.StatusTooManyRequests:
			hint = retryAfter(hdr)
			r.log().Info("coordinator rate limit, backing off", "coordinator", r.URL, "pause", remoteRetry.PauseHint(attempt, hint).String())
		default:
			r.log().Warn("coordinator error, backing off", "coordinator", r.URL, "status", status, "pause", pause.String())
		}
	}
	if err == nil {
		err = statusErr(status)
	}
	return status, err
}

// statusErr renders a terminal HTTP status as an error, spelling out the
// misconfigurations users actually hit.
func statusErr(status int) error {
	switch status {
	case http.StatusUnauthorized:
		return errUnauthorized
	case http.StatusForbidden:
		return fmt.Errorf("coordinator refused (status 403): tenant sweep quota exceeded; close an open sweep or raise max_sweeps in the token file")
	case http.StatusTooManyRequests:
		return fmt.Errorf("coordinator rate limit (status 429) persisted through retries; raise rate_per_sec in the token file or slow the client")
	}
	return fmt.Errorf("unexpected status %d", status)
}

// newNonce returns a random submission id for sweep-creation idempotency.
func newNonce() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// doJSON sends one JSON request with optional bearer auth and decodes a
// 200 response body into out (when non-nil). The returned error covers
// transport and decoding failures only; HTTP statuses are the caller's to
// interpret.
func doJSON(ctx context.Context, client *http.Client, method, url, token string, in, out any) (int, error) {
	status, _, err := doJSONHdr(ctx, client, method, url, token, in, out)
	return status, err
}

// doJSONHdr is doJSON also returning the response headers (nil on
// transport failure), for callers that interpret advisory headers such as
// a 429's Retry-After. Requests are stamped with a body checksum, and a
// 200 response carrying one is verified before decoding: a mismatch (a
// byte damaged in transit that might still parse as JSON) is returned as
// a transport-shaped error so retry loops fetch fresh bytes.
func doJSONHdr(ctx context.Context, client *http.Client, method, url, token string, in, out any) (int, http.Header, error) {
	return doJSONAs(ctx, client, method, url, token, "", in, out)
}

// doJSONAs is doJSONHdr additionally stamping the worker identity header
// (when worker is non-empty), so the coordinator's health registry can
// attribute even requests whose body arrives damaged.
func doJSONAs(ctx context.Context, client *http.Client, method, url, token, worker string, in, out any) (int, http.Header, error) {
	var body io.Reader
	var sum string
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, nil, err
		}
		body = bytes.NewReader(b)
		sum = bodySum(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(sumHeader, sum)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if worker != "" {
		req.Header.Set(workerHeader, worker)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
		if err != nil {
			return resp.StatusCode, resp.Header, err
		}
		if want := resp.Header.Get(sumHeader); want != "" && want != bodySum(b) {
			return resp.StatusCode, resp.Header, fmt.Errorf("response body checksum mismatch (damaged in transit)")
		}
		if err := json.Unmarshal(b, out); err != nil {
			return resp.StatusCode, resp.Header, err
		}
	}
	return resp.StatusCode, resp.Header, nil
}
