package grid

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

// RemoteExecutor runs a sweep on a persistent external coordinator
// (cmd/safespec-coordinator, or the in-process `safespec-bench -serve`
// degenerate case). It implements sweep.Executor — sinks, in-order
// delivery and byte-identical output are untouched — plus the
// sweep.Submitter extension: when sweep.Run announces the job matrix, the
// whole sweep is enqueued in one POST /v1/sweeps. When the matrix is not
// announced (e.g. a result cache wraps this executor and only misses reach
// the grid), Execute submits jobs one at a time to a lazily-opened sweep.
//
// Results arrive as a stream of batches: one background goroutine per
// sweep long-polls GET /v1/sweeps/{id}/results?after=N&wait=D, and each
// response carries every result completed since cursor N. Execute calls
// wait on that shared stream instead of polling their own index, so a
// sweep costs O(result batches) HTTP round trips — not O(cells) — however
// wide the matrix. Close releases the sweep's server-side state (and stops
// the stream); an unclosed sweep (crashed client) is abandoned by the
// server after its SweepTTL.
type RemoteExecutor struct {
	// URL is the coordinator base URL ("http://host:port" or, for a TLS
	// coordinator, "https://host:port" — pair it with a Client from
	// NewHTTPClient when the certificate is not signed by a system root).
	URL string
	// Token authenticates every request ("" sends no Authorization header).
	Token string
	// Client is the HTTP client; nil selects one whose timeout comfortably
	// exceeds the long-poll window.
	Client *http.Client
	// PollWait is the long-poll duration requested per result-batch poll
	// (default 25s; the server caps it at one minute).
	PollWait time.Duration
	// Log receives structured progress records (nil discards them).
	Log *slog.Logger

	mu        sync.Mutex
	sweepID   string
	submitted map[int]bool
	waiters   map[int]chan sweep.Result // Execute calls parked on an index
	arrived   map[int]sweep.Result      // streamed results nobody asked for yet
	streamCtx context.CancelFunc        // non-nil while the streamer runs
	streamEnd chan struct{}             // closed when the streamer exits
	streamErr error                     // terminal stream failure, set before streamEnd closes
}

// defaultPollWait balances held-open connections against poll chatter; it
// must stay well under the client timeout below.
const defaultPollWait = 25 * time.Second

func (r *RemoteExecutor) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultRemoteClient
}

var defaultRemoteClient = &http.Client{Timeout: 90 * time.Second}

// NewHTTPClient builds an HTTP client for coordinator URLs. A non-empty
// caFile names a PEM certificate bundle trusted in place of the system
// roots — the self-signed or private-CA fleet deployment (the coordinator's
// own -tls-cert file works directly as the bundle). timeout <= 0 selects
// the long-poll-safe default used by RemoteExecutor.
func NewHTTPClient(caFile string, timeout time.Duration) (*http.Client, error) {
	if timeout <= 0 {
		timeout = defaultRemoteClient.Timeout
	}
	client := &http.Client{Timeout: timeout}
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("tls ca: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("tls ca: no PEM certificates in %s", caFile)
		}
		client.Transport = &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: pool},
			// Mirror the relevant DefaultTransport tuning; long-poll
			// connections are reused heavily.
			MaxIdleConns:        100,
			IdleConnTimeout:     90 * time.Second,
			TLSHandshakeTimeout: 10 * time.Second,
		}
	}
	return client, nil
}

func (r *RemoteExecutor) log() *slog.Logger {
	if r.Log != nil {
		return r.Log
	}
	return slog.New(slog.DiscardHandler)
}

// Submit implements sweep.Submitter: it opens a sweep on the coordinator
// carrying the whole job matrix, so the fleet starts draining it before the
// first Execute call even polls. Transport errors are retried briefly — a
// coordinator mid-restart should not fail the sweep.
func (r *RemoteExecutor) Submit(ctx context.Context, jobs []sweep.Job) error {
	resp, err := r.openSweep(ctx, jobs)
	if err != nil {
		return fmt.Errorf("grid: submit sweep to %s: %w", r.URL, err)
	}
	r.mu.Lock()
	r.sweepID = resp.SweepID
	r.submitted = make(map[int]bool, len(jobs))
	for i := range jobs {
		r.submitted[i] = true
	}
	r.mu.Unlock()
	r.log().Info("sweep submitted", "sweep", resp.SweepID, "coordinator", r.URL, "jobs", len(jobs))
	return nil
}

// openSweep POSTs a sweep-creation request carrying jobs (nil opens an
// empty sweep for incremental submission). The nonce makes the retried
// POST idempotent: if an attempt landed but its response was lost, the
// coordinator hands back the existing sweep instead of double-running it.
func (r *RemoteExecutor) openSweep(ctx context.Context, jobs []sweep.Job) (SubmitResponse, error) {
	req := SubmitRequest{Jobs: jobs, Nonce: newNonce()}
	var resp SubmitResponse
	status, err := r.retry(ctx, func() (int, error) {
		return doJSON(ctx, r.client(), http.MethodPost, r.URL+"/v1/sweeps", r.Token,
			req, &resp)
	})
	if err == nil && status != http.StatusOK {
		err = statusErr(status)
	}
	return resp, err
}

// Execute submits the job if the matrix announcement did not already cover
// it, then waits for the shared result stream to deliver its index.
func (r *RemoteExecutor) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	res, _, err := r.ExecuteTimed(ctx, index, j)
	return res, err
}

// ExecuteTimed is Execute returning the streamed result's span breakdown
// (stamped by the coordinator and the reporting worker; nil when either
// predates timing), so sweep.Run records Timing for remote sweeps.
func (r *RemoteExecutor) ExecuteTimed(ctx context.Context, index int, j sweep.Job) (*core.Results, *sweep.Timing, error) {
	id, err := r.ensure(ctx, index, j)
	if err != nil {
		return nil, nil, err
	}

	r.mu.Lock()
	if res, ok := r.arrived[index]; ok {
		delete(r.arrived, index)
		r.mu.Unlock()
		return res.Res, res.Timing, res.Err
	}
	ch := make(chan sweep.Result, 1)
	if r.waiters == nil {
		r.waiters = make(map[int]chan sweep.Result)
	}
	r.waiters[index] = ch
	r.startStreamLocked(id)
	end := r.streamEnd
	r.mu.Unlock()

	select {
	case res := <-ch:
		return res.Res, res.Timing, res.Err
	case <-end:
		r.mu.Lock()
		err := r.streamErr
		delete(r.waiters, index)
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("grid: sweep %s job %d: %w", id, index, err)
	case <-ctx.Done():
		r.mu.Lock()
		delete(r.waiters, index)
		r.mu.Unlock()
		// A delivery may have raced the cancellation; prefer it.
		select {
		case res := <-ch:
			return res.Res, res.Timing, res.Err
		default:
			return nil, nil, ctx.Err()
		}
	}
}

// startStreamLocked launches the batch-streaming goroutine for the sweep if
// it is not already running. Caller holds r.mu. The stream's lifetime is
// the executor's, not any one Execute call's: it is stopped by Close (or by
// a terminal coordinator answer such as 404 after a restart).
func (r *RemoteExecutor) startStreamLocked(id string) {
	if r.streamCtx != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.streamCtx = cancel
	r.streamEnd = make(chan struct{})
	r.streamErr = nil
	go r.stream(ctx, id, r.streamEnd)
}

// stream long-polls the sweep's result batches and dispatches each result
// to the Execute call waiting on its index (or parks it for an Execute yet
// to ask). It exits on Close's cancellation or a terminal coordinator
// answer; transport faults, 5xx and 429 are ridden out by retry.
func (r *RemoteExecutor) stream(ctx context.Context, id string, end chan struct{}) {
	defer close(end)
	wait := r.PollWait
	if wait <= 0 {
		wait = defaultPollWait
	}
	after := 0
	for {
		url := fmt.Sprintf("%s/v1/sweeps/%s/results?after=%d&wait=%s", r.URL, id, after, wait)
		var batch ResultBatch
		status, err := r.retry(ctx, func() (int, error) {
			return doJSON(ctx, r.client(), http.MethodGet, url, r.Token, nil, &batch)
		})
		switch {
		case ctx.Err() != nil:
			r.setStreamErr(fmt.Errorf("stream stopped: %w", ctx.Err()))
			return
		case err != nil:
			r.setStreamErr(fmt.Errorf("grid: stream %s: %w", id, err))
			return
		case status == http.StatusOK:
			for _, res := range batch.Results {
				r.dispatch(res)
			}
			after = batch.Next
		case status == http.StatusNotFound:
			// A restarted coordinator assigns fresh random sweep ids, so a
			// surviving client can only ever see its sweep vanish — never
			// adopt another client's results.
			r.setStreamErr(fmt.Errorf("grid: sweep %s expired on coordinator %s (restart, or client idle past the sweep TTL?)", id, r.URL))
			return
		default:
			r.setStreamErr(fmt.Errorf("grid: stream %s: %w", id, statusErr(status)))
			return
		}
	}
}

func (r *RemoteExecutor) setStreamErr(err error) {
	r.mu.Lock()
	r.streamErr = err
	r.mu.Unlock()
}

// dispatch hands one streamed result to the Execute call parked on its
// index, or stores it until that call arrives (batches deliver results in
// completion order, which need not match the order Execute calls ask).
func (r *RemoteExecutor) dispatch(res sweep.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch, ok := r.waiters[res.Index]; ok {
		delete(r.waiters, res.Index)
		ch <- res
		return
	}
	if r.arrived == nil {
		r.arrived = make(map[int]sweep.Result)
	}
	r.arrived[res.Index] = res
}

// ensure opens the sweep on first use and submits this job if the matrix
// announcement did not already carry it. Only sweep creation runs under the
// mutex (one request per sweep); per-job submissions claim their index
// first and post outside the lock, so concurrent cache misses submit in
// parallel instead of serializing behind one another's round trips.
func (r *RemoteExecutor) ensure(ctx context.Context, index int, j sweep.Job) (string, error) {
	r.mu.Lock()
	if r.sweepID == "" {
		resp, err := r.openSweep(ctx, nil)
		if err != nil {
			r.mu.Unlock()
			return "", fmt.Errorf("grid: open sweep on %s: %w", r.URL, err)
		}
		r.sweepID = resp.SweepID
		r.submitted = make(map[int]bool)
		r.log().Info("sweep opened for incremental submission", "sweep", resp.SweepID, "coordinator", r.URL)
	}
	id := r.sweepID
	claimed := r.submitted[index]
	if !claimed {
		// Claim before posting: a concurrent Execute for the same index (not
		// that Run produces one) would double-post, which the server treats
		// as a no-op anyway.
		r.submitted[index] = true
	}
	r.mu.Unlock()
	if !claimed {
		status, err := r.retry(ctx, func() (int, error) {
			return doJSON(ctx, r.client(), http.MethodPost,
				fmt.Sprintf("%s/v1/sweeps/%s/jobs", r.URL, id), r.Token,
				JobRequest{Index: index, Job: j}, nil)
		})
		if err == nil && status != http.StatusOK {
			err = statusErr(status)
		}
		if err != nil {
			return "", fmt.Errorf("grid: submit job %d to sweep %s: %w", index, id, err)
		}
	}
	return id, nil
}

// Close stops the result stream and releases the sweep's state on the
// coordinator (idempotent; a sweep the server already dropped counts as
// released). The executor can be reused afterwards: the next Submit or
// Execute opens a fresh sweep with a fresh stream.
func (r *RemoteExecutor) Close() error {
	r.mu.Lock()
	id := r.sweepID
	cancel, end := r.streamCtx, r.streamEnd
	r.sweepID, r.submitted = "", nil
	r.waiters, r.arrived = nil, nil
	r.streamCtx, r.streamEnd = nil, nil
	r.mu.Unlock()
	if cancel != nil {
		cancel()
		<-end
	}
	if id == "" {
		return nil
	}
	ctx, cancelReq := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelReq()
	status, err := doJSON(ctx, r.client(), http.MethodDelete, r.URL+"/v1/sweeps/"+id, r.Token, nil, nil)
	if err != nil {
		return fmt.Errorf("grid: close sweep %s: %w", id, err)
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("grid: close sweep %s: unexpected status %d", id, status)
	}
	return nil
}

// Stats fetches the coordinator's accounting snapshot.
func (r *RemoteExecutor) Stats(ctx context.Context) (ServerSnapshot, error) {
	var snap ServerSnapshot
	status, err := doJSON(ctx, r.client(), http.MethodGet, r.URL+"/v1/stats", r.Token, nil, &snap)
	if err != nil {
		return snap, err
	}
	if status != http.StatusOK {
		return snap, fmt.Errorf("grid: stats: unexpected status %d", status)
	}
	return snap, nil
}

// retry runs fn until it returns a status that is neither 5xx nor 429
// without a transport error, backing off between attempts, and hands the
// final status to the caller to interpret. Transport faults and 5xx are
// retried alike (both are the shape of a coordinator or fronting proxy
// mid-restart); 429 is the coordinator's rate limiter asking exactly for
// this backoff, so treating it as terminal would fail a sweep the tenant
// was merely pacing.
func (r *RemoteExecutor) retry(ctx context.Context, fn func() (int, error)) (int, error) {
	backoff := 250 * time.Millisecond
	var status int
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			if !sleep(ctx, backoff) {
				return 0, ctx.Err()
			}
			backoff = min(2*backoff, 5*time.Second)
		}
		status, err = fn()
		if err == nil && status < 500 && status != http.StatusTooManyRequests {
			return status, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		switch {
		case err != nil:
			r.log().Warn("coordinator unreachable, backing off", "coordinator", r.URL, "err", err.Error(), "pause", backoff.String())
		case status == http.StatusTooManyRequests:
			r.log().Info("coordinator rate limit, backing off", "coordinator", r.URL, "pause", backoff.String())
		default:
			r.log().Warn("coordinator error, backing off", "coordinator", r.URL, "status", status, "pause", backoff.String())
		}
	}
	if err == nil {
		err = statusErr(status)
	}
	return status, err
}

// statusErr renders a terminal HTTP status as an error, spelling out the
// misconfigurations users actually hit.
func statusErr(status int) error {
	switch status {
	case http.StatusUnauthorized:
		return errUnauthorized
	case http.StatusForbidden:
		return fmt.Errorf("coordinator refused (status 403): tenant sweep quota exceeded; close an open sweep or raise max_sweeps in the token file")
	case http.StatusTooManyRequests:
		return fmt.Errorf("coordinator rate limit (status 429) persisted through retries; raise rate_per_sec in the token file or slow the client")
	}
	return fmt.Errorf("unexpected status %d", status)
}

// newNonce returns a random submission id for sweep-creation idempotency.
func newNonce() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// doJSON sends one JSON request with optional bearer auth and decodes a
// 200 response body into out (when non-nil). The returned error covers
// transport and decoding failures only; HTTP statuses are the caller's to
// interpret.
func doJSON(ctx context.Context, client *http.Client, method, url, token string, in, out any) (int, error) {
	status, _, err := doJSONHdr(ctx, client, method, url, token, in, out)
	return status, err
}

// doJSONHdr is doJSON also returning the response headers (nil on
// transport failure), for callers that interpret advisory headers such as
// a 429's Retry-After.
func doJSONHdr(ctx context.Context, client *http.Client, method, url, token string, in, out any) (int, http.Header, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(out); err != nil {
			return resp.StatusCode, resp.Header, err
		}
	}
	return resp.StatusCode, resp.Header, nil
}
