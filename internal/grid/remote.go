package grid

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

// RemoteExecutor runs a sweep on a persistent external coordinator
// (cmd/safespec-coordinator, or the in-process `safespec-bench -serve`
// degenerate case). It implements sweep.Executor — sinks, in-order
// delivery and byte-identical output are untouched — plus the
// sweep.Submitter extension: when sweep.Run announces the job matrix, the
// whole sweep is enqueued in one POST /v1/sweeps. When the matrix is not
// announced (e.g. a result cache wraps this executor and only misses reach
// the grid), Execute submits jobs one at a time to a lazily-opened sweep.
//
// Each Execute call long-polls GET /v1/sweeps/{id}?index=N&wait=D for its
// job's result; the number of concurrent Execute calls (sweep's Workers
// option) is therefore the queue depth offered to the fleet. Close releases
// the sweep's server-side state; an unclosed sweep (crashed client) is
// abandoned by the server after its SweepTTL.
type RemoteExecutor struct {
	// URL is the coordinator base URL ("http://host:port").
	URL string
	// Token authenticates every request ("" sends no Authorization header).
	Token string
	// Client is the HTTP client; nil selects one whose timeout comfortably
	// exceeds the long-poll window.
	Client *http.Client
	// PollWait is the long-poll duration requested per result poll
	// (default 25s; the server caps it at one minute).
	PollWait time.Duration
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)

	mu        sync.Mutex
	sweepID   string
	submitted map[int]bool
}

// defaultPollWait balances held-open connections against poll chatter; it
// must stay well under the client timeout below.
const defaultPollWait = 25 * time.Second

func (r *RemoteExecutor) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultRemoteClient
}

var defaultRemoteClient = &http.Client{Timeout: 90 * time.Second}

func (r *RemoteExecutor) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Submit implements sweep.Submitter: it opens a sweep on the coordinator
// carrying the whole job matrix, so the fleet starts draining it before the
// first Execute call even polls. Transport errors are retried briefly — a
// coordinator mid-restart should not fail the sweep.
func (r *RemoteExecutor) Submit(ctx context.Context, jobs []sweep.Job) error {
	resp, err := r.openSweep(ctx, jobs)
	if err != nil {
		return fmt.Errorf("grid: submit sweep to %s: %w", r.URL, err)
	}
	r.mu.Lock()
	r.sweepID = resp.SweepID
	r.submitted = make(map[int]bool, len(jobs))
	for i := range jobs {
		r.submitted[i] = true
	}
	r.mu.Unlock()
	r.logf("grid: sweep %s submitted to %s (%d jobs)", resp.SweepID, r.URL, len(jobs))
	return nil
}

// openSweep POSTs a sweep-creation request carrying jobs (nil opens an
// empty sweep for incremental submission). The nonce makes the retried
// POST idempotent: if an attempt landed but its response was lost, the
// coordinator hands back the existing sweep instead of double-running it.
func (r *RemoteExecutor) openSweep(ctx context.Context, jobs []sweep.Job) (SubmitResponse, error) {
	req := SubmitRequest{Jobs: jobs, Nonce: newNonce()}
	var resp SubmitResponse
	status, err := r.retry(ctx, func() (int, error) {
		return doJSON(ctx, r.client(), http.MethodPost, r.URL+"/v1/sweeps", r.Token,
			req, &resp)
	})
	if err == nil && status != http.StatusOK {
		err = statusErr(status)
	}
	return resp, err
}

// Execute submits the job if the matrix announcement did not already cover
// it, then long-polls the coordinator for the job's result.
func (r *RemoteExecutor) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	id, err := r.ensure(ctx, index, j)
	if err != nil {
		return nil, err
	}
	wait := r.PollWait
	if wait <= 0 {
		wait = defaultPollWait
	}
	url := fmt.Sprintf("%s/v1/sweeps/%s?index=%d&wait=%s", r.URL, id, index, wait)
	var res sweep.Result
	for {
		status, err := r.retry(ctx, func() (int, error) {
			return doJSON(ctx, r.client(), http.MethodGet, url, r.Token, nil, &res)
		})
		switch {
		case err != nil:
			return nil, fmt.Errorf("grid: poll %s job %d: %w", id, index, err)
		case status == http.StatusOK:
			if res.Index != index {
				// Belt and suspenders against ever adopting a foreign job's
				// result (e.g. a proxy replaying a stale response).
				return nil, fmt.Errorf("grid: poll %s job %d: coordinator answered for job %d", id, index, res.Index)
			}
			return res.Res, res.Err
		case status == http.StatusNoContent:
			continue // not finished yet; poll again
		case status == http.StatusNotFound:
			return nil, fmt.Errorf("grid: sweep %s expired on coordinator %s (client idle past the sweep TTL?)", id, r.URL)
		default:
			return nil, fmt.Errorf("grid: poll %s job %d: %w", id, index, statusErr(status))
		}
	}
}

// ensure opens the sweep on first use and submits this job if the matrix
// announcement did not already carry it. Only sweep creation runs under the
// mutex (one request per sweep); per-job submissions claim their index
// first and post outside the lock, so concurrent cache misses submit in
// parallel instead of serializing behind one another's round trips.
func (r *RemoteExecutor) ensure(ctx context.Context, index int, j sweep.Job) (string, error) {
	r.mu.Lock()
	if r.sweepID == "" {
		resp, err := r.openSweep(ctx, nil)
		if err != nil {
			r.mu.Unlock()
			return "", fmt.Errorf("grid: open sweep on %s: %w", r.URL, err)
		}
		r.sweepID = resp.SweepID
		r.submitted = make(map[int]bool)
		r.logf("grid: sweep %s opened on %s (incremental submission)", resp.SweepID, r.URL)
	}
	id := r.sweepID
	claimed := r.submitted[index]
	if !claimed {
		// Claim before posting: a concurrent Execute for the same index (not
		// that Run produces one) would double-post, which the server treats
		// as a no-op anyway.
		r.submitted[index] = true
	}
	r.mu.Unlock()
	if !claimed {
		status, err := r.retry(ctx, func() (int, error) {
			return doJSON(ctx, r.client(), http.MethodPost,
				fmt.Sprintf("%s/v1/sweeps/%s/jobs", r.URL, id), r.Token,
				JobRequest{Index: index, Job: j}, nil)
		})
		if err == nil && status != http.StatusOK {
			err = statusErr(status)
		}
		if err != nil {
			return "", fmt.Errorf("grid: submit job %d to sweep %s: %w", index, id, err)
		}
	}
	return id, nil
}

// Close releases the sweep's state on the coordinator (idempotent; a sweep
// the server already dropped counts as released). The executor can be
// reused afterwards: the next Submit or Execute opens a fresh sweep.
func (r *RemoteExecutor) Close() error {
	r.mu.Lock()
	id := r.sweepID
	r.sweepID, r.submitted = "", nil
	r.mu.Unlock()
	if id == "" {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	status, err := doJSON(ctx, r.client(), http.MethodDelete, r.URL+"/v1/sweeps/"+id, r.Token, nil, nil)
	if err != nil {
		return fmt.Errorf("grid: close sweep %s: %w", id, err)
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("grid: close sweep %s: unexpected status %d", id, status)
	}
	return nil
}

// Stats fetches the coordinator's accounting snapshot.
func (r *RemoteExecutor) Stats(ctx context.Context) (ServerSnapshot, error) {
	var snap ServerSnapshot
	status, err := doJSON(ctx, r.client(), http.MethodGet, r.URL+"/v1/stats", r.Token, nil, &snap)
	if err != nil {
		return snap, err
	}
	if status != http.StatusOK {
		return snap, fmt.Errorf("grid: stats: unexpected status %d", status)
	}
	return snap, nil
}

// retry runs fn until it returns a non-5xx status without a transport
// error, backing off between attempts, and hands the final status to the
// caller to interpret. Transport faults and 5xx are retried alike: both
// are the shape of a coordinator (or fronting proxy) mid-restart, which
// should not fail the sweep.
func (r *RemoteExecutor) retry(ctx context.Context, fn func() (int, error)) (int, error) {
	backoff := 250 * time.Millisecond
	var status int
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			if !sleep(ctx, backoff) {
				return 0, ctx.Err()
			}
			backoff = min(2*backoff, 5*time.Second)
		}
		status, err = fn()
		if err == nil && status < 500 {
			return status, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if err != nil {
			r.logf("grid: %s unreachable (%v); backing off %v", r.URL, err, backoff)
		} else {
			r.logf("grid: %s returned %d; backing off %v", r.URL, status, backoff)
		}
	}
	if err == nil {
		err = statusErr(status)
	}
	return status, err
}

// statusErr renders a terminal HTTP status as an error, spelling out the
// one misconfiguration users actually hit (a bad token).
func statusErr(status int) error {
	if status == http.StatusUnauthorized {
		return errUnauthorized
	}
	return fmt.Errorf("unexpected status %d", status)
}

// newNonce returns a random submission id for sweep-creation idempotency.
func newNonce() string {
	var b [16]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// doJSON sends one JSON request with optional bearer auth and decodes a
// 200 response body into out (when non-nil). The returned error covers
// transport and decoding failures only; HTTP statuses are the caller's to
// interpret.
func doJSON(ctx context.Context, client *http.Client, method, url, token string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
