package grid

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tenant is one named client of a multi-tenant coordinator: a bearer token
// plus the limits the coordinator enforces for it. Tenants come from a
// token file (safespec-coordinator -token-file) or, for the single-tenant
// shorthand, from the legacy -token flag.
type Tenant struct {
	// Name labels the tenant in logs, stats and metrics (never the token).
	Name string `json:"name"`
	// Token is the bearer secret presented as "Authorization: Bearer ...".
	Token string `json:"token"`
	// MaxSweeps bounds the tenant's concurrently open sweeps; a submission
	// over the quota is rejected with 403 until one closes (0 = unlimited).
	MaxSweeps int `json:"max_sweeps,omitempty"`
	// RatePerSec is the tenant's sustained request budget across every
	// /v1/* endpoint; requests beyond it get 429 with a Retry-After
	// (0 = unlimited). Size worker-fleet tenants generously: each worker
	// issues roughly one lease poll per idle Poll interval per loop.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token-bucket depth for RatePerSec (default: twice the
	// rate, at least 10), absorbing the lease bursts of a draining fleet.
	Burst int `json:"burst,omitempty"`
}

// tokenFile is the on-disk -token-file format: {"tenants": [...]}.
type tokenFile struct {
	Tenants []Tenant `json:"tenants"`
}

// LoadTenants reads a token file: a JSON object whose "tenants" array maps
// per-client tokens to named tenants and their limits. Names and tokens
// must be unique and non-empty (a duplicate token would make the match
// ambiguous; a duplicate name would merge two clients' quotas).
func LoadTenants(path string) ([]Tenant, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("token file: %w", err)
	}
	var tf tokenFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return nil, fmt.Errorf("token file %s: %w", path, err)
	}
	if len(tf.Tenants) == 0 {
		return nil, fmt.Errorf("token file %s: no tenants (want {\"tenants\": [{\"name\": ..., \"token\": ...}, ...]})", path)
	}
	names := make(map[string]bool, len(tf.Tenants))
	tokens := make(map[string]bool, len(tf.Tenants))
	for i, tn := range tf.Tenants {
		if tn.Name == "" {
			return nil, fmt.Errorf("token file %s: tenant %d has no name", path, i)
		}
		if tn.Token == "" {
			return nil, fmt.Errorf("token file %s: tenant %q has no token", path, tn.Name)
		}
		if names[tn.Name] {
			return nil, fmt.Errorf("token file %s: duplicate tenant name %q", path, tn.Name)
		}
		if tokens[tn.Token] {
			return nil, fmt.Errorf("token file %s: tenant %q reuses another tenant's token", path, tn.Name)
		}
		if tn.MaxSweeps < 0 || tn.RatePerSec < 0 || tn.Burst < 0 {
			return nil, fmt.Errorf("token file %s: tenant %q has a negative limit", path, tn.Name)
		}
		names[tn.Name], tokens[tn.Token] = true, true
	}
	return tf.Tenants, nil
}

// tenantState is one tenant's live accounting on the server.
type tenantState struct {
	Tenant
	tokenHash [sha256.Size]byte // compared in constant time, never the token
	limiter   *bucket           // nil = unlimited

	// activeSweeps counts the tenant's open sweeps; guarded by Server.mu
	// (sweep creation and release already serialize there).
	activeSweeps int

	requests      atomic.Uint64
	rateLimited   atomic.Uint64
	quotaRejected atomic.Uint64
}

// authenticator resolves bearer tokens to tenants in constant time: every
// lookup hashes the presented token and compares the digest against every
// tenant's digest, visiting all of them regardless of where (or whether) a
// match occurs, so response timing reveals neither token prefixes nor which
// tenant matched.
type authenticator struct {
	tenants []*tenantState
	// anonymous is the no-auth tenant used when no tokens are configured
	// (loopback development); nil when auth is enforced.
	anonymous *tenantState
}

func newAuthenticator(tenants []Tenant, now func() time.Time) *authenticator {
	a := &authenticator{}
	if len(tenants) == 0 {
		a.anonymous = &tenantState{Tenant: Tenant{Name: "anonymous"}}
		return a
	}
	for _, tn := range tenants {
		ts := &tenantState{Tenant: tn, tokenHash: sha256.Sum256([]byte(tn.Token))}
		if tn.RatePerSec > 0 {
			burst := float64(tn.Burst)
			if burst <= 0 {
				burst = max(2*tn.RatePerSec, 10)
			}
			ts.limiter = &bucket{rate: tn.RatePerSec, burst: burst, tokens: burst, now: now}
		}
		a.tenants = append(a.tenants, ts)
	}
	return a
}

// resolve maps an Authorization header value to its tenant (nil when the
// token matches no tenant). With no tenants configured every request
// resolves to the anonymous tenant.
func (a *authenticator) resolve(authorization string) *tenantState {
	if a.anonymous != nil {
		return a.anonymous
	}
	const prefix = "Bearer "
	if len(authorization) < len(prefix) || authorization[:len(prefix)] != prefix {
		return nil
	}
	got := sha256.Sum256([]byte(authorization[len(prefix):]))
	var match *tenantState
	for _, ts := range a.tenants {
		// No early exit: every tenant is compared on every request.
		if subtle.ConstantTimeCompare(got[:], ts.tokenHash[:]) == 1 {
			match = ts
		}
	}
	return match
}

// byName resolves a tenant by its journaled name during state recovery
// (tokens are never written to disk, so name is the durable identity).
// nil when the name no longer exists in the token configuration.
func (a *authenticator) byName(name string) *tenantState {
	if a.anonymous != nil {
		if name == a.anonymous.Name {
			return a.anonymous
		}
		return nil
	}
	for _, ts := range a.tenants {
		if ts.Name == name {
			return ts
		}
	}
	return nil
}

// bucket is a token-bucket rate limiter (one per rate-limited tenant). It
// is hand-rolled because the repo deliberately has no dependencies outside
// the standard library.
type bucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket depth

	mu     sync.Mutex
	tokens float64
	last   time.Time
	now    func() time.Time
}

// allow consumes one token. When the bucket is empty it reports false
// plus how long until refill yields the next whole token — the basis for
// the 429 response's Retry-After header, so a well-behaved client backs
// off exactly as long as the deficit demands instead of guessing.
func (b *bucket) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens = min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// tenantKey carries the resolved tenant through the request context.
type tenantKey struct{}

// requestTenant returns the tenant the auth middleware resolved for this
// request (nil only for handlers mounted outside authTenants).
func requestTenant(req *http.Request) *tenantState {
	ts, _ := req.Context().Value(tenantKey{}).(*tenantState)
	return ts
}

// authTenants guards next with per-tenant bearer auth: an unknown token is
// 401, a request over the tenant's rate limit is 429 with a Retry-After
// hint, and the resolved tenant rides the request context so handlers can
// enforce sweep ownership and quotas.
func (s *Server) authTenants(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ts := s.auth.resolve(req.Header.Get("Authorization"))
		if ts == nil {
			s.authFailures.Add(1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="safespec-grid"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		ts.requests.Add(1)
		if ts.limiter != nil {
			if ok, wait := ts.limiter.allow(); !ok {
				ts.rateLimited.Add(1)
				// Retry-After carries whole delay-seconds; round the bucket's
				// deficit up so a compliant client never retries early.
				secs := int64((wait + time.Second - 1) / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				http.Error(w, fmt.Sprintf("tenant %q over its request rate (%.3g/s)", ts.Name, ts.RatePerSec),
					http.StatusTooManyRequests)
				return
			}
		}
		next.ServeHTTP(w, req.WithContext(context.WithValue(req.Context(), tenantKey{}, ts)))
	})
}
