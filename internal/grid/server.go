package grid

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safespec/internal/obs"
	"safespec/internal/sweep"
)

// Server is a persistent grid coordinator: it owns a Coordinator for the
// worker fleet and adds a sweep-submission API, so many sequential (or
// concurrent) sweeps can share one long-lived worker fleet across
// safespec-bench restarts. Every /v1/* endpoint — worker- and
// client-facing alike — is guarded by per-tenant bearer auth: each token
// resolves (in constant time) to a named tenant carrying a concurrent-sweep
// quota and a request rate limit. On the wire the three rejections are
// distinct: 401 (unknown token), 429 (over the tenant's request rate;
// retry after backoff) and 403 (over the tenant's sweep quota; release a
// sweep first).
//
// A sweep is created by POST /v1/sweeps (optionally carrying the whole job
// matrix), grown by POST /v1/sweeps/{id}/jobs, and released by DELETE.
// Results are delivered as batches: GET /v1/sweeps/{id}/results?after=N
// long-polls the completion log and returns every result that finished
// since cursor N, so a client needs one in-flight request per sweep, not
// one per cell. (The older per-index poll, GET /v1/sweeps/{id}?index=N,
// remains for spot checks.) A sweep belongs to the tenant that submitted
// it; other tenants' requests for its id get 404, indistinguishable from a
// sweep that never existed. A sweep whose client stops polling (a crashed
// bench process) is abandoned after SweepTTL: its unfinished jobs are
// withdrawn from the queue and all of its state — including the
// coordinator's expired-lease entries — is freed, so the server holds
// steady memory over days of operation.
type Server struct {
	opts  ServerOptions
	coord *Coordinator
	auth  *authenticator
	// reg renders /metrics: registry-owned histograms observe live job
	// timing, while the counter/gauge families mirror Stats() at scrape
	// time through an OnCollect hook.
	reg *obs.Registry

	// store, when non-nil, journals every sweep mutation so a restart
	// resumes where this process left off. Set once by OpenState before
	// Handler serves; handlers read it without s.mu.
	store *stateStore
	// draining flips on Drain(): leases stop, long-polls return
	// immediately, and drainCh wakes parked result polls.
	draining atomic.Bool
	drainCh  chan struct{}

	authFailures    atomic.Uint64
	resultsStreamed atomic.Uint64

	mu        sync.Mutex
	sweeps    map[string]*sweepState
	byNonce   map[string]string // submission nonce -> sweep id, for retried POSTs
	lastGC    time.Time
	submitted uint64
	abandoned uint64
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Token is the single-tenant shorthand: it behaves exactly like a
	// Tenants list holding one unlimited tenant named "default". Ignored
	// when Tenants is non-empty; "" with no Tenants disables auth —
	// loopback development only.
	Token string
	// Tenants maps per-client tokens to named tenants with quotas and rate
	// limits (see Tenant and LoadTenants).
	Tenants []Tenant
	// Lease configures the embedded Coordinator (TTL, attempt bound).
	Lease Options
	// SweepTTL abandons a sweep whose client has neither submitted jobs nor
	// polled results for this long (default 10 minutes). Live clients
	// long-poll far more often than that.
	SweepTTL time.Duration
	// Log receives the server's structured progress records (nil discards
	// them).
	Log *slog.Logger
	// now is a test seam for the sweep liveness and rate-limit clock.
	now func() time.Time
}

// ServerSnapshot extends the coordinator accounting with sweep-level state.
type ServerSnapshot struct {
	Snapshot
	// Sweeps counts sweeps currently held in memory.
	Sweeps int `json:"sweeps"`
	// SweepsSubmitted and SweepsAbandoned count lifetime submissions and
	// TTL-expired abandonments.
	SweepsSubmitted uint64 `json:"sweeps_submitted"`
	SweepsAbandoned uint64 `json:"sweeps_abandoned"`
	// AuthFailures counts requests rejected with 401.
	AuthFailures uint64 `json:"auth_failures"`
	// ResultsStreamed counts results delivered through batch responses.
	ResultsStreamed uint64 `json:"results_streamed"`
	// Tenants is the per-tenant accounting, sorted by name (omitted when
	// auth is disabled).
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
}

// TenantSnapshot is one tenant's accounting within a ServerSnapshot.
type TenantSnapshot struct {
	Name          string `json:"name"`
	ActiveSweeps  int    `json:"active_sweeps"`
	Requests      uint64 `json:"requests"`
	RateLimited   uint64 `json:"rate_limited"`
	QuotaRejected uint64 `json:"quota_rejected"`
}

// SubmitRequest opens a sweep, optionally enqueueing its whole job matrix
// (element position = job index). An empty Jobs slice opens a sweep for
// incremental submission via POST /v1/sweeps/{id}/jobs — the path taken
// when a client-side result cache filters the matrix down to its misses.
type SubmitRequest struct {
	Jobs []sweep.Job `json:"jobs,omitempty"`
	// Nonce deduplicates retried submissions: POST /v1/sweeps is otherwise
	// not idempotent, and a client whose 200 was lost in transit would
	// open a duplicate sweep whose jobs the fleet executes for nothing. A
	// coordinator that already holds a sweep for this nonce returns it
	// instead of creating another.
	Nonce string `json:"nonce,omitempty"`
}

// SubmitResponse identifies the created sweep.
type SubmitResponse struct {
	SweepID string `json:"sweep_id"`
	Jobs    int    `json:"jobs"`
}

// JobRequest adds one job to an open sweep. Resubmitting an index is a
// no-op (the simulation is deterministic, so a retried submission carries
// the same job).
type JobRequest struct {
	Index int       `json:"index"`
	Job   sweep.Job `json:"job"`
}

// SweepStatus is the index-less GET /v1/sweeps/{id} response.
type SweepStatus struct {
	SweepID   string `json:"sweep_id"`
	Submitted int    `json:"submitted"`
	Completed int    `json:"completed"`
	// Done reports all submitted jobs completed; with incremental
	// submission it can flicker true between batches, so it is meaningful
	// only once the client has submitted its whole matrix.
	Done bool `json:"done"`
}

// ResultBatch is the GET /v1/sweeps/{id}/results response: every result
// whose completion-log position is >= the request's `after` cursor, in
// completion order (NOT job-index order — the client reorders). Next is
// the cursor to pass on the following poll; an empty Results with
// Next == after means the long-poll window elapsed with nothing new.
type ResultBatch struct {
	SweepID string         `json:"sweep_id"`
	Next    int            `json:"next"`
	Results []sweep.Result `json:"results"`
	// Submitted/Completed/Done mirror SweepStatus at response time.
	Submitted int  `json:"submitted"`
	Completed int  `json:"completed"`
	Done      bool `json:"done"`
}

// sweepState tracks one submitted sweep. Its mutex is ordered before the
// coordinator's: handlers take sweepState.mu then enqueue/abandon (which
// take Coordinator.mu), while result delivery takes sweepState.mu only
// after Coordinator.mu has been released.
type sweepState struct {
	id     string
	nonce  string       // submission nonce, purged from Server.byNonce with the sweep
	tenant *tenantState // owner; foreign tenants get 404 for this id

	mu        sync.Mutex
	slots     map[int]*slot
	log       []sweep.Result // completed results in completion order
	logGrew   chan struct{}  // closed and replaced on every log append
	completed int
	spans     sweep.Timing // summed Timing across the timed results
	timed     int          // results that carried a Timing
	created   time.Time
	lastSeen  time.Time
	closed    bool
}

// slot is one job of a sweep: its queued task while live, its result once
// delivered (ready is closed at that point). job is retained for the
// status page after the task is gone.
type slot struct {
	job   sweep.Job
	task  *task
	res   *sweep.Result
	ready chan struct{}
}

// maxPollWait caps the long-poll duration a client may request.
const maxPollWait = time.Minute

// NewServer builds a persistent coordinator server with defaults applied.
func NewServer(opts ServerOptions) *Server {
	if opts.SweepTTL <= 0 {
		opts.SweepTTL = 10 * time.Minute
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.DiscardHandler)
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	tenants := opts.Tenants
	if len(tenants) == 0 && opts.Token != "" {
		// The single -token shorthand: one unlimited tenant.
		tenants = []Tenant{{Name: "default", Token: opts.Token}}
	}
	s := &Server{
		opts:    opts,
		coord:   NewCoordinator(opts.Lease),
		auth:    newAuthenticator(tenants, opts.now),
		sweeps:  make(map[string]*sweepState),
		byNonce: make(map[string]string),
		drainCh: make(chan struct{}),
	}
	s.reg = s.newRegistry()
	// Journal every accepted incident so a poison job's quarantine history
	// survives a restart (hook runs under Coordinator.mu; the store's mutex
	// is the innermost lock, so the append is safe there).
	s.coord.onIncident = func(sweepID string, index int, inc taskIncident) {
		s.journal(journalRecord{Op: opIncident, Sweep: sweepID, Index: index,
			Worker: inc.Worker, Kind: inc.Kind, Message: inc.Message})
	}
	return s
}

// OpenState attaches a durable state directory (safespec-coordinator
// -state-dir): sweeps journaled by a previous process are recovered —
// completed results serve existing cursors, jobs whose leases died with
// that process re-enter the queue — and every future sweep mutation is
// journaled. Call it before Handler starts serving.
func (s *Server) OpenState(dir string) error {
	store, recovered, torn, err := openState(dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.store = store
	var sweeps, results, requeued, dropped int
	for _, rs := range recovered {
		tenant := s.auth.byName(rs.Tenant)
		if tenant == nil {
			// The token file changed across the restart and the owner is
			// gone. Every lookup is tenant-scoped, so an ownerless sweep
			// would be unreachable forever; drop it instead of leaking it.
			s.journal(journalRecord{Op: opClose, Sweep: rs.ID})
			dropped++
			continue
		}
		requeued += s.adoptLocked(rs, tenant)
		sweeps++
		results += len(rs.Log)
	}
	s.mu.Unlock()
	s.opts.Log.Info("state recovered", "dir", dir, "sweeps", sweeps,
		"results", results, "jobs_requeued", requeued,
		"sweeps_dropped", dropped, "torn_bytes", torn)
	return nil
}

// adoptLocked rebuilds one recovered sweep's live state: logged results
// become completed slots (their ready channels already closed, the
// completion log in its original order so client cursors keep indexing
// correctly), and jobs without a result re-enter the coordinator queue —
// their leases died with the previous process. Caller holds s.mu; returns
// the number of requeued jobs.
func (s *Server) adoptLocked(rs recoveredSweep, tenant *tenantState) int {
	now := s.opts.now()
	st := &sweepState{
		id:       rs.ID,
		nonce:    rs.Nonce,
		tenant:   tenant,
		slots:    make(map[int]*slot, len(rs.Jobs)),
		logGrew:  make(chan struct{}),
		created:  now,
		lastSeen: now,
	}
	st.mu.Lock()
	for i := range rs.Log {
		res := rs.Log[i]
		sl := &slot{job: res.Job, res: &res, ready: make(chan struct{})}
		close(sl.ready)
		st.slots[res.Index] = sl
		st.log = append(st.log, res)
		st.completed++
		if res.Timing != nil {
			st.spans.Add(*res.Timing)
			st.timed++
		}
	}
	requeue := make([]int, 0, len(rs.Jobs))
	for idx := range rs.Jobs {
		if _, done := st.slots[idx]; !done {
			requeue = append(requeue, idx)
		}
	}
	sort.Ints(requeue) // deterministic queue order across recoveries
	// Requeued jobs inherit their journaled incident history; one whose
	// history already crosses the quarantine threshold (the crash landed
	// between the deciding incident and its result) is quarantined right
	// here instead of burning a fresh set of workers. The finish must wait
	// until st.mu is released: delivery takes it.
	var quarantined []*task
	for _, idx := range requeue {
		s.enqueueSlotLocked(st, idx, rs.Jobs[idx])
		if hist := rs.Incidents[idx]; len(hist) > 0 {
			if t := st.slots[idx].task; s.coord.seedIncidents(t, hist) {
				quarantined = append(quarantined, t)
			}
		}
	}
	st.mu.Unlock()
	for _, t := range quarantined {
		s.coord.quarantineFinish(t)
	}
	s.sweeps[st.id] = st
	if st.nonce != "" {
		s.byNonce[st.nonce] = st.id
	}
	tenant.activeSweeps++
	return len(requeue)
}

// CloseState folds the journal into a final snapshot and closes the state
// store (the graceful half of shutdown; kill -9 skips it and replays the
// journal instead). The server must no longer be mutating sweeps.
func (s *Server) CloseState() error {
	s.mu.Lock()
	store := s.store
	if store == nil {
		s.mu.Unlock()
		return nil
	}
	sweeps := make([]sweepSnapshot, 0, len(s.sweeps))
	for _, st := range s.sweeps {
		st.mu.Lock()
		ss := sweepSnapshot{ID: st.id, Nonce: st.nonce, Tenant: st.tenant.Name,
			Log: append([]sweep.Result(nil), st.log...)}
		for idx, sl := range st.slots {
			ss.Jobs = append(ss.Jobs, jobEntry{Index: idx, Job: sl.job})
			if sl.res == nil && sl.task != nil {
				// Unfinished jobs carry their incident history forward, so a
				// graceful restart cannot reset a poison job's quarantine
				// progress.
				for _, ti := range s.coord.incidentHistory(sl.task) {
					ss.Incidents = append(ss.Incidents, incidentEntry{
						Index: idx, Worker: ti.Worker, Kind: ti.Kind, Message: ti.Message})
				}
			}
		}
		st.mu.Unlock()
		sort.Slice(ss.Jobs, func(i, j int) bool { return ss.Jobs[i].Index < ss.Jobs[j].Index })
		sort.Slice(ss.Incidents, func(i, j int) bool {
			a, b := ss.Incidents[i], ss.Incidents[j]
			if a.Index != b.Index {
				return a.Index < b.Index
			}
			return a.Worker < b.Worker
		})
		sweeps = append(sweeps, ss)
	}
	s.mu.Unlock()
	sort.Slice(sweeps, func(i, j int) bool { return sweeps[i].ID < sweeps[j].ID })
	return store.close(sweeps)
}

// journal appends one mutation when a state store is attached. Failures
// degrade durability, not the running process — the in-memory state stays
// authoritative — so they are logged rather than failing the request.
func (s *Server) journal(rec journalRecord) {
	if s.store == nil {
		return
	}
	if err := s.store.append(rec); err != nil {
		s.opts.Log.Error("journal append failed", "op", rec.Op, "sweep", rec.Sweep, "err", err.Error())
	}
}

// Drain puts the server into shutdown mode: the coordinator stops
// granting leases (workers see an idle queue, not an error) and parked
// result long-polls return their current batch immediately, so in-flight
// client requests finish inside the drain deadline instead of holding the
// HTTP server open for a full poll window.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		s.coord.drain()
		close(s.drainCh)
	}
}

// Stats snapshots the server and its embedded coordinator.
func (s *Server) Stats() ServerSnapshot {
	snap := s.coord.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ServerSnapshot{
		Snapshot:        snap,
		Sweeps:          len(s.sweeps),
		SweepsSubmitted: s.submitted,
		SweepsAbandoned: s.abandoned,
		AuthFailures:    s.authFailures.Load(),
		ResultsStreamed: s.resultsStreamed.Load(),
	}
	for _, ts := range s.auth.tenants {
		out.Tenants = append(out.Tenants, TenantSnapshot{
			Name:          ts.Name,
			ActiveSweeps:  ts.activeSweeps,
			Requests:      ts.requests.Load(),
			RateLimited:   ts.rateLimited.Load(),
			QuotaRejected: ts.quotaRejected.Load(),
		})
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Name < out.Tenants[j].Name })
	return out
}

// Handler returns the full authenticated HTTP surface: the coordinator's
// worker endpoints plus the sweep-submission API. Abandoned-sweep GC runs
// lazily on every request (workers poll /v1/lease continuously, so an idle
// orphan sweep never outlives SweepTTL by much).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", s.coord.handleLease)
	mux.HandleFunc("POST /v1/result", s.coord.handleResult)
	mux.HandleFunc("POST /v1/incident", s.coord.handleIncident)
	mux.HandleFunc("POST /v1/heartbeat", s.coord.handleHeartbeat)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("POST /v1/sweeps/{id}/jobs", s.handleJob)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handlePoll)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleClose)
	inner := s.authTenants(mux)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.gc(s.opts.now())
		inner.ServeHTTP(w, req)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var sr SubmitRequest
	if !decodeJSON(w, req, &sr) {
		return
	}
	tenant := requestTenant(req)
	// The whole submission is one critical section (matrix enqueue is a
	// few list pushes), so a concurrent retry of the same POST either sees
	// nothing yet or the fully-populated sweep — never a partial matrix,
	// and never a duplicate sweep for one nonce.
	s.mu.Lock()
	if sr.Nonce != "" {
		if id, ok := s.byNonce[sr.Nonce]; ok {
			if prev := s.sweeps[id]; prev != nil && prev.tenant == tenant {
				// A retried submission whose first attempt did land: hand
				// back the existing sweep instead of double-running it.
				// (No quota check: it is the same sweep, already counted.)
				prev.mu.Lock()
				resp := SubmitResponse{SweepID: prev.id, Jobs: len(prev.slots)}
				prev.lastSeen = s.opts.now()
				prev.mu.Unlock()
				s.mu.Unlock()
				writeJSON(w, resp)
				return
			}
		}
	}
	if tenant.MaxSweeps > 0 && tenant.activeSweeps >= tenant.MaxSweeps {
		quota := tenant.MaxSweeps
		s.mu.Unlock()
		tenant.quotaRejected.Add(1)
		// 403, not 429: backing off does not help — the tenant must close
		// (or let the TTL abandon) one of its open sweeps first.
		http.Error(w, fmt.Sprintf("tenant %q sweep quota exceeded (%d concurrent); close a sweep first",
			tenant.Name, quota), http.StatusForbidden)
		return
	}
	// The id is random, not sequential: a client that rides out a
	// coordinator restart must see its old sweep id stop resolving (404)
	// rather than silently adopt a sweep the restarted process assigned to
	// someone else.
	now := s.opts.now()
	st := &sweepState{
		id:       "s-" + newNonce()[:16],
		nonce:    sr.Nonce,
		tenant:   tenant,
		slots:    make(map[int]*slot, len(sr.Jobs)),
		logGrew:  make(chan struct{}),
		created:  now,
		lastSeen: now,
	}
	s.journal(journalRecord{Op: opOpen, Sweep: st.id, Nonce: sr.Nonce, Tenant: tenant.Name})
	for i, j := range sr.Jobs {
		s.addJob(st, i, j)
	}
	s.submitted++
	tenant.activeSweeps++
	s.sweeps[st.id] = st
	if sr.Nonce != "" {
		s.byNonce[sr.Nonce] = st.id
	}
	s.mu.Unlock()
	s.opts.Log.Info("sweep opened", "sweep", st.id, "tenant", tenant.Name, "jobs", len(sr.Jobs))
	writeJSON(w, SubmitResponse{SweepID: st.id, Jobs: len(sr.Jobs)})
}

func (s *Server) handleJob(w http.ResponseWriter, req *http.Request) {
	st := s.lookup(req.PathValue("id"), requestTenant(req))
	if st == nil {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	var jr JobRequest
	if !decodeJSON(w, req, &jr) {
		return
	}
	if jr.Index < 0 {
		http.Error(w, "negative job index", http.StatusBadRequest)
		return
	}
	if !s.addJob(st, jr.Index, jr.Job) {
		// The sweep was closed or abandoned between lookup and enqueue; a
		// 200 here would leave the client long-polling a job that will
		// never run.
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handlePoll(w http.ResponseWriter, req *http.Request) {
	st := s.lookup(req.PathValue("id"), requestTenant(req))
	if st == nil {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	if q.Get("index") == "" {
		st.mu.Lock()
		status := SweepStatus{
			SweepID:   st.id,
			Submitted: len(st.slots),
			Completed: st.completed,
			Done:      len(st.slots) > 0 && st.completed == len(st.slots),
		}
		st.mu.Unlock()
		writeJSON(w, status)
		return
	}
	idx, err := strconv.Atoi(q.Get("index"))
	if err != nil {
		http.Error(w, "bad index: "+err.Error(), http.StatusBadRequest)
		return
	}
	wait, ok := parseWait(w, q.Get("wait"))
	if !ok {
		return
	}
	st.mu.Lock()
	sl, found := st.slots[idx]
	st.mu.Unlock()
	if !found {
		http.Error(w, "unknown job index", http.StatusNotFound)
		return
	}
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-sl.ready:
		case <-timer.C:
		case <-req.Context().Done():
			return
		}
	}
	st.mu.Lock()
	res := sl.res
	st.mu.Unlock()
	if res == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, res)
}

// handleResults is the batched streaming endpoint: it returns every result
// appended to the sweep's completion log since the `after` cursor,
// long-polling up to `wait` when the cursor is at the log's tip. One
// in-flight request per sweep therefore drains the whole matrix, however
// many cells it has.
func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) {
	st := s.lookup(req.PathValue("id"), requestTenant(req))
	if st == nil {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	after := 0
	if as := q.Get("after"); as != "" {
		var err error
		if after, err = strconv.Atoi(as); err != nil || after < 0 {
			http.Error(w, "bad after cursor: "+as, http.StatusBadRequest)
			return
		}
	}
	wait, ok := parseWait(w, q.Get("wait"))
	if !ok {
		return
	}
	deadline := time.Now().Add(wait)
	for {
		st.mu.Lock()
		if after > len(st.log) {
			// A cursor past the log cannot come from this sweep's own
			// history (batches only ever advance Next to the log length):
			// the client is confused, and silently waiting would hang it.
			n := len(st.log)
			st.mu.Unlock()
			http.Error(w, fmt.Sprintf("after cursor %d beyond completion log (%d results)", after, n),
				http.StatusBadRequest)
			return
		}
		if len(st.log) > after || time.Now().After(deadline) || wait <= 0 || s.draining.Load() {
			batch := ResultBatch{
				SweepID:   st.id,
				Next:      len(st.log),
				Results:   st.log[after:len(st.log):len(st.log)],
				Submitted: len(st.slots),
				Completed: st.completed,
				Done:      len(st.slots) > 0 && st.completed == len(st.slots),
			}
			st.mu.Unlock()
			s.resultsStreamed.Add(uint64(len(batch.Results)))
			writeJSON(w, batch)
			return
		}
		grew := st.logGrew
		st.mu.Unlock()
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-grew:
			timer.Stop()
		case <-timer.C:
		case <-s.drainCh: // shutdown: next loop returns the current batch
			timer.Stop()
		case <-req.Context().Done():
			timer.Stop()
			return
		}
	}
}

// parseWait parses a long-poll duration, reporting (0, false) after writing
// the error response when it is malformed.
func parseWait(w http.ResponseWriter, ws string) (time.Duration, bool) {
	if ws == "" {
		return 0, true
	}
	wait, err := time.ParseDuration(ws)
	if err != nil {
		http.Error(w, "bad wait: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return min(wait, maxPollWait), true
}

func (s *Server) handleClose(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	tenant := requestTenant(req)
	s.mu.Lock()
	st, ok := s.sweeps[id]
	if ok && st.tenant != tenant {
		st, ok = nil, false // foreign sweep: indistinguishable from absent
	}
	if ok {
		s.releaseLocked(st)
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
		return
	}
	submitted, completed := s.abandonSweep(st)
	s.opts.Log.Info("sweep closed", "sweep", id, "completed", completed, "submitted", submitted)
	w.WriteHeader(http.StatusOK)
}

// releaseLocked removes a sweep from the server's indexes and returns its
// quota slot to the owning tenant. Caller holds s.mu.
func (s *Server) releaseLocked(st *sweepState) {
	s.journal(journalRecord{Op: opClose, Sweep: st.id})
	delete(s.sweeps, st.id)
	if st.nonce != "" {
		delete(s.byNonce, st.nonce)
	}
	if st.tenant != nil {
		st.tenant.activeSweeps--
	}
}

// lookup resolves a sweep id for a tenant and refreshes its liveness
// clock. A foreign tenant's sweep resolves to nil — the same 404 an
// unknown id gets — so sweep ids never leak across tenants.
func (s *Server) lookup(id string, tenant *tenantState) *sweepState {
	s.mu.Lock()
	st := s.sweeps[id]
	if st != nil && st.tenant != tenant {
		st = nil
	}
	s.mu.Unlock()
	if st != nil {
		st.mu.Lock()
		st.lastSeen = s.opts.now()
		st.mu.Unlock()
	}
	return st
}

// addJob enqueues one job of a sweep onto the shared coordinator queue,
// wiring its terminal outcome back into the sweep's slot and completion
// log. It reports false when the sweep has been closed or abandoned in the
// meantime — the caller must not tell the client the job was accepted.
func (s *Server) addJob(st *sweepState, index int, job sweep.Job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	if _, dup := st.slots[index]; dup {
		return true // idempotent resubmission
	}
	s.journal(journalRecord{Op: opJob, Sweep: st.id, Index: index, Job: &job})
	s.enqueueSlotLocked(st, index, job)
	return true
}

// enqueueSlotLocked creates the slot for one job and queues it on the
// shared coordinator. Caller holds st.mu. The delivery closure journals
// the result inside the same st.mu critical section that appends it to
// the in-memory completion log, so journal order always equals log order
// and a cursor a client held before a crash indexes the recovered log
// identically.
func (s *Server) enqueueSlotLocked(st *sweepState, index int, job sweep.Job) {
	sl := &slot{job: job, ready: make(chan struct{})}
	st.slots[index] = sl
	sl.task = s.coord.enqueue(index, job, st.id, func(out outcome) {
		res := &sweep.Result{Index: index, Job: job, Res: out.res, Err: out.err, Timing: out.timing}
		st.mu.Lock()
		sl.res = res
		st.completed++
		if out.timing != nil {
			st.spans.Add(*out.timing)
			st.timed++
		}
		s.journal(journalRecord{Op: opResult, Sweep: st.id, Result: res})
		st.log = append(st.log, *res)
		if st.logGrew != nil {
			close(st.logGrew) // wake every batch long-poll
			st.logGrew = make(chan struct{})
		}
		st.mu.Unlock()
		close(sl.ready)
	})
}

// abandonSweep withdraws a sweep's unfinished jobs from the coordinator
// (which also purges their expired-lease entries) and reports its final
// submitted/completed counts.
func (s *Server) abandonSweep(st *sweepState) (submitted, completed int) {
	st.mu.Lock()
	st.closed = true
	var live []*task
	for _, sl := range st.slots {
		if sl.res == nil && sl.task != nil {
			live = append(live, sl.task)
		}
	}
	submitted, completed = len(st.slots), st.completed
	st.mu.Unlock()
	for _, t := range live {
		s.coord.abandon(t)
	}
	return submitted, completed
}

// gc abandons sweeps whose client has gone silent past SweepTTL. It runs
// lazily on request arrival, mirroring the coordinator's lease expiry: an
// orphan sweep only needs collecting while the server is alive to serve.
// Scans are rate-limited to once per second — idle expiry is measured in
// minutes, and the worker fleet's lease polls should not pay an O(sweeps)
// lock walk each time.
func (s *Server) gc(now time.Time) {
	var drop []*sweepState
	s.mu.Lock()
	if now.Sub(s.lastGC) < time.Second {
		s.mu.Unlock()
		return
	}
	s.lastGC = now
	for _, st := range s.sweeps {
		st.mu.Lock()
		idle := now.Sub(st.lastSeen)
		st.mu.Unlock()
		if idle > s.opts.SweepTTL {
			s.releaseLocked(st)
			s.abandoned++
			drop = append(drop, st)
		}
	}
	s.mu.Unlock()
	for _, st := range drop {
		submitted, completed := s.abandonSweep(st)
		s.opts.Log.Warn("sweep abandoned", "sweep", st.id, "idle", s.opts.SweepTTL.String(),
			"completed", completed, "submitted", submitted)
	}
}
