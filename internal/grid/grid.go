// Package grid shards a sweep.Job matrix across worker processes over
// HTTP. The Coordinator implements sweep.Executor: sweep.Run's worker pool
// hands it jobs, it leases each job to the next polling worker, and the
// result flows back through Run's deterministic in-order sink delivery —
// so JSONL/CSV output of a distributed sweep is byte-identical to a local
// run. A lease that is not completed before its TTL (worker crash, network
// partition) is re-queued and handed to another worker — but a slow
// worker's late result is still accepted while the job remains incomplete,
// since the simulation is deterministic and any completion is the
// completion. A job whose leases are lost too many times fails with an
// error Result instead of stalling the sweep forever.
//
// Wire protocol (JSON over HTTP, versioned under /v1/). The worker-facing
// endpoints are served by Coordinator.Handler; Server adds the
// sweep-submission surface on top and guards every /v1/* endpoint with a
// shared bearer token:
//
//	POST   /v1/lease             LeaseRequest  -> 200 LeaseResponse | 204 (no work)
//	POST   /v1/result            ResultRequest -> 200 | 409 (lease unknown or expired)
//	GET    /v1/stats                           -> 200 Snapshot (ServerSnapshot on a Server)
//	POST   /v1/sweeps            SubmitRequest -> 200 SubmitResponse
//	POST   /v1/sweeps/{id}/jobs  JobRequest    -> 200 (idempotent per index)
//	GET    /v1/sweeps/{id}                     -> 200 SweepStatus
//	GET    /v1/sweeps/{id}?index=N&wait=30s    -> 200 sweep.Result | 204 (pending)
//	DELETE /v1/sweeps/{id}                     -> 200 (sweep state released)
//
// Job execution errors are final results (exactly as in a local run) and
// travel as strings in the Result encoding; only lost leases retry.
package grid

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

// LeaseRequest asks the coordinator for one job.
type LeaseRequest struct {
	// Worker identifies the poller in lease ids and stats (free-form).
	Worker string `json:"worker"`
}

// LeaseResponse grants one job under a lease.
type LeaseResponse struct {
	LeaseID string    `json:"lease_id"`
	Index   int       `json:"index"`
	Job     sweep.Job `json:"job"`
	// TTLMS is the lease duration; the worker must report the result within
	// it or the job is re-queued to another worker.
	TTLMS int64 `json:"ttl_ms"`
	// SweepID names the submitted sweep the job belongs to ("" for jobs
	// queued by a direct Execute call). It exists so worker logs carry the
	// sweep end to end; older workers ignore the field.
	SweepID string `json:"sweep_id,omitempty"`
}

// ResultRequest reports a finished lease. Result carries the job's error
// (if any) as a string; it is a final outcome, not a retry trigger.
type ResultRequest struct {
	LeaseID string       `json:"lease_id"`
	Result  sweep.Result `json:"result"`
}

// Snapshot is the coordinator's accounting, served at /v1/stats. Expired
// counts timed-out leases still waiting for a late result; it returns to
// zero as their jobs complete, fail, or are abandoned, so a persistent
// coordinator holds steady memory across sweeps.
type Snapshot struct {
	Pending   int    `json:"pending"`
	Leased    int    `json:"leased"`
	Expired   int    `json:"expired"`
	Granted   uint64 `json:"granted"`
	Completed uint64 `json:"completed"`
	Requeued  uint64 `json:"requeued"`
	Failed    uint64 `json:"failed"`
}

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker may hold a job before it is re-queued
	// (default 2 minutes; shorten it in tests to exercise the retry path).
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one job may be leased before its
	// lost leases are converted into a job error (default 5).
	MaxAttempts int
	// now is a test seam for the lease clock.
	now func() time.Time
}

// task is one job in flight through the coordinator.
type task struct {
	index     int
	job       sweep.Job
	sweepID   string // owning submitted sweep ("" for direct Execute jobs)
	attempts  int
	leaseID   string        // non-empty while leased
	deadline  time.Time     // lease expiry while leased
	enqueued  time.Time     // when the job entered the queue (queue-wait span)
	granted   time.Time     // most recent lease grant (report-overhead span)
	done      chan outcome  // terminal outcome for Execute callers (nil when deliver is set)
	deliver   func(outcome) // terminal outcome for submitted sweeps (nil for Execute tasks)
	elem      *list.Element // position in pending while queued
	expired   []string      // this task's entries in Coordinator.expired
	completed bool          // outcome delivered (exactly once)
	cancelled bool          // Execute abandoned the job (ctx cancellation)
}

type outcome struct {
	res    *core.Results
	err    error
	timing *sweep.Timing // span breakdown (nil when the worker sent none)
}

// finish hands the task its terminal outcome, exactly once. Callers must
// not hold Coordinator.mu: deliver may take sweep-level locks.
func (t *task) finish(out outcome) {
	if t.deliver != nil {
		t.deliver(out)
		return
	}
	t.done <- out
}

// Coordinator queues jobs from Execute calls and leases them to polling
// workers. It is safe for concurrent use: sweep.Run calls Execute from its
// worker pool while the HTTP handlers serve workers.
type Coordinator struct {
	opts Options

	// observe, when non-nil, receives every completed result (with its
	// server-stamped Timing) right after delivery; the Server wires it to
	// the metrics histograms. Set before any worker traffic, never after.
	observe func(sweep.Result)

	// draining stops lease grants during graceful shutdown: workers see an
	// empty queue (204) and idle, while in-flight results are still
	// accepted — finished work is never thrown away at the door.
	draining atomic.Bool

	mu      sync.Mutex
	pending *list.List       // *task FIFO; retried jobs go to the front
	leases  map[string]*task // leaseID -> task, active leases
	expired map[string]*task // leaseID -> task for timed-out leases: a slow
	// worker's late result is still this job's deterministic result, so it
	// is accepted as long as the job has not completed elsewhere
	seq uint64 // lease id counter

	granted, completed, requeued, failed uint64
}

// NewCoordinator builds a coordinator with defaults applied.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 2 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	return &Coordinator{
		opts:    opts,
		pending: list.New(),
		leases:  make(map[string]*task),
		expired: make(map[string]*task),
	}
}

// Execute implements sweep.Executor: it queues the job for the worker
// fleet and blocks until a worker reports its result, the job exhausts its
// lease attempts, or ctx is cancelled. The bound on concurrently queued
// jobs is sweep.Options.Workers — size it to the fleet's total capacity.
func (c *Coordinator) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	res, _, err := c.ExecuteTimed(ctx, index, j)
	return res, err
}

// ExecuteTimed is Execute returning the coordinator-stamped span breakdown
// (nil when the reporting worker sent none), so sweep.Run records Timing
// for `-serve` sweeps too.
func (c *Coordinator) ExecuteTimed(ctx context.Context, index int, j sweep.Job) (*core.Results, *sweep.Timing, error) {
	t := c.enqueue(index, j, "", nil)

	select {
	case out := <-t.done:
		return out.res, out.timing, out.err
	case <-ctx.Done():
		c.abandon(t)
		// A result may have raced the cancellation; prefer it.
		select {
		case out := <-t.done:
			return out.res, out.timing, out.err
		default:
			return nil, nil, ctx.Err()
		}
	}
}

// enqueue queues one job for the worker fleet and returns its task. When
// deliver is non-nil the terminal outcome goes to it (called without c.mu
// held); otherwise the task carries a buffered channel for Execute.
// sweepID labels the owning submitted sweep in lease responses ("" for
// direct Execute jobs).
func (c *Coordinator) enqueue(index int, j sweep.Job, sweepID string, deliver func(outcome)) *task {
	t := &task{index: index, job: j, sweepID: sweepID, deliver: deliver, enqueued: c.opts.now()}
	if deliver == nil {
		t.done = make(chan outcome, 1)
	}
	c.mu.Lock()
	t.elem = c.pending.PushBack(t)
	c.mu.Unlock()
	return t
}

// abandon withdraws a cancelled task from the queue, the lease table and
// the expired-lease index; a late worker report for it gets 409 and is
// discarded.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t.cancelled = true
	if t.elem != nil {
		c.pending.Remove(t.elem)
		t.elem = nil
	}
	if t.leaseID != "" {
		delete(c.leases, t.leaseID)
		t.leaseID = ""
	}
	c.purgeExpiredLocked(t)
}

// purgeExpiredLocked forgets the task's timed-out lease ids. Once a job
// reaches a terminal state — completed, failed, or abandoned — a late
// result can no longer be used, and keeping the entries would leak one per
// lease expiry for the life of a persistent coordinator.
func (c *Coordinator) purgeExpiredLocked(t *task) {
	for _, id := range t.expired {
		delete(c.expired, id)
	}
	t.expired = nil
}

// requeueExpiredLocked re-queues every lease past its deadline, returning
// the tasks that exhausted their attempts instead; the caller must finish
// those after releasing c.mu. It runs under c.mu on each lease poll: expiry
// needs no timer goroutine, because a lost job only matters when some
// worker is alive to take it.
func (c *Coordinator) requeueExpiredLocked(now time.Time) (exhausted []*task) {
	for id, t := range c.leases {
		if now.Before(t.deadline) {
			continue
		}
		delete(c.leases, id)
		t.leaseID = ""
		if t.attempts >= c.opts.MaxAttempts {
			c.failed++
			t.completed = true
			c.purgeExpiredLocked(t)
			exhausted = append(exhausted, t)
			continue
		}
		c.expired[id] = t // a late result under this lease is still welcome
		t.expired = append(t.expired, id)
		c.requeued++
		t.elem = c.pending.PushFront(t) // retries jump the queue
	}
	return exhausted
}

// drain stops lease grants; results for already-granted leases are still
// accepted.
func (c *Coordinator) drain() { c.draining.Store(true) }

// lease hands the oldest pending job to a worker (none while draining).
func (c *Coordinator) lease(worker string) (LeaseResponse, bool) {
	if c.draining.Load() {
		return LeaseResponse{}, false
	}
	c.mu.Lock()
	now := c.opts.now()
	exhausted := c.requeueExpiredLocked(now)
	var resp LeaseResponse
	var ok bool
	if front := c.pending.Front(); front != nil {
		t := front.Value.(*task)
		c.pending.Remove(front)
		t.elem = nil
		c.seq++
		t.leaseID = fmt.Sprintf("%s-%d", worker, c.seq)
		t.deadline = now.Add(c.opts.LeaseTTL)
		t.granted = now
		t.attempts++
		c.granted++
		c.leases[t.leaseID] = t
		resp = LeaseResponse{
			LeaseID: t.leaseID,
			Index:   t.index,
			Job:     t.job,
			TTLMS:   c.opts.LeaseTTL.Milliseconds(),
			SweepID: t.sweepID,
		}
		ok = true
	}
	c.mu.Unlock()
	for _, t := range exhausted {
		t.finish(outcome{err: fmt.Errorf("grid: %s: lease lost %d times (worker crash or partition); giving up",
			t.job, t.attempts)})
	}
	return resp, ok
}

// complete resolves a lease with its reported result. An expired lease is
// honored as long as its job has not completed elsewhere (the simulation is
// deterministic, so a slow worker's late result is the same result); the
// re-queued or re-leased copy is withdrawn. It returns false for an unknown
// lease, a cancelled job, or a job already completed; the worker discards
// the result.
func (c *Coordinator) complete(leaseID string, r sweep.Result) bool {
	c.mu.Lock()
	now := c.opts.now()
	t, ok := c.leases[leaseID]
	if ok {
		delete(c.leases, leaseID)
	} else if t, ok = c.expired[leaseID]; ok {
		if t.completed || t.cancelled {
			t, ok = nil, false
		} else {
			// Withdraw the retry: the job may be queued again or already
			// re-leased to another worker.
			if t.elem != nil {
				c.pending.Remove(t.elem)
				t.elem = nil
			}
			if t.leaseID != "" {
				delete(c.leases, t.leaseID)
			}
		}
	}
	if ok {
		t.leaseID = ""
		t.completed = true
		c.purgeExpiredLocked(t)
		c.completed++
		if r.Timing != nil {
			// Stamp the server-side spans onto a copy of the worker's
			// breakdown: queue wait (enqueue to the completing lease's grant)
			// and report overhead (grant-to-report round trip net of the time
			// the worker accounted for itself, clamped — clock skew and
			// requeued leases can make the difference negative). A worker
			// that sent no Timing predates the field; its result stays bare.
			tm := *r.Timing
			tm.QueueNS = int64(t.granted.Sub(t.enqueued))
			tm.ReportNS = max(int64(now.Sub(t.granted))-tm.SimulateNS-tm.CacheNS, 0)
			r.Timing = &tm
		}
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	t.finish(outcome{res: r.Res, err: r.Err, timing: r.Timing})
	if c.observe != nil {
		c.observe(r)
	}
	return true
}

// Stats snapshots the coordinator accounting.
func (c *Coordinator) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Pending:   c.pending.Len(),
		Leased:    len(c.leases),
		Expired:   len(c.expired),
		Granted:   c.granted,
		Completed: c.completed,
		Requeued:  c.requeued,
		Failed:    c.failed,
	}
}

// maxBody bounds request bodies; a full Results encoding (histograms
// included) is well under 1 MiB.
const maxBody = 32 << 20

// Handler returns the coordinator's worker-facing HTTP surface, without
// authentication — the in-process `safespec-bench -serve` degenerate case
// wraps these same handlers in a Server, which adds the sweep-submission
// API and bearer-token auth.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, c.Stats())
	})
	return mux
}

func (c *Coordinator) handleLease(w http.ResponseWriter, req *http.Request) {
	var lr LeaseRequest
	if !decodeJSON(w, req, &lr) {
		return
	}
	resp, ok := c.lease(lr.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, req *http.Request) {
	var rr ResultRequest
	if !decodeJSON(w, req, &rr) {
		return
	}
	if rr.Result.Res == nil && rr.Result.Err == nil {
		// A result must carry a payload or a cause; accepting neither
		// would surface as a nil dereference in the sinks.
		http.Error(w, "result carries neither res nor err", http.StatusBadRequest)
		return
	}
	if !c.complete(rr.LeaseID, rr.Result) {
		http.Error(w, "unknown or expired lease", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// sumHeader carries a CRC32-IEEE checksum (lowercase hex) of the JSON
// body, on requests and responses alike. TCP checksums are weak and a
// fault-injecting proxy (or chaos test) can flip a byte that still parses
// as valid JSON — silently corrupting a result. Peers that predate the
// header simply omit it and are accepted unverified.
const sumHeader = "X-Safespec-Sum"

func bodySum(b []byte) string {
	return strconv.FormatUint(uint64(crc32.ChecksumIEEE(b)), 16)
}

func decodeJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBody))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if sum := req.Header.Get(sumHeader); sum != "" && sum != bodySum(body) {
		// 503, not 400: the sender's copy is intact and a retry with fresh
		// bytes will succeed — a 4xx would make a worker discard a finished
		// result over a transit fault.
		http.Error(w, "body checksum mismatch (damaged in transit)", http.StatusServiceUnavailable)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(sumHeader, bodySum(b))
	w.Write(b)
}
