// Package grid shards a sweep.Job matrix across worker processes over
// HTTP. The Coordinator implements sweep.Executor: sweep.Run's worker pool
// hands it jobs, it leases each job to the next polling worker, and the
// result flows back through Run's deterministic in-order sink delivery —
// so JSONL/CSV output of a distributed sweep is byte-identical to a local
// run. A lease that is not completed before its TTL (worker crash, network
// partition) is re-queued and handed to another worker — but a slow
// worker's late result is still accepted while the job remains incomplete,
// since the simulation is deterministic and any completion is the
// completion. A job whose leases are lost too many times fails with an
// error Result instead of stalling the sweep forever.
//
// Wire protocol (JSON over HTTP, versioned under /v1/). The worker-facing
// endpoints are served by Coordinator.Handler; Server adds the
// sweep-submission surface on top and guards every /v1/* endpoint with a
// shared bearer token:
//
//	POST   /v1/lease             LeaseRequest  -> 200 LeaseResponse | 204 (no work)
//	POST   /v1/result            ResultRequest -> 200 | 409 (lease unknown or expired)
//	POST   /v1/incident          IncidentRequest -> 200 | 409 (lease unknown)
//	POST   /v1/heartbeat         HeartbeatRequest -> 200
//	GET    /v1/stats                           -> 200 Snapshot (ServerSnapshot on a Server)
//	POST   /v1/sweeps            SubmitRequest -> 200 SubmitResponse
//	POST   /v1/sweeps/{id}/jobs  JobRequest    -> 200 (idempotent per index)
//	GET    /v1/sweeps/{id}                     -> 200 SweepStatus
//	GET    /v1/sweeps/{id}?index=N&wait=30s    -> 200 sweep.Result | 204 (pending)
//	DELETE /v1/sweeps/{id}                     -> 200 (sweep state released)
//
// Job execution errors are final results (exactly as in a local run) and
// travel as strings in the Result encoding; only lost leases retry.
package grid

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

// LeaseRequest asks the coordinator for one job.
type LeaseRequest struct {
	// Worker identifies the poller in lease ids and stats (free-form).
	Worker string `json:"worker"`
}

// LeaseResponse grants one job under a lease.
type LeaseResponse struct {
	LeaseID string    `json:"lease_id"`
	Index   int       `json:"index"`
	Job     sweep.Job `json:"job"`
	// TTLMS is the lease duration; the worker must report the result within
	// it or the job is re-queued to another worker.
	TTLMS int64 `json:"ttl_ms"`
	// SweepID names the submitted sweep the job belongs to ("" for jobs
	// queued by a direct Execute call). It exists so worker logs carry the
	// sweep end to end; older workers ignore the field.
	SweepID string `json:"sweep_id,omitempty"`
}

// ResultRequest reports a finished lease. Result carries the job's error
// (if any) as a string; it is a final outcome, not a retry trigger.
type ResultRequest struct {
	LeaseID string       `json:"lease_id"`
	Result  sweep.Result `json:"result"`
}

// Snapshot is the coordinator's accounting, served at /v1/stats. Expired
// counts timed-out leases still waiting for a late result; it returns to
// zero as their jobs complete, fail, or are abandoned, so a persistent
// coordinator holds steady memory across sweeps.
type Snapshot struct {
	Pending   int    `json:"pending"`
	Leased    int    `json:"leased"`
	Expired   int    `json:"expired"`
	Granted   uint64 `json:"granted"`
	Completed uint64 `json:"completed"`
	Requeued  uint64 `json:"requeued"`
	Failed    uint64 `json:"failed"`
	// Incidents counts contained worker failures (panic/timeout/memory)
	// reported through /v1/incident; Quarantined counts jobs completed as
	// poison after incidents on enough distinct workers; Hedged counts
	// duplicate tail leases issued against stalled workers.
	Incidents   uint64 `json:"incidents"`
	Quarantined uint64 `json:"quarantined"`
	Hedged      uint64 `json:"hedged"`
	// Workers is the health registry, sorted by worker id (omitted before
	// any worker has made contact).
	Workers []WorkerHealthSnapshot `json:"workers,omitempty"`
}

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker may hold a job before it is re-queued
	// (default 2 minutes; shorten it in tests to exercise the retry path).
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one job may be leased before its
	// lost leases are converted into a job error (default 5).
	MaxAttempts int
	// QuarantineAfter quarantines a job once incidents have been reported
	// against it from this many distinct workers (default 2, so one
	// worker's local trouble never condemns a job; 1 quarantines on the
	// first incident).
	QuarantineAfter int
	// UnhealthyAfter is the decayed penalty score at or above which a
	// worker is refused leases while a healthy worker is live (default 4:
	// two lease expiries or two incidents inside one half-life).
	UnhealthyAfter float64
	// HealthHalfLife is the penalty decay half-life (default 5 minutes).
	HealthHalfLife time.Duration
	// HedgeAfter tunes tail-lease hedging: once the queue is empty and a
	// remaining lease is older than this, a duplicate hedge lease is issued
	// to the next healthy poller. 0 (the default) adapts the threshold to
	// the fleet — twice the p95 of observed lease durations, at least
	// 500ms, once 8 completions have been sampled; negative disables
	// hedging entirely.
	HedgeAfter time.Duration
	// now is a test seam for the lease clock.
	now func() time.Time
}

// task is one job in flight through the coordinator.
type task struct {
	index     int
	job       sweep.Job
	sweepID   string // owning submitted sweep ("" for direct Execute jobs)
	attempts  int
	leaseID   string        // non-empty while leased
	deadline  time.Time     // lease expiry while leased
	enqueued  time.Time     // when the job entered the queue (queue-wait span)
	granted   time.Time     // most recent lease grant (report-overhead span)
	done      chan outcome  // terminal outcome for Execute callers (nil when deliver is set)
	deliver   func(outcome) // terminal outcome for submitted sweeps (nil for Execute tasks)
	elem      *list.Element // position in pending while queued
	expired   []string      // this task's entries in Coordinator.expired
	completed bool          // outcome delivered (exactly once)
	cancelled bool          // Execute abandoned the job (ctx cancellation)

	worker    string         // base worker id of the most recent grant
	incidents []taskIncident // contained failures reported against this job
	hedged    bool           // a duplicate tail lease was issued (once per task)
}

type outcome struct {
	res    *core.Results
	err    error
	timing *sweep.Timing // span breakdown (nil when the worker sent none)
}

// finish hands the task its terminal outcome, exactly once. Callers must
// not hold Coordinator.mu: deliver may take sweep-level locks.
func (t *task) finish(out outcome) {
	if t.deliver != nil {
		t.deliver(out)
		return
	}
	t.done <- out
}

// Coordinator queues jobs from Execute calls and leases them to polling
// workers. It is safe for concurrent use: sweep.Run calls Execute from its
// worker pool while the HTTP handlers serve workers.
type Coordinator struct {
	opts Options

	// observe, when non-nil, receives every completed result (with its
	// server-stamped Timing) right after delivery; the Server wires it to
	// the metrics histograms. Set before any worker traffic, never after.
	observe func(sweep.Result)

	// onIncident, when non-nil, receives every accepted incident (under
	// c.mu); the Server wires it to the state journal so quarantine
	// history survives a restart. The journal's mutex is the innermost
	// lock, so appending under c.mu is safe.
	onIncident func(sweepID string, index int, inc taskIncident)

	// draining stops lease grants during graceful shutdown: workers see an
	// empty queue (204) and idle, while in-flight results are still
	// accepted — finished work is never thrown away at the door.
	draining atomic.Bool

	mu      sync.Mutex
	pending *list.List       // *task FIFO; retried jobs go to the front
	leases  map[string]*task // leaseID -> task, active leases
	expired map[string]*task // leaseID -> task for timed-out leases: a slow
	// worker's late result is still this job's deterministic result, so it
	// is accepted as long as the job has not completed elsewhere
	seq uint64 // lease id counter

	granted, completed, requeued, failed uint64
	incidents, quarantined, hedged       uint64

	// workers is the health registry (see health.go); lastPrune rate-limits
	// its idle-entry sweep.
	workers   map[string]*workerHealth
	lastPrune time.Time

	// durs is a ring of recent lease durations (grant to accepted result)
	// feeding the adaptive hedge threshold; hedgeThr/hedgeThrAt cache the
	// computed quantile for a second so lease polls stay O(1).
	durs       [256]time.Duration
	durN       int // filled entries (caps at len(durs))
	durIdx     int // next write position
	hedgeThr   time.Duration
	hedgeThrAt time.Time
}

// NewCoordinator builds a coordinator with defaults applied.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 2 * time.Minute
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.QuarantineAfter <= 0 {
		opts.QuarantineAfter = 2
	}
	if opts.UnhealthyAfter <= 0 {
		opts.UnhealthyAfter = 4
	}
	if opts.HealthHalfLife <= 0 {
		opts.HealthHalfLife = 5 * time.Minute
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	return &Coordinator{
		opts:    opts,
		pending: list.New(),
		leases:  make(map[string]*task),
		expired: make(map[string]*task),
		workers: make(map[string]*workerHealth),
	}
}

// Execute implements sweep.Executor: it queues the job for the worker
// fleet and blocks until a worker reports its result, the job exhausts its
// lease attempts, or ctx is cancelled. The bound on concurrently queued
// jobs is sweep.Options.Workers — size it to the fleet's total capacity.
func (c *Coordinator) Execute(ctx context.Context, index int, j sweep.Job) (*core.Results, error) {
	res, _, err := c.ExecuteTimed(ctx, index, j)
	return res, err
}

// ExecuteTimed is Execute returning the coordinator-stamped span breakdown
// (nil when the reporting worker sent none), so sweep.Run records Timing
// for `-serve` sweeps too.
func (c *Coordinator) ExecuteTimed(ctx context.Context, index int, j sweep.Job) (*core.Results, *sweep.Timing, error) {
	t := c.enqueue(index, j, "", nil)

	select {
	case out := <-t.done:
		return out.res, out.timing, out.err
	case <-ctx.Done():
		c.abandon(t)
		// A result may have raced the cancellation; prefer it.
		select {
		case out := <-t.done:
			return out.res, out.timing, out.err
		default:
			return nil, nil, ctx.Err()
		}
	}
}

// enqueue queues one job for the worker fleet and returns its task. When
// deliver is non-nil the terminal outcome goes to it (called without c.mu
// held); otherwise the task carries a buffered channel for Execute.
// sweepID labels the owning submitted sweep in lease responses ("" for
// direct Execute jobs).
func (c *Coordinator) enqueue(index int, j sweep.Job, sweepID string, deliver func(outcome)) *task {
	t := &task{index: index, job: j, sweepID: sweepID, deliver: deliver, enqueued: c.opts.now()}
	if deliver == nil {
		t.done = make(chan outcome, 1)
	}
	c.mu.Lock()
	t.elem = c.pending.PushBack(t)
	c.mu.Unlock()
	return t
}

// abandon withdraws a cancelled task from the queue, the lease table and
// the expired-lease index; a late worker report for it gets 409 and is
// discarded.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t.cancelled = true
	if t.elem != nil {
		c.pending.Remove(t.elem)
		t.elem = nil
	}
	if t.leaseID != "" {
		delete(c.leases, t.leaseID)
		t.leaseID = ""
	}
	c.purgeExpiredLocked(t)
}

// purgeExpiredLocked forgets the task's timed-out lease ids. Once a job
// reaches a terminal state — completed, failed, or abandoned — a late
// result can no longer be used, and keeping the entries would leak one per
// lease expiry for the life of a persistent coordinator.
func (c *Coordinator) purgeExpiredLocked(t *task) {
	for _, id := range t.expired {
		delete(c.expired, id)
	}
	t.expired = nil
}

// requeueExpiredLocked re-queues every lease past its deadline, returning
// the tasks that exhausted their attempts instead; the caller must finish
// those after releasing c.mu. It runs under c.mu on each lease poll: expiry
// needs no timer goroutine, because a lost job only matters when some
// worker is alive to take it.
func (c *Coordinator) requeueExpiredLocked(now time.Time) (exhausted []*task) {
	for id, t := range c.leases {
		if now.Before(t.deadline) {
			continue
		}
		delete(c.leases, id)
		t.leaseID = ""
		// An expired lease is a crash, wedge or partition on the holder:
		// charge its health score so repeat offenders rotate out of grants.
		if wh := c.workers[t.worker]; wh != nil {
			wh.expiries++
			c.penalizeLocked(wh, expiryPenalty, now)
		}
		if t.attempts >= c.opts.MaxAttempts {
			c.failed++
			t.completed = true
			c.purgeExpiredLocked(t)
			exhausted = append(exhausted, t)
			continue
		}
		c.expired[id] = t // a late result under this lease is still welcome
		t.expired = append(t.expired, id)
		c.requeued++
		t.elem = c.pending.PushFront(t) // retries jump the queue
	}
	return exhausted
}

// drain stops lease grants; results for already-granted leases are still
// accepted.
func (c *Coordinator) drain() { c.draining.Store(true) }

// lease hands the oldest pending job to a worker (none while draining).
// worker labels the lease id (free-form, typically "id/loop"); base is the
// worker's registry identity for health scoring. An unhealthy worker is
// answered as if the queue were empty — but only while a healthy worker
// has been heard from recently, so a degraded fleet degrades to the old
// grant-to-anyone behavior instead of stalling. When the queue is empty
// but leases remain, the poll may hedge a stalled tail lease (see
// maybeHedgeLocked) and immediately grant the duplicate.
func (c *Coordinator) lease(worker, base string) (LeaseResponse, bool) {
	if c.draining.Load() {
		return LeaseResponse{}, false
	}
	c.mu.Lock()
	now := c.opts.now()
	wh := c.touchWorkerLocked(base, now)
	exhausted := c.requeueExpiredLocked(now)
	var resp LeaseResponse
	var ok bool
	if c.healthyLocked(wh, now) || !c.anyOtherHealthyLocked(base, now) {
		if c.pending.Len() == 0 {
			c.maybeHedgeLocked(now)
		}
		for e := c.pending.Front(); e != nil; e = e.Next() {
			t := e.Value.(*task)
			if t.hedged && t.worker == base && c.anyOtherHealthyLocked(base, now) {
				// A hedge exists to escape the worker already stuck on the
				// job; hand it to someone else while someone else is live.
				continue
			}
			c.pending.Remove(e)
			t.elem = nil
			c.seq++
			t.leaseID = fmt.Sprintf("%s-%d", worker, c.seq)
			t.deadline = now.Add(c.opts.LeaseTTL)
			t.granted = now
			t.worker = base
			t.attempts++
			c.granted++
			if wh != nil {
				wh.leased++
			}
			c.leases[t.leaseID] = t
			resp = LeaseResponse{
				LeaseID: t.leaseID,
				Index:   t.index,
				Job:     t.job,
				TTLMS:   c.opts.LeaseTTL.Milliseconds(),
				SweepID: t.sweepID,
			}
			ok = true
			break
		}
	}
	c.mu.Unlock()
	for _, t := range exhausted {
		t.finish(outcome{err: fmt.Errorf("grid: %s: lease lost %d times (worker crash or partition); giving up",
			t.job, t.attempts)})
	}
	return resp, ok
}

// maybeHedgeLocked issues at most one duplicate lease against the oldest
// stalled tail lease: the lease id moves to the expired index (the
// original holder's late result is still welcome — first report wins, the
// loser's gets 409 and is discarded, so output stays byte-identical) and
// the task re-enters the queue front for the polling worker to take.
// Caller holds c.mu and has verified the queue is empty.
func (c *Coordinator) maybeHedgeLocked(now time.Time) {
	if len(c.leases) == 0 {
		return
	}
	thr := c.hedgeThresholdLocked(now)
	if thr <= 0 {
		return
	}
	var best *task
	var bestID string
	for id, t := range c.leases {
		if t.hedged || t.attempts >= c.opts.MaxAttempts {
			continue // one hedge per task; never hedge past the attempt bound
		}
		if now.Sub(t.granted) < thr {
			continue
		}
		if best == nil || t.granted.Before(best.granted) {
			best, bestID = t, id
		}
	}
	if best == nil {
		return
	}
	delete(c.leases, bestID)
	c.expired[bestID] = best
	best.expired = append(best.expired, bestID)
	best.leaseID = ""
	best.hedged = true
	c.hedged++
	best.elem = c.pending.PushFront(best)
}

// hedgeThresholdLocked returns the lease age beyond which a tail lease is
// hedged (0 disables). An explicit HedgeAfter wins; the adaptive default
// needs a sample base and recomputes its quantile at most once a second.
func (c *Coordinator) hedgeThresholdLocked(now time.Time) time.Duration {
	if c.opts.HedgeAfter != 0 {
		return c.opts.HedgeAfter // negative disables
	}
	const (
		minSamples = 8
		floor      = 500 * time.Millisecond
	)
	if c.durN < minSamples {
		return 0
	}
	if !c.hedgeThrAt.IsZero() && now.Sub(c.hedgeThrAt) < time.Second {
		return c.hedgeThr
	}
	samples := make([]time.Duration, c.durN)
	copy(samples, c.durs[:c.durN])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p95 := samples[(len(samples)*95+99)/100-1]
	c.hedgeThr = max(2*p95, floor)
	c.hedgeThrAt = now
	return c.hedgeThr
}

// recordDurationLocked feeds one completed lease's grant-to-report
// duration into the hedge sample ring. Caller holds c.mu.
func (c *Coordinator) recordDurationLocked(d time.Duration) {
	if d <= 0 {
		return
	}
	c.durs[c.durIdx] = d
	c.durIdx = (c.durIdx + 1) % len(c.durs)
	if c.durN < len(c.durs) {
		c.durN++
	}
}

// complete resolves a lease with its reported result. An expired lease is
// honored as long as its job has not completed elsewhere (the simulation is
// deterministic, so a slow worker's late result is the same result); the
// re-queued or re-leased copy is withdrawn. It returns false for an unknown
// lease, a cancelled job, or a job already completed; the worker discards
// the result. base, when non-empty, credits the reporting worker's health
// record and refreshes its liveness clock.
func (c *Coordinator) complete(leaseID string, r sweep.Result, base string) bool {
	c.mu.Lock()
	now := c.opts.now()
	if wh := c.touchWorkerLocked(base, now); wh != nil {
		wh.completed++
	}
	t, ok := c.leases[leaseID]
	if ok {
		delete(c.leases, leaseID)
	} else if t, ok = c.expired[leaseID]; ok {
		if t.completed || t.cancelled {
			t, ok = nil, false
		} else {
			// Withdraw the retry: the job may be queued again or already
			// re-leased to another worker.
			if t.elem != nil {
				c.pending.Remove(t.elem)
				t.elem = nil
			}
			if t.leaseID != "" {
				delete(c.leases, t.leaseID)
			}
		}
	}
	if ok {
		t.leaseID = ""
		t.completed = true
		c.purgeExpiredLocked(t)
		c.completed++
		c.recordDurationLocked(now.Sub(t.granted))
		if r.Timing != nil {
			// Stamp the server-side spans onto a copy of the worker's
			// breakdown: queue wait (enqueue to the completing lease's grant)
			// and report overhead (grant-to-report round trip net of the time
			// the worker accounted for itself, clamped — clock skew and
			// requeued leases can make the difference negative). A worker
			// that sent no Timing predates the field; its result stays bare.
			tm := *r.Timing
			tm.QueueNS = int64(t.granted.Sub(t.enqueued))
			tm.ReportNS = max(int64(now.Sub(t.granted))-tm.SimulateNS-tm.CacheNS, 0)
			r.Timing = &tm
		}
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	t.finish(outcome{res: r.Res, err: r.Err, timing: r.Timing})
	if c.observe != nil {
		c.observe(r)
	}
	return true
}

// incident records one contained job failure against a lease. The lease is
// released (its id stays welcome for a late result — a timed-out job's
// stalled goroutine may still finish, and its result is the result) and the
// job either requeues, quarantines (incidents from QuarantineAfter distinct
// workers), or fails (attempt bound reached). It returns false only for a
// lease id the coordinator has never heard of; an incident against a job
// that already completed is accepted as worker-ledger bookkeeping.
func (c *Coordinator) incident(leaseID string, inc taskIncident) bool {
	var finish *task
	var finishErr error
	c.mu.Lock()
	now := c.opts.now()
	wh := c.touchWorkerLocked(inc.Worker, now)
	if wh != nil {
		wh.incidents++
	}
	c.penalizeLocked(wh, incidentPenalty, now)
	c.incidents++
	t, live := c.leases[leaseID]
	if live {
		delete(c.leases, leaseID)
		t.leaseID = ""
		c.expired[leaseID] = t // a late result under this lease is still welcome
		t.expired = append(t.expired, leaseID)
	} else if t = c.expired[leaseID]; t == nil {
		c.mu.Unlock()
		return false
	}
	if !t.completed && !t.cancelled {
		t.incidents = append(t.incidents, inc)
		if c.onIncident != nil && t.sweepID != "" {
			c.onIncident(t.sweepID, t.index, inc)
		}
		switch distinct := distinctIncidentWorkersLocked(t); {
		case distinct >= c.opts.QuarantineAfter:
			c.quarantineLocked(t)
			finish, finishErr = t, quarantineError(t, distinct)
		case live && t.attempts >= c.opts.MaxAttempts:
			// The job keeps drawing incidents on one worker (a fleet smaller
			// than the quarantine threshold): the attempt bound converts it
			// into an error row, same as exhausted leases.
			c.failed++
			t.completed = true
			c.purgeExpiredLocked(t)
			last := t.incidents[len(t.incidents)-1]
			finish, finishErr = t, fmt.Errorf("grid: %s: %d incidents without a completed lease (last %s: %s); giving up",
				t.job, len(t.incidents), last.Kind, last.Message)
		case live:
			// The incident released a live lease: requeue at the front, like
			// TTL expiry (an expired-lease incident's job is already queued
			// or re-leased).
			c.requeued++
			t.elem = c.pending.PushFront(t)
		}
	}
	c.mu.Unlock()
	if finish != nil {
		finish.finish(outcome{err: finishErr})
	}
	return true
}

// quarantineLocked completes a task as poison: it is withdrawn from the
// queue, the lease table and the expired index, and counted. Caller holds
// c.mu and must call finish (with quarantineError) after releasing it.
func (c *Coordinator) quarantineLocked(t *task) {
	if t.elem != nil {
		c.pending.Remove(t.elem)
		t.elem = nil
	}
	if t.leaseID != "" {
		delete(c.leases, t.leaseID)
		t.leaseID = ""
	}
	t.completed = true
	c.purgeExpiredLocked(t)
	c.quarantined++
}

// seedIncidents attaches journaled incident history to a recovered task,
// reporting true when the history already crosses the quarantine
// threshold — the task has then been withdrawn and the caller must finish
// it with quarantineFinish after releasing sweep-level locks.
func (c *Coordinator) seedIncidents(t *task, hist []taskIncident) bool {
	if len(hist) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.incidents = append(t.incidents, hist...)
	if distinctIncidentWorkersLocked(t) < c.opts.QuarantineAfter {
		return false
	}
	c.quarantineLocked(t)
	return true
}

// quarantineFinish delivers the deterministic quarantine outcome for a
// task seedIncidents withdrew. Callers must not hold Coordinator.mu or the
// owning sweep's mutex.
func (c *Coordinator) quarantineFinish(t *task) {
	t.finish(outcome{err: quarantineError(t, distinctIncidentWorkersLocked(t))})
}

// incidentHistory returns a copy of the incidents recorded against a task,
// for snapshotting live state on graceful shutdown.
func (c *Coordinator) incidentHistory(t *task) []taskIncident {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]taskIncident(nil), t.incidents...)
}

// heartbeat refreshes a worker's registry entry outside the lease path: a
// worker saturated with long jobs stops polling but keeps beating.
func (c *Coordinator) heartbeat(hb HeartbeatRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	if wh := c.touchWorkerLocked(hb.Worker, now); wh != nil {
		wh.lastBeat = now
		wh.busy = hb.Busy
		wh.heap = hb.HeapBytes
	}
}

// Stats snapshots the coordinator accounting.
func (c *Coordinator) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	return Snapshot{
		Pending:     c.pending.Len(),
		Leased:      len(c.leases),
		Expired:     len(c.expired),
		Granted:     c.granted,
		Completed:   c.completed,
		Requeued:    c.requeued,
		Failed:      c.failed,
		Incidents:   c.incidents,
		Quarantined: c.quarantined,
		Hedged:      c.hedged,
		Workers:     c.workerSnapshotsLocked(now),
	}
}

// maxBody bounds request bodies; a full Results encoding (histograms
// included) is well under 1 MiB.
const maxBody = 32 << 20

// Handler returns the coordinator's worker-facing HTTP surface, without
// authentication — the in-process `safespec-bench -serve` degenerate case
// wraps these same handlers in a Server, which adds the sweep-submission
// API and bearer-token auth.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("POST /v1/incident", c.handleIncident)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, c.Stats())
	})
	return mux
}

// decodeWorkerJSON is decodeJSON for worker-facing endpoints: a checksum
// mismatch is additionally attributed to the worker named in the request
// header (the body itself is unreadable by definition).
func (c *Coordinator) decodeWorkerJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	ok, sumFail := decodeJSONSum(w, req, v)
	if sumFail {
		c.noteChecksumFailure(req.Header.Get(workerHeader))
	}
	return ok
}

// reqWorker resolves the worker's registry identity for a request: the
// worker header when present, fallback otherwise (older workers send only
// their per-loop lease label).
func reqWorker(req *http.Request, fallback string) string {
	if id := req.Header.Get(workerHeader); id != "" {
		return id
	}
	return fallback
}

func (c *Coordinator) handleLease(w http.ResponseWriter, req *http.Request) {
	var lr LeaseRequest
	if !c.decodeWorkerJSON(w, req, &lr) {
		return
	}
	resp, ok := c.lease(lr.Worker, reqWorker(req, lr.Worker))
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, req *http.Request) {
	var rr ResultRequest
	if !c.decodeWorkerJSON(w, req, &rr) {
		return
	}
	if rr.Result.Res == nil && rr.Result.Err == nil {
		// A result must carry a payload or a cause; accepting neither
		// would surface as a nil dereference in the sinks.
		http.Error(w, "result carries neither res nor err", http.StatusBadRequest)
		return
	}
	if !c.complete(rr.LeaseID, rr.Result, reqWorker(req, "")) {
		http.Error(w, "unknown or expired lease", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleIncident(w http.ResponseWriter, req *http.Request) {
	var ir IncidentRequest
	if !c.decodeWorkerJSON(w, req, &ir) {
		return
	}
	if !validIncidentKind(ir.Kind) {
		http.Error(w, fmt.Sprintf("unknown incident kind %q", ir.Kind), http.StatusBadRequest)
		return
	}
	worker := reqWorker(req, ir.Worker)
	if worker == "" {
		http.Error(w, "incident names no worker", http.StatusBadRequest)
		return
	}
	if !c.incident(ir.LeaseID, taskIncident{Worker: worker, Kind: ir.Kind, Message: ir.Message}) {
		http.Error(w, "unknown lease", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var hb HeartbeatRequest
	if !c.decodeWorkerJSON(w, req, &hb) {
		return
	}
	hb.Worker = reqWorker(req, hb.Worker)
	if hb.Worker == "" {
		http.Error(w, "heartbeat names no worker", http.StatusBadRequest)
		return
	}
	c.heartbeat(hb)
	w.WriteHeader(http.StatusOK)
}

// sumHeader carries a CRC32-IEEE checksum (lowercase hex) of the JSON
// body, on requests and responses alike. TCP checksums are weak and a
// fault-injecting proxy (or chaos test) can flip a byte that still parses
// as valid JSON — silently corrupting a result. Peers that predate the
// header simply omit it and are accepted unverified.
const sumHeader = "X-Safespec-Sum"

func bodySum(b []byte) string {
	return strconv.FormatUint(uint64(crc32.ChecksumIEEE(b)), 16)
}

func decodeJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	ok, _ := decodeJSONSum(w, req, v)
	return ok
}

// decodeJSONSum is decodeJSON additionally reporting whether the failure
// was a body-checksum mismatch, so worker-facing handlers can attribute
// transit damage to the sending worker's health record.
func decodeJSONSum(w http.ResponseWriter, req *http.Request, v any) (ok, sumFail bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBody))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false, false
	}
	if sum := req.Header.Get(sumHeader); sum != "" && sum != bodySum(body) {
		// 503, not 400: the sender's copy is intact and a retry with fresh
		// bytes will succeed — a 4xx would make a worker discard a finished
		// result over a transit fault.
		http.Error(w, "body checksum mismatch (damaged in transit)", http.StatusServiceUnavailable)
		return false, true
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false, false
	}
	return true, false
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(sumHeader, bodySum(b))
	w.Write(b)
}
