package grid

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/sweep"
)

// TestResultBatchCursor exercises the batch endpoint's cursor contract over
// the wire: a stale cursor beyond the completion log is 400 (a confused
// client must fail loudly, not hang), the tip cursor long-polls into an
// empty batch with Next == after, and a zero cursor replays the whole log.
func TestResultBatchCursor(t *testing.T) {
	server := NewServer(ServerOptions{})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	jobs := smallJobs(t, "exchange2")[:2]
	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: jobs}, &resp); err != nil {
		t.Fatal(err)
	}
	results := func(query string, batch *ResultBatch) int {
		t.Helper()
		status, err := doJSON(ctx, srv.Client(), http.MethodGet,
			srv.URL+"/v1/sweeps/"+resp.SweepID+"/results"+query, "", nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		return status
	}

	// Nothing completed yet: a cursor past the log is the client's bug.
	if status := results("?after=1", nil); status != http.StatusBadRequest {
		t.Errorf("stale cursor: got %d, want 400", status)
	}
	if status := results("?after=-1", nil); status != http.StatusBadRequest {
		t.Errorf("negative cursor: got %d, want 400", status)
	}
	// The tip cursor long-polls and comes back empty when nothing finishes.
	var empty ResultBatch
	if status := results("?after=0&wait=30ms", &empty); status != http.StatusOK {
		t.Fatalf("tip poll: got %d, want 200", status)
	}
	if len(empty.Results) != 0 || empty.Next != 0 || empty.Done {
		t.Errorf("tip poll on an idle sweep: %+v", empty)
	}

	stop := startWorkers(t, srv.URL, 1)
	defer stop()
	deadline := time.Now().Add(30 * time.Second)
	var all ResultBatch
	after := 0
	for {
		var batch ResultBatch
		if status := results(fmt.Sprintf("?after=%d&wait=1s", after), &batch); status != http.StatusOK {
			t.Fatalf("batch poll: got %d, want 200", status)
		}
		all.Results = append(all.Results, batch.Results...)
		after = batch.Next
		if batch.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never drained; have %d/%d results", len(all.Results), len(jobs))
		}
	}
	if len(all.Results) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", len(all.Results), len(jobs))
	}
	// A zero cursor replays the full log; the tip cursor is now just empty.
	var replay ResultBatch
	if status := results("?after=0", &replay); status != http.StatusOK || len(replay.Results) != len(jobs) {
		t.Errorf("replay: status %d, %d results, want 200 with %d", status, len(replay.Results), len(jobs))
	}
	if status := results(fmt.Sprintf("?after=%d", len(jobs)), &replay); status != http.StatusOK {
		t.Errorf("tip after drain: got %d, want 200", status)
	}
	if status := results(fmt.Sprintf("?after=%d", len(jobs)+1), nil); status != http.StatusBadRequest {
		t.Errorf("cursor past drained log: got %d, want 400", status)
	}
}

// TestStreamCoordinatorRestart: a RemoteExecutor whose coordinator restarts
// mid-stream (losing all state) re-resolves its sweep by submission nonce,
// re-submits the jobs the restarted process never saw, and completes every
// in-flight Execute — and because restarted coordinators assign fresh random
// sweep ids, it never silently adopts a sweep some other client opened after
// the restart.
func TestStreamCoordinatorRestart(t *testing.T) {
	var handler atomic.Value // http.Handler
	before := NewServer(ServerOptions{})
	handler.Store(before.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, req)
	}))
	defer srv.Close()

	jobs := smallJobs(t, "exchange2")[:2]
	re := &RemoteExecutor{URL: srv.URL, PollWait: 50 * time.Millisecond}
	if err := re.Submit(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	re.mu.Lock()
	oldID := re.sweepID
	re.mu.Unlock()

	type outcome struct {
		res *core.Results
		err error
	}
	outc := make(chan outcome, len(jobs))
	for i, j := range jobs {
		go func() {
			res, err := re.Execute(context.Background(), i, j)
			outc <- outcome{res, err}
		}()
	}
	// Wait until the stream is live (a waiter is parked), then "restart" the
	// coordinator: fresh process, empty state, new random ids.
	for {
		re.mu.Lock()
		live := re.streamCtx != nil
		re.mu.Unlock()
		if live {
			break
		}
		time.Sleep(time.Millisecond)
	}
	after := NewServer(ServerOptions{})
	handler.Store(after.Handler())
	// Another client opens a sweep on the restarted coordinator; the old id
	// must not resolve to it, and recovery must not adopt it.
	var foreign SubmitResponse
	if _, err := doJSON(context.Background(), srv.Client(), http.MethodPost,
		srv.URL+"/v1/sweeps", "", SubmitRequest{Jobs: jobs}, &foreign); err != nil {
		t.Fatal(err)
	}
	if foreign.SweepID == oldID {
		t.Fatalf("restarted coordinator reissued sweep id %s", oldID)
	}

	stop := startWorkers(t, srv.URL, 1)
	defer stop()
	for range jobs {
		select {
		case out := <-outc:
			if out.err != nil {
				t.Errorf("Execute through restart: %v", out.err)
			} else if out.res == nil || out.res.Committed == 0 {
				t.Errorf("Execute through restart returned empty result %+v", out.res)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("Execute hung through the coordinator restart")
		}
	}
	re.mu.Lock()
	newID := re.sweepID
	re.mu.Unlock()
	if newID == oldID {
		t.Errorf("executor kept dead sweep id %s through the restart", oldID)
	}
	if newID == foreign.SweepID {
		t.Errorf("recovery adopted the foreign sweep %s", foreign.SweepID)
	}
	if err := re.Close(); err != nil {
		t.Errorf("close after restart: %v", err)
	}
}

// TestStreamLateLeaseInterleave: when a lease expires mid-stream and the
// job is completed by a second worker, the completion log must carry the
// result exactly once — the crashed worker's late report is rejected and
// never streamed as a duplicate.
func TestStreamLateLeaseInterleave(t *testing.T) {
	clk := &fakeClock{now: time.Unix(50_000, 0)}
	server := NewServer(ServerOptions{
		Lease: Options{LeaseTTL: time.Minute, now: clk.Now},
		now:   clk.Now,
	})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:1]}, &resp); err != nil {
		t.Fatal(err)
	}
	crash := leaseOne(t, srv.URL)
	clk.Advance(2 * time.Minute) // the crasher's lease times out
	healthy := leaseOne(t, srv.URL)

	report := func(leaseID string) int {
		t.Helper()
		status, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/result", "",
			ResultRequest{LeaseID: leaseID, Result: sweep.Result{
				Index: 0, Res: &core.Results{Stats: &pipeline.Stats{Committed: 1}},
			}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return status
	}
	if status := report(healthy.LeaseID); status != http.StatusOK {
		t.Fatalf("healthy report: got %d, want 200", status)
	}
	// The crasher wakes up and reports into the already-completed job.
	if status := report(crash.LeaseID); status != http.StatusConflict {
		t.Fatalf("late report on expired lease: got %d, want 409", status)
	}

	var batch ResultBatch
	if _, err := doJSON(ctx, srv.Client(), http.MethodGet,
		srv.URL+"/v1/sweeps/"+resp.SweepID+"/results?after=0", "", nil, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 1 || batch.Next != 1 || !batch.Done {
		t.Fatalf("completion log must hold the result exactly once: %+v", batch)
	}
	if s := server.Stats(); s.Completed != 1 || s.Requeued != 1 {
		t.Errorf("interleave accounting wrong: %+v", s)
	}
}

// TestStreamBatchRequestCount is the efficiency contract behind the
// streaming redesign: draining an N-cell sweep must cost O(result batches)
// HTTP requests, not O(N). All jobs are completed before the first Execute
// waits, so every result arrives in the very first batch and the request
// count stays flat no matter how wide the matrix is.
func TestStreamBatchRequestCount(t *testing.T) {
	server := NewServer(ServerOptions{})
	inner := server.Handler()
	var resultPolls, total atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		total.Add(1)
		if strings.HasSuffix(req.URL.Path, "/results") {
			resultPolls.Add(1)
		}
		inner.ServeHTTP(w, req)
	}))
	defer srv.Close()

	jobs := smallJobs(t) // two benches x all modes: comfortably > 4 cells
	// A long poll window keeps the stream parked at the log tip until Close,
	// so the request count below is deterministic.
	re := &RemoteExecutor{URL: srv.URL, PollWait: 30 * time.Second}
	if err := re.Submit(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	stop := startWorkers(t, srv.URL, 2)
	deadline := time.Now().Add(60 * time.Second)
	for server.Stats().Completed < uint64(len(jobs)) {
		if time.Now().After(deadline) {
			stop()
			t.Fatalf("fleet never drained the matrix: %+v", server.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()

	before := total.Load()
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := re.Execute(context.Background(), i, j)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
			} else if res == nil || res.Committed == 0 {
				t.Errorf("job %d: empty result", i)
			}
		}()
	}
	wg.Wait()
	if err := re.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	polls := resultPolls.Load()
	drain := total.Load() - before
	if polls >= int32(len(jobs))/2 {
		t.Errorf("draining %d pre-completed cells took %d result polls; want O(batches), a handful at most", len(jobs), polls)
	}
	// The whole drain — results plus the final DELETE — must stay far below
	// one request per cell (the per-index polling this design replaced).
	if drain >= int32(len(jobs)) {
		t.Errorf("draining %d cells took %d requests; want O(batches) not O(cells)", len(jobs), drain)
	}
	if got := server.Stats().ResultsStreamed; got != uint64(len(jobs)) {
		t.Errorf("results_streamed counter %d, want %d", got, len(jobs))
	}
}
