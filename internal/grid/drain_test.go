package grid

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/sweep"
)

// TestDrain: Drain() must (1) stop granting leases so workers see an idle
// queue, (2) wake parked result long-polls immediately so client requests
// finish inside the drain deadline, and (3) keep accepting results for
// leases already in flight — a granted job is finished work, not collateral.
func TestDrain(t *testing.T) {
	server := NewServer(ServerOptions{})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()
	ctx := context.Background()

	var resp SubmitResponse
	if _, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: smallJobs(t, "exchange2")[:2]}, &resp); err != nil {
		t.Fatal(err)
	}
	inflight := leaseOne(t, srv.URL)

	// Park a long-poll at the log tip, then drain under it.
	type pollOut struct {
		status  int
		batch   ResultBatch
		err     error
		elapsed time.Duration
	}
	done := make(chan pollOut, 1)
	go func() {
		start := time.Now()
		var batch ResultBatch
		status, err := doJSON(ctx, srv.Client(), http.MethodGet,
			srv.URL+"/v1/sweeps/"+resp.SweepID+"/results?after=0&wait=30s", "", nil, &batch)
		done <- pollOut{status, batch, err, time.Since(start)}
	}()
	time.Sleep(100 * time.Millisecond) // let the poll park
	server.Drain()

	select {
	case out := <-done:
		if out.err != nil || out.status != http.StatusOK {
			t.Fatalf("drained poll: status %d, %v", out.status, out.err)
		}
		if out.elapsed > 5*time.Second {
			t.Fatalf("poll held %v through drain; want immediate return", out.elapsed)
		}
		if len(out.batch.Results) != 0 || out.batch.Done {
			t.Fatalf("drained poll returned %+v, want the current (empty) batch", out.batch)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked long-poll never woke on drain")
	}

	// No new leases while draining: the queue still has an unleased job, but
	// workers must see 204 (idle), not work that would outlive the process.
	status, err := doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/lease", "",
		LeaseRequest{Worker: "late"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusNoContent {
		t.Fatalf("lease while draining: got %d, want 204", status)
	}

	// The in-flight lease still lands its result.
	status, err = doJSON(ctx, srv.Client(), http.MethodPost, srv.URL+"/v1/result", "",
		ResultRequest{LeaseID: inflight.LeaseID, Result: sweep.Result{
			Index: inflight.Index, Job: inflight.Job,
			Res: &core.Results{Stats: &pipeline.Stats{Committed: 3}},
		}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight result during drain: got %d, want 200", status)
	}
}

// flakyDial fails its first n round-trips with a connection-refused-shaped
// error, then delegates — a coordinator a few seconds into a restart.
type flakyDial struct {
	remaining int
	calls     int
	inner     http.RoundTripper
}

func (f *flakyDial) RoundTrip(req *http.Request) (*http.Response, error) {
	f.calls++
	if f.remaining > 0 {
		f.remaining--
		return nil, errors.New("dial tcp 127.0.0.1:0: connect: connection refused")
	}
	return f.inner.RoundTrip(req)
}

// TestReportRetriesConnectionRefused: the detached final report a
// shutting-down worker sends must ride out a coordinator that refuses
// connections for the first attempts — throwing the result away forces
// another worker to wait out the lease TTL and re-simulate the cell.
func TestReportRetriesConnectionRefused(t *testing.T) {
	var accepted int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		accepted++
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	flaky := &flakyDial{remaining: 3, inner: srv.Client().Transport}
	w := &Worker{
		Coordinator: srv.URL,
		sleepFn:     func(ctx context.Context, d time.Duration) bool { return true },
	}
	err := w.report(context.Background(), &http.Client{Transport: flaky}, "lease-1", sweep.Result{
		Index: 0, Res: &core.Results{Stats: &pipeline.Stats{Committed: 1}},
	})
	if err != nil {
		t.Fatalf("report through 3 refused connections: %v", err)
	}
	if flaky.calls != 4 || accepted != 1 {
		t.Fatalf("report made %d attempts (%d accepted), want 4 and 1", flaky.calls, accepted)
	}
	// The schedule itself must fit the 10s detached budget even when every
	// attempt fails: 7 pauses of the transport policy.
	var total time.Duration
	for i := 0; i < 7; i++ {
		total += reportTransport.Pause(i)
	}
	if total >= 10*time.Second {
		t.Fatalf("worst-case report backoff %v exceeds the 10s detached budget", total)
	}
}
