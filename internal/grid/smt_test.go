package grid

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"safespec/internal/sweep"

	// Registers the attack kernels (smt-btb-v2) as named benches, as the
	// worker binary does.
	_ "safespec/internal/attacks"
)

// TestGridSMTEndToEnd: Threads=2 cells survive the wire. A distributed run
// over two worker processes must produce byte-identical JSONL to a local
// run of the same SMT matrix — the thread count rides inside Job.Config,
// and the registered attack kernel must resolve on the leasing worker.
func TestGridSMTEndToEnd(t *testing.T) {
	spec := sweep.MatrixSpec{
		Benchmarks:   []string{"exchange2", "smt-btb-v2"},
		Instructions: 2_000,
		MaxCycles:    2_000_000,
		Threads:      []int{2},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(exec sweep.Executor, workers int) string {
		var jsonl bytes.Buffer
		if _, err := sweep.Run(context.Background(), jobs, sweep.Options{
			Workers:  workers,
			Executor: exec,
			Sinks:    []sweep.Sink{sweep.NewJSONL(&jsonl)},
		}); err != nil {
			t.Fatal(err)
		}
		return jsonl.String()
	}

	local := runWith(nil, 0)

	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2)
	defer stop()

	remote := runWith(coord, len(jobs))
	if local != remote {
		t.Errorf("distributed SMT output differs from local:\n%s\nvs\n%s", local, remote)
	}
}
