package grid

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Fleet self-healing: the coordinator side of job containment.
//
// Workers contain failing jobs (panic recovery, a lease-TTL watchdog, a
// soft memory guard) and report them as structured incidents instead of
// dying. The coordinator folds those incidents into two defenses:
//
//   - Poison-job quarantine: a job that draws incidents from QuarantineAfter
//     distinct workers is completed immediately with a deterministic error
//     row, instead of marching through every worker until MaxAttempts burns
//     out fleet-wide.
//
//   - Worker health scoring: every worker contact (lease poll, heartbeat,
//     result) refreshes a registry entry; lease expiries, incidents and
//     checksum failures add penalty points that decay with a half-life.
//     A worker whose decayed penalty crosses UnhealthyAfter is refused
//     leases while at least one healthy worker is live — and granted
//     anyway when none is, so a degraded fleet never deadlocks.
//
// Hedged tail leases (see maybeHedgeLocked in grid.go) reuse the same
// registry: only a healthy poller can trigger a hedge, so the duplicate
// lease lands on a worker likely to finish it.

// Incident kinds a worker reports. The taxonomy is closed: the coordinator
// rejects other kinds so a typo'd client cannot grow unbounded label sets.
const (
	// IncidentPanic: the job (or its executor wrapper chain) panicked; the
	// worker recovered in the slot and kept running.
	IncidentPanic = "panic"
	// IncidentTimeout: the job outlived the worker's watchdog (90% of the
	// lease TTL); the worker abandoned the wait before the coordinator's
	// TTL fired, so the incident beats the silent requeue.
	IncidentTimeout = "timeout"
	// IncidentMemory: the process heap crossed the worker's soft memory
	// limit while the job ran.
	IncidentMemory = "memory"
)

// validIncidentKind reports whether k is one of the closed incident kinds.
func validIncidentKind(k string) bool {
	return k == IncidentPanic || k == IncidentTimeout || k == IncidentMemory
}

// workerHeader carries the worker's base id (Worker.ID, without the lease
// loop suffix) on every request. It exists so the coordinator can attribute
// a checksum-failed request — whose body is unreadable by definition — to
// the sending worker's health record.
const workerHeader = "X-Safespec-Worker"

// IncidentRequest reports one contained job failure (POST /v1/incident).
// The lease is released server-side: the job requeues, or quarantines once
// enough distinct workers have reported against it.
type IncidentRequest struct {
	LeaseID string `json:"lease_id"`
	// Worker is the reporting worker's base id (matches workerHeader).
	Worker string `json:"worker"`
	// Kind is one of IncidentPanic, IncidentTimeout, IncidentMemory.
	Kind string `json:"kind"`
	// Message describes the failure. Workers keep it deterministic (no
	// timestamps, no addresses) so a quarantined job's error row is
	// byte-stable across runs when the underlying fault is.
	Message string `json:"message"`
}

// HeartbeatRequest is a worker's liveness beacon (POST /v1/heartbeat),
// complementing the implicit heartbeat every lease poll provides: a worker
// saturated with long jobs stops polling but keeps beating.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	// Busy counts lease slots currently executing a job.
	Busy int `json:"busy"`
	// HeapBytes is the process's live heap at beat time (0 when unknown).
	HeapBytes uint64 `json:"heap_bytes,omitempty"`
}

// taskIncident is one incident recorded against a job, the unit of the
// quarantine decision (distinct Worker values are counted against
// Options.QuarantineAfter).
type taskIncident struct {
	Worker, Kind, Message string
}

// Health scoring constants. Penalties are points added to a worker's
// decaying score; Options.UnhealthyAfter (default 4) is the refusal
// threshold, so e.g. two lease expiries inside one half-life sideline a
// worker while a single contained incident does not.
const (
	expiryPenalty   = 2.0 // a lease lost to TTL: crash, wedge or partition
	incidentPenalty = 2.0 // a contained job failure reported by the worker
	checksumPenalty = 1.0 // a request body damaged in transit from the worker
	// workerLiveWindow bounds how stale a "healthy" worker's last contact
	// may be when deciding whether an unhealthy poller can be refused: a
	// worker nobody has heard from cannot take the refused job.
	workerLiveWindow = time.Minute
	// workerForget drops registry entries idle this long, so a persistent
	// coordinator's health map holds steady across fleet churn.
	workerForget = time.Hour
)

// workerHealth is one worker's registry entry, guarded by Coordinator.mu.
type workerHealth struct {
	firstSeen time.Time
	lastSeen  time.Time // any contact: lease poll, heartbeat, result, incident
	lastBeat  time.Time // explicit /v1/heartbeat only
	busy      int       // slots executing, from the last heartbeat
	heap      uint64    // heap bytes, from the last heartbeat

	leased, completed             uint64
	expiries, incidents, sumFails uint64

	// penalty is the health score at penaltyAt; read it through
	// penaltyNow so the half-life decay is always applied.
	penalty   float64
	penaltyAt time.Time
}

// penaltyNow returns the penalty decayed to now: each HealthHalfLife
// elapsed since the last update halves it, so old sins wash out and a
// recovered worker rejoins the lease rotation without operator action.
func (wh *workerHealth) penaltyNow(now time.Time, halfLife time.Duration) float64 {
	if wh.penalty == 0 || halfLife <= 0 {
		return wh.penalty
	}
	dt := now.Sub(wh.penaltyAt)
	if dt <= 0 {
		return wh.penalty
	}
	return wh.penalty * math.Exp2(-float64(dt)/float64(halfLife))
}

// WorkerHealthSnapshot is one registry entry in a Snapshot, served on
// /v1/stats and rendered on /status and /metrics.
type WorkerHealthSnapshot struct {
	ID string `json:"id"`
	// Healthy is the lease-grant gate: decayed penalty under the
	// UnhealthyAfter threshold.
	Healthy bool    `json:"healthy"`
	Penalty float64 `json:"penalty"`
	Busy    int     `json:"busy"`
	// LastSeenMS is milliseconds since the worker's last contact.
	LastSeenMS    int64  `json:"last_seen_ms"`
	Leased        uint64 `json:"leased"`
	Completed     uint64 `json:"completed"`
	Expiries      uint64 `json:"expiries"`
	Incidents     uint64 `json:"incidents"`
	ChecksumFails uint64 `json:"checksum_fails"`
	HeapBytes     uint64 `json:"heap_bytes,omitempty"`
}

// touchWorkerLocked returns the registry entry for a worker id, creating
// it on first contact and refreshing its liveness clock. Caller holds c.mu;
// an empty id (a client that predates the worker header and sent no worker
// label) is not tracked.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerHealth {
	if id == "" {
		return nil
	}
	wh := c.workers[id]
	if wh == nil {
		wh = &workerHealth{firstSeen: now, penaltyAt: now}
		c.workers[id] = wh
	}
	wh.lastSeen = now
	c.pruneWorkersLocked(now)
	return wh
}

// penalizeLocked adds points to a worker's decaying score. Caller holds
// c.mu; a nil entry (untracked worker) is a no-op.
func (c *Coordinator) penalizeLocked(wh *workerHealth, points float64, now time.Time) {
	if wh == nil {
		return
	}
	wh.penalty = wh.penaltyNow(now, c.opts.HealthHalfLife) + points
	wh.penaltyAt = now
}

// healthyLocked is the lease-grant gate for one worker.
func (c *Coordinator) healthyLocked(wh *workerHealth, now time.Time) bool {
	if wh == nil {
		return true // untracked pollers are not refused
	}
	return wh.penaltyNow(now, c.opts.HealthHalfLife) < c.opts.UnhealthyAfter
}

// anyOtherHealthyLocked reports whether a worker other than `except` is
// both healthy and recently in contact. It gates every refusal decision:
// deprioritizing a sick worker only makes sense while someone else can
// take the work, otherwise the queue would stall on a degraded fleet.
func (c *Coordinator) anyOtherHealthyLocked(except string, now time.Time) bool {
	for id, wh := range c.workers {
		if id == except {
			continue
		}
		if now.Sub(wh.lastSeen) <= workerLiveWindow && c.healthyLocked(wh, now) {
			return true
		}
	}
	return false
}

// noteChecksumFailure attributes one damaged-in-transit request body to a
// worker's health record. The body is unparseable by definition, so the
// attribution rides the workerHeader alone; requests without it (old
// workers, clients) go unattributed.
func (c *Coordinator) noteChecksumFailure(id string) {
	if id == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	wh := c.touchWorkerLocked(id, now)
	wh.sumFails++
	c.penalizeLocked(wh, checksumPenalty, now)
}

// pruneWorkersLocked forgets registry entries idle past workerForget, at
// most once a minute. Caller holds c.mu.
func (c *Coordinator) pruneWorkersLocked(now time.Time) {
	if now.Sub(c.lastPrune) < time.Minute {
		return
	}
	c.lastPrune = now
	for id, wh := range c.workers {
		if now.Sub(wh.lastSeen) > workerForget {
			delete(c.workers, id)
		}
	}
}

// workerSnapshotsLocked renders the registry for Stats, sorted by id.
// Caller holds c.mu.
func (c *Coordinator) workerSnapshotsLocked(now time.Time) []WorkerHealthSnapshot {
	if len(c.workers) == 0 {
		return nil
	}
	out := make([]WorkerHealthSnapshot, 0, len(c.workers))
	for id, wh := range c.workers {
		out = append(out, WorkerHealthSnapshot{
			ID:            id,
			Healthy:       c.healthyLocked(wh, now),
			Penalty:       math.Round(wh.penaltyNow(now, c.opts.HealthHalfLife)*100) / 100,
			Busy:          wh.busy,
			LastSeenMS:    now.Sub(wh.lastSeen).Milliseconds(),
			Leased:        wh.leased,
			Completed:     wh.completed,
			Expiries:      wh.expiries,
			Incidents:     wh.incidents,
			ChecksumFails: wh.sumFails,
			HeapBytes:     wh.heap,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// distinctIncidentWorkersLocked counts how many distinct workers have
// reported an incident against t — the quarantine measure. Duplicate
// reports from one worker (or a replayed journal) cannot inflate it.
func distinctIncidentWorkersLocked(t *task) int {
	seen := make(map[string]struct{}, len(t.incidents))
	for _, inc := range t.incidents {
		seen[inc.Worker] = struct{}{}
	}
	return len(seen)
}

// quarantineError builds the deterministic error row for a quarantined
// job: job label, the final incident's kind and message, and the distinct
// worker count — never wall-clock times, worker ids, or attempt counters,
// so the row is byte-stable across runs whenever the underlying fault is
// deterministic.
func quarantineError(t *task, distinct int) error {
	last := t.incidents[len(t.incidents)-1]
	return fmt.Errorf("grid: %s: quarantined as poison after %s incidents on %d workers: %s",
		t.job, last.Kind, distinct, last.Message)
}
