package grid

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"safespec/internal/sweep"
)

// The coordinator's durable state lives under one directory (-state-dir):
//
//	<dir>/VERSION        format version, one decimal line
//	<dir>/snapshot.json  full sweep state at the last compaction (atomic rename)
//	<dir>/journal.wal    mutations appended since the snapshot
//
// Every sweep mutation — creation, job enqueue, result delivery, release —
// is appended to the journal as one framed record:
//
//	[4B big-endian payload length][4B big-endian CRC32-IEEE][JSON payload]
//
// A restart replays snapshot + journal; a torn or corrupt tail (the frame a
// kill -9 interrupted) is discarded cleanly, losing at most the final
// un-acknowledged append. Replay is idempotent, so duplicate records — a
// crash between snapshot rename and journal truncation replays both copies
// — coalesce instead of corrupting state. After replay the store compacts:
// the merged state becomes the new snapshot and the journal restarts empty.
//
// Appends are NOT fsynced: surviving kill -9 needs the bytes in the kernel
// page cache, not on the platter, and a per-result fsync would gate sweep
// throughput on disk latency. Snapshots are synced before rename, so the
// compacted baseline survives power loss too; journal appends since the
// last snapshot trade that durability for throughput deliberately.

// stateFormatVersion is the on-disk format version of both files. Bump it
// when the record or snapshot encoding changes incompatibly.
const stateFormatVersion = 1

// Journal record operations.
const (
	opOpen   = "open"   // sweep created (id, nonce, tenant name)
	opJob    = "job"    // job enqueued into a sweep
	opResult = "result" // terminal result appended to a sweep's completion log
	opClose  = "close"  // sweep released (client close or TTL abandonment)
	// opIncident records one contained worker failure against a job, so
	// quarantine history survives a restart (a poison job must not get a
	// fresh set of K workers to burn after every coordinator crash).
	// Readers predating the op ignore it, so the format version stays 1.
	opIncident = "incident"
)

// journalRecord is one journal frame's payload. Exactly the fields for its
// Op are set; the rest stay at their zero values and are omitted.
type journalRecord struct {
	Op     string        `json:"op"`
	Sweep  string        `json:"sweep"`
	Nonce  string        `json:"nonce,omitempty"`
	Tenant string        `json:"tenant,omitempty"`
	Index  int           `json:"index,omitempty"`
	Job    *sweep.Job    `json:"job,omitempty"`
	Result *sweep.Result `json:"result,omitempty"`
	// Worker, Kind and Message carry an opIncident's taskIncident.
	Worker  string `json:"worker,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Message string `json:"message,omitempty"`
}

// stateSnapshot is the snapshot.json format.
type stateSnapshot struct {
	Version int             `json:"version"`
	Sweeps  []sweepSnapshot `json:"sweeps"`
}

// sweepSnapshot is one sweep's durable state: identity, ownership, the
// submitted jobs, and the completion log in completion order (the order
// client result cursors index into).
type sweepSnapshot struct {
	ID     string         `json:"id"`
	Nonce  string         `json:"nonce,omitempty"`
	Tenant string         `json:"tenant,omitempty"`
	Jobs   []jobEntry     `json:"jobs"`
	Log    []sweep.Result `json:"log"`
	// Incidents is the contained-failure history of jobs not yet
	// completed, feeding the quarantine threshold across restarts (history
	// for completed jobs is dropped at compaction).
	Incidents []incidentEntry `json:"incidents,omitempty"`
}

// jobEntry is one submitted job keyed by its sweep index.
type jobEntry struct {
	Index int       `json:"index"`
	Job   sweep.Job `json:"job"`
}

// incidentEntry is one recorded incident keyed by its job's sweep index.
type incidentEntry struct {
	Index   int    `json:"index"`
	Worker  string `json:"worker"`
	Kind    string `json:"kind"`
	Message string `json:"message,omitempty"`
}

// recoveredSweep is one sweep reconstructed by replay, in a form the
// Server adopts directly.
type recoveredSweep struct {
	ID, Nonce, Tenant string
	Jobs              map[int]sweep.Job
	Log               []sweep.Result
	Incidents         map[int][]taskIncident
	logged            map[int]bool // indexes already in Log (replay dedupe)
}

// stateStore journals sweep mutations under a state directory. Its mutex
// is the innermost lock in the server: appends happen while holding
// Server.mu and/or sweepState.mu, never the other way around — in
// particular a result is journaled inside the same sweepState.mu critical
// section that appends it to the in-memory completion log, so journal
// order always equals log order and recovered cursors stay valid.
type stateStore struct {
	dir string

	mu     sync.Mutex
	f      *os.File // journal.wal, open for append
	closed bool
}

// openState opens (or creates) a state directory, replays its snapshot and
// journal, compacts the merged state into a fresh snapshot, and returns
// the store ready for appends plus the recovered sweeps (in original
// creation order) and the count of torn tail bytes discarded.
func openState(dir string) (*stateStore, []recoveredSweep, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("grid: state dir: %w", err)
	}
	vpath := filepath.Join(dir, "VERSION")
	if b, err := os.ReadFile(vpath); err == nil {
		v, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil || v != stateFormatVersion {
			return nil, nil, 0, fmt.Errorf("grid: state dir %s holds format %q, this binary writes format %d",
				dir, strings.TrimSpace(string(b)), stateFormatVersion)
		}
	} else if os.IsNotExist(err) {
		if werr := os.WriteFile(vpath, []byte(strconv.Itoa(stateFormatVersion)+"\n"), 0o644); werr != nil {
			return nil, nil, 0, fmt.Errorf("grid: state dir: %w", werr)
		}
	} else {
		return nil, nil, 0, fmt.Errorf("grid: state dir: %w", err)
	}

	var snap stateSnapshot
	spath := filepath.Join(dir, "snapshot.json")
	if b, err := os.ReadFile(spath); err == nil {
		if jerr := json.Unmarshal(b, &snap); jerr != nil {
			// snapshot.json is only ever published by atomic rename, so a
			// parse failure means external damage — refuse rather than
			// silently forget every sweep.
			return nil, nil, 0, fmt.Errorf("grid: corrupt snapshot %s: %w", spath, jerr)
		}
		if snap.Version != stateFormatVersion {
			return nil, nil, 0, fmt.Errorf("grid: snapshot %s holds format %d, this binary writes format %d",
				spath, snap.Version, stateFormatVersion)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("grid: state dir: %w", err)
	}

	jpath := filepath.Join(dir, "journal.wal")
	records, torn, err := readJournal(jpath)
	if err != nil {
		return nil, nil, 0, err
	}
	recovered := replayState(snap, records)

	st := &stateStore{dir: dir}
	// Compact: the merged state becomes the new baseline snapshot, and the
	// journal restarts empty (also clipping any torn tail off disk).
	if err := st.writeSnapshot(recoveredSnapshots(recovered)); err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("grid: state dir: %w", err)
	}
	st.f = f
	return st, recovered, torn, nil
}

// readJournal parses every intact frame of the journal, reporting how many
// trailing bytes were discarded as torn or corrupt. A missing journal is
// an empty one.
func readJournal(path string) ([]journalRecord, int, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("grid: read journal: %w", err)
	}
	var records []journalRecord
	off := 0
	for {
		if off+8 > len(b) {
			break
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		sum := binary.BigEndian.Uint32(b[off+4:])
		if off+8+n > len(b) {
			break // torn final frame
		}
		payload := b[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt frame: everything after it is suspect too
		}
		var rec journalRecord
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			break
		}
		records = append(records, rec)
		off += 8 + n
	}
	return records, len(b) - off, nil
}

// replayState applies the journal on top of the snapshot, idempotently:
// duplicate opens, job re-adds and result re-deliveries (the crash window
// between snapshot rename and journal truncation replays records the
// snapshot already holds) coalesce to one copy, in original order.
func replayState(snap stateSnapshot, records []journalRecord) []recoveredSweep {
	byID := make(map[string]*recoveredSweep)
	var order []string
	add := func(id, nonce, tenant string) *recoveredSweep {
		if rs, ok := byID[id]; ok {
			return rs
		}
		rs := &recoveredSweep{ID: id, Nonce: nonce, Tenant: tenant,
			Jobs: make(map[int]sweep.Job), Incidents: make(map[int][]taskIncident),
			logged: make(map[int]bool)}
		byID[id] = rs
		order = append(order, id)
		return rs
	}
	for _, ss := range snap.Sweeps {
		rs := add(ss.ID, ss.Nonce, ss.Tenant)
		for _, je := range ss.Jobs {
			rs.Jobs[je.Index] = je.Job
		}
		for _, res := range ss.Log {
			if !rs.logged[res.Index] {
				rs.logged[res.Index] = true
				rs.Log = append(rs.Log, res)
			}
		}
		for _, ie := range ss.Incidents {
			rs.Incidents[ie.Index] = append(rs.Incidents[ie.Index],
				taskIncident{Worker: ie.Worker, Kind: ie.Kind, Message: ie.Message})
		}
	}
	for _, rec := range records {
		switch rec.Op {
		case opOpen:
			add(rec.Sweep, rec.Nonce, rec.Tenant)
		case opJob:
			if rs, ok := byID[rec.Sweep]; ok && rec.Job != nil {
				if _, dup := rs.Jobs[rec.Index]; !dup {
					rs.Jobs[rec.Index] = *rec.Job
				}
			}
		case opResult:
			if rs, ok := byID[rec.Sweep]; ok && rec.Result != nil {
				if !rs.logged[rec.Result.Index] {
					rs.logged[rec.Result.Index] = true
					rs.Log = append(rs.Log, *rec.Result)
				}
			}
		case opIncident:
			// Quarantine counts DISTINCT workers, so the duplicate entries a
			// snapshot-overlap replay produces cannot tip a job over the
			// threshold; no dedupe needed.
			if rs, ok := byID[rec.Sweep]; ok && rec.Worker != "" {
				rs.Incidents[rec.Index] = append(rs.Incidents[rec.Index],
					taskIncident{Worker: rec.Worker, Kind: rec.Kind, Message: rec.Message})
			}
		case opClose:
			if _, ok := byID[rec.Sweep]; ok {
				delete(byID, rec.Sweep)
			}
		}
	}
	out := make([]recoveredSweep, 0, len(byID))
	for _, id := range order {
		if rs, ok := byID[id]; ok {
			out = append(out, *rs)
		}
	}
	return out
}

// recoveredSnapshots renders recovered sweeps back into snapshot form,
// with jobs sorted by index so compaction is deterministic.
func recoveredSnapshots(recovered []recoveredSweep) []sweepSnapshot {
	out := make([]sweepSnapshot, 0, len(recovered))
	for _, rs := range recovered {
		ss := sweepSnapshot{ID: rs.ID, Nonce: rs.Nonce, Tenant: rs.Tenant, Log: rs.Log}
		for idx, j := range rs.Jobs {
			ss.Jobs = append(ss.Jobs, jobEntry{Index: idx, Job: j})
		}
		sort.Slice(ss.Jobs, func(i, j int) bool { return ss.Jobs[i].Index < ss.Jobs[j].Index })
		for idx, hist := range rs.Incidents {
			if rs.logged[idx] {
				continue // the job completed; its incident history is spent
			}
			for _, ti := range hist {
				ss.Incidents = append(ss.Incidents, incidentEntry{
					Index: idx, Worker: ti.Worker, Kind: ti.Kind, Message: ti.Message})
			}
		}
		sort.Slice(ss.Incidents, func(i, j int) bool {
			a, b := ss.Incidents[i], ss.Incidents[j]
			if a.Index != b.Index {
				return a.Index < b.Index
			}
			return a.Worker < b.Worker
		})
		out = append(out, ss)
	}
	return out
}

// append journals one mutation. Failures are returned for the caller to
// log; the in-memory state is already authoritative, so a failed append
// degrades durability, not correctness of the running process.
func (st *stateStore) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("grid: journal encode: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("grid: journal closed")
	}
	// One Write call per frame: short writes on a local file are I/O
	// errors, not partial successes, and frame+payload going down together
	// keeps a concurrent append from interleaving mid-frame.
	buf := make([]byte, 0, 8+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	if _, err := st.f.Write(buf); err != nil {
		return fmt.Errorf("grid: journal append: %w", err)
	}
	return nil
}

// writeSnapshot publishes sweeps as snapshot.json via temp+fsync+rename,
// so a crash at any point leaves either the old or the new snapshot intact.
func (st *stateStore) writeSnapshot(sweeps []sweepSnapshot) error {
	if sweeps == nil {
		sweeps = []sweepSnapshot{}
	}
	b, err := json.Marshal(stateSnapshot{Version: stateFormatVersion, Sweeps: sweeps})
	if err != nil {
		return fmt.Errorf("grid: snapshot encode: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("grid: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("grid: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("grid: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("grid: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, "snapshot.json")); err != nil {
		return fmt.Errorf("grid: snapshot: %w", err)
	}
	return nil
}

// close writes a final snapshot of sweeps, truncates the journal (its
// contents are folded into the snapshot) and closes the file. Part of
// graceful shutdown; a kill -9 skips it and recovers from the journal.
func (st *stateStore) close(sweeps []sweepSnapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	err := st.writeSnapshot(sweeps)
	if terr := st.f.Truncate(0); err == nil && terr != nil {
		err = fmt.Errorf("grid: journal truncate: %w", terr)
	}
	if cerr := st.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("grid: journal close: %w", cerr)
	}
	return err
}
