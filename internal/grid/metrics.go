package grid

import (
	"io"
	"net/http"
	"time"

	"safespec/internal/obs"
	"safespec/internal/sweep"
)

// newRegistry builds the server's /metrics registry. The counter and gauge
// families mirror the accounting snapshot at scrape time — one Stats()
// call per scrape, through the registry's OnCollect hook — so their values
// are exactly what /v1/stats reports. The span histograms are live: the
// coordinator's completion path observes every reported job's Timing, and
// it also wires that path up here (via Coordinator.observe).
func (s *Server) newRegistry() *obs.Registry {
	reg := obs.NewRegistry()

	pending := reg.Gauge("safespec_jobs_pending", "Jobs queued waiting for a worker lease.")
	leased := reg.Gauge("safespec_leases_active", "Leases currently held by workers.")
	expired := reg.Gauge("safespec_leases_expired_awaiting", "Timed-out leases still eligible for a late result.")
	granted := reg.Counter("safespec_leases_granted_total", "Leases handed to polling workers.")
	completed := reg.Counter("safespec_jobs_completed_total", "Jobs finished with a reported result.")
	requeued := reg.Counter("safespec_leases_requeued_total", "Leases lost to TTL expiry and requeued.")
	failed := reg.Counter("safespec_jobs_failed_total", "Jobs failed after exhausting their lease attempts.")

	incidents := reg.Counter("safespec_incidents_total", "Contained worker incidents (panic, timeout, memory) reported to the coordinator.")
	quarantined := reg.Counter("safespec_jobs_quarantined_total", "Jobs quarantined as poison after incidents on distinct workers.")
	hedged := reg.Counter("safespec_leases_hedged_total", "Duplicate hedge leases issued against slow tail leases.")
	workersKnown := reg.Gauge("safespec_workers_known", "Workers seen by the health registry within the forget window.")
	workersUnhealthy := reg.Gauge("safespec_workers_unhealthy", "Known workers currently scored unhealthy for lease grants.")

	sweeps := reg.Gauge("safespec_sweeps_active", "Sweeps currently open on the server.")
	submitted := reg.Counter("safespec_sweeps_submitted_total", "Sweeps opened over the server's lifetime.")
	abandoned := reg.Counter("safespec_sweeps_abandoned_total", "Sweeps abandoned after their client went idle past the TTL.")
	streamed := reg.Counter("safespec_results_streamed_total", "Results delivered through batch streaming responses.")
	authFail := reg.Counter("safespec_auth_failures_total", "Requests rejected with 401 (unknown bearer token).")

	tenantSweeps := reg.GaugeVec("safespec_tenant_sweeps_active", "Open sweeps per tenant.", "tenant")
	tenantReqs := reg.CounterVec("safespec_tenant_requests_total", "Authenticated requests per tenant.", "tenant")
	tenantLimited := reg.CounterVec("safespec_tenant_rate_limited_total", "Requests rejected with 429 per tenant.", "tenant")
	tenantQuota := reg.CounterVec("safespec_tenant_quota_rejected_total", "Sweep submissions rejected over quota per tenant.", "tenant")

	queueWait := reg.Histogram("safespec_job_queue_wait_seconds",
		"Per-job wait between enqueue and the completing lease grant.", nil)
	cacheTime := reg.Histogram("safespec_job_cache_lookup_seconds",
		"Per-job worker-side result-cache lookup and store time.", nil)
	simTime := reg.Histogram("safespec_job_simulate_seconds",
		"Per-job worker-side simulation time.", nil)
	reportOverhead := reg.Histogram("safespec_job_report_overhead_seconds",
		"Per-job report overhead: lease round trip net of worker-accounted time.", nil)

	reg.OnCollect(func() {
		snap := s.Stats()
		pending.Set(int64(snap.Pending))
		leased.Set(int64(snap.Leased))
		expired.Set(int64(snap.Expired))
		granted.Set(snap.Granted)
		completed.Set(snap.Completed)
		requeued.Set(snap.Requeued)
		failed.Set(snap.Failed)
		incidents.Set(snap.Incidents)
		quarantined.Set(snap.Quarantined)
		hedged.Set(snap.Hedged)
		workersKnown.Set(int64(len(snap.Workers)))
		var sick int64
		for _, ws := range snap.Workers {
			if !ws.Healthy {
				sick++
			}
		}
		workersUnhealthy.Set(sick)
		sweeps.Set(int64(snap.Sweeps))
		submitted.Set(snap.SweepsSubmitted)
		abandoned.Set(snap.SweepsAbandoned)
		streamed.Set(snap.ResultsStreamed)
		authFail.Set(snap.AuthFailures)
		for _, ts := range snap.Tenants {
			tenantSweeps.With(ts.Name).Set(int64(ts.ActiveSweeps))
			tenantReqs.With(ts.Name).Set(ts.Requests)
			tenantLimited.With(ts.Name).Set(ts.RateLimited)
			tenantQuota.With(ts.Name).Set(ts.QuotaRejected)
		}
	})

	s.coord.observe = func(r sweep.Result) {
		if r.Timing == nil {
			return
		}
		sec := func(ns int64) float64 { return time.Duration(ns).Seconds() }
		queueWait.Observe(sec(r.Timing.QueueNS))
		if r.Timing.CacheNS > 0 {
			cacheTime.Observe(sec(r.Timing.CacheNS))
		}
		if r.Timing.SimulateNS > 0 {
			simTime.Observe(sec(r.Timing.SimulateNS))
		}
		reportOverhead.Observe(sec(r.Timing.ReportNS))
	}

	return reg
}

// WriteMetrics renders the server's accounting in the Prometheus text
// exposition format (version 0.0.4): coordinator lease/job counters, sweep
// lifecycle counters, per-tenant request/limit counters, and per-job span
// histograms under the `safespec_` namespace. It is mounted (with the
// /status page) on the operations port — the same dedicated listener as
// pprof, never the authenticated /v1/* mux — so a scraper needs no tenant
// token and a leaked scrape config reveals none.
func (s *Server) WriteMetrics(w io.Writer) {
	s.reg.WritePrometheus(w)
}

// OpsHandler returns the unauthenticated operations surface mounted on the
// dedicated -pprof/ops listener: GET /metrics (Prometheus text format),
// GET /status (read-only live HTML), and the GET /healthz and GET /readyz
// probes. Keep that listener on loopback or a firewalled operations
// network — it is deliberately token-free so scrapers and dashboards need
// no tenant credential, and it exposes tenant names and sweep shapes
// (never tokens or results).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		s.WriteStatus(w)
	})
	// /healthz is liveness: the process is up and serving. /readyz is
	// readiness: state is loaded (main opens the journal before starting
	// this listener) and the server has not begun draining, so it is safe
	// to route new sweeps here.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		http.Redirect(w, req, "/status", http.StatusFound)
	})
	return mux
}
