package grid

import (
	"fmt"
	"io"
	"net/http"
)

// WriteMetrics renders the server's accounting in the Prometheus text
// exposition format (version 0.0.4): coordinator lease/job counters, sweep
// lifecycle counters, and per-tenant request/limit counters under the
// `safespec_` namespace. It is mounted (with the /status page) on the
// operations port — the same dedicated listener as pprof, never the
// authenticated /v1/* mux — so a scraper needs no tenant token and a
// leaked scrape config reveals none.
func (s *Server) WriteMetrics(w io.Writer) {
	snap := s.Stats()

	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("safespec_jobs_pending", "Jobs queued waiting for a worker lease.", snap.Pending)
	gauge("safespec_leases_active", "Leases currently held by workers.", snap.Leased)
	gauge("safespec_leases_expired_awaiting", "Timed-out leases still eligible for a late result.", snap.Expired)
	counter("safespec_leases_granted_total", "Leases handed to polling workers.", snap.Granted)
	counter("safespec_jobs_completed_total", "Jobs finished with a reported result.", snap.Completed)
	counter("safespec_leases_requeued_total", "Leases lost to TTL expiry and requeued.", snap.Requeued)
	counter("safespec_jobs_failed_total", "Jobs failed after exhausting their lease attempts.", snap.Failed)

	gauge("safespec_sweeps_active", "Sweeps currently open on the server.", snap.Sweeps)
	counter("safespec_sweeps_submitted_total", "Sweeps opened over the server's lifetime.", snap.SweepsSubmitted)
	counter("safespec_sweeps_abandoned_total", "Sweeps abandoned after their client went idle past the TTL.", snap.SweepsAbandoned)
	counter("safespec_results_streamed_total", "Results delivered through batch streaming responses.", snap.ResultsStreamed)
	counter("safespec_auth_failures_total", "Requests rejected with 401 (unknown bearer token).", snap.AuthFailures)

	if len(snap.Tenants) > 0 {
		tenantFamily := func(name, help, kind string, value func(TenantSnapshot) any) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
			for _, ts := range snap.Tenants {
				// %q escapes backslash, quote and newline exactly as the
				// exposition format requires for label values.
				fmt.Fprintf(w, "%s{tenant=%q} %v\n", name, ts.Name, value(ts))
			}
		}
		tenantFamily("safespec_tenant_sweeps_active", "Open sweeps per tenant.", "gauge",
			func(ts TenantSnapshot) any { return ts.ActiveSweeps })
		tenantFamily("safespec_tenant_requests_total", "Authenticated requests per tenant.", "counter",
			func(ts TenantSnapshot) any { return ts.Requests })
		tenantFamily("safespec_tenant_rate_limited_total", "Requests rejected with 429 per tenant.", "counter",
			func(ts TenantSnapshot) any { return ts.RateLimited })
		tenantFamily("safespec_tenant_quota_rejected_total", "Sweep submissions rejected over quota per tenant.", "counter",
			func(ts TenantSnapshot) any { return ts.QuotaRejected })
	}
}

// OpsHandler returns the unauthenticated operations surface mounted on the
// dedicated -pprof/ops listener: GET /metrics (Prometheus text format) and
// GET /status (read-only live HTML). Keep that listener on loopback or a
// firewalled operations network — it is deliberately token-free so
// scrapers and dashboards need no tenant credential, and it exposes tenant
// names and sweep shapes (never tokens or results).
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		s.WriteStatus(w)
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		http.Redirect(w, req, "/status", http.StatusFound)
	})
	return mux
}
