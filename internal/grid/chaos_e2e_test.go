package grid

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"safespec/internal/chaos"
	"safespec/internal/resultcache"
	"safespec/internal/sweep"
)

// TestChaosEndToEnd is the fault-tolerance acceptance property: with seeded
// fault injectors dropping, delaying, 500-ing, truncating and bit-flipping
// traffic on every wire path (worker lease/result, executor submit/stream)
// and corrupting result-cache reads, a distributed sweep must still produce
// JSONL output byte-identical to a local run — zero lost cells, zero
// duplicated cells, zero error rows. Retries, lease expiry, submission
// nonces, wire checksums and cache entry checksums each absorb one fault
// class; this test turns them all on at once.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e exercises real lease-TTL waits")
	}
	jobs := smallJobs(t)

	var localBuf bytes.Buffer
	if _, err := sweep.Run(context.Background(), jobs, sweep.Options{
		Sinks: []sweep.Sink{sweep.NewJSONL(&localBuf)},
	}); err != nil {
		t.Fatal(err)
	}
	local := localBuf.String()

	faults := chaos.Config{
		Drop:        0.10,
		Delay:       0.05,
		MaxDelay:    5 * time.Millisecond,
		Err500:      0.05,
		PartialBody: 0.05,
		FlipByte:    0.05,
	}
	seeded := func(seed int64) chaos.Config { c := faults; c.Seed = seed; return c }

	// A short lease TTL bounds how long a lease grant lost to a dropped
	// response stays stuck; generous MaxAttempts keeps repeated bad luck on
	// one job from converting into an error row.
	server := NewServer(ServerOptions{Lease: Options{LeaseTTL: time.Second, MaxAttempts: 10}})
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	// The workers share a result cache whose reads are corrupted at a high
	// rate: damaged entries must degrade to misses (re-simulation), never
	// poison a result.
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cacheInj := chaos.New(chaos.Config{Seed: 99, FlipByte: 0.25})
	cache.SetReadFault(cacheInj.Corrupt)
	// Pre-warm the cache so the grid run actually reads entries (and so
	// corrupted reads must degrade to re-simulation, not poisoned rows).
	warm := resultcache.NewExecutor(cache, nil)
	for i, j := range jobs {
		if _, err := warm.Execute(context.Background(), i, j); err != nil {
			t.Fatal(err)
		}
	}

	wctx, stopWorkers := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	injectors := []*chaos.Injector{cacheInj}
	for i := 0; i < 2; i++ {
		inj := chaos.New(seeded(int64(100 + i)))
		injectors = append(injectors, inj)
		w := &Worker{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("cw%d", i),
			Parallel:    2,
			Poll:        5 * time.Millisecond,
			Client:      &http.Client{Transport: inj.Transport(nil), Timeout: 30 * time.Second},
			Exec:        resultcache.NewExecutor(cache, nil),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker under chaos exited: %v", err)
			}
		}()
	}
	defer func() {
		stopWorkers()
		wg.Wait()
	}()

	execInj := chaos.New(seeded(42))
	injectors = append(injectors, execInj)
	re := &RemoteExecutor{
		URL:      srv.URL,
		PollWait: 250 * time.Millisecond,
		Client:   &http.Client{Transport: execInj.Transport(nil), Timeout: 90 * time.Second},
	}

	runCtx, cancelRun := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelRun()
	var remoteBuf bytes.Buffer
	results, err := sweep.Run(runCtx, jobs, sweep.Options{
		Workers:  len(jobs),
		Executor: re,
		Sinks:    []sweep.Sink{sweep.NewJSONL(&remoteBuf)},
	})
	if err != nil {
		t.Fatalf("sweep under chaos: %v", err)
	}
	// Close's DELETE rides the same chaotic client; a fault there affects
	// only sweep-TTL cleanup on the server, not the results under test.
	_ = re.Close()

	if len(results) != len(jobs) {
		t.Fatalf("sweep returned %d results for %d jobs", len(results), len(jobs))
	}
	seen := make(map[int]bool, len(results))
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("cell %d errored under chaos: %v", res.Index, res.Err)
		}
		if seen[res.Index] {
			t.Errorf("cell %d delivered twice", res.Index)
		}
		seen[res.Index] = true
	}
	if remoteBuf.String() != local {
		t.Errorf("chaos run diverged from local:\n%s\nvs\n%s", remoteBuf.String(), local)
	}

	// The run must actually have been chaotic: across all injectors, every
	// fault class fired at least once (the seeds above are chosen so ~5-10%%
	// rates over hundreds of requests make this overwhelmingly likely; a
	// zero here means the injector came unwired, not bad luck).
	var total chaos.Stats
	for _, inj := range injectors {
		st := inj.Stats()
		total.Drops += st.Drops
		total.Delays += st.Delays
		total.Errs += st.Errs
		total.Partials += st.Partials
		total.Flips += st.Flips
		total.Passed += st.Passed
	}
	if total.Drops == 0 || total.Errs == 0 || total.Flips == 0 {
		t.Errorf("chaos never fired: %+v", total)
	}
	if cs := cache.Stats(); cs.Errors == 0 {
		t.Logf("note: no cache entry was corrupted this run (stats %+v)", cs)
	}
}
