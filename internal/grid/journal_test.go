package grid

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"safespec/internal/core"
	"safespec/internal/pipeline"
	"safespec/internal/sweep"
)

// scriptRecords builds a realistic journal script: one sweep opened with a
// nonce, jobs enqueued, some results delivered, and a second sweep opened
// and closed (so replay must drop it).
func scriptRecords(t *testing.T) []journalRecord {
	t.Helper()
	jobs := smallJobs(t, "exchange2")
	if len(jobs) < 3 {
		t.Fatalf("need at least 3 jobs, have %d", len(jobs))
	}
	recs := []journalRecord{
		{Op: opOpen, Sweep: "s-aaaa", Nonce: "n-1", Tenant: "anonymous"},
	}
	for i, j := range jobs {
		recs = append(recs, journalRecord{Op: opJob, Sweep: "s-aaaa", Index: i, Job: &j})
	}
	recs = append(recs,
		journalRecord{Op: opOpen, Sweep: "s-bbbb", Nonce: "n-2", Tenant: "anonymous"},
		journalRecord{Op: opJob, Sweep: "s-bbbb", Index: 0, Job: &jobs[0]},
	)
	// Two results for the first sweep, delivered out of index order (the
	// completion log is completion-ordered, not index-ordered).
	for _, idx := range []int{1, 0} {
		recs = append(recs, journalRecord{Op: opResult, Sweep: "s-aaaa", Result: &sweep.Result{
			Index: idx, Job: jobs[idx],
			Res: &core.Results{Stats: &pipeline.Stats{Committed: uint64(idx + 1)}},
		}})
	}
	recs = append(recs, journalRecord{Op: opClose, Sweep: "s-bbbb"})
	return recs
}

// writeFrames renders records into the on-disk journal frame format.
func writeFrames(t *testing.T, recs []journalRecord) []byte {
	t.Helper()
	dir := t.TempDir()
	st, recovered, torn, err := openState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || torn != 0 {
		t.Fatalf("fresh dir recovered %d sweeps, %d torn bytes", len(recovered), torn)
	}
	for _, rec := range recs {
		if err := st.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Abandon the store without close(): the bytes on disk are exactly what
	// a kill -9 would leave behind.
	return b
}

// stateDirWithJournal stages a state dir holding only a journal — the
// layout a coordinator killed before its first snapshot compaction leaves.
func stateDirWithJournal(t *testing.T, wal []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.wal"), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestJournalRoundTrip: records survive the frame encoding byte-exactly.
func TestJournalRoundTrip(t *testing.T) {
	recs := scriptRecords(t)
	wal := writeFrames(t, recs)
	dir := stateDirWithJournal(t, wal)
	got, torn, err := readJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("intact journal reported %d torn bytes", torn)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || got[i].Sweep != recs[i].Sweep ||
			got[i].Nonce != recs[i].Nonce || got[i].Index != recs[i].Index {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestJournalTornTailDiscarded: every way a kill -9 can mangle the tail —
// truncated header, truncated payload, corrupted payload byte — loses only
// the damaged frame and everything after it, never an intact prefix.
func TestJournalTornTailDiscarded(t *testing.T) {
	recs := scriptRecords(t)
	wal := writeFrames(t, recs)
	// Frame boundaries for surgery.
	var bounds []int
	off := 0
	for off < len(wal) {
		n := int(binary.BigEndian.Uint32(wal[off:]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(recs) {
		t.Fatalf("frame walk found %d frames, want %d", len(bounds), len(recs))
	}

	cases := []struct {
		name string
		mut  func() []byte
		want int // intact records expected
	}{
		{"truncated header", func() []byte { return wal[:bounds[1]+3] }, 2},
		{"truncated payload", func() []byte { return wal[:bounds[2]+20] }, 3},
		{"corrupt payload byte", func() []byte {
			c := append([]byte(nil), wal...)
			c[bounds[0]+12] ^= 0xff // inside frame 2's payload
			return c
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut()
			dir := stateDirWithJournal(t, b)
			got, torn, err := readJournal(filepath.Join(dir, "journal.wal"))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.want {
				t.Fatalf("recovered %d records, want %d", len(got), tc.want)
			}
			wantTorn := len(b)
			if tc.want > 0 {
				wantTorn = len(b) - bounds[tc.want-1]
			}
			if torn != wantTorn {
				t.Errorf("torn bytes %d, want %d", torn, wantTorn)
			}
		})
	}
}

// TestReplayIdempotent: a crash between snapshot rename and journal
// truncation replays records the snapshot already holds; the merged state
// must hold exactly one copy of everything, in original order.
func TestReplayIdempotent(t *testing.T) {
	recs := scriptRecords(t)
	// Snapshot as if everything up to the first result was compacted.
	jobs := smallJobs(t, "exchange2")
	snap := stateSnapshot{Version: stateFormatVersion, Sweeps: []sweepSnapshot{{
		ID: "s-aaaa", Nonce: "n-1", Tenant: "anonymous",
		Jobs: []jobEntry{{Index: 0, Job: jobs[0]}, {Index: 1, Job: jobs[1]}},
		Log:  []sweep.Result{{Index: 1, Job: jobs[1], Res: &core.Results{Stats: &pipeline.Stats{Committed: 2}}}},
	}}}
	recovered := replayState(snap, recs)
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sweeps, want 1 (s-bbbb was closed)", len(recovered))
	}
	rs := recovered[0]
	if rs.ID != "s-aaaa" || rs.Nonce != "n-1" || rs.Tenant != "anonymous" {
		t.Fatalf("identity lost in replay: %+v", rs)
	}
	if len(rs.Jobs) != len(jobs) {
		t.Errorf("replay holds %d jobs, want %d", len(rs.Jobs), len(jobs))
	}
	if len(rs.Log) != 2 {
		t.Fatalf("replay holds %d results, want 2 (duplicates must coalesce)", len(rs.Log))
	}
	// The snapshot's copy of result index 1 came first, so completion order
	// is preserved: [1, 0].
	if rs.Log[0].Index != 1 || rs.Log[1].Index != 0 {
		t.Errorf("completion order not preserved: [%d, %d]", rs.Log[0].Index, rs.Log[1].Index)
	}
}

// TestOpenStateCompacts: reopening a state dir folds the journal into
// snapshot.json and restarts the journal empty, and a third open sees the
// same state from the snapshot alone.
func TestOpenStateCompacts(t *testing.T) {
	wal := writeFrames(t, scriptRecords(t))
	dir := stateDirWithJournal(t, wal)

	_, rec1, _, err := openState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "journal.wal")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated after compaction: %v, size %d", err, fi.Size())
	}
	// Abandon without close — the snapshot alone must carry the state.
	_, rec2, torn, err := openState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("compacted dir reported %d torn bytes", torn)
	}
	if len(rec1) != 1 || len(rec2) != 1 {
		t.Fatalf("recovered %d then %d sweeps, want 1 and 1", len(rec1), len(rec2))
	}
	if rec1[0].ID != rec2[0].ID || len(rec1[0].Log) != len(rec2[0].Log) || len(rec1[0].Jobs) != len(rec2[0].Jobs) {
		t.Errorf("snapshot round-trip drifted: %+v vs %+v", rec1[0], rec2[0])
	}
}

// TestOpenStateVersionGuard: a future-format state dir is refused, and a
// damaged snapshot (only ever published by atomic rename) is refused
// rather than silently forgetting every sweep.
func TestOpenStateVersionGuard(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := openState(dir); err == nil {
		t.Fatal("openState accepted a format-99 state dir")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "snapshot.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := openState(dir2); err == nil {
		t.Fatal("openState accepted a corrupt snapshot")
	}
}

// TestCrashRecoveryProperty kills a journaled coordinator at randomized
// (seeded) journal offsets and asserts every recovery is consistent: the
// recovered completion log is a prefix of the delivered results (nothing
// lost that was intact, nothing duplicated), no job is both completed and
// requeued, and the sweep stays addressable by its submission nonce.
func TestCrashRecoveryProperty(t *testing.T) {
	recs := scriptRecords(t)
	wal := writeFrames(t, recs)
	// The result delivery order encoded in the script for sweep s-aaaa.
	var resultOrder []int
	jobCount := 0
	for _, rec := range recs {
		if rec.Sweep != "s-aaaa" {
			continue
		}
		switch rec.Op {
		case opJob:
			jobCount++
		case opResult:
			resultOrder = append(resultOrder, rec.Result.Index)
		}
	}

	rng := rand.New(rand.NewSource(1337))
	offsets := []int{0, 1, 7, 8, len(wal) - 1, len(wal)} // edges always
	for i := 0; i < 24; i++ {
		offsets = append(offsets, rng.Intn(len(wal)+1))
	}
	for _, cut := range offsets {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := stateDirWithJournal(t, wal[:cut])
			server := NewServer(ServerOptions{})
			if err := server.OpenState(dir); err != nil {
				t.Fatalf("recovery at offset %d failed: %v", cut, err)
			}
			defer server.CloseState()

			server.mu.Lock()
			st := server.sweeps["s-aaaa"]
			nonceID := server.byNonce["n-1"]
			if _, ghost := server.sweeps["s-bbbb"]; ghost && cut == len(wal) {
				server.mu.Unlock()
				t.Fatal("closed sweep s-bbbb resurrected by full replay")
			}
			server.mu.Unlock()
			if st == nil {
				// The opOpen frame itself was torn off: an empty recovery is
				// the consistent outcome.
				if cut > len(wal)/4 {
					t.Fatalf("offset %d lost the sweep entirely", cut)
				}
				return
			}
			if nonceID != "s-aaaa" {
				t.Fatalf("nonce table inconsistent: n-1 -> %q", nonceID)
			}

			st.mu.Lock()
			defer st.mu.Unlock()
			// Completion log must be a prefix of the delivery order.
			if len(st.log) > len(resultOrder) {
				t.Fatalf("recovered %d results, only %d were delivered", len(st.log), len(resultOrder))
			}
			seen := make(map[int]bool)
			for i, res := range st.log {
				if res.Index != resultOrder[i] {
					t.Fatalf("log[%d] = index %d, want %d (order not preserved)", i, res.Index, resultOrder[i])
				}
				if seen[res.Index] {
					t.Fatalf("result index %d duplicated in recovered log", res.Index)
				}
				seen[res.Index] = true
				if res.Res == nil || res.Res.Committed == 0 {
					t.Fatalf("recovered result %d lost its payload", res.Index)
				}
			}
			// No job may be both completed and pending, and every recovered
			// job must be exactly one of the two.
			completed, pending := 0, 0
			for idx, sl := range st.slots {
				select {
				case <-sl.ready:
					completed++
					if !seen[idx] {
						t.Fatalf("slot %d completed but absent from the log", idx)
					}
				default:
					pending++
					if seen[idx] {
						t.Fatalf("slot %d is pending but already logged", idx)
					}
				}
			}
			if completed != len(st.log) {
				t.Fatalf("%d completed slots vs %d logged results", completed, len(st.log))
			}
			if completed+pending != len(st.slots) || len(st.slots) > jobCount {
				t.Fatalf("slot accounting: %d completed + %d pending, %d slots, %d journaled jobs",
					completed, pending, len(st.slots), jobCount)
			}
		})
	}
}

// TestRecoveryServesCursorsAndRequeues is the end-to-end restart contract:
// a second Server opening the same state dir serves the old sweep id, its
// result cursor replays delivered results byte-for-byte, and the undelivered
// jobs drain through fresh workers to completion.
func TestRecoveryServesCursorsAndRequeues(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	jobs := smallJobs(t, "exchange2")

	first := NewServer(ServerOptions{})
	if err := first.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(first.Handler())
	var resp SubmitResponse
	if _, err := doJSON(ctx, srv1.Client(), http.MethodPost, srv1.URL+"/v1/sweeps", "",
		SubmitRequest{Jobs: jobs, Nonce: "n-e2e"}, &resp); err != nil {
		t.Fatal(err)
	}
	// Complete exactly one job by hand, then "kill -9": close the listener
	// without CloseState, leaving only the journal behind.
	lease := leaseOne(t, srv1.URL)
	if _, err := doJSON(ctx, srv1.Client(), http.MethodPost, srv1.URL+"/v1/result", "",
		ResultRequest{LeaseID: lease.LeaseID, Result: sweep.Result{
			Index: lease.Index, Job: lease.Job,
			Res: &core.Results{Stats: &pipeline.Stats{Committed: 7}},
		}}, nil); err != nil {
		t.Fatal(err)
	}
	var before ResultBatch
	if _, err := doJSON(ctx, srv1.Client(), http.MethodGet,
		srv1.URL+"/v1/sweeps/"+resp.SweepID+"/results?after=0", "", nil, &before); err != nil {
		t.Fatal(err)
	}
	if len(before.Results) != 1 {
		t.Fatalf("precondition: %d results before the crash, want 1", len(before.Results))
	}
	srv1.Close()

	second := NewServer(ServerOptions{})
	if err := second.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	defer second.CloseState()
	srv2 := httptest.NewServer(second.Handler())
	defer srv2.Close()

	// The old sweep id resolves, and the pre-crash cursor replays the
	// delivered result identically.
	var after ResultBatch
	if status, err := doJSON(ctx, srv2.Client(), http.MethodGet,
		srv2.URL+"/v1/sweeps/"+resp.SweepID+"/results?after=0", "", nil, &after); err != nil || status != http.StatusOK {
		t.Fatalf("recovered sweep id did not resolve: status %d, %v", status, err)
	}
	if len(after.Results) != 1 || after.Results[0].Index != before.Results[0].Index ||
		after.Results[0].Res.Committed != before.Results[0].Res.Committed {
		t.Fatalf("recovered cursor diverged: %+v vs %+v", after.Results, before.Results)
	}
	// A resubmission with the same nonce resolves to the recovered sweep —
	// the client-side recovery key.
	var re SubmitResponse
	if _, err := doJSON(ctx, srv2.Client(), http.MethodPost, srv2.URL+"/v1/sweeps", "",
		SubmitRequest{Nonce: "n-e2e"}, &re); err != nil {
		t.Fatal(err)
	}
	if re.SweepID != resp.SweepID {
		t.Fatalf("nonce resolved to %s, want recovered sweep %s", re.SweepID, resp.SweepID)
	}
	// The remaining jobs drain through fresh workers.
	stop := startWorkers(t, srv2.URL, 2)
	defer stop()
	cursor := 0
	got := make(map[int]uint64)
	for {
		var batch ResultBatch
		if status, err := doJSON(ctx, srv2.Client(), http.MethodGet,
			fmt.Sprintf("%s/v1/sweeps/%s/results?after=%d&wait=5s", srv2.URL, resp.SweepID, cursor),
			"", nil, &batch); err != nil || status != http.StatusOK {
			t.Fatalf("drain poll: status %d, %v", status, err)
		}
		for _, res := range batch.Results {
			if _, dup := got[res.Index]; dup {
				t.Fatalf("result %d streamed twice across the restart", res.Index)
			}
			got[res.Index] = res.Res.Committed
		}
		cursor = batch.Next
		if batch.Done {
			break
		}
	}
	if len(got) != len(jobs) {
		t.Fatalf("drained %d results, want %d", len(got), len(jobs))
	}
	if got[lease.Index] != 7 {
		t.Fatalf("pre-crash result re-simulated: committed %d, want the journaled 7", got[lease.Index])
	}
}
