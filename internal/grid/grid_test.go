package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"safespec/internal/core"
	"safespec/internal/sweep"
)

func smallJobs(t testing.TB, benches ...string) []sweep.Job {
	t.Helper()
	if len(benches) == 0 {
		benches = []string{"exchange2", "mcf"}
	}
	spec := sweep.Quick()
	spec.Benchmarks = benches
	spec.Instructions = 2_000
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// startWorkers runs n in-process workers against url and returns a stop
// function that cancels and joins them.
func startWorkers(t testing.TB, url string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator: url,
			ID:          "w" + string(rune('0'+i)),
			Parallel:    2,
			Poll:        5 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestGridEndToEnd is the acceptance property: a sweep executed by two
// worker processes over HTTP produces byte-identical JSONL/CSV output and
// identical aggregate accounting to a local run.
func TestGridEndToEnd(t *testing.T) {
	jobs := smallJobs(t)

	runWith := func(exec sweep.Executor, workers int) (string, sweep.Aggregate) {
		var jsonl, csv bytes.Buffer
		var agg sweep.Aggregate
		_, err := sweep.Run(context.Background(), jobs, sweep.Options{
			Workers:  workers,
			Executor: exec,
			Sinks:    []sweep.Sink{sweep.NewJSONL(&jsonl), sweep.NewCSV(&csv), &agg},
		})
		if err != nil {
			t.Fatal(err)
		}
		return jsonl.String() + "\n---\n" + csv.String(), agg
	}

	local, localAgg := runWith(nil, 0)

	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2)
	defer stop()

	remote, remoteAgg := runWith(coord, len(jobs))

	if local != remote {
		t.Errorf("distributed sink output differs from local:\n%s\nvs\n%s", local, remote)
	}
	if localAgg.Jobs != remoteAgg.Jobs || localAgg.Errored != remoteAgg.Errored ||
		localAgg.Committed != remoteAgg.Committed || localAgg.Cycles != remoteAgg.Cycles {
		t.Errorf("aggregate accounting differs: local %+v vs remote %+v", localAgg, remoteAgg)
	}
	s := coord.Stats()
	if s.Completed != uint64(len(jobs)) || s.Pending != 0 || s.Leased != 0 {
		t.Errorf("coordinator accounting off: %+v", s)
	}
}

// TestGridJobErrorTravels checks that a job failure on a worker comes back
// as that job's error with its cause intact — the same row a local run
// produces — without aborting the sweep.
func TestGridJobErrorTravels(t *testing.T) {
	jobs := smallJobs(t, "exchange2")
	jobs = append(jobs, sweep.Job{Bench: "no-such-bench", Mode: "baseline"})

	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 1)
	defer stop()

	var local, remote bytes.Buffer
	if _, err := sweep.Run(context.Background(), jobs,
		sweep.Options{Sinks: []sweep.Sink{sweep.NewJSONL(&local)}}); err != nil {
		t.Fatal(err)
	}
	results, err := sweep.Run(context.Background(), jobs, sweep.Options{
		Workers: len(jobs), Executor: coord,
		Sinks: []sweep.Sink{sweep.NewJSONL(&remote)},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := results[len(results)-1]
	if bad.Err == nil || !strings.Contains(bad.Err.Error(), "unknown benchmark") {
		t.Fatalf("error cause lost on the wire: %v", bad.Err)
	}
	if local.String() != remote.String() {
		t.Errorf("error rows differ:\n%s\nvs\n%s", local.String(), remote.String())
	}
}

// leaseOne acts as a crashing worker: it takes one lease over raw HTTP and
// never reports a result.
func leaseOne(t *testing.T, url string) LeaseResponse {
	t.Helper()
	body, _ := json.Marshal(LeaseRequest{Worker: "crasher"})
	resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status %d", resp.StatusCode)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestLeaseLostRequeues is the worker-crash path: a lease that never
// completes expires and the job is handed to a live worker, invisibly to
// the sweep.
func TestLeaseLostRequeues(t *testing.T) {
	jobs := smallJobs(t, "exchange2")[:1]

	coord := NewCoordinator(Options{LeaseTTL: 50 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan []sweep.Result, 1)
	go func() {
		results, err := sweep.Run(context.Background(), jobs, sweep.Options{Executor: coord})
		if err != nil {
			t.Error(err)
		}
		done <- results
	}()

	// The crasher steals the job, then a healthy worker joins: it must get
	// the job after the TTL and finish the sweep.
	lease := leaseOne(t, srv.URL)
	if lease.Job.Bench != "exchange2" {
		t.Fatalf("unexpected job %v", lease.Job)
	}
	stop := startWorkers(t, srv.URL, 1)
	defer stop()

	select {
	case results := <-done:
		if results[0].Err != nil {
			t.Fatalf("job failed after requeue: %v", results[0].Err)
		}
		if results[0].Res == nil || results[0].Res.Committed == 0 {
			t.Fatal("no simulation result after requeue")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("requeued job never completed")
	}
	if s := coord.Stats(); s.Requeued == 0 {
		t.Errorf("lease loss not accounted: %+v", s)
	}
	// The crasher's stale lease must be rejected if it reports now (with a
	// well-formed payload, so the lease check — not validation — rejects it).
	body, _ := json.Marshal(ResultRequest{LeaseID: lease.LeaseID,
		Result: sweep.Result{Index: 0, Job: lease.Job, Err: errors.New("late crasher")}})
	resp, err := http.Post(srv.URL+"/v1/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale lease accepted with status %d", resp.StatusCode)
	}
}

// TestLeaseExhaustionFailsJob bounds the retry loop: a job whose leases
// keep vanishing becomes an error result instead of stalling the sweep
// forever.
func TestLeaseExhaustionFailsJob(t *testing.T) {
	jobs := smallJobs(t, "exchange2")[:1]
	coord := NewCoordinator(Options{LeaseTTL: time.Millisecond, MaxAttempts: 2})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan []sweep.Result, 1)
	go func() {
		results, err := sweep.Run(context.Background(), jobs, sweep.Options{Executor: coord})
		if err != nil {
			t.Error(err)
		}
		done <- results
	}()

	// Keep stealing leases without ever reporting until the coordinator
	// gives up on the job.
	deadline := time.After(30 * time.Second)
	for {
		select {
		case results := <-done:
			if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "lease lost") {
				t.Fatalf("want lease-exhaustion error, got %v", results[0].Err)
			}
			if s := coord.Stats(); s.Failed != 1 {
				t.Errorf("failure not accounted: %+v", s)
			}
			return
		case <-deadline:
			t.Fatal("exhaustion never reported")
		default:
		}
		body, _ := json.Marshal(LeaseRequest{Worker: "thief"})
		resp, err := http.Post(srv.URL+"/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		time.Sleep(2 * time.Millisecond)
	}
}

// TestExecuteCancellation checks that a cancelled sweep abandons its queued
// jobs: Execute returns the context error and a worker reporting the
// abandoned lease is turned away.
func TestExecuteCancellation(t *testing.T) {
	coord := NewCoordinator(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, 0, sweep.Job{Bench: "exchange2", Mode: "baseline", Config: core.Baseline()})
		errc <- err
	}()
	for coord.Stats().Pending == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s := coord.Stats(); s.Pending != 0 || s.Leased != 0 {
		t.Errorf("abandoned job still tracked: %+v", s)
	}
}

// TestEmptyResultRejected guards the coordinator against a worker that
// reports neither a payload nor an error: accepting it would surface as a
// nil dereference in the sinks.
func TestEmptyResultRejected(t *testing.T) {
	jobs := smallJobs(t, "exchange2")[:1]
	coord := NewCoordinator(Options{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan []sweep.Result, 1)
	go func() {
		results, err := sweep.Run(context.Background(), jobs, sweep.Options{Executor: coord})
		if err != nil {
			t.Error(err)
		}
		done <- results
	}()
	lease := leaseOne(t, srv.URL)
	body, _ := json.Marshal(ResultRequest{LeaseID: lease.LeaseID, Result: sweep.Result{Index: lease.Index, Job: lease.Job}})
	resp, err := http.Post(srv.URL+"/v1/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty result accepted with status %d", resp.StatusCode)
	}
	// The lease stays live; a healthy worker completes the job normally.
	stop := startWorkers(t, srv.URL, 1)
	defer stop()
	coord.mu.Lock()
	if t2, ok := coord.leases[lease.LeaseID]; ok {
		t2.deadline = time.Now() // hand it over immediately
	}
	coord.mu.Unlock()
	select {
	case results := <-done:
		if results[0].Err != nil || results[0].Res == nil {
			t.Fatalf("job did not recover: %+v", results[0])
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job never completed after rejected empty result")
	}
}
