package attacks

import (
	"testing"

	"safespec/internal/core"
	"safespec/internal/shadow"
)

// PartitionedTinyPolicy is the paper's first TSA mitigation option
// ("partition the speculative state per branch") applied to the same
// undersized structure that leaks under plain Replace.
func partitionedTinyPolicy() (d, i, dtlb, itlb shadow.Policy) {
	d, i, dtlb, itlb = TinyShadowPolicy()
	d.Partitioned = true
	return d, i, dtlb, itlb
}

// TestTSAClosedByPartitioning demonstrates both Section V mitigations side
// by side on the identical attack: the 2-entry Replace shadow leaks; the
// same 2-entry structure with per-path partitioning does not (the trojan's
// allocations can no longer displace the spy's entries); and the Secure
// sizing does not either.
func TestTSAClosedByPartitioning(t *testing.T) {
	tsa := TSA{Secret: DefaultSecret}

	flat := core.WFC().WithShadowPolicy(TinyShadowPolicy())
	out, err := tsa.Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatalf("precondition: unpartitioned tiny shadow must leak (got recovered=%d)", out.Recovered)
	}

	part := core.WFC().WithShadowPolicy(partitionedTinyPolicy())
	out, err = tsa.Run(part)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partitioned tiny shadow: recovered=%d times=%v", out.Recovered, out.BitTimes)
	if out.Leaked {
		t.Errorf("partitioning failed to close the transient channel (recovered=%d)", out.Recovered)
	}
}

// TestPartitioningPreservesCorrectness: partitioned shadow structures must
// not change architectural behaviour of a normal attack-free program.
func TestPartitioningPreservesCorrectness(t *testing.T) {
	prog := buildContentionBurst()
	ref := core.New(core.Baseline(), prog)
	ref.Run()
	cfg := core.WFC().WithShadowPolicy(partitionedTinyPolicy())
	sim := core.New(cfg, prog)
	sim.Run()
	if !sim.CPU().Halted() {
		t.Fatal("partitioned run did not halt")
	}
}
