package attacks

import (
	"safespec/internal/asm"
	"safespec/internal/isa"
	"safespec/internal/pipeline"
)

// SpectreV2 returns the branch-target-injection attack (paper Section
// II-B3). The victim makes an indirect call through a function pointer
// fetched from memory; the attacker has poisoned the BTB entry for that
// call site to point at a gadget that performs a secret-dependent probe
// access. Flushing the pointer chain delays resolution, so the CPU
// speculatively executes the gadget at the predicted (poisoned) target
// before redirecting to the real, benign target.
//
// Per the paper's threat model ("attackers can arbitrarily control the
// state of the branch predictor"), the poisoning is done by the host
// through Predictor().PoisonBTB — the same effect an attacker achieves on
// real hardware by executing aliasing branches (bpred's unit tests
// demonstrate the aliasing mechanism itself).
func SpectreV2() Attack {
	return Attack{
		Name:         "spectre-v2",
		Secret:       DefaultSecret,
		Build:        buildSpectreV2,
		Setup:        setupSpectreV2,
		MinGap:       50,
		FastIsSignal: true,
	}
}

func buildSpectreV2(secret int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.Region(BoundChainBase, 4096, false)
	b.Region(SecretVA, 4096, false)
	b.Data(SecretVA, secret)

	const (
		rFn   = isa.T0
		rVal  = isa.T1
		rTmp  = isa.T2
		rAddr = isa.T3
	)

	// Warm the secret so the gadget's dependent access fits comfortably in
	// the speculation window. In the real variant-2 setting the secret is
	// the victim's own (hot) data; here a store to the secret's line plays
	// that role without ever architecturally reading it.
	b.Movi(rAddr, int64(SecretVA+8))
	b.Movi(rTmp, 0)
	b.Store(rTmp, rAddr, 0)

	// The function-pointer chain: two dependent cells, final value is the
	// benign target's instruction index (filled via DataLabel below).
	b.Data(BoundChainBase, int64(BoundChainBase+256))
	b.DataLabel(BoundChainBase+256, "benign")

	// Flush the chain, then make the victim's indirect call: the target
	// resolves only after two serialized misses while speculation runs at
	// the BTB-predicted (poisoned) target.
	emitFlushChain(b, rTmp, BoundChainBase, 2)
	b.Fence()
	b.Movi(rFn, int64(BoundChainBase))
	b.Load(rFn, rFn, 0)
	b.Load(rFn, rFn, 0)
	b.Label("victim_call")
	b.Calli(rFn, 0) // BTB-predicted; actual target is "benign"
	b.Fence()

	emitProbeLoads(b, ProbeBase, ProbeStride)
	b.Halt()

	// The legitimate call target.
	b.Label("benign")
	b.Addi(isa.T6, isa.T6, 1)
	b.Ret()

	// The gadget the attacker redirects speculation into. It is never
	// called architecturally.
	b.Label("gadget")
	b.Movi(rAddr, int64(SecretVA))
	b.Load(rVal, rAddr, 0)
	b.Shli(rVal, rVal, 9)
	b.Addi(rVal, rVal, int64(ProbeBase))
	b.Load(rTmp, rVal, 0)
	b.Ret()

	return b.Build()
}

func setupSpectreV2(cpu *pipeline.CPU, prog *isa.Program) {
	callPC := prog.Symbols["victim_call"]
	gadget := prog.Symbols["gadget"]
	cpu.Predictor().PoisonBTB(callPC, gadget)
}
