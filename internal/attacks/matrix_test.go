package attacks

import (
	"testing"

	"safespec/internal/core"
)

// TestLeakMatrix verifies the security results of Tables III and IV: every
// attack leaks on the unprotected baseline; SafeSpec-WFB stops everything
// except Meltdown; SafeSpec-WFC stops everything.
func TestLeakMatrix(t *testing.T) {
	type want struct{ baseline, wfb, wfc bool }
	wants := map[string]want{
		"meltdown":       {baseline: true, wfb: true, wfc: false},
		"spectre-v1":     {baseline: true, wfb: false, wfc: false},
		"spectre-v2":     {baseline: true, wfb: false, wfc: false},
		"spectre-icache": {baseline: true, wfb: false, wfc: false},
		"spectre-itlb":   {baseline: true, wfb: false, wfc: false},
		"spectre-dtlb":   {baseline: true, wfb: false, wfc: false},
		// Cross-thread BTB injection: the sibling context trains the shared
		// BTB, so the unprotected SMT core leaks; under SafeSpec the victim's
		// transient fill lands in its private shadow d-cache and is annulled.
		"smt-btb-v2": {baseline: true, wfb: false, wfc: false},
	}
	cfgs := []struct {
		name string
		cfg  core.Config
		pick func(w want) bool
	}{
		{"baseline", core.Baseline(), func(w want) bool { return w.baseline }},
		{"wfb", core.WFB(), func(w want) bool { return w.wfb }},
		{"wfc", core.WFC(), func(w want) bool { return w.wfc }},
	}
	for _, a := range All() {
		w, ok := wants[a.Name]
		if !ok {
			t.Fatalf("no expectation for attack %s", a.Name)
		}
		for _, c := range cfgs {
			out, err := Execute(a, c.cfg)
			if err != nil {
				t.Fatalf("%s under %s: %v", a.Name, c.name, err)
			}
			t.Logf("%-15s %-8s leaked=%-5v recovered=%-3d times=%v",
				a.Name, c.name, out.Leaked, out.Recovered, out.Times)
			if out.Leaked != c.pick(w) {
				t.Errorf("%s under %s: leaked=%v, want %v", a.Name, c.name, out.Leaked, c.pick(w))
			}
		}
	}
}

// TestTSAMatrix verifies Section V: with undersized Replace-on-full shadow
// structures the transient channel leaks under SafeSpec, and the Secure
// (worst-case) sizing closes it.
func TestTSAMatrix(t *testing.T) {
	tsa := TSA{Secret: DefaultSecret}

	tiny := core.WFC().WithShadowPolicy(TinyShadowPolicy())
	out, err := tsa.Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tsa tiny-wfc: leaked=%v recovered=%d times=%v", out.Leaked, out.Recovered, out.BitTimes)
	if !out.Leaked {
		t.Errorf("TSA with tiny Replace shadow should leak, got recovered=%d", out.Recovered)
	}

	secure := core.WFC()
	out, err = tsa.Run(secure)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tsa secure-wfc: leaked=%v recovered=%d times=%v", out.Leaked, out.Recovered, out.BitTimes)
	if out.Leaked {
		t.Errorf("TSA with Secure sizing must not leak, recovered=%d", out.Recovered)
	}
}
