package attacks

import (
	"safespec/internal/asm"
	"safespec/internal/isa"
	"safespec/internal/workloads"
)

// SMTBTBV2 returns the cross-thread branch-target-injection attack: Spectre
// v2 where the training runs on a sibling SMT hardware thread instead of
// being planted by the host. The BTB is shared between hardware threads
// (only its history, RAS and stats are per-thread views), so an attacker
// context that executes the victim's indirect-call instruction with its own
// register pointing at the gadget installs a BTB entry the victim's fetch
// will consume.
//
// Thread 0 is the victim: it delays (giving the attacker time to train),
// flushes its function-pointer chain, and makes the indirect call whose
// architectural target is benign. Speculation runs at the BTB-predicted
// (attacker-installed) gadget, which loads the secret through a per-thread
// pointer register and touches a secret-indexed probe line. Thread 1 is the
// attacker: it points that same register at a zeroed scratch word — so its
// own architectural gadget executions only ever touch probe slot 0, the
// reserved benign slot the decision rule ignores — and repeatedly jumps to
// the victim's call site to train the shared BTB, then halts.
//
// Under SafeSpec the victim's transient probe fill lands in the victim
// thread's private shadow d-cache and is annulled at the squash, so the
// cross-thread injection channel closes exactly like same-thread Spectre
// v2 (Table III), while baseline SMT leaks.
func SMTBTBV2() Attack {
	return Attack{
		Name:         "smt-btb-v2",
		Secret:       DefaultSecret,
		Build:        buildSMTBTBV2,
		Threads:      2,
		MinGap:       50,
		FastIsSignal: true,
	}
}

// SMTBenchName is the sweep-benchmark registration of the cross-thread
// attack kernel: (smt-btb-v2, mode) cells run through the ordinary matrix,
// result-cache and grid machinery alongside performance cells.
const SMTBenchName = "smt-btb-v2"

func init() {
	workloads.Register(SMTBenchName, func(threads int) (*isa.Program, error) {
		return buildSMTBTBV2(DefaultSecret)
	})
}

func buildSMTBTBV2(secret int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.Region(BoundChainBase, 4096, false)
	b.Region(SecretVA, 4096, false)
	b.Data(SecretVA, secret)
	// FnTableBase[0] carries the gadget's instruction index so the attacker
	// can load it into its call-target register (labels cannot be Movi
	// immediates).
	b.Region(FnTableBase, 4096, false)
	b.DataLabel(FnTableBase, "gadget")

	const (
		rFn   = isa.T0
		rVal  = isa.T1
		rTmp  = isa.T2
		rAddr = isa.T3
		rCnt  = isa.A0
		rLim  = isa.A1
		rSec  = isa.S0 // per-thread secret pointer read by the gadget
		rAtk  = isa.S1 // non-zero on the attacker thread
	)

	// ---- Thread 0: the victim ----
	// Warm the secret's line (without architecturally reading the secret) so
	// the gadget's dependent access fits in the speculation window, and point
	// the gadget's pointer register at the real secret.
	b.Movi(rAddr, int64(SecretVA+8))
	b.Movi(rTmp, 0)
	b.Store(rTmp, rAddr, 0)
	b.Movi(rSec, int64(SecretVA))

	// Function-pointer chain: two dependent cells ending at the benign
	// target's instruction index.
	b.Data(BoundChainBase, int64(BoundChainBase+256))
	b.DataLabel(BoundChainBase+256, "benign")

	// Delay long enough for the sibling thread to finish training the BTB
	// (the attacker needs a few hundred cycles; this loop runs thousands).
	b.Movi(rCnt, 0)
	b.Movi(rLim, 4000)
	b.Label("victim_wait")
	b.Addi(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, "victim_wait")

	// Flush the chain, then make the indirect call: the target resolves only
	// after two serialized misses while speculation runs at the
	// BTB-predicted (attacker-installed) target.
	emitFlushChain(b, rTmp, BoundChainBase, 2)
	b.Fence()
	b.Movi(rFn, int64(BoundChainBase))
	b.Load(rFn, rFn, 0)
	b.Load(rFn, rFn, 0)
	b.Label("victim_call")
	b.Calli(rFn, 0) // BTB-predicted; actual target is "benign"
	b.Fence()
	// The attacker re-enters the victim's call site each training round and
	// falls through to here after the gadget returns; this branch sends it
	// back to its loop while the victim continues into the probe.
	b.Bne(rAtk, isa.Zero, "attacker_next")
	emitProbeLoads(b, ProbeBase, ProbeStride)
	b.Halt()

	// The legitimate call target.
	b.Label("benign")
	b.Addi(isa.T6, isa.T6, 1)
	b.Ret()

	// The gadget: never called architecturally by the victim. The secret
	// pointer is a register so the attacker's architectural executions read
	// a zeroed scratch word (slot 0) instead of the secret.
	b.Label("gadget")
	b.Load(rVal, rSec, 0)
	b.Shli(rVal, rVal, 9)
	b.Addi(rVal, rVal, int64(ProbeBase))
	b.Load(rTmp, rVal, 0)
	b.Ret()

	// ---- Thread 1: the attacker ----
	b.Label("attacker")
	b.Movi(rAtk, 1)
	b.Movi(rSec, int64(ScratchBase)) // gadget reads 0 -> probe slot 0 only
	b.Movi(rFn, int64(FnTableBase))
	b.Load(rFn, rFn, 0) // rFn = gadget's instruction index
	b.Movi(rCnt, 0)
	b.Movi(rLim, 64)
	b.Label("attacker_train")
	b.Jmp("victim_call") // execute the victim's own Calli with rFn = gadget
	b.Label("attacker_next")
	b.Addi(rCnt, rCnt, 1)
	b.Blt(rCnt, rLim, "attacker_train")
	b.Halt()

	b.SetThreadEntry(0, "") // thread 0 keeps the default entry
	b.SetThreadEntry(1, "attacker")
	return b.Build()
}
