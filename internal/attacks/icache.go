package attacks

import (
	"fmt"

	"safespec/internal/asm"
	"safespec/internal/isa"
)

// ICacheVariant returns the paper's new I-cache Spectre variant (Section
// IV-A, Figure 5): instead of a data-dependent data access, the gadget
// makes a secret-dependent *indirect call*, so the footprint lands in the
// instruction cache. The receiver times calls to each candidate function;
// the one whose code line is already cached reveals the secret.
//
// As in the paper, training runs the gadget with attackMode = 0 so it
// always dispatches to the benign function (func0); the attack run sets
// attackMode = 1, making the speculatively executed gadget call
// func(secret), whose code line is fetched into the (shadow) I-cache
// before the mispredicted bounds check squashes everything.
func ICacheVariant() Attack {
	return Attack{
		Name:         "spectre-icache",
		Secret:       DefaultSecret,
		Build:        func(secret int64) (*isa.Program, error) { return buildInstrVariant(secret, 1) },
		MinGap:       50,
		FastIsSignal: true,
	}
}

// ITLBVariant returns the instruction-TLB variant: the candidate functions
// are spaced PageGap pages apart in the code, so the secret-dependent
// speculative call installs an iTLB translation (and its page-walk cache
// lines). The receiver flushes every candidate's code lines first, so the
// remaining timing difference comes from the translation path.
func ITLBVariant() Attack {
	return Attack{
		Name:         "spectre-itlb",
		Secret:       DefaultSecret,
		Build:        func(secret int64) (*isa.Program, error) { return buildInstrVariant(secret, 2) },
		MinGap:       50,
		FastIsSignal: true,
	}
}

func fnLabel(i int) string { return fmt.Sprintf("fn%d", i) }

// buildInstrVariant assembles the shared structure of the I-cache and
// I-TLB attacks. kind 1 = I-cache (functions one line apart, no flush
// before probing); kind 2 = I-TLB (functions PageGap pages apart, code
// lines flushed before probing).
func buildInstrVariant(secret int64, kind int) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.Region(BoundChainBase, 4096, false)
	b.Region(SecretVA, 4096, false)
	b.Region(FnTableBase, Slots*8+64, false)
	b.Data(SecretVA, secret)
	for i := 0; i < Slots; i++ {
		b.DataLabel(FnTableBase+uint64(i)*8, fnLabel(i))
	}

	const (
		rGate = isa.A0 // gadget argument: 0 trains, 1 attacks (as bound input)
		rBnd  = isa.T0
		rSec  = isa.T1
		rAM   = isa.T2
		rFn   = isa.T3
		rIter = isa.S0
		rLim  = isa.S1
		rTmp  = isa.S2
		rAdr  = isa.S3
		rRA   = isa.S4 // saved return address around the inner call
	)

	// attackMode cell.
	b.Data(ScratchBase, 0)

	// --- main ---
	// Training: gate=0 (< bound 1, so the check passes and the gadget body
	// runs architecturally); attackMode=0 keeps the dispatch at func0.
	b.Movi(rIter, 0)
	b.Movi(rLim, 8)
	b.Label("train")
	b.Movi(rGate, 0)
	b.Call("victim")
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, "train")

	// Arm: attackMode=1, flush the bound chain, call with gate=1 (>= bound,
	// so architecturally the body must NOT run — but the predictor says
	// otherwise).
	b.Movi(rAdr, int64(ScratchBase))
	b.Movi(rTmp, 1)
	b.Store(rTmp, rAdr, 0)
	emitFlushChain(b, rTmp, BoundChainBase, 2)
	b.Fence()
	b.Movi(rGate, 1)
	b.Call("victim")
	b.Fence()
	// Fetch barrier: while the mispredicted gadget is still in flight the
	// front end keeps fetching down this (correct) path, and fetch-time
	// call/return redirects would pre-touch the receiver's candidate
	// functions, polluting the measurement. The fence blocks dispatch, so
	// a pad longer than the fetch buffer pins the wrong-path front end
	// here until the bounds branch resolves.
	b.Nops(24)

	if kind == 2 {
		// I-TLB receiver: flush each candidate's entry code line so the
		// I-cache no longer distinguishes them — only the translation
		// path (iTLB entry, cached PTE lines) differs. The label index is
		// loaded from the function table, converted to a byte address
		// (×4) and offset by the code base, then clflushed.
		for i := 0; i < Slots; i++ {
			b.Movi(rAdr, int64(FnTableBase+uint64(i)*8))
			b.Load(rFn, rAdr, 0)
			b.Shli(rFn, rFn, 2) // ×BytesPerInstr
			b.Movi(rTmp, int64(isa.CodeBase))
			b.Add(rFn, rFn, rTmp)
			b.Clflush(rFn, 0)
		}
		b.Fence()
	}

	emitProbeCalls(b, fnLabel)
	b.Halt()

	// --- victim gadget ---
	// if (gate < bound) { fn = table[secret * attackMode]; fn(); }
	b.Label("victim")
	emitBoundChain(b, rBnd, BoundChainBase, 2, 1) // bound = 1
	b.Bge(rGate, rBnd, "victim_out")
	b.Movi(rAdr, int64(SecretVA))
	b.Load(rSec, rAdr, 0)
	b.Movi(rAdr, int64(ScratchBase))
	b.Load(rAM, rAdr, 0)
	b.Mul(rSec, rSec, rAM) // 0 during training → func0 (benign)
	b.Shli(rSec, rSec, 3)
	b.Movi(rAdr, int64(FnTableBase))
	b.Add(rAdr, rAdr, rSec)
	b.Load(rFn, rAdr, 0)
	b.Add(rRA, isa.RA, isa.Zero) // save ra: the inner call clobbers it
	b.Calli(rFn, 0)              // secret-dependent instruction fetch
	b.Add(isa.RA, rRA, isa.Zero) // restore ra
	b.Label("victim_out")
	b.Ret()

	// --- candidate functions ---
	// kind 1: each function starts on its own I-cache line (16 instrs).
	// kind 2: each function starts PageGap pages apart (PageGap*1024
	// instructions), so leaf PTEs sit on distinct cache lines.
	spacing := 16
	if kind == 2 {
		spacing = PageGap * 1024
	}
	for i := 0; i < Slots; i++ {
		padToMultiple(b, spacing)
		b.Label(fnLabel(i))
		b.Addi(isa.T6, isa.T6, int64(i))
		b.Ret()
	}

	return b.Build()
}

// padToMultiple emits nops until the next instruction index is a multiple
// of n.
func padToMultiple(b *asm.Builder, n int) {
	for b.Len()%n != 0 {
		b.Nop()
	}
}
