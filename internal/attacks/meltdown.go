package attacks

import (
	"safespec/internal/asm"
	"safespec/internal/isa"
)

// Meltdown returns the fault-deferred kernel-read attack (paper Section
// II-B4). The attacker loads directly from a kernel-mapped page; the
// permission check is only enforced when the load reaches commit, but —
// on Meltdown-vulnerable hardware (Config.FaultsReturnData) — the loaded
// value is forwarded to dependents speculatively. A dependent load plants
// the value in the D-cache before the fault squashes the window; the trap
// handler then runs the Flush+Reload receiver.
//
// No branch misprediction is involved, so SafeSpec-WFB does NOT stop this
// attack: the faulting load has no unresolved older branches, its shadow
// state moves to the committed cache at writeback, and the probe finds it.
// SafeSpec-WFC keeps the state in the shadow until commit — which never
// happens, because the fault annuls it (Table III).
func Meltdown() Attack {
	return Attack{
		Name:         "meltdown",
		Secret:       DefaultSecret,
		Build:        buildMeltdown,
		MinGap:       50,
		FastIsSignal: true,
	}
}

func buildMeltdown(secret int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.KernelData(SecretVA, secret)

	const (
		rK    = isa.T0
		rTmp  = isa.T1
		rAddr = isa.T2
		rD    = isa.S0
	)

	// Warm the kernel page's *PTE line* by touching an adjacent user page:
	// leaf PTEs of 8 neighbouring pages share one cache line, so walking
	// the user page at SecretVA+PageSize caches the PTE the kernel page's
	// walk will read. The kernel load then completes in ~one memory
	// latency instead of ~two, which matters for the race below.
	b.Region(SecretVA+4096, 4096, false)
	b.Movi(rAddr, int64(SecretVA+4096))
	b.Load(rD, rAddr, 0)

	// A two-deep flushed pointer chain plus a dependent ALU chain ahead of
	// the kernel load delays its commit (and therefore the fault) long
	// enough that the dependent probe access below has issued — and
	// planted its cache line — before the trap flushes the pipeline.
	b.Data(ScratchBase, int64(ScratchBase+256))
	b.Data(ScratchBase+256, 1)
	b.Movi(rAddr, int64(ScratchBase))
	b.Load(rD, rAddr, 0) // warm the chain once
	b.Load(rD, rD, 0)
	emitFlushChain(b, rAddr, ScratchBase, 2)
	b.Fence()
	b.Movi(rD, int64(ScratchBase))
	b.Load(rD, rD, 0) // two serialized cold misses
	b.Load(rD, rD, 0)
	for i := 0; i < 16; i++ {
		b.Addi(rD, rD, 1) // serial chain: commit of everything younger waits
	}

	// The illegal access and its dependent transmit.
	b.Movi(rAddr, int64(SecretVA))
	b.Load(rK, rAddr, 0) // kernel read: faults at commit, forwards data now
	b.Shli(rK, rK, 9)
	b.Addi(rK, rK, int64(ProbeBase))
	b.Load(rTmp, rK, 0) // secret-dependent probe access

	// Fall-through (in case the fault is suppressed) joins the handler.
	b.Jmp("recover")

	b.SetTrapHandler("recover")
	b.Label("recover")
	emitProbeLoads(b, ProbeBase, ProbeStride)
	b.Halt()

	return b.Build()
}
