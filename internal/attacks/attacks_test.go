package attacks

import (
	"testing"

	"safespec/internal/core"
)

func TestDecideFastSignal(t *testing.T) {
	times := make([]uint64, Slots)
	for i := range times {
		times[i] = 236
	}
	times[0] = 4 // slot 0 is reserved and must be ignored
	times[7] = 5
	if got := decide(times, 50, true); got != 7 {
		t.Errorf("decide = %d, want 7", got)
	}
}

func TestDecideSlowSignal(t *testing.T) {
	times := make([]uint64, Slots)
	for i := range times {
		times[i] = 10
	}
	times[9] = 400
	if got := decide(times, 50, false); got != 9 {
		t.Errorf("decide = %d, want 9", got)
	}
}

func TestDecideNoSignal(t *testing.T) {
	times := make([]uint64, Slots)
	for i := range times {
		times[i] = 236
	}
	if got := decide(times, 50, true); got != -1 {
		t.Errorf("uniform timings decided %d, want -1", got)
	}
}

func TestDecideGapTooSmall(t *testing.T) {
	times := make([]uint64, Slots)
	for i := range times {
		times[i] = 236
	}
	times[3] = 210 // only 26 cycles faster than the rest
	if got := decide(times, 50, true); got != -1 {
		t.Errorf("sub-threshold gap decided %d, want -1", got)
	}
}

func TestDecideTwoFastSlots(t *testing.T) {
	// Two equally fast candidates: ambiguous, no leak call.
	times := make([]uint64, Slots)
	for i := range times {
		times[i] = 236
	}
	times[3] = 5
	times[9] = 5
	if got := decide(times, 50, true); got != -1 {
		t.Errorf("ambiguous timings decided %d, want -1", got)
	}
}

func TestAllAttackBuildersProduceValidPrograms(t *testing.T) {
	for _, a := range All() {
		prog, err := a.Build(a.Secret)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(prog.Code) == 0 {
			t.Errorf("%s: empty program", a.Name)
		}
		if a.Secret < 1 || a.Secret >= Slots {
			t.Errorf("%s: secret %d out of range [1,%d)", a.Name, a.Secret, Slots)
		}
	}
}

// TestSpectreV1OtherSecrets: the recovery must track the planted value,
// not accidentally fixate on one slot.
func TestSpectreV1OtherSecrets(t *testing.T) {
	for _, secret := range []int64{3, 8, 14} {
		a := SpectreV1()
		a.Secret = secret
		out, err := Execute(a, core.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		if !out.Leaked || out.Recovered != secret {
			t.Errorf("secret %d: leaked=%v recovered=%d", secret, out.Leaked, out.Recovered)
		}
	}
}

// TestMeltdownRequiresFaultForwarding: on hardware that does not forward
// data on a permission fault (FaultsReturnData=false), Meltdown must fail
// even on the unprotected baseline.
func TestMeltdownRequiresFaultForwarding(t *testing.T) {
	cfg := core.Baseline()
	cfg.Pipeline.FaultsReturnData = false
	out, err := Execute(Meltdown(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leaked && out.Recovered == out.Secret {
		t.Errorf("meltdown leaked the secret on non-forwarding hardware (recovered=%d)", out.Recovered)
	}
}

// TestTSABlockPolicyClosedBySizing: the Block policy with Secure sizing
// must not leak either (no contention is possible).
func TestTSABlockPolicyClosedBySizing(t *testing.T) {
	tsa := TSA{Secret: DefaultSecret}
	out, err := tsa.Run(core.WFB())
	if err != nil {
		t.Fatal(err)
	}
	if out.Leaked {
		t.Errorf("TSA leaked under Secure WFB sizing: recovered=%d", out.Recovered)
	}
}

// TestTSAOtherSecrets: the transient channel must track the planted value.
func TestTSAOtherSecrets(t *testing.T) {
	for _, secret := range []int64{5, 10} {
		tsa := TSA{Secret: secret}
		out, err := tsa.Run(core.WFC().WithShadowPolicy(TinyShadowPolicy()))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Leaked || out.Recovered != secret {
			t.Errorf("secret %d: leaked=%v recovered=%d times=%v",
				secret, out.Leaked, out.Recovered, out.BitTimes)
		}
	}
}

func TestTinyShadowPolicy(t *testing.T) {
	d, i, dtlb, itlb := TinyShadowPolicy()
	if d.Entries != 2 {
		t.Errorf("tiny d-cache entries = %d", d.Entries)
	}
	if i.Entries < 32 || dtlb.Entries < 8 || itlb.Entries < 32 {
		t.Error("non-target structures must stay large enough not to interfere")
	}
}
