// Package attacks implements proof-of-concept speculation attacks on the
// simulated CPU, mirroring the security evaluation of the paper (Tables III
// and IV): Spectre variant 1 (bounds-check bypass), Spectre variant 2
// (branch target injection), Meltdown (fault-deferred kernel read), the
// paper's new I-cache variant, I-TLB and D-TLB variants, and the transient
// speculation attack (TSA) through the shadow structures themselves.
//
// Every attack is a self-contained program in the simulator's ISA, built
// with internal/asm, that:
//
//  1. trains the predictor (or the host poisons the BTB, as the paper's
//     threat model allows),
//  2. triggers a speculative "gadget" that touches a secret-dependent
//     microarchitectural location, and
//  3. probes the relevant structure with rdcycle timing, storing the
//     measured latencies into a results array in memory.
//
// The host then reads the results array and decides — exactly like a real
// attacker — which probe slot was uniquely fast. An attack "leaks" if the
// recovered value matches the planted secret.
package attacks

import (
	"fmt"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/pipeline"
)

// Memory layout shared by the attack programs (virtual addresses; each
// lives on its own page or further apart).
const (
	// Array1Base is the victim's bounds-checked array.
	Array1Base uint64 = 0x0001_0000
	// BoundChainBase holds the pointer chain whose final cell is the bound
	// (flushing the chain creates a multi-miss speculation window).
	BoundChainBase uint64 = 0x0002_0000
	// SecretVA is where the planted secret lives (user page for Spectre,
	// kernel page for Meltdown).
	SecretVA uint64 = 0x0003_0000
	// ProbeBase is the Flush+Reload probe array (one slot per candidate
	// secret value, ProbeStride bytes apart).
	ProbeBase uint64 = 0x0004_0000
	// ResultsBase is where measured probe latencies are stored.
	ResultsBase uint64 = 0x0006_0000
	// ScratchBase holds attack flags (attack mode, condition values).
	ScratchBase uint64 = 0x0007_0000
	// FnTableBase is the jump table for the I-cache/I-TLB variants.
	FnTableBase uint64 = 0x0008_0000
	// PageProbeBase is the D-TLB probe region (Slots pages, spaced
	// PageGap pages apart so their leaf PTEs sit on distinct cache lines).
	PageProbeBase uint64 = 0x0100_0000
)

// Slots is the number of candidate secret values each attack probes.
// Secrets are 4-bit (1..15; zero is reserved as the "benign" value so
// training never touches a secret-dependent location).
const Slots = 16

// ProbeStride separates probe slots (8 cache lines).
const ProbeStride = 512

// PageGap spaces D-TLB probe pages so each page's leaf PTE occupies a
// distinct cache line (8 PTEs of 8 bytes share a 64-byte line).
const PageGap = 8

// DefaultSecret is the value planted by all single-value attacks.
const DefaultSecret = 11

// Attack describes one proof-of-concept.
type Attack struct {
	// Name identifies the attack ("spectre-v1", ...).
	Name string
	// Secret is the planted value in 1..15.
	Secret int64
	// Build assembles the program.
	Build func(secret int64) (*isa.Program, error)
	// Setup, if non-nil, runs against the CPU before execution (Spectre v2
	// uses it to poison the BTB, per the paper's threat model).
	Setup func(cpu *pipeline.CPU, prog *isa.Program)
	// Threads is the hardware-thread count the attack requires (0 or 1 for
	// the single-threaded attacks; the SMT attacks need a sibling context).
	// Execute applies it to the configuration under test.
	Threads int
	// MinGap is the timing gap (cycles) required between the fastest and
	// second-fastest probe slot for the attacker to call it signal.
	MinGap uint64
	// FastIsSignal selects the decision rule: true means the uniquely
	// fastest slot reveals the secret (Flush+Reload style); false means
	// the uniquely slowest slot does (occupancy/eviction style).
	FastIsSignal bool
}

// Outcome is the result of running one attack under one configuration.
type Outcome struct {
	// Times are the probe latencies per slot (index = candidate value).
	Times []uint64
	// Recovered is the attacker's guess, or -1 if no slot stood out.
	Recovered int64
	// Secret is the planted value.
	Secret int64
	// Leaked reports Recovered == Secret.
	Leaked bool
	// Cycles is the total run length.
	Cycles uint64
}

// Execute builds, runs and scores an attack under cfg.
func Execute(a Attack, cfg core.Config) (Outcome, error) {
	prog, err := a.Build(a.Secret)
	if err != nil {
		return Outcome{}, fmt.Errorf("attacks: building %s: %w", a.Name, err)
	}
	if a.Threads > 1 {
		// SMT attacks run against the same protection config with the
		// sibling context enabled; everything else about the cell is
		// unchanged so Table III/IV rows stay comparable.
		cfg.Pipeline.Threads = a.Threads
	}
	sim := core.New(cfg, prog)
	if a.Setup != nil {
		a.Setup(sim.CPU(), prog)
	}
	res := sim.Run()
	times := make([]uint64, Slots)
	for i := 0; i < Slots; i++ {
		v, fault := sim.CPU().Mem().Read(ResultsBase+uint64(i)*8, true)
		if fault != mem.FaultNone {
			return Outcome{}, fmt.Errorf("attacks: reading results[%d]: %v", i, fault)
		}
		times[i] = uint64(v)
	}
	out := Outcome{Times: times, Secret: a.Secret, Cycles: res.Cycles}
	out.Recovered = decide(times, a.MinGap, a.FastIsSignal)
	out.Leaked = out.Recovered == a.Secret
	return out, nil
}

// decide picks the uniquely fastest (or slowest) slot among candidates
// 1..Slots-1, requiring a minGap separation from the runner-up. Slot 0 is
// the reserved benign value and never considered.
func decide(times []uint64, minGap uint64, fastIsSignal bool) int64 {
	best, second := -1, -1
	for i := 1; i < len(times); i++ {
		better := func(a, b uint64) bool {
			if fastIsSignal {
				return a < b
			}
			return a > b
		}
		switch {
		case best < 0 || better(times[i], times[best]):
			second = best
			best = i
		case second < 0 || better(times[i], times[second]):
			second = i
		}
	}
	if best < 0 || second < 0 {
		return -1
	}
	var gap uint64
	if fastIsSignal {
		gap = times[second] - times[best]
	} else {
		gap = times[best] - times[second]
	}
	if gap < minGap {
		return -1
	}
	return int64(best)
}

// emitBoundChain emits a depth-long dependent pointer chain ending in the
// value stored at the final cell; dst receives that value. Cells live on
// distinct cache lines starting at base. The data image links the chain;
// the final cell's initial value is finalVal.
func emitBoundChain(b *asm.Builder, dst isa.Reg, base uint64, depth int, finalVal int64) {
	for i := 0; i < depth-1; i++ {
		b.Data(base+uint64(i)*256, int64(base+uint64(i+1)*256))
	}
	b.Data(base+uint64(depth-1)*256, finalVal)
	b.Movi(dst, int64(base))
	for i := 0; i < depth; i++ {
		b.Load(dst, dst, 0)
	}
}

// emitFlushChain flushes every cell of a chain emitted by emitBoundChain.
func emitFlushChain(b *asm.Builder, tmp isa.Reg, base uint64, depth int) {
	for i := 0; i < depth; i++ {
		b.Movi(tmp, int64(base+uint64(i)*256))
		b.Clflush(tmp, 0)
	}
}

// emitProbeLoads emits an unrolled Flush+Reload receiver: for each slot it
// measures the latency of one load from base + slot*stride and stores it to
// ResultsBase[slot].
func emitProbeLoads(b *asm.Builder, base uint64, stride uint64) {
	const (
		t1  = isa.T4
		t2  = isa.T5
		tmp = isa.T6
		adr = isa.S11
	)
	for i := 0; i < Slots; i++ {
		b.RdCycle(t1)
		b.Movi(adr, int64(base+uint64(i)*stride))
		b.Load(tmp, adr, 0)
		b.Add(tmp, tmp, tmp) // consume the value
		b.RdCycle(t2)
		b.Sub(t2, t2, t1)
		b.Movi(adr, int64(ResultsBase+uint64(i)*8))
		b.Store(t2, adr, 0)
	}
}

// emitProbeCalls emits an unrolled instruction-side receiver: for each slot
// it measures the latency of calling funcLabel(slot) and stores it.
func emitProbeCalls(b *asm.Builder, funcLabel func(int) string) {
	const (
		t1  = isa.T4
		t2  = isa.T5
		adr = isa.S11
	)
	for i := 0; i < Slots; i++ {
		b.RdCycle(t1)
		b.Call(funcLabel(i))
		b.RdCycle(t2)
		b.Sub(t2, t2, t1)
		b.Movi(adr, int64(ResultsBase+uint64(i)*8))
		b.Store(t2, adr, 0)
	}
}

// emitResultsRegion declares the standard probe/results regions.
func emitResultsRegion(b *asm.Builder) {
	b.Region(ProbeBase, Slots*ProbeStride+64, false)
	b.Region(ResultsBase, Slots*8+64, false)
	b.Region(ScratchBase, 4096, false)
}

// All returns the attacks in the order of Tables III and IV, with the SMT
// cross-thread variant appended.
func All() []Attack {
	return []Attack{
		Meltdown(),
		SpectreV1(),
		SpectreV2(),
		ICacheVariant(),
		ITLBVariant(),
		DTLBVariant(),
		SMTBTBV2(),
	}
}
