package attacks

import (
	"testing"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/workloads"
)

// buildContentionBurst returns a program whose mis-speculated path tries
// to occupy most of the shadow d-cache: a trained-then-violated branch
// guards 48 loads to distinct cold cache lines.
func buildContentionBurst() *isa.Program {
	const (
		condAddr = uint64(0x2_0000)
		burstVA  = uint64(0x30_0000)
	)
	b := asm.NewBuilder()
	b.Region(condAddr, 4096, false)
	b.Region(burstVA, 64*4096, false)
	b.Data(condAddr, 1)

	// Train not-taken.
	b.Movi(isa.S0, 0)
	b.Movi(isa.S1, 8)
	b.Label("train")
	b.Movi(isa.T0, int64(condAddr))
	b.Load(isa.T1, isa.T0, 0)
	b.Beq(isa.T1, isa.Zero, "skip")
	b.Addi(isa.S2, isa.S2, 1)
	b.Label("skip")
	b.Addi(isa.S0, isa.S0, 1)
	b.Blt(isa.S0, isa.S1, "train")

	// Arm and fire: the wrong path bursts 48 distinct cold lines into the
	// shadow d-cache.
	b.Movi(isa.T0, int64(condAddr))
	b.Movi(isa.T2, 0)
	b.Store(isa.T2, isa.T0, 0)
	b.Clflush(isa.T0, 0)
	b.Fence()
	b.Load(isa.T1, isa.T0, 0)
	b.Beq(isa.T1, isa.Zero, "out") // taken; predicted not-taken
	b.Movi(isa.T3, int64(burstVA))
	for i := 0; i < 48; i++ {
		b.Load(isa.T4, isa.T3, int64(i*4096))
	}
	b.Label("out")
	b.Fence()
	b.Halt()
	return b.MustBuild()
}

// TestDetectorSeparatesAttackFromBenign validates the Section VII idea
// end-to-end: with moderately sized shadow structures, the occupancy
// watchdog stays quiet on benign workloads but fires while a speculation
// attack drives contention bursts through the shadow d-cache.
func TestDetectorSeparatesAttackFromBenign(t *testing.T) {
	mkCfg := func() core.Config {
		cfg := core.WFC()
		cfg.Pipeline.DetectAnomalies = true
		return cfg
	}

	// Benign: a SPEC-like kernel.
	w, _ := workloads.ByName("x264")
	benign := core.New(mkCfg().WithLimits(30_000, 5_000_000), w.Build())
	benign.Run()
	bd, _ := benign.CPU().Detectors()
	if bd == nil {
		t.Fatal("detector not instantiated")
	}
	benignRate := bd.AlarmRate()

	// Attack: a TSA-style contention burst. To contend on a generously
	// sized shadow structure (the scenario Section VII's detector is for),
	// a trojan must speculatively fill a large fraction of it within one
	// window — which is exactly the anomaly the watchdog keys on.
	prog := buildContentionBurst()
	atk := core.New(mkCfg(), prog)
	atk.Run()
	ad, _ := atk.CPU().Detectors()
	attackAlarms := ad.Alarms()

	t.Logf("benign alarm rate=%.6f (alarms=%d/%d); attack alarms=%d (rate=%.6f)",
		benignRate, bd.Alarms(), bd.Cycles(), attackAlarms, ad.AlarmRate())
	if attackAlarms == 0 {
		t.Error("attack run raised no occupancy alarms")
	}
	if benignRate > ad.AlarmRate() {
		t.Errorf("benign alarm rate %.6f exceeds attack rate %.6f", benignRate, ad.AlarmRate())
	}
}
