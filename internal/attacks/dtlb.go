package attacks

import (
	"safespec/internal/asm"
	"safespec/internal/isa"
	"safespec/internal/mem"
)

// DTLBVariant returns the data-TLB covert-channel variant the paper
// conjectures in Section IV-A: the gadget's speculative, secret-dependent
// load targets a *page* rather than a line, installing a dTLB translation
// (and, through the page walker, PTE cache lines). The receiver times one
// load per candidate page: the page whose translation is already present
// skips the walk (and its walk's PTE lines are warm), so it stands out.
//
// Candidate pages are spaced PageGap pages apart so each page's leaf PTE
// occupies a distinct cache line — otherwise probing page i would warm the
// PTEs of its neighbours.
func DTLBVariant() Attack {
	return Attack{
		Name:         "spectre-dtlb",
		Secret:       DefaultSecret,
		Build:        buildDTLB,
		MinGap:       30,
		FastIsSignal: true,
	}
}

func buildDTLB(secret int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.Region(BoundChainBase, 4096, false)
	b.Region(SecretVA, 4096, false)
	b.Region(PageProbeBase, uint64(Slots*PageGap+1)*mem.PageSize, false)
	b.Data(SecretVA, secret)

	const (
		rGate = isa.A0
		rBnd  = isa.T0
		rSec  = isa.T1
		rAM   = isa.T2
		rAdr  = isa.T3
		rIter = isa.S0
		rLim  = isa.S1
		rTmp  = isa.S2
	)

	b.Data(ScratchBase, 0) // attackMode

	// Training: gate=0 passes the bound; attackMode=0 sends the gadget's
	// page access to page 0 (benign).
	b.Movi(rIter, 0)
	b.Movi(rLim, 8)
	b.Label("train")
	b.Movi(rGate, 0)
	b.Call("victim")
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, "train")

	// Arm and fire.
	b.Movi(rAdr, int64(ScratchBase))
	b.Movi(rTmp, 1)
	b.Store(rTmp, rAdr, 0)
	emitFlushChain(b, rTmp, BoundChainBase, 2)
	b.Fence()
	b.Movi(rGate, 1)
	b.Call("victim")
	b.Fence()

	// Receive: one timed load per candidate page. The probe pages' data
	// lines are all cold, so the differentiator is the translation path.
	emitProbeLoads(b, PageProbeBase, PageGap*mem.PageSize)
	b.Halt()

	// Victim gadget: if (gate < bound) touch page[secret * attackMode].
	b.Label("victim")
	emitBoundChain(b, rBnd, BoundChainBase, 2, 1)
	b.Bge(rGate, rBnd, "victim_out")
	b.Movi(rAdr, int64(SecretVA))
	b.Load(rSec, rAdr, 0)
	b.Movi(rAdr, int64(ScratchBase))
	b.Load(rAM, rAdr, 0)
	b.Mul(rSec, rSec, rAM)
	b.Shli(rSec, rSec, 12+3) // * PageGap(8) * PageSize(4096)
	b.Movi(rAdr, int64(PageProbeBase))
	b.Add(rAdr, rAdr, rSec)
	b.Load(rTmp, rAdr, 0) // secret-dependent page touch
	b.Label("victim_out")
	b.Ret()

	return b.Build()
}
