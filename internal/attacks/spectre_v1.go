package attacks

import (
	"safespec/internal/asm"
	"safespec/internal/isa"
)

// SpectreV1 returns the bounds-check-bypass attack (paper Section II-B2).
//
// The victim gadget is the classic
//
//	if (offset < array1_size)
//	    y = array2[array1[offset] * 512];
//
// The attacker (same program, as in variant 1's same-process setting):
//
//  1. trains the bounds branch with in-bounds offsets;
//  2. flushes the pointer chain holding array1_size, creating a long
//     speculation window;
//  3. calls the gadget with an out-of-bounds offset reaching the secret;
//  4. probes array2 with Flush+Reload timing.
//
// Under the baseline the secret-dependent probe line was installed in the
// committed D-cache by the squashed path and the probe finds it fast.
// Under SafeSpec (either policy) the line only ever existed in the shadow
// D-cache and was annulled on squash.
func SpectreV1() Attack {
	return Attack{
		Name:         "spectre-v1",
		Secret:       DefaultSecret,
		Build:        buildSpectreV1,
		MinGap:       50,
		FastIsSignal: true,
	}
}

func buildSpectreV1(secret int64) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.Region(Array1Base, 4096, false)
	b.Region(BoundChainBase, 4096, false)
	b.Region(SecretVA, 4096, false)

	// array1 holds benign values 0; the secret sits out of bounds at
	// SecretVA. Offsets are in 8-byte words.
	for i := 0; i < 4; i++ {
		b.Data(Array1Base+uint64(i)*8, 0)
	}
	b.Data(SecretVA, secret)
	outOfBoundsOff := int64(SecretVA-Array1Base) / 8

	const (
		rOff   = isa.A0 // gadget argument: offset
		rBound = isa.T0
		rVal   = isa.T1
		rAddr  = isa.T2
		rIter  = isa.S0
		rLim   = isa.S1
		rTmp   = isa.T3
	)

	// --- main ---
	// Warm the secret page's translation by touching a *different* line in
	// the same page (the attacker's own address space contains the page;
	// only the secret line itself must stay architecturally unread). This
	// keeps the gadget's speculative secret load within the window: a cold
	// page walk plus a cold line would take ~480 cycles and lose the race
	// with the bounds branch.
	b.Movi(rTmp, int64(SecretVA+2048))
	b.Load(rTmp, rTmp, 0)

	// Training: 8 in-bounds calls; the chain is cached after the first
	// traversal, so the branch resolves fast and trains not-taken
	// (in-bounds falls through the Bge).
	b.Movi(rIter, 0)
	b.Movi(rLim, 8)
	b.Label("train")
	b.Andi(rOff, rIter, 3)
	b.Call("victim")
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, "train")

	// Attack: flush the bound chain (window ≈ two serialized misses), then
	// call with the malicious offset.
	emitFlushChain(b, rTmp, BoundChainBase, 2)
	b.Fence()
	b.Movi(rOff, outOfBoundsOff)
	b.Call("victim")
	b.Fence()

	// Receive.
	emitProbeLoads(b, ProbeBase, ProbeStride)
	b.Halt()

	// --- victim gadget ---
	b.Label("victim")
	emitBoundChain(b, rBound, BoundChainBase, 2, 4) // array1_size = 4
	b.Bge(rOff, rBound, "victim_out")               // bounds check
	b.Shli(rAddr, rOff, 3)
	b.Addi(rAddr, rAddr, int64(Array1Base))
	b.Load(rVal, rAddr, 0) // array1[offset] — the secret, speculatively
	b.Shli(rVal, rVal, 9)  // * ProbeStride
	b.Addi(rVal, rVal, int64(ProbeBase))
	b.Load(rTmp, rVal, 0) // secret-dependent probe access
	b.Label("victim_out")
	b.Ret()

	return b.Build()
}
