package attacks

import (
	"fmt"

	"safespec/internal/asm"
	"safespec/internal/core"
	"safespec/internal/isa"
	"safespec/internal/mem"
	"safespec/internal/shadow"
)

// TSA implements the Transient Speculation Attack of Section V (Figure 10):
// a covert channel through the *shadow structures themselves*, exploitable
// when they are small enough for speculative instructions to contend.
//
// The choreography per leaked bit, all inside one speculation window:
//
//   - Step 1 (spy, speculative but will commit): two loads bring lines A
//     and B into the shadow D-cache while an older, slow-resolving branch
//     keeps them speculative.
//   - Step 2 (trojan, mis-speculated): a younger branch is mistrained so
//     speculation falls into the trojan, which reads the secret and — if
//     the chosen bit is 1 — loads two other lines. With a 2-entry shadow
//     structure under the Replace policy, those fills evict A and B from
//     the shadow state, so their updates never reach the committed cache.
//     If the bit is 0 the trojan touches A's own line, evicting nothing.
//   - Step 3 (committed): after everything resolves, the program times
//     loads of A and B. Slow means "replaced" means the bit was 1.
//
// With worst-case ("Secure") sizing the shadow structure can never fill
// within one speculation window, the trojan cannot displace the spy's
// entries, and the channel closes — the mitigation row of Table IV.
type TSA struct {
	// Secret is the planted 4-bit value (1..15).
	Secret int64
}

// TSAOutcome reports a transient-attack run.
type TSAOutcome struct {
	// BitTimes are the measured A-load latencies per bit position.
	BitTimes [4]uint64
	// Recovered is the reassembled value.
	Recovered int64
	// Secret is the planted value.
	Secret int64
	// Leaked reports Recovered == Secret.
	Leaked bool
}

// TinyShadowPolicy returns the deliberately undersized, contention-prone
// shadow configuration the TSA exploits: 2-entry data-side structures with
// Replace-on-full.
func TinyShadowPolicy() (d, i, dtlb, itlb shadow.Policy) {
	d = shadow.Policy{Name: "shadow-dcache", Entries: 2, WhenFull: shadow.Replace}
	i = shadow.Policy{Name: "shadow-icache", Entries: 224}
	dtlb = shadow.Policy{Name: "shadow-dtlb", Entries: 64}
	itlb = shadow.Policy{Name: "shadow-itlb", Entries: 224}
	return d, i, dtlb, itlb
}

// Run executes the attack under cfg, leaking the secret bit by bit (one
// program run per bit, retraining each time).
func (t TSA) Run(cfg core.Config) (TSAOutcome, error) {
	secret := t.Secret
	if secret == 0 {
		secret = DefaultSecret
	}
	out := TSAOutcome{Secret: secret}
	const threshold = 60 // cycles: shadow-committed L1 hit vs memory miss
	for bit := 0; bit < 4; bit++ {
		prog, err := buildTSABit(secret, bit)
		if err != nil {
			return out, fmt.Errorf("attacks: building tsa bit %d: %w", bit, err)
		}
		sim := core.New(cfg, prog)
		sim.Run()
		v, fault := sim.CPU().Mem().Read(ResultsBase, true)
		if fault != mem.FaultNone {
			return out, fmt.Errorf("attacks: reading tsa result: %v", fault)
		}
		out.BitTimes[bit] = uint64(v)
		if uint64(v) > threshold {
			out.Recovered |= 1 << uint(bit)
		}
	}
	out.Leaked = out.Recovered == secret
	return out, nil
}

// Addresses private to the TSA program.
const (
	tsaLineA  uint64 = 0x0020_0000 // spy line A
	tsaLineB  uint64 = 0x0020_1000 // spy line B (different page/line)
	tsaChain1 uint64 = 0x0021_0000 // delays the spy's guarding branch B1
	tsaChain2 uint64 = 0x0022_0000 // delays the trojan's guarding branch B2
)

// buildTSABit assembles the program leaking bit `bit` of the secret.
func buildTSABit(secret int64, bit int) (*isa.Program, error) {
	b := asm.NewBuilder()
	emitResultsRegion(b)
	b.Region(tsaLineA, 4096, false)
	b.Region(tsaLineB, 4096, false)
	b.Region(tsaChain1, 4096, false)
	b.Region(tsaChain2, 4096, false)
	b.Region(SecretVA, 4096, false)
	b.Data(SecretVA, secret)

	const (
		rC1   = isa.T0 // B1 condition (chain result)
		rC2   = isa.T1 // B2 condition (chain result)
		rA    = isa.T2
		rBv   = isa.T3
		rSec  = isa.T4
		rOff  = isa.T5
		rAdr  = isa.T6
		rIter = isa.S0
		rLim  = isa.S1
		rT1   = isa.S2
		rT2   = isa.S3
		rArm  = isa.A0 // 0 = training pass, 1 = attack pass
	)

	// Delay cells: one flushed load each gates B1 and B2. A single level
	// (rather than a chain) matters: a second dependent load would itself
	// allocate into the tiny shadow structure mid-window and thrash the
	// spy's entries regardless of the secret.
	b.Data(tsaChain1, 0) // B1 condition: always 0 → always taken to the spy
	b.Data(tsaChain2, 1) // B2 condition: 1 during training → falls into the trojan

	// alignHistory emits a tight 8-iteration loop of taken branches so the
	// gshare global history is in the same state before every victim call
	// — otherwise the attack pass would index cold PHT entries and B1/B2
	// would not be predicted the way training set them up.
	align := 0
	alignHistory := func() {
		align++
		label := fmt.Sprintf("align%d", align)
		b.Movi(rT1, 0)
		b.Movi(rT2, 8)
		b.Label(label)
		b.Addi(rT1, rT1, 1)
		b.Blt(rT1, rT2, label)
	}

	// --- main ---
	// Training passes: everything warm, B1 taken (spy path), B2 not taken
	// (falls through into the trojan, which is harmless because the
	// trojan's probe offsets are scaled by rArm = 0).
	b.Movi(rIter, 0)
	b.Movi(rLim, 8)
	b.Label("train")
	b.Movi(rArm, 0)
	alignHistory()
	b.Call("victim")
	b.Addi(rIter, rIter, 1)
	b.Blt(rIter, rLim, "train")

	// Arm the attack pass:
	//   chain2 cell := 0 so B2 is actually taken (trojan becomes the wrong
	//   path), flush both delay cells (speculation window), flush A and B
	//   (so the spy's loads must allocate shadow entries), flush the
	//   trojan's target lines (so its fills must allocate too).
	b.Movi(rAdr, int64(tsaChain2))
	b.Movi(rT1, 0)
	b.Store(rT1, rAdr, 0)
	emitFlushChain(b, rT1, tsaChain1, 1)
	emitFlushChain(b, rT1, tsaChain2, 1)
	b.Movi(rAdr, int64(tsaLineA))
	b.Clflush(rAdr, 0)
	b.Clflush(rAdr, 512)  // trojan target line C (A + 512)
	b.Clflush(rAdr, 1024) // trojan target line D (A + 1024)
	b.Movi(rAdr, int64(tsaLineB))
	b.Clflush(rAdr, 0)
	b.Fence()
	b.Movi(rArm, 1)
	alignHistory()
	b.Call("victim")
	b.Fence()

	// Step 3: time the spy's line A on the committed path. If the trojan
	// replaced it in the shadow, its fill never reached the committed
	// cache and this load misses.
	b.RdCycle(rT1)
	b.Movi(rAdr, int64(tsaLineA))
	b.Load(rA, rAdr, 0)
	b.Add(rA, rA, rA)
	b.RdCycle(rT2)
	b.Sub(rT2, rT2, rT1)
	b.Movi(rAdr, int64(ResultsBase))
	b.Store(rT2, rAdr, 0)
	b.Halt()

	// --- victim ---
	b.Label("victim")
	// B1's condition: one flushed load, value 0 → taken to "spy".
	b.Movi(rC1, int64(tsaChain1))
	b.Load(rC1, rC1, 0)
	// B2's condition: issued equally early so both branches resolve
	// together, after the spy and trojan have done their shadow traffic.
	b.Movi(rC2, int64(tsaChain2))
	b.Load(rC2, rC2, 0)
	b.Beq(rC1, isa.Zero, "spy") // B1: predicted and actually taken
	b.Ret()                     // (never reached)

	b.Label("spy")
	// Step 1: the spy's speculative loads, guarded by the unresolved B1.
	b.Movi(rAdr, int64(tsaLineA))
	b.Load(rA, rAdr, 0)
	b.Movi(rAdr, int64(tsaLineB))
	b.Load(rBv, rAdr, 0)
	// B2: trained not-taken (trojan side); actually taken in the attack
	// pass. Resolution waits on the chain2 misses.
	b.Beq(rC2, isa.Zero, "reconverge")

	// Step 2 (trojan, wrong path in the attack pass): read the secret and
	// touch lines whose addresses depend on the chosen bit. bitval=0 →
	// offsets 0 (line A itself: harmless ref). bitval=1 → offsets 512 and
	// 1024 (two fresh lines: with a 2-entry Replace shadow these evict the
	// spy's A and B entries).
	b.Movi(rAdr, int64(SecretVA))
	b.Load(rSec, rAdr, 0)
	b.Shri(rSec, rSec, int64(bit))
	b.Andi(rSec, rSec, 1)
	b.Mul(rSec, rSec, rArm) // inert during training passes
	b.Shli(rOff, rSec, 9)   // bit*512
	b.Movi(rAdr, int64(tsaLineA))
	b.Add(rAdr, rAdr, rOff)
	b.Load(rT1, rAdr, 0)
	b.Shli(rOff, rSec, 10) // bit*1024
	b.Movi(rAdr, int64(tsaLineA))
	b.Add(rAdr, rAdr, rOff)
	b.Load(rT2, rAdr, 0)

	b.Label("reconverge")
	b.Ret()

	return b.Build()
}
