// Package obs is the fleet's dependency-free observability kernel: a
// small metrics registry (counters, gauges, histograms, and single-label
// vector variants) rendered in the Prometheus text exposition format
// (version 0.0.4), plus the structured-logging constructor shared by the
// long-running binaries. It exists so the coordinator, the workers, and
// the bench driver all expose metrics through one code path instead of
// three hand-rolled fmt.Fprintf renderers, while keeping the module free
// of external dependencies.
//
// Instruments are registered once at startup and are safe for concurrent
// use; rendering walks families in registration order so scrapes are
// deterministic. Values that live outside the registry (for example a
// server's internal accounting snapshot) are mirrored in via OnCollect
// callbacks that run at the top of every scrape.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds for latency-style metrics
// measured in seconds, matching the conventional Prometheus defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metric is one registered instrument; write emits its sample lines
// (without the # HELP/# TYPE header, which the family owns).
type metric interface {
	write(w io.Writer, name string)
}

type family struct {
	name, help, kind string
	m                metric
}

// Registry holds an ordered set of metric families and renders them as
// Prometheus text. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	collect  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, kind: kind, m: m}
	r.byName[name] = f
	r.families = append(r.families, f)
}

// OnCollect registers fn to run at the start of every scrape, before any
// family is rendered. Use it to mirror externally-owned values (snapshot
// structs, cache counters) into registry instruments.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// Counter is a monotonically increasing uint64. Set exists so a counter
// can mirror an externally-accumulated monotonic value during OnCollect.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value; the caller must keep it monotonic.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
}

// Histogram counts observations into fixed cumulative buckets and tracks
// their sum, rendering the conventional _bucket/_sum/_count series. All
// methods are safe for concurrent use; Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) write(w io.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// vec is the shared machinery behind CounterVec and GaugeVec: one label
// name, lazily-created children, rendered in sorted label order.
type vec[M metric] struct {
	label string
	mk    func() M
	mu    sync.Mutex
	kids  map[string]M
}

func (v *vec[M]) child(value string) M {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.kids[value]
	if !ok {
		m = v.mk()
		v.kids[value] = m
	}
	return m
}

func (v *vec[M]) write(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]M, len(keys))
	for i, k := range keys {
		kids[i] = v.kids[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		kids[i].write(w, fmt.Sprintf("%s{%s=\"%s\"}", name, v.label, escapeLabel(k)))
	}
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct{ vec[*Counter] }

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter { return v.child(value) }

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct{ vec[*Gauge] }

// With returns the gauge for the given label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *Gauge { return v.child(value) }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g)
	return g
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (ascending; +Inf is implicit). Nil bounds use DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending for " + name)
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, "histogram", h)
	return h
}

// CounterVec registers and returns a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{vec[*Counter]{label: label, mk: func() *Counter { return &Counter{} }, kids: map[string]*Counter{}}}
	r.register(name, help, "counter", v)
	return v
}

// GaugeVec registers and returns a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{vec[*Gauge]{label: label, mk: func() *Gauge { return &Gauge{} }, kids: map[string]*Gauge{}}}
	r.register(name, help, "gauge", v)
	return v
}

// WritePrometheus runs the collect hooks and renders every family in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	collect := append([]func(){}, r.collect...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, fn := range collect {
		fn()
	}
	for _, f := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.m.write(w, f.name)
	}
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a float the way Prometheus clients conventionally
// do: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
