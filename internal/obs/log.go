package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the slog.Logger behind every binary's -log-level and
// -log-format flags. level is one of debug|info|warn|error (case
// insensitive); format is text or json. Errors name the offending flag
// value so main can print them verbatim.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}
